(* Experiment harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md section 4 for the index), then
   runs Bechamel micro-benchmarks of the computational kernels.

   Experiments:
     E1 Fig. 2  response curves of the motivational example
     E2 Fig. 3  settling surface J(Tw, Tdw), stable vs unstable pair
     E3 Fig. 4  minimum/maximum dwell times vs wait time (C1)
     E4 Table 1 case-study timing data for C1..C6
     E5 Sec. 5  slot mapping: proposed (2 slots) vs baseline (4 slots)
     E6 Fig. 8  responses of C1,C3,C4,C5 sharing slot S1
     E7 Fig. 9  responses of C2,C6 sharing slot S2
     E8 Sec. 5  verification times across engines and accelerations *)

let section id title =
  Printf.printf "\n%s\n%s %s\n%s\n"
    (String.make 72 '=') id title (String.make 72 '=')

let h = Casestudy.h

let app_of (a : Casestudy.app) =
  Core.App.make ~name:a.Casestudy.name ~plant:a.Casestudy.plant
    ~gains:a.Casestudy.gains ~r:a.Casestudy.r ~j_star:a.Casestudy.j_star ()

let apps = lazy (List.map app_of Casestudy.all)

let find_app name =
  List.find (fun a -> String.equal a.Core.App.name name) (Lazy.force apps)

let pp_samples j = Printf.sprintf "%d samples (%.2f s)" j (float_of_int j *. h)

let pp_arr a =
  "[" ^ String.concat "," (Array.to_list (Array.map string_of_int a)) ^ "]"

(* ------------------------------------------------------------------ *)
(* E1 / Fig. 2 *)

let fig2 () =
  section "E1" "Fig. 2 — response curves for the motivational example (C1)";
  let c1 = Casestudy.c1 in
  let gs = c1.Casestudy.gains and gu = Casestudy.c1_unstable_pair in
  let run gains mode_at =
    Control.Switched.run c1.Casestudy.plant gains mode_at
      (Control.Switched.disturbed c1.Casestudy.plant)
      60
  in
  let curves =
    [
      ("KT", run gs (Core.Strategy.pure Control.Switched.Mt), 0.18);
      ("KEs", run gs (Core.Strategy.pure Control.Switched.Me), 0.68);
      ("KEu", run gu (Core.Strategy.pure Control.Switched.Me), 0.68);
      ("4KEs+4KT+nKEs", run gs (Core.Strategy.mode_at ~t_w:4 ~t_dw:4), 0.28);
      ("4KEu+4KT+nKEu", run gu (Core.Strategy.mode_at ~t_w:4 ~t_dw:4), 0.58);
    ]
  in
  Printf.printf "%-16s %-22s %s\n" "strategy" "settling (ours)" "paper";
  List.iter
    (fun (name, y, paper) ->
      match Control.Settle.settling_index y with
      | Some j -> Printf.printf "%-16s %-22s %.2f s\n" name (pp_samples j) paper
      | None -> Printf.printf "%-16s %-22s %.2f s\n" name "no settling" paper)
    curves;
  Printf.printf "\ny(t) series (every 4 samples, t in seconds):\n%-6s" "t";
  List.iter (fun (n, _, _) -> Printf.printf " %14s" n) curves;
  print_newline ();
  let k = ref 0 in
  while !k <= 50 do
    Printf.printf "%-6.2f" (float_of_int !k *. h);
    List.iter (fun (_, y, _) -> Printf.printf " %14.4f" y.(!k)) curves;
    print_newline ();
    k := !k + 4
  done

(* ------------------------------------------------------------------ *)
(* E2 / Fig. 3 *)

let fig3 () =
  section "E2" "Fig. 3 — settling time J(Tw, Tdw): switching stability matters";
  let c1 = Casestudy.c1 in
  let surface gains =
    Core.Dwell.surface c1.Casestudy.plant gains ~t_w_max:10 ~t_dw_max:8
  in
  let print_grid label gains =
    Printf.printf "\n%s — J in seconds, rows Tw = 0..10, cols Tdw = 1..8:\n     "
      label;
    for d = 1 to 8 do
      Printf.printf "  Tdw=%d" d
    done;
    print_newline ();
    let s = surface gains in
    for t_w = 0 to 10 do
      Printf.printf "Tw=%-2d" t_w;
      List.iter
        (fun (tw, _, j) ->
          if tw = t_w then
            match j with
            | Some j -> Printf.printf " %6.2f" (float_of_int j *. h)
            | None -> Printf.printf "      -")
        s;
      print_newline ()
    done
  in
  print_grid "KT + KEs (switching stable)" c1.Casestudy.gains;
  print_grid "KT + KEu (not switching stable)" Casestudy.c1_unstable_pair;
  (* the headline of Sec. 3.1: the unstable pair needs more resource *)
  let best gains t_w =
    let js =
      List.filter_map
        (fun (tw, _, j) -> if tw = t_w then j else None)
        (surface gains)
    in
    List.fold_left Int.min max_int js
  in
  Printf.printf
    "\nbest settling at Tw = 4 within 8 dwell samples: stable pair %s, unstable pair %s\n"
    (pp_samples (best c1.Casestudy.gains 4))
    (pp_samples (best Casestudy.c1_unstable_pair 4))

(* ------------------------------------------------------------------ *)
(* E3 / Fig. 4 *)

let fig4 () =
  section "E3" "Fig. 4 — minimum and maximum dwell times vs wait time (C1, J* = 0.36 s)";
  let a = find_app "C1" in
  let t = a.Core.App.table in
  let p = Casestudy.paper (Casestudy.find "C1") in
  Printf.printf "%-5s %-18s %-18s %-12s %-12s\n" "Tw" "T-dw (J at T-dw)"
    "T+dw (J at T+dw)" "paper T-dw" "paper T+dw";
  for t_w = 0 to t.Core.Dwell.t_w_max do
    Printf.printf "%-5d %d (%.2f s)%-8s %d (%.2f s)%-8s %-12d %-12d\n" t_w
      t.Core.Dwell.t_dw_min.(t_w)
      (float_of_int t.Core.Dwell.j_at_min.(t_w) *. h)
      "" t.Core.Dwell.t_dw_max.(t_w)
      (float_of_int t.Core.Dwell.j_at_max.(t_w) *. h)
      ""
      p.Casestudy.p_t_dw_min.(t_w)
      p.Casestudy.p_t_dw_max.(t_w)
  done;
  Printf.printf
    "\nAt Tw = 0, leaving MT after T+dw = %d samples matches the dedicated slot (J = J_T = %s).\n"
    t.Core.Dwell.t_dw_max.(0) (pp_samples t.Core.Dwell.jt)

(* ------------------------------------------------------------------ *)
(* E4 / Table 1 *)

let table1 () =
  section "E4" "Table 1 — case-study data and results (ours vs paper)";
  List.iter
    (fun (a : Core.App.t) ->
      let t = a.Core.App.table in
      let p = Casestudy.paper (Casestudy.find a.Core.App.name) in
      Printf.printf
        "%s: r=%d J*=%d | J_T=%d (paper %d)  J_E=%d (paper %d)  T*_w=%d (paper %d)\n"
        a.Core.App.name a.Core.App.r a.Core.App.j_star t.Core.Dwell.jt
        p.Casestudy.p_jt t.Core.Dwell.je p.Casestudy.p_je t.Core.Dwell.t_w_max
        p.Casestudy.p_t_w_max;
      Printf.printf "  T-_dw ours : %s\n  T-_dw paper: %s\n"
        (pp_arr t.Core.Dwell.t_dw_min)
        (pp_arr p.Casestudy.p_t_dw_min);
      Printf.printf "  T+_dw ours : %s\n  T+_dw paper: %s\n"
        (pp_arr t.Core.Dwell.t_dw_max)
        (pp_arr p.Casestudy.p_t_dw_max))
    (Lazy.force apps)

(* ------------------------------------------------------------------ *)
(* E5 / mapping *)

let mapping () =
  section "E5" "Sec. 5 — resource mapping: proposed strategy vs DATE'12 baseline";
  let sorted = Core.Mapping.sort_order (Lazy.force apps) in
  Printf.printf "first-fit order (ascending T*_w, then T-*_dw): %s\n"
    (String.concat "," (List.map (fun a -> a.Core.App.name) sorted));
  let t0 = Unix.gettimeofday () in
  let outcome = Core.Mapping.first_fit (Lazy.force apps) in
  Printf.printf "proposed strategy: %d slots (%d verifications, %.1f s)\n"
    (List.length outcome.Core.Mapping.slots)
    outcome.Core.Mapping.verifications
    (Unix.gettimeofday () -. t0);
  List.iter
    (fun slot ->
      Printf.printf "  S%d = {%s}\n" (slot.Core.Mapping.index + 1)
        (String.concat ", "
           (List.map (fun a -> a.Core.App.name) slot.Core.Mapping.apps)))
    outcome.Core.Mapping.slots;
  let baseline_specs =
    List.mapi
      (fun i (a : Casestudy.app) ->
        let bp =
          Core.Baseline_params.compute a.Casestudy.plant a.Casestudy.gains
            ~j_star:a.Casestudy.j_star
        in
        Printf.printf "  baseline params %s: w* = %d, occupancy = %d\n"
          a.Casestudy.name bp.Core.Baseline_params.w_star
          bp.Core.Baseline_params.c_occ;
        Core.Baseline_params.to_spec ~id:i ~name:a.Casestudy.name
          ~r:a.Casestudy.r bp)
      Casestudy.all
  in
  let order = List.map (fun a -> a.Core.App.name) sorted in
  let sorted_specs =
    List.map
      (fun n ->
        List.find (fun s -> String.equal s.Sched.Baseline.name n) baseline_specs)
      order
  in
  List.iter
    (fun (strategy, label) ->
      let slots = Sched.Baseline.first_fit strategy sorted_specs in
      Printf.printf "baseline (%s): %d slots: %s\n" label (List.length slots)
        (String.concat " | "
           (List.map
              (fun slot ->
                String.concat "," (List.map (fun s -> s.Sched.Baseline.name) slot))
              slots)))
    [
      (Sched.Baseline.Dm, "non-preemptive deadline monotonic");
      (Sched.Baseline.Delayed, "delayed requests");
    ];
  let ours = List.length outcome.Core.Mapping.slots in
  Printf.printf
    "saving: %d slots vs 4 baseline slots = %.0f%% (paper reports 50%%)\n" ours
    (100. *. (1. -. (float_of_int ours /. 4.)));
  (* beyond the paper: is the first-fit result actually optimal? *)
  let t1 = Unix.gettimeofday () in
  let opt = Core.Mapping.optimal (Lazy.force apps) in
  Printf.printf
    "exact minimum (monotone-pruned subset DP): %d slots (%d verifications, %.1f s)\n"
    (List.length opt.Core.Mapping.slots)
    opt.Core.Mapping.verifications
    (Unix.gettimeofday () -. t1);
  List.iter
    (fun slot ->
      Printf.printf "  O%d = {%s}\n" (slot.Core.Mapping.index + 1)
        (String.concat ", "
           (List.map (fun a -> a.Core.App.name) slot.Core.Mapping.apps)))
    opt.Core.Mapping.slots

(* ------------------------------------------------------------------ *)
(* E6/E7: co-simulation figures *)

let cosim_figure ~id ~title ~names ~disturbances =
  section id title;
  let group = List.map find_app names in
  let scenario = Cosim.Scenario.make ~apps:group ~disturbances ~horizon:60 in
  let trace = Cosim.Engine.run scenario in
  Printf.printf "slot occupancy: %s\n"
    (String.concat " "
       (List.map
          (fun (i, a, b) ->
            Printf.sprintf "%s[%d..%d]" trace.Cosim.Trace.names.(i) a b)
          (Cosim.Trace.owner_intervals trace)));
  List.iter
    (fun (sample, i) ->
      let a = List.nth group i in
      match Cosim.Trace.settling_after trace ~id:i ~sample with
      | Some j ->
        Printf.printf "%s (disturbed at %d): J = %s, J* = %d, TT samples used = %d\n"
          trace.Cosim.Trace.names.(i) sample (pp_samples j) a.Core.App.j_star
          (Cosim.Trace.tt_samples trace ~id:i)
      | None ->
        Printf.printf "%s (disturbed at %d): did not settle\n"
          trace.Cosim.Trace.names.(i) sample)
    trace.Cosim.Trace.disturbances;
  Printf.printf "all requirements met: %b\n"
    (Cosim.Trace.meets_requirements trace group);
  Printf.printf "\nslot occupancy ribbon ('*' disturbance, '#' TT ownership):\n";
  List.iter print_endline (Cosim.Trace.to_gantt trace);
  Printf.printf "\ny(t) series (every 3 samples):\n";
  List.iter print_endline (Cosim.Trace.to_rows trace ~stride:3)

let fig8 () =
  cosim_figure ~id:"E6"
    ~title:"Fig. 8 — C1, C3, C4, C5 share slot S1, simultaneous disturbance"
    ~names:[ "C1"; "C5"; "C4"; "C3" ]
    ~disturbances:[ (0, "C1"); (0, "C3"); (0, "C4"); (0, "C5") ]

let fig9 () =
  cosim_figure ~id:"E7"
    ~title:"Fig. 9 — C2 and C6 share slot S2, C6 disturbed 10 samples later"
    ~names:[ "C6"; "C2" ]
    ~disturbances:[ (0, "C2"); (10, "C6") ]

(* ------------------------------------------------------------------ *)
(* E8: verification engines *)

let verify_times () =
  section "E8"
    "Sec. 5 — verification cost: zone engine vs discrete engines and accelerations";
  let specs_of names = Core.Mapping.specs_of_group (List.map find_app names) in
  let describe label f =
    let r : Core.Dverify.result = f () in
    Printf.printf "  %-28s %-6s %9d states %9d trans %8.2f s\n" label
      (match r.Core.Dverify.verdict with
       | Core.Dverify.Safe -> "safe"
       | Core.Dverify.Unsafe _ -> "unsafe"
       | Core.Dverify.Undetermined _ -> "undec")
      r.Core.Dverify.stats.Core.Dverify.states
      r.Core.Dverify.stats.Core.Dverify.transitions
      r.Core.Dverify.stats.Core.Dverify.elapsed;
    r.Core.Dverify.stats.Core.Dverify.elapsed
  in
  let ta_describe label specs =
    let r = Core.Ta_model.verify ~inclusion:false specs in
    Printf.printf "  %-28s %-6s %9d states %9s %8.2f s\n" label
      (match r.Core.Ta_model.outcome with
       | `Safe -> "safe"
       | `Unsafe -> "unsafe"
       | `Undetermined _ -> "undec")
      r.Core.Ta_model.stats.Ta.Reach.states ""
      r.Core.Ta_model.stats.Ta.Reach.elapsed
  in
  List.iter
    (fun (label, names, run_ta) ->
      Printf.printf "%s:\n" label;
      let specs = specs_of names in
      let t_bfs = describe "discrete BFS (naive)" (fun () -> Core.Dverify.verify ~mode:`Bfs specs) in
      let t_sub =
        describe "discrete + quiet-age subsum." (fun () ->
            Core.Dverify.verify ~mode:`Subsumption specs)
      in
      let t_b1 =
        describe "bounded disturbances k=1" (fun () ->
            Core.Dverify.verify_bounded ~instances:1 specs)
      in
      ignore
        (describe "bounded disturbances k=2" (fun () ->
             Core.Dverify.verify_bounded ~instances:2 specs));
      if run_ta then ta_describe "TA zone engine (mini-UPPAAL)" specs;
      Printf.printf
        "  speedups vs naive BFS: subsumption %.1fx, bounded(k=1) %.1fx\n"
        (t_bfs /. Float.max 1e-9 t_sub)
        (t_bfs /. Float.max 1e-9 t_b1))
    [
      ("{C1,C5}", [ "C1"; "C5" ], true);
      ("S2 = {C6,C2}", [ "C6"; "C2" ], true);
      ("{C1,C5,C4}", [ "C1"; "C5"; "C4" ], false);
      ("S1 = {C1,C5,C4,C3}", [ "C1"; "C5"; "C4"; "C3" ], false);
    ];
  Printf.printf
    "\nNote: the zone engine decides the 3-app group in ~1 min and exceeds memory\n\
     on the 4-app group — the discrete-time reduction (exact for this\n\
     sample-synchronous system) is what makes S1 tractable, mirroring the\n\
     paper's 5 h -> 15 min acceleration on UPPAAL.\n"

(* ------------------------------------------------------------------ *)
(* FlexRay design check *)

let flexray_check () =
  section "X1" "FlexRay substrate — ET one-sample-delay design assumption";
  let cfg = Flexray.Config.default_automotive in
  Format.printf "%a@." Flexray.Config.pp cfg;
  Printf.printf "%-22s %-12s %-10s %s\n" "hp load (n x len @ p)" "WCRT (us)"
    "h (us)" "one-sample ok";
  List.iter
    (fun (n_hp, len, period) ->
      let hp =
        List.init n_hp (fun _ ->
            { Flexray.Wcrt.length_minislots = len; period_cycles = period })
      in
      let label = Printf.sprintf "%d x %d @ %d" n_hp len period in
      match Flexray.Wcrt.wcrt_us cfg ~own_id:(n_hp + 1) ~own_length:10 hp with
      | Some w ->
        Printf.printf "%-22s %-12d %-10d %b\n" label w 20_000 (w <= 20_000)
      | None -> Printf.printf "%-22s %-12s %-10d false\n" label "starved" 20_000)
    [
      (0, 20, 5);
      (5, 20, 5);
      (4, 45, 1);
      (6, 30, 1);
      (8, 24, 2);
      (8, 24, 1);
      (1, 195, 1);
    ]

(* ------------------------------------------------------------------ *)
(* Margins of the verified dimensioning *)

let margins () =
  section "E9"
    "Dimensioning tightness — exact worst-case waits and settling margins";
  Printf.printf
    "The verifier records the worst wait at which each application is ever\n\
     granted; with the dwell tables this bounds the worst settling time.\n\
     margin = J* - worst settling: 0 means the slot is dimensioned exactly\n\
     tight, which is the point of the paper.\n\n";
  List.iter
    (fun names ->
      let group = List.map find_app names in
      Printf.printf "{%s}:\n" (String.concat "," names);
      Format.printf "%a@." Core.Margin.pp (Core.Margin.analyse ~apps:group ()))
    [ [ "C1"; "C5"; "C4"; "C3" ]; [ "C6"; "C2" ] ]

(* ------------------------------------------------------------------ *)
(* Ablation: the concluding-remarks lazy-preemption variant *)

let preemption_ablation () =
  section "X2"
    "Ablation — delayed preemption (the paper's concluding remarks)";
  Printf.printf
    "Policy: keep the occupant past T-_dw and preempt only when a waiting\n\
     application reaches its last admissible sample (WT = T*_w).\n\n";
  Printf.printf "%-22s %-10s %-10s\n" "group" "eager" "lazy";
  List.iter
    (fun names ->
      let specs = Core.Mapping.specs_of_group (List.map find_app names) in
      let v policy =
        match (Core.Dverify.verify ~policy specs).Core.Dverify.verdict with
        | Core.Dverify.Safe -> "safe"
        | Core.Dverify.Unsafe _ -> "UNSAFE"
        | Core.Dverify.Undetermined _ -> "undec"
      in
      Printf.printf "%-22s %-10s %-10s\n"
        ("{" ^ String.concat "," names ^ "}")
        (v Sched.Slot_state.Eager_preempt)
        (v Sched.Slot_state.Lazy_preempt))
    [
      [ "C1"; "C5" ];
      [ "C6"; "C2" ];
      [ "C1"; "C5"; "C4" ];
      [ "C1"; "C5"; "C4"; "C3" ];
    ];
  (* per-application settling on the Fig. 8 scenario under both *)
  let s1 = List.map find_app [ "C1"; "C5"; "C4"; "C3" ] in
  let scenario =
    Cosim.Scenario.make ~apps:s1
      ~disturbances:[ (0, "C1"); (0, "C3"); (0, "C4"); (0, "C5") ]
      ~horizon:80
  in
  Printf.printf "\nFig. 8 scenario, settling per application (samples):\n";
  Printf.printf "%-8s %s\n" "policy" "C1   C5   C4   C3   all meet J*?";
  List.iter
    (fun (policy, label) ->
      let tr = Cosim.Engine.run ~policy scenario in
      let js =
        List.map
          (fun (s, i) ->
            match Cosim.Trace.settling_after tr ~id:i ~sample:s with
            | Some j -> string_of_int j
            | None -> "-")
          (List.sort compare tr.Cosim.Trace.disturbances)
      in
      Printf.printf "%-8s %-4s %-4s %-4s %-4s %b\n" label (List.nth js 0)
        (List.nth js 3) (List.nth js 2) (List.nth js 1)
        (Cosim.Trace.meets_requirements tr s1))
    [
      (Sched.Slot_state.Eager_preempt, "eager");
      (Sched.Slot_state.Lazy_preempt, "lazy");
    ];
  (* how many slots would the lazy policy need? *)
  let lazy_verifier specs =
    match
      (Core.Dverify.verify ~policy:Sched.Slot_state.Lazy_preempt specs)
        .Core.Dverify.verdict
    with
    | Core.Dverify.Safe -> `Safe
    | Core.Dverify.Unsafe _ -> `Unsafe
    | Core.Dverify.Undetermined r ->
      `Undetermined (Format.asprintf "%a" Core.Dverify.pp_reason r)
  in
  let o = Core.Mapping.first_fit ~verifier:lazy_verifier (Lazy.force apps) in
  Printf.printf
    "\nfirst-fit under lazy preemption: %d slots (eager needs 2) — the\n\
     occupant's gain costs schedulability, as the paper anticipates.\n"
    (List.length o.Core.Mapping.slots)

(* ------------------------------------------------------------------ *)
(* Ablation: dwell-table memory (run-length encoding, Sec. 5 remark) *)

let table_memory () =
  section "X3" "Dwell-table storage — run-length encoding (Sec. 5 remark)";
  Printf.printf "%-5s %-14s %-12s %-12s %-10s %s\n" "app" "plain (words)"
    "RLE (words)" "dict (words)" "distinct" "round-trip";
  List.iter
    (fun (a : Core.App.t) ->
      let t = a.Core.App.table in
      let plain = 2 * Array.length t.Core.Dwell.t_dw_min in
      let rle =
        Core.Table_codec.encoded_words (Core.Table_codec.encode t.Core.Dwell.t_dw_min)
        + Core.Table_codec.encoded_words (Core.Table_codec.encode t.Core.Dwell.t_dw_max)
      in
      let round_trip =
        match Core.Table_codec.table_of_string (Core.Table_codec.table_to_string t) with
        | Ok t' -> t' = t
        | Error _ -> false
      in
      let dict =
        Core.Table_codec.dictionary_words t.Core.Dwell.t_dw_min
        + Core.Table_codec.dictionary_words t.Core.Dwell.t_dw_max
      in
      let distinct =
        Core.Table_codec.distinct_values t.Core.Dwell.t_dw_min
        + Core.Table_codec.distinct_values t.Core.Dwell.t_dw_max
      in
      Printf.printf "%-5s %-14d %-12d %-12d %-10d %b\n" a.Core.App.name plain
        rle dict distinct round_trip)
    (Lazy.force apps)

(* ------------------------------------------------------------------ *)
(* Ablation: wait-time granularity (Sec. 3 trade-off) *)

let granularity () =
  section "X4"
    "Wait granularity — conservativeness vs memory (Sec. 3 trade-off)";
  Printf.printf "%-5s %-8s %-14s %-14s\n" "app" "stride" "table entries"
    "T*_w covered";
  List.iter
    (fun (a : Casestudy.app) ->
      List.iter
        (fun stride ->
          let t =
            Core.Dwell.compute ~stride a.Casestudy.plant a.Casestudy.gains
              ~j_star:a.Casestudy.j_star
          in
          Printf.printf "%-5s %-8d %-14d %-14d\n" a.Casestudy.name stride
            (Array.length t.Core.Dwell.t_dw_min)
            t.Core.Dwell.t_w_max)
        [ 1; 2; 3 ])
    [ Casestudy.c1; Casestudy.c3 ]

(* ------------------------------------------------------------------ *)
(* System-level simulation of the whole mapping *)

let system_simulation () =
  section "X5" "System simulation — both mapped slots, all six applications";
  let outcome = Core.Mapping.first_fit (Lazy.force apps) in
  (* stagger disturbances so both slots see contention *)
  let disturbances =
    [
      (0, "C1"); (0, "C3"); (2, "C4"); (4, "C5"); (1, "C2"); (9, "C6");
      (* a second wave, respecting each application's r *)
      (40, "C1"); (45, "C5"); (55, "C4");
    ]
  in
  let report = Cosim.System.of_mapping outcome ~disturbances ~horizon:110 in
  Format.printf "%a@." Cosim.System.pp report;
  Printf.printf "TT usage: %s\n"
    (String.concat ", "
       (List.map
          (fun (n, k) -> Printf.sprintf "%s=%d" n k)
          report.Cosim.System.tt_samples));
  (* replay the whole system on the reference transport and check the
     two network facts the control design rests on *)
  let bus = Backends.Flexray_backend.default in
  Printf.printf "\nbus-level validation (%s):\n" (Bus.info bus);
  Format.printf "%a@." Cosim.Bus_check.pp (Cosim.System.bus_validate ~bus report)

(* ------------------------------------------------------------------ *)
(* Scalability beyond the paper's case study *)

let fleet_scalability () =
  section "X6" "Scalability — synthetic fleets (auto-designed gains)";
  Printf.printf
    "Each application: random 2nd-order plant, gains from Control.Design,\n\
     budget inside the achievable bracket, minimal sporadic r + slack.\n\n";
  Printf.printf "%-4s %-10s %-8s %-14s %-10s\n" "N" "gen (s)" "slots"
    "verifications" "map (s)";
  List.iter
    (fun count ->
      let t0 = Unix.gettimeofday () in
      let fleet =
        Core.Fleet.generate ~params:{ Core.Fleet.default_params with count } ()
      in
      let t1 = Unix.gettimeofday () in
      let o = Core.Mapping.first_fit fleet in
      let t2 = Unix.gettimeofday () in
      Printf.printf "%-4d %-10.1f %-8d %-14d %-10.1f\n" count (t1 -. t0)
        (List.length o.Core.Mapping.slots)
        o.Core.Mapping.verifications (t2 -. t1))
    [ 4; 6; 8 ];
  let fleet =
    Core.Fleet.generate ~params:{ Core.Fleet.default_params with count = 8 } ()
  in
  List.iter (fun a -> print_endline ("  " ^ Core.Fleet.describe a)) fleet

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks *)

let microbench () =
  section "X7" "Bechamel micro-benchmarks of the computational kernels";
  let open Bechamel in
  let c1 = Casestudy.c1 in
  let s2 = Core.Mapping.specs_of_group (List.map find_app [ "C6"; "C2" ]) in
  let pair = Core.Mapping.specs_of_group (List.map find_app [ "C1"; "C5" ]) in
  let fig8_scenario =
    Cosim.Scenario.make
      ~apps:(List.map find_app [ "C1"; "C5"; "C4"; "C3" ])
      ~disturbances:[ (0, "C1"); (0, "C3"); (0, "C4"); (0, "C5") ]
      ~horizon:60
  in
  let zone = Ta.Dbm.up (Ta.Dbm.zero 6) in
  let tests =
    Test.make_grouped ~name:"cpsdim"
      [
        Test.make ~name:"dwell-table C1 (Table 1 row)"
          (Staged.stage (fun () ->
               ignore
                 (Core.Dwell.compute c1.Casestudy.plant c1.Casestudy.gains
                    ~j_star:c1.Casestudy.j_star)));
        Test.make ~name:"switching sim (60 samples)"
          (Staged.stage (fun () ->
               ignore (Core.Strategy.settling c1.Casestudy.plant c1.Casestudy.gains ~t_w:4 ~t_dw:4)));
        Test.make ~name:"verify S2 (discrete subsum.)"
          (Staged.stage (fun () -> ignore (Core.Dverify.verify s2)));
        Test.make ~name:"verify {C1,C5} (TA zones)"
          (Staged.stage (fun () ->
               ignore (Core.Ta_model.verify ~inclusion:false pair)));
        Test.make ~name:"co-simulation Fig. 8"
          (Staged.stage (fun () -> ignore (Cosim.Engine.run fig8_scenario)));
        Test.make ~name:"DBM canonicalise (7 clocks)"
          (Staged.stage (fun () ->
               ignore (Ta.Dbm.constrain zone 1 0 (Ta.Dbm.le 5))));
        Test.make ~name:"CQLF search (C1 pair)"
          (Staged.stage (fun () ->
               ignore
                 (Control.Switch_stab.is_switching_stable c1.Casestudy.plant
                    c1.Casestudy.gains)));
      ]
  in
  let cfg =
    Benchmark.cfg ~limit:200 ~stabilize:true ~quota:(Time.second 0.5) ()
  in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  Printf.printf "%-42s %s\n" "kernel" "time per run";
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] ->
        let pretty =
          if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
          else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
          else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
          else Printf.sprintf "%8.2f ns" ns
        in
        Printf.printf "%-42s %s\n" name pretty
      | Some _ | None -> Printf.printf "%-42s (no estimate)\n" name)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Snapshot plumbing shared by X8/X9/X11/X12/X13: each section writes
   its report twice — the latest value to its own BENCH_<x>.json (the
   regression baseline `cpsdim report diff` runs against) and the same
   line appended to BENCH_history.jsonl, so the trajectory of any
   metric across bench runs can be recovered with one grep. *)

let history_file = "BENCH_history.jsonl"

let write_snapshot ~file ~command =
  let report = Obs.Report.collect ~command () in
  let line = Obs.Report.json_to_string (Obs.Report.to_json report) in
  Out_channel.with_open_text file (fun oc ->
      Out_channel.output_string oc line;
      Out_channel.output_char oc '\n');
  Out_channel.with_open_gen
    [ Open_append; Open_creat; Open_text ]
    0o644 history_file
    (fun oc ->
      Out_channel.output_string oc line;
      Out_channel.output_char oc '\n');
  Printf.printf "wrote %s (appended to %s)\n" file history_file;
  report

(* ------------------------------------------------------------------ *)
(* Observability snapshot: one instrumented pass over the three
   compute-heavy engines, written to BENCH_obs.json so future changes
   have a per-engine states/sec and tables/sec trajectory to regress
   against.  Runs with obs enabled, then restores the disabled
   default so the timing sections above stay uninstrumented. *)

let obs_snapshot () =
  section "X8" "Observability snapshot — BENCH_obs.json (per-engine throughput)";
  Obs.Metric.reset ();
  Obs.Span.reset ();
  Obs.Trace_ctx.reset ();
  Obs.Trace_ctx.enable ();
  Fun.protect ~finally:Obs.Trace_ctx.disable (fun () ->
      Obs.Span.with_ "bench.obs_snapshot" (fun () ->
          let c1 = Casestudy.c1 in
          (* tables/sec: the dwell-table pre-computation engine *)
          let t0 = Unix.gettimeofday () in
          let reps = 3 in
          for _ = 1 to reps do
            ignore
              (Core.Dwell.compute c1.Casestudy.plant c1.Casestudy.gains
                 ~j_star:c1.Casestudy.j_star)
          done;
          let dt = Unix.gettimeofday () -. t0 in
          Obs.Metric.set_gauge "bench.dwell.tables_per_sec"
            (float_of_int reps /. dt);
          (* states/sec: both verification engines on S2 = {C6,C2} *)
          let s2 = Core.Mapping.specs_of_group (List.map find_app [ "C6"; "C2" ]) in
          let r = Core.Dverify.verify s2 in
          Obs.Metric.set_gauge "bench.dverify.states_per_sec"
            (float_of_int r.Core.Dverify.stats.Core.Dverify.states
            /. Float.max 1e-9 r.Core.Dverify.stats.Core.Dverify.elapsed);
          let rt = Core.Ta_model.verify ~inclusion:false s2 in
          Obs.Metric.set_gauge "bench.ta.states_per_sec"
            (float_of_int rt.Core.Ta_model.stats.Ta.Reach.states
            /. Float.max 1e-9 rt.Core.Ta_model.stats.Ta.Reach.elapsed);
          (* samples/sec: the co-simulation engine on the Fig. 8 scenario *)
          let scenario =
            Cosim.Scenario.make
              ~apps:(List.map find_app [ "C1"; "C5"; "C4"; "C3" ])
              ~disturbances:[ (0, "C1"); (0, "C3"); (0, "C4"); (0, "C5") ]
              ~horizon:60
          in
          let t0 = Unix.gettimeofday () in
          ignore (Cosim.Engine.run scenario);
          Obs.Metric.set_gauge "bench.cosim.samples_per_sec"
            (60. /. Float.max 1e-9 (Unix.gettimeofday () -. t0)));
      let report = write_snapshot ~file:"BENCH_obs.json" ~command:"bench" in
      Format.printf "%a@." Obs.Report.pp report)

(* ------------------------------------------------------------------ *)
(* Fault-campaign snapshot: a fixed-seed blackout campaign over the
   dimensioned slot groups, written to BENCH_faults.json.  The campaign
   is a pure function of (spec, seed, runs, horizon, slots), so the
   violation counts are exact regression anchors: a change in any of
   them means the fault path, the monitor, or the scheduler semantics
   moved. *)

let faults_snapshot () =
  section "X9" "Fault-campaign snapshot — BENCH_faults.json (fixed seed 42)";
  let spec =
    match Faults.Spec.parse "blackout:p=0.02,len=4" with
    | Ok s -> s
    | Error e -> failwith e
  in
  let slots =
    [
      List.map find_app [ "C1"; "C5"; "C4"; "C3" ];
      List.map find_app [ "C6"; "C2" ];
    ]
  in
  Obs.Metric.reset ();
  Obs.Span.reset ();
  Obs.Trace_ctx.reset ();
  Obs.Trace_ctx.enable ();
  Fun.protect ~finally:Obs.Trace_ctx.disable (fun () ->
      (match
         Cosim.Campaign.run ~spec ~seed:42L ~runs:10 ~horizon:300 slots
       with
      | Error e -> failwith e
      | Ok summary ->
        Obs.Metric.set_gauge "bench.faults.total_violations"
          (float_of_int summary.Cosim.Campaign.total_violations);
        List.iter
          (fun (g : Cosim.Campaign.slot_summary) ->
            let slot = String.concat "," g.Cosim.Campaign.apps in
            let gauge kind v =
              Obs.Metric.set_gauge
                (Printf.sprintf "bench.faults.%s.%s" slot kind)
                (float_of_int v)
            in
            gauge "clean_runs" g.Cosim.Campaign.clean_runs;
            gauge "j_star" g.Cosim.Campaign.j_star;
            gauge "wait" g.Cosim.Campaign.wait;
            gauge "dwell" g.Cosim.Campaign.dwell;
            gauge "blackout_samples" g.Cosim.Campaign.blackout_samples)
          summary.Cosim.Campaign.slots;
        Format.printf "%a@." Cosim.Campaign.pp summary);
      ignore (write_snapshot ~file:"BENCH_faults.json" ~command:"bench-faults"))

(* ------------------------------------------------------------------ *)
(* Parallel snapshot: the three parallel entry points (dwell tables,
   first-fit mapping of the full case study, fault campaign) timed at
   1, 2 and 4 domains, written to BENCH_par.json.  The rendered table,
   packing and campaign summary must be byte-identical at every jobs
   count — any divergence fails the bench.  The recorded speedups are
   only meaningful with enough physical cores (bench.par.cores says how
   many this host offered); the identity assertions hold anywhere. *)

let par_snapshot () =
  section "X11" "Parallel verification snapshot — BENCH_par.json (jobs 1/2/4)";
  let spec =
    match Faults.Spec.parse "blackout:p=0.02,len=4" with
    | Ok s -> s
    | Error e -> failwith e
  in
  let c1 = Casestudy.c1 in
  (* obs is live *during* the measured runs so the snapshot carries the
     per-domain pool histograms (pool.d<i>.queue_wait_s / run_s /
     idle_s) and the per-verdict provenance counters
     (cache.verdict.{mem,disk,engine}) alongside the wall-clock
     gauges.  The instrumentation never feeds back into results, so
     the byte-identity assertions still hold. *)
  Obs.Metric.reset ();
  Obs.Span.reset ();
  Obs.Trace_ctx.reset ();
  Obs.Trace_ctx.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace_ctx.disable ();
      Par.Pool.set_default_jobs 1)
    (fun () ->
      let measure jobs =
        Par.Pool.set_default_jobs jobs;
        let t0 = Obs.Clock.now () in
        let table =
          Core.Dwell.compute c1.Casestudy.plant c1.Casestudy.gains
            ~j_star:c1.Casestudy.j_star
        in
        let mapping =
          Core.Mapping.first_fit
            ~cache:(Core.Mapping.create_cache ())
            (Lazy.force apps)
        in
        let slots =
          List.map (fun s -> s.Core.Mapping.apps) mapping.Core.Mapping.slots
        in
        let campaign =
          match
            Cosim.Campaign.run ~spec ~seed:42L ~runs:10 ~horizon:300 slots
          with
          | Ok summary -> summary
          | Error e -> failwith e
        in
        let dt = Obs.Clock.now () -. t0 in
        let rendered =
          String.concat "\n"
            [
              Core.Table_codec.table_to_string table;
              Format.asprintf "%a" Core.Mapping.pp mapping;
              Format.asprintf "%a" Cosim.Campaign.pp campaign;
            ]
        in
        (dt, rendered)
      in
      let seq_s, reference = measure 1 in
      let p2_s, out2 = measure 2 in
      let p4_s, out4 = measure 4 in
      Par.Pool.set_default_jobs 1;
      if not (String.equal reference out2) then
        failwith "par snapshot: jobs=2 output diverges from sequential";
      if not (String.equal reference out4) then
        failwith "par snapshot: jobs=4 output diverges from sequential";
      let cores = Domain.recommended_domain_count () in
      Printf.printf
        "jobs=1 %.2fs | jobs=2 %.2fs (%.2fx) | jobs=4 %.2fs (%.2fx) on %d core(s)\n"
        seq_s p2_s (seq_s /. p2_s) p4_s (seq_s /. p4_s) cores;
      print_endline "packings, campaign summaries and verdicts byte-identical";
      Obs.Metric.set_gauge "bench.par.seq_s" seq_s;
      Obs.Metric.set_gauge "bench.par.p2_s" p2_s;
      Obs.Metric.set_gauge "bench.par.p4_s" p4_s;
      Obs.Metric.set_gauge "bench.par.speedup_2" (seq_s /. p2_s);
      Obs.Metric.set_gauge "bench.par.speedup_4" (seq_s /. p4_s);
      Obs.Metric.set_gauge "bench.par.verdicts_equal" 1.;
      Obs.Metric.set_gauge "bench.par.cores" (float_of_int cores);
      ignore (write_snapshot ~file:"BENCH_par.json" ~command:"bench-par"))

(* ------------------------------------------------------------------ *)
(* Search-engine snapshot: throughput of the unified lib/search engine
   under its two production instantiations (zone-graph reachability and
   the discrete adversary), written to BENCH_search.json.  Also asserts
   the order-independence contract: BFS and DFS must return the same
   Safe/Unsafe verdict on every group even though their state counts
   differ — a divergence means the frontier order leaked into the
   answer, which fails the bench. *)

let search_snapshot () =
  section "X12" "Search-engine snapshot — BENCH_search.json (BFS/DFS, states/sec)";
  (* pinned sequential: the committed baseline's deterministic keys
     (state counts, histogram .n) must not depend on the host's core
     count or on speculative parallel expansion *)
  Par.Pool.set_default_jobs 1;
  let specs_of names = Core.Mapping.specs_of_group (List.map find_app names) in
  let s2 = specs_of [ "C6"; "C2" ] and pair = specs_of [ "C1"; "C5" ] in
  (* order-independence: every engine, both orders, same verdict *)
  let dv_verdict order specs =
    match (Core.Dverify.verify ~order specs).Core.Dverify.verdict with
    | Core.Dverify.Safe -> "safe"
    | Core.Dverify.Unsafe _ -> "unsafe"
    | Core.Dverify.Undetermined _ -> "undec"
  in
  let ta_verdict order specs =
    match (Core.Ta_model.verify ~order ~inclusion:false specs).Core.Ta_model.outcome with
    | `Safe -> "safe"
    | `Unsafe -> "unsafe"
    | `Undetermined _ -> "undec"
  in
  List.iter
    (fun (label, specs) ->
      let db = dv_verdict `Bfs specs and dd = dv_verdict `Dfs specs in
      let tb = ta_verdict `Bfs specs and td = ta_verdict `Dfs specs in
      Printf.printf "  %-12s discrete bfs=%s dfs=%s | zones bfs=%s dfs=%s\n"
        label db dd tb td;
      if db <> dd || tb <> td then
        failwith
          (Printf.sprintf "search snapshot: %s verdict depends on order" label))
    [ ("S2={C6,C2}", s2); ("{C1,C5}", pair) ];
  print_endline "  verdicts order-independent";
  Obs.Metric.reset ();
  Obs.Span.reset ();
  Obs.Trace_ctx.reset ();
  Obs.Trace_ctx.enable ();
  Fun.protect ~finally:Obs.Trace_ctx.disable (fun () ->
      (* two gauges per engine: ".states" is an exact count the CI
         deterministic gate holds flat; ".states_per_sec" carries
         "per_sec" so the diff classifier files it under timing *)
      let gauge name (states : int) (elapsed : float) =
        let v = float_of_int states /. Float.max 1e-9 elapsed in
        Obs.Metric.set_gauge (name ^ ".states") (float_of_int states);
        Obs.Metric.set_gauge (name ^ ".states_per_sec") v;
        Printf.printf "  %-34s %9d states %10.0f states/sec\n" name states v
      in
      let r = Core.Dverify.verify s2 in
      gauge "bench.search.dverify_s2"
        r.Core.Dverify.stats.Core.Dverify.states
        r.Core.Dverify.stats.Core.Dverify.elapsed;
      let rt = Core.Ta_model.verify ~inclusion:false s2 in
      gauge "bench.search.reach_s2" rt.Core.Ta_model.stats.Ta.Reach.states
        rt.Core.Ta_model.stats.Ta.Reach.elapsed;
      let rp = Core.Ta_model.verify ~inclusion:false pair in
      gauge "bench.search.reach_c1c5" rp.Core.Ta_model.stats.Ta.Reach.states
        rp.Core.Ta_model.stats.Ta.Reach.elapsed;
      Obs.Metric.set_gauge "bench.search.order_independent" 1.;
      (* -------------------------------------------------------------- *)
      (* X15 sub-section: the analytic pre-filter and the symmetry
         quotient on a homogeneous fleet.  Both wins ride this snapshot
         so the CI deterministic gate pins them: the quotient state
         counts are exact anchors, the >= 5x ratios are the headline
         numbers of the PR, and a regression in either fails the same
         `report diff` leg as the engine throughput keys. *)
      section "X15"
        "Pre-filter + symmetry quotient — homogeneous-fleet wins \
         (gated in BENCH_search.json)";
      (* four identical apps: deterministic dwell (2 samples), worst
         interference 3 x 2 = 6 = T*_w, so exactly Safe at the
         boundary — the hardest shape for the quotient to preserve *)
      let homog =
        Array.init 4 (fun id ->
            Sched.Appspec.make ~id
              ~name:(Printf.sprintf "H%d" (id + 1))
              ~t_w_max:6 ~t_dw_min:(Array.make 7 2)
              ~t_dw_max:(Array.make 7 2) ~r:9)
      in
      let exact = Core.Dverify.verify homog in
      let quot = Core.Dverify.verify ~symmetry:true homog in
      let verdict_tag (r : Core.Dverify.result) =
        match r.Core.Dverify.verdict with
        | Core.Dverify.Safe -> "safe"
        | Core.Dverify.Unsafe _ -> "unsafe"
        | Core.Dverify.Undetermined _ -> "undec"
      in
      if verdict_tag exact <> verdict_tag quot then
        failwith "x15: symmetry quotient changed the verdict";
      if
        exact.Core.Dverify.stats.Core.Dverify.max_wait
        <> quot.Core.Dverify.stats.Core.Dverify.max_wait
      then failwith "x15: symmetry quotient changed the dwell table input";
      gauge "bench.x15.homog4_exact" exact.Core.Dverify.stats.Core.Dverify.states
        exact.Core.Dverify.stats.Core.Dverify.elapsed;
      gauge "bench.x15.homog4_quotient"
        quot.Core.Dverify.stats.Core.Dverify.states
        quot.Core.Dverify.stats.Core.Dverify.elapsed;
      let state_ratio =
        float_of_int exact.Core.Dverify.stats.Core.Dverify.states
        /. float_of_int (max 1 quot.Core.Dverify.stats.Core.Dverify.states)
      in
      Obs.Metric.set_gauge "bench.x15.state_ratio" state_ratio;
      Printf.printf "  %-34s %13.1fx fewer states explored\n"
        "bench.x15.state_ratio" state_ratio;
      if state_ratio < 5. then
        failwith
          (Printf.sprintf "x15: quotient win %.1fx below the 5x floor"
             state_ratio);
      (* mapping screen: six clones of C1 (identical timing, so every
         probed group is homogeneous) mapped with and without the
         analytic screen.  Engine runs avoided = screened probes; the
         packing and the verification count must not move. *)
      let c1 = find_app "C1" in
      let clones =
        List.init 6 (fun i ->
            { c1 with Core.App.name = Printf.sprintf "H%d" (i + 1) })
      in
      let screened_counter = Obs.Metric.counter "mapping.screened" in
      let before = Obs.Metric.value screened_counter in
      let on = Core.Mapping.first_fit clones in
      let screened = Obs.Metric.value screened_counter - before in
      let off = Core.Mapping.first_fit ~prefilter:false ~symmetry:false clones in
      let render o = Format.asprintf "%a" Core.Mapping.pp o in
      if render on <> render off then
        failwith "x15: analytic screen changed the packing";
      let runs_off = off.Core.Mapping.verifications in
      let runs_on = runs_off - screened in
      let run_ratio = float_of_int runs_off /. float_of_int (max 1 runs_on) in
      Obs.Metric.set_gauge "bench.x15.mapping_engine_runs_off"
        (float_of_int runs_off);
      Obs.Metric.set_gauge "bench.x15.mapping_engine_runs_on"
        (float_of_int runs_on);
      Obs.Metric.set_gauge "bench.x15.engine_run_ratio" run_ratio;
      Printf.printf
        "  %-34s %5d engine runs -> %d (%0.1fx avoided by the screen)\n"
        "bench.x15.engine_run_ratio" runs_off runs_on run_ratio;
      ignore (write_snapshot ~file:"BENCH_search.json" ~command:"bench-search"))

(* ------------------------------------------------------------------ *)
(* Persistent-cache snapshot: the full case-study pipeline (dwell
   tables + first-fit mapping) against one store file, cold then warm,
   written to BENCH_cache.json.  The verifier is wrapped in an
   engine-run counter: the warm run must answer every group from the
   store (0 engine runs) while rendering a byte-identical packing —
   either divergence fails the bench. *)

let cache_snapshot () =
  section "X13" "Persistent-cache snapshot — BENCH_cache.json (cold vs warm)";
  (* pinned sequential: speculative parallel probes would perturb the
     engine-run and provenance counts the committed baseline pins *)
  Par.Pool.set_default_jobs 1;
  let path = Filename.temp_file "cpsdim-bench" ".store" in
  Sys.remove path;
  let engine_runs = ref 0 in
  let counting specs =
    incr engine_runs;
    Core.Mapping.default_verifier specs
  in
  let run () =
    match Core.Pcache.open_ ~path with
    | Error e -> failwith ("cache snapshot: " ^ e)
    | Ok pc ->
      Fun.protect
        ~finally:(fun () -> Core.Pcache.close pc)
        (fun () ->
          let t0 = Obs.Clock.now () in
          let apps =
            List.map
              (fun (a : Casestudy.app) ->
                Core.App.make
                  ~cache:(Core.Pcache.dwell_cache pc)
                  ~name:a.Casestudy.name ~plant:a.Casestudy.plant
                  ~gains:a.Casestudy.gains ~r:a.Casestudy.r
                  ~j_star:a.Casestudy.j_star ())
              Casestudy.all
          in
          let mapping =
            Core.Mapping.first_fit
              ~cache:(Core.Pcache.mapping_cache pc)
              ~verifier:counting apps
          in
          let dt = Obs.Clock.now () -. t0 in
          let entries = (Core.Pcache.stats pc).Store.entries in
          (dt, Format.asprintf "%a" Core.Mapping.pp mapping, entries))
  in
  (* obs is live across both passes, so the snapshot records the full
     hit mix: the cold pass answers every group from the engine, the
     warm pass from disk — cache.verdict.engine vs cache.verdict.disk
     in the same report, next to the store.find/append latencies *)
  Obs.Metric.reset ();
  Obs.Span.reset ();
  Obs.Trace_ctx.reset ();
  Obs.Trace_ctx.enable ();
  Fun.protect ~finally:Obs.Trace_ctx.disable (fun () ->
      engine_runs := 0;
      let cold_s, cold_out, entries = run () in
      let cold_runs = !engine_runs in
      engine_runs := 0;
      let warm_s, warm_out, _ = run () in
      let warm_runs = !engine_runs in
      Sys.remove path;
      if not (String.equal cold_out warm_out) then
        failwith "cache snapshot: warm output diverges from cold";
      if warm_runs <> 0 then
        failwith
          (Printf.sprintf "cache snapshot: warm run performed %d engine run(s)"
             warm_runs);
      let speedup = cold_s /. Float.max 1e-9 warm_s in
      Printf.printf
        "cold %.2fs (%d engine runs) | warm %.2fs (0 engine runs, %.0fx) | %d records\n"
        cold_s cold_runs warm_s speedup entries;
      print_endline "warm packing byte-identical to cold";
      Obs.Metric.set_gauge "bench.cache.cold_s" cold_s;
      Obs.Metric.set_gauge "bench.cache.warm_s" warm_s;
      Obs.Metric.set_gauge "bench.cache.speedup" speedup;
      Obs.Metric.set_gauge "bench.cache.cold_engine_runs"
        (float_of_int cold_runs);
      Obs.Metric.set_gauge "bench.cache.warm_engine_runs"
        (float_of_int warm_runs);
      Obs.Metric.set_gauge "bench.cache.entries" (float_of_int entries);
      ignore (write_snapshot ~file:"BENCH_cache.json" ~command:"bench-cache"))

(* ------------------------------------------------------------------ *)
(* Lossy-transport sweep: the blackout campaign of X9 replayed on the
   TTW backend under increasing link-loss rates, written to
   BENCH_bus.json.  The curve of guarantee violations (and of
   transport-level overruns) against the loss rate is the dimensioning
   question the transport seam exists to answer.  The whole sweep is a
   pure function of (spec, seed, backend), so it runs twice and any
   divergence between the passes is a hard failure. *)

let bus_sweep () =
  section "X16" "Lossy-transport sweep — BENCH_bus.json (TTW, link:p=P)";
  let slots =
    [
      List.map find_app [ "C1"; "C5"; "C4"; "C3" ];
      List.map find_app [ "C6"; "C2" ];
    ]
  in
  let rates = [ 0.0; 0.05; 0.1; 0.2; 0.3 ] in
  let run_at p =
    let spec =
      match Faults.Spec.parse (Printf.sprintf "link:p=%g" p) with
      | Ok s -> s
      | Error e -> failwith e
    in
    match
      Cosim.Campaign.run
        ~bus:(Backends.default_of "ttw")
        ~spec ~seed:42L ~runs:10 ~horizon:300 slots
    with
    | Error e -> failwith e
    | Ok summary -> (Format.asprintf "%a" Cosim.Campaign.pp summary, summary)
  in
  let sweep () = List.map run_at rates in
  Obs.Metric.reset ();
  Obs.Span.reset ();
  Obs.Trace_ctx.reset ();
  Obs.Trace_ctx.enable ();
  Fun.protect ~finally:Obs.Trace_ctx.disable (fun () ->
      let first = sweep () and second = sweep () in
      List.iteri
        (fun i ((out1, _), (out2, _)) ->
          if not (String.equal out1 out2) then
            failwith
              (Printf.sprintf
                 "bus sweep: campaign at p=%g is nondeterministic"
                 (List.nth rates i)))
        (List.combine first second);
      Printf.printf "%8s %10s %10s %12s %10s\n" "loss p" "violations"
        "lost tx" "undelivered" "overruns";
      List.iter2
        (fun p (_, (s : Cosim.Campaign.summary)) ->
          let sum f =
            List.fold_left (fun acc g -> acc + f g) 0 s.Cosim.Campaign.slots
          in
          let lost = sum (fun g -> g.Cosim.Campaign.bus_lost_tx) in
          let undeliv = sum (fun g -> g.Cosim.Campaign.bus_undelivered) in
          let over = sum (fun g -> g.Cosim.Campaign.bus_overruns) in
          Printf.printf "%8g %10d %10d %12d %10d\n" p
            s.Cosim.Campaign.total_violations lost undeliv over;
          let gauge kind v =
            Obs.Metric.set_gauge
              (Printf.sprintf "bench.bus.ttw.p%g.%s" p kind)
              (float_of_int v)
          in
          gauge "violations" s.Cosim.Campaign.total_violations;
          gauge "lost_tx" lost;
          gauge "undelivered" undeliv;
          gauge "overruns" over)
        rates first;
      print_endline "sweep byte-identical across two passes";
      ignore (write_snapshot ~file:"BENCH_bus.json" ~command:"bench-bus"))

(* ------------------------------------------------------------------ *)
(* Resident-service snapshot: sustained request throughput of the serve
   router over a synthetic 10k-application fleet, written to
   BENCH_serve.json.  Three passes against one warm service: cold
   (every group reaches the engine), warm (the identical request log
   replayed — zero engine runs, byte-identical verdict payloads) and
   incremental (one application's timing mutated — exactly one group
   re-verified).  Any other hit mix, a payload divergence, or a warm
   speedup under 10x is a hard failure. *)

let serve_snapshot () =
  section "X17"
    "Resident-service snapshot — BENCH_serve.json (cold/warm/incremental)";
  (* the serve story shards independent groups across domains *)
  Par.Pool.set_default_jobs 4;
  let n_apps = 10_000 and group_size = 5 and groups_per_req = 10 in
  let n_groups = n_apps / group_size in
  let n_requests = n_groups / groups_per_req in
  (* distinct names make every group fingerprint unique; cycling the
     dwell ceiling and inter-arrival keeps the engine from collapsing
     the groups by symmetry *)
  let app_json ?dw_max i =
    let dw_max = match dw_max with Some d -> d | None -> 2 + (i mod 3) in
    Printf.sprintf
      "{\"name\":\"S%d\",\"t_w_max\":1,\"t_dw_min\":[1,1],\"t_dw_max\":[1,%d],\"r\":%d}"
      i dw_max
      (9 + (i mod 7))
  in
  let group ?mutate g =
    "["
    ^ String.concat ","
        (List.init group_size (fun k ->
             let i = (g * group_size) + k in
             if mutate = Some i then app_json ~dw_max:5 i else app_json i))
    ^ "]"
  in
  let request ?mutate r =
    Printf.sprintf "{\"id\":%d,\"kind\":\"verify\",\"groups\":[%s]}" r
      (String.concat ","
         (List.init groups_per_req (fun k ->
              group ?mutate ((r * groups_per_req) + k))))
  in
  let requests = List.init n_requests (fun r -> request r) in
  let payload_of line =
    match Obs.Jsonx.of_string line with
    | Ok (Obs.Jsonx.Assoc kvs) -> (
      match List.assoc_opt "output" kvs with
      | Some (Obs.Jsonx.String s) -> s
      | _ -> failwith "serve snapshot: response lacks an output payload")
    | _ -> failwith "serve snapshot: unparseable response"
  in
  Obs.Metric.reset ();
  Obs.Span.reset ();
  Obs.Trace_ctx.reset ();
  Obs.Trace_ctx.enable ();
  Fun.protect ~finally:Obs.Trace_ctx.disable (fun () ->
      let svc = Serve.Service.create () in
      let pass lines =
        let t0 = Obs.Clock.now () in
        let answers =
          List.map (fun l -> fst (Serve.Service.handle_line svc l)) lines
        in
        (Obs.Clock.now () -. t0, List.map payload_of answers)
      in
      let cold_s, cold_payloads = pass requests in
      let cold_runs = Serve.Service.engine_runs svc in
      let warm_s, warm_payloads = pass requests in
      let warm_runs = Serve.Service.engine_runs svc - cold_runs in
      if cold_runs <> n_groups then
        failwith
          (Printf.sprintf "serve snapshot: cold pass ran the engine %d/%d times"
             cold_runs n_groups);
      if warm_runs <> 0 then
        failwith
          (Printf.sprintf "serve snapshot: warm pass ran the engine %d time(s)"
             warm_runs);
      if cold_payloads <> warm_payloads then
        failwith "serve snapshot: warm verdict payloads diverge from cold";
      (* one mutated application: its group — and only its group — is
         re-verified, the request's other groups answer from memory *)
      let before = Serve.Service.engine_runs svc in
      let incr_s, _ = pass [ request ~mutate:3 0 ] in
      let incr_runs = Serve.Service.engine_runs svc - before in
      if incr_runs <> 1 then
        failwith
          (Printf.sprintf
             "serve snapshot: one-app change re-ran the engine %d time(s)"
             incr_runs);
      let speedup = cold_s /. Float.max 1e-9 warm_s in
      if speedup < 10.0 then
        failwith
          (Printf.sprintf "serve snapshot: warm speedup %.1fx is below 10x"
             speedup);
      Printf.printf
        "%d apps in %d groups over %d requests\n\
         cold %.2fs (%d engine runs, %.0f req/s) | warm %.2fs (0 engine runs, \
         %.0f req/s, %.0fx) | incremental %d engine run\n"
        n_apps n_groups n_requests cold_s cold_runs
        (float_of_int n_requests /. Float.max 1e-9 cold_s)
        warm_s
        (float_of_int n_requests /. Float.max 1e-9 warm_s)
        speedup incr_runs;
      print_endline "warm verdict payloads byte-identical to cold";
      Obs.Metric.set_gauge "bench.serve.apps" (float_of_int n_apps);
      Obs.Metric.set_gauge "bench.serve.groups" (float_of_int n_groups);
      Obs.Metric.set_gauge "bench.serve.requests" (float_of_int n_requests);
      Obs.Metric.set_gauge "bench.serve.cold_engine_runs"
        (float_of_int cold_runs);
      Obs.Metric.set_gauge "bench.serve.warm_engine_runs"
        (float_of_int warm_runs);
      Obs.Metric.set_gauge "bench.serve.incr_engine_runs"
        (float_of_int incr_runs);
      Obs.Metric.set_gauge "bench.serve.cold_s" cold_s;
      Obs.Metric.set_gauge "bench.serve.warm_s" warm_s;
      Obs.Metric.set_gauge "bench.serve.incr_s" incr_s;
      Obs.Metric.set_gauge "bench.serve.cold_req_per_sec"
        (float_of_int n_requests /. Float.max 1e-9 cold_s);
      Obs.Metric.set_gauge "bench.serve.warm_req_per_sec"
        (float_of_int n_requests /. Float.max 1e-9 warm_s);
      Obs.Metric.set_gauge "bench.serve.warm_speedup" speedup;
      ignore (write_snapshot ~file:"BENCH_serve.json" ~command:"bench-serve"))

(* ------------------------------------------------------------------ *)

let sections =
  [
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("table1", table1);
    ("mapping", mapping);
    ("fig8", fig8);
    ("fig9", fig9);
    ("verify", verify_times);
    ("margins", margins);
    ("flexray", flexray_check);
    ("ablation", preemption_ablation);
    ("memory", table_memory);
    ("granularity", granularity);
    ("system", system_simulation);
    ("fleet", fleet_scalability);
    ("micro", microbench);
    ("obs", obs_snapshot);
    ("faults", faults_snapshot);
    ("par", par_snapshot);
    ("search", search_snapshot);
    ("cache", cache_snapshot);
    ("bus", bus_sweep);
    ("serve", serve_snapshot);
  ]

(* no arguments runs everything; otherwise each argument names one
   section to run (e.g. `bench par` for the parallel snapshot alone) *)
let () =
  (match Array.to_list Sys.argv with
   | [] | [ _ ] -> List.iter (fun (_, f) -> f ()) sections
   | _ :: names ->
     List.iter
       (fun name ->
         match List.assoc_opt name sections with
         | Some f -> f ()
         | None ->
           failwith
             (Printf.sprintf "unknown bench section %S (have: %s)" name
                (String.concat ", " (List.map fst sections))))
       names);
  print_newline ()
