(* The paper's Fig. 8 scenario: the four applications mapped to slot S1
   (C1, C5, C4, C3 — two DC-motor position loops and two speed loops)
   are all disturbed at the same instant and must share the single TT
   slot.  The run shows the EDF-by-slack grant order, preemption at
   each application's minimum dwell, and the last occupant keeping the
   slot for its full maximum dwell.

   Run with:  dune exec examples/motor_slot_sharing.exe *)

let () =
  let apps =
    List.map
      (fun name ->
        let a = Casestudy.find name in
        Core.App.make ~name ~plant:a.Casestudy.plant ~gains:a.Casestudy.gains
          ~r:a.Casestudy.r ~j_star:a.Casestudy.j_star ())
      [ "C1"; "C5"; "C4"; "C3" ]
  in

  (* the mapping run already proved this group safe; double-check *)
  let specs = Core.Mapping.specs_of_group apps in
  (match (Core.Dverify.verify specs).Core.Dverify.verdict with
   | Core.Dverify.Safe -> Format.printf "group {C1,C5,C4,C3} verified safe@.@."
   | Core.Dverify.Unsafe _ | Core.Dverify.Undetermined _ ->
     failwith "unexpected: paper group unsafe");

  let scenario =
    Cosim.Scenario.make ~apps
      ~disturbances:[ (0, "C1"); (0, "C3"); (0, "C4"); (0, "C5") ]
      ~horizon:50
  in
  let trace = Cosim.Engine.run scenario in

  Format.printf "slot ownership:@.";
  List.iter
    (fun (id, first, last) ->
      Format.printf "  %s owns S1 during samples %d..%d (%d samples)@."
        trace.Cosim.Trace.names.(id) first last (last - first + 1))
    (Cosim.Trace.owner_intervals trace);

  Format.printf "@.settling (budget in parentheses):@.";
  List.iter2
    (fun (a : Core.App.t) id ->
      match Cosim.Trace.settling_after trace ~id ~sample:0 with
      | Some j ->
        Format.printf "  %s: J = %d samples = %.2fs (J* = %d), TT samples used = %d@."
          a.Core.App.name j
          (float_of_int j *. trace.Cosim.Trace.h)
          a.Core.App.j_star
          (Cosim.Trace.tt_samples trace ~id)
      | None -> Format.printf "  %s: did not settle@." a.Core.App.name)
    apps [ 0; 1; 2; 3 ];

  Format.printf "@.all requirements met: %b@."
    (Cosim.Trace.meets_requirements trace apps)
