(* End-to-end design for a NEW plant, not taken from the case study:

   1. model an (unstable) inverted-pendulum-like second-order plant;
   2. design the fast TT controller K_T by pole placement and the slow
      ET controller K_E by LQR on the delay-augmented system;
   3. check the switching-stability condition (common quadratic
      Lyapunov function) that Sec. 3.1 of the paper shows is essential;
   4. derive the dwell-time tables and the scheduler-facing timing
      abstraction;
   5. check how many copies of the loop can share one TT slot, and
      validate the ET one-sample-delay assumption on every registered
      transport backend (FlexRay and TTW).

   Run with:  dune exec examples/design_from_scratch.exe *)

let () =
  (* 1. the plant: sampled double integrator with a slow drift pole *)
  let plant =
    Control.Plant.make
      ~phi:(Linalg.Mat.of_rows [ [ 1.01; 0.02 ]; [ 0.; 0.98 ] ])
      ~gamma:[| 0.0002; 0.02 |] ~c:[| 1.; 0. |] ~h:0.02
  in
  Format.printf "== plant ==@.%a@." Control.Plant.pp plant;
  Format.printf "open-loop stable: %b@.@." (Control.Plant.is_open_loop_stable plant);

  (* 2. controllers for the two communication modes *)
  let kt = Control.Pole_place.place_tt plant [ (0.25, 0.1) ] in
  let ke = Control.Lqr.gain_et ~r:0.4 plant in
  let gains = Control.Switched.make_gains plant ~kt ~ke in
  Format.printf "K_T = %a@.K_E = %a@.@." Linalg.Vec.pp kt Linalg.Vec.pp ke;

  (* 3. switching stability: both modes on the shared augmented state *)
  (match Control.Switch_stab.analyze plant gains with
   | Control.Switch_stab.Common_lyapunov _ ->
     Format.printf "switching stability: common Lyapunov certificate found@.@."
   | v ->
     Format.printf "switching stability: %a@.@." Control.Switch_stab.pp_verdict v);

  (* 4. requirement and dwell tables.  J_T and J_E bracket J*. *)
  let j_star = 20 in
  let app name = Core.App.make ~name ~plant ~gains ~r:40 ~j_star () in
  let a = app "P1" in
  Format.printf "== dimensioning ==@.%a@.@." Core.App.pp a;

  (* 5. how many copies share one slot?  Grow the group until the
     verifier rejects it (capped at 3 copies to keep the demo fast). *)
  let rec grow group k =
    if k > 3 then group
    else begin
      let candidate = group @ [ app (Printf.sprintf "P%d" k) ] in
      let specs = Core.Mapping.specs_of_group candidate in
      match (Core.Dverify.verify specs).Core.Dverify.verdict with
      | Core.Dverify.Safe ->
        Format.printf "  %d copies: safe@." (List.length candidate);
        grow candidate (k + 1)
      | Core.Dverify.Unsafe _ | Core.Dverify.Undetermined _ ->
        Format.printf "  %d copies: UNSAFE@." (List.length candidate);
        group
    end
  in
  let group = grow [ a ] 2 in
  Format.printf "copies sharing one TT slot: %d@.@." (List.length group);

  (* 6. is the one-sample ET delay assumption justified on the bus?
     Every registered transport answers the same question through the
     generic WCRT query: our flow, one control frame per sampling
     period, against one interferer of the same shape per group
     member. *)
  List.iter
    (fun backend ->
      let bus = Bus.default backend in
      let size = Bus.control_frame_size bus in
      let interferers =
        List.init (List.length group) (fun _ -> (size, 4 * Bus.cycle_us bus))
      in
      match
        Bus.wcrt_us bus ~flow:(List.length group + 1) ~size ~hp:interferers
      with
      | Some w ->
        Format.printf "ET worst-case delay on %s:@.  %d us (h = 20000 us) -> %s@."
          (Bus.info bus) w
          (if w <= 20_000 then "one-sample-delay design is sound"
           else "one-sample-delay design is NOT sound")
      | None ->
        Format.printf "ET frame can be starved on %s@." (Bus.info bus))
    Backends.all
