(* A complete dimensioning report for the paper's case study:

   1. first-fit mapping (the paper's heuristic) and the exact minimum
      (subset DP) — is the heuristic optimal here?
   2. per-application worst-case waits and settling margins on the
      chosen slots — how tight is the dimensioning really?
   3. a counterexample for a group that does NOT fit, showing the
      schedule that breaks it;
   4. UPPAAL model export for external cross-checking.

   Run with:  dune exec examples/dimensioning_report.exe *)

let () =
  let apps =
    List.map
      (fun (a : Casestudy.app) ->
        Core.App.make ~name:a.Casestudy.name ~plant:a.Casestudy.plant
          ~gains:a.Casestudy.gains ~r:a.Casestudy.r ~j_star:a.Casestudy.j_star
          ())
      Casestudy.all
  in

  Format.printf "== mapping ==@.";
  let ff = Core.Mapping.first_fit apps in
  Format.printf "first-fit:@.%a@." Core.Mapping.pp ff;
  let opt = Core.Mapping.optimal apps in
  Format.printf "exact minimum:@.%a@." Core.Mapping.pp opt;
  Format.printf "first-fit is %s@.@."
    (if List.length ff.Core.Mapping.slots = List.length opt.Core.Mapping.slots
     then "optimal here"
     else "NOT optimal here");

  Format.printf "== margins on the first-fit slots ==@.";
  List.iter
    (fun slot ->
      Format.printf "S%d:@.%a@." (slot.Core.Mapping.index + 1) Core.Margin.pp
        (Core.Margin.analyse ~apps:slot.Core.Mapping.apps ()))
    ff.Core.Mapping.slots;

  Format.printf "@.== why C6 cannot join S1 ==@.";
  let overfull =
    List.filter
      (fun (a : Core.App.t) ->
        List.mem a.Core.App.name [ "C1"; "C5"; "C4"; "C6" ])
      apps
  in
  let specs = Core.Mapping.specs_of_group overfull in
  (match (Core.Dverify.verify specs).Core.Dverify.verdict with
   | Core.Dverify.Safe -> Format.printf "unexpectedly safe?!@."
   | Core.Dverify.Undetermined _ -> Format.printf "unexpectedly undetermined?!@."
   | Core.Dverify.Unsafe ce ->
     Format.printf "%a@." (Core.Dverify.pp_counterexample specs) ce);

  Format.printf "@.== UPPAAL export ==@.";
  List.iter
    (fun slot ->
      let specs = Core.Mapping.specs_of_group slot.Core.Mapping.apps in
      let basename = Printf.sprintf "slot%d" (slot.Core.Mapping.index + 1) in
      match
        Core.Uppaal_export.write ~dir:(Filename.get_temp_dir_name ()) ~basename
          specs
      with
      | Ok path -> Format.printf "wrote %s (+ .q)@." path
      | Error m -> Format.printf "export failed: %s@." m)
    ff.Core.Mapping.slots
