(** The transport seam: an abstract BUS signature that every network
    backend (FlexRay today, Time-Triggered Wireless, ...) implements,
    plus first-class backend values so callers pick the transport at
    runtime.

    The co-simulation layer talks about {e messages}: a message is
    either time-triggered — bound to a contention-free channel the
    backend serves at a fixed point of its cycle (a FlexRay static
    slot, a reserved TTW round slot) — or event-triggered, contending
    for shared bandwidth under fixed-priority arbitration (the FlexRay
    dynamic segment, the free slots of a TTW round).  Backends simulate
    delivery, report per-message latency and transmission attempts, and
    answer the worst-case response-time query slot sizing needs.

    Loss is declarative: a {!loss} hook decides, per transmission
    attempt, whether the medium destroys it.  Hooks are pure functions
    of the message and attempt number, so outcomes never depend on
    simulation order, and the provided constructors derive them from
    {!Faults.Plan} masks or the seeded {!Faults.Prng} stream — the same
    machinery that drives fault-aware co-simulation. *)

type cls =
  | Tt of { channel : int }
      (** contention-free reserved channel, 0-based; delivery latency
          is deterministic for phase-aligned releases *)
  | Et of { flow : int; size : int }
      (** contended flow, 1-based id = priority (lower id wins);
          [size] is in backend bandwidth units (FlexRay minislots, TTW
          data slots) *)

type message = { cls : cls; release_us : int }

type delivery = {
  message : message;
  delivered_us : int;  (** end of the successful transmission *)
  attempts : int;  (** transmissions used; 1 = first try succeeded *)
}

type outcome = {
  deliveries : delivery list;  (** in delivery order *)
  undelivered : (message * int) list;
      (** not delivered within the horizon, with attempts burned *)
  lost_tx : int;  (** transmissions destroyed by the loss hook *)
}

type loss = message -> attempt:int -> bool
(** [loss m ~attempt] is [true] when the medium destroys the
    [attempt]-th transmission (1-based) of [m].  Must be pure. *)

module type BACKEND = sig
  val name : string
  (** registry key, e.g. ["flexray"] *)

  type config

  val default_config : config

  val config_info : config -> string
  (** one-line human description of the cycle structure *)

  val cycle_us : config -> int
  (** period of the TDMA structure: FlexRay cycle, TTW round *)

  val tt_channels : config -> int
  (** capacity query: contention-free channels served per cycle *)

  val et_capacity : config -> int
  (** contended bandwidth units available per cycle (FlexRay
      minislots, free TTW round slots) *)

  val control_frame_size : config -> int
  (** bandwidth units one per-sample control message occupies on this
      medium — what slot sizing budgets per application *)

  val simulate :
    ?loss:loss -> config -> until_us:int -> message list -> outcome
  (** Run the bus until [until_us].  A destroyed transmission keeps
      its message queued for the next service opportunity.
      @raise Invalid_argument on malformed submissions: negative
      release, channel outside [0, tt_channels), flow ids < 1, or
      sizes the segment can never carry. *)

  val wcrt_us : config -> flow:int -> size:int -> hp:(int * int) list -> int option
  (** Worst-case response time of an ET message of [flow]/[size] under
      higher-priority interferers given as [(size, period_us)] pairs;
      [None] when the flow can be starved forever. *)
end

type backend = (module BACKEND)

type configured =
  | Configured :
      (module BACKEND with type config = 'c) * 'c
      -> configured
      (** a backend packed with a concrete configuration — what the
          co-simulation layer passes around *)

(* -------------------------------------------------------------- *)
(* Message constructors *)

val tt : channel:int -> release_us:int -> message
(** @raise Invalid_argument on negative channel or release. *)

val et : ?size:int -> flow:int -> release_us:int -> unit -> message
(** [size] defaults to 1.
    @raise Invalid_argument on flow < 1, size < 1 or negative release. *)

val delay_us : delivery -> int
(** Delivery latency [delivered_us - release_us]. *)

(* -------------------------------------------------------------- *)
(* First-class backend helpers *)

val name : backend -> string
val default : backend -> configured

val configured_name : configured -> string
val info : configured -> string
val cycle_us : configured -> int
val tt_channels : configured -> int
val et_capacity : configured -> int
val control_frame_size : configured -> int
val simulate : ?loss:loss -> configured -> until_us:int -> message list -> outcome
val wcrt_us : configured -> flow:int -> size:int -> hp:(int * int) list -> int option

(* -------------------------------------------------------------- *)
(* Loss hooks *)

val loss_none : loss
(** Never destroys anything — the wired nominal medium. *)

val loss_of_plan : h_us:int -> Faults.Plan.t -> loss
(** The fault plan's ET-loss masks as link loss: the first attempt of
    an ET message of flow [f] (1-based scenario app id [f - 1])
    released at sample [k = release_us / h_us] is destroyed when
    [plan.et_loss.(f-1).(k)].  TT messages are never touched — slot
    blackouts are an arbitration-level fault, not a medium loss. *)

val loss_bernoulli : seed:int64 -> p:float -> loss
(** Independent loss with probability [p] per transmission attempt,
    drawn from a {!Faults.Prng} child stream keyed by (class, release,
    attempt) — pure, order-independent, reproducible. *)

val loss_burst : seed:int64 -> p:float -> len:int -> loss
(** Correlated fading: with probability [p] (keyed by class and
    release) a message's first [len] transmission attempts are all
    destroyed — the wireless burst-loss model. *)
