type cls = Tt of { channel : int } | Et of { flow : int; size : int }
type message = { cls : cls; release_us : int }
type delivery = { message : message; delivered_us : int; attempts : int }

type outcome = {
  deliveries : delivery list;
  undelivered : (message * int) list;
  lost_tx : int;
}

type loss = message -> attempt:int -> bool

module type BACKEND = sig
  val name : string

  type config

  val default_config : config
  val config_info : config -> string
  val cycle_us : config -> int
  val tt_channels : config -> int
  val et_capacity : config -> int
  val control_frame_size : config -> int

  val simulate :
    ?loss:loss -> config -> until_us:int -> message list -> outcome

  val wcrt_us :
    config -> flow:int -> size:int -> hp:(int * int) list -> int option
end

type backend = (module BACKEND)

type configured =
  | Configured : (module BACKEND with type config = 'c) * 'c -> configured

(* -------------------------------------------------------------- *)
(* Message constructors *)

let tt ~channel ~release_us =
  if channel < 0 then invalid_arg "Bus.tt: negative channel";
  if release_us < 0 then invalid_arg "Bus.tt: negative release";
  { cls = Tt { channel }; release_us }

let et ?(size = 1) ~flow ~release_us () =
  if flow < 1 then invalid_arg "Bus.et: flow ids are 1-based";
  if size < 1 then invalid_arg "Bus.et: empty frame";
  if release_us < 0 then invalid_arg "Bus.et: negative release";
  { cls = Et { flow; size }; release_us }

let delay_us d = d.delivered_us - d.message.release_us

(* -------------------------------------------------------------- *)
(* First-class backend helpers *)

let name (module B : BACKEND) = B.name
let default ((module B : BACKEND) as _b) = Configured ((module B), B.default_config)
let configured_name (Configured ((module B), _)) = B.name
let info (Configured ((module B), cfg)) = B.config_info cfg
let cycle_us (Configured ((module B), cfg)) = B.cycle_us cfg
let tt_channels (Configured ((module B), cfg)) = B.tt_channels cfg
let et_capacity (Configured ((module B), cfg)) = B.et_capacity cfg

let control_frame_size (Configured ((module B), cfg)) =
  B.control_frame_size cfg

let simulate ?loss (Configured ((module B), cfg)) ~until_us messages =
  B.simulate ?loss cfg ~until_us messages

let wcrt_us (Configured ((module B), cfg)) ~flow ~size ~hp =
  B.wcrt_us cfg ~flow ~size ~hp

(* -------------------------------------------------------------- *)
(* Loss hooks.  Each is a pure function of (message, attempt): the
   randomized ones re-derive a child PRNG stream per query instead of
   advancing shared state, so two backends (or two simulation orders)
   see identical losses for identical traffic. *)

let loss_none _ ~attempt:_ = false

let loss_of_plan ~h_us (plan : Faults.Plan.t) m ~attempt =
  if attempt <> 1 then false
  else
    match m.cls with
    | Tt _ -> false
    | Et { flow; _ } ->
      let id = flow - 1 and k = m.release_us / h_us in
      id < Array.length plan.Faults.Plan.et_loss
      && k < plan.Faults.Plan.horizon
      && plan.Faults.Plan.et_loss.(id).(k)

(* distinct stream tags for the two message classes so a TT channel
   and an ET flow with the same index never share fades *)
let cls_tag = function
  | Tt { channel } -> (2 * channel) + 1
  | Et { flow; _ } -> 2 * flow

let loss_bernoulli ~seed ~p m ~attempt =
  let rng =
    Faults.Prng.create seed
    |> fun t ->
    Faults.Prng.split t (cls_tag m.cls)
    |> fun t ->
    Faults.Prng.split t m.release_us |> fun t -> Faults.Prng.split t attempt
  in
  Faults.Prng.bernoulli rng ~p

let loss_burst ~seed ~p ~len m ~attempt =
  if len < 1 then invalid_arg "Bus.loss_burst: len < 1";
  attempt <= len
  &&
  let rng =
    Faults.Prng.create seed
    |> fun t ->
    Faults.Prng.split t (cls_tag m.cls)
    |> fun t -> Faults.Prng.split t m.release_us
  in
  Faults.Prng.bernoulli rng ~p
