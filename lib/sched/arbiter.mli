(** Imperative convenience wrapper around {!Slot_state} for running
    scheduling scenarios and co-simulations: keeps the current state,
    the sample counter, and a log of grants/releases/preemptions. *)

type t

type log_entry = {
  sample : int;
  event : [ `Grant of int * int  (** id, wait at grant *)
          | `Release of int
          | `Preempt of int
          | `Error of int
          | `Deny of int  (** evicted by a TT slot blackout *) ];
}

val create : ?policy:Slot_state.policy -> Appspec.t array -> t
(** Default policy {!Slot_state.Eager_preempt}. *)

val specs : t -> Appspec.t array

val sample : t -> int
(** Number of ticks executed so far. *)

val step :
  t -> ?disturbed:int list -> ?slot_available:bool -> unit -> Slot_state.outcome
(** Advance one sample; [disturbed] defaults to none and
    [slot_available] to [true] (see {!Slot_state.tick} for the blackout
    semantics when [false]). *)

val run : t -> horizon:int -> disturbances:(int * int) list -> unit
(** [run t ~horizon ~disturbances] executes [horizon] ticks where
    [disturbances] lists [(sample, id)] arrival events (the disturbance
    is seen by the scheduler at that tick).  Events must not be earlier
    than the current sample. *)

val owner_trace : t -> int option array
(** Slot owner at each executed sample, index = sample. *)

val state : t -> Slot_state.t
val log : t -> log_entry list
(** Chronological. *)

val errors : t -> int list
(** Ids that entered the error phase. *)
