type log_entry = {
  sample : int;
  event :
    [ `Grant of int * int
    | `Release of int
    | `Preempt of int
    | `Error of int
    | `Deny of int ];
}

type t = {
  specs : Appspec.t array;
  policy : Slot_state.policy;
  mutable state : Slot_state.t;
  mutable sample : int;
  mutable log : log_entry list;  (* newest first *)
  mutable owners : int option list;  (* newest first *)
}

let create ?(policy = Slot_state.Eager_preempt) specs =
  {
    specs;
    policy;
    state = Slot_state.initial specs;
    sample = 0;
    log = [];
    owners = [];
  }

let specs t = t.specs
let sample t = t.sample

let step t ?(disturbed = []) ?slot_available () =
  let state, outcome =
    Slot_state.tick ~policy:t.policy ?slot_available t.specs t.state ~disturbed
  in
  let entry event = { sample = t.sample; event } in
  List.iter (fun (id, wt) -> t.log <- entry (`Grant (id, wt)) :: t.log)
    outcome.Slot_state.granted;
  List.iter (fun id -> t.log <- entry (`Release id) :: t.log)
    outcome.Slot_state.released;
  List.iter (fun id -> t.log <- entry (`Preempt id) :: t.log)
    outcome.Slot_state.preempted;
  List.iter (fun id -> t.log <- entry (`Error id) :: t.log)
    outcome.Slot_state.new_errors;
  List.iter (fun id -> t.log <- entry (`Deny id) :: t.log)
    outcome.Slot_state.denied;
  if Obs.Trace_ctx.enabled () then begin
    Obs.Metric.count "arbiter.samples" 1;
    Obs.Metric.count "arbiter.grants" (List.length outcome.Slot_state.granted);
    Obs.Metric.count "arbiter.releases" (List.length outcome.Slot_state.released);
    Obs.Metric.count "arbiter.preemptions"
      (List.length outcome.Slot_state.preempted);
    Obs.Metric.count "arbiter.errors" (List.length outcome.Slot_state.new_errors);
    Obs.Metric.count "arbiter.denials" (List.length outcome.Slot_state.denied)
  end;
  t.state <- state;
  t.owners <- state.Slot_state.owner :: t.owners;
  t.sample <- t.sample + 1;
  outcome

let run t ~horizon ~disturbances =
  List.iter
    (fun (s, _) ->
      if s < t.sample then invalid_arg "Arbiter.run: disturbance in the past")
    disturbances;
  for k = t.sample to t.sample + horizon - 1 do
    let disturbed =
      List.filter_map (fun (s, id) -> if s = k then Some id else None)
        disturbances
    in
    ignore (step t ~disturbed ())
  done

let owner_trace t = Array.of_list (List.rev t.owners)
let state t = t.state
let log t = List.rev t.log

let errors t =
  List.filter_map
    (fun e -> match e.event with `Error id -> Some id | _ -> None)
    (log t)
