type phase =
  | Steady
  | Waiting of { wt : int }
  | Running of { wt_granted : int; ct : int; dt_min : int; dt_max : int }
  | Safe of { age : int }
  | Error

type t = { phases : phase array; buffer : int list; owner : int option }

type outcome = {
  granted : (int * int) list;
  released : int list;
  preempted : int list;
  new_errors : int list;
  denied : int list;
}

type policy = Eager_preempt | Lazy_preempt

let initial specs =
  Array.iteri
    (fun i (s : Appspec.t) ->
      if s.Appspec.id <> i then
        invalid_arg "Slot_state.initial: ids must be dense and in order")
    specs;
  { phases = Array.map (fun _ -> Steady) specs; buffer = []; owner = None }

(* EDF insertion implementing the Sort automaton: the new request is
   placed before the first queued request with strictly larger slack.
   Slack of a waiting app = t_w_max - wt. *)
let insert_edf specs phases buffer id =
  let slack i =
    match phases.(i) with
    | Waiting { wt } -> specs.(i).Appspec.t_w_max - wt
    | Steady | Running _ | Safe _ | Error ->
      invalid_arg "Slot_state: non-waiting id in buffer"
  in
  let s_new = slack id in
  let rec go = function
    | [] -> [ id ]
    | q :: rest as all -> if slack q > s_new then id :: all else q :: go rest
  in
  go buffer

let tick ?(policy = Eager_preempt) ?(slot_available = true) specs state ~disturbed =
  let n = Array.length specs in
  let phases = Array.copy state.phases in
  (* 1. aging *)
  for i = 0 to n - 1 do
    phases.(i) <-
      (match phases.(i) with
       | Steady -> Steady
       | Waiting { wt } -> Waiting { wt = wt + 1 }
       | Running r -> Running { r with ct = r.ct + 1 }
       | Safe { age } -> Safe { age = age + 1 }
       | Error -> Error)
  done;
  (* 2. quiet period over *)
  for i = 0 to n - 1 do
    match phases.(i) with
    | Safe { age } when age >= specs.(i).Appspec.r -> phases.(i) <- Steady
    | Safe _ | Steady | Waiting _ | Running _ | Error -> ()
  done;
  (* 3. admit new disturbances *)
  let buffer = ref state.buffer in
  List.iter
    (fun id ->
      if id < 0 || id >= n then invalid_arg "Slot_state.tick: bad id";
      match phases.(id) with
      | Steady ->
        phases.(id) <- Waiting { wt = 0 };
        buffer := insert_edf specs phases !buffer id
      | Waiting _ | Running _ | Safe _ | Error ->
        invalid_arg
          (Printf.sprintf
             "Slot_state.tick: disturbance for %s while not steady \
              (violates the sporadic model)"
             specs.(id).Appspec.name))
    disturbed;
  (* 4. deadline misses: an application that has waited past T*_w can
     no longer be served within its table and is in error; it must be
     flagged (and dropped from the buffer) before any grant so the
     dwell lookup below never sees an out-of-range wait *)
  let new_errors = ref [] in
  for i = 0 to n - 1 do
    match phases.(i) with
    | Waiting { wt } when wt > specs.(i).Appspec.t_w_max ->
      phases.(i) <- Error;
      new_errors := i :: !new_errors
    | Waiting _ | Steady | Running _ | Safe _ | Error -> ()
  done;
  buffer :=
    List.filter
      (fun id -> match phases.(id) with Waiting _ -> true | _ -> false)
      !buffer;
  (* 5. slot update *)
  let released = ref [] and preempted = ref [] and granted = ref [] in
  let denied = ref [] in
  let owner = ref state.owner in
  let grant_head () =
    match !buffer with
    | [] -> ()
    | id :: rest ->
      (match phases.(id) with
       | Waiting { wt } ->
         let dt_min = specs.(id).Appspec.t_dw_min.(wt)
         and dt_max = specs.(id).Appspec.t_dw_max.(wt) in
         phases.(id) <- Running { wt_granted = wt; ct = 0; dt_min; dt_max };
         buffer := rest;
         owner := Some id;
         granted := (id, wt) :: !granted
       | Steady | Running _ | Safe _ | Error ->
         invalid_arg "Slot_state: buffer head not waiting")
  in
  if not slot_available then begin
    (* TT slot blackout: the occupant is evicted to ET mode (its dwell
       may be cut below T-_dw — the guarantee monitor's business, not
       ours) and nobody is granted; waiting applications keep aging
       towards Error *)
    match !owner with
    | None -> ()
    | Some id ->
      (match phases.(id) with
       | Running { ct; wt_granted; _ } ->
         phases.(id) <- Safe { age = wt_granted + ct };
         owner := None;
         denied := id :: !denied
       | Steady | Waiting _ | Safe _ | Error ->
         invalid_arg "Slot_state: owner not running")
  end
  else
  (match !owner with
   | None -> grant_head ()
   | Some id ->
     (match phases.(id) with
      | Running { ct; dt_max; dt_min; wt_granted } ->
        (* the quiet timer of ET_SAFE runs from the sample at which the
           scheduler first saw the disturbance (the paper's time[id]),
           which is wt_granted + ct samples ago *)
        if ct >= dt_max then begin
          (* voluntary release at the maximum useful dwell *)
          phases.(id) <- Safe { age = wt_granted + ct };
          owner := None;
          released := id :: !released;
          grant_head ()
        end
        else if
          ct >= dt_min && !buffer <> []
          && (match policy with
              | Eager_preempt -> true
              | Lazy_preempt ->
                (* postpone until some waiter is on its last chance *)
                List.exists
                  (fun i ->
                    match phases.(i) with
                    | Waiting { wt } -> wt >= specs.(i).Appspec.t_w_max
                    | Steady | Running _ | Safe _ | Error -> false)
                  !buffer)
        then begin
          (* preemption once the minimum dwell is honoured *)
          phases.(id) <- Safe { age = wt_granted + ct };
          owner := None;
          preempted := id :: !preempted;
          grant_head ()
        end
      | Steady | Waiting _ | Safe _ | Error ->
        invalid_arg "Slot_state: owner not running"));
  ( { phases; buffer = !buffer; owner = !owner },
    {
      granted = List.rev !granted;
      released = List.rev !released;
      preempted = List.rev !preempted;
      new_errors = List.rev !new_errors;
      denied = List.rev !denied;
    } )

let force_steady t ~keep_quiet =
  let changed = ref false in
  let phases =
    Array.mapi
      (fun i p ->
        match p with
        | Safe _ when not (keep_quiet i) ->
          changed := true;
          Steady
        | Safe _ | Steady | Waiting _ | Running _ | Error -> p)
      t.phases
  in
  if !changed then { t with phases } else t

let has_error t =
  Array.exists (function Error -> true | _ -> false) t.phases

let phase t i = t.phases.(i)

let all_steady t =
  Array.for_all (function Steady -> true | _ -> false) t.phases

let equal a b =
  a.owner = b.owner && a.buffer = b.buffer && a.phases = b.phases

let hash t = Hashtbl.hash (t.phases, t.buffer, t.owner)

let pp specs ppf t =
  let pp_phase ppf = function
    | Steady -> Format.pp_print_string ppf "steady"
    | Waiting { wt } -> Format.fprintf ppf "wait(%d)" wt
    | Running { ct; wt_granted; _ } -> Format.fprintf ppf "run(ct=%d,w=%d)" ct wt_granted
    | Safe { age } -> Format.fprintf ppf "safe(%d)" age
    | Error -> Format.pp_print_string ppf "ERROR"
  in
  Format.fprintf ppf "@[<h>";
  Array.iteri
    (fun i p ->
      if i > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%s:%a" specs.(i).Appspec.name pp_phase p)
    t.phases;
  Format.fprintf ppf "@]"
