(** The canonical single-slot scheduler semantics (paper Sec. 4).

    One TT slot is shared by a group of applications.  The state is an
    immutable value and {!tick} is the one-sample transition function;
    both the runtime {!Arbiter} and the exact discrete verifier
    ([core.Dverify]) are built on it, so the co-simulation and the
    model checking cannot drift apart.

    Per-sample semantics (in order):
    + every application that is waiting or being served ages by one
      sample; waiting applications' wait counters [WT] increase;
    + applications whose post-disturbance quiet time reached [r] return
      to [Steady];
    + disturbances that arrived during the previous inter-sample
      interval are admitted: each moves its (necessarily [Steady])
      application to [Waiting] with [WT = 0] and inserts it into the
      buffer in EDF order (least slack [T*_w - WT] first, ties behind
      incumbents — exactly the Sort automaton's strict comparison);
    + the slot is updated: a running application that has exhausted its
      maximum dwell [T⁺_dw(T_w)] releases the slot; if the slot is free
      the buffer head is granted (recording [T⁻_dw]/[T⁺_dw] looked up at
      its current [WT]); otherwise, if the occupant has served at least
      its minimum dwell [T⁻_dw] and somebody is waiting, it is
      preempted and the head granted;
    + any application still waiting with [WT > T*_w] moves to [Error].
 *)

type phase =
  | Steady
  | Waiting of { wt : int }
  | Running of { wt_granted : int; ct : int; dt_min : int; dt_max : int }
  | Safe of { age : int }
      (** slot released; [age] counts samples since the scheduler first
          saw the disturbance (the paper's [time\[id\]]), and the
          application returns to [Steady] once [age] reaches [r] *)
  | Error

type t = private {
  phases : phase array;  (** indexed by [Appspec.id] *)
  buffer : int list;  (** waiting ids in EDF service order *)
  owner : int option;
}

type outcome = {
  granted : (int * int) list;  (** (id, wait at grant) *)
  released : int list;  (** voluntary releases this sample *)
  preempted : int list;
  new_errors : int list;
  denied : int list;
      (** occupant evicted because the slot itself was unavailable
          (fault injection; empty in nominal runs) *)
}

type policy =
  | Eager_preempt
      (** the paper's strategy: preempt the occupant as soon as its
          minimum dwell is honoured and somebody is waiting *)
  | Lazy_preempt
      (** the paper's concluding-remarks variant: let the occupant keep
          improving its settling time and preempt only when a waiting
          application is on its last admissible sample
          ([WT = T*_w]) — better average control performance, possibly
          at the cost of schedulability (re-verify!) *)

val initial : Appspec.t array -> t
(** All applications [Steady].  Validates that ids are dense [0..n-1].
    @raise Invalid_argument otherwise. *)

val tick :
  ?policy:policy ->
  ?slot_available:bool ->
  Appspec.t array ->
  t ->
  disturbed:int list ->
  t * outcome
(** One sample (default policy {!Eager_preempt}).  [disturbed] lists
    (in arrival order) the applications whose disturbance arrived since
    the previous sample.

    [slot_available] (default [true]) models TT slot blackouts for
    fault injection: when [false] the slot update is replaced by an
    eviction — a running occupant is forced to [Safe] (ET mode, listed
    in [outcome.denied]) regardless of its minimum dwell, and nothing
    is granted this sample, while waiting applications keep aging
    towards [Error].  Nominal callers (the verifiers) never pass it, so
    the verified semantics is untouched.
    @raise Invalid_argument if a disturbed application is not [Steady]
    (the sporadic model with [J* < r] excludes this; feeding such an
    input is a harness bug). *)

val has_error : t -> bool
val phase : t -> int -> phase
val all_steady : t -> bool

val force_steady : t -> keep_quiet:(int -> bool) -> t
(** Snap every [Safe] application for which [keep_quiet id] is [false]
    directly to [Steady].  This is an abstraction hook for verifiers:
    when an application can provably never be disturbed again (e.g. its
    disturbance budget is exhausted in bounded-instance verification),
    its quiet countdown is behaviourally irrelevant and collapsing it
    shrinks the state space. *)

val equal : t -> t -> bool
val hash : t -> int
val pp : Appspec.t array -> Format.formatter -> t -> unit
