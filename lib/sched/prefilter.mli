(** Two-sided analytic screening of a slot group, ahead of the exact
    engines.

    The exact verifiers decide safety of a candidate group by state
    exploration, which is the cost centre of every mapping run — yet
    most candidate groups are either so lightly loaded that a
    busy-window bound already proves every wait within [T*_w], or so
    overloaded that one concrete saturation schedule already exhibits a
    deadline miss.  This module decides those two easy regions
    analytically and leaves only the gap to the engine:

    - {b sufficient accept} ({!accepts}): a response-time fixed point
      in the style of {!Baseline.start_time_bound}, generalised to the
      dwell-table abstraction ({!Appspec.t}).  While an application
      waits, every competitor occupies the slot for at most its
      largest minimum dwell per grant (the occupant is preempted as
      soon as its minimum dwell is honoured whenever somebody waits —
      under {!Slot_state.Lazy_preempt} the bound weakens to the
      largest maximum dwell), and consecutive grants of one competitor
      start at least [r - T*_w] samples apart (a new disturbance may
      arrive [r] after the previous one, and the previous grant
      started at most [T*_w] after that previous arrival).  If the
      least fixed point of the resulting interference sum is within
      [T*_w] for every application, no reachable schedule can miss —
      the group is [Analytic_safe].

    - {b necessary reject} ({!rejects}): a demand-bound trigger
      (simultaneous-burst demand above some [T*_w], or total
      utilisation above 1) followed by concrete witness simulation of
      the greedy saturation adversary — every application is disturbed
      the moment the sporadic model allows, under a handful of arrival
      orders.  Each simulated schedule is one adversary strategy of
      the exact engine, so a deadline miss found here is a real
      counterexample and the group is [Analytic_unsafe], witness
      attached.  (The trigger is only a heuristic gate for the
      simulation; the witness alone decides.)

    Both sides are sound by construction: [Analytic_safe] implies the
    exact engine answers Safe, [Analytic_unsafe] implies it answers
    Unsafe — the differential battery in [test/test_prefilter.ml]
    checks exactly these two implications on random groups.
    Everything else is {!Inconclusive} and must fall through to the
    engine. *)

type witness = {
  steps : (int list * Slot_state.t) list;
      (** chronological (disturbed ids in arrival order, post state)
          from the initial state to the first miss — the same shape as
          the exact engine's counterexample *)
  failing : int list;  (** ids in error at the last step *)
}

type decision = Analytic_safe | Analytic_unsafe of witness | Inconclusive

val busy_window : ?policy:Slot_state.policy -> Appspec.t array -> int -> int option
(** [busy_window specs i] is the least fixed point of the interference
    sum for application [i] (default policy {!Slot_state.Eager_preempt}),
    or [None] when the iteration exceeds [T*_w(i)] — an upper bound on
    the wait of [i] at any grant, valid in every reachable schedule of
    the group. *)

val accepts : ?policy:Slot_state.policy -> Appspec.t array -> bool
(** Every application's {!busy_window} is within its [T*_w]. *)

val rejects : ?policy:Slot_state.policy -> Appspec.t array -> witness option
(** A saturation schedule missing a deadline, when the demand-bound
    trigger fires and one of the simulated arrival orders exhibits
    one. *)

val decide : ?policy:Slot_state.policy -> Appspec.t array -> decision
(** {!accepts}, then {!rejects}, then {!Inconclusive}.  Publishes the
    [prefilter.accepts] / [prefilter.rejects] / [prefilter.fallbacks]
    counters when observability is enabled. *)
