type witness = {
  steps : (int list * Slot_state.t) list;
  failing : int list;
}

type decision = Analytic_safe | Analytic_unsafe of witness | Inconclusive

(* ------------------------------------------------------------------ *)
(* Sufficient accept: busy-window fixed point.

   While application [i] waits, every slot update serves some
   competitor [j].  One grant of [j] occupies at most [quantum j]
   samples before the contended slot is handed over: under
   Eager_preempt the occupant is preempted at its minimum dwell
   whenever somebody waits (and an occupant already past it hands over
   immediately), so the quantum is the largest T⁻_dw entry; under
   Lazy_preempt the occupant may run to its maximum dwell, so the
   largest T⁺_dw entry.  Consecutive grants of [j] start at least
   [r_j - T*_w(j)] samples apart: the next disturbance arrives at
   least [r_j] after the previous one, and the previous grant started
   at most [T*_w(j)] after that previous arrival (later would already
   be a miss, and the bound only has to hold on miss-free prefixes —
   the first miss is what the fixed point excludes). *)

let quantum policy (s : Appspec.t) =
  let table =
    match policy with
    | Slot_state.Eager_preempt -> s.Appspec.t_dw_min
    | Slot_state.Lazy_preempt -> s.Appspec.t_dw_max
  in
  Array.fold_left Int.max 0 table

(* grants of [j] whose occupancy can intersect a window of [s]
   samples: start points at least [period] apart inside an interval of
   [s + c] samples (one quantum of carry-in) *)
let grants_in ~period ~c s = (((s + c - 1) / period) + 1) * c

let busy_window ?(policy = Slot_state.Eager_preempt) specs i =
  let deadline = specs.(i).Appspec.t_w_max in
  let interference s =
    let acc = ref 0 in
    Array.iteri
      (fun j (sp : Appspec.t) ->
        if j <> i then begin
          let c = quantum policy sp in
          let period = Int.max 1 (sp.Appspec.r - sp.Appspec.t_w_max) in
          acc := !acc + grants_in ~period ~c s
        end)
      specs;
    !acc
  in
  let rec iterate s guard =
    if s > deadline || guard > 1000 then None
    else
      let s' = interference s in
      if s' = s then Some s else iterate s' (guard + 1)
  in
  iterate 0 0

let accepts ?policy specs =
  let n = Array.length specs in
  let rec go i =
    i >= n
    ||
    match busy_window ?policy specs i with
    | Some _ -> go (i + 1)
    | None -> false
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Necessary reject: demand-bound trigger + saturation witness.

   The trigger is a cheap overload estimate — either one simultaneous
   burst already demands more slot time than some T*_w affords, or the
   long-run utilisation exceeds the slot.  It only gates the witness
   search; the verdict comes from simulating the greedy saturation
   adversary (every application re-disturbed the moment the sporadic
   model allows) under a few arrival orders.  Each simulated schedule
   is a genuine adversary strategy of the exact engine, so a miss here
   is a miss there. *)

let min_quantum (s : Appspec.t) = Array.fold_left Int.min max_int s.Appspec.t_dw_min

let overload_trigger specs =
  let burst =
    (* one simultaneous burst: competitors served ahead of [i] consume
       at least their smallest minimum dwell each *)
    let total = Array.fold_left (fun acc sp -> acc + min_quantum sp) 0 specs in
    let i_overloaded i (sp : Appspec.t) =
      total - min_quantum sp > sp.Appspec.t_w_max && i >= 0
    in
    let found = ref false in
    Array.iteri (fun i sp -> if i_overloaded i sp then found := true) specs;
    !found
  in
  burst
  ||
  (* sustained overload: every application re-disturbed each effective
     period demands more than one slot sample per sample *)
  let u =
    Array.fold_left
      (fun acc (sp : Appspec.t) ->
        acc
        +. float_of_int (min_quantum sp)
           /. float_of_int (Int.max 1 (sp.Appspec.r - sp.Appspec.t_w_max)))
      0. specs
  in
  u > 1.

(* ids the adversary may disturb at the coming tick: already steady,
   or leaving the quiet phase exactly at the tick (the Safe -> Steady
   transition fires inside [tick] before admissions, mirroring
   [Dverify.disturbable_ids]) *)
let disturbable (specs : Appspec.t array) (st : Slot_state.t) =
  let acc = ref [] in
  Array.iteri
    (fun i p ->
      match p with
      | Slot_state.Steady -> acc := i :: !acc
      | Slot_state.Safe { age } when age + 1 >= specs.(i).Appspec.r ->
        acc := i :: !acc
      | Slot_state.Waiting _ | Running _ | Safe _ | Error -> ())
    st.Slot_state.phases;
  List.rev !acc

let saturate ?policy specs ~order ~horizon =
  let rec run st steps t =
    if t >= horizon then None
    else begin
      let disturbed = order (disturbable specs st) in
      let st', (outcome : Slot_state.outcome) =
        Slot_state.tick ?policy specs st ~disturbed
      in
      let steps = (disturbed, st') :: steps in
      match outcome.Slot_state.new_errors with
      | [] -> run st' steps (t + 1)
      | failing -> Some { steps = List.rev steps; failing }
    end
  in
  run (Slot_state.initial specs) [] 0

let arrival_orders specs =
  let by_t_w cmp ids =
    List.stable_sort
      (fun a b -> cmp specs.(a).Appspec.t_w_max specs.(b).Appspec.t_w_max)
      ids
  in
  [
    Fun.id;
    List.rev;
    by_t_w compare;
    by_t_w (fun a b -> compare b a);
  ]

let rejects ?policy specs =
  if Array.length specs < 2 || not (overload_trigger specs) then None
  else begin
    let horizon =
      64 + (2 * Array.fold_left (fun acc (s : Appspec.t) -> acc + s.Appspec.r) 0 specs)
    in
    let rec try_orders = function
      | [] -> None
      | order :: rest -> (
        match saturate ?policy specs ~order ~horizon with
        | Some _ as w -> w
        | None -> try_orders rest)
    in
    try_orders (arrival_orders specs)
  end

let decide ?policy specs =
  if accepts ?policy specs then begin
    Obs.Metric.count "prefilter.accepts" 1;
    Analytic_safe
  end
  else
    match rejects ?policy specs with
    | Some w ->
      Obs.Metric.count "prefilter.rejects" 1;
      Analytic_unsafe w
    | None ->
      Obs.Metric.count "prefilter.fallbacks" 1;
      Inconclusive
