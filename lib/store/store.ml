let format_version = 1

type stats = {
  entries : int;
  loaded : int;
  stale_dropped : int;
  torn_dropped : int;
  appended : int;
}

type t = {
  path : string;
  salt : string;
  tbl : (string, string) Hashtbl.t;
  m : Mutex.t;
  ro : bool;
  mutable lock_fd : Unix.file_descr option;
  mutable oc : out_channel option;
  mutable loaded : int;
  mutable stale_dropped : int;
  mutable torn_dropped : int;
  mutable appended : int;
  mutable closed : bool;
}

let magic = "cpsdim-store"

let header salt = Printf.sprintf "%s %d %s\n" magic format_version salt

(* FNV-1a 64-bit, hex-printed: cheap, stable across platforms, and
   plenty to detect torn or bit-flipped records (not an integrity
   guarantee against an adversary — the store is a local cache). *)
let fnv64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun ch ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code ch))) 0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

let record key value =
  Printf.sprintf "R %d %d %s\n%s%s\n" (String.length key) (String.length value)
    (fnv64 (key ^ value))
    key value

(* ------------------------------------------------------------------ *)
(* Parsing *)

(* the file contents after the header: returns the records in file
   order plus the count of damaged/torn records dropped (the first
   damaged byte poisons everything after it — an append that landed
   after a torn record cannot be trusted to be framed correctly) *)
let parse_records content =
  let len = String.length content in
  let out = ref [] in
  let pos = ref 0 in
  let torn = ref 0 in
  (try
     while !pos < len do
       let nl =
         match String.index_from_opt content !pos '\n' with
         | Some i -> i
         | None -> raise Exit
       in
       let hdr = String.sub content !pos (nl - !pos) in
       (match String.split_on_char ' ' hdr with
        | [ "R"; klen; vlen; sum ] ->
          let klen = int_of_string klen and vlen = int_of_string vlen in
          if klen < 0 || vlen < 0 then raise Exit;
          let kstart = nl + 1 in
          if kstart + klen + vlen + 1 > len then raise Exit;
          let key = String.sub content kstart klen in
          let value = String.sub content (kstart + klen) vlen in
          if content.[kstart + klen + vlen] <> '\n' then raise Exit;
          if not (String.equal (fnv64 (key ^ value)) sum) then raise Exit;
          out := (key, value) :: !out;
          pos := kstart + klen + vlen + 1
        | _ -> raise Exit)
     done
   with Exit | Failure _ -> torn := 1);
  (List.rev !out, !torn)

let parse_header content =
  match String.index_opt content '\n' with
  | None -> Error "missing header"
  | Some nl -> (
    let line = String.sub content 0 nl in
    match String.split_on_char ' ' line with
    | m :: v :: rest when String.equal m magic -> (
      match int_of_string_opt v with
      | Some v when v = format_version ->
        Ok (String.concat " " rest, String.sub content (nl + 1) (String.length content - nl - 1))
      | Some v -> Error (Printf.sprintf "format version %d (this build reads %d)" v format_version)
      | None -> Error "malformed header")
    | _ -> Error "not a cpsdim verification store")

let read_file path =
  try Ok (In_channel.with_open_bin path In_channel.input_all)
  with Sys_error m -> Error m

(* ------------------------------------------------------------------ *)
(* Crash-safe rewrite: full contents to a temp file in the same
   directory, then an atomic rename over the target. *)

let rewrite ~path ~salt entries =
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc (header salt);
      List.iter
        (fun (k, v) -> Out_channel.output_string oc (record k v))
        entries);
  Sys.rename tmp path

(* Advisory single-writer guard.  The disk image is owned by whichever
   process first takes an exclusive [lockf] lease on the sibling
   ".lock" file: only the owner heals torn tails, retires stale salts,
   and appends.  Any later opener — typically a one-shot CLI run racing
   a resident daemon on the same cache — degrades to read-only: it
   loads whatever records are currently clean and keeps its own
   additions in memory, so two processes can never interleave appends
   into one file.  [lockf] conflicts are a {e cross-process} property
   (a second handle inside one process still locks successfully),
   which is exactly the race the append path had: in-process sharing
   is already mutex-protected.  The lock file itself is never deleted
   — unlinking it would let a third opener lock a fresh inode while a
   second still waits on the old one, yielding two writers. *)
type lock = Writer of Unix.file_descr option | Reader

let acquire_lock path =
  match Unix.openfile (path ^ ".lock") [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 with
  | exception Unix.Unix_error _ ->
    (* no lock file possible (exotic fs, permissions): keep the
       pre-lock behaviour — write unguarded, surface IO errors as
       before *)
    Writer None
  | fd -> (
    match Unix.lockf fd Unix.F_TLOCK 0 with
    | () -> Writer (Some fd)
    | exception Unix.Unix_error ((EAGAIN | EACCES), _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Reader
    | exception Unix.Unix_error _ -> Writer (Some fd))

let open_ ~path ~salt =
  if String.contains salt '\n' then Error "Store.open_: salt contains a newline"
  else begin
    let lock = acquire_lock path in
    let writer = match lock with Writer _ -> true | Reader -> false in
    let fresh () =
      if writer then rewrite ~path ~salt [];
      Ok ([], 0, 0)
    in
    let load () =
      if not (Sys.file_exists path) then fresh ()
      else
        match read_file path with
        | Error m -> Error m
        | Ok "" -> fresh ()
        | Ok content -> (
          match parse_header content with
          | Error m -> Error (Printf.sprintf "%s: %s" path m)
          | Ok (file_salt, body) ->
            let records, torn = parse_records body in
            if not (String.equal file_salt salt) then begin
              (* stale engine: drop everything; only the writer may
                 restart the file empty *)
              if writer then rewrite ~path ~salt [];
              Ok ([], List.length records + torn, 0)
            end
            else begin
              (* heal a torn tail so new appends land cleanly *)
              if torn > 0 && writer then rewrite ~path ~salt records;
              Ok (records, 0, torn)
            end)
    in
    let release () =
      match lock with
      | Writer (Some fd) -> ( try Unix.close fd with Unix.Unix_error _ -> ())
      | Writer None | Reader -> ()
    in
    match (try load () with Sys_error m -> Error m) with
    | Error m ->
      release ();
      Error m
    | Ok (records, stale_dropped, torn_dropped) ->
      let tbl = Hashtbl.create 256 in
      List.iter
        (fun (k, v) -> if not (Hashtbl.mem tbl k) then Hashtbl.add tbl k v)
        records;
      Ok
        {
          path;
          salt;
          tbl;
          m = Mutex.create ();
          ro = not writer;
          lock_fd = (match lock with Writer fd -> fd | Reader -> None);
          oc = None;
          loaded = List.length records;
          stale_dropped;
          torn_dropped;
          appended = 0;
          closed = false;
        }
  end

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let path t = t.path
let salt t = t.salt
let read_only t = t.ro

let find t key =
  let t0 = Obs.Clock.now () in
  let r = locked t (fun () -> Hashtbl.find_opt t.tbl key) in
  Obs.Metric.observe_value "store.find_s" (Obs.Clock.now () -. t0);
  r
let mem t key = locked t (fun () -> Hashtbl.mem t.tbl key)
let length t = locked t (fun () -> Hashtbl.length t.tbl)

let out_channel t =
  match t.oc with
  | Some oc -> oc
  | None ->
    let oc = open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644 t.path in
    t.oc <- Some oc;
    oc

let add t key value =
  let t0 = Obs.Clock.now () in
  locked t (fun () ->
      if not (t.closed || Hashtbl.mem t.tbl key) then begin
        Hashtbl.add t.tbl key value;
        (* disk failures (full disk, revoked permissions) degrade to an
           in-memory cache rather than aborting a verification run; a
           read-only loser of the writer lock never touches the file *)
        if not t.ro then
          try
            let oc = out_channel t in
            Out_channel.output_string oc (record key value);
            Out_channel.flush oc;
            t.appended <- t.appended + 1
          with Sys_error _ -> ()
      end);
  Obs.Metric.observe_value "store.append_s" (Obs.Clock.now () -. t0)

let stats t =
  locked t (fun () ->
      {
        entries = Hashtbl.length t.tbl;
        loaded = t.loaded;
        stale_dropped = t.stale_dropped;
        torn_dropped = t.torn_dropped;
        appended = t.appended;
      })

let iter t f = locked t (fun () -> Hashtbl.iter f t.tbl)

let close_channel t =
  match t.oc with
  | None -> ()
  | Some oc ->
    t.oc <- None;
    (try Out_channel.close oc with Sys_error _ -> ())

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.tbl;
      close_channel t;
      if not t.ro then
        try rewrite ~path:t.path ~salt:t.salt [] with Sys_error _ -> ())

let flush t =
  locked t (fun () ->
      match t.oc with
      | Some oc -> ( try Out_channel.flush oc with Sys_error _ -> ())
      | None -> ())

let release_lock t =
  match t.lock_fd with
  | None -> ()
  | Some fd ->
    t.lock_fd <- None;
    (try Unix.close fd with Unix.Unix_error _ -> ())

let close t =
  locked t (fun () ->
      t.closed <- true;
      close_channel t;
      release_lock t)

let peek ~path =
  match read_file path with
  | Error m -> Error m
  | Ok "" -> Error (path ^ ": empty file")
  | Ok content -> (
    match parse_header content with
    | Error m -> Error (Printf.sprintf "%s: %s" path m)
    | Ok (salt, body) ->
      let records, _torn = parse_records body in
      Ok (salt, List.length records))
