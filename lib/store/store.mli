(** Persistent append-only key/value store for verification artifacts.

    One store is one file.  The file starts with a header line naming
    the format version and a caller-supplied {e salt} (an engine
    fingerprint); every record after it is length-prefixed and
    checksummed, so keys and values may contain any byte, including
    newlines and the delimiters of whatever serialisation the caller
    uses.  The whole file is loaded into an in-memory index at
    {!open_}; {!add} appends to the file immediately.

    Robustness rules, all applied at {!open_}:

    - a file whose header carries a {e different} salt is stale: every
      record is dropped (counted in [stale_dropped]) and the file is
      rewritten empty under the current salt — this is the explicit
      invalidation lever: bump the salt whenever the semantics of the
      cached values change;
    - a torn tail (a crash mid-append) or a checksum mismatch drops the
      damaged record {e and everything after it}, then compacts the
      file so later appends land on a clean suffix;
    - rewrites (invalidation, compaction, {!clear}) go through a
      temporary file in the same directory followed by a rename, so a
      crash never leaves a half-rewritten store;
    - a non-empty file that does not carry the magic header is refused
      ({!open_} returns [Error]) rather than silently overwritten.

    Duplicate keys keep the first occurrence (values are pure functions
    of their key, so any duplicate is identical).  All operations are
    mutex-protected and safe to share across domains.

    Cross-process writes are single-writer: {!open_} takes an advisory
    exclusive lock on a sibling [.lock] file, and a process that loses
    the race (say a one-shot CLI run while a resident daemon owns the
    cache) degrades to {e read-only} — it loads the clean records,
    keeps its own {!add}s in memory only, and never heals, invalidates
    or appends, so two processes cannot interleave records in one
    file.  {!read_only} reports which side of the race this handle is
    on. *)

type t

type stats = {
  entries : int;  (** live keys in the index *)
  loaded : int;  (** records read from disk at [open_] *)
  stale_dropped : int;  (** records discarded by a salt mismatch *)
  torn_dropped : int;  (** records discarded as damaged/torn *)
  appended : int;  (** records appended since [open_] *)
}

val format_version : int

val open_ : path:string -> salt:string -> (t, string) result
(** Open (creating if missing) the store at [path] under [salt].
    [Error] when the file exists but is not a store, on IO failure, or
    when [salt] contains a newline. *)

val path : t -> string
val salt : t -> string

val read_only : t -> bool
(** [true] when another process already holds the writer lock: this
    handle serves the loaded records and memoises fresh {!add}s in
    memory, but never writes the file. *)

val find : t -> string -> string option
val mem : t -> string -> bool

val add : t -> string -> string -> unit
(** Insert and append to disk.  A key already present is left untouched
    (first write wins).  IO errors are swallowed: the entry stays in
    the in-memory index and the run continues uncached-on-disk. *)

val length : t -> int
val stats : t -> stats

val iter : t -> (string -> string -> unit) -> unit
(** Iterate over the live index (order unspecified), under the lock. *)

val clear : t -> unit
(** Drop every entry and crash-safely rewrite the file empty. *)

val flush : t -> unit
val close : t -> unit

val peek : path:string -> (string * int, string) result
(** [(salt, records)] of an existing store file, read-only: no
    invalidation, no compaction, no creation.  Damaged records count
    as absent. *)
