(** The TTW network as a {!Bus.BACKEND}: contention-free channels map
    to reserved round slots, ET flows contend for the free slots under
    round packing, and the loss hook models the lossy radio links. *)

val backend : Bus.backend
val configured : Config.t -> Bus.configured
val default : Bus.configured
