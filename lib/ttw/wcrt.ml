(* Busy-window response-time bound for contended TTW flows, the
   wireless sibling of the FlexRay dynamic-segment analysis.

   A flow of [size] slots is blocked in a round exactly when
   higher-priority demand eats past [et_slots - size]: with first-fit
   packing and no priority gaps, [et_slots - size + 1] slots must go to
   hp flows before ours no longer fits.  In a window of [q] rounds each
   hp flow contends at most ceil(q * round / period) times, giving the
   same fixed-point iteration the FlexRay bound uses. *)

let hp_demand ~round_us hp q =
  List.fold_left
    (fun acc (size, period_us) ->
      acc + ((((q * round_us) + period_us - 1) / period_us) * size))
    0 hp

let blocked_rounds_bound config ~size hp =
  let et_slots = Config.et_slots config in
  if size <= 0 || size > et_slots then None
  else begin
    let round_us = Config.round_us config in
    List.iter
      (fun (s, p) ->
        if s <= 0 then invalid_arg "Ttw.Wcrt: hp size";
        if p <= 0 then invalid_arg "Ttw.Wcrt: hp period")
      hp;
    let spare = et_slots - size + 1 in
    let rec iterate q guard =
      if guard > 10_000 then None
      else
        let blocked = hp_demand ~round_us hp q / spare in
        let q' = blocked + 1 in
        if q' = q then Some blocked
        else if q' > 10_000 then None
        else iterate (Int.max q' (q + 1)) (guard + 1)
    in
    iterate 1 0
  end

let wcrt_us config ~size hp =
  match blocked_rounds_bound config ~size hp with
  | None -> None
  | Some blocked ->
    let round_us = Config.round_us config in
    (* worst release: just after a beacon, so a full round passes
       before the first eligible schedule; delivery happens by the end
       of the first non-blocked round *)
    Some ((blocked + 2) * round_us)
