(* Round-accurate TTW simulation over the generic message model.

   The round scheduler is centralized (the host computes each round's
   schedule at the beacon), so only messages released at or before the
   round start participate.  TT channels own their reserved slot; ET
   flows are packed into the contended slots greedily in ascending
   flow-id order, one message per flow per round, skipping flows whose
   frame no longer fits — first-fit, no priority gaps.  A transmission
   destroyed by the loss hook burns its slots; the message stays queued
   and retries in a later round. *)

type job = {
  msg : Bus.message;
  mutable tries : int;
  mutable delivered_at : int option;
}

let validate config (m : Bus.message) =
  if m.Bus.release_us < 0 then invalid_arg "Ttw: negative release";
  match m.Bus.cls with
  | Bus.Tt { channel } ->
    if channel >= config.Config.tt_channels then
      invalid_arg "Ttw: TT channel out of range"
  | Bus.Et { flow; size } ->
    if flow < 1 then invalid_arg "Ttw: ET flow ids are 1-based";
    if size > Config.et_slots config then
      invalid_arg "Ttw: frame exceeds the contended segment"

let simulate ?(loss = Bus.loss_none) config ~until_us messages =
  List.iter (validate config) messages;
  let jobs =
    List.map (fun m -> { msg = m; tries = 0; delivered_at = None }) messages
  in
  let round_us = Config.round_us config in
  let rounds = (until_us / round_us) + 1 in
  let deliveries = ref [] and lost_tx = ref 0 in
  let attempt j ~finish =
    j.tries <- j.tries + 1;
    if loss j.msg ~attempt:j.tries then begin
      incr lost_tx;
      false
    end
    else begin
      j.delivered_at <- Some finish;
      deliveries :=
        { Bus.message = j.msg; delivered_us = finish; attempts = j.tries }
        :: !deliveries;
      true
    end
  in
  let by_release =
    List.sort (fun a b -> compare a.msg.Bus.release_us b.msg.Bus.release_us)
  in
  (* per-channel and per-flow queues, oldest release first (stable on
     ties, so submission order breaks them deterministically) *)
  let tt_queue = Hashtbl.create 8 and et_queue = Hashtbl.create 8 in
  let push tbl key j =
    Hashtbl.replace tbl key (j :: Option.value ~default:[] (Hashtbl.find_opt tbl key))
  in
  List.iter
    (fun j ->
      match j.msg.Bus.cls with
      | Bus.Tt { channel } -> push tt_queue channel j
      | Bus.Et { flow; _ } -> push et_queue flow j)
    jobs;
  Hashtbl.iter (fun c q -> Hashtbl.replace tt_queue c (by_release (List.rev q))) tt_queue;
  Hashtbl.iter (fun f q -> Hashtbl.replace et_queue f (by_release (List.rev q))) et_queue;
  let flows =
    Hashtbl.fold (fun f _ acc -> f :: acc) et_queue [] |> List.sort compare
  in
  for round = 0 to rounds - 1 do
    let round_start = round * round_us in
    (* reserved head slots: channel c transmits in slot c *)
    for channel = 0 to config.Config.tt_channels - 1 do
      match Hashtbl.find_opt tt_queue channel with
      | Some (j :: rest) when j.msg.Bus.release_us <= round_start ->
        let finish =
          Config.slot_finish_us config ~round_start ~slot:channel
        in
        if attempt j ~finish then Hashtbl.replace tt_queue channel rest
      | Some _ | None -> ()
    done;
    (* contended slots: pack eligible flows in priority order *)
    let next_slot = ref config.Config.tt_channels in
    List.iter
      (fun flow ->
        match Hashtbl.find_opt et_queue flow with
        | Some (j :: rest) when j.msg.Bus.release_us <= round_start ->
          let size =
            match j.msg.Bus.cls with
            | Bus.Et { size; _ } -> size
            | Bus.Tt _ -> assert false
          in
          if !next_slot + size <= config.Config.slots_per_round then begin
            let finish =
              Config.slot_finish_us config ~round_start
                ~slot:(!next_slot + size - 1)
            in
            next_slot := !next_slot + size;
            if attempt j ~finish then Hashtbl.replace et_queue flow rest
          end
        | Some _ | None -> ())
      flows
  done;
  let delivered_in_time j =
    match j.delivered_at with Some t -> t <= until_us | None -> false
  in
  {
    Bus.deliveries =
      List.filter
        (fun (d : Bus.delivery) -> d.Bus.delivered_us <= until_us)
        (List.rev !deliveries);
    undelivered =
      List.filter_map
        (fun j -> if delivered_in_time j then None else Some (j.msg, j.tries))
        jobs;
    lost_tx = !lost_tx;
  }
