type t = { flow : int; size : int; period_us : int; deadline_us : int }

let make ~flow ~size ~period_us ~deadline_us =
  if flow < 1 then invalid_arg "Flow.make: flow ids are 1-based";
  if size < 1 then invalid_arg "Flow.make: empty frame";
  if period_us <= 0 then invalid_arg "Flow.make: non-positive period";
  if deadline_us <= 0 then invalid_arg "Flow.make: non-positive deadline";
  { flow; size; period_us; deadline_us }

type verdict = { flow : t; wcrt_us : int option; meets_deadline : bool }

let check config flows =
  let ids = List.map (fun (f : t) -> f.flow) flows in
  let rec dup = function
    | [] -> false
    | x :: rest -> List.mem x rest || dup rest
  in
  if dup ids then invalid_arg "Flow.check: duplicate flow ids";
  List.map
    (fun (f : t) ->
      let hp =
        List.filter_map
          (fun (g : t) ->
            if g.flow < f.flow then Some (g.size, g.period_us) else None)
          flows
      in
      let wcrt_us = Wcrt.wcrt_us config ~size:f.size hp in
      let meets_deadline =
        match wcrt_us with Some w -> w <= f.deadline_us | None -> false
      in
      { flow = f; wcrt_us; meets_deadline })
    flows

let all_meet config flows =
  List.for_all (fun v -> v.meets_deadline) (check config flows)

let pp_verdict ppf v =
  Format.fprintf ppf "flow %d (size %d, period %d us): wcrt %s, deadline %d us %s"
    v.flow.flow v.flow.size v.flow.period_us
    (match v.wcrt_us with
     | Some w -> string_of_int w ^ " us"
     | None -> "unbounded")
    v.flow.deadline_us
    (if v.meets_deadline then "OK" else "MISSED")
