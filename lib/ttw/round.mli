(** Round-accurate TTW simulation over the generic {!Bus} message
    model: reserved head slots serve TT channels, contended slots are
    packed first-fit in ascending flow-id order, one message per flow
    per round, and a destroyed transmission retries in a later round. *)

val simulate :
  ?loss:Bus.loss ->
  Config.t ->
  until_us:int ->
  Bus.message list ->
  Bus.outcome
(** @raise Invalid_argument on negative releases, TT channels outside
    the reservation, or ET frames larger than the contended segment. *)
