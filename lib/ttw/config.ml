type t = {
  slots_per_round : int;
  slot_us : int;
  gap_us : int;
  beacon_us : int;
  tt_channels : int;
}

let make ~slots_per_round ~slot_us ~gap_us ~beacon_us ~tt_channels =
  if slots_per_round <= 0 then invalid_arg "Config.make: slots_per_round";
  if slot_us <= 0 then invalid_arg "Config.make: slot_us";
  if gap_us < 0 then invalid_arg "Config.make: negative gap_us";
  if beacon_us < 0 then invalid_arg "Config.make: negative beacon_us";
  if tt_channels < 0 then invalid_arg "Config.make: negative tt_channels";
  if tt_channels >= slots_per_round then
    invalid_arg "Config.make: no contended slots left in the round";
  { slots_per_round; slot_us; gap_us; beacon_us; tt_channels }

let slot_stride_us t = t.slot_us + t.gap_us
let round_us t = t.beacon_us + (t.slots_per_round * slot_stride_us t)
let et_slots t = t.slots_per_round - t.tt_channels

(* the i-th data slot of the round that starts at [round_start]
   finishes here: beacon, then i full slot strides, then the airtime *)
let slot_finish_us t ~round_start ~slot =
  round_start + t.beacon_us + (slot * slot_stride_us t) + t.slot_us

let default =
  (* beacon 100 us + 16 slots of 120 us air + 30 us gap = a 2.5 ms
     round: eight rounds per 20 ms sampling period, so sampling
     instants stay phase-aligned with the round grid exactly as the
     FlexRay check configuration aligns with its cycle *)
  make ~slots_per_round:16 ~slot_us:120 ~gap_us:30 ~beacon_us:100
    ~tt_channels:4

let pp ppf t =
  Format.fprintf ppf
    "TTW round: %d us beacon + %d slots x (%d+%d) us (%d reserved TT, %d \
     contended) = %d us"
    t.beacon_us t.slots_per_round t.slot_us t.gap_us t.tt_channels
    (et_slots t) (round_us t)
