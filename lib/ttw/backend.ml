module B = struct
  let name = "ttw"

  type config = Config.t

  let default_config = Config.default
  let config_info cfg = Format.asprintf "%a" Config.pp cfg
  let cycle_us = Config.round_us
  let tt_channels (cfg : config) = cfg.Config.tt_channels
  let et_capacity = Config.et_slots

  (* one control sample fits a single data slot on this radio *)
  let control_frame_size (_ : config) = 1

  let simulate = Round.simulate

  let wcrt_us cfg ~flow:_ ~size ~hp = Wcrt.wcrt_us cfg ~size hp
end

let backend : Bus.backend = (module B)
let configured cfg : Bus.configured = Bus.Configured ((module B), cfg)
let default : Bus.configured = Bus.default backend
