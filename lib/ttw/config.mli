(** Round structure of the Time-Triggered Wireless network.

    Time is divided into fixed-length {e communication rounds}: a sync
    beacon, then [slots_per_round] contention-free data slots separated
    by a processing gap.  The first [tt_channels] slots of every round
    are reserved, one per TT channel (the wireless analogue of FlexRay
    static slots); the remaining slots are assigned to event-triggered
    flows by the round scheduler in priority order. *)

type t = private {
  slots_per_round : int;
  slot_us : int;  (** airtime of one data slot *)
  gap_us : int;  (** inter-slot processing/turnaround gap *)
  beacon_us : int;  (** per-round sync beacon overhead *)
  tt_channels : int;  (** reserved head slots, one per TT channel *)
}

val make :
  slots_per_round:int ->
  slot_us:int ->
  gap_us:int ->
  beacon_us:int ->
  tt_channels:int ->
  t
(** @raise Invalid_argument on non-positive slot counts/airtimes,
    negative overheads, or a reservation that leaves no contended
    slot. *)

val slot_stride_us : t -> int
(** [slot_us + gap_us]: distance between consecutive slot starts. *)

val round_us : t -> int
(** Full round length, beacon included. *)

val et_slots : t -> int
(** Contended slots per round, [slots_per_round - tt_channels]. *)

val slot_finish_us : t -> round_start:int -> slot:int -> int
(** Absolute finish time of data slot [slot] (0-based) of the round
    starting at [round_start]. *)

val default : t
(** A 2.5 ms round (100 µs beacon + 16 slots of 120+30 µs, 4 reserved)
    that divides the case study's 20 ms sampling period. *)

val pp : Format.formatter -> t -> unit
