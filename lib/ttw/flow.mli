(** Communication flows: the TTW unit of dimensioning.  A flow emits
    one frame of [size] slots at most every [period_us] and must be
    delivered within [deadline_us] end to end; flow ids double as
    fixed priorities (lower id wins the round packing). *)

type t = private {
  flow : int;
  size : int;
  period_us : int;
  deadline_us : int;
}

val make : flow:int -> size:int -> period_us:int -> deadline_us:int -> t
(** @raise Invalid_argument on non-positive parameters or flow < 1. *)

type verdict = { flow : t; wcrt_us : int option; meets_deadline : bool }

val check : Config.t -> t list -> verdict list
(** Response-time verdict per flow under all higher-priority flows of
    the set.  @raise Invalid_argument on duplicate flow ids. *)

val all_meet : Config.t -> t list -> bool

val pp_verdict : Format.formatter -> verdict -> unit
