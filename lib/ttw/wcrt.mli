(** Worst-case response time of contended TTW flows under
    fixed-priority first-fit round packing. *)

val blocked_rounds_bound :
  Config.t -> size:int -> (int * int) list -> int option
(** Upper bound on full rounds a frame of [size] slots can be denied
    by higher-priority flows given as [(size, period_us)]; [None] when
    it can be starved (or can never fit).
    @raise Invalid_argument on non-positive interferer parameters. *)

val wcrt_us : Config.t -> size:int -> (int * int) list -> int option
(** Release-to-delivery bound in µs: one full round of scheduling
    latency, the blocked rounds, and the service round itself. *)
