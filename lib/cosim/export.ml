let buf_add_line buf cells =
  Buffer.add_string buf (String.concat "," cells);
  Buffer.add_char buf '\n'

let trace_csv (t : Trace.t) =
  let buf = Buffer.create 4096 in
  let n = Array.length t.Trace.names in
  buf_add_line buf
    ("t_s" :: "sample"
    :: (Array.to_list t.Trace.names |> List.map (fun name -> "y_" ^ name))
    @ [ "owner" ]);
  Array.iteri
    (fun k owner ->
      let cells =
        Printf.sprintf "%.4f" (float_of_int k *. t.Trace.h)
        :: string_of_int k
        :: List.init n (fun i -> Printf.sprintf "%.6g" t.Trace.outputs.(i).(k))
        @ [ (match owner with Some id -> t.Trace.names.(id) | None -> "") ]
      in
      buf_add_line buf cells)
    t.Trace.owner;
  Buffer.contents buf

let surface_csv surface ~h =
  let buf = Buffer.create 1024 in
  buf_add_line buf [ "t_w"; "t_dw"; "j_samples"; "j_s" ];
  List.iter
    (fun (t_w, t_dw, j) ->
      buf_add_line buf
        [
          string_of_int t_w;
          string_of_int t_dw;
          (match j with Some j -> string_of_int j | None -> "");
          (match j with
           | Some j -> Printf.sprintf "%.4f" (float_of_int j *. h)
           | None -> "");
        ])
    surface;
  Buffer.contents buf

let dwell_csv (t : Core.Dwell.t) ~h =
  let buf = Buffer.create 1024 in
  buf_add_line buf [ "t_w"; "t_dw_min"; "t_dw_max"; "j_at_min_s"; "j_at_max_s" ];
  Array.iteri
    (fun i dmin ->
      (* row [i] holds wait [i * stride]; emit the wait, not the index *)
      buf_add_line buf
        [
          string_of_int (i * t.Core.Dwell.stride);
          string_of_int dmin;
          string_of_int t.Core.Dwell.t_dw_max.(i);
          Printf.sprintf "%.4f" (float_of_int t.Core.Dwell.j_at_min.(i) *. h);
          Printf.sprintf "%.4f" (float_of_int t.Core.Dwell.j_at_max.(i) *. h);
        ])
    t.Core.Dwell.t_dw_min;
  Buffer.contents buf

let write_file ~path contents =
  match
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc contents)
  with
  | () -> Ok ()
  | exception Sys_error m -> Error m
