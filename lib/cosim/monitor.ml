type violation =
  | Settling_exceeded of { sample : int; j : int option; j_star : int }
  | Wait_overrun of { sample : int }
  | Dwell_cut_short of { sample : int; wt : int; dwell : int; dt_min : int }
  | Dwell_overrun of { sample : int; wt : int; dwell : int; dt_max : int }
  | Suppressed_arrival of { sample : int }

type app_verdict = { name : string; violations : violation list }

type report = { verdicts : app_verdict list; bus_ok : bool; ok : bool }

let violation_sample = function
  | Settling_exceeded { sample; _ }
  | Wait_overrun { sample }
  | Dwell_cut_short { sample; _ }
  | Dwell_overrun { sample; _ }
  | Suppressed_arrival { sample } -> sample

let settling_violations ?threshold (trace : Trace.t) (apps : Core.App.t array)
    id =
  List.filter_map
    (fun (sample, id') ->
      if id' <> id then None
      else
        let j_star = apps.(id).Core.App.j_star in
        match Trace.settling_after ?threshold trace ~id ~sample with
        | Some j when j <= j_star -> None
        | j -> Some (Settling_exceeded { sample; j; j_star }))
    trace.Trace.disturbances

(* every completed slot tenure of [id]: granted at some sample with the
   wait recorded in the log, ended by a release, a preemption, or a
   blackout denial; an unfinished tenure at the end of the trace can
   still witness an overrun *)
let dwell_violations (trace : Trace.t) (spec : Sched.Appspec.t) id =
  let horizon = Array.length trace.Trace.owner in
  let check ~granted ~wt ~until acc =
    let dwell = until - granted in
    if wt > spec.Sched.Appspec.t_w_max then acc
    else
      let dt_min = spec.Sched.Appspec.t_dw_min.(wt)
      and dt_max = spec.Sched.Appspec.t_dw_max.(wt) in
      if dwell < dt_min then
        Dwell_cut_short { sample = until; wt; dwell; dt_min } :: acc
      else if dwell > dt_max then
        Dwell_overrun { sample = until; wt; dwell; dt_max } :: acc
      else acc
  in
  let rec scan tenure acc = function
    | [] -> (
      match tenure with
      | Some (granted, wt) ->
        (* still running at the end of the trace: only an overrun is
           decidable *)
        let dwell = horizon - granted in
        if
          wt <= spec.Sched.Appspec.t_w_max
          && dwell > spec.Sched.Appspec.t_dw_max.(wt)
        then
          List.rev
            (Dwell_overrun
               {
                 sample = horizon;
                 wt;
                 dwell;
                 dt_max = spec.Sched.Appspec.t_dw_max.(wt);
               }
            :: acc)
        else List.rev acc
      | None -> List.rev acc)
    | (e : Sched.Arbiter.log_entry) :: rest -> (
      match (e.Sched.Arbiter.event, tenure) with
      | `Grant (i, wt), None when i = id ->
        scan (Some (e.Sched.Arbiter.sample, wt)) acc rest
      | (`Release i | `Preempt i | `Deny i), Some (granted, wt) when i = id ->
        scan None (check ~granted ~wt ~until:e.Sched.Arbiter.sample acc) rest
      | _ -> scan tenure acc rest)
  in
  scan None [] trace.Trace.log

let check ?threshold ?(summary = Engine.no_faults) ?bus ~apps (trace : Trace.t) =
  let apps = Array.of_list apps in
  let n = Array.length apps in
  if n <> Array.length trace.Trace.names then
    invalid_arg "Monitor.check: app list does not match the trace";
  let specs = Array.mapi (fun i a -> Core.App.spec a ~id:i) apps in
  let verdicts =
    List.init n (fun id ->
        let settling = settling_violations ?threshold trace apps id in
        let waits =
          List.filter_map
            (fun (e : Sched.Arbiter.log_entry) ->
              match e.Sched.Arbiter.event with
              | `Error i when i = id ->
                Some (Wait_overrun { sample = e.Sched.Arbiter.sample })
              | _ -> None)
            trace.Trace.log
        in
        let dwells = dwell_violations trace specs.(id) id in
        let suppressed =
          List.filter_map
            (fun (sample, i) ->
              if i = id then Some (Suppressed_arrival { sample }) else None)
            summary.Engine.suppressed
        in
        let violations =
          List.stable_sort
            (fun a b -> compare (violation_sample a) (violation_sample b))
            (settling @ waits @ dwells @ suppressed)
        in
        { name = apps.(id).Core.App.name; violations })
  in
  let bus_ok =
    match (bus : Bus_check.result option) with
    | None -> true
    | Some r -> Bus_check.facts_hold r
  in
  let ok = List.for_all (fun v -> v.violations = []) verdicts && bus_ok in
  if Obs.Trace_ctx.enabled () then begin
    let count kind =
      List.fold_left
        (fun acc v ->
          acc
          + List.length
              (List.filter
                 (fun viol ->
                   match (viol, kind) with
                   | Settling_exceeded _, `Settling
                   | Wait_overrun _, `Wait
                   | (Dwell_cut_short _ | Dwell_overrun _), `Dwell
                   | Suppressed_arrival _, `Suppressed -> true
                   | _ -> false)
                 v.violations))
        0 verdicts
    in
    Obs.Metric.count "monitor.j_star_violations" (count `Settling);
    Obs.Metric.count "monitor.wait_overruns" (count `Wait);
    Obs.Metric.count "monitor.dwell_violations" (count `Dwell);
    Obs.Metric.count "monitor.suppressed" (count `Suppressed)
  end;
  { verdicts; bus_ok; ok }

let total_violations r =
  List.fold_left (fun acc v -> acc + List.length v.violations) 0 r.verdicts

let count r kind =
  List.fold_left
    (fun acc v ->
      acc
      + List.length
          (List.filter
             (fun viol ->
               match (viol, kind) with
               | Settling_exceeded _, `Settling
               | Wait_overrun _, `Wait
               | (Dwell_cut_short _ | Dwell_overrun _), `Dwell
               | Suppressed_arrival _, `Suppressed -> true
               | _ -> false)
             v.violations))
    0 r.verdicts

let pp_violation ppf = function
  | Settling_exceeded { sample; j; j_star } ->
    Format.fprintf ppf "@[settling exceeded at sample %d: %s > J*=%d@]" sample
      (match j with Some j -> string_of_int j | None -> "unsettled")
      j_star
  | Wait_overrun { sample } ->
    Format.fprintf ppf "wait budget T*_w overrun at sample %d" sample
  | Dwell_cut_short { sample; wt; dwell; dt_min } ->
    Format.fprintf ppf
      "dwell cut short at sample %d: %d < T-_dw(%d)=%d" sample dwell wt dt_min
  | Dwell_overrun { sample; wt; dwell; dt_max } ->
    Format.fprintf ppf
      "dwell overrun at sample %d: %d > T+_dw(%d)=%d" sample dwell wt dt_max
  | Suppressed_arrival { sample } ->
    Format.fprintf ppf "disturbance suppressed at sample %d (app not ready)"
      sample

let pp ppf r =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun v ->
      match v.violations with
      | [] -> Format.fprintf ppf "%-10s ok@," v.name
      | vs ->
        Format.fprintf ppf "%-10s %d violation(s)@," v.name (List.length vs);
        List.iter (fun viol -> Format.fprintf ppf "  - %a@," pp_violation viol) vs)
    r.verdicts;
  if not r.bus_ok then
    Format.fprintf ppf "bus        transport guarantees broken@,";
  Format.fprintf ppf "verdict: %s@]" (if r.ok then "ALL GUARANTEES HELD" else "VIOLATED")
