(** Bus-level validation of a co-simulated system, over any transport.

    The control layer relies on exactly two facts about the network:
    TT messages (reserved channels) arrive with a fixed, negligible
    delay, and ET messages (contended traffic) arrive within one
    sampling period even in the worst case.  This module re-plays slot
    traces as actual bus traffic — every application transmits one
    control message per sample, on its group's TT channel while it owns
    the slot and as a contended flow otherwise — runs the backend's
    cycle-accurate simulator, and checks both facts on the measured
    delays.  An optional {!Bus.loss} hook injects medium loss, whose
    effect (retransmission delay, undelivered messages) is accounted in
    the result. *)

type result = {
  backend : string;  (** transport that carried the traffic *)
  messages : int;  (** messages offered to the bus *)
  delivered : int;
  tt_count : int;
  et_count : int;
  tt_delay_us : int * int;  (** (min, max) measured TT delays *)
  et_delay_us : int * int;  (** (min, max) measured ET delays *)
  h_us : int;
  tt_deterministic : bool;
      (** within each TT channel, every delivery has the same latency *)
  one_sample_ok : bool;
      (** every delivered ET delay fits one period and no ET message
          was left undelivered *)
  all_delivered : bool;
  lost_tx : int;  (** transmissions destroyed by the loss hook *)
  et_overruns : int;  (** delivered ET messages later than one period *)
  max_attempts : int;  (** worst retransmission count over all traffic *)
}

val validate_slots :
  bus:Bus.configured ->
  ?loss:Bus.loss ->
  ?h_us:int ->
  (string list * Trace.t) list ->
  result
(** Replay per-slot traces on the bus.  The TT channel of group [i] is
    channel [i]; ET flow ids follow the system-wide application order
    (1-based), matching the fault plan's app indexing so
    {!Bus.loss_of_plan} lines up.
    @raise Invalid_argument when the backend has fewer TT channels
    than there are groups, or its contended segment cannot carry one
    control frame per application. *)

val facts_hold : result -> bool
(** The two control-layer facts plus full delivery. *)

val pp : Format.formatter -> result -> unit
