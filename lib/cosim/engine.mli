(** The closed-loop co-simulation engine: plants, switching
    controllers, and the slot arbiter advancing in lockstep.

    At every sample the arbiter processes the disturbance arrivals and
    updates slot ownership; each application then executes one control
    period in mode [MT] (if it owns the slot) or [ME] (otherwise), with
    its hybrid state reset to the canonical disturbed state at the
    sample where its disturbance is sensed.  This is the executable
    counterpart of the verified model: the sequence of modes each
    application sees is exactly the one {!Sched.Slot_state} allows.

    The fault-aware path ({!run_with_faults}) additionally consumes a
    materialised {!Faults.Plan}: TT blackouts deny the slot (evicting
    the occupant into [ME]), lost ET messages hold the last actuation
    one extra sample, dropped sensor samples hold the last measurement,
    and adversarial burst arrivals join the scheduled disturbances.
    Arrivals that find their application not steady — possible only
    under faults — are suppressed and reported, not raised. *)

type fault_summary = {
  injected : (int * int) list;
      (** disturbances actually delivered, [(sample, id)], including
          burst arrivals *)
  suppressed : (int * int) list;
      (** arrivals dropped because the application was not steady *)
  denied : (int * int) list;  (** occupant evictions by blackout *)
  blackout_samples : int;
  et_losses : int;  (** losses that hit an [ME]-mode sample *)
  sensor_drops : int;
}

val no_faults : fault_summary
(** The all-zero summary: what {!run_with_faults} reports for an empty
    plan on a disturbance-free scenario ([injected] lists delivered
    scheduled arrivals too, so a disturbed nominal run is non-zero
    there). *)

val run : ?policy:Sched.Slot_state.policy -> Scenario.t -> Trace.t
(** Default policy {!Sched.Slot_state.Eager_preempt}.
    @raise Invalid_argument when the apps have inconsistent sampling
    periods. *)

val run_with_faults :
  ?policy:Sched.Slot_state.policy ->
  ?plan:Faults.Plan.t ->
  Scenario.t ->
  Trace.t * fault_summary
(** Like {!run} under the given fault plan.  With [plan] absent (or
    {!Faults.Plan.none}) the trace is identical to {!run}'s — the
    nominal path and the fault path cannot drift apart because they are
    the same code.
    @raise Invalid_argument when the plan's horizon or application
    count does not match the scenario. *)

val replay_on_bus :
  bus:Bus.configured -> ?plan:Faults.Plan.t -> Trace.t -> Bus_check.result
(** Replay one scenario's traffic on the chosen transport.  The
    sampling period comes from the trace; when [plan] is given its
    ET-loss masks drive the medium's loss hook ({!Bus.loss_of_plan}),
    so the link-layer story matches what the control layer already
    suffered, and every [plan.link_burst] clause layers a correlated
    {!Bus.loss_burst} fade on top (a message is lost when any hook
    fires).  @raise Invalid_argument on a non-positive period or a
    backend too small for the scenario (see
    {!Bus_check.validate_slots}). *)
