type t = {
  apps : Core.App.t list;
  disturbances : (int * string) list;
  horizon : int;
}

let app_index t name =
  let rec go i = function
    | [] ->
      invalid_arg
        (Printf.sprintf "Scenario.app_index: unknown application %S (scenario has %s)"
           name
           (String.concat ", "
              (List.map (fun (a : Core.App.t) -> a.Core.App.name) t.apps)))
    | (a : Core.App.t) :: _ when String.equal a.Core.App.name name -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.apps

let make ~apps ~disturbances ~horizon =
  if horizon <= 0 then invalid_arg "Scenario.make: non-positive horizon";
  let names = List.map (fun (a : Core.App.t) -> a.Core.App.name) apps in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Scenario.make: duplicate application names";
  let t = { apps; disturbances; horizon } in
  List.iter
    (fun (sample, name) ->
      if sample < 0 || sample >= horizon then
        invalid_arg "Scenario.make: disturbance outside the horizon";
      if not (List.mem name names) then
        invalid_arg ("Scenario.make: unknown application " ^ name))
    disturbances;
  (* enforce the sporadic model per application *)
  List.iter
    (fun (a : Core.App.t) ->
      let times =
        List.sort compare
          (List.filter_map
             (fun (s, n) -> if String.equal n a.Core.App.name then Some s else None)
             disturbances)
      in
      let rec check = function
        | s1 :: (s2 :: _ as rest) ->
          if s2 - s1 < a.Core.App.r then
            invalid_arg
              (Printf.sprintf
                 "Scenario.make: disturbances of %s only %d samples apart \
                  (r = %d)"
                 a.Core.App.name (s2 - s1) a.Core.App.r);
          check rest
        | [] | [ _ ] -> ()
      in
      check times)
    apps;
  t

let disturbance_schedule t =
  List.sort compare
    (List.map (fun (s, name) -> (s, app_index t name)) t.disturbances)
