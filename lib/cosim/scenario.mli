(** Declarative closed-loop scenarios: a slot group plus a disturbance
    schedule, as in the paper's Figs. 8 and 9. *)

type t = {
  apps : Core.App.t list;  (** the slot group, in id order *)
  disturbances : (int * string) list;  (** (sample, app name) *)
  horizon : int;  (** samples to simulate *)
}

val make :
  apps:Core.App.t list ->
  disturbances:(int * string) list ->
  horizon:int ->
  t
(** @raise Invalid_argument on an unknown app name, a negative or
    out-of-horizon disturbance time, duplicate app names, or
    disturbances of one app closer than its [r]. *)

val app_index : t -> string -> int
(** Dense id of an app within the scenario.
    @raise Invalid_argument on an unknown name, reporting it together
    with the names the scenario does have. *)

val disturbance_schedule : t -> (int * int) list
(** [(sample, id)] pairs, by sample. *)
