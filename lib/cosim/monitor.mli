(** Online guarantee monitor: checks a co-simulation trace against the
    very guarantees the dimensioning was verified for.

    Three watchdogs per application:
    - settling time — every disturbance must settle within [J*];
    - wait budget — the application must never wait past [T*_w]
      (entering the scheduler's [Error] phase);
    - dwell table — every completed slot tenure granted at wait [T_w]
      must last at least [T⁻_dw(T_w)] and at most [T⁺_dw(T_w)]
      (blackout evictions cut dwells short; a nominal run can violate
      neither).

    In a nominal run of a verified group all three hold by
    construction; under fault injection the monitor pinpoints which
    application lost which guarantee, and when. *)

type violation =
  | Settling_exceeded of { sample : int; j : int option; j_star : int }
      (** disturbance at [sample] settled in [j] samples ([None]: not
          within the trace) against budget [j_star] *)
  | Wait_overrun of { sample : int }
      (** entered [Error]: waited past [T*_w] *)
  | Dwell_cut_short of { sample : int; wt : int; dwell : int; dt_min : int }
      (** tenure granted at wait [wt] ended at [sample] after only
          [dwell] samples, below [T⁻_dw(wt)] *)
  | Dwell_overrun of { sample : int; wt : int; dwell : int; dt_max : int }
  | Suppressed_arrival of { sample : int }
      (** a disturbance arrived while the application could not accept
          it (fault-world overload) *)

type app_verdict = {
  name : string;
  violations : violation list;  (** chronological *)
}

type report = {
  verdicts : app_verdict list;  (** one per application, in id order *)
  bus_ok : bool;
      (** the transport-level facts held (always [true] without a bus
          replay) *)
  ok : bool;  (** no violations anywhere, bus included *)
}

val check :
  ?threshold:float ->
  ?summary:Engine.fault_summary ->
  ?bus:Bus_check.result ->
  apps:Core.App.t list ->
  Trace.t ->
  report
(** Run all watchdogs over the trace.  [summary] (from
    {!Engine.run_with_faults}) contributes the suppressed-arrival
    verdicts; without it only trace-derivable violations are reported.
    [bus] (from {!Engine.replay_on_bus}) adds the transport-level
    watchdog: the TT/ET delay facts must survive the replayed traffic.
    Emits [monitor.*] metrics to {!Obs} when observability is on. *)

val total_violations : report -> int

val count : report -> [ `Settling | `Wait | `Dwell | `Suppressed ] -> int
(** Violations of one kind across all applications. *)

val pp : Format.formatter -> report -> unit
val pp_violation : Format.formatter -> violation -> unit
