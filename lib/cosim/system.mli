(** System-level co-simulation: all TT slots of a mapping at once.

    Slot groups are electrically independent (each TDMA slot has its
    own arbiter), so the system run is the product of per-slot runs;
    the value of this layer is the system-wide bookkeeping — routing
    each disturbance to the slot its application was mapped to,
    checking every requirement in one place, and reporting per-slot
    utilisation. *)

type report = {
  slots : (string list * Trace.t) list;
      (** per slot: member names (in id order) and the slot's trace *)
  settlings : (string * int * int option) list;
      (** (app, disturbance sample, settling in samples) *)
  all_requirements_met : bool;
  tt_samples : (string * int) list;  (** TT usage per application *)
}

val run :
  ?policy:Sched.Slot_state.policy ->
  slots:Core.App.t list list ->
  disturbances:(int * string) list ->
  horizon:int ->
  unit ->
  report
(** @raise Invalid_argument on an app name not present in any slot, an
    app present in two slots, or invalid per-slot scenarios (see
    {!Scenario.make}). *)

val bus_validate :
  bus:Bus.configured -> ?loss:Bus.loss -> ?h_us:int -> report -> Bus_check.result
(** Replay the whole system's traffic on the chosen transport (see
    {!Bus_check.validate_slots}). *)

val of_mapping :
  ?policy:Sched.Slot_state.policy ->
  Core.Mapping.outcome ->
  disturbances:(int * string) list ->
  horizon:int ->
  report
(** Convenience wrapper over a first-fit mapping outcome. *)

val pp : Format.formatter -> report -> unit
