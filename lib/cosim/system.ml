type report = {
  slots : (string list * Trace.t) list;
  settlings : (string * int * int option) list;
  all_requirements_met : bool;
  tt_samples : (string * int) list;
}

let run ?policy ~slots ~disturbances ~horizon () =
  let names_of group = List.map (fun (a : Core.App.t) -> a.Core.App.name) group in
  let all_names = List.concat_map names_of slots in
  if List.length (List.sort_uniq compare all_names) <> List.length all_names
  then invalid_arg "System.run: an application appears in two slots";
  List.iter
    (fun (_, name) ->
      if not (List.mem name all_names) then
        invalid_arg ("System.run: unmapped application " ^ name))
    disturbances;
  let per_slot =
    List.map
      (fun group ->
        let names = names_of group in
        let mine =
          List.filter (fun (_, name) -> List.mem name names) disturbances
        in
        let scenario =
          Scenario.make ~apps:group ~disturbances:mine ~horizon
        in
        (names, group, Engine.run ?policy scenario))
      slots
  in
  let settlings =
    List.concat_map
      (fun (_, _, trace) ->
        List.map
          (fun (sample, id) ->
            ( trace.Trace.names.(id),
              sample,
              Trace.settling_after trace ~id ~sample ))
          trace.Trace.disturbances)
      per_slot
  in
  let all_requirements_met =
    List.for_all
      (fun (_, group, trace) -> Trace.meets_requirements trace group)
      per_slot
  in
  let tt_samples =
    List.concat_map
      (fun (names, _, trace) ->
        List.mapi (fun id name -> (name, Trace.tt_samples trace ~id)) names)
      per_slot
  in
  {
    slots = List.map (fun (names, _, trace) -> (names, trace)) per_slot;
    settlings;
    all_requirements_met;
    tt_samples;
  }

let bus_validate ~bus ?loss ?h_us t =
  Bus_check.validate_slots ~bus ?loss ?h_us t.slots

let of_mapping ?policy (outcome : Core.Mapping.outcome) ~disturbances ~horizon =
  run ?policy
    ~slots:(List.map (fun s -> s.Core.Mapping.apps) outcome.Core.Mapping.slots)
    ~disturbances ~horizon ()

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i (names, trace) ->
      Format.fprintf ppf "S%d = {%s}: " (i + 1) (String.concat ", " names);
      let intervals = Trace.owner_intervals trace in
      Format.fprintf ppf "%s@,"
        (String.concat " "
           (List.map
              (fun (id, a, b) ->
                Printf.sprintf "%s[%d..%d]" trace.Trace.names.(id) a b)
              intervals)))
    t.slots;
  List.iter
    (fun (name, sample, j) ->
      match j with
      | Some j -> Format.fprintf ppf "%s@%d: J = %d samples@," name sample j
      | None -> Format.fprintf ppf "%s@%d: no settling@," name sample)
    t.settlings;
  Format.fprintf ppf "all requirements met: %b@]" t.all_requirements_met
