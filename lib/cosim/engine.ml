type fault_summary = {
  injected : (int * int) list;
  suppressed : (int * int) list;
  denied : (int * int) list;
  blackout_samples : int;
  et_losses : int;
  sensor_drops : int;
}

let no_faults =
  {
    injected = [];
    suppressed = [];
    denied = [];
    blackout_samples = 0;
    et_losses = 0;
    sensor_drops = 0;
  }

(* an application may legally receive a disturbance at the coming tick
   when it is already steady or its quiet period expires exactly now
   (mirrors Dverify.disturbable_ids; the Safe -> Steady transition
   fires inside the tick before admission) *)
let disturbable (specs : Sched.Appspec.t array) state id =
  match Sched.Slot_state.phase state id with
  | Sched.Slot_state.Steady -> true
  | Sched.Slot_state.Safe { age } -> age + 1 >= specs.(id).Sched.Appspec.r
  | Sched.Slot_state.Waiting _ | Running _ | Error -> false

let run_with_faults ?policy ?plan (scenario : Scenario.t) =
  let apps = Array.of_list scenario.Scenario.apps in
  let n = Array.length apps in
  if n = 0 then invalid_arg "Engine.run: empty scenario";
  let horizon = scenario.Scenario.horizon in
  let plan =
    match plan with
    | None -> Faults.Plan.none ~n ~horizon
    | Some p ->
      if p.Faults.Plan.horizon <> horizon then
        invalid_arg "Engine.run: fault plan horizon mismatch";
      if Array.length p.Faults.Plan.et_loss <> n then
        invalid_arg "Engine.run: fault plan app count mismatch";
      p
  in
  Obs.Span.with_ "cosim.run" @@ fun () ->
  let h = apps.(0).Core.App.plant.Control.Plant.h in
  Array.iter
    (fun (a : Core.App.t) ->
      if a.Core.App.plant.Control.Plant.h <> h then
        invalid_arg "Engine.run: inconsistent sampling periods")
    apps;
  let specs = Array.mapi (fun i a -> Core.App.spec a ~id:i) apps in
  let arbiter = Sched.Arbiter.create ?policy specs in
  let disturbances =
    List.sort_uniq compare
      (Scenario.disturbance_schedule scenario @ plan.Faults.Plan.bursts)
  in
  let outputs = Array.init n (fun _ -> Array.make horizon 0.) in
  let states =
    Array.map
      (fun (a : Core.App.t) ->
        ref (Control.Switched.initial
               (Linalg.Vec.zeros (Control.Plant.order a.Core.App.plant))))
      apps
  in
  let injected = ref [] and suppressed = ref [] and denied = ref [] in
  let et_losses = ref 0 and sensor_drops = ref 0 in
  for k = 0 to horizon - 1 do
    let arrivals =
      List.filter_map (fun (s, id) -> if s = k then Some id else None)
        disturbances
    in
    (* under faults an arrival may find its application still waiting,
       running, or in error (the nominal sporadic-model guarantee no
       longer holds); such arrivals are suppressed, not crashes *)
    let deliverable, dropped =
      List.partition (disturbable specs (Sched.Arbiter.state arbiter)) arrivals
    in
    List.iter (fun id -> injected := (k, id) :: !injected) deliverable;
    List.iter (fun id -> suppressed := (k, id) :: !suppressed) dropped;
    let slot_available = not plan.Faults.Plan.blackout.(k) in
    let outcome =
      Sched.Arbiter.step arbiter ~disturbed:deliverable ~slot_available ()
    in
    List.iter
      (fun id -> denied := (k, id) :: !denied)
      outcome.Sched.Slot_state.denied;
    let owner = (Sched.Arbiter.state arbiter).Sched.Slot_state.owner in
    List.iter
      (fun id -> states.(id) := Control.Switched.disturbed apps.(id).Core.App.plant)
      deliverable;
    for i = 0 to n - 1 do
      let a = apps.(i) in
      outputs.(i).(k) <- Control.Switched.output a.Core.App.plant !(states.(i));
      let mode =
        if owner = Some i then Control.Switched.Mt else Control.Switched.Me
      in
      let s = !(states.(i)) in
      states.(i) :=
        (if plan.Faults.Plan.sensor_drop.(i).(k) then begin
           (* the controller computes from a held measurement: no new
              command is issued, the plant evolves under the last
              actuated value *)
           incr sensor_drops;
           {
             Control.Switched.x =
               Control.Plant.step a.Core.App.plant s.Control.Switched.x
                 s.Control.Switched.u_prev;
             u_prev = s.Control.Switched.u_prev;
           }
         end
         else if
           mode = Control.Switched.Me && plan.Faults.Plan.et_loss.(i).(k)
         then begin
           (* the ET message carrying the fresh command is lost: the
              state still evolves under the previously actuated value
              (the ME update applies u_prev anyway) but the actuator
              holds — one extra sample of delay *)
           incr et_losses;
           let s' =
             Control.Switched.step a.Core.App.plant a.Core.App.gains
               Control.Switched.Me s
           in
           { s' with Control.Switched.u_prev = s.Control.Switched.u_prev }
         end
         else
           Control.Switched.step a.Core.App.plant a.Core.App.gains mode s)
    done
  done;
  let owner_trace = Sched.Arbiter.owner_trace arbiter in
  let blackout_samples =
    Array.fold_left
      (fun acc b -> if b then acc + 1 else acc)
      0 plan.Faults.Plan.blackout
  in
  if Obs.Trace_ctx.enabled () then begin
    Obs.Metric.count "cosim.samples" horizon;
    Obs.Metric.count "cosim.apps" n;
    Obs.Metric.count "cosim.disturbances" (List.length !injected);
    Obs.Metric.count "cosim.preemptions"
      (List.length
         (List.filter
            (fun (e : Sched.Arbiter.log_entry) ->
              match e.Sched.Arbiter.event with `Preempt _ -> true | _ -> false)
            (Sched.Arbiter.log arbiter)));
    if not (Faults.Plan.is_empty plan) then begin
      Obs.Metric.count "cosim.faults.blackout_samples" blackout_samples;
      Obs.Metric.count "cosim.faults.et_losses" !et_losses;
      Obs.Metric.count "cosim.faults.sensor_drops" !sensor_drops;
      Obs.Metric.count "cosim.faults.suppressed" (List.length !suppressed);
      Obs.Metric.count "cosim.faults.denials" (List.length !denied)
    end;
    (* per-application mode switches: each change of slot ownership
       status (Mt <-> Me) across consecutive samples *)
    for i = 0 to n - 1 do
      let switches = ref 0 in
      for k = 1 to horizon - 1 do
        let owns j = owner_trace.(j) = Some i in
        if owns k <> owns (k - 1) then incr switches
      done;
      Obs.Metric.observe_value "cosim.mode_switches" (float_of_int !switches)
    done
  end;
  ( {
      Trace.names = Array.map (fun (a : Core.App.t) -> a.Core.App.name) apps;
      h;
      outputs;
      owner = owner_trace;
      log = Sched.Arbiter.log arbiter;
      disturbances = List.rev !injected;
    },
    {
      injected = List.rev !injected;
      suppressed = List.rev !suppressed;
      denied = List.rev !denied;
      blackout_samples;
      et_losses = !et_losses;
      sensor_drops = !sensor_drops;
    } )

let run ?policy scenario = fst (run_with_faults ?policy scenario)

let replay_on_bus ~bus ?plan (trace : Trace.t) =
  let h_us =
    let us = int_of_float ((trace.Trace.h *. 1e6) +. 0.5) in
    if us <= 0 then invalid_arg "Engine.replay_on_bus: non-positive period";
    us
  in
  let loss =
    match plan with
    | None -> Bus.loss_none
    | Some p ->
      (* the plan's ET masks destroy first attempts; each link-burst
         clause additionally fades whole retransmission runs.  A
         message is lost when any hook says so. *)
      List.fold_left
        (fun acc (seed, pr, len) ->
          let burst = Bus.loss_burst ~seed ~p:pr ~len in
          fun m ~attempt -> acc m ~attempt || burst m ~attempt)
        (Bus.loss_of_plan ~h_us p)
        p.Faults.Plan.link_burst
  in
  Bus_check.validate_slots ~bus ~loss ~h_us
    [ (Array.to_list trace.Trace.names, trace) ]
