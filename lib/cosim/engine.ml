let run ?policy (scenario : Scenario.t) =
  let apps = Array.of_list scenario.Scenario.apps in
  let n = Array.length apps in
  if n = 0 then invalid_arg "Engine.run: empty scenario";
  Obs.Span.with_ "cosim.run" @@ fun () ->
  let h = apps.(0).Core.App.plant.Control.Plant.h in
  Array.iter
    (fun (a : Core.App.t) ->
      if a.Core.App.plant.Control.Plant.h <> h then
        invalid_arg "Engine.run: inconsistent sampling periods")
    apps;
  let specs = Array.mapi (fun i a -> Core.App.spec a ~id:i) apps in
  let arbiter = Sched.Arbiter.create ?policy specs in
  let disturbances = Scenario.disturbance_schedule scenario in
  let horizon = scenario.Scenario.horizon in
  let outputs = Array.init n (fun _ -> Array.make horizon 0.) in
  let states =
    Array.map
      (fun (a : Core.App.t) ->
        ref (Control.Switched.initial
               (Linalg.Vec.zeros (Control.Plant.order a.Core.App.plant))))
      apps
  in
  for k = 0 to horizon - 1 do
    let disturbed =
      List.filter_map (fun (s, id) -> if s = k then Some id else None)
        disturbances
    in
    ignore (Sched.Arbiter.step arbiter ~disturbed ());
    let owner =
      (Sched.Arbiter.state arbiter).Sched.Slot_state.owner
    in
    List.iter
      (fun id -> states.(id) := Control.Switched.disturbed apps.(id).Core.App.plant)
      disturbed;
    for i = 0 to n - 1 do
      let a = apps.(i) in
      outputs.(i).(k) <- Control.Switched.output a.Core.App.plant !(states.(i));
      let mode =
        if owner = Some i then Control.Switched.Mt else Control.Switched.Me
      in
      states.(i) := Control.Switched.step a.Core.App.plant a.Core.App.gains mode !(states.(i))
    done
  done;
  let owner_trace = Sched.Arbiter.owner_trace arbiter in
  if Obs.Trace_ctx.enabled () then begin
    Obs.Metric.count "cosim.samples" horizon;
    Obs.Metric.count "cosim.apps" n;
    Obs.Metric.count "cosim.disturbances" (List.length disturbances);
    Obs.Metric.count "cosim.preemptions"
      (List.length
         (List.filter
            (fun (e : Sched.Arbiter.log_entry) ->
              match e.Sched.Arbiter.event with `Preempt _ -> true | _ -> false)
            (Sched.Arbiter.log arbiter)));
    (* per-application mode switches: each change of slot ownership
       status (Mt <-> Me) across consecutive samples *)
    for i = 0 to n - 1 do
      let switches = ref 0 in
      for k = 1 to horizon - 1 do
        let owns j = owner_trace.(j) = Some i in
        if owns k <> owns (k - 1) then incr switches
      done;
      Obs.Metric.observe_value "cosim.mode_switches" (float_of_int !switches)
    done
  end;
  {
    Trace.names = Array.map (fun (a : Core.App.t) -> a.Core.App.name) apps;
    h;
    outputs;
    owner = owner_trace;
    log = Sched.Arbiter.log arbiter;
    disturbances;
  }
