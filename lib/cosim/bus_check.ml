type result = {
  backend : string;
  messages : int;
  delivered : int;
  tt_count : int;
  et_count : int;
  tt_delay_us : int * int;
  et_delay_us : int * int;
  h_us : int;
  tt_deterministic : bool;
  one_sample_ok : bool;
  all_delivered : bool;
  lost_tx : int;
  et_overruns : int;
  max_attempts : int;
}

let validate_slots ~bus ?(loss = Bus.loss_none) ?(h_us = 20_000) groups =
  if List.length groups > Bus.tt_channels bus then
    invalid_arg "Bus_check.validate: more groups than TT channels";
  let frame_size = Bus.control_frame_size bus in
  let all_names = List.concat_map fst groups in
  if Bus.et_capacity bus < frame_size + List.length all_names then
    invalid_arg "Bus_check.validate: contended segment too small";
  let frame_id name =
    let rec go i = function
      | [] -> invalid_arg "Bus_check: unknown app"
      | n :: rest -> if String.equal n name then i else go (i + 1) rest
    in
    go 1 all_names
  in
  let horizon =
    List.fold_left
      (fun acc (_, trace) -> Int.min acc (Array.length trace.Trace.owner))
      max_int groups
  in
  let messages = ref [] in
  List.iteri
    (fun slot_index (names, trace) ->
      let names = Array.of_list names in
      for k = 0 to horizon - 1 do
        Array.iteri
          (fun local name ->
            let release_us = k * h_us in
            let m =
              if trace.Trace.owner.(k) = Some local then
                Bus.tt ~channel:slot_index ~release_us
              else
                Bus.et ~flow:(frame_id name) ~size:frame_size ~release_us ()
            in
            messages := m :: !messages)
          names
      done)
    groups;
  let messages = List.rev !messages in
  let outcome =
    Bus.simulate ~loss bus ~until_us:((horizon + 2) * h_us) messages
  in
  let deliveries = outcome.Bus.deliveries in
  let tt_per_slot = Hashtbl.create 8 in
  let tt = ref [] and et = ref [] in
  List.iter
    (fun (d : Bus.delivery) ->
      match d.Bus.message.Bus.cls with
      | Bus.Tt { channel } ->
        let x = Bus.delay_us d in
        tt := x :: !tt;
        Hashtbl.replace tt_per_slot channel
          (x :: Option.value ~default:[] (Hashtbl.find_opt tt_per_slot channel))
      | Bus.Et _ -> et := Bus.delay_us d :: !et)
    deliveries;
  let bounds = function
    | [] -> (0, 0)
    | x :: rest ->
      List.fold_left (fun (lo, hi) v -> (Int.min lo v, Int.max hi v)) (x, x) rest
  in
  let tt_delay_us = bounds !tt and et_delay_us = bounds !et in
  let et_undelivered =
    List.exists
      (fun ((m : Bus.message), _) ->
        match m.Bus.cls with Bus.Et _ -> true | Bus.Tt _ -> false)
      outcome.Bus.undelivered
  in
  {
    backend = Bus.configured_name bus;
    messages = List.length messages;
    delivered = List.length deliveries;
    tt_count = List.length !tt;
    et_count = List.length !et;
    tt_delay_us;
    et_delay_us;
    h_us;
    (* a TT channel is deterministic when every delivery through it has
       the same latency; different channels naturally differ by their
       position in the cycle *)
    tt_deterministic =
      Hashtbl.fold
        (fun _ delays acc ->
          acc
          && (match delays with
              | [] -> true
              | x :: rest -> List.for_all (Int.equal x) rest))
        tt_per_slot true;
    one_sample_ok = snd et_delay_us <= h_us && not et_undelivered;
    all_delivered = List.length deliveries = List.length messages;
    lost_tx = outcome.Bus.lost_tx;
    et_overruns =
      List.length
        (List.filter
           (fun (d : Bus.delivery) ->
             match d.Bus.message.Bus.cls with
             | Bus.Et _ -> Bus.delay_us d > h_us
             | Bus.Tt _ -> false)
           deliveries);
    max_attempts =
      List.fold_left
        (fun acc (d : Bus.delivery) -> Int.max acc d.Bus.attempts)
        (List.fold_left
           (fun acc (_, tries) -> Int.max acc tries)
           0 outcome.Bus.undelivered)
        deliveries;
  }

let facts_hold r = r.tt_deterministic && r.one_sample_ok && r.all_delivered

let pp ppf r =
  Format.fprintf ppf
    "@[<v>bus (%s): %d messages, %d delivered (%d TT, %d ET)@,\
     TT delay: %d..%d us (deterministic: %b)@,\
     ET delay: %d..%d us (one-sample bound %d us: %b)@,\
     losses: %d transmission(s) destroyed, %d undelivered, %d ET \
     overrun(s), max %d attempt(s)@]"
    r.backend r.messages r.delivered r.tt_count r.et_count
    (fst r.tt_delay_us) (snd r.tt_delay_us) r.tt_deterministic
    (fst r.et_delay_us) (snd r.et_delay_us) r.h_us r.one_sample_ok r.lost_tx
    (r.messages - r.delivered) r.et_overruns r.max_attempts
