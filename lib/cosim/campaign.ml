type slot_summary = {
  apps : string list;
  runs : int;
  clean_runs : int;
  j_star : int;
  wait : int;
  dwell : int;
  suppressed : int;
  injected : int;
  blackout_samples : int;
  et_losses : int;
  sensor_drops : int;
  bus_lost_tx : int;
  bus_undelivered : int;
  bus_overruns : int;
}

type summary = {
  seed : int64;
  spec : Faults.Spec.t;
  horizon : int;
  slots : slot_summary list;
  total_violations : int;
  bus_backend : string option;
}

(* a random admissible disturbance schedule: each application's
   arrivals are spaced at least its [r] apart, so in a fault-free world
   the sporadic model holds by construction *)
let random_disturbances rng (apps : Core.App.t list) ~horizon =
  List.concat_map
    (fun (a : Core.App.t) ->
      let r = a.Core.App.r in
      let rec go t acc =
        if t >= horizon then List.rev acc
        else
          let next = t + r + Faults.Prng.int rng ~bound:r in
          go next ((t, a.Core.App.name) :: acc)
      in
      go (Faults.Prng.int rng ~bound:r) [])
    apps

(* the outcome of one monitored run, ready to fold into a slot summary
   in (slot, run) order *)
type trial = {
  t_clean : bool;
  t_settling : int;
  t_wait : int;
  t_dwell : int;
  t_suppressed : int;
  t_injected : int;
  t_blackout : int;
  t_losses : int;
  t_drops : int;
  t_bus_lost : int;
  t_bus_undelivered : int;
  t_bus_overruns : int;
}

let run ?pool ?policy ?threshold ?bus ~spec ~seed ~runs ~horizon slots =
  if runs < 1 then invalid_arg "Campaign.run: runs must be positive";
  if horizon < 1 then invalid_arg "Campaign.run: horizon must be positive";
  let pool = match pool with Some p -> p | None -> Par.Pool.default () in
  let n_slots = List.length slots in
  let slot_arr = Array.of_list slots in
  (* Each trial is a pure function of (seed, slot, run): it derives its
     own streams from a task-local PRNG root, so trials can run on any
     domain in any order.  The campaign summary folds them back in
     (slot, run) order and is byte-identical at any jobs count. *)
  let trial (s, k) =
    let t0 = Obs.Clock.now () in
    let apps = slot_arr.(s) in
    let names =
      Array.of_list
        (List.map (fun (a : Core.App.t) -> (a.Core.App.name, a.Core.App.r)) apps)
    in
    let root = Faults.Prng.create seed in
    let stream = Faults.Prng.split root ((k * n_slots) + s) in
    let dist_rng = Faults.Prng.split stream 0 in
    let plan_seed = Faults.Prng.next_int64 (Faults.Prng.split stream 1) in
    let disturbances = random_disturbances dist_rng apps ~horizon in
    let scenario = Scenario.make ~apps ~disturbances ~horizon in
    let result =
      match Faults.Plan.materialize ~spec ~seed:plan_seed ~apps:names ~horizon with
      | Error e -> Error e
      | Ok plan -> (
        let trace, fault_summary = Engine.run_with_faults ?policy ~plan scenario in
        (* the same plan that shaped the control run drives the medium's
           loss hook, so link loss and held actuations tell one story *)
        match
          Option.map (fun b -> Engine.replay_on_bus ~bus:b ~plan trace) bus
        with
        | exception Invalid_argument e -> Error e
        | bus_result ->
          let report =
            Monitor.check ?threshold ~summary:fault_summary ?bus:bus_result
              ~apps trace
          in
          Ok
            {
              t_clean = report.Monitor.ok;
              t_settling = Monitor.count report `Settling;
              t_wait = Monitor.count report `Wait;
              t_dwell = Monitor.count report `Dwell;
              t_suppressed = Monitor.count report `Suppressed;
              t_injected = List.length fault_summary.Engine.injected;
              t_blackout = fault_summary.Engine.blackout_samples;
              t_losses = fault_summary.Engine.et_losses;
              t_drops = fault_summary.Engine.sensor_drops;
              t_bus_lost =
                (match bus_result with
                 | Some r -> r.Bus_check.lost_tx
                 | None -> 0);
              t_bus_undelivered =
                (match bus_result with
                 | Some r -> r.Bus_check.messages - r.Bus_check.delivered
                 | None -> 0);
              t_bus_overruns =
                (match bus_result with
                 | Some r -> r.Bus_check.et_overruns
                 | None -> 0);
            })
    in
    (* Emitted from whichever domain ran the trial; (slot, run, clean)
       are pure functions of the seed, so the event multiset is
       jobs-independent once timing fields are masked. *)
    Obs.Event.emit "campaign.trial"
      [
        ("slot", Obs.Event.Int s);
        ("run", Obs.Event.Int k);
        ( "clean",
          Obs.Event.Bool
            (match result with Ok t -> t.t_clean | Error _ -> false) );
        ("dur_s", Obs.Event.Float (Obs.Clock.now () -. t0));
      ];
    result
  in
  let pairs =
    List.concat_map
      (fun s -> List.init runs (fun k -> (s, k)))
      (List.init n_slots (fun s -> s))
  in
  let results = Array.of_list (Par.Pool.map_list pool trial pairs) in
  let exception Materialize of string in
  try
    let slot_summaries =
      List.mapi
        (fun s apps ->
          let acc =
            ref
              {
                apps = List.map (fun (a : Core.App.t) -> a.Core.App.name) apps;
                runs;
                clean_runs = 0;
                j_star = 0;
                wait = 0;
                dwell = 0;
                suppressed = 0;
                injected = 0;
                blackout_samples = 0;
                et_losses = 0;
                sensor_drops = 0;
                bus_lost_tx = 0;
                bus_undelivered = 0;
                bus_overruns = 0;
              }
          in
          for k = 0 to runs - 1 do
            (* first error in (slot, run) order wins, matching the
               sequential raise *)
            match results.((s * runs) + k) with
            | Error e -> raise (Materialize e)
            | Ok t ->
              let a = !acc in
              acc :=
                {
                  a with
                  clean_runs = (a.clean_runs + if t.t_clean then 1 else 0);
                  j_star = a.j_star + t.t_settling;
                  wait = a.wait + t.t_wait;
                  dwell = a.dwell + t.t_dwell;
                  suppressed = a.suppressed + t.t_suppressed;
                  injected = a.injected + t.t_injected;
                  blackout_samples = a.blackout_samples + t.t_blackout;
                  et_losses = a.et_losses + t.t_losses;
                  sensor_drops = a.sensor_drops + t.t_drops;
                  bus_lost_tx = a.bus_lost_tx + t.t_bus_lost;
                  bus_undelivered = a.bus_undelivered + t.t_bus_undelivered;
                  bus_overruns = a.bus_overruns + t.t_bus_overruns;
                }
          done;
          !acc)
        slots
    in
    let total_violations =
      List.fold_left
        (fun t s -> t + s.j_star + s.wait + s.dwell + s.suppressed)
        0 slot_summaries
    in
    if Obs.Trace_ctx.enabled () then begin
      Obs.Metric.count "campaign.runs" (runs * n_slots);
      Obs.Metric.count "campaign.violations" total_violations
    end;
    Ok
      {
        seed;
        spec;
        horizon;
        slots = slot_summaries;
        total_violations;
        bus_backend = Option.map Bus.configured_name bus;
      }
  with Materialize e -> Error e

let pp ppf s =
  Format.fprintf ppf "@[<v>fault campaign: spec %S seed %Ld@,"
    (Faults.Spec.to_string s.spec) s.seed;
  Format.fprintf ppf "%d slot group(s), %d run(s) each, horizon %d samples@,@,"
    (List.length s.slots)
    (match s.slots with g :: _ -> g.runs | [] -> 0)
    s.horizon;
  Format.fprintf ppf
    "%-24s %6s %6s %6s %6s %6s %6s@," "slot group" "clean" "J*" "T*_w" "dwell"
    "suppr" "inject";
  List.iter
    (fun g ->
      Format.fprintf ppf "%-24s %3d/%-2d %6d %6d %6d %6d %6d@,"
        (String.concat "," g.apps) g.clean_runs g.runs g.j_star g.wait g.dwell
        g.suppressed g.injected)
    s.slots;
  let blackout = List.fold_left (fun t g -> t + g.blackout_samples) 0 s.slots in
  let losses = List.fold_left (fun t g -> t + g.et_losses) 0 s.slots in
  let drops = List.fold_left (fun t g -> t + g.sensor_drops) 0 s.slots in
  Format.fprintf ppf
    "@,faults injected: %d blackout sample(s), %d ET loss(es), %d sensor drop(s)@,"
    blackout losses drops;
  (match s.bus_backend with
   | None -> ()
   | Some name ->
     let lost = List.fold_left (fun t g -> t + g.bus_lost_tx) 0 s.slots in
     let undeliv = List.fold_left (fun t g -> t + g.bus_undelivered) 0 s.slots in
     let over = List.fold_left (fun t g -> t + g.bus_overruns) 0 s.slots in
     (* the reference transport stays silent when nothing went wrong so
        a campaign replayed on it prints exactly what it printed before
        the transport seam existed *)
     if (not (String.equal name "flexray")) || lost + undeliv + over > 0 then
       Format.fprintf ppf
         "bus (%s): %d lost transmission(s), %d undelivered, %d one-sample overrun(s)@,"
         name lost undeliv over);
  Format.fprintf ppf "total guarantee violations: %d@]" s.total_violations
