(** Seeded fault-injection campaigns: many randomized monitored runs
    over the slot groups of a dimensioned system.

    Every run draws an admissible disturbance schedule (arrivals of
    each application spaced at least [r] apart) and a materialised
    fault plan from the campaign spec, both from streams split off the
    campaign seed — the whole campaign is a pure function of
    [(spec, seed, runs, horizon, slots)] and its summary is
    byte-for-byte reproducible. *)

type slot_summary = {
  apps : string list;  (** names of the slot group *)
  runs : int;
  clean_runs : int;  (** runs with no violation at all *)
  j_star : int;  (** settling-budget violations, summed over runs *)
  wait : int;  (** T*_w overruns *)
  dwell : int;  (** dwell-table violations *)
  suppressed : int;  (** suppressed arrivals *)
  injected : int;  (** disturbances actually delivered *)
  blackout_samples : int;
  et_losses : int;
  sensor_drops : int;
  bus_lost_tx : int;  (** transmissions destroyed on the medium *)
  bus_undelivered : int;  (** messages never delivered within the replay *)
  bus_overruns : int;  (** ET deliveries later than one sampling period *)
}

type summary = {
  seed : int64;
  spec : Faults.Spec.t;
  horizon : int;
  slots : slot_summary list;
  total_violations : int;
  bus_backend : string option;
      (** name of the transport each trial was replayed on, when any *)
}

val run :
  ?pool:Par.Pool.t ->
  ?policy:Sched.Slot_state.policy ->
  ?threshold:float ->
  ?bus:Bus.configured ->
  spec:Faults.Spec.t ->
  seed:int64 ->
  runs:int ->
  horizon:int ->
  Core.App.t list list ->
  (summary, string) result
(** [Error] reports a spec that does not materialise against a slot
    group (e.g. an unknown application name) or, with [bus], a backend
    too small for a slot group.

    With [bus], every trial's trace is additionally replayed on that
    transport ({!Engine.replay_on_bus}) under the trial's own fault
    plan; broken transport facts count the run as not clean and the
    loss totals land in the [bus_*] fields.

    With [pool] (default {!Par.Pool.default}) sized above 1, trials are
    sharded across domains; each trial derives its streams from its own
    [(seed, slot, run)]-indexed split, and results are merged back in
    (slot, run) order — including error precedence — so the summary is
    byte-identical at any jobs count. *)

val pp : Format.formatter -> summary -> unit
(** Deterministic: contains no wall-clock quantities. *)
