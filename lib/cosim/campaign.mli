(** Seeded fault-injection campaigns: many randomized monitored runs
    over the slot groups of a dimensioned system.

    Every run draws an admissible disturbance schedule (arrivals of
    each application spaced at least [r] apart) and a materialised
    fault plan from the campaign spec, both from streams split off the
    campaign seed — the whole campaign is a pure function of
    [(spec, seed, runs, horizon, slots)] and its summary is
    byte-for-byte reproducible. *)

type slot_summary = {
  apps : string list;  (** names of the slot group *)
  runs : int;
  clean_runs : int;  (** runs with no violation at all *)
  j_star : int;  (** settling-budget violations, summed over runs *)
  wait : int;  (** T*_w overruns *)
  dwell : int;  (** dwell-table violations *)
  suppressed : int;  (** suppressed arrivals *)
  injected : int;  (** disturbances actually delivered *)
  blackout_samples : int;
  et_losses : int;
  sensor_drops : int;
}

type summary = {
  seed : int64;
  spec : Faults.Spec.t;
  horizon : int;
  slots : slot_summary list;
  total_violations : int;
}

val run :
  ?pool:Par.Pool.t ->
  ?policy:Sched.Slot_state.policy ->
  ?threshold:float ->
  spec:Faults.Spec.t ->
  seed:int64 ->
  runs:int ->
  horizon:int ->
  Core.App.t list list ->
  (summary, string) result
(** [Error] reports a spec that does not materialise against a slot
    group (e.g. an unknown application name).

    With [pool] (default {!Par.Pool.default}) sized above 1, trials are
    sharded across domains; each trial derives its streams from its own
    [(seed, slot, run)]-indexed split, and results are merged back in
    (slot, run) order — including error precedence — so the summary is
    byte-identical at any jobs count. *)

val pp : Format.formatter -> summary -> unit
(** Deterministic: contains no wall-clock quantities. *)
