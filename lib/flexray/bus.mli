(** Cycle-accurate FlexRay bus simulation.

    Messages are submitted with a release time; static frames go out in
    their slot of the next cycle whose slot start is at or after the
    release, dynamic frames contend in the minislot arbitration.  The
    simulator reports per-message delivery times, from which the
    deterministic TT delay and the jittery ET delay of the paper can be
    measured directly.

    An optional [drop] hook models a lossy medium: a destroyed
    transmission burns its slot (static) or minislots (dynamic) but the
    message stays queued and retries at its next opportunity. *)

type message = { frame : Frame.t; release_us : int }

type delivery = {
  message : message;
  delivered_us : int;  (** end of the transmission window *)
  attempts : int;  (** transmissions used; 1 = first try succeeded *)
}

type outcome = {
  deliveries : delivery list;
  undelivered : (message * int) list;
      (** not delivered by [until_us], with attempts burned *)
  lost_tx : int;  (** transmissions destroyed by the [drop] hook *)
}

type drop = message -> attempt:int -> bool

val simulate_outcome :
  ?drop:drop -> Config.t -> until_us:int -> message list -> outcome
(** Run the bus until [until_us].  Several pending static messages for
    the same slot are served oldest-first, one per cycle; a dropped
    transmission keeps its message at the head of the queue.
    @raise Invalid_argument on negative release times, static slots out
    of range, or dynamic frames longer than the whole segment. *)

val simulate : Config.t -> until_us:int -> message list -> delivery list
(** [simulate] is the lossless [simulate_outcome], returning only the
    in-horizon deliveries — the historical interface. *)

val delay_us : delivery -> int
(** Delivery latency [delivered_us - release_us]. *)
