type message = { frame : Frame.t; release_us : int }
type delivery = { message : message; delivered_us : int; attempts : int }

type outcome = {
  deliveries : delivery list;
  undelivered : (message * int) list;
  lost_tx : int;
}

type drop = message -> attempt:int -> bool

let delay_us d = d.delivered_us - d.message.release_us
let no_drop _ ~attempt:_ = false

(* one mutable job per submitted message: transmission attempts burned
   so far, and when (if ever) the message made it onto the bus *)
type job = {
  msg : message;
  mutable tries : int;
  mutable delivered_at : int option;
}

let simulate_outcome ?(drop = no_drop) config ~until_us messages =
  List.iter
    (fun m ->
      if m.release_us < 0 then invalid_arg "Bus.simulate: negative release";
      match m.frame with
      | Frame.Static { slot } ->
        if slot >= config.Config.static_slot_count then
          invalid_arg "Bus.simulate: static slot out of range"
      | Frame.Dynamic { length_minislots; _ } ->
        if length_minislots > config.Config.minislot_count then
          invalid_arg "Bus.simulate: dynamic frame exceeds the segment")
    messages;
  let jobs =
    List.map (fun m -> { msg = m; tries = 0; delivered_at = None }) messages
  in
  let cycle_us = Config.cycle_us config in
  let cycles = (until_us / cycle_us) + 1 in
  let deliveries = ref [] and lost_tx = ref 0 in
  (* a transmission opportunity for [j]: burn an attempt, ask the loss
     hook, and either deliver or leave the job queued for the next one *)
  let attempt j ~finish =
    j.tries <- j.tries + 1;
    if drop j.msg ~attempt:j.tries then begin
      incr lost_tx;
      false
    end
    else begin
      j.delivered_at <- Some finish;
      deliveries :=
        { message = j.msg; delivered_us = finish; attempts = j.tries }
        :: !deliveries;
      true
    end
  in
  (* static messages, per slot, oldest first *)
  let static_queue = Hashtbl.create 8 in
  List.iter
    (fun j ->
      match j.msg.frame with
      | Frame.Static { slot } ->
        Hashtbl.replace static_queue slot
          (j :: Option.value ~default:[] (Hashtbl.find_opt static_queue slot))
      | Frame.Dynamic _ -> ())
    jobs;
  Hashtbl.iter
    (fun slot q ->
      Hashtbl.replace static_queue slot
        (List.sort (fun a b -> compare a.msg.release_us b.msg.release_us) q))
    static_queue;
  (* dynamic messages sorted by release *)
  let dynamic_jobs =
    List.filter
      (fun j ->
        match j.msg.frame with
        | Frame.Dynamic _ -> true
        | Frame.Static _ -> false)
      jobs
    |> List.sort (fun a b -> compare a.msg.release_us b.msg.release_us)
  in
  let dyn_waiting = ref [] (* (frame_id, length, job) pending *)
  and dyn_future = ref dynamic_jobs in
  for cycle = 0 to cycles - 1 do
    let cycle_start = cycle * cycle_us in
    (* static segment *)
    for slot = 0 to config.Config.static_slot_count - 1 do
      let slot_start = Config.static_slot_start config ~cycle ~slot in
      match Hashtbl.find_opt static_queue slot with
      | Some (j :: rest) when j.msg.release_us <= slot_start ->
        if attempt j ~finish:(slot_start + config.Config.static_slot_us) then
          Hashtbl.replace static_queue slot rest
      | Some _ | None -> ()
    done;
    (* dynamic segment: admit messages released before it starts *)
    let dyn_start = cycle_start + Config.static_us config in
    let admitted, still_future =
      List.partition (fun j -> j.msg.release_us <= dyn_start) !dyn_future
    in
    dyn_future := still_future;
    List.iter
      (fun j ->
        match j.msg.frame with
        | Frame.Dynamic { frame_id; length_minislots } ->
          dyn_waiting := (frame_id, length_minislots, j) :: !dyn_waiting
        | Frame.Static _ -> assert false)
      admitted;
    (* one frame id transmits at most one message per cycle: offer the
       oldest pending message of each id to the arbitration *)
    let oldest_per_id =
      List.sort
        (fun (_, _, a) (_, _, b) -> compare a.msg.release_us b.msg.release_us)
        !dyn_waiting
      |> List.fold_left
           (fun acc ((id, _, _) as entry) ->
             if List.exists (fun (id', _, _) -> id' = id) acc then acc
             else entry :: acc)
           []
    in
    let pending = List.map (fun (id, len, _) -> (id, len)) oldest_per_id in
    let sent, _leftover =
      if pending = [] then ([], [])
      else
        Dynamic_segment.arbitrate ~minislot_count:config.Config.minislot_count
          ~pending
    in
    List.iter
      (fun (tx : Dynamic_segment.transmission) ->
        match
          List.find_opt
            (fun (id, _, _) -> id = tx.Dynamic_segment.frame_id)
            oldest_per_id
        with
        | Some (_, _, j) ->
          let finish =
            dyn_start
            + ((tx.Dynamic_segment.start_minislot
                + tx.Dynamic_segment.length_minislots)
               * config.Config.minislot_us)
          in
          if attempt j ~finish then
            dyn_waiting := List.filter (fun (_, _, j') -> j' != j) !dyn_waiting
        | None -> assert false)
      sent
  done;
  let delivered_in_time j =
    match j.delivered_at with Some t -> t <= until_us | None -> false
  in
  {
    deliveries =
      List.filter (fun d -> d.delivered_us <= until_us) (List.rev !deliveries);
    undelivered =
      List.filter_map
        (fun j -> if delivered_in_time j then None else Some (j.msg, j.tries))
        jobs;
    lost_tx = !lost_tx;
  }

let simulate config ~until_us messages =
  (simulate_outcome config ~until_us messages).deliveries
