(** The resident dimensioning service behind [cpsdim serve]: one warm
    cache pair shared across requests, group questions sharded across
    the default {!Par.Pool}, answers incremental by group fingerprint.

    Requests are handled strictly sequentially and each group question
    is asked at most once per request (duplicates share one probe), so
    the response stream is byte-identical at any jobs count and on
    every replay of the same request log against a fresh service.

    A group whose fingerprint was answered before — in this process or,
    with a persistent cache, by any earlier one — is served from the
    warm caches with [`Mem]/[`Disk] provenance; only changed groups
    reach the engine ([`Miss]). *)

type t

val create : ?pcache:Core.Pcache.t -> unit -> t
(** A fresh service.  With [pcache] the verdict and dwell caches are
    backed by the persistent store, so the first request of a process
    can already be answered incrementally. *)

val handle_line : t -> string -> string * [ `Continue | `Stop ]
(** Answer one request line with one response line (no trailing
    newline).  Malformed lines, unknown kinds and failing computations
    produce an [ok:false] response and [`Continue] — a request never
    raises.  Only a well-formed [shutdown] request yields [`Stop]. *)

val requests : t -> int
(** Lines handled so far (malformed ones included). *)

val incremental_skips : t -> int
(** Group questions answered from a cache ([`Mem]/[`Disk]) instead of
    the engine, summed over all requests. *)

val engine_runs : t -> int
(** Group questions and dwell tables the engine actually computed. *)
