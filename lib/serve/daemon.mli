(** Transport loop of [cpsdim serve]: line-delimited requests in,
    line-delimited responses out, over stdio or a Unix domain socket.

    Requests are handled strictly in arrival order and every response
    is flushed before the next line is read, so a client that writes a
    batch and reads until EOF always sees one answer per request, in
    request order.  Because {!Service.handle_line} awaits its sharded
    group probes before returning, a [shutdown] request cannot race
    in-flight work: by the time the "bye" response is on the wire the
    pool has drained. *)

val run_channels : Service.t -> in_channel -> out_channel -> [ `Eof | `Stopped ]
(** Serve one connection: read lines until EOF ([`Eof]) or a shutdown
    request ([`Stopped]), skipping blank lines.  A final line without
    its newline (truncated client write) is still parsed — and, being
    cut short, answered with a structured error rather than silence. *)

val run_stdio : Service.t -> unit
(** {!run_channels} over stdin/stdout — the batch mode. *)

val run_socket : Service.t -> path:string -> (unit, string) result
(** Bind a Unix domain socket at [path] (replacing a stale one) and
    accept clients one at a time, each served with {!run_channels};
    the service — and its warm caches — persists across connections.
    A client disconnect ends its connection only; a [shutdown] request
    ends the accept loop.  The socket file is removed on exit.
    [Error] when the socket cannot be bound. *)
