let run_channels svc ic oc =
  let rec loop () =
    match In_channel.input_line ic with
    | None -> `Eof
    | Some line when String.trim line = "" -> loop ()
    | Some line -> (
      let response, control = Service.handle_line svc line in
      Out_channel.output_string oc response;
      Out_channel.output_char oc '\n';
      Out_channel.flush oc;
      match control with `Continue -> loop () | `Stop -> `Stopped)
  in
  loop ()

let run_stdio svc = ignore (run_channels svc stdin stdout)

let run_socket svc ~path =
  (* a dead previous daemon leaves its socket file behind; binding over
     it is the expected restart story *)
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.bind sock (Unix.ADDR_UNIX path) with
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
  | () ->
    Unix.listen sock 8;
    (* a client gone before its answer must end that connection, not
       the daemon: EPIPE surfaces as an exception, not a signal *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ());
    let serve_client fd =
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      let outcome = try run_channels svc ic oc with Sys_error _ -> `Eof in
      (try Out_channel.flush oc with Sys_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ());
      outcome
    in
    let rec accept_loop () =
      match Unix.accept sock with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | fd, _ -> (
        match serve_client fd with `Stopped -> () | `Eof -> accept_loop ())
    in
    Fun.protect
      ~finally:(fun () ->
        (try Unix.close sock with Unix.Unix_error _ -> ());
        try Unix.unlink path with Unix.Unix_error _ -> ())
      accept_loop;
    Ok ()
