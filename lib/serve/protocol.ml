type group_app =
  | Named of string
  | Override of { name : string; j_star : int }
  | Inline of {
      name : string;
      t_w_max : int;
      t_dw_min : int array;
      t_dw_max : int array;
      r : int;
    }

type request =
  | Verify of { id : Obs.Jsonx.t; groups : group_app list list }
  | Map of { id : Obs.Jsonx.t; optimal : bool }
  | Dwell of { id : Obs.Jsonx.t; app : string; j_star : int option }
  | Ping of { id : Obs.Jsonx.t }
  | Shutdown of { id : Obs.Jsonx.t }

let ( let* ) = Result.bind
let err fmt = Printf.ksprintf (fun m -> Error m) fmt

let as_int ~what = function
  | Obs.Jsonx.Int i -> Ok i
  | _ -> err "%s must be an integer" what

let as_string ~what = function
  | Obs.Jsonx.String s -> Ok s
  | _ -> err "%s must be a string" what

let as_int_array ~what = function
  | Obs.Jsonx.List items ->
    let rec go acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | Obs.Jsonx.Int i :: rest -> go (i :: acc) rest
      | _ -> err "%s must be an array of integers" what
    in
    go [] items
  | _ -> err "%s must be an array of integers" what

(* inline specs are told apart from budget overrides by the presence of
   timing fields: an object with "t_w_max" must spell the whole spec
   out, an object without is a case-study reference *)
let app_of_json = function
  | Obs.Jsonx.String name -> Ok (Named name)
  | Obs.Jsonx.Assoc kvs -> (
    let* name =
      match List.assoc_opt "name" kvs with
      | Some j -> as_string ~what:"application \"name\"" j
      | None -> err "an application object wants a \"name\""
    in
    if List.mem_assoc "t_w_max" kvs then
      let field key conv =
        match List.assoc_opt key kvs with
        | Some j -> conv ~what:(Printf.sprintf "%S of inline %s" key name) j
        | None -> err "inline application %s wants %S" name key
      in
      let* t_w_max = field "t_w_max" as_int in
      let* t_dw_min = field "t_dw_min" as_int_array in
      let* t_dw_max = field "t_dw_max" as_int_array in
      let* r = field "r" as_int in
      Ok (Inline { name; t_w_max; t_dw_min; t_dw_max; r })
    else
      match List.assoc_opt "j_star" kvs with
      | None -> Ok (Named name)
      | Some j ->
        let* j_star = as_int ~what:(Printf.sprintf "\"j_star\" of %s" name) j in
        Ok (Override { name; j_star }))
  | _ -> err "an application is a name string or an object"

let group_of_json = function
  | Obs.Jsonx.List [] -> err "a group must hold at least one application"
  | Obs.Jsonx.List apps ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | j :: rest ->
        let* a = app_of_json j in
        go (a :: acc) rest
    in
    go [] apps
  | _ -> err "a group is an array of applications"

let groups_of_json = function
  | Obs.Jsonx.List [] -> err "\"groups\" must hold at least one group"
  | Obs.Jsonx.List gs ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | j :: rest ->
        let* g = group_of_json j in
        go (g :: acc) rest
    in
    go [] gs
  | _ -> err "\"groups\" must be an array of groups"

let request_of_line line =
  match Obs.Jsonx.of_string line with
  | Error m -> Error (Obs.Jsonx.Null, "bad JSON: " ^ m)
  | Ok (Obs.Jsonx.Assoc kvs) -> (
    let id = Option.value ~default:Obs.Jsonx.Null (List.assoc_opt "id" kvs) in
    let tagged r = Result.map_error (fun m -> (id, m)) r in
    match List.assoc_opt "kind" kvs with
    | None -> Error (id, "a request wants a \"kind\"")
    | Some (Obs.Jsonx.String "verify") ->
      tagged
        (match List.assoc_opt "groups" kvs with
         | None -> err "verify wants \"groups\""
         | Some j ->
           let* groups = groups_of_json j in
           Ok (Verify { id; groups }))
    | Some (Obs.Jsonx.String "map") ->
      tagged
        (match List.assoc_opt "optimal" kvs with
         | None -> Ok (Map { id; optimal = false })
         | Some (Obs.Jsonx.Bool b) -> Ok (Map { id; optimal = b })
         | Some _ -> err "\"optimal\" must be a boolean")
    | Some (Obs.Jsonx.String "dwell") ->
      tagged
        (let* app =
           match List.assoc_opt "app" kvs with
           | None -> err "dwell wants an \"app\" name"
           | Some j -> as_string ~what:"\"app\"" j
         in
         let* j_star =
           match List.assoc_opt "j_star" kvs with
           | None -> Ok None
           | Some j -> Result.map Option.some (as_int ~what:"\"j_star\"" j)
         in
         Ok (Dwell { id; app; j_star }))
    | Some (Obs.Jsonx.String "ping") -> Ok (Ping { id })
    | Some (Obs.Jsonx.String "shutdown") -> Ok (Shutdown { id })
    | Some (Obs.Jsonx.String k) ->
      Error
        ( id,
          Printf.sprintf
            "unknown request kind %S (have verify, map, dwell, ping, shutdown)"
            k )
    | Some _ -> Error (id, "\"kind\" must be a string"))
  | Ok _ -> Error (Obs.Jsonx.Null, "a request is one JSON object per line")

type group_answer = {
  fingerprint : string;
  verdict : Core.Mapping.verdict;
  provenance : [ `Screen | `Mem | `Disk | `Miss ];
}

let digest s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

let verdict_name : Core.Mapping.verdict -> string = function
  | `Safe -> "safe"
  | `Unsafe -> "unsafe"
  | `Undetermined _ -> "undetermined"

let provenance_name = function
  | `Screen -> "screen"
  | `Mem -> "mem"
  | `Disk -> "disk"
  | `Miss -> "engine"

(* Jsonx.to_string keeps Assoc order, so putting "output" last in the
   list is all the "last field on the wire" guarantee needs *)
let response kvs = Obs.Jsonx.to_string (Obs.Jsonx.Assoc kvs)

let verify_response ~id ~groups ~output =
  response
    [
      ("id", id);
      ("ok", Obs.Jsonx.Bool true);
      ("kind", Obs.Jsonx.String "verify");
      ( "groups",
        Obs.Jsonx.List
          (List.map
             (fun g ->
               Obs.Jsonx.Assoc
                 [
                   ("fingerprint", Obs.Jsonx.String g.fingerprint);
                   ("verdict", Obs.Jsonx.String (verdict_name g.verdict));
                   ("provenance", Obs.Jsonx.String (provenance_name g.provenance));
                 ])
             groups) );
      ("output", Obs.Jsonx.String output);
    ]

let simple_response ~id ~kind ~output =
  response
    [
      ("id", id);
      ("ok", Obs.Jsonx.Bool true);
      ("kind", Obs.Jsonx.String kind);
      ("output", Obs.Jsonx.String output);
    ]

let error_response ~id msg =
  response [ ("id", id); ("ok", Obs.Jsonx.Bool false); ("error", Obs.Jsonx.String msg) ]
