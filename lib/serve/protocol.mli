(** Line protocol of [cpsdim serve]: one JSON object per line in, one
    JSON object per line out, over stdio or a Unix socket.

    Requests (["id"] is optional and echoed verbatim in the answer):

    - [{"id":1,"kind":"verify","groups":[[APP,...],...]}] — one
      group-safety question per group, where APP is either a case-study
      name (["C1"]), a name with a settling-budget override
      ([{"name":"C1","j_star":30}] — a different budget is a different
      group, which is what drives incremental re-verification), or a
      fully inline timing spec
      ([{"name":"A","t_w_max":1,"t_dw_min":[1,1],"t_dw_max":[1,2],"r":9}]);
    - [{"id":2,"kind":"map","optimal":false}] — slot mapping of the
      case study;
    - [{"id":3,"kind":"dwell","app":"C1","j_star":25}] — one dwell
      table ([j_star] optional);
    - [{"kind":"ping"}] and [{"kind":"shutdown"}].

    Responses are [{"id":..,"ok":true,"kind":..,...,"output":".."}] on
    success — the ["output"] field is always {e last}, so shell
    pipelines can extract it without a JSON parser — and
    [{"id":..,"ok":false,"error":".."}] on any malformed or failing
    request.  A request never crashes the service. *)

type group_app =
  | Named of string  (** case-study application, by name *)
  | Override of { name : string; j_star : int }
      (** case-study plant and gains under a different settling budget *)
  | Inline of {
      name : string;
      t_w_max : int;
      t_dw_min : int array;
      t_dw_max : int array;
      r : int;
    }  (** raw timing spec, no control layer involved *)

type request =
  | Verify of { id : Obs.Jsonx.t; groups : group_app list list }
  | Map of { id : Obs.Jsonx.t; optimal : bool }
  | Dwell of { id : Obs.Jsonx.t; app : string; j_star : int option }
  | Ping of { id : Obs.Jsonx.t }
  | Shutdown of { id : Obs.Jsonx.t }

val request_of_line : string -> (request, Obs.Jsonx.t * string) result
(** Parse one line.  [Error (id, message)] echoes whatever ["id"] could
    still be recovered from the line ([Null] otherwise), so the client
    can correlate the failure. *)

type group_answer = {
  fingerprint : string;
      (** {!digest} of the group's injective {!Core.Mapping.fingerprint} *)
  verdict : Core.Mapping.verdict;
  provenance : [ `Screen | `Mem | `Disk | `Miss ];
      (** where the answer came from; [`Miss] means the engine ran *)
}

val digest : string -> string
(** 16-hex FNV-1a digest of an injective fingerprint: a stable,
    compact group identity for the wire (collisions are irrelevant
    here — the digest only labels answers, the cache keys stay
    injective). *)

val verdict_name : Core.Mapping.verdict -> string
(** ["safe"] / ["unsafe"] / ["undetermined"]. *)

val provenance_name : [ `Screen | `Mem | `Disk | `Miss ] -> string
(** ["screen"] / ["mem"] / ["disk"] / ["engine"]. *)

val verify_response :
  id:Obs.Jsonx.t -> groups:group_answer list -> output:string -> string
(** Success answer to a verify request: per-group fingerprint, verdict
    and provenance, then the human-readable verdict lines (one per
    group, newline-joined, no trailing newline) as the final ["output"]
    field. *)

val simple_response : id:Obs.Jsonx.t -> kind:string -> output:string -> string
(** Success answer carrying only an ["output"] payload (map, dwell,
    ping, shutdown). *)

val error_response : id:Obs.Jsonx.t -> string -> string
(** [{"id":..,"ok":false,"error":msg}]. *)
