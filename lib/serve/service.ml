type t = {
  mcache : Core.Mapping.cache;
  dcache : Core.Dwell.cache;
  case_apps : Core.App.t list Lazy.t;
  mutable requests : int;
  mutable incremental_skips : int;
  mutable engine_runs : int;
}

let create ?pcache () =
  let mcache =
    match pcache with
    | Some pc -> Core.Pcache.mapping_cache pc
    | None -> Core.Mapping.create_cache ()
  in
  let dcache =
    match pcache with
    | Some pc -> Core.Pcache.dwell_cache pc
    | None -> Core.Dwell.create_cache ()
  in
  let case_apps =
    lazy
      (List.map
         (fun (a : Casestudy.app) ->
           Core.App.make ~cache:dcache ~name:a.Casestudy.name
             ~plant:a.Casestudy.plant ~gains:a.Casestudy.gains ~r:a.Casestudy.r
             ~j_star:a.Casestudy.j_star ())
         Casestudy.all)
  in
  {
    mcache;
    dcache;
    case_apps;
    requests = 0;
    incremental_skips = 0;
    engine_runs = 0;
  }

let requests t = t.requests
let incremental_skips t = t.incremental_skips
let engine_runs t = t.engine_runs

(* ------------------------------------------------------------------ *)
(* resolving protocol applications to scheduler specs *)

let case_spec t ~name ?j_star () =
  match Casestudy.find name with
  | exception Not_found ->
    Error
      (Printf.sprintf "unknown application %S (case study provides C1..C6)" name)
  | a -> (
    let j_star = Option.value ~default:a.Casestudy.j_star j_star in
    match
      Core.App.make ~cache:t.dcache ~name:a.Casestudy.name
        ~plant:a.Casestudy.plant ~gains:a.Casestudy.gains ~r:a.Casestudy.r
        ~j_star ()
    with
    | app -> Ok (Core.App.spec app ~id:0)
    | exception Core.Dwell.Infeasible m ->
      Error (Printf.sprintf "%s at J*=%d: infeasible: %s" name j_star m)
    | exception Invalid_argument m ->
      Error (Printf.sprintf "%s at J*=%d: %s" name j_star m))

let resolve_app t = function
  | Protocol.Named name -> case_spec t ~name ()
  | Protocol.Override { name; j_star } -> case_spec t ~name ~j_star ()
  | Protocol.Inline { name; t_w_max; t_dw_min; t_dw_max; r } -> (
    match Sched.Appspec.make ~id:0 ~name ~t_w_max ~t_dw_min ~t_dw_max ~r with
    | s -> Ok s
    | exception Invalid_argument m ->
      Error (Printf.sprintf "inline application %S: %s" name m))

let resolve_group t apps =
  let rec go i acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | a :: rest -> (
      match resolve_app t a with
      | Error _ as e -> e
      | Ok s -> go (i + 1) (Sched.Appspec.with_id s i :: acc) rest)
  in
  go 0 [] apps

let resolve_groups t groups =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | g :: rest -> (
      match resolve_group t g with
      | Error _ as e -> e
      | Ok specs -> go (specs :: acc) rest)
  in
  go [] groups

(* ------------------------------------------------------------------ *)
(* request handlers *)

let emit_request ~kind ~groups ~engine ~mem ~disk =
  Obs.Event.emit "serve.request"
    [
      ("kind", Obs.Event.Str kind);
      ("groups", Obs.Event.Int groups);
      ("engine", Obs.Event.Int engine);
      ("mem", Obs.Event.Int mem);
      ("disk", Obs.Event.Int disk);
    ]

let account t ~kind ~groups ~engine ~mem ~disk =
  t.engine_runs <- t.engine_runs + engine;
  t.incremental_skips <- t.incremental_skips + mem + disk;
  if mem + disk > 0 then Obs.Metric.count "serve.incremental_skips" (mem + disk);
  emit_request ~kind ~groups ~engine ~mem ~disk

let verdict_line : Core.Mapping.verdict -> string = function
  | `Safe -> "safe: no application can miss T*_w"
  (* a cached Unsafe carries no counterexample, so unlike the one-shot
     CLI the unsafe line is a pure function of the verdict — the same
     bytes whether the engine just ran or a cache answered *)
  | `Unsafe -> "unsafe: some application can miss T*_w"
  | `Undetermined reason -> "undetermined: " ^ reason

let handle_verify t ~id groups =
  match resolve_groups t groups with
  | Error m -> Protocol.error_response ~id m
  | Ok specs_list ->
    let fps = List.map Core.Mapping.fingerprint specs_list in
    (* dedup within the request: every distinct group is probed exactly
       once, so concurrent probes never race on one fingerprint and the
       provenance mix is deterministic at any jobs count *)
    let probed = Hashtbl.create 16 in
    let uniq =
      List.filter
        (fun (fp, _) ->
          if Hashtbl.mem probed fp then false
          else begin
            Hashtbl.add probed fp ();
            true
          end)
        (List.combine fps specs_list)
    in
    let pool = Par.Pool.default () in
    let futures =
      Par.Pool.submit_list pool
        (List.map
           (fun (_, specs) () -> Core.Mapping.probe ~cache:t.mcache specs)
           uniq)
    in
    let results = Par.Pool.await_list pool futures in
    let answers = Hashtbl.create 16 in
    List.iter2 (fun (fp, _) r -> Hashtbl.replace answers fp r) uniq results;
    let count p = List.length (List.filter (fun (_, src) -> src = p) results) in
    account t ~kind:"verify" ~groups:(List.length fps) ~engine:(count `Miss)
      ~mem:(count `Mem) ~disk:(count `Disk);
    let group_answers =
      List.map
        (fun fp ->
          let verdict, provenance = Hashtbl.find answers fp in
          { Protocol.fingerprint = Protocol.digest fp; verdict; provenance })
        fps
    in
    let output =
      String.concat "\n"
        (List.map (fun g -> verdict_line g.Protocol.verdict) group_answers)
    in
    Protocol.verify_response ~id ~groups:group_answers ~output

let strip_final_newline s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\n' then String.sub s 0 (n - 1) else s

let handle_map t ~id ~optimal =
  let apps = Lazy.force t.case_apps in
  let hits0 = Par.Vcache.hits t.mcache
  and disk0 = Par.Vcache.disk_hits t.mcache
  and miss0 = Par.Vcache.misses t.mcache in
  let outcome =
    if optimal then Core.Mapping.optimal ~cache:t.mcache apps
    else Core.Mapping.first_fit ~cache:t.mcache apps
  in
  (* the mappers' analytic screen answers some groups before the cache,
     so these deltas undercount "groups asked" — they count exactly the
     cache traffic, which is what the incremental story is about *)
  account t ~kind:"map" ~groups:outcome.Core.Mapping.verifications
    ~engine:(Par.Vcache.misses t.mcache - miss0)
    ~mem:(Par.Vcache.hits t.mcache - hits0 - (Par.Vcache.disk_hits t.mcache - disk0))
    ~disk:(Par.Vcache.disk_hits t.mcache - disk0);
  let output =
    strip_final_newline (Format.asprintf "%a" Core.Mapping.pp outcome)
  in
  Protocol.simple_response ~id ~kind:"map" ~output

let pp_int_array ppf a =
  Format.fprintf ppf "[%s]"
    (String.concat "," (Array.to_list (Array.map string_of_int a)))

let handle_dwell t ~id ~app ~j_star =
  match Casestudy.find app with
  | exception Not_found ->
    Protocol.error_response ~id
      (Printf.sprintf "unknown application %S (case study provides C1..C6)" app)
  | a -> (
    let j_star = Option.value ~default:a.Casestudy.j_star j_star in
    let miss0 = Par.Vcache.misses t.dcache
    and hits0 = Par.Vcache.hits t.dcache
    and disk0 = Par.Vcache.disk_hits t.dcache in
    match
      Core.App.make ~cache:t.dcache ~name:a.Casestudy.name
        ~plant:a.Casestudy.plant ~gains:a.Casestudy.gains ~r:a.Casestudy.r
        ~j_star ()
    with
    | exception Core.Dwell.Infeasible m ->
      Protocol.error_response ~id
        (Printf.sprintf "%s at J*=%d: infeasible: %s" app j_star m)
    | exception Invalid_argument m ->
      Protocol.error_response ~id (Printf.sprintf "%s at J*=%d: %s" app j_star m)
    | capp ->
      account t ~kind:"dwell" ~groups:1
        ~engine:(Par.Vcache.misses t.dcache - miss0)
        ~mem:
          (Par.Vcache.hits t.dcache - hits0
          - (Par.Vcache.disk_hits t.dcache - disk0))
        ~disk:(Par.Vcache.disk_hits t.dcache - disk0);
      let tbl = capp.Core.App.table in
      (* the exact line format of `cpsdim tables`, so the two outputs
         diff clean in CI *)
      let output =
        strip_final_newline
          (Format.asprintf
             "%s: r=%d J*=%d | J_T=%d J_E=%d T*_w=%d@.  T-_dw=%a@.  T+_dw=%a@."
             capp.Core.App.name capp.Core.App.r capp.Core.App.j_star
             tbl.Core.Dwell.jt tbl.Core.Dwell.je tbl.Core.Dwell.t_w_max
             pp_int_array tbl.Core.Dwell.t_dw_min pp_int_array
             tbl.Core.Dwell.t_dw_max)
      in
      Protocol.simple_response ~id ~kind:"dwell" ~output)

(* ------------------------------------------------------------------ *)

let dispatch t = function
  | Protocol.Verify { id; groups } -> (handle_verify t ~id groups, `Continue)
  | Protocol.Map { id; optimal } -> (handle_map t ~id ~optimal, `Continue)
  | Protocol.Dwell { id; app; j_star } ->
    (handle_dwell t ~id ~app ~j_star, `Continue)
  | Protocol.Ping { id } ->
    account t ~kind:"ping" ~groups:0 ~engine:0 ~mem:0 ~disk:0;
    (Protocol.simple_response ~id ~kind:"ping" ~output:"pong", `Continue)
  | Protocol.Shutdown { id } ->
    account t ~kind:"shutdown" ~groups:0 ~engine:0 ~mem:0 ~disk:0;
    (Protocol.simple_response ~id ~kind:"shutdown" ~output:"bye", `Stop)

let handle_line t line =
  t.requests <- t.requests + 1;
  Obs.Metric.count "serve.requests" 1;
  Obs.Span.with_ "serve.request" @@ fun () ->
  match Protocol.request_of_line line with
  | Error (id, m) ->
    emit_request ~kind:"error" ~groups:0 ~engine:0 ~mem:0 ~disk:0;
    (Protocol.error_response ~id m, `Continue)
  | Ok req -> (
    let id =
      match req with
      | Protocol.Verify { id; _ }
      | Protocol.Map { id; _ }
      | Protocol.Dwell { id; _ }
      | Protocol.Ping { id }
      | Protocol.Shutdown { id } -> id
    in
    (* last line of defence: a request must never take the service
       down, whatever a handler raises *)
    try dispatch t req
    with e ->
      emit_request ~kind:"error" ~groups:0 ~engine:0 ~mem:0 ~disk:0;
      (Protocol.error_response ~id (Printexc.to_string e), `Continue))
