type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = { group : int; mutable cell : 'a state }

(* Queue entries erase the result type: [run] computes the task and
   stores the outcome into its future under the pool lock.  A plain
   list is fine as the queue — submissions arrive in chunk-sized
   batches (tens of entries), never per-element over large inputs. *)
type t = {
  m : Mutex.t;
  cv : Condition.t;
      (* signalled on: new work, a future resolving, shutdown *)
  mutable queue : (int * (unit -> unit)) list;  (* FIFO, head oldest *)
  mutable stop : bool;
  n_jobs : int;
  mutable workers : unit Domain.t list;
}

let jobs t = t.n_jobs

let fresh_group = Atomic.make 0

let worker t =
  Mutex.lock t.m;
  let rec loop () =
    if t.stop then Mutex.unlock t.m
    else
      match t.queue with
      | (_, run) :: rest ->
        t.queue <- rest;
        Mutex.unlock t.m;
        run ();
        Mutex.lock t.m;
        loop ()
      | [] ->
        Condition.wait t.cv t.m;
        loop ()
  in
  loop ()

let create ~jobs =
  if jobs < 1 then invalid_arg "Par.Pool.create: jobs must be >= 1";
  let t =
    {
      m = Mutex.create ();
      cv = Condition.create ();
      queue = [];
      stop = false;
      n_jobs = jobs;
      workers = [];
    }
  in
  t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.cv;
  Mutex.unlock t.m;
  List.iter Domain.join t.workers;
  t.workers <- []

let submit_group t group f =
  let fut = { group; cell = Pending } in
  let run () =
    let r =
      try Done (f ()) with e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock t.m;
    fut.cell <- r;
    Condition.broadcast t.cv;
    Mutex.unlock t.m
  in
  Mutex.lock t.m;
  t.queue <- t.queue @ [ (group, run) ];
  Condition.broadcast t.cv;
  Mutex.unlock t.m;
  fut

let submit t f = submit_group t (Atomic.fetch_and_add fresh_group 1) f

(* steal the oldest queued task of [group], if any (caller holds m) *)
let pick_group t group =
  let rec pick acc = function
    | [] -> None
    | ((g, run) as entry) :: rest ->
      if g = group then begin
        t.queue <- List.rev_append acc rest;
        Some run
      end
      else pick (entry :: acc) rest
  in
  pick [] t.queue

let await t fut =
  Mutex.lock t.m;
  let rec wait () =
    match fut.cell with
    | Done v ->
      Mutex.unlock t.m;
      v
    | Failed (e, bt) ->
      Mutex.unlock t.m;
      Printexc.raise_with_backtrace e bt
    | Pending -> (
      (* help: run a queued task of the same group rather than idling —
         this is what makes nested map_* calls on one pool deadlock-free
         (the awaited task is either queued here, and we run it
         ourselves, or already running on some domain that will
         broadcast on completion) *)
      match pick_group t fut.group with
      | Some run ->
        Mutex.unlock t.m;
        run ();
        Mutex.lock t.m;
        wait ()
      | None ->
        Condition.wait t.cv t.m;
        wait ())
  in
  wait ()

let map_array t f a =
  let n = Array.length a in
  if n = 0 then [||]
  else if t.n_jobs = 1 || n = 1 then Array.map f a
  else begin
    let size = (n + (t.n_jobs * 8) - 1) / (t.n_jobs * 8) in
    let chunks = (n + size - 1) / size in
    let group = Atomic.fetch_and_add fresh_group 1 in
    let futures =
      List.init chunks (fun c ->
          let lo = c * size in
          let hi = Int.min n (lo + size) in
          submit_group t group (fun () ->
              (* explicit loop: evaluate strictly in index order so the
                 exception surfaced for a failing chunk is the one of
                 its smallest index, as a sequential run would raise *)
              let out = Array.make (hi - lo) (f a.(lo)) in
              for i = 1 to hi - lo - 1 do
                out.(i) <- f a.(lo + i)
              done;
              out))
    in
    Array.concat (List.map (fun fut -> await t fut) futures)
  end

let map_list t f l = Array.to_list (map_array t f (Array.of_list l))

(* ------------------------------------------------------------------ *)
(* process default *)

let default_m = Mutex.create ()
let default_pool : t option ref = ref None
let requested : int option ref = ref None

let env_jobs () =
  match Sys.getenv_opt "CPSDIM_JOBS" with
  | None -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> j
    | Some _ | None -> 1)

let default_jobs () =
  Mutex.lock default_m;
  let j = match !requested with Some j -> j | None -> env_jobs () in
  Mutex.unlock default_m;
  j

let default () =
  Mutex.lock default_m;
  match !default_pool with
  | Some p ->
    Mutex.unlock default_m;
    p
  | None ->
    let j = match !requested with Some j -> j | None -> env_jobs () in
    let p = create ~jobs:j in
    default_pool := Some p;
    Mutex.unlock default_m;
    p

let set_default_jobs j =
  if j < 1 then invalid_arg "Par.Pool.set_default_jobs: jobs must be >= 1";
  Mutex.lock default_m;
  requested := Some j;
  match !default_pool with
  | Some p when p.n_jobs <> j ->
    default_pool := None;
    Mutex.unlock default_m;
    shutdown p
  | Some _ | None -> Mutex.unlock default_m

(* worker domains blocked on the condvar must be joined before process
   teardown *)
let () =
  at_exit (fun () ->
      Mutex.lock default_m;
      let p = !default_pool in
      default_pool := None;
      Mutex.unlock default_m;
      Option.iter shutdown p)
