type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = { group : int; mutable cell : 'a state }

(* Queue entries erase the result type: [e_run] computes the task and
   stores the outcome into its future under the pool lock.  A plain
   list is fine as the queue — submissions arrive in chunk-sized
   batches (tens of entries), never per-element over large inputs.
   [e_submitted] (monotonic) is stamped at enqueue so the executing
   domain can report how long the task sat in the queue. *)
type entry = { e_group : int; e_submitted : float; e_run : unit -> unit }

type t = {
  m : Mutex.t;
  cv : Condition.t;
      (* signalled on: new work, a future resolving, shutdown *)
  mutable queue : entry list;  (* FIFO, head oldest *)
  mutable stop : bool;
  n_jobs : int;
  mutable workers : unit Domain.t list;
}

let jobs t = t.n_jobs

let fresh_group = Atomic.make 0

(* Stable small index per domain for metric names: 0 = the main
   domain, 1..jobs-1 = pool workers.  (Domain.self () :> int) is
   unique but not dense, which would fragment per-domain series. *)
let worker_ix_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)
let worker_ix () = Domain.DLS.get worker_ix_key

(* Execute one queue entry, publishing its lifecycle: queue-wait and
   run latency as pooled and per-domain histograms, plus one
   "pool.task" event.  Fully guarded — with both observability
   switches off this is two atomic loads on top of [e_run]. *)
let run_entry e =
  if not (Obs.Trace_ctx.enabled () || Obs.Event.enabled ()) then e.e_run ()
  else begin
    let w = worker_ix () in
    let start = Obs.Clock.now () in
    let wait_s = start -. e.e_submitted in
    Fun.protect
      ~finally:(fun () ->
        let run_s = Obs.Clock.now () -. start in
        Obs.Metric.observe_value "pool.queue_wait_s" wait_s;
        Obs.Metric.observe_value (Printf.sprintf "pool.d%d.queue_wait_s" w) wait_s;
        Obs.Metric.observe_value "pool.run_s" run_s;
        Obs.Metric.observe_value (Printf.sprintf "pool.d%d.run_s" w) run_s;
        Obs.Event.emit "pool.task"
          [
            ("worker", Obs.Event.Int w);
            ("group", Obs.Event.Int e.e_group);
            ("queue_wait_s", Obs.Event.Float wait_s);
            ("run_s", Obs.Event.Float run_s);
          ])
      e.e_run
  end

let worker t =
  Mutex.lock t.m;
  let rec loop () =
    if t.stop then Mutex.unlock t.m
    else
      match t.queue with
      | e :: rest ->
        t.queue <- rest;
        Mutex.unlock t.m;
        run_entry e;
        Mutex.lock t.m;
        loop ()
      | [] ->
        (* time spent parked on the condvar = this worker's idle time *)
        let w0 = Obs.Clock.now () in
        Condition.wait t.cv t.m;
        if Obs.Trace_ctx.enabled () then begin
          let idle_s = Obs.Clock.now () -. w0 in
          Obs.Metric.observe_value "pool.idle_s" idle_s;
          Obs.Metric.observe_value
            (Printf.sprintf "pool.d%d.idle_s" (worker_ix ()))
            idle_s
        end;
        loop ()
  in
  loop ()

let create ~jobs =
  if jobs < 1 then invalid_arg "Par.Pool.create: jobs must be >= 1";
  let t =
    {
      m = Mutex.create ();
      cv = Condition.create ();
      queue = [];
      stop = false;
      n_jobs = jobs;
      workers = [];
    }
  in
  t.workers <-
    List.init (jobs - 1) (fun i ->
        Domain.spawn (fun () ->
            Domain.DLS.set worker_ix_key (i + 1);
            worker t));
  t

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.cv;
  Mutex.unlock t.m;
  List.iter Domain.join t.workers;
  t.workers <- []

let submit_group t group f =
  let fut = { group; cell = Pending } in
  let run () =
    let r =
      try Done (f ()) with e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock t.m;
    fut.cell <- r;
    Condition.broadcast t.cv;
    Mutex.unlock t.m
  in
  let e = { e_group = group; e_submitted = Obs.Clock.now (); e_run = run } in
  Mutex.lock t.m;
  t.queue <- t.queue @ [ e ];
  Condition.broadcast t.cv;
  Mutex.unlock t.m;
  fut

let submit t f = submit_group t (Atomic.fetch_and_add fresh_group 1) f

(* steal the oldest queued task of [group], if any (caller holds m) *)
let pick_group t group =
  let rec pick acc = function
    | [] -> None
    | entry :: rest ->
      if entry.e_group = group then begin
        t.queue <- List.rev_append acc rest;
        Some entry
      end
      else pick (entry :: acc) rest
  in
  pick [] t.queue

let await t fut =
  Mutex.lock t.m;
  let rec wait () =
    match fut.cell with
    | Done v ->
      Mutex.unlock t.m;
      v
    | Failed (e, bt) ->
      Mutex.unlock t.m;
      Printexc.raise_with_backtrace e bt
    | Pending -> (
      (* help: run a queued task of the same group rather than idling —
         this is what makes nested map_* calls on one pool deadlock-free
         (the awaited task is either queued here, and we run it
         ourselves, or already running on some domain that will
         broadcast on completion) *)
      match pick_group t fut.group with
      | Some entry ->
        Mutex.unlock t.m;
        run_entry entry;
        Mutex.lock t.m;
        wait ()
      | None ->
        Condition.wait t.cv t.m;
        wait ())
  in
  wait ()

(* Coarse-grained sharding: one future per thunk, all in a single
   submission group so an [await] on any of them helps with the
   others.  This is what the serve layer uses to spread independent
   slot groups across the pool while each group's engine run may
   itself call [map_array] on the same pool (nesting stays
   deadlock-free through helping). *)
let submit_list t thunks =
  let group = Atomic.fetch_and_add fresh_group 1 in
  List.map (fun f -> submit_group t group f) thunks

let await_list t futures = List.map (fun fut -> await t fut) futures

let map_array t f a =
  let n = Array.length a in
  if n = 0 then [||]
  else if t.n_jobs = 1 || n = 1 then Array.map f a
  else begin
    let size = (n + (t.n_jobs * 8) - 1) / (t.n_jobs * 8) in
    let chunks = (n + size - 1) / size in
    let group = Atomic.fetch_and_add fresh_group 1 in
    let futures =
      List.init chunks (fun c ->
          let lo = c * size in
          let hi = Int.min n (lo + size) in
          Obs.Metric.observe_value "pool.batch_size" (float_of_int (hi - lo));
          submit_group t group (fun () ->
              (* explicit loop: evaluate strictly in index order so the
                 exception surfaced for a failing chunk is the one of
                 its smallest index, as a sequential run would raise *)
              let out = Array.make (hi - lo) (f a.(lo)) in
              for i = 1 to hi - lo - 1 do
                out.(i) <- f a.(lo + i)
              done;
              out))
    in
    Array.concat (List.map (fun fut -> await t fut) futures)
  end

let map_list t f l = Array.to_list (map_array t f (Array.of_list l))

(* ------------------------------------------------------------------ *)
(* process default *)

let default_m = Mutex.create ()
let default_pool : t option ref = ref None
let requested : int option ref = ref None

(* A misconfigured CPSDIM_JOBS ("four", "0", "-2") used to be silently
   coerced to 1, so a fleet that fat-fingered its provisioning quietly
   ran sequential.  The coercion stands (a broken knob must not abort a
   verification run) but it is announced once on stderr, naming the
   rejected value. *)
let env_jobs_warned = Atomic.make false

let warn_env_jobs s =
  if not (Atomic.exchange env_jobs_warned true) then
    Printf.eprintf
      "cpsdim: CPSDIM_JOBS=%S is not a positive integer; running with 1 job\n%!"
      s

let env_jobs () =
  match Sys.getenv_opt "CPSDIM_JOBS" with
  | None -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> j
    | Some _ | None ->
      warn_env_jobs s;
      1)

let default_jobs () =
  Mutex.lock default_m;
  let j = match !requested with Some j -> j | None -> env_jobs () in
  Mutex.unlock default_m;
  j

let default () =
  Mutex.lock default_m;
  match !default_pool with
  | Some p ->
    Mutex.unlock default_m;
    p
  | None ->
    let j = match !requested with Some j -> j | None -> env_jobs () in
    let p = create ~jobs:j in
    default_pool := Some p;
    Mutex.unlock default_m;
    p

let set_default_jobs j =
  if j < 1 then invalid_arg "Par.Pool.set_default_jobs: jobs must be >= 1";
  Mutex.lock default_m;
  requested := Some j;
  match !default_pool with
  | Some p when p.n_jobs <> j ->
    default_pool := None;
    Mutex.unlock default_m;
    shutdown p
  | Some _ | None -> Mutex.unlock default_m

(* worker domains blocked on the condvar must be joined before process
   teardown *)
let () =
  at_exit (fun () ->
      Mutex.lock default_m;
      let p = !default_pool in
      default_pool := None;
      Mutex.unlock default_m;
      Option.iter shutdown p)
