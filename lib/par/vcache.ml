type 'a t = {
  m : Mutex.t;
  tbl : (string, 'a) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create () =
  { m = Mutex.create (); tbl = Hashtbl.create 64; hits = 0; misses = 0 }

let find_or_add c key compute =
  Mutex.lock c.m;
  match Hashtbl.find_opt c.tbl key with
  | Some v ->
    c.hits <- c.hits + 1;
    Mutex.unlock c.m;
    v
  | None ->
    c.misses <- c.misses + 1;
    Mutex.unlock c.m;
    (* compute outside the lock: reachability runs take seconds and must
       not serialise unrelated probes.  A racing domain may insert the
       same key first; both computed the same pure function, so
       keep-first is fine. *)
    let v = compute () in
    Mutex.lock c.m;
    if not (Hashtbl.mem c.tbl key) then Hashtbl.add c.tbl key v;
    Mutex.unlock c.m;
    v

let locked c f =
  Mutex.lock c.m;
  let v = f () in
  Mutex.unlock c.m;
  v

let hits c = locked c (fun () -> c.hits)
let misses c = locked c (fun () -> c.misses)
let length c = locked c (fun () -> Hashtbl.length c.tbl)
