type 'a backing = {
  load : string -> 'a option;
  save : string -> 'a -> unit;
}

type 'a t = {
  m : Mutex.t;
  label : string;
  tbl : (string, 'a) Hashtbl.t;
  backing : 'a backing option;
  mutable hits : int;
  mutable disk_hits : int;
  mutable misses : int;
}

let create ?(label = "cache") ?backing () =
  {
    m = Mutex.create ();
    label;
    tbl = Hashtbl.create 64;
    backing;
    hits = 0;
    disk_hits = 0;
    misses = 0;
  }

(* Verdict provenance: count per-source and, when the event stream is
   on, emit one "cache.provenance" record carrying the (truncated)
   key digest and how long the answer took to materialise. *)
let provenance c ~source ~key ~dur_s =
  if Obs.Trace_ctx.enabled () || Obs.Event.enabled () then begin
    Obs.Metric.count (Printf.sprintf "cache.%s.%s" c.label source) 1;
    Obs.Event.emit "cache.provenance"
      [
        ("cache", Obs.Event.Str c.label);
        ("source", Obs.Event.Str source);
        ("key", Obs.Event.Str (String.sub (Digest.to_hex (Digest.string key)) 0 12));
        ("dur_s", Obs.Event.Float dur_s);
      ]
  end

let find_or_add' c key compute =
  let t0 = Obs.Clock.now () in
  Mutex.lock c.m;
  match Hashtbl.find_opt c.tbl key with
  | Some v ->
    c.hits <- c.hits + 1;
    Mutex.unlock c.m;
    provenance c ~source:"mem" ~key ~dur_s:(Obs.Clock.now () -. t0);
    (v, `Mem)
  | None -> (
    match
      match c.backing with Some b -> b.load key | None -> None
    with
    | Some v ->
      (* promote to memory so later lookups skip the backing *)
      c.disk_hits <- c.disk_hits + 1;
      Hashtbl.add c.tbl key v;
      Mutex.unlock c.m;
      provenance c ~source:"disk" ~key ~dur_s:(Obs.Clock.now () -. t0);
      (v, `Disk)
    | None ->
      c.misses <- c.misses + 1;
      Mutex.unlock c.m;
      (* compute outside the lock: reachability runs take seconds and
         must not serialise unrelated probes.  A racing domain may
         insert the same key first; both computed the same pure
         function, so keep-first is fine. *)
      let v = compute () in
      Mutex.lock c.m;
      if not (Hashtbl.mem c.tbl key) then begin
        Hashtbl.add c.tbl key v;
        match c.backing with Some b -> b.save key v | None -> ()
      end;
      Mutex.unlock c.m;
      provenance c ~source:"engine" ~key ~dur_s:(Obs.Clock.now () -. t0);
      (v, `Miss))

let find_or_add c key compute = fst (find_or_add' c key compute)

let locked c f =
  Mutex.lock c.m;
  let v = f () in
  Mutex.unlock c.m;
  v

let hits c = locked c (fun () -> c.hits)
let disk_hits c = locked c (fun () -> c.disk_hits)
let misses c = locked c (fun () -> c.misses)
let length c = locked c (fun () -> Hashtbl.length c.tbl)
