type 'a backing = {
  load : string -> 'a option;
  save : string -> 'a -> unit;
}

type 'a t = {
  m : Mutex.t;
  tbl : (string, 'a) Hashtbl.t;
  backing : 'a backing option;
  mutable hits : int;
  mutable disk_hits : int;
  mutable misses : int;
}

let create ?backing () =
  {
    m = Mutex.create ();
    tbl = Hashtbl.create 64;
    backing;
    hits = 0;
    disk_hits = 0;
    misses = 0;
  }

let find_or_add' c key compute =
  Mutex.lock c.m;
  match Hashtbl.find_opt c.tbl key with
  | Some v ->
    c.hits <- c.hits + 1;
    Mutex.unlock c.m;
    (v, `Mem)
  | None -> (
    match
      match c.backing with Some b -> b.load key | None -> None
    with
    | Some v ->
      (* promote to memory so later lookups skip the backing *)
      c.disk_hits <- c.disk_hits + 1;
      Hashtbl.add c.tbl key v;
      Mutex.unlock c.m;
      (v, `Disk)
    | None ->
      c.misses <- c.misses + 1;
      Mutex.unlock c.m;
      (* compute outside the lock: reachability runs take seconds and
         must not serialise unrelated probes.  A racing domain may
         insert the same key first; both computed the same pure
         function, so keep-first is fine. *)
      let v = compute () in
      Mutex.lock c.m;
      if not (Hashtbl.mem c.tbl key) then begin
        Hashtbl.add c.tbl key v;
        match c.backing with Some b -> b.save key v | None -> ()
      end;
      Mutex.unlock c.m;
      (v, `Miss))

let find_or_add c key compute = fst (find_or_add' c key compute)

let locked c f =
  Mutex.lock c.m;
  let v = f () in
  Mutex.unlock c.m;
  v

let hits c = locked c (fun () -> c.hits)
let disk_hits c = locked c (fun () -> c.disk_hits)
let misses c = locked c (fun () -> c.misses)
let length c = locked c (fun () -> Hashtbl.length c.tbl)
