(** A small fixed-size domain pool: spawn once, share a FIFO work queue,
    hand out futures.  No libraries — just [Domain], [Mutex],
    [Condition] and [Atomic] from the stdlib.

    The pool is built for {e deterministic} parallelism: callers submit
    pure tasks and merge the results themselves in a fixed order
    ({!map_list}/{!map_array} already do so), which is how the mapping,
    campaign, dwell and verification layers reproduce byte-identical
    output at any [jobs] count.

    Blocking [await] {e helps}: while the awaited future is pending, the
    waiting domain executes queued tasks from the same submission group
    instead of going idle.  Helping makes nested parallelism safe — a
    task running on a worker may itself call {!map_array} on the same
    pool without deadlock, and a pool with [jobs = 1] (no worker
    domains at all) degenerates to plain in-order sequential execution. *)

type t

type 'a future

val create : jobs:int -> t
(** A pool executing on [jobs] domains in total: the caller plus
    [jobs - 1] spawned workers.  [jobs = 1] spawns nothing.
    @raise Invalid_argument when [jobs < 1]. *)

val jobs : t -> int

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task.  The closure must not depend on domain-local state
    (it may run on any domain of the pool, including the caller's). *)

val await : t -> 'a future -> 'a
(** Block until the future is resolved, helping with same-group queued
    tasks meanwhile.  Re-raises the task's exception (with its original
    backtrace) if it failed. *)

val submit_list : t -> (unit -> 'a) list -> 'a future list
(** Enqueue every thunk under one shared submission group — the
    coarse-grained counterpart of {!map_array} for work items that are
    themselves big (a whole slot group's verification each).  Awaiting
    any returned future helps with the other still-queued thunks of
    the same list, so nested parallelism on one pool stays
    deadlock-free. *)

val await_list : t -> 'a future list -> 'a list
(** {!await} each future in list order (the merge point callers use to
    keep results deterministic). *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel map preserving order.  Work is submitted in contiguous
    chunks (several elements per future when the input is large, so the
    queue overhead amortises) and the results are merged in index
    order.  With [jobs = 1] this is exactly [Array.map].  If several
    elements raise, the exception of the smallest index is re-raised —
    the same one a sequential run would have surfaced. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map_array} over a list, preserving order. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Only call when no task is in
    flight; pending futures of a shut-down pool never resolve.
    Idempotent. *)

(** {2 Process default}

    One shared pool, sized by the [--jobs] CLI flag or the
    [CPSDIM_JOBS] environment variable (default 1 = sequential).  Every
    parallel entry point ([Mapping.first_fit], [Campaign.run],
    [Dwell.compute], [Dverify.verify]) falls back to this pool when no
    explicit one is passed. *)

val default : unit -> t
(** The shared pool, created on first use with {!default_jobs}. *)

val default_jobs : unit -> int
(** Current default size: the last {!set_default_jobs}, else
    [CPSDIM_JOBS], else 1. *)

val env_jobs : unit -> int
(** The [CPSDIM_JOBS] environment variable as a job count: unset reads
    as 1; a value that is not a positive integer also reads as 1 but
    additionally emits a one-time stderr warning naming the rejected
    value (a misconfigured fleet must not {e silently} run
    sequential).  Exposed for tests. *)

val set_default_jobs : int -> unit
(** Resize the default pool (shutting the previous one down if its size
    changes).  @raise Invalid_argument when [jobs < 1]. *)
