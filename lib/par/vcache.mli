(** Content-addressed memo table, safe to share across domains.

    Keys are canonical fingerprints (the caller guarantees that equal
    fingerprints mean semantically identical inputs — e.g. a name-sorted
    serialisation of a slot group).  Lookups and inserts are protected
    by a mutex; the compute function itself runs {e outside} the lock,
    so several domains may race to fill the same key — the first insert
    wins and the verdict is identical either way because the computation
    is a pure function of the fingerprint. *)

type 'a t

val create : unit -> 'a t

val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a
(** [find_or_add c key compute] returns the cached value for [key],
    computing and inserting it on a miss. *)

val hits : 'a t -> int
(** Number of [find_or_add] calls answered from the table. *)

val misses : 'a t -> int
(** Number of [find_or_add] calls that ran [compute]. *)

val length : 'a t -> int
(** Number of distinct keys currently stored. *)
