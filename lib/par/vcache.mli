(** Content-addressed memo table, safe to share across domains.

    Keys are canonical fingerprints (the caller guarantees that equal
    fingerprints mean semantically identical inputs — e.g. a name-sorted
    serialisation of a slot group).  Lookups and inserts are protected
    by a mutex; the compute function itself runs {e outside} the lock,
    so several domains may race to fill the same key — the first insert
    wins and the verdict is identical either way because the computation
    is a pure function of the fingerprint.

    A cache may be created with a {!backing}: a second, typically
    persistent, tier consulted on memory misses and fed on inserts.
    The backing decides its own policy (serialisation, which values are
    worth persisting); the cache only promises to call [load] before
    computing and [save] after a fresh computation.

    When observability is on, every lookup publishes its provenance:
    the counters [cache.<label>.mem] / [.disk] / [.engine] record
    where each answer came from, and — with the event stream enabled —
    a ["cache.provenance"] event carries the source, a truncated key
    digest, and how long the answer took to materialise. *)

type 'a t

type 'a backing = {
  load : string -> 'a option;
      (** consulted on a memory miss, under the cache lock — must be
          cheap (an index lookup, not a recomputation) *)
  save : string -> 'a -> unit;
      (** called once per freshly computed value, under the cache lock;
          may ignore values it does not want to persist *)
}

val create : ?label:string -> ?backing:'a backing -> unit -> 'a t
(** [label] (default ["cache"]) names this cache's provenance metrics:
    [cache.<label>.mem] / [.disk] / [.engine]. *)

val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a
(** [find_or_add c key compute] returns the cached value for [key],
    computing and inserting it on a miss. *)

val find_or_add' :
  'a t -> string -> (unit -> 'a) -> 'a * [ `Mem | `Disk | `Miss ]
(** Like {!find_or_add} but also reports where the value came from:
    the in-memory table, the backing, or a fresh computation. *)

val hits : 'a t -> int
(** Number of [find_or_add] calls answered from the in-memory table. *)

val disk_hits : 'a t -> int
(** Number of [find_or_add] calls answered by the backing. *)

val misses : 'a t -> int
(** Number of [find_or_add] calls that ran [compute]. *)

val length : 'a t -> int
(** Number of distinct keys currently stored in memory. *)
