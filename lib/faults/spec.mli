(** Declarative fault models for co-simulation campaigns.

    A spec is a semicolon-separated list of clauses:

    {v
    blackout:A-B            TT slot denied for samples [A, B)
    blackout:p=P[,len=L]    each sample starts a blackout of L samples
                            with probability P (default L = 3)
    loss:APP@K              APP's ET message at sample K is lost
                            (actuator holds its last value one sample)
    loss:APP@p=P            each ET sample of APP is lost with prob. P
    link:p=P                the shared medium is lossy: every
                            application's ET sample is lost
                            independently with probability P
    link:burst=P[,len=L]    correlated fading: with probability P a
                            message's first L transmission attempts
                            are all destroyed (default L = 3) — only
                            bites on a bus replay with retransmission
                            (the TTW backend)
    drop:APP@K              APP's sensor sample K is dropped
                            (controller holds the last measurement)
    drop:APP@p=P            each sensor sample dropped with prob. P
    burst:APP@S[xN]         N disturbances of APP starting at sample S,
                            spaced exactly its minimum inter-arrival r
                            (default N = 2) — the sporadic adversary
                            at full rate
    v}

    Clauses referencing unknown applications are rejected at
    materialisation time ({!Plan.materialize}), not at parse time, so a
    spec can be parsed before the scenario is known. *)

type clause =
  | Blackout_window of { first : int; until : int }  (** [\[first, until)] *)
  | Blackout_random of { p : float; len : int }
  | Et_loss_at of { app : string; sample : int }
  | Et_loss_random of { app : string; p : float }
  | Link_loss_random of { p : float }
      (** medium-wide loss: hits every application's ET traffic *)
  | Link_burst of { p : float; len : int }
      (** medium-wide correlated fading: drives {!Bus.loss_burst} on
          the replay bus, destroying the first [len] attempts of a
          faded message *)
  | Sensor_drop_at of { app : string; sample : int }
  | Sensor_drop_random of { app : string; p : float }
  | Burst of { app : string; start : int; count : int }

type t = clause list

val parse : string -> (t, string) result
(** Parse the grammar above.  Whitespace around clauses and separators
    is ignored; probabilities must lie in [0, 1]; samples and window
    bounds must be non-negative with [first < until]. *)

val to_string : t -> string
(** Canonical round-trippable form: [parse (to_string s)] succeeds and
    yields an equal spec. *)

val is_random : t -> bool
(** Whether any clause draws randomness (a campaign over a purely
    deterministic spec runs the same faults at every seed). *)
