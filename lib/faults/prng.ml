type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

(* the splitmix64 finaliser: a bijective avalanche over 64 bits *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }
let of_int seed = create (Int64.of_int seed)

let next_int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t i =
  (* child seed from the parent's seed (not its position), so drawing
     from the parent never perturbs the children *)
  create (mix (Int64.add t.state (Int64.mul golden (Int64.of_int (i + 1)))))

let float t =
  (* top 53 bits, the double-precision mantissa width *)
  Int64.to_float (Int64.shift_right_logical (next_int64 t) 11)
  *. (1. /. 9007199254740992.)

let int t ~bound =
  if bound <= 0 then invalid_arg "Prng.int: bound";
  (* rejection-free modulo is fine at campaign scale: the bias for
     bound << 2^64 is immeasurable *)
  Int64.to_int (Int64.unsigned_rem (next_int64 t) (Int64.of_int bound))

let bernoulli t ~p = float t < p
