type t = {
  horizon : int;
  blackout : bool array;
  et_loss : bool array array;
  sensor_drop : bool array array;
  bursts : (int * int) list;
  link_burst : (int64 * float * int) list;
}

let none ~n ~horizon =
  {
    horizon;
    blackout = Array.make horizon false;
    et_loss = Array.init n (fun _ -> Array.make horizon false);
    sensor_drop = Array.init n (fun _ -> Array.make horizon false);
    bursts = [];
    link_burst = [];
  }

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun m -> Error m) fmt

let app_id apps name =
  let found = ref None in
  Array.iteri (fun i (n, _) -> if String.equal n name then found := Some i) apps;
  match !found with
  | Some i -> Ok i
  | None ->
    err "fault spec references unknown application %S (scenario has %s)" name
      (String.concat ", " (Array.to_list (Array.map fst apps)))

let in_horizon sample ~horizon ~what =
  if sample >= 0 && sample < horizon then Ok ()
  else err "%s sample %d outside the horizon [0,%d)" what sample horizon

let materialize ~spec ~seed ~apps ~horizon =
  if horizon <= 0 then err "Plan.materialize: non-positive horizon"
  else begin
    let plan = none ~n:(Array.length apps) ~horizon in
    let bursts = ref [] in
    let link_bursts = ref [] in
    let root = Prng.create seed in
    let apply index clause =
      (* one child stream per clause index: clause-local determinism *)
      let rng = Prng.split root index in
      match clause with
      | Spec.Blackout_window { first; until } ->
        let* () = in_horizon first ~horizon ~what:"blackout" in
        for k = first to Int.min (until - 1) (horizon - 1) do
          plan.blackout.(k) <- true
        done;
        Ok ()
      | Spec.Blackout_random { p; len } ->
        for k = 0 to horizon - 1 do
          if Prng.bernoulli rng ~p then
            for j = k to Int.min (k + len - 1) (horizon - 1) do
              plan.blackout.(j) <- true
            done
        done;
        Ok ()
      | Spec.Et_loss_at { app; sample } ->
        let* id = app_id apps app in
        let* () = in_horizon sample ~horizon ~what:"loss" in
        plan.et_loss.(id).(sample) <- true;
        Ok ()
      | Spec.Et_loss_random { app; p } ->
        let* id = app_id apps app in
        for k = 0 to horizon - 1 do
          if Prng.bernoulli rng ~p then plan.et_loss.(id).(k) <- true
        done;
        Ok ()
      | Spec.Link_loss_random { p } ->
        (* one sub-stream per application so the mask of app [id] does
           not shift when applications are added after it *)
        Array.iteri
          (fun id _ ->
            let rng = Prng.split rng id in
            for k = 0 to horizon - 1 do
              if Prng.bernoulli rng ~p then plan.et_loss.(id).(k) <- true
            done)
          apps;
        Ok ()
      | Spec.Link_burst { p; len } ->
        (* fading is realised per transmission attempt, which only the
           replay bus knows about — the plan just fixes this clause's
           seed so the realisation is a pure function of (spec, seed) *)
        link_bursts := (Prng.next_int64 rng, p, len) :: !link_bursts;
        Ok ()
      | Spec.Sensor_drop_at { app; sample } ->
        let* id = app_id apps app in
        let* () = in_horizon sample ~horizon ~what:"drop" in
        plan.sensor_drop.(id).(sample) <- true;
        Ok ()
      | Spec.Sensor_drop_random { app; p } ->
        let* id = app_id apps app in
        for k = 0 to horizon - 1 do
          if Prng.bernoulli rng ~p then plan.sensor_drop.(id).(k) <- true
        done;
        Ok ()
      | Spec.Burst { app; start; count } ->
        let* id = app_id apps app in
        let* () = in_horizon start ~horizon ~what:"burst" in
        let r = snd apps.(id) in
        (* the sporadic adversary at full rate: arrivals exactly r apart;
           those past the horizon are silently clipped *)
        for i = 0 to count - 1 do
          let s = start + (i * r) in
          if s < horizon then bursts := (s, id) :: !bursts
        done;
        Ok ()
    in
    let* () =
      List.fold_left
        (fun acc (index, clause) ->
          let* () = acc in
          apply index clause)
        (Ok ())
        (List.mapi (fun i c -> (i, c)) spec)
    in
    Ok
      {
        plan with
        bursts = List.sort_uniq compare !bursts;
        link_burst = List.rev !link_bursts;
      }
  end

let count_true a = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 a

let event_count t =
  count_true t.blackout
  + Array.fold_left (fun acc row -> acc + count_true row) 0 t.et_loss
  + Array.fold_left (fun acc row -> acc + count_true row) 0 t.sensor_drop
  + List.length t.bursts

let is_empty t = event_count t = 0 && t.link_burst = []
