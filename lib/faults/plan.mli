(** A fault spec materialised against a concrete scenario: per-sample
    boolean masks plus the adversarial disturbance arrivals, fully
    determined by (spec, seed, horizon, application set).

    The plan is what the fault-aware co-simulation path consumes; it
    contains no randomness of its own, so replaying a plan is exact. *)

type t = {
  horizon : int;
  blackout : bool array;  (** length [horizon]; [true] = slot denied *)
  et_loss : bool array array;  (** [et_loss.(id).(k)]: ET message lost *)
  sensor_drop : bool array array;  (** measurement held at sample [k] *)
  bursts : (int * int) list;  (** extra [(sample, id)] arrivals, sorted *)
  link_burst : (int64 * float * int) list;
      (** correlated-fading clauses as [(seed, p, len)], in spec order:
          each drives one [Bus.loss_burst] hook on the replay bus.
          Fading is an attempt-level medium fault, so it is realised
          only there — it contributes nothing to {!event_count} (which
          counts sample-level mask events), but a plan carrying one is
          not {!is_empty}. *)
}

val none : n:int -> horizon:int -> t
(** The fault-free plan: all masks false, no bursts. *)

val materialize :
  spec:Spec.t ->
  seed:int64 ->
  apps:(string * int) array ->
  horizon:int ->
  (t, string) result
(** Realise [spec] over [horizon] samples for the applications
    [(name, r)] (index = scenario id).  Randomised clauses draw from a
    {!Prng} child stream per clause, so the plan is a pure function of
    the arguments, and editing one clause does not reshuffle the
    others.  Burst arrivals are spaced exactly [r] samples apart.
    Errors on unknown application names or out-of-horizon samples. *)

val event_count : t -> int
(** Total injected fault events: blackout samples, message losses,
    sensor drops, and burst arrivals — the "fault pressure" column of
    campaign summaries. *)

val is_empty : t -> bool
