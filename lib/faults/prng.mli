(** Deterministic splitmix64 pseudo-random stream.

    Fault campaigns must be reproducible from a single integer seed:
    the same seed yields the same blackout windows, message losses and
    disturbance schedules on every run and every platform.  The
    generator is the splitmix64 finaliser (Steele et al., "Fast
    splittable pseudorandom number generators"), whose output stream
    depends only on the 64-bit seed — no global state, no
    [Random.self_init]. *)

type t

val create : int64 -> t
val of_int : int -> t

val split : t -> int -> t
(** [split t i] derives the [i]-th child stream.  Children are
    statistically independent of the parent and of each other, and do
    not advance the parent: clause [i] of a fault spec always sees the
    same stream no matter how much randomness earlier clauses drew. *)

val next_int64 : t -> int64
(** Advance and return the next 64-bit output. *)

val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> bound:int -> int
(** Uniform in [0, bound).  @raise Invalid_argument when [bound <= 0]. *)

val bernoulli : t -> p:float -> bool
(** [true] with probability [p] (clamped to [0, 1]). *)
