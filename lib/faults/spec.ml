type clause =
  | Blackout_window of { first : int; until : int }
  | Blackout_random of { p : float; len : int }
  | Et_loss_at of { app : string; sample : int }
  | Et_loss_random of { app : string; p : float }
  | Link_loss_random of { p : float }
  | Link_burst of { p : float; len : int }
  | Sensor_drop_at of { app : string; sample : int }
  | Sensor_drop_random of { app : string; p : float }
  | Burst of { app : string; start : int; count : int }

type t = clause list

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun m -> Error m) fmt

let int_of s ~what =
  match int_of_string_opt (String.trim s) with
  | Some v when v >= 0 -> Ok v
  | Some _ -> err "%s must be non-negative: %S" what s
  | None -> err "bad %s: %S" what s

let prob_of s =
  match float_of_string_opt (String.trim s) with
  | Some p when p >= 0. && p <= 1. -> Ok p
  | Some _ -> err "probability out of [0,1]: %S" s
  | None -> err "bad probability: %S" s

(* "APP@ARG" -> (APP, ARG) *)
let app_arg body ~clause =
  match String.index_opt body '@' with
  | None -> err "%s needs APP@...: %S" clause body
  | Some i ->
    let app = String.trim (String.sub body 0 i) in
    let arg = String.trim (String.sub body (i + 1) (String.length body - i - 1)) in
    if app = "" then err "%s: empty application name" clause else Ok (app, arg)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal prefix (String.sub s 0 (String.length prefix))

let after ~prefix s =
  String.sub s (String.length prefix) (String.length s - String.length prefix)

let parse_blackout body =
  if starts_with ~prefix:"p=" body then begin
    match String.split_on_char ',' (after ~prefix:"p=" body) with
    | [ p ] ->
      let* p = prob_of p in
      Ok (Blackout_random { p; len = 3 })
    | [ p; len ] when starts_with ~prefix:"len=" (String.trim len) ->
      let* p = prob_of p in
      let* len = int_of (after ~prefix:"len=" (String.trim len)) ~what:"blackout length" in
      if len = 0 then err "blackout length must be positive"
      else Ok (Blackout_random { p; len })
    | _ -> err "blackout wants p=P[,len=L]: %S" body
  end
  else
    match String.index_opt body '-' with
    | None -> err "blackout wants A-B or p=P[,len=L]: %S" body
    | Some i ->
      let* first = int_of (String.sub body 0 i) ~what:"blackout start" in
      let* until =
        int_of (String.sub body (i + 1) (String.length body - i - 1))
          ~what:"blackout end"
      in
      if first >= until then err "blackout window [%d,%d) is empty" first until
      else Ok (Blackout_window { first; until })

let parse_per_app body ~clause ~at ~random =
  let* app, arg = app_arg body ~clause in
  if starts_with ~prefix:"p=" arg then
    let* p = prob_of (after ~prefix:"p=" arg) in
    Ok (random app p)
  else
    let* sample = int_of arg ~what:(clause ^ " sample") in
    Ok (at app sample)

let parse_burst body =
  let* app, arg = app_arg body ~clause:"burst" in
  match String.index_opt arg 'x' with
  | None ->
    let* start = int_of arg ~what:"burst start" in
    Ok (Burst { app; start; count = 2 })
  | Some i ->
    let* start = int_of (String.sub arg 0 i) ~what:"burst start" in
    let* count =
      int_of (String.sub arg (i + 1) (String.length arg - i - 1)) ~what:"burst count"
    in
    if count = 0 then err "burst count must be positive"
    else Ok (Burst { app; start; count })

let parse_clause s =
  match String.index_opt s ':' with
  | None -> err "clause %S lacks ':' (want KIND:ARGS)" s
  | Some i ->
    let kind = String.trim (String.sub s 0 i) in
    let body = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
    (match kind with
     | "blackout" -> parse_blackout body
     | "loss" ->
       parse_per_app body ~clause:"loss"
         ~at:(fun app sample -> Et_loss_at { app; sample })
         ~random:(fun app p -> Et_loss_random { app; p })
     | "drop" ->
       parse_per_app body ~clause:"drop"
         ~at:(fun app sample -> Sensor_drop_at { app; sample })
         ~random:(fun app p -> Sensor_drop_random { app; p })
     | "link" ->
       if starts_with ~prefix:"p=" body then
         let* p = prob_of (after ~prefix:"p=" body) in
         Ok (Link_loss_random { p })
       else if starts_with ~prefix:"burst=" body then begin
         match String.split_on_char ',' (after ~prefix:"burst=" body) with
         | [ p ] ->
           let* p = prob_of p in
           Ok (Link_burst { p; len = 3 })
         | [ p; len ] when starts_with ~prefix:"len=" (String.trim len) ->
           let* p = prob_of p in
           let* len =
             int_of (after ~prefix:"len=" (String.trim len))
               ~what:"link burst length"
           in
           if len = 0 then err "link burst length must be positive"
           else Ok (Link_burst { p; len })
         | _ -> err "link burst wants burst=P[,len=L]: %S" body
       end
       else err "link wants p=P or burst=P[,len=L]: %S" body
     | "burst" -> parse_burst body
     | k -> err "unknown fault kind %S (want blackout|loss|link|drop|burst)" k)

let parse s =
  let pieces =
    List.filter
      (fun p -> String.trim p <> "")
      (String.split_on_char ';' s)
  in
  if pieces = [] then err "empty fault spec"
  else
    List.fold_left
      (fun acc piece ->
        let* acc = acc in
        let* c = parse_clause (String.trim piece) in
        Ok (c :: acc))
      (Ok []) pieces
    |> Result.map List.rev

let clause_to_string = function
  | Blackout_window { first; until } -> Printf.sprintf "blackout:%d-%d" first until
  | Blackout_random { p; len } -> Printf.sprintf "blackout:p=%g,len=%d" p len
  | Et_loss_at { app; sample } -> Printf.sprintf "loss:%s@%d" app sample
  | Et_loss_random { app; p } -> Printf.sprintf "loss:%s@p=%g" app p
  | Link_loss_random { p } -> Printf.sprintf "link:p=%g" p
  | Link_burst { p; len } -> Printf.sprintf "link:burst=%g,len=%d" p len
  | Sensor_drop_at { app; sample } -> Printf.sprintf "drop:%s@%d" app sample
  | Sensor_drop_random { app; p } -> Printf.sprintf "drop:%s@p=%g" app p
  | Burst { app; start; count } -> Printf.sprintf "burst:%s@%dx%d" app start count

let to_string t = String.concat ";" (List.map clause_to_string t)

let is_random =
  List.exists (function
    | Blackout_random _ | Et_loss_random _ | Link_loss_random _ | Link_burst _
    | Sensor_drop_random _ -> true
    | Blackout_window _ | Et_loss_at _ | Sensor_drop_at _ | Burst _ -> false)
