(** The transport registry: every built-in {!Bus.BACKEND} keyed by
    name, so the CLI, tests and benches select backends at runtime
    ("flexray", "ttw") without naming transport-specific types. *)

module Flexray_backend = Flexray_backend

val all : Bus.backend list
val names : unit -> string list
val find : string -> Bus.backend option

val get : string -> Bus.backend
(** @raise Invalid_argument on an unknown name, listing the known
    ones. *)

val default_of : string -> Bus.configured
(** [get] packed with the backend's default configuration. *)
