(** FlexRay as a {!Bus.BACKEND}: TT channels are static slots, ET
    flows are dynamic frame ids with sizes in minislots. *)

val backend : Bus.backend
val configured : Flexray.Config.t -> Bus.configured

val default : Bus.configured
(** The 2 ms phase-aligned cycle the bus-delay check has always used
    (10 × 100 µs static + 250 × 4 µs dynamic): sampling instants at
    h = 20 ms land exactly on cycle boundaries, as the paper's
    negligible-TT-delay assumption requires.  Other cycles (e.g.
    {!Flexray.Config.default_automotive}) go through {!configured}. *)
