(* FlexRay as a Bus.BACKEND: a thin adapter over the cycle-accurate
   simulator in lib/flexray.  Generic TT channels are static slots,
   generic ET flows are dynamic frame ids (sizes in minislots), and the
   mapping is a bijection on message contents, so the loss hook and the
   reported deliveries translate without any bookkeeping. *)

let to_frame = function
  | Bus.Tt { channel } -> Flexray.Frame.static ~slot:channel
  | Bus.Et { flow; size } ->
    Flexray.Frame.dynamic ~frame_id:flow ~length_minislots:size

let of_message (m : Flexray.Bus.message) : Bus.message =
  {
    Bus.cls =
      (match m.Flexray.Bus.frame with
       | Flexray.Frame.Static { slot } -> Bus.Tt { channel = slot }
       | Flexray.Frame.Dynamic { frame_id; length_minislots } ->
         Bus.Et { flow = frame_id; size = length_minislots });
    release_us = m.Flexray.Bus.release_us;
  }

module B = struct
  let name = "flexray"

  type config = Flexray.Config.t

  (* the phase-aligned configuration the bus-delay check has always
     used: a 2 ms cycle (10 x 100 us static + 250 x 4 us dynamic) that
     divides the case study's 20 ms sampling period, so TT slot offsets
     repeat identically every sample *)
  let default_config =
    Flexray.Config.make ~static_slot_count:10 ~static_slot_us:100
      ~minislot_count:250 ~minislot_us:4
  let config_info cfg = Format.asprintf "%a" Flexray.Config.pp cfg
  let cycle_us = Flexray.Config.cycle_us
  let tt_channels (cfg : config) = cfg.Flexray.Config.static_slot_count
  let et_capacity (cfg : config) = cfg.Flexray.Config.minislot_count

  (* the 8-minislot control frame the bus-delay check has always
     budgeted per application *)
  let control_frame_size (_ : config) = 8

  let simulate ?(loss = Bus.loss_none) cfg ~until_us messages =
    let fr_messages =
      List.map
        (fun (m : Bus.message) ->
          { Flexray.Bus.frame = to_frame m.Bus.cls; release_us = m.Bus.release_us })
        messages
    in
    let drop fm ~attempt = loss (of_message fm) ~attempt in
    let o = Flexray.Bus.simulate_outcome ~drop cfg ~until_us fr_messages in
    {
      Bus.deliveries =
        List.map
          (fun (d : Flexray.Bus.delivery) ->
            {
              Bus.message = of_message d.Flexray.Bus.message;
              delivered_us = d.Flexray.Bus.delivered_us;
              attempts = d.Flexray.Bus.attempts;
            })
          o.Flexray.Bus.deliveries;
      undelivered =
        List.map (fun (m, tries) -> (of_message m, tries)) o.Flexray.Bus.undelivered;
      lost_tx = o.Flexray.Bus.lost_tx;
    }

  let wcrt_us cfg ~flow ~size ~hp =
    let cycle = Flexray.Config.cycle_us cfg in
    let hp =
      List.map
        (fun (size, period_us) ->
          {
            Flexray.Wcrt.length_minislots = size;
            period_cycles = Int.max 1 (period_us / cycle);
          })
        hp
    in
    Flexray.Wcrt.wcrt_us cfg ~own_id:flow ~own_length:size hp
end

let backend : Bus.backend = (module B)
let configured cfg : Bus.configured = Bus.Configured ((module B), cfg)
let default : Bus.configured = Bus.default backend
