module Flexray_backend = Flexray_backend

let all : Bus.backend list = [ Flexray_backend.backend; Ttw.Backend.backend ]
let names () = List.map Bus.name all

let find name =
  List.find_opt (fun b -> String.equal (Bus.name b) name) all

let get name =
  match find name with
  | Some b -> b
  | None ->
    invalid_arg
      (Printf.sprintf "unknown bus backend %S (available: %s)" name
         (String.concat ", " (names ())))

let default_of name = Bus.default (get name)
