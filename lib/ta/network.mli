(** Networks of timed automata with binary channel synchronisation and
    a shared discrete store (the UPPAAL composition model used by the
    paper). *)

type t = {
  automata : Automaton.t array;
  clock_count : int;  (** real clocks, indexed 1..clock_count *)
  clock_names : string array;  (** length clock_count + 1; index 0 = ref *)
  channel_names : string array;
  initial_store : Automaton.store;
  clock_maxima : int array;
      (** extrapolation constants, length clock_count + 1 *)
  edge_index : Automaton.edge list array array;
      (** [edge_index.(ai).(loc)]: outgoing edges of automaton [ai] at
          location [loc], in declaration order — precomputed by {!make}
          so explorers need not re-filter [Automaton.edges] on every
          expansion *)
}

val make :
  automata:Automaton.t array ->
  clock_names:string array ->
  channel_names:string array ->
  initial_store:Automaton.store ->
  clock_maxima:int array ->
  t
(** [clock_names] excludes the reference clock (it is added
    internally); [clock_maxima] must cover every real clock (same
    length as [clock_names]).
    @raise Invalid_argument on inconsistent lengths. *)

type state = {
  locs : int array;  (** current location per automaton *)
  store : Automaton.store;
  zone : Dbm.t;
}

val initial_state : t -> state
(** All automata in their initial locations, clocks at zero, delayed
    and extrapolated. *)

val is_committed : t -> int array -> bool
(** Any automaton currently in a committed location? *)

val delay_forbidden : t -> int array -> bool
(** Committed or urgent location present. *)

val invariant_zone : t -> int array -> Automaton.store -> Dbm.t -> Dbm.t
(** Intersect a zone with all current location invariants. *)
