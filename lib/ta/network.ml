type t = {
  automata : Automaton.t array;
  clock_count : int;
  clock_names : string array;
  channel_names : string array;
  initial_store : Automaton.store;
  clock_maxima : int array;
  edge_index : Automaton.edge list array array;
}

type state = { locs : int array; store : Automaton.store; zone : Dbm.t }

let make ~automata ~clock_names ~channel_names ~initial_store ~clock_maxima =
  let clock_count = Array.length clock_names in
  if Array.length clock_maxima <> clock_count then
    invalid_arg "Network.make: clock_maxima must cover every clock";
  if Array.length automata = 0 then invalid_arg "Network.make: no automata";
  (* per-(automaton, location) outgoing edges, in declaration order —
     the same order the explorers used to recover by filtering
     [Automaton.edges] on every single expansion *)
  let edge_index =
    Array.map
      (fun (a : Automaton.t) ->
        Array.init (Array.length a.Automaton.locations) (fun l ->
            List.filter (fun e -> e.Automaton.src = l) a.Automaton.edges))
      automata
  in
  {
    automata;
    clock_count;
    clock_names = Array.append [| "0" |] clock_names;
    channel_names;
    initial_store;
    clock_maxima = Array.append [| 0 |] clock_maxima;
    edge_index;
  }

let is_committed t locs =
  let any = ref false in
  Array.iteri
    (fun i loc ->
      match t.automata.(i).Automaton.locations.(loc).Automaton.kind with
      | Automaton.Committed -> any := true
      | Automaton.Urgent | Automaton.Normal -> ())
    locs;
  !any

let delay_forbidden t locs =
  let any = ref false in
  Array.iteri
    (fun i loc ->
      match t.automata.(i).Automaton.locations.(loc).Automaton.kind with
      | Automaton.Committed | Automaton.Urgent -> any := true
      | Automaton.Normal -> ())
    locs;
  !any

let invariant_zone t locs store zone =
  let z = ref zone in
  Array.iteri
    (fun i loc ->
      z :=
        Automaton.apply_guards !z store
          t.automata.(i).Automaton.locations.(loc).Automaton.invariant)
    locs;
  !z

let initial_state t =
  let locs = Array.map (fun a -> a.Automaton.initial) t.automata in
  let zone = Dbm.zero t.clock_count in
  let zone = invariant_zone t locs t.initial_store zone in
  let zone =
    if delay_forbidden t locs then zone
    else invariant_zone t locs t.initial_store (Dbm.up zone)
  in
  { locs; store = t.initial_store; zone = Dbm.extrapolate zone t.clock_maxima }
