(** Difference bound matrices: the canonical symbolic representation of
    clock zones in timed-automata model checking.

    A DBM over [n] clocks is an [(n+1) x (n+1)] matrix of bounds; entry
    [(i, j)] constrains [x_i - x_j] where clock index [0] is the
    constant-zero reference clock.  Each bound is either infinity or a
    pair of an integer and a strictness flag.  All operations keep the
    matrix in canonical (all-pairs-shortest-path) form unless noted. *)

type t
(** A zone; immutable. *)

type bound
(** An encoded bound: [<= m], [< m], or infinity. *)

val inf : bound
val le : int -> bound
val lt : int -> bound
val bound_add : bound -> bound -> bound
val bound_compare : bound -> bound -> int
(** Total order: tighter bounds are smaller; [inf] is greatest. *)

val dim : t -> int
(** Number of real clocks (excluding the reference). *)

val zero : int -> t
(** [zero n]: the point zone where all [n] clocks equal 0. *)

val universe : int -> t
(** All clock valuations (non-negative clocks). *)

val get : t -> int -> int -> bound
(** Raw bound on [x_i - x_j]; indices in [0..n]. *)

val is_empty : t -> bool

val up : t -> t
(** Delay: let time elapse (future closure). *)

val reset : t -> int -> int -> t
(** [reset z x v]: set clock [x] (>= 1) to the non-negative integer
    value [v]. *)

val constrain : t -> int -> int -> bound -> t
(** [constrain z i j b]: intersect with [x_i - x_j (<|<=) m].  The
    result is canonical (possibly empty). *)

val intersect : t -> t -> t

val includes : t -> t -> bool
(** [includes a b]: does zone [a] contain zone [b]?  Empty zones are
    contained in everything. *)

val extrapolate : t -> int array -> t
(** Classic maximal-constant extrapolation: [max.(i)] is the largest
    constant clock [i] is ever compared against ([max.(0)] ignored).
    Guarantees a finite zone graph. *)

val equal : t -> t -> bool

val hash : t -> int
(** Deep: mixes every bound of the matrix, so structurally similar
    zones do not collide the way the shallow polymorphic hash makes
    them.  [equal]/[hash] satisfy [Hashtbl.HashedType] — {!Reach} uses
    them to hash-cons zones. *)

val contains_point : t -> int array -> bool
(** Does the zone contain the integer valuation [v] ([v.(0)] must be
    0)?  For testing. *)

val pp : Format.formatter -> t -> unit
