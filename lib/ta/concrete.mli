(** Concrete-state execution of a network: the analogue of UPPAAL's
    simulator, which the paper uses to extract the switching sequences
    behind its Figs. 8 and 9.

    The executor keeps an integer valuation of every clock and advances
    in two alternating phases: fire all enabled discrete transitions
    (as chosen by a policy) until none remains or the policy passes,
    then let one time unit elapse (if every location invariant allows
    it).  Integer-step time is exact for models whose guards compare
    clocks against integers and whose interesting events happen at
    integer times — which is the case for the tick-driven scheduler
    model. *)

type state = {
  locs : int array;
  store : Automaton.store;
  clocks : int array;  (** index 0 is the reference clock, always 0 *)
  time : int;  (** global time elapsed *)
}

type action = {
  label : string;
  edges : (int * Automaton.edge) list;  (** (automaton, edge); sender first *)
}

type policy = state -> action list -> action option
(** Given the current state and the enabled discrete actions, choose
    one to fire, or [None] to let time pass (only honoured when delay
    is allowed; in a committed/urgent configuration with enabled
    actions, refusing to choose is an execution error). *)

exception Stuck of string
(** Raised when the configuration can neither fire (no enabled action,
    or the policy refused in a committed/urgent configuration) nor
    delay (an invariant forbids it). *)

val initial : Network.t -> state

val enabled : Network.t -> state -> action list

val can_delay : Network.t -> state -> bool
(** No committed/urgent location active and all invariants hold after
    +1. *)

val step : Network.t -> policy -> state -> state * action option
(** One micro-step: either a fired action ([Some a]) or a unit delay
    ([None]).  @raise Stuck (see above). *)

val run :
  Network.t ->
  policy ->
  until:int ->
  (state -> action option -> unit) ->
  state
(** Execute until global time reaches [until], invoking the observer
    after every micro-step.  @raise Stuck. *)

val first_enabled : policy
(** The deterministic default: always fire the first enabled action. *)

val prefer : (string -> bool) -> policy
(** Fire the first action whose label satisfies the predicate, else the
    first enabled one, else delay. *)

val enumerate :
  ?max_states:int -> norm:(state -> state) -> Network.t -> state list
(** All states reachable under the caller-supplied finite abstraction
    [norm] (applied to the initial state and every successor before
    deduplication — e.g. saturating clock counters for closed-guard
    fragments), in BFS discovery order.  Successors of a state are the
    unit delay (when admissible) followed by every enabled action, each
    normalised.  An instantiation of the generic {!Search} engine; the
    differential test suite uses it as the concrete oracle against
    zone-graph reachability.
    @raise Failure when [max_states] (default 1_000_000) is hit. *)
