type target = locs:int array -> store:Automaton.store -> bool

type stats = {
  states : int;
  transitions : int;
  elapsed : float;
  waiting_peak : int;
  inclusion_pruned : int;
  dedup_hits : int;
  extrapolations : int;
}

type trace_step = { automaton : string; state : Network.state }

type budget_reason = Max_states of int | Deadline of float

type outcome =
  | Hit of Network.state
  | Unreachable
  | Exhausted of budget_reason

type result = { outcome : outcome; stats : stats; trace : trace_step list }

let pp_budget_reason ppf = function
  | Max_states n -> Format.fprintf ppf "state budget (%d states) exhausted" n
  | Deadline d -> Format.fprintf ppf "deadline (%.3fs) exceeded" d

(* [extra] is a per-run extrapolation counter threaded in by the caller;
   a module-global here would be corrupted by concurrent runs on
   separate domains *)
let fire ~extra net (state : Network.state) label edges =
  (* [edges] pairs each fired edge with its automaton index; for a
     binary synchronisation the sender comes first *)
  let zone =
    List.fold_left
      (fun z (_, e) -> Automaton.apply_guards z state.Network.store e.Automaton.guards)
      state.Network.zone edges
  in
  if Dbm.is_empty zone then None
  else if
    not
      (List.for_all
         (fun (_, e) -> e.Automaton.data_guard state.Network.store)
         edges)
  then None
  else begin
    let locs = Array.copy state.Network.locs in
    List.iter (fun (ai, e) -> locs.(ai) <- e.Automaton.dst) edges;
    let store =
      List.fold_left (fun s (_, e) -> e.Automaton.update s) state.Network.store
        edges
    in
    let zone =
      (* resets are computed from the pre-transition store *)
      List.fold_left
        (fun z (_, e) ->
          List.fold_left
            (fun z (c, v) -> Dbm.reset z c v)
            z
            (e.Automaton.resets state.Network.store))
        zone edges
    in
    let zone = Network.invariant_zone net locs store zone in
    if Dbm.is_empty zone then None
    else begin
      let zone =
        if Network.delay_forbidden net locs then zone
        else Network.invariant_zone net locs store (Dbm.up zone)
      in
      incr extra;
      let zone = Dbm.extrapolate zone net.Network.clock_maxima in
      if Dbm.is_empty zone then None
      else Some (label, { Network.locs; store; zone })
    end
  end

let successors_counted ~extra net (state : Network.state) =
  let committed_present = Network.is_committed net state.Network.locs in
  let automata = net.Network.automata in
  let n = Array.length automata in
  let loc_committed ai =
    match
      automata.(ai).Automaton.locations.(state.Network.locs.(ai)).Automaton.kind
    with
    | Automaton.Committed -> true
    | Automaton.Urgent | Automaton.Normal -> false
  in
  let current_edges ai =
    List.filter
      (fun e -> e.Automaton.src = state.Network.locs.(ai))
      automata.(ai).Automaton.edges
  in
  let results = ref [] in
  (* internal transitions *)
  for ai = 0 to n - 1 do
    if (not committed_present) || loc_committed ai then
      List.iter
        (fun e ->
          match e.Automaton.sync with
          | Some _ -> ()
          | None ->
            let label =
              Printf.sprintf "%s: %s -> %s" automata.(ai).Automaton.name
                automata.(ai).Automaton.locations.(e.Automaton.src).Automaton.loc_name
                automata.(ai).Automaton.locations.(e.Automaton.dst).Automaton.loc_name
            in
            (match fire ~extra net state label [ (ai, e) ] with
             | Some succ -> results := succ :: !results
             | None -> ()))
        (current_edges ai)
  done;
  (* binary synchronisations *)
  for sender = 0 to n - 1 do
    List.iter
      (fun se ->
        match se.Automaton.sync with
        | Some (Automaton.Send c) ->
          for receiver = 0 to n - 1 do
            if receiver <> sender then
              List.iter
                (fun re ->
                  match re.Automaton.sync with
                  | Some (Automaton.Recv c') when c' = c ->
                    if
                      (not committed_present)
                      || loc_committed sender || loc_committed receiver
                    then begin
                      let chan =
                        if c < Array.length net.Network.channel_names then
                          net.Network.channel_names.(c)
                        else string_of_int c
                      in
                      let label =
                        Printf.sprintf "%s!%s %s?%s"
                          automata.(sender).Automaton.name chan
                          automata.(receiver).Automaton.name chan
                      in
                      match
                        fire ~extra net state label
                          [ (sender, se); (receiver, re) ]
                      with
                      | Some succ -> results := succ :: !results
                      | None -> ()
                    end
                  | Some (Automaton.Recv _ | Automaton.Send _) | None -> ())
                (current_edges receiver)
          done
        | Some (Automaton.Recv _) | None -> ())
      (current_edges sender)
  done;
  List.rev !results

let successors net state = successors_counted ~extra:(ref 0) net state

(* The default polymorphic hash only inspects ~10 nodes, which makes
   symbolic states (similar location vectors, similar store prefixes)
   collide massively; hash deeply instead. *)
module Deep_tbl = Hashtbl.Make (struct
  type t = Obj.t

  let equal = ( = )
  let hash k = Hashtbl.hash_param 1000 1000 k
end)

let deep_mem tbl k = Deep_tbl.mem tbl (Obj.repr k)
let deep_add tbl k v = Deep_tbl.replace tbl (Obj.repr k) v
let deep_find_opt tbl k = Deep_tbl.find_opt tbl (Obj.repr k)

let run_impl ~max_states ~deadline ~inclusion net target =
  let t0 = Unix.gettimeofday () in
  let extra = ref 0 in
  let dedup_hits = ref 0 and inclusion_pruned = ref 0 in
  let initial = Network.initial_state net in
  (* exact-match fast path: most revisits are zone-identical, so check
     a flat hash of (locs, store, zone) before scanning the antichain *)
  let exact : unit Deep_tbl.t = Deep_tbl.create 4096 in
  (* passed list: (locs, store) -> zones antichain *)
  let passed : Dbm.t list Deep_tbl.t = Deep_tbl.create 4096 in
  let parents : (Network.state * string) Deep_tbl.t = Deep_tbl.create 4096 in
  let covered (locs, store) zone =
    if deep_mem exact (locs, store, zone) then begin
      incr dedup_hits;
      true
    end
    else
      inclusion
      &&
      match deep_find_opt passed (locs, store) with
      | None -> false
      | Some zones ->
        List.exists (fun z -> Dbm.includes z zone) zones
        && begin
             incr inclusion_pruned;
             true
           end
  in
  let remember (locs, store) zone =
    deep_add exact (locs, store, zone) ();
    if inclusion then begin
      let key = (locs, store) in
      let zones = Option.value ~default:[] (deep_find_opt passed key) in
      deep_add passed key
        (zone :: List.filter (fun z -> not (Dbm.includes zone z)) zones)
    end
  in
  let states = ref 0 and transitions = ref 0 and waiting_peak = ref 0 in
  let queue = Queue.create () in
  let found = ref None in
  let exhausted = ref None in
  (* wall-clock checks are amortised: a syscall every pop would dominate
     the cheap point-like-zone expansions of the tick-driven models *)
  let pops = ref 0 in
  let over_deadline () =
    match deadline with
    | None -> false
    | Some d ->
      !pops land 255 = 0 && Unix.gettimeofday () -. t0 > d
      && begin
           exhausted := Some (Deadline d);
           true
         end
  in
  let trace_of st =
    let rec walk st acc =
      match deep_find_opt parents st with
      | None -> acc
      | Some (parent, label) -> walk parent ({ automaton = label; state = st } :: acc)
    in
    walk st []
  in
  let key_of (st : Network.state) = (st.Network.locs, st.Network.store) in
  remember (key_of initial) initial.Network.zone;
  incr states;
  Queue.add initial queue;
  waiting_peak := 1;
  if target ~locs:initial.Network.locs ~store:initial.Network.store then
    found := Some initial;
  (try
     while (not (Queue.is_empty queue)) && !found = None do
       incr pops;
       if over_deadline () then raise Exit;
       let st = Queue.pop queue in
       List.iter
         (fun (label, succ) ->
           incr transitions;
           let key = key_of succ in
           if not (covered key succ.Network.zone) then begin
             remember key succ.Network.zone;
             incr states;
             deep_add parents succ (st, label);
             if target ~locs:succ.Network.locs ~store:succ.Network.store then begin
               found := Some succ;
               raise Exit
             end;
             if !states >= max_states then begin
               exhausted := Some (Max_states max_states);
               raise Exit
             end;
             Queue.add succ queue;
             if Queue.length queue > !waiting_peak then
               waiting_peak := Queue.length queue
           end)
         (successors_counted ~extra net st)
     done
   with Exit -> ());
  let elapsed = Unix.gettimeofday () -. t0 in
  if Obs.Trace_ctx.enabled () then begin
    Obs.Metric.count "ta.reach.states" !states;
    Obs.Metric.count "ta.reach.transitions" !transitions;
    Obs.Metric.count "ta.reach.dedup_hits" !dedup_hits;
    Obs.Metric.count "ta.reach.inclusion_pruned" !inclusion_pruned;
    Obs.Metric.count "ta.reach.extrapolations" !extra;
    Obs.Metric.max_gauge "ta.reach.waiting_peak" (float_of_int !waiting_peak);
    if elapsed > 0. then
      Obs.Metric.max_gauge "ta.reach.states_per_sec"
        (float_of_int !states /. elapsed)
  end;
  let outcome =
    match (!found, !exhausted) with
    | Some st, _ -> Hit st
    | None, Some reason -> Exhausted reason
    | None, None -> Unreachable
  in
  {
    outcome;
    stats =
      {
        states = !states;
        transitions = !transitions;
        elapsed;
        waiting_peak = !waiting_peak;
        inclusion_pruned = !inclusion_pruned;
        dedup_hits = !dedup_hits;
        extrapolations = !extra;
      };
    trace = (match !found with Some st -> trace_of st | None -> []);
  }

let run ?(max_states = 2_000_000) ?deadline ?(inclusion = true) net target =
  if max_states <= 0 then invalid_arg "Reach.run: max_states";
  (match deadline with
   | Some d when d <= 0. -> invalid_arg "Reach.run: deadline"
   | _ -> ());
  Obs.Span.with_ "ta.reach" (fun () ->
      run_impl ~max_states ~deadline ~inclusion net target)

let reachable ?max_states ?deadline ?inclusion net target =
  match (run ?max_states ?deadline ?inclusion net target).outcome with
  | Hit _ -> true
  | Unreachable -> false
  | Exhausted reason ->
    failwith
      (Format.asprintf "Reach.reachable: undetermined — %a" pp_budget_reason
         reason)
