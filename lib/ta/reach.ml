type target = locs:int array -> store:Automaton.store -> bool

type stats = {
  states : int;
  transitions : int;
  elapsed : float;
  waiting_peak : int;
  inclusion_pruned : int;
  dedup_hits : int;
  extrapolations : int;
}

type trace_step = { automaton : string; state : Network.state }

type budget_reason = Search.budget_reason =
  | Max_states of int
  | Deadline of float

type outcome =
  | Hit of Network.state
  | Unreachable
  | Exhausted of budget_reason

type result = { outcome : outcome; stats : stats; trace : trace_step list }

let pp_budget_reason ppf = function
  | Max_states n -> Format.fprintf ppf "state budget (%d states) exhausted" n
  | Deadline d -> Format.fprintf ppf "deadline (%.3fs) exceeded" d

(* [extra] is a per-run extrapolation counter threaded in by the caller;
   a module-global here would be corrupted by concurrent runs on
   separate domains *)
let fire ~extra net (state : Network.state) label edges =
  (* [edges] pairs each fired edge with its automaton index; for a
     binary synchronisation the sender comes first *)
  let zone =
    List.fold_left
      (fun z (_, e) -> Automaton.apply_guards z state.Network.store e.Automaton.guards)
      state.Network.zone edges
  in
  if Dbm.is_empty zone then None
  else if
    not
      (List.for_all
         (fun (_, e) -> e.Automaton.data_guard state.Network.store)
         edges)
  then None
  else begin
    let locs = Array.copy state.Network.locs in
    List.iter (fun (ai, e) -> locs.(ai) <- e.Automaton.dst) edges;
    let store =
      List.fold_left (fun s (_, e) -> e.Automaton.update s) state.Network.store
        edges
    in
    let zone =
      (* resets are computed from the pre-transition store *)
      List.fold_left
        (fun z (_, e) ->
          List.fold_left
            (fun z (c, v) -> Dbm.reset z c v)
            z
            (e.Automaton.resets state.Network.store))
        zone edges
    in
    let zone = Network.invariant_zone net locs store zone in
    if Dbm.is_empty zone then None
    else begin
      let zone =
        if Network.delay_forbidden net locs then zone
        else Network.invariant_zone net locs store (Dbm.up zone)
      in
      incr extra;
      let zone = Dbm.extrapolate zone net.Network.clock_maxima in
      if Dbm.is_empty zone then None
      else Some (label, { Network.locs; store; zone })
    end
  end

let successors_counted ~extra net (state : Network.state) =
  let committed_present = Network.is_committed net state.Network.locs in
  let automata = net.Network.automata in
  let n = Array.length automata in
  let loc_committed ai =
    match
      automata.(ai).Automaton.locations.(state.Network.locs.(ai)).Automaton.kind
    with
    | Automaton.Committed -> true
    | Automaton.Urgent | Automaton.Normal -> false
  in
  let current_edges ai = net.Network.edge_index.(ai).(state.Network.locs.(ai)) in
  let results = ref [] in
  (* internal transitions *)
  for ai = 0 to n - 1 do
    if (not committed_present) || loc_committed ai then
      List.iter
        (fun e ->
          match e.Automaton.sync with
          | Some _ -> ()
          | None ->
            let label =
              Printf.sprintf "%s: %s -> %s" automata.(ai).Automaton.name
                automata.(ai).Automaton.locations.(e.Automaton.src).Automaton.loc_name
                automata.(ai).Automaton.locations.(e.Automaton.dst).Automaton.loc_name
            in
            (match fire ~extra net state label [ (ai, e) ] with
             | Some succ -> results := succ :: !results
             | None -> ()))
        (current_edges ai)
  done;
  (* binary synchronisations *)
  for sender = 0 to n - 1 do
    List.iter
      (fun se ->
        match se.Automaton.sync with
        | Some (Automaton.Send c) ->
          for receiver = 0 to n - 1 do
            if receiver <> sender then
              List.iter
                (fun re ->
                  match re.Automaton.sync with
                  | Some (Automaton.Recv c') when c' = c ->
                    if
                      (not committed_present)
                      || loc_committed sender || loc_committed receiver
                    then begin
                      let chan =
                        if c < Array.length net.Network.channel_names then
                          net.Network.channel_names.(c)
                        else string_of_int c
                      in
                      let label =
                        Printf.sprintf "%s!%s %s?%s"
                          automata.(sender).Automaton.name chan
                          automata.(receiver).Automaton.name chan
                      in
                      match
                        fire ~extra net state label
                          [ (sender, se); (receiver, re) ]
                      with
                      | Some succ -> results := succ :: !results
                      | None -> ()
                    end
                  | Some (Automaton.Recv _ | Automaton.Send _) | None -> ())
                (current_edges receiver)
          done
        | Some (Automaton.Recv _) | None -> ())
      (current_edges sender)
  done;
  List.rev !results

let successors net state = successors_counted ~extra:(ref 0) net state

(* ------------------------------------------------------------------ *)
(* The explorer is an instantiation of the generic {!Search} engine.

   Keys are typed and O(1): the zone is interned (hash-consed by the
   deep {!Dbm.hash}) into a dense integer id per run, and the discrete
   part (locations + store) is packed into one flat int array with a
   precomputed FNV digest, so an exact-dedup lookup never rehashes or
   deep-compares a whole symbolic state.  Zone-inclusion pruning is the
   engine's coverage antichain, grouped by the packed discrete key. *)

(* FNV-1a over an int array, seeded so the empty array still mixes *)
let fnv seed a =
  let h = ref (0x811c9dc5 lxor seed) in
  for i = 0 to Array.length a - 1 do
    h := (!h lxor a.(i)) * 0x01000193
  done;
  !h land max_int

let array_eq (a : int array) b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  for i = 0 to Array.length a - 1 do
    if a.(i) <> b.(i) then ok := false
  done;
  !ok

(* packed discrete key: locations then store, one array *)
let pack_disc locs store =
  let nl = Array.length locs and ns = Array.length store in
  let a = Array.make (nl + ns) 0 in
  Array.blit locs 0 a 0 nl;
  Array.blit store 0 a nl ns;
  a

type dkey = { dh : int; disc : int array }
type xkey = { xh : int; xdisc : int array; zone : int }

module Zone_tbl = Hashtbl.Make (Dbm)

let run_impl ~order ~max_states ~deadline ~inclusion net target =
  let extra = ref 0 in
  let initial = Network.initial_state net in
  (* hash-consed zone store: physical id per distinct canonical DBM *)
  let zones = Zone_tbl.create 4096 in
  let zone_ctr = ref 0 in
  let intern z =
    match Zone_tbl.find_opt zones z with
    | Some id -> id
    | None ->
      let id = !zone_ctr in
      incr zone_ctr;
      Zone_tbl.add zones z id;
      id
  in
  let module Space = Search.Make (struct
    type state = Network.state
    type label = string

    module Key = struct
      type t = xkey

      let equal a b = a.zone = b.zone && a.xh = b.xh && array_eq a.xdisc b.xdisc
      let hash k = k.xh
    end

    let key (st : Network.state) =
      let disc = pack_disc st.Network.locs st.Network.store in
      let zone = intern st.Network.zone in
      { xh = fnv (zone * 0x9e3779b1) disc; xdisc = disc; zone }

    let successors st = successors_counted ~extra net st
    let is_target _ (st : Network.state) =
      target ~locs:st.Network.locs ~store:st.Network.store
  end) in
  let coverage =
    if not inclusion then None
    else
      Some
        (Space.Coverage
           {
             split =
               (fun (st : Network.state) ->
                 let disc = pack_disc st.Network.locs st.Network.store in
                 ({ dh = fnv 0 disc; disc }, st.Network.zone));
             ck_equal = (fun a b -> a.dh = b.dh && array_eq a.disc b.disc);
             ck_hash = (fun k -> k.dh);
             covers = (fun passed candidate -> Dbm.includes passed candidate);
           })
  in
  let r =
    Space.run ~order ~exact:true ?coverage ~max_states ~max_states_check:`Insert
      ?deadline ~deadline_mask:255 ~target_check:`Insert ~initial_peak:1
      ~metrics_prefix:"ta.reach" initial
  in
  let s = r.Space.stats in
  if Obs.Trace_ctx.enabled () then begin
    Obs.Metric.count "ta.reach.dedup_hits" s.Search.dedup_hits;
    Obs.Metric.count "ta.reach.inclusion_pruned" s.Search.cover_hits;
    Obs.Metric.count "ta.reach.extrapolations" !extra
  end;
  let outcome =
    match r.Space.outcome with
    | Space.Found st -> Hit st
    | Space.Completed -> Unreachable
    | Space.Exhausted reason -> Exhausted reason
  in
  {
    outcome;
    stats =
      {
        states = s.Search.states;
        transitions = s.Search.transitions;
        elapsed = s.Search.elapsed;
        waiting_peak = s.Search.waiting_peak;
        inclusion_pruned = s.Search.cover_hits;
        dedup_hits = s.Search.dedup_hits;
        extrapolations = !extra;
      };
    trace =
      List.map (fun (label, state) -> { automaton = label; state }) r.Space.trace;
  }

let run ?(order = `Bfs) ?(max_states = 2_000_000) ?deadline ?(inclusion = true)
    net target =
  if max_states <= 0 then invalid_arg "Reach.run: max_states";
  (match deadline with
   | Some d when d <= 0. -> invalid_arg "Reach.run: deadline"
   | _ -> ());
  let order = match order with `Bfs -> Search.Bfs | `Dfs -> Search.Dfs in
  Obs.Span.with_ "ta.reach" (fun () ->
      run_impl ~order ~max_states ~deadline ~inclusion net target)

let reachable ?order ?max_states ?deadline ?inclusion net target =
  match (run ?order ?max_states ?deadline ?inclusion net target).outcome with
  | Hit _ -> true
  | Unreachable -> false
  | Exhausted reason ->
    failwith
      (Format.asprintf "Reach.reachable: undetermined — %a" pp_budget_reason
         reason)
