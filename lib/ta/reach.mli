(** Zone-graph reachability for networks of timed automata: the engine
    behind the paper's UPPAAL queries.

    The explorer maintains a passed/waiting structure keyed by
    (locations, store), with zone inclusion checking (a new symbolic
    state covered by an already-passed zone is pruned) and classic
    maximal-constant extrapolation, which together guarantee
    termination and exactness for location/store reachability. *)

type target = locs:int array -> store:Automaton.store -> bool

type stats = {
  states : int;  (** symbolic states expanded *)
  transitions : int;  (** discrete successors computed *)
  elapsed : float;
  waiting_peak : int;  (** deepest the waiting queue ever got *)
  inclusion_pruned : int;  (** successors covered by a larger passed zone *)
  dedup_hits : int;  (** successors identical to a passed state *)
  extrapolations : int;
      (** zones widened by maximal-constant extrapolation.  Like every
          field here this is accumulated in run-local state, so
          concurrent [run]s on separate domains cannot corrupt each
          other's counts. *)
}

type trace_step = {
  automaton : string;  (** "A -> B" description of the fired edge(s) *)
  state : Network.state;
}

type budget_reason = Search.budget_reason =
  | Max_states of int  (** the state cap that was hit *)
  | Deadline of float  (** the wall-clock budget, seconds *)

type outcome =
  | Hit of Network.state  (** the target is reachable; witness attached *)
  | Unreachable  (** full exploration completed without hitting it *)
  | Exhausted of budget_reason
      (** search gave up first: the answer is genuinely undetermined *)

type result = { outcome : outcome; stats : stats; trace : trace_step list }

val pp_budget_reason : Format.formatter -> budget_reason -> unit

val successors : Network.t -> Network.state -> (string * Network.state) list
(** All discrete successors (with delay closure applied), labelled for
    trace reporting.  Respects committed-location priority and binary
    synchronisation. *)

val run :
  ?order:[ `Bfs | `Dfs ] ->
  ?max_states:int ->
  ?deadline:float ->
  ?inclusion:bool ->
  Network.t ->
  target ->
  result
(** Search (an instantiation of the generic {!Search} engine over
    interned, hash-consed zones) until the target is hit, the space is
    exhausted, or a budget runs out — the three cases are distinguished
    explicitly by {!outcome}, never conflated.  [order] (default
    [`Bfs]) picks the frontier: depth-first visits the same reachable
    set and returns the same Hit/Unreachable answer, but state counts
    and witness traces may differ.  [deadline] is a wall-clock budget
    in seconds, checked every 256 expansions so the overrun is bounded
    by one check interval.
    [inclusion] (default [true]) enables zone-inclusion pruning on top
    of exact-match deduplication; with it off the search visits more
    symbolic states but each visit costs O(1) lookups — a better
    trade-off for tick-driven models whose zones are point-like.
    @raise Invalid_argument when [max_states <= 0] or [deadline <= 0]. *)

val reachable :
  ?order:[ `Bfs | `Dfs ] ->
  ?max_states:int ->
  ?deadline:float ->
  ?inclusion:bool ->
  Network.t ->
  target ->
  bool
(** Boolean convenience over {!run}.
    @raise Failure on {!Exhausted} — a budget overrun must not be
    silently read as unreachability. *)
