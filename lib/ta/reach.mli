(** Zone-graph reachability for networks of timed automata: the engine
    behind the paper's UPPAAL queries.

    The explorer maintains a passed/waiting structure keyed by
    (locations, store), with zone inclusion checking (a new symbolic
    state covered by an already-passed zone is pruned) and classic
    maximal-constant extrapolation, which together guarantee
    termination and exactness for location/store reachability. *)

type target = locs:int array -> store:Automaton.store -> bool

type stats = {
  states : int;  (** symbolic states expanded *)
  transitions : int;  (** discrete successors computed *)
  elapsed : float;
  waiting_peak : int;  (** deepest the waiting queue ever got *)
  inclusion_pruned : int;  (** successors covered by a larger passed zone *)
  dedup_hits : int;  (** successors identical to a passed state *)
}

type trace_step = {
  automaton : string;  (** "A -> B" description of the fired edge(s) *)
  state : Network.state;
}

type result = { reachable : Network.state option; stats : stats; trace : trace_step list }

val successors : Network.t -> Network.state -> (string * Network.state) list
(** All discrete successors (with delay closure applied), labelled for
    trace reporting.  Respects committed-location priority and binary
    synchronisation. *)

val run : ?max_states:int -> ?inclusion:bool -> Network.t -> target -> result
(** Breadth-first search until the target is hit or the space is
    exhausted.  [reachable = None] means the target is unreachable (or,
    if [max_states] was exceeded, undetermined — see [stats.states]).
    [inclusion] (default [true]) enables zone-inclusion pruning on top
    of exact-match deduplication; with it off the search visits more
    symbolic states but each visit costs O(1) lookups — a better
    trade-off for tick-driven models whose zones are point-like.
    @raise Invalid_argument when [max_states <= 0]. *)

val reachable : ?max_states:int -> ?inclusion:bool -> Network.t -> target -> bool
