type state = {
  locs : int array;
  store : Automaton.store;
  clocks : int array;
  time : int;
}

type action = { label : string; edges : (int * Automaton.edge) list }

type policy = state -> action list -> action option

exception Stuck of string

let initial net =
  {
    locs = Array.map (fun a -> a.Automaton.initial) net.Network.automata;
    store = net.Network.initial_store;
    clocks = Array.make (net.Network.clock_count + 1) 0;
    time = 0;
  }

let guard_holds state (g : Automaton.clock_guard) =
  let v = state.clocks.(g.Automaton.clock) in
  let bound = g.Automaton.value state.store in
  match g.Automaton.cmp with
  | Automaton.Lt -> v < bound
  | Automaton.Le -> v <= bound
  | Automaton.Gt -> v > bound
  | Automaton.Ge -> v >= bound
  | Automaton.Eq -> v = bound

let edge_ready state (e : Automaton.edge) =
  List.for_all (guard_holds state) e.Automaton.guards
  && e.Automaton.data_guard state.store

let loc_kind net state ai =
  net.Network.automata.(ai).Automaton.locations.(state.locs.(ai)).Automaton.kind

let committed_present net state =
  let any = ref false in
  Array.iteri
    (fun ai _ ->
      match loc_kind net state ai with
      | Automaton.Committed -> any := true
      | Automaton.Urgent | Automaton.Normal -> ())
    state.locs;
  !any

let urgent_or_committed net state =
  let any = ref false in
  Array.iteri
    (fun ai _ ->
      match loc_kind net state ai with
      | Automaton.Committed | Automaton.Urgent -> any := true
      | Automaton.Normal -> ())
    state.locs;
  !any

let enabled net state =
  let automata = net.Network.automata in
  let n = Array.length automata in
  let committed = committed_present net state in
  let loc_committed ai =
    match loc_kind net state ai with
    | Automaton.Committed -> true
    | Automaton.Urgent | Automaton.Normal -> false
  in
  let current_edges ai = net.Network.edge_index.(ai).(state.locs.(ai)) in
  let actions = ref [] in
  for ai = 0 to n - 1 do
    List.iter
      (fun e ->
        match e.Automaton.sync with
        | Some _ -> ()
        | None ->
          if ((not committed) || loc_committed ai) && edge_ready state e then
            actions :=
              {
                label =
                  Printf.sprintf "%s: %s -> %s" automata.(ai).Automaton.name
                    automata.(ai).Automaton.locations.(e.Automaton.src)
                      .Automaton.loc_name
                    automata.(ai).Automaton.locations.(e.Automaton.dst)
                      .Automaton.loc_name;
                edges = [ (ai, e) ];
              }
              :: !actions)
      (current_edges ai)
  done;
  for sender = 0 to n - 1 do
    List.iter
      (fun se ->
        match se.Automaton.sync with
        | Some (Automaton.Send c) when edge_ready state se ->
          for receiver = 0 to n - 1 do
            if receiver <> sender then
              List.iter
                (fun re ->
                  match re.Automaton.sync with
                  | Some (Automaton.Recv c') when c' = c ->
                    if
                      ((not committed)
                      || loc_committed sender || loc_committed receiver)
                      && edge_ready state re
                    then begin
                      let chan =
                        if c < Array.length net.Network.channel_names then
                          net.Network.channel_names.(c)
                        else string_of_int c
                      in
                      actions :=
                        {
                          label =
                            Printf.sprintf "%s!%s %s?%s"
                              automata.(sender).Automaton.name chan
                              automata.(receiver).Automaton.name chan;
                          edges = [ (sender, se); (receiver, re) ];
                        }
                        :: !actions
                    end
                  | Some (Automaton.Recv _ | Automaton.Send _) | None -> ())
                (current_edges receiver)
          done
        | Some (Automaton.Send _ | Automaton.Recv _) | None -> ())
      (current_edges sender)
  done;
  List.rev !actions

let invariants_hold net state =
  let ok = ref true in
  Array.iteri
    (fun ai loc ->
      List.iter
        (fun g -> if not (guard_holds state g) then ok := false)
        net.Network.automata.(ai).Automaton.locations.(loc).Automaton.invariant)
    state.locs;
  !ok

let can_delay net state =
  (not (urgent_or_committed net state))
  &&
  let advanced =
    {
      state with
      clocks = Array.mapi (fun i v -> if i = 0 then 0 else v + 1) state.clocks;
    }
  in
  invariants_hold net advanced

let fire net state action =
  let locs = Array.copy state.locs in
  List.iter (fun (ai, e) -> locs.(ai) <- e.Automaton.dst) action.edges;
  let store =
    List.fold_left (fun s (_, e) -> e.Automaton.update s) state.store
      action.edges
  in
  let clocks = Array.copy state.clocks in
  List.iter
    (fun (_, e) ->
      List.iter
        (fun (c, v) -> clocks.(c) <- v)
        (e.Automaton.resets state.store))
    action.edges;
  let state' = { state with locs; store; clocks } in
  if not (invariants_hold net state') then
    raise
      (Stuck
         (Printf.sprintf "action %s violates a destination invariant"
            action.label));
  state'

let step net policy state =
  let actions = enabled net state in
  match policy state actions with
  | Some a -> (fire net state a, Some a)
  | None ->
    if urgent_or_committed net state then
      raise
        (Stuck
           (if actions = [] then "deadlock in a committed/urgent configuration"
            else "policy refused to fire in a committed/urgent configuration"))
    else if can_delay net state then
      ( {
          state with
          clocks =
            Array.mapi (fun i v -> if i = 0 then 0 else v + 1) state.clocks;
          time = state.time + 1;
        },
        None )
    else
      raise
        (Stuck
           (if actions = [] then "time-locked: invariant forbids delay, nothing enabled"
            else "invariant forbids delay and the policy refused every action"))

let run net policy ~until observer =
  let state = ref (initial net) in
  let guard = ref 0 in
  while !state.time < until do
    incr guard;
    if !guard > 1_000_000 then raise (Stuck "micro-step budget exceeded");
    let state', fired = step net policy !state in
    observer state' fired;
    state := state'
  done;
  !state

let first_enabled _state = function [] -> None | a :: _ -> Some a

let prefer pred _state actions =
  match List.find_opt (fun a -> pred a.label) actions with
  | Some _ as a -> a
  | None -> (match actions with [] -> None | a :: _ -> Some a)

(* ------------------------------------------------------------------ *)
(* Exhaustive enumeration, as an instantiation of the generic {!Search}
   engine: the differential oracle that pins zone-graph reachability
   against concrete integer-time execution.  The caller supplies the
   finite abstraction ([norm], e.g. saturating clock counters) that
   makes the space finite. *)

let enumerate ?(max_states = 1_000_000) ~norm net =
  let acc = ref [] in
  let module Space = Search.Make (struct
    type nonrec state = state
    type label = unit

    module Key = struct
      type nonrec t = state

      let equal (a : state) (b : state) =
        a.locs = b.locs && a.store = b.store && a.clocks = b.clocks
        && a.time = b.time

      let hash (s : state) =
        Hashtbl.hash_param 1000 1000 (s.locs, s.store, s.clocks, s.time)
    end

    let key s = s

    let successors s =
      let delay =
        if can_delay net s then
          [ ((), norm (fst (step net (fun _ _ -> None) s))) ]
        else []
      in
      delay
      @ List.map
          (fun a -> ((), norm (fst (step net (fun _ _ -> Some a) s))))
          (enabled net s)

    let is_target _ _ = false
  end) in
  let r =
    Space.run ~max_states ~max_states_check:`Insert
      ~on_insert:(fun s -> acc := s :: !acc)
      (norm (initial net))
  in
  match r.Space.outcome with
  | Space.Exhausted reason ->
    failwith
      (Format.asprintf "Concrete.enumerate: %a" Search.(fun ppf -> function
         | Max_states n -> Format.fprintf ppf "state budget (%d) exhausted" n
         | Deadline d -> Format.fprintf ppf "deadline (%.3fs) exceeded" d)
         reason)
  | Space.Found _ | Space.Completed -> List.rev !acc
