(* Bound encoding: infinity is [max_int]; a finite bound (m, strict?)
   is [2m + (0 if strict, 1 if weak)].  With this encoding the natural
   integer order coincides with bound tightness: (m, <) < (m, <=) <
   (m+1, <). *)

type bound = int

let inf = max_int
let le m = (2 * m) + 1
let lt m = 2 * m

let bound_add a b =
  if a = inf || b = inf then inf
  else
    let m = (a asr 1) + (b asr 1) in
    (2 * m) + (a land b land 1)

let bound_compare = Int.compare

(* matrix stored row-major over n+1 clock indices; a negative-diagonal
   marker denotes the canonical empty zone *)
type t = { n : int; m : bound array }

let dim t = t.n
let size n = (n + 1) * (n + 1)
let idx n i j = (i * (n + 1)) + j

let get t i j =
  if i < 0 || i > t.n || j < 0 || j > t.n then invalid_arg "Dbm.get";
  t.m.(idx t.n i j)

let is_empty t = t.m.(0) < le 0

(* Floyd–Warshall canonicalisation; marks emptiness on the (0,0) cell *)
let canonicalize { n; m } =
  let m = Array.copy m in
  for k = 0 to n do
    for i = 0 to n do
      let ik = m.(idx n i k) in
      if ik <> inf then
        for j = 0 to n do
          let kj = m.(idx n k j) in
          if kj <> inf then begin
            let through = bound_add ik kj in
            if through < m.(idx n i j) then m.(idx n i j) <- through
          end
        done
    done
  done;
  (* negative cycle <-> some diagonal < (0, <=) *)
  let empty = ref false in
  for i = 0 to n do
    if m.(idx n i i) < le 0 then empty := true else m.(idx n i i) <- le 0
  done;
  if !empty then m.(0) <- lt 0;
  { n; m }

let zero n =
  if n < 0 then invalid_arg "Dbm.zero";
  { n; m = Array.make (size n) (le 0) }

let universe n =
  if n < 0 then invalid_arg "Dbm.universe";
  let m = Array.make (size n) inf in
  for i = 0 to n do
    m.(idx n i i) <- le 0;
    (* clocks are non-negative: 0 - x_i <= 0 *)
    m.(idx n 0 i) <- le 0
  done;
  m.(idx n 0 0) <- le 0;
  { n; m }

let up t =
  if is_empty t then t
  else begin
    let m = Array.copy t.m in
    for i = 1 to t.n do
      m.(idx t.n i 0) <- inf
    done;
    (* canonical form is preserved by the up operation *)
    { t with m }
  end

let reset t x v =
  if x < 1 || x > t.n then invalid_arg "Dbm.reset: bad clock";
  if v < 0 then invalid_arg "Dbm.reset: negative value";
  if is_empty t then t
  else begin
    let n = t.n in
    let m = Array.copy t.m in
    for j = 0 to n do
      if j <> x then begin
        m.(idx n x j) <- bound_add (le v) t.m.(idx n 0 j);
        m.(idx n j x) <- bound_add t.m.(idx n j 0) (le (-v))
      end
    done;
    m.(idx n x x) <- le 0;
    (* canonical form is preserved by resets on canonical input *)
    { t with m }
  end

let constrain t i j b =
  if i < 0 || i > t.n || j < 0 || j > t.n then invalid_arg "Dbm.constrain";
  if is_empty t then t
  else if b >= t.m.(idx t.n i j) then t
  else begin
    let m = Array.copy t.m in
    m.(idx t.n i j) <- b;
    canonicalize { t with m }
  end

let intersect a b =
  if a.n <> b.n then invalid_arg "Dbm.intersect: dimension mismatch";
  if is_empty a then a
  else if is_empty b then b
  else
    canonicalize
      { a with m = Array.init (size a.n) (fun k -> Int.min a.m.(k) b.m.(k)) }

let includes a b =
  if a.n <> b.n then invalid_arg "Dbm.includes: dimension mismatch";
  if is_empty b then true
  else if is_empty a then false
  else
    let ok = ref true in
    for k = 0 to size a.n - 1 do
      if b.m.(k) > a.m.(k) then ok := false
    done;
    !ok

let extrapolate t maxima =
  if Array.length maxima <> t.n + 1 then invalid_arg "Dbm.extrapolate";
  if is_empty t then t
  else begin
    let n = t.n in
    let m = Array.copy t.m in
    let changed = ref false in
    for i = 0 to n do
      for j = 0 to n do
        if i <> j then begin
          let b = m.(idx n i j) in
          if i > 0 && b <> inf && b > le maxima.(i) then begin
            m.(idx n i j) <- inf;
            changed := true
          end
          else if j > 0 && b <> inf && b < lt (-maxima.(j)) then begin
            m.(idx n i j) <- lt (-maxima.(j));
            changed := true
          end
        end
      done
    done;
    if !changed then canonicalize { t with m } else t
  end

let equal a b = a.n = b.n && a.m = b.m

(* The default polymorphic hash only inspects a bounded prefix of the
   bound matrix, so canonical DBMs that share early rows (the common
   case: similar zones over the same clocks) collide massively.  Mix
   every bound instead, FNV-1a style — this is also the interning hash
   of {!Reach}'s hash-consed zone store, where collision quality
   directly bounds lookup cost. *)
let hash t =
  let h = ref 0x811c9dc5 in
  for i = 0 to Array.length t.m - 1 do
    h := (!h lxor t.m.(i)) * 0x01000193
  done;
  (!h + t.n) land max_int

let contains_point t v =
  if Array.length v <> t.n + 1 then invalid_arg "Dbm.contains_point";
  if v.(0) <> 0 then invalid_arg "Dbm.contains_point: v.(0) must be 0";
  if is_empty t then false
  else begin
    let ok = ref true in
    for i = 0 to t.n do
      for j = 0 to t.n do
        let b = t.m.(idx t.n i j) in
        if b <> inf then begin
          let d = v.(i) - v.(j) in
          let m = b asr 1 and weak = b land 1 = 1 in
          if not (if weak then d <= m else d < m) then ok := false
        end
      done
    done;
    !ok
  end

let pp ppf t =
  if is_empty t then Format.pp_print_string ppf "(empty)"
  else begin
    Format.fprintf ppf "@[<v>";
    for i = 0 to t.n do
      for j = 0 to t.n do
        let b = t.m.(idx t.n i j) in
        if b = inf then Format.fprintf ppf "   inf "
        else Format.fprintf ppf "%4d%s " (b asr 1) (if b land 1 = 1 then "<=" else "< ")
      done;
      if i < t.n then Format.fprintf ppf "@,"
    done;
    Format.fprintf ppf "@]"
  end
