module Layout = struct
  (* shared integer store, [n] applications:
     [0..n-1]      WT[i]      wait counters
     [n..2n-1]     DT-[i]     granted minimum dwell
     [2n..3n-1]    DT+[i]     granted maximum dwell
     [3n]          run        slot occupied?
     [3n+1]        owner      occupant id (-1 when free)
     [3n+2]        dist       id being registered over reqTT
     [3n+3]        len0       buffer0 length
     [3n+4..4n+3]  buffer0    arrival queue
     [4n+4]        len        buffer length
     [4n+5..5n+4]  buffer     EDF-sorted service queue *)
  let wt ~n:_ i = i
  let dt_min ~n i = n + i
  let dt_max ~n i = (2 * n) + i
  let run ~n = 3 * n
  let owner ~n = (3 * n) + 1
  let dist ~n = (3 * n) + 2
  let len0 ~n = (3 * n) + 3
  let buf0 ~n j = (3 * n) + 4 + j
  let len ~n = (4 * n) + 4
  let buf ~n j = (4 * n) + 5 + j
  let store_size ~n = (5 * n) + 5

  (* clocks: time[id] = id+1, then cT, then x *)
  let clock_time id = id + 1
  let clock_ct ~n = n + 1
  let clock_x ~n = n + 2

  (* application automaton locations *)
  let loc_steady = 0
  let loc_dist_init = 1
  let loc_et_wait = 2
  let loc_tt = 3
  let loc_et_safe = 4
  let loc_error = 5
end

(* channels: reqTT, then getTT[i], then leaveTT[i] *)
let chan_req = 0
let chan_get ~n:_ i = 1 + i
let chan_leave ~n i = 1 + n + i

let application_automaton (specs : Sched.Appspec.t array) id =
  let n = Array.length specs in
  let spec = specs.(id) in
  let open Ta.Automaton in
  let time = Layout.clock_time id in
  let locations =
    [|
      location "Steady";
      location ~kind:Committed "Dist_init";
      location "ET_Wait";
      location "TT";
      location
        ~invariant:[ guard_const time Le spec.Sched.Appspec.r ]
        "ET_SAFE";
      location "Error";
    |]
  in
  let edges =
    [
      (* a disturbance may arrive at any time in Steady *)
      edge ~src:Layout.loc_steady ~dst:Layout.loc_dist_init
        ~resets:[ (time, 0) ]
        ~update:(fun s ->
          let s = Array.copy s in
          s.(Layout.dist ~n) <- id;
          s)
        ();
      edge ~src:Layout.loc_dist_init ~dst:Layout.loc_et_wait
        ~sync:(Send chan_req) ();
      edge ~src:Layout.loc_et_wait ~dst:Layout.loc_tt
        ~sync:(Recv (chan_get ~n id)) ();
      (* deadline miss: the wait is measured from the sample at which
         the scheduler first saw the request (time[id] is reset at the
         buffer transfer), so the edge is armed only once the request
         sits in the sorted service queue.  Without this data guard the
         literal Fig. 5 guard fires vacuously in the sub-sample window
         between registration and transfer whenever T*_w = 0. *)
      edge ~src:Layout.loc_et_wait ~dst:Layout.loc_error
        ~guards:[ guard_const time Gt spec.Sched.Appspec.t_w_max ]
        ~data_guard:(fun s ->
          let len = s.(Layout.len ~n) in
          let rec in_buffer j =
            j < len && (s.(Layout.buf ~n j) = id || in_buffer (j + 1))
          in
          in_buffer 0)
        ();
      edge ~src:Layout.loc_tt ~dst:Layout.loc_et_safe
        ~sync:(Recv (chan_leave ~n id)) ();
      edge ~src:Layout.loc_et_safe ~dst:Layout.loc_steady
        ~guards:[ guard_const time Eq spec.Sched.Appspec.r ]
        ();
    ]
  in
  make ~name:spec.Sched.Appspec.name ~locations ~initial:Layout.loc_steady
    ~edges

(* the EDF insertion of the Sort automaton: the incoming request goes
   before the first queued request with strictly larger slack *)
let insert_sorted (specs : Sched.Appspec.t array) s id =
  let n = Array.length specs in
  let slack i = specs.(i).Sched.Appspec.t_w_max - s.(Layout.wt ~n i) in
  let len = s.(Layout.len ~n) in
  let pos = ref len in
  (try
     for j = 0 to len - 1 do
       if slack s.(Layout.buf ~n j) > slack id then begin
         pos := j;
         raise Exit
       end
     done
   with Exit -> ());
  for j = len downto !pos + 1 do
    s.(Layout.buf ~n j) <- s.(Layout.buf ~n (j - 1))
  done;
  s.(Layout.buf ~n !pos) <- id;
  s.(Layout.len ~n) <- len + 1

let scheduler_automaton (specs : Sched.Appspec.t array) =
  let n = Array.length specs in
  let open Ta.Automaton in
  let x = Layout.clock_x ~n and ct = Layout.clock_ct ~n in
  let idle = 0
  and tick_slot = 1
  and grant_loc = 2
  and released_loc = 3 in
  let locations =
    [|
      location ~invariant:[ guard_const x Le 1 ] "Idle";
      location ~kind:Committed "TickSlot";
      location ~kind:Committed "Grant";
      location ~kind:Committed "Released";
    |]
  in
  let v_run s = s.(Layout.run ~n) in
  let v_len s = s.(Layout.len ~n) in
  let head s = s.(Layout.buf ~n 0) in
  let dt_min_of_owner s = s.(Layout.dt_min ~n s.(Layout.owner ~n)) in
  let dt_max_of_owner s = s.(Layout.dt_max ~n s.(Layout.owner ~n)) in
  let grant_update k s =
    let s = Array.copy s in
    let w = s.(Layout.wt ~n k) in
    s.(Layout.dt_min ~n k) <- specs.(k).Sched.Appspec.t_dw_min.(w);
    s.(Layout.dt_max ~n k) <- specs.(k).Sched.Appspec.t_dw_max.(w);
    (* hygiene: the wait counter has served its purpose (the table
       lookup); clearing it keeps stale values from multiplying the
       symbolic state space *)
    s.(Layout.wt ~n k) <- 0;
    s.(Layout.owner ~n) <- k;
    s.(Layout.run ~n) <- 1;
    (* pop the buffer head *)
    let len = s.(Layout.len ~n) in
    for j = 0 to len - 2 do
      s.(Layout.buf ~n j) <- s.(Layout.buf ~n (j + 1))
    done;
    s.(Layout.len ~n) <- len - 1;
    (* hygiene: clear vacated queue tail *)
    s.(Layout.buf ~n (len - 1)) <- 0;
    s
  in
  let leave_update k s =
    let s = Array.copy s in
    s.(Layout.run ~n) <- 0;
    s.(Layout.owner ~n) <- -1;
    (* hygiene: the granted dwell bounds are dead after the release *)
    s.(Layout.dt_min ~n k) <- 0;
    s.(Layout.dt_max ~n k) <- 0;
    s
  in
  (* grants jump straight back to Idle, starting both the dwell clock
     and the next sample period *)
  let grant_edges ~src =
    List.init n (fun k ->
        edge ~src ~dst:idle
          ~data_guard:(fun s -> v_run s = 0 && v_len s > 0 && head s = k)
          ~sync:(Send (chan_get ~n k))
          ~resets:[ (ct, 0); (x, 0) ]
          ~update:(grant_update k) ())
  in
  let edges =
    (* registration of asynchronous requests, any time *)
    edge ~src:idle ~dst:idle ~sync:(Recv chan_req)
      ~update:(fun s ->
        let s = Array.copy s in
        let l0 = s.(Layout.len0 ~n) in
        s.(Layout.buf0 ~n l0) <- s.(Layout.dist ~n);
        s.(Layout.len0 ~n) <- l0 + 1;
        (* hygiene: the mailbox variable is dead once consumed *)
        s.(Layout.dist ~n) <- 0;
        s)
      ()
    (* the sample tick: bump the wait counters of everything already
       being served (upd_WT of Fig. 7), then run Policy + Sort folded
       into one atomic transfer - move buffer0 into the EDF-sorted
       buffer, resetting WT and time of each moved id *)
    :: edge ~src:idle ~dst:tick_slot
         ~guards:[ guard_const x Eq 1 ]
         ~dyn_resets:(fun s ->
           List.init s.(Layout.len0 ~n) (fun j ->
               (Layout.clock_time s.(Layout.buf0 ~n j), 0)))
         ~update:(fun s ->
           let s = Array.copy s in
           for j = 0 to s.(Layout.len ~n) - 1 do
             let i = s.(Layout.buf ~n j) in
             s.(Layout.wt ~n i) <- s.(Layout.wt ~n i) + 1
           done;
           for j = 0 to s.(Layout.len0 ~n) - 1 do
             let id = s.(Layout.buf0 ~n j) in
             s.(Layout.wt ~n id) <- 0;
             insert_sorted specs s id;
             (* hygiene: clear the consumed buffer0 cell *)
             s.(Layout.buf0 ~n j) <- 0
           done;
           s.(Layout.len0 ~n) <- 0;
           s)
         ()
    (* slot idle, nobody waiting *)
    :: edge ~src:tick_slot ~dst:idle ~resets:[ (x, 0) ]
         ~data_guard:(fun s -> v_run s = 0 && v_len s = 0)
         ()
    (* occupant still within its protected minimum dwell *)
    :: edge ~src:tick_slot ~dst:idle ~resets:[ (x, 0) ]
         ~data_guard:(fun s -> v_run s = 1)
         ~guards:[ guard_var ct Lt dt_min_of_owner ]
         ()
    (* occupant past T-_dw but nobody waiting: keep the slot *)
    :: edge ~src:tick_slot ~dst:idle ~resets:[ (x, 0) ]
         ~data_guard:(fun s -> v_run s = 1 && v_len s = 0)
         ~guards:
           [ guard_var ct Ge dt_min_of_owner; guard_var ct Lt dt_max_of_owner ]
         ()
    (* released location with empty buffer: nothing to grant *)
    :: edge ~src:released_loc ~dst:idle ~resets:[ (x, 0) ]
         ~data_guard:(fun s -> v_len s = 0)
         ()
    (* slot idle and somebody waiting: grant to the buffer head *)
    :: grant_edges ~src:tick_slot
    @ grant_edges ~src:grant_loc
    @ grant_edges ~src:released_loc
    (* preemption: occupant past T-_dw and somebody waiting *)
    @ List.init n (fun k ->
          edge ~src:tick_slot ~dst:grant_loc
            ~data_guard:(fun s ->
              v_run s = 1 && s.(Layout.owner ~n) = k && v_len s > 0)
            ~guards:
              [
                guard_var ct Ge dt_min_of_owner;
                guard_var ct Lt dt_max_of_owner;
              ]
            ~sync:(Send (chan_leave ~n k))
            ~update:(leave_update k) ())
    (* voluntary release at T+_dw *)
    @ List.init n (fun k ->
          edge ~src:tick_slot ~dst:released_loc
            ~data_guard:(fun s -> v_run s = 1 && s.(Layout.owner ~n) = k)
            ~guards:[ guard_var ct Eq dt_max_of_owner ]
            ~sync:(Send (chan_leave ~n k))
            ~update:(leave_update k) ())
  in
  make ~name:"Scheduler" ~locations ~initial:idle ~edges

let build specs =
  let n = Array.length specs in
  if n = 0 then invalid_arg "Ta_model.build: empty group";
  let automata =
    Array.init (n + 1) (fun i ->
        if i < n then application_automaton specs i
        else scheduler_automaton specs)
  in
  let store = Array.make (Layout.store_size ~n) 0 in
  store.(Layout.owner ~n) <- -1;
  let clock_names =
    Array.init (n + 2) (fun i ->
        if i < n then Printf.sprintf "time[%s]" specs.(i).Sched.Appspec.name
        else if i = n then "cT"
        else "x")
  in
  let channel_names =
    Array.init (1 + (2 * n)) (fun c ->
        if c = 0 then "reqTT"
        else if c <= n then
          Printf.sprintf "getTT[%s]" specs.(c - 1).Sched.Appspec.name
        else
          Printf.sprintf "leaveTT[%s]" specs.(c - 1 - n).Sched.Appspec.name)
  in
  let clock_maxima =
    Array.init (n + 2) (fun i ->
        if i < n then
          Int.max specs.(i).Sched.Appspec.r (specs.(i).Sched.Appspec.t_w_max + 1)
        else if i = n then
          (* cT is compared against dwell-table entries *)
          Array.fold_left
            (fun acc (s : Sched.Appspec.t) ->
              Array.fold_left Int.max acc s.Sched.Appspec.t_dw_max)
            0 specs
        else 1)
  in
  Ta.Network.make ~automata ~clock_names ~channel_names ~initial_store:store
    ~clock_maxima

let error_target (specs : Sched.Appspec.t array) ~locs ~store =
  ignore store;
  let n = Array.length specs in
  let hit = ref false in
  for i = 0 to n - 1 do
    if locs.(i) = Layout.loc_error then hit := true
  done;
  !hit

type result = {
  outcome : [ `Safe | `Unsafe | `Undetermined of Ta.Reach.budget_reason ];
  stats : Ta.Reach.stats;
}

let zero_stats =
  {
    Ta.Reach.states = 0;
    transitions = 0;
    elapsed = 0.;
    waiting_peak = 0;
    inclusion_pruned = 0;
    dedup_hits = 0;
    extrapolations = 0;
  }

let verify ?order ?(max_states = 2_000_000) ?deadline ?(inclusion = false)
    ?(prefilter = false) specs =
  let screened =
    if not prefilter then None
    else
      (* the same two-sided analytic screen the discrete engine trusts;
         both engines decide the identical safety property, so a
         decided group never needs the zone graph *)
      match Sched.Prefilter.decide specs with
      | Sched.Prefilter.Analytic_safe -> Some `Safe
      | Sched.Prefilter.Analytic_unsafe _ -> Some `Unsafe
      | Sched.Prefilter.Inconclusive -> None
  in
  match screened with
  | Some outcome -> { outcome; stats = zero_stats }
  | None ->
    let net = build specs in
    let r =
      Ta.Reach.run ?order ~max_states ?deadline ~inclusion net
        (error_target specs)
    in
    let outcome =
      match r.Ta.Reach.outcome with
      | Ta.Reach.Hit _ -> `Unsafe
      | Ta.Reach.Unreachable -> `Safe
      | Ta.Reach.Exhausted reason -> `Undetermined reason
    in
    { outcome; stats = r.Ta.Reach.stats }
