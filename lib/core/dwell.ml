type t = {
  j_star : int;
  jt : int;
  je : int;
  t_w_max : int;
  stride : int;
  t_dw_min : int array;
  t_dw_max : int array;
  j_at_min : int array;
  j_at_max : int array;
}

exception Infeasible of string

let infeasible fmt = Format.kasprintf (fun s -> raise (Infeasible s)) fmt

let settle_pure ?threshold p g mode =
  Control.Settle.settling_index ?threshold
    (Control.Switched.run p g (Strategy.pure mode) (Control.Switched.disturbed p) 600)

(* settling when waiting [t_w] samples and then holding MT forever *)
let settle_hold ?threshold p g ~t_w =
  let mode k = if k < t_w then Control.Switched.Me else Control.Switched.Mt in
  Control.Settle.settling_index ?threshold
    (Control.Switched.run p g mode (Control.Switched.disturbed p) (t_w + 600))

let j_of _table p g ~t_w ~t_dw = Strategy.settling p g ~t_w ~t_dw

let surface ?threshold p g ~t_w_max ~t_dw_max =
  Obs.Span.with_ "dwell.surface" (fun () ->
      let s =
        List.concat
          (List.init (t_w_max + 1) (fun t_w ->
               List.init t_dw_max (fun d ->
                   let t_dw = d + 1 in
                   (t_w, t_dw, Strategy.settling ?threshold p g ~t_w ~t_dw))))
      in
      if Obs.Trace_ctx.enabled () then begin
        Obs.Metric.count "dwell.simulations" (List.length s);
        Obs.Metric.count "dwell.infeasible_skipped"
          (List.length (List.filter (fun (_, _, j) -> j = None) s))
      end;
      s)

(* Per-wait analysis: scan dwell times and extract the min feasible
   dwell and the first dwell achieving the best attainable settling. *)
let analyse_wait ?threshold p g ~j_star ~t_w =
  match settle_hold ?threshold p g ~t_w with
  | None ->
    (* even holding the slot forever never settles *)
    if Obs.Trace_ctx.enabled () then begin
      Obs.Metric.count "dwell.simulations" 1;
      Obs.Metric.count "dwell.infeasible_skipped" 1
    end;
    None
  | Some j_hold ->
    let cap = Int.max (j_hold - t_w) (j_star - t_w) + 25 in
    let js =
      Array.init cap (fun d ->
          Strategy.settling ?threshold p g ~t_w ~t_dw:(d + 1))
    in
    if Obs.Trace_ctx.enabled () then begin
      Obs.Metric.count "dwell.simulations" (cap + 1);
      Obs.Metric.count "dwell.infeasible_skipped"
        (Array.fold_left (fun acc j -> if j = None then acc + 1 else acc) 0 js)
    end;
    let best =
      Array.fold_left
        (fun acc j ->
          match (acc, j) with
          | None, x -> x
          | Some b, Some x -> Some (Int.min b x)
          | Some b, None -> Some b)
        (Some j_hold) js
    in
    let best = match best with Some b -> b | None -> j_hold in
    let first pred =
      let rec go d =
        if d >= cap then None
        else
          match js.(d) with
          | Some j when pred j -> Some (d + 1, j)
          | Some _ | None -> go (d + 1)
      in
      go 0
    in
    let feasible d =
      (* dwell d = array index d - 1 *)
      match js.(d - 1) with Some j -> j <= j_star | None -> false
    in
    (match first (fun j -> j <= j_star) with
     | None -> None
     | Some _ ->
       let dw_max, j_max =
         match first (fun j -> j = best) with
         | Some (dw_max, j_max) -> (dw_max, j_max)
         | None ->
           (* best only attained by holding forever; treat the cap as
              the saturation point *)
           (cap, j_hold)
       in
       (* The occupant can be preempted at ANY dwell in
          [T⁻_dw, T⁺_dw], so the minimum must be suffix-safe: every
          dwell from it up to T⁺_dw meets the budget.  (The paper's
          "minimum dwell meeting J <= J*" implicitly assumes
          feasibility is upward-closed; on its case study the two
          definitions coincide — see EXPERIMENTS.md.) *)
       if not (feasible dw_max) then None
       else begin
         let rec lowest d = if d >= 2 && feasible (d - 1) then lowest (d - 1) else d in
         let dw_min = lowest dw_max in
         match js.(dw_min - 1) with
         | Some j_min -> Some (dw_min, j_min, dw_max, j_max)
         | None -> None
       end)

(* [analyse_wait] with its wall time fed to the per-T_w histogram *)
let analyse_wait_timed ?threshold p g ~j_star ~t_w =
  if not (Obs.Trace_ctx.enabled ()) then analyse_wait ?threshold p g ~j_star ~t_w
  else begin
    let t0 = Obs.Clock.now () in
    let r = analyse_wait ?threshold p g ~j_star ~t_w in
    Obs.Metric.observe_value "dwell.per_tw_s" (Obs.Clock.now () -. t0);
    r
  end

(* ------------------------------------------------------------------ *)
(* Grid indexing.  Rows are stored one per simulated wait, so the row
   for wait [t_w] lives at index [t_w / stride] — and only waits on the
   stride grid have a row at all.  Consumers must go through these
   accessors instead of indexing the arrays with the raw wait (which is
   wrong whenever [stride > 1]). *)

let index_of_wait t ~t_w =
  if t_w >= 0 && t_w <= t.t_w_max && t_w mod t.stride = 0 then
    Some (t_w / t.stride)
  else None

let row_exn name t ~t_w a =
  match index_of_wait t ~t_w with
  | Some i -> a.(i)
  | None ->
    invalid_arg
      (Printf.sprintf "Dwell.%s: wait %d is off the stride-%d grid [0..%d]"
         name t_w t.stride t.t_w_max)

let dw_min t ~t_w = row_exn "dw_min" t ~t_w t.t_dw_min
let dw_max t ~t_w = row_exn "dw_max" t ~t_w t.t_dw_max
let j_min t ~t_w = row_exn "j_min" t ~t_w t.j_at_min
let j_max t ~t_w = row_exn "j_max" t ~t_w t.j_at_max

let waits t = List.init (Array.length t.t_dw_min) (fun i -> i * t.stride)

(* ------------------------------------------------------------------ *)
(* Content-addressed fingerprint of a table computation.  Every input
   that the result depends on is serialised exactly: floats in lossless
   hex notation (%h), dimensions explicit, fields separated by bytes
   that cannot occur inside a %h rendering or a decimal integer — the
   key is injective, so equal keys mean an identical computation. *)

type cache = t Par.Vcache.t

let create_cache ?backing () = Par.Vcache.create ~label:"dwell" ?backing ()

let fingerprint ?threshold ?(stride = 1) (p : Control.Plant.t) (g : Control.Switched.gains) ~j_star =
  let fl x = Printf.sprintf "%h" x in
  let arr a = String.concat "," (Array.to_list (Array.map fl a)) in
  let mat (m : Linalg.Mat.t) =
    Printf.sprintf "%dx%d:%s" m.Linalg.Mat.rows m.Linalg.Mat.cols
      (arr m.Linalg.Mat.data)
  in
  String.concat "|"
    [
      "dwell";
      mat p.Control.Plant.phi;
      arr p.Control.Plant.gamma;
      arr p.Control.Plant.c;
      fl p.Control.Plant.h;
      arr g.Control.Switched.kt;
      arr g.Control.Switched.ke;
      (match threshold with None -> "default" | Some x -> fl x);
      string_of_int stride;
      string_of_int j_star;
    ]

let compute ?pool ?cache ?threshold ?(stride = 1) p g ~j_star =
  if stride < 1 then invalid_arg "Dwell.compute: stride must be >= 1";
  if j_star < 1 then invalid_arg "Dwell.compute: j_star must be >= 1";
  let compute_impl () =
  Obs.Span.with_ "dwell.compute" @@ fun () ->
  let a_tt = Control.Feedback.closed_loop_tt p g.Control.Switched.kt in
  let a_et = Control.Feedback.closed_loop_et p g.Control.Switched.ke in
  if not (Linalg.Eig.is_schur_stable a_tt) then
    infeasible "TT closed loop is unstable";
  if not (Linalg.Eig.is_schur_stable a_et) then
    infeasible "ET closed loop is unstable";
  let jt =
    match settle_pure ?threshold p g Control.Switched.Mt with
    | Some j -> j
    | None -> infeasible "TT mode does not settle within the horizon"
  in
  let je =
    match settle_pure ?threshold p g Control.Switched.Me with
    | Some j -> j
    | None -> infeasible "ET mode does not settle within the horizon"
  in
  if jt > j_star then
    infeasible "requirement J* = %d unattainable: J_T = %d" j_star jt;
  if je <= j_star then
    infeasible "requirement J* = %d trivially met on ET: J_E = %d" j_star je;
  let pool = match pool with Some p -> p | None -> Par.Pool.default () in
  let jobs = Par.Pool.jobs pool in
  let entries =
    if jobs <= 1 then begin
      let rec collect t_w acc =
        match analyse_wait_timed ?threshold p g ~j_star ~t_w with
        | None -> List.rev acc
        | Some entry -> collect (t_w + stride) ((t_w, entry) :: acc)
      in
      collect 0 []
    end
    else begin
      (* Rows are independent simulations, so precompute them in
         stride-stepped chunks and consume each chunk in wait order,
         stopping at the first infeasible wait exactly like the
         sequential scan — any rows speculated past it are discarded
         and the resulting table is identical. *)
      let chunk = 2 * jobs in
      let rec collect t_w0 acc =
        let waits = List.init chunk (fun i -> t_w0 + (i * stride)) in
        let rows =
          Par.Pool.map_list pool
            (fun t_w -> analyse_wait_timed ?threshold p g ~j_star ~t_w)
            waits
        in
        let rec consume waits rows acc =
          match (waits, rows) with
          | [], [] -> collect (t_w0 + (chunk * stride)) acc
          | t_w :: ws, Some entry :: rs -> consume ws rs ((t_w, entry) :: acc)
          | _ :: _, None :: _ -> List.rev acc
          | _ -> assert false
        in
        consume waits rows acc
      in
      collect 0 []
    end
  in
  match entries with
  | [] -> infeasible "no feasible wait time at all"
  | _ ->
    let t_w_max = fst (List.nth entries (List.length entries - 1)) in
    let len = (t_w_max / stride) + 1 in
    let t_dw_min = Array.make len 0
    and t_dw_max = Array.make len 0
    and j_at_min = Array.make len 0
    and j_at_max = Array.make len 0 in
    List.iteri
      (fun i (_, (dmin, jmin, dmax, jmax)) ->
        t_dw_min.(i) <- dmin;
        j_at_min.(i) <- jmin;
        t_dw_max.(i) <- dmax;
        j_at_max.(i) <- jmax)
      entries;
    { j_star; jt; je; t_w_max; stride; t_dw_min; t_dw_max; j_at_min; j_at_max }
  in
  match cache with
  | None -> compute_impl ()
  | Some c ->
    Par.Vcache.find_or_add c
      (fingerprint ?threshold ~stride p g ~j_star)
      compute_impl

let deadline t ~t_w =
  if t_w < 0 || t_w > t.t_w_max then
    invalid_arg
      (Printf.sprintf "Dwell.deadline: wait %d outside [0..%d]" t_w t.t_w_max);
  t.t_w_max - t_w

let validate t =
  let len = Array.length t.t_dw_min in
  let check cond msg = if cond then Ok () else Error msg in
  let ( let* ) = Result.bind in
  let* () =
    check
      (len = Array.length t.t_dw_max
      && len = Array.length t.j_at_min
      && len = Array.length t.j_at_max)
      "array lengths disagree"
  in
  let* () = check (len >= 1) "empty table" in
  let* () = check (t.stride >= 1) "stride must be >= 1" in
  let* () =
    check
      (t.t_w_max = (len - 1) * t.stride)
      "t_w_max disagrees with the row count and stride"
  in
  let* () = check (t.jt <= t.j_star && t.j_star < t.je) "J_T <= J* < J_E violated" in
  let* () =
    check
      (Array.for_all2 (fun a b -> a <= b) t.t_dw_min t.t_dw_max)
      "t_dw_min exceeds t_dw_max"
  in
  let* () =
    check
      (Array.for_all (fun j -> j <= t.j_star) t.j_at_min)
      "a j_at_min entry violates the requirement"
  in
  check
    (Array.for_all2 (fun a b -> b <= a) t.j_at_min t.j_at_max)
    "dwelling longer must not worsen settling"

let pp ppf t =
  let pp_arr ppf a =
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         Format.pp_print_int)
      (Array.to_list a)
  in
  Format.fprintf ppf
    "@[<v>J* = %d, J_T = %d, J_E = %d, T*_w = %d%s@,T-_dw = %a@,T+_dw = %a@]"
    t.j_star t.jt t.je t.t_w_max
    (if t.stride = 1 then "" else Printf.sprintf " (stride %d)" t.stride)
    pp_arr t.t_dw_min pp_arr t.t_dw_max
