type reason = Deadline of float | State_budget of int

type verdict = Safe | Unsafe of counterexample | Undetermined of reason

and counterexample = {
  steps : (int list * Sched.Slot_state.t) list;
  failing : int list;
}

let pp_reason ppf = function
  | Deadline d -> Format.fprintf ppf "wall-clock deadline (%.3fs) exceeded" d
  | State_budget n -> Format.fprintf ppf "state budget (%d) exhausted" n

type stats = {
  states : int;
  transitions : int;
  elapsed : float;
  max_wait : int array;
}

type result = { verdict : verdict; stats : stats }

(* ------------------------------------------------------------------ *)
(* Adversary moves: all subsets of the currently steady applications,
   in every service-relevant arrival order.  The EDF insertion is
   deterministic except among simultaneous arrivals with equal T*_w, so
   only permutations within equal-T*_w groups are enumerated. *)

(* Applications that may legally be disturbed at the coming tick: those
   already steady, plus those whose quiet period expires exactly at the
   tick (the Safe -> Steady transition fires before disturbances are
   admitted, so an arrival at that very instant is admissible — the TA
   model allows it and the discrete engine must too). *)
let disturbable_ids (specs : Sched.Appspec.t array) state =
  let acc = ref [] in
  Array.iteri
    (fun i p ->
      match p with
      | Sched.Slot_state.Steady -> acc := i :: !acc
      | Sched.Slot_state.Safe { age } when age + 1 >= specs.(i).Sched.Appspec.r ->
        acc := i :: !acc
      | Sched.Slot_state.Waiting _ | Running _ | Safe _ | Error -> ())
    state.Sched.Slot_state.phases;
  List.rev !acc

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) l in
        List.map (fun p -> x :: p) (permutations rest))
      l

let rec subsets = function
  | [] -> [ [] ]
  | x :: rest ->
    let tails = subsets rest in
    tails @ List.map (fun t -> x :: t) tails

(* arrival orders of [subset] that can produce distinct buffers *)
let arrival_orders (specs : Sched.Appspec.t array) subset =
  let groups = Hashtbl.create 4 in
  List.iter
    (fun id ->
      let key = specs.(id).Sched.Appspec.t_w_max in
      Hashtbl.replace groups key
        (id :: Option.value ~default:[] (Hashtbl.find_opt groups key)))
    subset;
  let keys =
    List.sort_uniq compare (Hashtbl.fold (fun k _ acc -> k :: acc) groups [])
  in
  let per_group = List.map (fun k -> permutations (Hashtbl.find groups k)) keys in
  List.fold_left
    (fun acc perms ->
      List.concat_map (fun prefix -> List.map (fun p -> prefix @ p) perms) acc)
    [ [] ] per_group

(* ------------------------------------------------------------------ *)
(* Generic explorer.  A node is a slot state plus (in bounded mode) the
   per-application remaining disturbance budgets.  With [subsume] on,
   states are pruned by the quiet-age antichain: a state whose [Safe]
   applications are all at least as old in some explored state (with an
   otherwise identical configuration) admits a subset of its behaviours
   and need not be expanded.  The pruning is exact for
   error-reachability. *)

type node = { st : Sched.Slot_state.t; budget : int array }

(* The default polymorphic hash inspects only ~10 nodes, which makes
   structurally similar scheduler states collide heavily; hash deeply. *)
module Deep_tbl = Hashtbl.Make (struct
  type t = Obj.t

  let equal = ( = )
  let hash k = Hashtbl.hash_param 1000 1000 k
end)

let deep_mem tbl k = Deep_tbl.mem tbl (Obj.repr k)
let deep_add tbl k v = Deep_tbl.replace tbl (Obj.repr k) v
let deep_find_opt tbl k = Deep_tbl.find_opt tbl (Obj.repr k)

let explore_impl ~pool ~policy ~subsume ~instances ~deadline ~max_states specs =
  let t0 = Unix.gettimeofday () in
  let prune_hits = ref 0 and waiting_peak = ref 0 in
  let n = Array.length specs in
  let max_wait = Array.make n (-1) in
  let bounded = instances <> None in
  let initial_budget =
    match instances with Some k -> Array.make n k | None -> [||]
  in
  (* in bounded mode, an application with no budget left can never be
     disturbed again, so its quiet countdown is behaviourally inert *)
  let normalize st budget =
    if bounded then
      Sched.Slot_state.force_steady st ~keep_quiet:(fun i -> budget.(i) > 0)
    else st
  in
  let initial =
    { st = Sched.Slot_state.initial specs; budget = initial_budget }
  in
  let visited : unit Deep_tbl.t = Deep_tbl.create 4096 in
  let parents : (node * int list) Deep_tbl.t = Deep_tbl.create 4096 in
  let chains : int array list Deep_tbl.t = Deep_tbl.create 4096 in
  let abstract node =
    let st = node.st in
    let ages = Array.make (Array.length st.Sched.Slot_state.phases) (-1) in
    let masked =
      Array.mapi
        (fun i p ->
          match p with
          | Sched.Slot_state.Safe { age } ->
            ages.(i) <- age;
            Sched.Slot_state.Safe { age = 0 }
          | Sched.Slot_state.Steady | Waiting _ | Running _ | Error -> p)
        st.Sched.Slot_state.phases
    in
    ((masked, st.buffer, st.owner, node.budget), ages)
  in
  let covers explored ages =
    (* [explored] admits every behaviour of [ages]: pointwise at least
       as close to becoming disturbable again *)
    Array.for_all2 (fun e a -> e = a || (a >= 0 && e >= a)) explored ages
  in
  let seen node =
    if subsume then begin
      let key, ages = abstract node in
      let chain = Option.value ~default:[] (deep_find_opt chains key) in
      if List.exists (fun e -> covers e ages) chain then begin
        incr prune_hits;
        true
      end
      else begin
        let chain = ages :: List.filter (fun e -> not (covers ages e)) chain in
        deep_add chains key chain;
        false
      end
    end
    else if deep_mem visited node then begin
      incr prune_hits;
      true
    end
    else begin
      deep_add visited node ();
      false
    end
  in
  let rebuild last failing =
    let rec walk nd acc =
      match deep_find_opt parents nd with
      | None -> acc
      | Some (parent, move) -> walk parent ((move, nd.st) :: acc)
    in
    Unsafe { steps = walk last []; failing }
  in
  let queue = Queue.create () in
  ignore (seen initial);
  Queue.add initial queue;
  let states = ref 1 and transitions = ref 0 in
  let verdict = ref Safe in
  (* the state budget is checked on every pop; wall-clock checks are
     amortised so the syscall does not dominate cheap expansions *)
  let pops = ref 0 in
  let over_budget () =
    (match max_states with
     | Some cap when !states >= cap ->
       verdict := Undetermined (State_budget cap);
       true
     | _ -> false)
    ||
    match deadline with
    | Some d when !pops land 1023 = 0 && Unix.gettimeofday () -. t0 > d ->
      verdict := Undetermined (Deadline d);
      true
    | _ -> false
  in
  let moves_of node =
    let available =
      let steady = disturbable_ids specs node.st in
      if bounded then List.filter (fun id -> node.budget.(id) > 0) steady
      else steady
    in
    List.concat_map (arrival_orders specs) (subsets available)
  in
  let jobs = Par.Pool.jobs pool in
  (try
     if jobs <= 1 then
       (* the reference FIFO loop, untouched *)
       while not (Queue.is_empty queue) do
         incr pops;
         if over_budget () then raise Exit;
         let node = Queue.pop queue in
         List.iter
           (fun disturbed ->
             incr transitions;
             let st', outcome =
               Sched.Slot_state.tick ~policy specs node.st ~disturbed
             in
             List.iter
               (fun (id, wt) -> if wt > max_wait.(id) then max_wait.(id) <- wt)
               outcome.Sched.Slot_state.granted;
             let budget' =
               if (not bounded) || disturbed = [] then node.budget
               else begin
                 let b = Array.copy node.budget in
                 List.iter (fun id -> b.(id) <- b.(id) - 1) disturbed;
                 b
               end
             in
             let node' = { st = normalize st' budget'; budget = budget' } in
             match outcome.Sched.Slot_state.new_errors with
             | _ :: _ as failing ->
               deep_add parents node' (node, disturbed);
               verdict := rebuild node' failing;
               raise Exit
             | [] ->
               if not (seen node') then begin
                 incr states;
                 deep_add parents node' (node, disturbed);
                 Queue.add node' queue;
                 if Queue.length queue > !waiting_peak then
                   waiting_peak := Queue.length queue
               end)
           (moves_of node)
       done
     else begin
       (* Batched variant: grab the first K queued nodes (exactly the
          next K sequential pops — children always land behind them),
          expand them in parallel with pure work only, then merge the
          expansions in pop order, replaying the reference loop's
          side effects verbatim.  Verdicts, counterexamples, counters
          and max_wait are byte-identical to jobs = 1; the only
          speculation is expansion past an error or state budget within
          one batch, and those results are simply discarded.  [qlen]
          emulates the sequential Queue.length (the batch's pending
          pops still count) so waiting_peak agrees too. *)
       let qlen = ref 1 in
       let expand node =
         List.map
           (fun disturbed ->
             let st', outcome =
               Sched.Slot_state.tick ~policy specs node.st ~disturbed
             in
             let budget' =
               if (not bounded) || disturbed = [] then node.budget
               else begin
                 let b = Array.copy node.budget in
                 List.iter (fun id -> b.(id) <- b.(id) - 1) disturbed;
                 b
               end
             in
             let node' = { st = normalize st' budget'; budget = budget' } in
             ( disturbed,
               outcome.Sched.Slot_state.granted,
               outcome.Sched.Slot_state.new_errors,
               node' ))
           (moves_of node)
       in
       while not (Queue.is_empty queue) do
         let k = Int.min (Queue.length queue) (jobs * 4) in
         let batch = Array.make k initial in
         for i = 0 to k - 1 do
           batch.(i) <- Queue.pop queue
         done;
         let expanded = Par.Pool.map_array pool expand batch in
         Array.iteri
           (fun i results ->
             incr pops;
             if over_budget () then raise Exit;
             decr qlen;
             let node = batch.(i) in
             List.iter
               (fun (disturbed, granted, new_errors, node') ->
                 incr transitions;
                 List.iter
                   (fun (id, wt) -> if wt > max_wait.(id) then max_wait.(id) <- wt)
                   granted;
                 match new_errors with
                 | _ :: _ as failing ->
                   deep_add parents node' (node, disturbed);
                   verdict := rebuild node' failing;
                   raise Exit
                 | [] ->
                   if not (seen node') then begin
                     incr states;
                     deep_add parents node' (node, disturbed);
                     Queue.add node' queue;
                     incr qlen;
                     if !qlen > !waiting_peak then waiting_peak := !qlen
                   end)
               results)
           expanded
       done
     end
   with Exit -> ());
  let elapsed = Unix.gettimeofday () -. t0 in
  if Obs.Trace_ctx.enabled () then begin
    Obs.Metric.count "dverify.states" !states;
    Obs.Metric.count "dverify.transitions" !transitions;
    Obs.Metric.count "dverify.prune_hits" !prune_hits;
    Obs.Metric.max_gauge "dverify.waiting_peak" (float_of_int !waiting_peak);
    (match !verdict with
     | Undetermined _ -> Obs.Metric.count "dverify.undetermined" 1
     | Safe | Unsafe _ -> ());
    if elapsed > 0. then
      Obs.Metric.max_gauge "dverify.states_per_sec"
        (float_of_int !states /. elapsed)
  end;
  {
    verdict = !verdict;
    stats = { states = !states; transitions = !transitions; elapsed; max_wait };
  }

let explore ?pool ~policy ~subsume ~instances ?deadline ?max_states specs =
  (match deadline with
   | Some d when d <= 0. -> invalid_arg "Dverify: deadline must be positive"
   | _ -> ());
  (match max_states with
   | Some n when n < 1 -> invalid_arg "Dverify: max_states must be positive"
   | _ -> ());
  let pool = match pool with Some p -> p | None -> Par.Pool.default () in
  Obs.Span.with_ "dverify" (fun () ->
      explore_impl ~pool ~policy ~subsume ~instances ~deadline ~max_states specs)

let verify ?pool ?(policy = Sched.Slot_state.Eager_preempt)
    ?(mode = `Subsumption) ?deadline ?max_states specs =
  match mode with
  | `Bfs ->
    explore ?pool ~policy ~subsume:false ~instances:None ?deadline ?max_states
      specs
  | `Subsumption ->
    explore ?pool ~policy ~subsume:true ~instances:None ?deadline ?max_states
      specs

let verify_bounded ?pool ?(policy = Sched.Slot_state.Eager_preempt) ?deadline
    ?max_states ~instances specs =
  if instances < 1 then invalid_arg "Dverify.verify_bounded: instances < 1";
  explore ?pool ~policy ~subsume:true ~instances:(Some instances) ?deadline
    ?max_states specs

let pp_counterexample specs ppf (ce : counterexample) =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun k (disturbed, st) ->
      let arrivals =
        match disturbed with
        | [] -> ""
        | ids ->
          Printf.sprintf "  <- disturb %s"
            (String.concat ","
               (List.map (fun id -> specs.(id).Sched.Appspec.name) ids))
      in
      Format.fprintf ppf "t=%-3d %a%s@," k (Sched.Slot_state.pp specs) st
        arrivals)
    ce.steps;
  Format.fprintf ppf "miss: %s@]"
    (String.concat ", "
       (List.map (fun id -> specs.(id).Sched.Appspec.name) ce.failing))

let pp_verdict specs ppf = function
  | Safe -> Format.pp_print_string ppf "safe: no application can miss T*_w"
  | Unsafe { failing; steps } ->
    Format.fprintf ppf "unsafe: %s misses T*_w after %d samples"
      (String.concat ", "
         (List.map (fun id -> specs.(id).Sched.Appspec.name) failing))
      (List.length steps)
  | Undetermined reason ->
    Format.fprintf ppf "undetermined: %a" pp_reason reason
