type reason = Deadline of float | State_budget of int

type verdict = Safe | Unsafe of counterexample | Undetermined of reason

and counterexample = {
  steps : (int list * Sched.Slot_state.t) list;
  failing : int list;
}

let pp_reason ppf = function
  | Deadline d -> Format.fprintf ppf "wall-clock deadline (%.3fs) exceeded" d
  | State_budget n -> Format.fprintf ppf "state budget (%d) exhausted" n

type stats = {
  states : int;
  transitions : int;
  elapsed : float;
  max_wait : int array;
}

type result = { verdict : verdict; stats : stats }

(* ------------------------------------------------------------------ *)
(* Adversary moves: all subsets of the currently steady applications,
   in every service-relevant arrival order.  The EDF insertion is
   deterministic except among simultaneous arrivals with equal T*_w, so
   only permutations within equal-T*_w groups are enumerated. *)

(* Applications that may legally be disturbed at the coming tick: those
   already steady, plus those whose quiet period expires exactly at the
   tick (the Safe -> Steady transition fires before disturbances are
   admitted, so an arrival at that very instant is admissible — the TA
   model allows it and the discrete engine must too). *)
let disturbable_ids (specs : Sched.Appspec.t array) state =
  let acc = ref [] in
  Array.iteri
    (fun i p ->
      match p with
      | Sched.Slot_state.Steady -> acc := i :: !acc
      | Sched.Slot_state.Safe { age } when age + 1 >= specs.(i).Sched.Appspec.r ->
        acc := i :: !acc
      | Sched.Slot_state.Waiting _ | Running _ | Safe _ | Error -> ())
    state.Sched.Slot_state.phases;
  List.rev !acc

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) l in
        List.map (fun p -> x :: p) (permutations rest))
      l

let rec subsets = function
  | [] -> [ [] ]
  | x :: rest ->
    let tails = subsets rest in
    tails @ List.map (fun t -> x :: t) tails

(* arrival orders of [subset] that can produce distinct buffers *)
let arrival_orders (specs : Sched.Appspec.t array) subset =
  let groups = Hashtbl.create 4 in
  List.iter
    (fun id ->
      let key = specs.(id).Sched.Appspec.t_w_max in
      Hashtbl.replace groups key
        (id :: Option.value ~default:[] (Hashtbl.find_opt groups key)))
    subset;
  let keys =
    List.sort_uniq compare (Hashtbl.fold (fun k _ acc -> k :: acc) groups [])
  in
  let per_group = List.map (fun k -> permutations (Hashtbl.find groups k)) keys in
  List.fold_left
    (fun acc perms ->
      List.concat_map (fun prefix -> List.map (fun p -> prefix @ p) perms) acc)
    [ [] ] per_group

(* ------------------------------------------------------------------ *)
(* Generic explorer.  A node is a slot state plus (in bounded mode) the
   per-application remaining disturbance budgets.  With [subsume] on,
   states are pruned by the quiet-age antichain: a state whose [Safe]
   applications are all at least as old in some explored state (with an
   otherwise identical configuration) admits a subset of its behaviours
   and need not be expanded.  The pruning is exact for
   error-reachability. *)

type node = { st : Sched.Slot_state.t; budget : int array }

(* the label of a transition: the adversary's move plus the tick
   outcome the merge loop needs (slot grants for max_wait, fresh
   errors for the verdict) — carrying it on the edge keeps the
   successor function pure, so the engine may run it on any domain *)
type move = {
  disturbed : int list;
  granted : (int * int) list;
  new_errors : int list;
}

let explore_impl ~pool ~order ~policy ~subsume ~instances ~deadline ~max_states
    specs =
  let n = Array.length specs in
  let max_wait = Array.make n (-1) in
  let bounded = instances <> None in
  let initial_budget =
    match instances with Some k -> Array.make n k | None -> [||]
  in
  (* in bounded mode, an application with no budget left can never be
     disturbed again, so its quiet countdown is behaviourally inert *)
  let normalize st budget =
    if bounded then
      Sched.Slot_state.force_steady st ~keep_quiet:(fun i -> budget.(i) > 0)
    else st
  in
  let initial =
    { st = Sched.Slot_state.initial specs; budget = initial_budget }
  in
  let abstract node =
    let st = node.st in
    let ages = Array.make (Array.length st.Sched.Slot_state.phases) (-1) in
    let masked =
      Array.mapi
        (fun i p ->
          match p with
          | Sched.Slot_state.Safe { age } ->
            ages.(i) <- age;
            Sched.Slot_state.Safe { age = 0 }
          | Sched.Slot_state.Steady | Waiting _ | Running _ | Error -> p)
        st.Sched.Slot_state.phases
    in
    ((masked, st.Sched.Slot_state.buffer, st.Sched.Slot_state.owner, node.budget), ages)
  in
  let covers explored ages =
    (* [explored] admits every behaviour of [ages]: pointwise at least
       as close to becoming disturbable again *)
    Array.for_all2 (fun e a -> e = a || (a >= 0 && e >= a)) explored ages
  in
  let moves_of node =
    let available =
      let steady = disturbable_ids specs node.st in
      if bounded then List.filter (fun id -> node.budget.(id) > 0) steady
      else steady
    in
    List.concat_map (arrival_orders specs) (subsets available)
  in
  let module Space = Search.Make (struct
    type state = node
    type label = move

    module Key = struct
      type t = node

      let equal a b = Sched.Slot_state.equal a.st b.st && a.budget = b.budget

      (* the default polymorphic hash inspects only ~10 nodes, which
         makes structurally similar scheduler states collide heavily;
         hash deeply (on typed fields — no [Obj] anywhere) *)
      let hash nd =
        Hashtbl.hash_param 1000 1000
          ( nd.st.Sched.Slot_state.phases,
            nd.st.Sched.Slot_state.buffer,
            nd.st.Sched.Slot_state.owner,
            nd.budget )
    end

    let key nd = nd

    let successors node =
      List.map
        (fun disturbed ->
          let st', outcome =
            Sched.Slot_state.tick ~policy specs node.st ~disturbed
          in
          let budget' =
            if (not bounded) || disturbed = [] then node.budget
            else begin
              let b = Array.copy node.budget in
              List.iter (fun id -> b.(id) <- b.(id) - 1) disturbed;
              b
            end
          in
          ( {
              disturbed;
              granted = outcome.Sched.Slot_state.granted;
              new_errors = outcome.Sched.Slot_state.new_errors;
            },
            { st = normalize st' budget'; budget = budget' } ))
        (moves_of node)

    let is_target label _ =
      match label with
      | Some m -> m.new_errors <> []
      | None -> false
  end) in
  let coverage =
    if not subsume then None
    else
      Some
        (Space.Coverage
           {
             split = abstract;
             ck_equal = ( = );
             ck_hash = Hashtbl.hash_param 1000 1000;
             covers;
           })
  in
  let r =
    Space.run ~order ~pool ~exact:(not subsume) ?coverage ?max_states
      ~max_states_check:`Pop ?deadline ~deadline_mask:1023
      ~target_check:`Generate
      ~on_edge:(fun m _ ->
        List.iter
          (fun (id, wt) -> if wt > max_wait.(id) then max_wait.(id) <- wt)
          m.granted)
      ~initial_peak:0 ~metrics_prefix:"dverify" initial
  in
  let s = r.Space.stats in
  let verdict =
    match r.Space.outcome with
    | Space.Completed -> Safe
    | Space.Found _ ->
      let steps = List.map (fun (m, nd) -> (m.disturbed, nd.st)) r.Space.trace in
      let failing =
        match List.rev r.Space.trace with
        | (m, _) :: _ -> m.new_errors
        | [] -> assert false (* the initial state is never an error *)
      in
      Unsafe { steps; failing }
    | Space.Exhausted (Search.Max_states cap) -> Undetermined (State_budget cap)
    | Space.Exhausted (Search.Deadline d) -> Undetermined (Deadline d)
  in
  if Obs.Trace_ctx.enabled () then begin
    Obs.Metric.count "dverify.prune_hits"
      (s.Search.dedup_hits + s.Search.cover_hits);
    match verdict with
    | Undetermined _ -> Obs.Metric.count "dverify.undetermined" 1
    | Safe | Unsafe _ -> ()
  end;
  {
    verdict;
    stats =
      {
        states = s.Search.states;
        transitions = s.Search.transitions;
        elapsed = s.Search.elapsed;
        max_wait;
      };
  }

let explore ?pool ?(order = `Bfs) ~policy ~subsume ~instances ?deadline
    ?max_states specs =
  (match deadline with
   | Some d when d <= 0. -> invalid_arg "Dverify: deadline must be positive"
   | _ -> ());
  (match max_states with
   | Some n when n < 1 -> invalid_arg "Dverify: max_states must be positive"
   | _ -> ());
  let pool = match pool with Some p -> p | None -> Par.Pool.default () in
  let order = match order with `Bfs -> Search.Bfs | `Dfs -> Search.Dfs in
  Obs.Span.with_ "dverify" (fun () ->
      explore_impl ~pool ~order ~policy ~subsume ~instances ~deadline
        ~max_states specs)

let verify ?pool ?order ?(policy = Sched.Slot_state.Eager_preempt)
    ?(mode = `Subsumption) ?deadline ?max_states specs =
  match mode with
  | `Bfs ->
    explore ?pool ?order ~policy ~subsume:false ~instances:None ?deadline
      ?max_states specs
  | `Subsumption ->
    explore ?pool ?order ~policy ~subsume:true ~instances:None ?deadline
      ?max_states specs

let verify_bounded ?pool ?order ?(policy = Sched.Slot_state.Eager_preempt)
    ?deadline ?max_states ~instances specs =
  if instances < 1 then invalid_arg "Dverify.verify_bounded: instances < 1";
  explore ?pool ?order ~policy ~subsume:true ~instances:(Some instances)
    ?deadline ?max_states specs

let pp_counterexample specs ppf (ce : counterexample) =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun k (disturbed, st) ->
      let arrivals =
        match disturbed with
        | [] -> ""
        | ids ->
          Printf.sprintf "  <- disturb %s"
            (String.concat ","
               (List.map (fun id -> specs.(id).Sched.Appspec.name) ids))
      in
      Format.fprintf ppf "t=%-3d %a%s@," k (Sched.Slot_state.pp specs) st
        arrivals)
    ce.steps;
  Format.fprintf ppf "miss: %s@]"
    (String.concat ", "
       (List.map (fun id -> specs.(id).Sched.Appspec.name) ce.failing))

let pp_verdict specs ppf = function
  | Safe -> Format.pp_print_string ppf "safe: no application can miss T*_w"
  | Unsafe { failing; steps } ->
    Format.fprintf ppf "unsafe: %s misses T*_w after %d samples"
      (String.concat ", "
         (List.map (fun id -> specs.(id).Sched.Appspec.name) failing))
      (List.length steps)
  | Undetermined reason ->
    Format.fprintf ppf "undetermined: %a" pp_reason reason
