type reason = Deadline of float | State_budget of int

type verdict = Safe | Unsafe of counterexample | Undetermined of reason

and counterexample = {
  steps : (int list * Sched.Slot_state.t) list;
  failing : int list;
}

let pp_reason ppf = function
  | Deadline d -> Format.fprintf ppf "wall-clock deadline (%.3fs) exceeded" d
  | State_budget n -> Format.fprintf ppf "state budget (%d) exhausted" n

type stats = {
  states : int;
  transitions : int;
  elapsed : float;
  max_wait : int array;
}

type result = { verdict : verdict; stats : stats }

(* ------------------------------------------------------------------ *)
(* Adversary moves: all subsets of the currently steady applications,
   in every service-relevant arrival order.  The EDF insertion is
   deterministic except among simultaneous arrivals with equal T*_w, so
   only permutations within equal-T*_w groups are enumerated. *)

(* Applications that may legally be disturbed at the coming tick: those
   already steady, plus those whose quiet period expires exactly at the
   tick (the Safe -> Steady transition fires before disturbances are
   admitted, so an arrival at that very instant is admissible — the TA
   model allows it and the discrete engine must too). *)
let disturbable_ids (specs : Sched.Appspec.t array) state =
  let acc = ref [] in
  Array.iteri
    (fun i p ->
      match p with
      | Sched.Slot_state.Steady -> acc := i :: !acc
      | Sched.Slot_state.Safe { age } when age + 1 >= specs.(i).Sched.Appspec.r ->
        acc := i :: !acc
      | Sched.Slot_state.Waiting _ | Running _ | Safe _ | Error -> ())
    state.Sched.Slot_state.phases;
  List.rev !acc

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) l in
        List.map (fun p -> x :: p) (permutations rest))
      l

let rec subsets = function
  | [] -> [ [] ]
  | x :: rest ->
    let tails = subsets rest in
    tails @ List.map (fun t -> x :: t) tails

(* arrival orders of [subset] that can produce distinct buffers *)
let arrival_orders (specs : Sched.Appspec.t array) subset =
  let groups = Hashtbl.create 4 in
  List.iter
    (fun id ->
      let key = specs.(id).Sched.Appspec.t_w_max in
      Hashtbl.replace groups key
        (id :: Option.value ~default:[] (Hashtbl.find_opt groups key)))
    subset;
  let keys =
    List.sort_uniq compare (Hashtbl.fold (fun k _ acc -> k :: acc) groups [])
  in
  let per_group = List.map (fun k -> permutations (Hashtbl.find groups k)) keys in
  List.fold_left
    (fun acc perms ->
      List.concat_map (fun prefix -> List.map (fun p -> prefix @ p) perms) acc)
    [ [] ] per_group

(* ------------------------------------------------------------------ *)
(* Generic explorer.  A node is a slot state plus (in bounded mode) the
   per-application remaining disturbance budgets.  With [subsume] on,
   states are pruned by the quiet-age antichain: a state whose [Safe]
   applications are all at least as old in some explored state (with an
   otherwise identical configuration) admits a subset of its behaviours
   and need not be expanded.  The pruning is exact for
   error-reachability. *)

type node = { st : Sched.Slot_state.t; budget : int array }

(* Interchangeable applications: identical timing parameters mean the
   transition relation commutes with any permutation inside the orbit
   (names never influence scheduling, and every arrival order is
   enumerated), so states differing only by such a permutation reach an
   error iff their representative does. *)
let orbit_partition (specs : Sched.Appspec.t array) =
  let same i j =
    let a = specs.(i) and b = specs.(j) in
    a.Sched.Appspec.t_w_max = b.Sched.Appspec.t_w_max
    && a.Sched.Appspec.t_dw_min = b.Sched.Appspec.t_dw_min
    && a.Sched.Appspec.t_dw_max = b.Sched.Appspec.t_dw_max
    && a.Sched.Appspec.r = b.Sched.Appspec.r
  in
  Search.Symmetry.partition ~n:(Array.length specs) ~same

(* With quotienting on, a grant seen for one orbit member stands for the
   permuted grants of every member, so the exact per-application worst
   case is the orbit maximum (constant across the orbit by symmetry). *)
let orbit_max_wait part max_wait =
  Array.iter
    (function
      | [] | [ _ ] -> ()
      | members ->
        let m =
          List.fold_left (fun acc i -> Int.max acc max_wait.(i)) (-1) members
        in
        List.iter (fun i -> max_wait.(i) <- m) members)
    (Search.Symmetry.orbits part)

(* the label of a transition: the adversary's move plus the tick
   outcome the merge loop needs (slot grants for max_wait, fresh
   errors for the verdict) — carrying it on the edge keeps the
   successor function pure, so the engine may run it on any domain *)
type move = {
  disturbed : int list;
  granted : (int * int) list;
  new_errors : int list;
}

let explore_impl ~pool ~order ~policy ~subsume ~symmetry ~instances ~deadline
    ~max_states specs =
  let n = Array.length specs in
  let max_wait = Array.make n (-1) in
  let bounded = instances <> None in
  let initial_budget =
    match instances with Some k -> Array.make n k | None -> [||]
  in
  (* in bounded mode, an application with no budget left can never be
     disturbed again, so its quiet countdown is behaviourally inert *)
  let normalize st budget =
    if bounded then
      Sched.Slot_state.force_steady st ~keep_quiet:(fun i -> budget.(i) > 0)
    else st
  in
  let initial =
    { st = Sched.Slot_state.initial specs; budget = initial_budget }
  in
  (* the canonical relabelling of a node, [None] when the node is its
     own representative: within each orbit of identical-parameter
     applications, members are sorted by their full local situation —
     phase (real quiet age included), disturbance budget, position in
     the shared EDF buffer, slot ownership.  Ties are genuinely
     interchangeable (equal phase, equal budget, both outside the
     buffer, neither owning), so the relabelled state is independent of
     which permutation realises it.  Both dedup channels call this once
     per generated successor, in the engine's sequential merge order,
     which keeps the collapse counter deterministic at any pool size. *)
  let canon =
    match symmetry with
    | None -> fun _ -> None
    | Some part ->
      fun nd ->
        let st = nd.st in
        let bufpos = Array.make n (-1) in
        List.iteri
          (fun pos id -> bufpos.(id) <- pos)
          st.Sched.Slot_state.buffer;
        let descr i =
          ( st.Sched.Slot_state.phases.(i),
            (if bounded then nd.budget.(i) else 0),
            bufpos.(i),
            st.Sched.Slot_state.owner = Some i )
        in
        let perm = Search.Symmetry.canonical_perm part ~descr in
        if Search.Symmetry.is_identity perm then None
        else begin
          Search.Symmetry.note_collapsed ();
          Some perm
        end
  in
  let permute_state perm st budget =
    let phases' = Array.make n st.Sched.Slot_state.phases.(0) in
    Array.iteri (fun i p -> phases'.(perm.(i)) <- p) st.Sched.Slot_state.phases;
    let buffer' = List.map (fun id -> perm.(id)) st.Sched.Slot_state.buffer in
    let owner' = Option.map (fun id -> perm.(id)) st.Sched.Slot_state.owner in
    let budget' =
      if not bounded then budget
      else begin
        let b = Array.make n 0 in
        Array.iteri (fun i v -> b.(perm.(i)) <- v) budget;
        b
      end
    in
    (phases', buffer', owner', budget')
  in
  let abstract node =
    let perm = canon node in
    let phases, buffer, owner, budget =
      match perm with
      | None ->
        ( node.st.Sched.Slot_state.phases,
          node.st.Sched.Slot_state.buffer,
          node.st.Sched.Slot_state.owner,
          node.budget )
      | Some perm -> permute_state perm node.st node.budget
    in
    let ages = Array.make (Array.length phases) (-1) in
    let masked =
      Array.mapi
        (fun i p ->
          match p with
          | Sched.Slot_state.Safe { age } ->
            ages.(i) <- age;
            Sched.Slot_state.Safe { age = 0 }
          | Sched.Slot_state.Steady | Waiting _ | Running _ | Error -> p)
        phases
    in
    ((masked, buffer, owner, budget), ages)
  in
  let covers explored ages =
    (* [explored] admits every behaviour of [ages]: pointwise at least
       as close to becoming disturbable again *)
    Array.for_all2 (fun e a -> e = a || (a >= 0 && e >= a)) explored ages
  in
  let moves_of node =
    let available =
      let steady = disturbable_ids specs node.st in
      if bounded then List.filter (fun id -> node.budget.(id) > 0) steady
      else steady
    in
    List.concat_map (arrival_orders specs) (subsets available)
  in
  let module Space = Search.Make (struct
    type state = node
    type label = move

    module Key = struct
      type t =
        Sched.Slot_state.phase array * int list * int option * int array

      let equal (a : t) (b : t) = a = b

      (* the default polymorphic hash inspects only ~10 nodes, which
         makes structurally similar scheduler states collide heavily;
         hash deeply (on typed fields — no [Obj] anywhere) *)
      let hash (k : t) = Hashtbl.hash_param 1000 1000 k
    end

    (* dedup key: the state's payload as a plain tuple (equality and
       hash coincide bit-for-bit with the former node-based key), first
       relabelled canonically when the node is not its own orbit
       representative.  [Slot_state.t] is private, so the canonical
       form lives only in the key, never as a state.  (This exact table
       only dedups in [`Bfs] mode; under subsumption the engine runs
       non-exact and [abstract] above carries the quotient.) *)
    let key nd =
      match canon nd with
      | None ->
        ( nd.st.Sched.Slot_state.phases,
          nd.st.Sched.Slot_state.buffer,
          nd.st.Sched.Slot_state.owner,
          nd.budget )
      | Some perm -> permute_state perm nd.st nd.budget

    let successors node =
      List.map
        (fun disturbed ->
          let st', outcome =
            Sched.Slot_state.tick ~policy specs node.st ~disturbed
          in
          let budget' =
            if (not bounded) || disturbed = [] then node.budget
            else begin
              let b = Array.copy node.budget in
              List.iter (fun id -> b.(id) <- b.(id) - 1) disturbed;
              b
            end
          in
          ( {
              disturbed;
              granted = outcome.Sched.Slot_state.granted;
              new_errors = outcome.Sched.Slot_state.new_errors;
            },
            { st = normalize st' budget'; budget = budget' } ))
        (moves_of node)

    let is_target label _ =
      match label with
      | Some m -> m.new_errors <> []
      | None -> false
  end) in
  let coverage =
    if not subsume then None
    else
      Some
        (Space.Coverage
           {
             split = abstract;
             ck_equal = ( = );
             ck_hash = Hashtbl.hash_param 1000 1000;
             covers;
           })
  in
  let r =
    Space.run ~order ~pool ~exact:(not subsume) ?coverage ?max_states
      ~max_states_check:`Pop ?deadline ~deadline_mask:1023
      ~target_check:`Generate
      ~on_edge:(fun m _ ->
        List.iter
          (fun (id, wt) -> if wt > max_wait.(id) then max_wait.(id) <- wt)
          m.granted)
      ~initial_peak:0 ~metrics_prefix:"dverify" initial
  in
  let s = r.Space.stats in
  let verdict =
    match r.Space.outcome with
    | Space.Completed -> Safe
    | Space.Found _ ->
      let steps = List.map (fun (m, nd) -> (m.disturbed, nd.st)) r.Space.trace in
      let failing =
        match List.rev r.Space.trace with
        | (m, _) :: _ -> m.new_errors
        | [] -> assert false (* the initial state is never an error *)
      in
      Unsafe { steps; failing }
    | Space.Exhausted (Search.Max_states cap) -> Undetermined (State_budget cap)
    | Space.Exhausted (Search.Deadline d) -> Undetermined (Deadline d)
  in
  if Obs.Trace_ctx.enabled () then begin
    Obs.Metric.count "dverify.prune_hits"
      (s.Search.dedup_hits + s.Search.cover_hits);
    match verdict with
    | Undetermined _ -> Obs.Metric.count "dverify.undetermined" 1
    | Safe | Unsafe _ -> ()
  end;
  {
    verdict;
    stats =
      {
        states = s.Search.states;
        transitions = s.Search.transitions;
        elapsed = s.Search.elapsed;
        max_wait;
      };
  }

let explore ?pool ?(order = `Bfs) ~policy ~subsume ~symmetry ~instances
    ?deadline ?max_states specs =
  (match deadline with
   | Some d when d <= 0. -> invalid_arg "Dverify: deadline must be positive"
   | _ -> ());
  (match max_states with
   | Some n when n < 1 -> invalid_arg "Dverify: max_states must be positive"
   | _ -> ());
  let pool = match pool with Some p -> p | None -> Par.Pool.default () in
  let order = match order with `Bfs -> Search.Bfs | `Dfs -> Search.Dfs in
  let part =
    if not symmetry then None
    else
      let p = orbit_partition specs in
      if Search.Symmetry.nontrivial p then Some p else None
  in
  Obs.Span.with_ "dverify" (fun () ->
      let r =
        explore_impl ~pool ~order ~policy ~subsume ~symmetry:part ~instances
          ~deadline ~max_states specs
      in
      match (part, r.verdict) with
      | None, _ | Some _, Undetermined _ -> r
      | Some p, Safe ->
        orbit_max_wait p r.stats.max_wait;
        r
      | Some _, Unsafe _ ->
        (* a quotient counterexample is real but may be a permuted twin
           of the one the exact engine reports; re-run without the
           quotient so trace, stats and pretty-printed output stay
           byte-identical to the reference engine *)
        explore_impl ~pool ~order ~policy ~subsume ~symmetry:None ~instances
          ~deadline ~max_states specs)

let screen ~policy specs =
  match Sched.Prefilter.decide ~policy specs with
  | Sched.Prefilter.Inconclusive -> None
  | Sched.Prefilter.Analytic_safe ->
    Some
      {
        verdict = Safe;
        stats =
          {
            states = 0;
            transitions = 0;
            elapsed = 0.;
            max_wait = Array.make (Array.length specs) (-1);
          };
      }
  | Sched.Prefilter.Analytic_unsafe w ->
    Some
      {
        verdict =
          Unsafe
            { steps = w.Sched.Prefilter.steps; failing = w.Sched.Prefilter.failing };
        stats =
          {
            states = 0;
            transitions = 0;
            elapsed = 0.;
            max_wait = Array.make (Array.length specs) (-1);
          };
      }

let verify ?pool ?order ?(policy = Sched.Slot_state.Eager_preempt)
    ?(mode = `Subsumption) ?(prefilter = false) ?(symmetry = false) ?deadline
    ?max_states specs =
  let exact () =
    match mode with
    | `Bfs ->
      explore ?pool ?order ~policy ~subsume:false ~symmetry ~instances:None
        ?deadline ?max_states specs
    | `Subsumption ->
      explore ?pool ?order ~policy ~subsume:true ~symmetry ~instances:None
        ?deadline ?max_states specs
  in
  if not prefilter then exact ()
  else match screen ~policy specs with Some r -> r | None -> exact ()

let verify_bounded ?pool ?order ?(policy = Sched.Slot_state.Eager_preempt)
    ?(symmetry = false) ?deadline ?max_states ~instances specs =
  if instances < 1 then invalid_arg "Dverify.verify_bounded: instances < 1";
  explore ?pool ?order ~policy ~subsume:true ~symmetry
    ~instances:(Some instances) ?deadline ?max_states specs

let pp_counterexample specs ppf (ce : counterexample) =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun k (disturbed, st) ->
      let arrivals =
        match disturbed with
        | [] -> ""
        | ids ->
          Printf.sprintf "  <- disturb %s"
            (String.concat ","
               (List.map (fun id -> specs.(id).Sched.Appspec.name) ids))
      in
      Format.fprintf ppf "t=%-3d %a%s@," k (Sched.Slot_state.pp specs) st
        arrivals)
    ce.steps;
  Format.fprintf ppf "miss: %s@]"
    (String.concat ", "
       (List.map (fun id -> specs.(id).Sched.Appspec.name) ce.failing))

let pp_verdict specs ppf = function
  | Safe -> Format.pp_print_string ppf "safe: no application can miss T*_w"
  | Unsafe { failing; steps } ->
    Format.fprintf ppf "unsafe: %s misses T*_w after %d samples"
      (String.concat ", "
         (List.map (fun id -> specs.(id).Sched.Appspec.name) failing))
      (List.length steps)
  | Undetermined reason ->
    Format.fprintf ppf "undetermined: %a" pp_reason reason
