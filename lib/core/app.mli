(** Binding a control application to its scheduler-facing timing
    abstraction: the bridge between the control layer (plant, gains,
    requirement) and the scheduling/verification layer
    ({!Sched.Appspec}). *)

type t = {
  name : string;
  plant : Control.Plant.t;
  gains : Control.Switched.gains;
  r : int;  (** minimum disturbance inter-arrival, samples *)
  j_star : int;  (** settling budget, samples *)
  table : Dwell.t;  (** precomputed dwell tables *)
}

val make :
  ?cache:Dwell.cache ->
  ?threshold:float ->
  ?stride:int ->
  name:string ->
  plant:Control.Plant.t ->
  gains:Control.Switched.gains ->
  r:int ->
  j_star:int ->
  unit ->
  t
(** Compute the dwell tables and package the application.  [cache]
    memoises (and, with a persistent backing, reloads) the table
    computation.
    @raise Dwell.Infeasible when the requirement cannot be met.
    @raise Invalid_argument when [r] is too small for the sporadic
    model (it must exceed every wait + maximum dwell, and the paper
    additionally assumes [J* < r]), or when [stride > 1]: strided
    tables are analysis-only — the scheduler bridge needs one row per
    wait. *)

val spec : t -> id:int -> Sched.Appspec.t
(** The scheduler-facing view under a dense per-slot index. *)

val t_w_max : t -> int
val pp : Format.formatter -> t -> unit
