(** Pre-computation of the strategy's timing tables (paper Sec. 3).

    For each possible wait time [T_w] the closed-loop simulation of all
    switching sequences yields:

    - [T⁻_dw(T_w)] — the minimum dwell time in [MT] such that {e every}
      dwell between it and [T⁺_dw(T_w)] meets the settling budget
      [J ≤ J*] (the suffix-safe reading of the paper's definition:
      preemption may strike at any admissible dwell, so feasibility
      must hold across the whole window — on the paper's case study
      the two readings coincide);
    - [T⁺_dw(T_w)] — the dwell time beyond which staying in [MT] no
      longer improves the settling time;
    - [T*_w] — the largest wait for which any dwell meets the budget.

    These finitely many integers abstract the whole control dynamics
    for the scheduling/verification layer. *)

type t = {
  j_star : int;  (** requirement, samples *)
  jt : int;  (** settling with a dedicated TT slot *)
  je : int;  (** settling on ET only *)
  t_w_max : int;  (** T*_w *)
  t_dw_min : int array;  (** index [T_w] in [0 .. t_w_max] *)
  t_dw_max : int array;  (** same indexing *)
  j_at_min : int array;  (** J when dwelling exactly [t_dw_min.(T_w)] *)
  j_at_max : int array;  (** J when dwelling exactly [t_dw_max.(T_w)] *)
}

exception Infeasible of string
(** Raised by {!compute} when the requirement cannot be met at all
    ([J_T > J*]), is trivially met without TT ([J_E <= J*]), or a
    closed-loop mode is unstable. *)

val compute :
  ?pool:Par.Pool.t ->
  ?threshold:float ->
  ?stride:int ->
  Control.Plant.t ->
  Control.Switched.gains ->
  j_star:int ->
  t
(** Simulate every switching combination with wait granularity [stride]
    (default 1; the paper's conservativeness/memory trade-off) and
    build the table.  With [pool] (default {!Par.Pool.default}) sized
    above 1, the per-[T_w] rows are simulated in parallel chunks and
    merged in wait order — the table is byte-identical to the
    sequential scan at any pool size.  @raise Infeasible (see above). *)

val j_of : t -> Control.Plant.t -> Control.Switched.gains -> t_w:int -> t_dw:int -> int option
(** Re-simulate one combination (for spot checks and plots). *)

val surface :
  ?threshold:float ->
  Control.Plant.t ->
  Control.Switched.gains ->
  t_w_max:int ->
  t_dw_max:int ->
  (int * int * int option) list
(** The raw settling surface [J(T_w, T_dw)] of Fig. 3, in samples;
    [None] marks combinations that never settle within the horizon. *)

val deadline : t -> t_w:int -> int
(** [D = T*_w - T_w], the slack the arbiter sorts by (Sec. 4). *)

val validate : t -> (unit, string) result
(** Structural sanity: array lengths match [t_w_max + 1], minima do not
    exceed maxima, settling values honour [j_star]. *)

val pp : Format.formatter -> t -> unit
