(** Pre-computation of the strategy's timing tables (paper Sec. 3).

    For each possible wait time [T_w] the closed-loop simulation of all
    switching sequences yields:

    - [T⁻_dw(T_w)] — the minimum dwell time in [MT] such that {e every}
      dwell between it and [T⁺_dw(T_w)] meets the settling budget
      [J ≤ J*] (the suffix-safe reading of the paper's definition:
      preemption may strike at any admissible dwell, so feasibility
      must hold across the whole window — on the paper's case study
      the two readings coincide);
    - [T⁺_dw(T_w)] — the dwell time beyond which staying in [MT] no
      longer improves the settling time;
    - [T*_w] — the largest wait for which any dwell meets the budget.

    These finitely many integers abstract the whole control dynamics
    for the scheduling/verification layer. *)

type t = {
  j_star : int;  (** requirement, samples *)
  jt : int;  (** settling with a dedicated TT slot *)
  je : int;  (** settling on ET only *)
  t_w_max : int;  (** T*_w, an actual wait in samples *)
  stride : int;  (** wait granularity the table was computed with *)
  t_dw_min : int array;  (** row [i] holds wait [T_w = i * stride] *)
  t_dw_max : int array;  (** same indexing *)
  j_at_min : int array;  (** J when dwelling exactly [t_dw_min.(i)] *)
  j_at_max : int array;  (** J when dwelling exactly [t_dw_max.(i)] *)
}
(** Rows are stored one per {e simulated} wait: with [stride > 1] the
    arrays are shorter than [t_w_max + 1] and the raw wait is {e not} a
    valid index.  Prefer {!dw_min}/{!dw_max}/{!j_min}/{!j_max} (which
    reject off-grid waits) over direct array indexing. *)

exception Infeasible of string
(** Raised by {!compute} when the requirement cannot be met at all
    ([J_T > J*]), is trivially met without TT ([J_E <= J*]), or a
    closed-loop mode is unstable. *)

type cache = t Par.Vcache.t
(** Content-addressed table cache: {!fingerprint} → table.  With a
    persistent backing the pre-computation is skipped across process
    runs. *)

val create_cache : ?backing:t Par.Vcache.backing -> unit -> cache

val fingerprint :
  ?threshold:float ->
  ?stride:int ->
  Control.Plant.t ->
  Control.Switched.gains ->
  j_star:int ->
  string
(** Injective serialisation of every input {!compute} depends on
    (plant matrices, gains, sampling period, threshold, stride, j_star);
    floats are rendered in lossless [%h] notation. *)

val compute :
  ?pool:Par.Pool.t ->
  ?cache:cache ->
  ?threshold:float ->
  ?stride:int ->
  Control.Plant.t ->
  Control.Switched.gains ->
  j_star:int ->
  t
(** Simulate every switching combination with wait granularity [stride]
    (default 1; the paper's conservativeness/memory trade-off) and
    build the table.  With [pool] (default {!Par.Pool.default}) sized
    above 1, the per-[T_w] rows are simulated in parallel chunks and
    merged in wait order — the table is byte-identical to the
    sequential scan at any pool size.  With [cache], the result is
    memoised under {!fingerprint} (infeasible computations raise and
    are never cached).  @raise Infeasible (see above). *)

val index_of_wait : t -> t_w:int -> int option
(** The row index holding wait [t_w], or [None] when [t_w] is negative,
    exceeds [t_w_max], or falls between stride grid points. *)

val dw_min : t -> t_w:int -> int
(** [T⁻_dw(t_w)].  @raise Invalid_argument on off-grid waits — the
    arrays are indexed by row, not by wait, whenever [stride > 1]. *)

val dw_max : t -> t_w:int -> int
val j_min : t -> t_w:int -> int
val j_max : t -> t_w:int -> int

val waits : t -> int list
(** The simulated waits, in order: [0; stride; ...; t_w_max]. *)

val j_of : t -> Control.Plant.t -> Control.Switched.gains -> t_w:int -> t_dw:int -> int option
(** Re-simulate one combination (for spot checks and plots). *)

val surface :
  ?threshold:float ->
  Control.Plant.t ->
  Control.Switched.gains ->
  t_w_max:int ->
  t_dw_max:int ->
  (int * int * int option) list
(** The raw settling surface [J(T_w, T_dw)] of Fig. 3, in samples;
    [None] marks combinations that never settle within the horizon. *)

val deadline : t -> t_w:int -> int
(** [D = T*_w - T_w], the slack the arbiter sorts by (Sec. 4) — a
    quantity in samples, valid for any wait in [0..t_w_max] whatever
    the stride.  @raise Invalid_argument outside that range. *)

val validate : t -> (unit, string) result
(** Structural sanity: array lengths match [t_w_max / stride + 1] and
    [t_w_max] sits on the stride grid, minima do not exceed maxima,
    settling values honour [j_star]. *)

val pp : Format.formatter -> t -> unit
