(* the salt names every run-invariant input a cached value depends on:
   bump the engine tag whenever Dverify/Dwell semantics change (the
   prefilter/symmetry hot-path rework is "dverify-2 prefilter-1": the
   verdicts are provably unchanged, but verdict provenance now spans
   the analytic screen, so pre-screen stores are retired wholesale
   rather than audited); the codec version rides along so a format
   change invalidates too *)
let engine_salt = Printf.sprintf "dverify-2 prefilter-1 codec-%d" Table_codec.version

type t = {
  store : Store.t;
  mapping : Mapping.cache Lazy.t;
  dwell : Dwell.cache Lazy.t;
}

(* key prefixes keep the two artifact namespaces disjoint even though
   both fingerprints are injective on their own *)
let verdict_key fp = "v:" ^ fp
let table_key fp = "d:" ^ fp

let obs_hit () =
  if Obs.Trace_ctx.enabled () then Obs.Metric.count "store.hits" 1

let obs_append () =
  if Obs.Trace_ctx.enabled () then Obs.Metric.count "store.appends" 1

let verdict_to_string = function
  | `Safe -> "safe"
  | `Unsafe -> "unsafe"
  | `Undetermined _ -> invalid_arg "Pcache: undetermined is not persistable"

let verdict_of_string = function
  | "safe" -> Some `Safe
  | "unsafe" -> Some `Unsafe
  | _ -> None

let mapping_backing store : Mapping.verdict Par.Vcache.backing =
  {
    load =
      (fun fp ->
        match Option.bind (Store.find store (verdict_key fp)) verdict_of_string with
        | Some v ->
          obs_hit ();
          Some (v : Mapping.verdict)
        | None -> None);
    save =
      (fun fp v ->
        match v with
        | `Undetermined _ -> ()
        | (`Safe | `Unsafe) as v ->
          Store.add store (verdict_key fp) (verdict_to_string v);
          obs_append ());
  }

let dwell_backing store : Dwell.t Par.Vcache.backing =
  {
    load =
      (fun fp ->
        match Store.find store (table_key fp) with
        | None -> None
        | Some s -> (
          match Table_codec.table_of_string s with
          | Ok t ->
            obs_hit ();
            Some t
          | Error _ -> None));
    save =
      (fun fp t ->
        Store.add store (table_key fp) (Table_codec.table_to_string t);
        obs_append ());
  }

let open_ ~path =
  match Store.open_ ~path ~salt:engine_salt with
  | Error _ as e -> e
  | Ok store ->
    if Obs.Trace_ctx.enabled () then begin
      let s = Store.stats store in
      Obs.Metric.set_gauge "store.entries" (float_of_int s.Store.entries);
      if s.Store.stale_dropped > 0 then
        Obs.Metric.count "store.stale_dropped" s.Store.stale_dropped;
      if s.Store.torn_dropped > 0 then
        Obs.Metric.count "store.torn_dropped" s.Store.torn_dropped
    end;
    Ok
      {
        store;
        mapping =
          lazy (Mapping.create_cache ~backing:(mapping_backing store) ());
        dwell = lazy (Dwell.create_cache ~backing:(dwell_backing store) ());
      }

let mapping_cache t = Lazy.force t.mapping
let dwell_cache t = Lazy.force t.dwell

let record_verdict t specs v =
  match v with
  | `Undetermined _ -> ()
  | (`Safe | `Unsafe) as v ->
    Store.add t.store
      (verdict_key (Mapping.fingerprint specs))
      (verdict_to_string v);
    obs_append ()

let find_verdict t specs : Mapping.verdict option =
  Option.bind
    (Store.find t.store (verdict_key (Mapping.fingerprint specs)))
    verdict_of_string

let store t = t.store
let stats t = Store.stats t.store
let read_only t = Store.read_only t.store

type hit_stats = { mem : int; disk : int; engine : int }

(* aggregated over both backed caches; forcing a lazy cache just to
   read zero counters would be silly, so unforced ones count nothing *)
let hit_stats t =
  let m, d, e =
    if Lazy.is_val t.mapping then
      let c = Lazy.force t.mapping in
      (Par.Vcache.hits c, Par.Vcache.disk_hits c, Par.Vcache.misses c)
    else (0, 0, 0)
  in
  let m', d', e' =
    if Lazy.is_val t.dwell then
      let c = Lazy.force t.dwell in
      (Par.Vcache.hits c, Par.Vcache.disk_hits c, Par.Vcache.misses c)
    else (0, 0, 0)
  in
  { mem = m + m'; disk = d + d'; engine = e + e' }

let close t = Store.close t.store
