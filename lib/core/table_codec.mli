(** Memory-efficient storage of dwell-time tables.

    The paper notes (Sec. 5) that the [T⁻_dw]/[T⁺_dw] arrays "can be
    stored in a memory-efficient way exploiting the fact that they take
    only a few values" — relevant because the lookup tables live on a
    resource-constrained ECU.  This module provides the run-length
    encoding that remark suggests, plus a compact textual serialisation
    for persisting whole tables. *)

type rle = (int * int) list
(** [(value, repeat)] pairs, repeats >= 1, in order. *)

val encode : int array -> rle
val decode : rle -> int array

val encoded_words : rle -> int
(** Storage cost of the encoding (two machine words per run). *)

val distinct_values : int array -> int

val dictionary_words : int array -> int
(** Storage cost (64-bit words) of a dictionary encoding: one word per
    distinct value plus [ceil(log2 k)] bits per entry — the encoding
    the paper's "take only a few values" remark suggests, which also
    handles alternating tables that defeat run-length coding. *)

val version : int
(** Current serialisation format.  Format 2 added a version tag and the
    table's [stride] to the header; format-1 strings (no tag, no
    stride) still decode, as stride 1. *)

val table_to_string : Dwell.t -> string
(** One-line textual serialisation of a full dwell table (header
    integers plus run-length encoded arrays), in the current format. *)

val table_of_string : string -> (Dwell.t, string) result
(** Inverse of {!table_to_string}; accepts format 1 and 2; validates
    with {!Dwell.validate}. *)

val compression_ratio : Dwell.t -> float
(** Plain words divided by encoded words for the two dwell arrays (the
    only ones an ECU must store online); > 1 means the encoding saves
    memory. *)
