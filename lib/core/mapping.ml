type verdict = [ `Safe | `Unsafe | `Undetermined of string ]

type verifier = Sched.Appspec.t array -> verdict

type slot = { index : int; apps : App.t list }

type outcome = { slots : slot list; verifications : int; undetermined : int }

let t_dw_min_star (a : App.t) =
  Array.fold_left Int.max 0 a.App.table.Dwell.t_dw_min

let sort_order apps =
  let key (a : App.t) = (App.t_w_max a, t_dw_min_star a, a.App.name) in
  List.sort (fun a b -> compare (key a) (key b)) apps

let specs_of_group group =
  Array.of_list (List.mapi (fun i a -> App.spec a ~id:i) group)

(* the default verifier parameterised by the engine's frontier order:
   Safe/Unsafe is order-independent, so [`Dfs] only changes the shape
   of the search, never the packing.  Symmetry quotienting is likewise
   verdict-preserving, so enabling it can never change a packing. *)
let ordered_verifier ?(symmetry = false) order specs : verdict =
  match
    (Dverify.verify ~order ~mode:`Subsumption ~symmetry specs).Dverify.verdict
  with
  | Dverify.Safe -> `Safe
  | Dverify.Unsafe _ -> `Unsafe
  | Dverify.Undetermined reason ->
    `Undetermined (Format.asprintf "%a" Dverify.pp_reason reason)

let default_verifier specs = ordered_verifier `Bfs specs

(* the analytic screen as a partial verdict: both sides are sound
   (Prefilter's accept implies engine-Safe, its witness implies
   engine-Unsafe), so substituting a screened verdict for an engine run
   can never change a packing, a verification count or the monotone
   pruning in [optimal] — only skip the exploration.  Screened verdicts
   deliberately bypass the cache: recomputing them is cheaper than a
   table lookup, and they would otherwise crowd the persistent store
   with entries the screen can always regenerate. *)
let analytic_screen specs : verdict option =
  match Sched.Prefilter.decide specs with
  | Sched.Prefilter.Analytic_safe -> Some `Safe
  | Sched.Prefilter.Analytic_unsafe _ -> Some `Unsafe
  | Sched.Prefilter.Inconclusive -> None

(* graceful-degradation verifier: exact subsumption first; when its
   budget runs out, retry with the paper's bounded-instance
   acceleration.  A bounded counterexample is a real counterexample, so
   bounded-Unsafe is definitive; bounded-Safe is only an
   under-approximation and stays Undetermined unless the caller opts
   into accepting it. *)
let escalating ?stage_deadline ?max_states ?(instances = 2)
    ?(accept_bounded = false) () specs : verdict =
  match
    (Dverify.verify ~mode:`Subsumption ?deadline:stage_deadline ?max_states
       specs)
      .Dverify.verdict
  with
  | Dverify.Safe -> `Safe
  | Dverify.Unsafe _ -> `Unsafe
  | Dverify.Undetermined exact_reason -> (
    if Obs.Trace_ctx.enabled () then Obs.Metric.count "mapping.escalations" 1;
    match
      (Dverify.verify_bounded ?deadline:stage_deadline ?max_states ~instances
         specs)
        .Dverify.verdict
    with
    | Dverify.Unsafe _ -> `Unsafe
    | Dverify.Safe when accept_bounded -> `Safe
    | Dverify.Safe ->
      `Undetermined
        (Format.asprintf
           "exact search gave up (%a); bounded search (%d instances) found no \
            error but is an under-approximation"
           Dverify.pp_reason exact_reason instances)
    | Dverify.Undetermined bounded_reason ->
      `Undetermined
        (Format.asprintf "exact: %a; bounded (%d instances): %a"
           Dverify.pp_reason exact_reason instances Dverify.pp_reason
           bounded_reason))

(* ------------------------------------------------------------------ *)
(* Content-addressed verdict cache.  The key is a canonical (name-
   sorted) serialisation of the group's timing parameters, so the same
   subset probed again — by the other mapper, by an escalating retry,
   or by a speculative parallel probe — reuses the verdict instead of
   re-running reachability. *)

type cache = verdict Par.Vcache.t

let create_cache ?backing () = Par.Vcache.create ~label:"verdict" ?backing ()
let cache_stats c = (Par.Vcache.hits c + Par.Vcache.disk_hits c, Par.Vcache.misses c)

let fingerprint specs =
  (* Injective canonical key.  The name — the only field an adversary
     (or an unlucky operator) controls — is length-prefixed, so a name
     containing '|', ',' or ';' cannot re-align one group's
     serialisation onto another's: after "<len>:<name>" the remaining
     fields are purely decimal digits, '-', ',' and '|', and the entry
     terminator ';' occurs in none of them, so the whole string parses
     back unambiguously.  (The previous delimiter-joined scheme was
     injectable: name "A|1|3|4|9;B" aliased the two-app group {A, B} —
     see the regression test in test/test_store.ml.) *)
  let ints a = String.concat "," (List.map string_of_int (Array.to_list a)) in
  let entry (s : Sched.Appspec.t) =
    Printf.sprintf "%d:%s|%d|%s|%s|%d"
      (String.length s.Sched.Appspec.name)
      s.Sched.Appspec.name s.Sched.Appspec.t_w_max
      (ints s.Sched.Appspec.t_dw_min)
      (ints s.Sched.Appspec.t_dw_max)
      s.Sched.Appspec.r
  in
  let entries = List.sort compare (List.map entry (Array.to_list specs)) in
  Printf.sprintf "%d;%s" (List.length entries) (String.concat ";" entries)

let apply_verifier ?cache verifier specs =
  match cache with
  | None -> (verifier specs, `Miss)
  | Some c ->
    Par.Vcache.find_or_add' c (fingerprint specs) (fun () -> verifier specs)

(* a probe with its latency and provenance, for the verdict histogram.
   [screen], when present, is consulted ahead of both cache levels and
   the engine *)
let timed_probe ?cache ?screen verifier specs =
  let t0 = Obs.Clock.now () in
  match (match screen with Some s -> s specs | None -> None) with
  | Some v -> (v, Obs.Clock.now () -. t0, `Screen)
  | None ->
    let v, src = apply_verifier ?cache verifier specs in
    (v, Obs.Clock.now () -. t0, (src :> [ `Mem | `Disk | `Miss | `Screen ]))

(* cache hits and analytic screens get their own counters and stay out
   of the latency histogram: a ~0 s table lookup or closed-form test is
   not an engine run, and mixing the two made mapping.verdict_s useless
   for spotting slow groups *)
let probe_metrics dt src =
  if Obs.Trace_ctx.enabled () then begin
    Obs.Metric.count "mapping.model_checks" 1;
    match src with
    | `Miss -> Obs.Metric.observe_value "mapping.verdict_s" dt
    | `Mem | `Disk -> Obs.Metric.count "mapping.cache_hits" 1
    | `Screen -> Obs.Metric.count "mapping.screened" 1
  end

let checked_verdict ?cache ?screen verifier specs =
  let v, dt, src = timed_probe ?cache ?screen verifier specs in
  probe_metrics dt src;
  v

(* one cache-aware safety question with its provenance, for callers
   (the serve layer) that answer requests incrementally and must report
   where each verdict came from.  Prefilter defaults OFF here — the
   one-shot `verify` command runs the engine unscreened, and serve must
   answer byte-identically to it. *)
let probe ?cache ?(prefilter = false) ?(symmetry = true) specs =
  let screen = if prefilter then Some analytic_screen else None in
  let v, dt, src =
    timed_probe ?cache ?screen (ordered_verifier ~symmetry `Bfs) specs
  in
  probe_metrics dt src;
  (v, src)

let first_fit ?pool ?cache ?(order = `Bfs) ?verifier ?(prefilter = true)
    ?(symmetry = true) ?(presorted = false) apps =
  (* the screen's soundness argument is tied to the default engine's
     semantics, so a caller-supplied verifier switches it off *)
  let screen =
    match verifier with
    | Some _ -> None
    | None -> if prefilter then Some analytic_screen else None
  in
  let verifier =
    match verifier with Some v -> v | None -> ordered_verifier ~symmetry order
  in
  Obs.Span.with_ "mapping.first_fit" @@ fun () ->
  let pool = match pool with Some p -> p | None -> Par.Pool.default () in
  let apps = if presorted then apps else sort_order apps in
  let count = ref 0 and undetermined = ref 0 in
  (* account for one *logical* probe — a group the sequential scan
     would have verified.  Cache hits count too: [verifications] stays
     the number of safety questions asked, not engine runs performed,
     so the reported outcome is identical at any jobs count and any
     cache warmth. *)
  let consume (v, dt, src) =
    incr count;
    Obs.Metric.count "mapping.groups_tried" 1;
    probe_metrics dt src;
    (* an undetermined group is conservatively treated as not fitting:
       the mapping only ever packs groups proved safe *)
    match v with
    | `Safe -> true
    | `Unsafe -> false
    | `Undetermined _ ->
      incr undetermined;
      false
  in
  let probe group app =
    timed_probe ?cache ?screen verifier (specs_of_group (group @ [ app ]))
  in
  let place slots app =
    match slots with
    | _ :: _ :: _ when Par.Pool.jobs pool > 1 ->
      (* probe every candidate group of this round concurrently, then
         replay the first-fit scan over the collected verdicts in slot
         order.  Accounting covers exactly the prefix a sequential run
         would have probed; the extra speculative verdicts are
         discarded (and, with a cache, kept for later rounds). *)
      let results = Par.Pool.map_list pool (fun g -> probe g app) slots in
      let rec scan groups results =
        match (groups, results) with
        | [], [] -> None
        | group :: rest, r :: more ->
          if consume r then Some ((group @ [ app ]) :: rest)
          else Option.map (fun t -> group :: t) (scan rest more)
        | _ -> assert false
      in
      (match scan slots results with
       | Some slots -> slots
       | None -> slots @ [ [ app ] ])
    | _ ->
      let rec go = function
        | [] -> None
        | group :: rest ->
          if consume (probe group app) then Some ((group @ [ app ]) :: rest)
          else Option.map (fun r -> group :: r) (go rest)
      in
      (match go slots with Some slots -> slots | None -> slots @ [ [ app ] ])
  in
  let groups = List.fold_left place [] apps in
  {
    slots = List.mapi (fun index apps -> { index; apps }) groups;
    verifications = !count;
    undetermined = !undetermined;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>%d slot(s), %d verification(s)%s@,%a@]"
    (List.length t.slots) t.verifications
    (if t.undetermined = 0 then ""
     else Printf.sprintf " (%d undetermined, treated unsafe)" t.undetermined)
    (Format.pp_print_list (fun ppf slot ->
         Format.fprintf ppf "S%d: {%s}" (slot.index + 1)
           (String.concat ", " (List.map (fun a -> a.App.name) slot.apps))))
    t.slots

(* ------------------------------------------------------------------ *)
(* Exact minimisation.  Safety of a subset is computed lazily with
   monotone pruning: a subset with an unsafe subset is unsafe without
   calling the verifier.  The minimum partition into safe subsets is a
   DP over bitmasks. *)

let optimal ?cache ?(order = `Bfs) ?verifier ?(prefilter = true)
    ?(symmetry = true) apps =
  let screen =
    match verifier with
    | Some _ -> None
    | None -> if prefilter then Some analytic_screen else None
  in
  let verifier =
    match verifier with Some v -> v | None -> ordered_verifier ~symmetry order
  in
  Obs.Span.with_ "mapping.optimal" @@ fun () ->
  let apps = Array.of_list apps in
  let n = Array.length apps in
  if n = 0 then { slots = []; verifications = 0; undetermined = 0 }
  else if n > 16 then invalid_arg "Mapping.optimal: too many applications"
  else begin
    let full = (1 lsl n) - 1 in
    let members mask =
      List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init n (fun i -> i))
    in
    let count = ref 0 and undetermined = ref 0 in
    let safety = Array.make (full + 1) `Unknown in
    (* memoised, monotone-pruned safety of a subset; an undetermined
       verdict is cached as unsafe — conservative: no group joins a
       slot without a safety proof *)
    let rec safe mask =
      match safety.(mask) with
      | `Safe -> true
      | `Unsafe -> false
      | `Unknown ->
        Obs.Metric.count "mapping.groups_tried" 1;
        let ids = members mask in
        let result =
          if List.length ids <= 1 then true
          else if
            (* monotone pruning: any unsafe strict subset decides it *)
            List.exists
              (fun i ->
                let sub = mask land lnot (1 lsl i) in
                safety.(sub) = `Unsafe
                || (List.length (members sub) > 1 && not (safe sub)))
              ids
          then false
          else begin
            incr count;
            let group = List.map (fun i -> apps.(i)) ids in
            match
              checked_verdict ?cache ?screen verifier (specs_of_group group)
            with
            | `Safe -> true
            | `Unsafe -> false
            | `Undetermined _ ->
              incr undetermined;
              false
          end
        in
        safety.(mask) <- (if result then `Safe else `Unsafe);
        result
    in
    (* DP over bitmasks: fewest safe parts covering [mask] *)
    let best = Array.make (full + 1) max_int in
    let choice = Array.make (full + 1) 0 in
    best.(0) <- 0;
    for mask = 1 to full do
      (* iterate over submasks that contain the lowest set bit (fixing
         one element avoids symmetric permutations) *)
      let low = mask land -mask in
      let sub = ref mask in
      while !sub > 0 do
        if !sub land low <> 0 && safe !sub then begin
          let rest = mask lxor !sub in
          if best.(rest) <> max_int && best.(rest) + 1 < best.(mask) then begin
            best.(mask) <- best.(rest) + 1;
            choice.(mask) <- !sub
          end
        end;
        sub := (!sub - 1) land mask
      done
    done;
    let rec rebuild mask acc =
      if mask = 0 then List.rev acc
      else rebuild (mask lxor choice.(mask)) (members choice.(mask) :: acc)
    in
    let groups = rebuild full [] in
    {
      slots =
        List.mapi
          (fun index ids ->
            { index; apps = List.map (fun i -> apps.(i)) ids })
          groups;
      verifications = !count;
      undetermined = !undetermined;
    }
  end
