type verdict = [ `Safe | `Unsafe | `Undetermined of string ]

type verifier = Sched.Appspec.t array -> verdict

type slot = { index : int; apps : App.t list }

type outcome = { slots : slot list; verifications : int; undetermined : int }

let t_dw_min_star (a : App.t) =
  Array.fold_left Int.max 0 a.App.table.Dwell.t_dw_min

let sort_order apps =
  let key (a : App.t) = (App.t_w_max a, t_dw_min_star a, a.App.name) in
  List.sort (fun a b -> compare (key a) (key b)) apps

let specs_of_group group =
  Array.of_list (List.mapi (fun i a -> App.spec a ~id:i) group)

let default_verifier specs : verdict =
  match (Dverify.verify ~mode:`Subsumption specs).Dverify.verdict with
  | Dverify.Safe -> `Safe
  | Dverify.Unsafe _ -> `Unsafe
  | Dverify.Undetermined reason ->
    `Undetermined (Format.asprintf "%a" Dverify.pp_reason reason)

(* graceful-degradation verifier: exact subsumption first; when its
   budget runs out, retry with the paper's bounded-instance
   acceleration.  A bounded counterexample is a real counterexample, so
   bounded-Unsafe is definitive; bounded-Safe is only an
   under-approximation and stays Undetermined unless the caller opts
   into accepting it. *)
let escalating ?stage_deadline ?max_states ?(instances = 2)
    ?(accept_bounded = false) () specs : verdict =
  match
    (Dverify.verify ~mode:`Subsumption ?deadline:stage_deadline ?max_states
       specs)
      .Dverify.verdict
  with
  | Dverify.Safe -> `Safe
  | Dverify.Unsafe _ -> `Unsafe
  | Dverify.Undetermined exact_reason -> (
    if Obs.Trace_ctx.enabled () then Obs.Metric.count "mapping.escalations" 1;
    match
      (Dverify.verify_bounded ?deadline:stage_deadline ?max_states ~instances
         specs)
        .Dverify.verdict
    with
    | Dverify.Unsafe _ -> `Unsafe
    | Dverify.Safe when accept_bounded -> `Safe
    | Dverify.Safe ->
      `Undetermined
        (Format.asprintf
           "exact search gave up (%a); bounded search (%d instances) found no \
            error but is an under-approximation"
           Dverify.pp_reason exact_reason instances)
    | Dverify.Undetermined bounded_reason ->
      `Undetermined
        (Format.asprintf "exact: %a; bounded (%d instances): %a"
           Dverify.pp_reason exact_reason instances Dverify.pp_reason
           bounded_reason))

(* a verifier call with its latency fed to the per-group histogram *)
let checked_verdict verifier specs =
  if not (Obs.Trace_ctx.enabled ()) then verifier specs
  else begin
    Obs.Metric.count "mapping.model_checks" 1;
    let t0 = Unix.gettimeofday () in
    let v = verifier specs in
    Obs.Metric.observe_value "mapping.verdict_s" (Unix.gettimeofday () -. t0);
    v
  end

let first_fit ?(verifier = default_verifier) ?(presorted = false) apps =
  Obs.Span.with_ "mapping.first_fit" @@ fun () ->
  let apps = if presorted then apps else sort_order apps in
  let count = ref 0 and undetermined = ref 0 in
  let fits group app =
    incr count;
    Obs.Metric.count "mapping.groups_tried" 1;
    (* an undetermined group is conservatively treated as not fitting:
       the mapping only ever packs groups proved safe *)
    match checked_verdict verifier (specs_of_group (group @ [ app ])) with
    | `Safe -> true
    | `Unsafe -> false
    | `Undetermined _ ->
      incr undetermined;
      false
  in
  let place slots app =
    let rec go = function
      | [] -> None
      | group :: rest ->
        if fits group app then Some ((group @ [ app ]) :: rest)
        else Option.map (fun r -> group :: r) (go rest)
    in
    match go slots with Some slots -> slots | None -> slots @ [ [ app ] ]
  in
  let groups = List.fold_left place [] apps in
  {
    slots = List.mapi (fun index apps -> { index; apps }) groups;
    verifications = !count;
    undetermined = !undetermined;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>%d slot(s), %d verification(s)%s@,%a@]"
    (List.length t.slots) t.verifications
    (if t.undetermined = 0 then ""
     else Printf.sprintf " (%d undetermined, treated unsafe)" t.undetermined)
    (Format.pp_print_list (fun ppf slot ->
         Format.fprintf ppf "S%d: {%s}" (slot.index + 1)
           (String.concat ", " (List.map (fun a -> a.App.name) slot.apps))))
    t.slots

(* ------------------------------------------------------------------ *)
(* Exact minimisation.  Safety of a subset is computed lazily with
   monotone pruning: a subset with an unsafe subset is unsafe without
   calling the verifier.  The minimum partition into safe subsets is a
   DP over bitmasks. *)

let optimal ?(verifier = default_verifier) apps =
  Obs.Span.with_ "mapping.optimal" @@ fun () ->
  let apps = Array.of_list apps in
  let n = Array.length apps in
  if n = 0 then { slots = []; verifications = 0; undetermined = 0 }
  else if n > 16 then invalid_arg "Mapping.optimal: too many applications"
  else begin
    let full = (1 lsl n) - 1 in
    let members mask =
      List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init n (fun i -> i))
    in
    let count = ref 0 and undetermined = ref 0 in
    let safety = Array.make (full + 1) `Unknown in
    (* memoised, monotone-pruned safety of a subset; an undetermined
       verdict is cached as unsafe — conservative: no group joins a
       slot without a safety proof *)
    let rec safe mask =
      match safety.(mask) with
      | `Safe -> true
      | `Unsafe -> false
      | `Unknown ->
        Obs.Metric.count "mapping.groups_tried" 1;
        let ids = members mask in
        let result =
          if List.length ids <= 1 then true
          else if
            (* monotone pruning: any unsafe strict subset decides it *)
            List.exists
              (fun i ->
                let sub = mask land lnot (1 lsl i) in
                safety.(sub) = `Unsafe
                || (List.length (members sub) > 1 && not (safe sub)))
              ids
          then false
          else begin
            incr count;
            let group = List.map (fun i -> apps.(i)) ids in
            match checked_verdict verifier (specs_of_group group) with
            | `Safe -> true
            | `Unsafe -> false
            | `Undetermined _ ->
              incr undetermined;
              false
          end
        in
        safety.(mask) <- (if result then `Safe else `Unsafe);
        result
    in
    (* DP over bitmasks: fewest safe parts covering [mask] *)
    let best = Array.make (full + 1) max_int in
    let choice = Array.make (full + 1) 0 in
    best.(0) <- 0;
    for mask = 1 to full do
      (* iterate over submasks that contain the lowest set bit (fixing
         one element avoids symmetric permutations) *)
      let low = mask land -mask in
      let sub = ref mask in
      while !sub > 0 do
        if !sub land low <> 0 && safe !sub then begin
          let rest = mask lxor !sub in
          if best.(rest) <> max_int && best.(rest) + 1 < best.(mask) then begin
            best.(mask) <- best.(rest) + 1;
            choice.(mask) <- !sub
          end
        end;
        sub := (!sub - 1) land mask
      done
    done;
    let rec rebuild mask acc =
      if mask = 0 then List.rev acc
      else rebuild (mask lxor choice.(mask)) (members choice.(mask) :: acc)
    in
    let groups = rebuild full [] in
    {
      slots =
        List.mapi
          (fun index ids ->
            { index; apps = List.map (fun i -> apps.(i)) ids })
          groups;
      verifications = !count;
      undetermined = !undetermined;
    }
  end
