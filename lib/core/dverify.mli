(** Exact discrete-time verification of a slot group.

    The paper model-checks a network of timed automata in UPPAAL.  As
    it observes, every event in the system happens at a sample boundary
    and all timing variables range over small finite sets, so the
    reachable behaviour is a finite transition system over
    {!Sched.Slot_state}: at every sample an adversary disturbs any
    subset of the currently steady applications (the sporadic model
    with minimum inter-arrival [r] is enforced by the quiet phase).
    The group is safe iff no reachable state contains an [Error] phase
    — the same query as the paper's "no application automaton reaches
    Error".

    Three engines are provided:
    - {!val-verify} with [mode = `Bfs] — plain exhaustive breadth-first
      search (the reference, analogous to the paper's unbounded UPPAAL
      run);
    - [mode = `Subsumption] — exact antichain pruning: a state whose
      remaining quiet times dominate an explored one pointwise admits a
      subset of its behaviours and is skipped (sound and complete for
      the error-reachability query);
    - {!verify_bounded} — the paper's Sec. 5 acceleration: each
      application is limited to [k] disturbance instances. *)

type reason =
  | Deadline of float  (** wall-clock budget, seconds *)
  | State_budget of int

type verdict =
  | Safe
  | Unsafe of counterexample
  | Undetermined of reason
      (** a budget ran out before the reachable space was covered; the
          group is neither proved safe nor shown unsafe *)

and counterexample = {
  steps : (int list * Sched.Slot_state.t) list;
      (** chronological (disturbed ids, post state) from the initial
          state to the first error *)
  failing : int list;  (** ids in error at the end *)
}

type stats = {
  states : int;  (** distinct states explored *)
  transitions : int;  (** ticks evaluated *)
  elapsed : float;  (** wall-clock seconds *)
  max_wait : int array;
      (** per application, the largest wait at which it was ever
          granted the slot across the whole reachable space — the
          exact worst-case response time of the group (indexed by
          [Appspec.id]; [-1] when never granted, e.g. never disturbed
          or exploration aborted on a counterexample) *)
}

type result = { verdict : verdict; stats : stats }

val verify :
  ?pool:Par.Pool.t ->
  ?order:[ `Bfs | `Dfs ] ->
  ?policy:Sched.Slot_state.policy ->
  ?mode:[ `Bfs | `Subsumption ] ->
  ?prefilter:bool ->
  ?symmetry:bool ->
  ?deadline:float ->
  ?max_states:int ->
  Sched.Appspec.t array ->
  result
(** Exhaustive verification (default mode [`Subsumption], default
    policy {!Sched.Slot_state.Eager_preempt}).  Pass
    [~policy:Lazy_preempt] to check the paper's concluding-remarks
    variant that postpones preemption.  [deadline] (wall-clock seconds,
    checked every 1024 expansions) and [max_states] bound the search;
    when either runs out the verdict is {!Undetermined} — never a
    silent [Safe].

    [pool] (default {!Par.Pool.default}) parallelises state expansion
    across domains when sized above 1: the front of the BFS queue is
    expanded in batches and merged back in pop order, so verdicts,
    counterexamples, [stats] and the state-budget cut-off are
    byte-identical to the sequential run at any pool size.  (Deadline
    cut-offs remain wall-clock dependent at every size, including 1.)

    [order] (default [`Bfs]) picks the frontier order of the
    underlying {!Search} engine.  Depth-first explores the same
    reachable space and can never flip a Safe/Unsafe answer, but
    counterexamples and state counts may differ, and only the FIFO
    order is eligible for batched parallel expansion — [`Dfs] always
    runs sequentially.

    [prefilter] (default false) consults the two-sided analytic screen
    ({!Sched.Prefilter.decide}) before exploring: an [Analytic_safe]
    group returns [Safe] and an [Analytic_unsafe] one returns [Unsafe]
    with the saturation witness as counterexample, both with zero
    states/transitions and an all-[-1] [max_wait] (no exploration
    happened); [Inconclusive] falls through to the engine.  Screened
    verdicts always agree with the engine's — only the statistics
    differ.

    [symmetry] (default false) quotients the search space by
    permutations of applications with identical timing parameters
    (same [T*_w], [T⁻_dw], [T⁺_dw], [r]): states that coincide after
    canonically relabelling each orbit are explored once.  The verdict
    is preserved; on [Safe] the [max_wait] table is corrected to the
    orbit maximum (which equals the exact per-application value, by
    symmetry), and on [Unsafe] the engine transparently re-runs without
    the quotient so the counterexample, statistics and pretty-printed
    output are byte-identical to the exact run.  [states]/[transitions]
    of a [Safe] or [Undetermined] run reflect the quotient space (the
    point of the feature); groups with no two identical applications
    are unaffected bit-for-bit.
    @raise Invalid_argument when [deadline <= 0] or [max_states < 1]. *)

val verify_bounded :
  ?pool:Par.Pool.t ->
  ?order:[ `Bfs | `Dfs ] ->
  ?policy:Sched.Slot_state.policy ->
  ?symmetry:bool ->
  ?deadline:float ->
  ?max_states:int ->
  instances:int ->
  Sched.Appspec.t array ->
  result
(** Each application may be disturbed at most [instances] times.  An
    under-approximation in general; exact whenever the unbounded system
    is "memoryless" past that many instances (the paper argues the
    bound computed from coinciding-disturbance counting is sufficient
    for its case study).  [symmetry] behaves as in {!val-verify} (the
    per-application disturbance budgets are part of the canonical
    form, so the quotient remains exact).  No analytic pre-filter is
    offered here: the saturation witness may disturb an application
    more than [instances] times, which the bounded adversary cannot. *)

val pp_reason : Format.formatter -> reason -> unit
val pp_verdict : Sched.Appspec.t array -> Format.formatter -> verdict -> unit

val pp_counterexample :
  Sched.Appspec.t array -> Format.formatter -> counterexample -> unit
(** The failing schedule sample by sample: disturbance arrivals and the
    resulting scheduler state, ending at the deadline miss. *)
