type t = {
  name : string;
  plant : Control.Plant.t;
  gains : Control.Switched.gains;
  r : int;
  j_star : int;
  table : Dwell.t;
}

let make ?cache ?threshold ?stride ~name ~plant ~gains ~r ~j_star () =
  if j_star >= r then
    invalid_arg "App.make: the sporadic model requires J* < r";
  (match stride with
   | Some s when s > 1 ->
     (* Appspec indexes its arrays by raw wait, so a strided (shorter)
        table cannot be bridged; reject up front with a real message
        instead of the confusing length error Appspec.make would give *)
     invalid_arg
       "App.make: stride > 1 tables are analysis-only; the scheduler \
        layer needs one row per wait (stride 1)"
   | _ -> ());
  let table = Dwell.compute ?cache ?threshold ?stride plant gains ~j_star in
  (* fail early if the spec would be rejected by the scheduler layer *)
  let _ : Sched.Appspec.t =
    Sched.Appspec.make ~id:0 ~name ~t_w_max:table.Dwell.t_w_max
      ~t_dw_min:table.Dwell.t_dw_min ~t_dw_max:table.Dwell.t_dw_max ~r
  in
  { name; plant; gains; r; j_star; table }

let spec t ~id =
  Sched.Appspec.make ~id ~name:t.name ~t_w_max:t.table.Dwell.t_w_max
    ~t_dw_min:t.table.Dwell.t_dw_min ~t_dw_max:t.table.Dwell.t_dw_max ~r:t.r

let t_w_max t = t.table.Dwell.t_w_max

let pp ppf t =
  Format.fprintf ppf "@[<v>%s (J* = %d, r = %d)@,%a@]" t.name t.j_star t.r
    Dwell.pp t.table
