type row = {
  name : string;
  j_star : int;
  worst_wait : int option;
  worst_settling : int option;
  margin : int option;
}

type report = { rows : row list; safe : bool }

let worst_settling_of (a : App.t) ~worst_wait =
  let t = a.App.table in
  let worst = ref 0 in
  (* iterate grid waits only: with stride > 1 the raw wait is not a
     valid row index *)
  List.iter
    (fun t_w ->
      if t_w <= worst_wait then
        for t_dw = Dwell.dw_min t ~t_w to Dwell.dw_max t ~t_w do
          match Strategy.settling a.App.plant a.App.gains ~t_w ~t_dw with
          | Some j -> if j > !worst then worst := j
          | None -> ()
        done)
    (Dwell.waits t);
  !worst

let analyse ?policy ~apps () =
  let specs = Mapping.specs_of_group apps in
  let result = Dverify.verify ?policy specs in
  let safe =
    (* unbudgeted run: Undetermined cannot occur, but margins would be
       meaningless without a safety proof anyway *)
    match result.Dverify.verdict with
    | Dverify.Safe -> true
    | Dverify.Unsafe _ | Dverify.Undetermined _ -> false
  in
  let rows =
    List.mapi
      (fun i (a : App.t) ->
        let w = result.Dverify.stats.Dverify.max_wait.(i) in
        if (not safe) || w < 0 then
          {
            name = a.App.name;
            j_star = a.App.j_star;
            worst_wait = None;
            worst_settling = None;
            margin = None;
          }
        else begin
          let ws = worst_settling_of a ~worst_wait:w in
          {
            name = a.App.name;
            j_star = a.App.j_star;
            worst_wait = Some w;
            worst_settling = Some ws;
            margin = Some (a.App.j_star - ws);
          }
        end)
      apps
  in
  { rows; safe }

let pp ppf t =
  if not t.safe then Format.fprintf ppf "group is UNSAFE: no margins"
  else begin
    Format.fprintf ppf "@[<v>%-6s %-8s %-12s %-16s %s@," "app" "J*"
      "worst wait" "worst settling" "margin";
    List.iter
      (fun r ->
        match (r.worst_wait, r.worst_settling, r.margin) with
        | Some w, Some ws, Some m ->
          Format.fprintf ppf "%-6s %-8d %-12d %-16d %d@," r.name r.j_star w ws m
        | _ ->
          Format.fprintf ppf "%-6s %-8d %-12s %-16s -@," r.name r.j_star
            "never" "-")
      t.rows;
    Format.fprintf ppf "@]"
  end
