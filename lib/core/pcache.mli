(** Persistent verification cache: the bridge between the in-memory
    {!Par.Vcache} memo tables and the on-disk {!Store}.

    One handle wraps one store file and hands out backed caches for the
    two expensive computations — group verdicts ({!Mapping}) and dwell
    tables ({!Dwell}) — so `verify`, `map` and `stress` invocations
    reuse each other's work across process runs.

    Soundness rules:

    - only definitive verdicts ([`Safe]/[`Unsafe]) are persisted; an
      [`Undetermined] verdict is a budget artifact of one particular
      run and must never answer a later run's question;
    - the store is salted with {!engine_salt}; bump it whenever engine
      semantics or codec formats change and every old record is dropped
      on the next open;
    - keys are the injective fingerprints ({!Mapping.fingerprint},
      {!Dwell.fingerprint}) used verbatim — no hashing, so a collision
      is impossible by construction. *)

type t

val engine_salt : string
(** Fingerprint of everything a cached value depends on besides its
    key: verification-engine semantics and the table codec version.
    Stored in the file header; a mismatch invalidates the whole file. *)

val open_ : path:string -> (t, string) result
(** Open (creating if missing) the store at [path] under
    {!engine_salt}.  [Error] when the file exists but is not a store,
    or on IO failure. *)

val mapping_cache : t -> Mapping.cache
(** The verdict cache backed by this store (one per handle, created
    lazily).  Pass it to {!Mapping.first_fit}/{!Mapping.optimal}. *)

val dwell_cache : t -> Dwell.cache
(** The dwell-table cache backed by this store (one per handle). *)

val record_verdict : t -> Sched.Appspec.t array -> Mapping.verdict -> unit
(** Persist a verdict obtained outside the mapping path (e.g. by the
    [verify] command).  [`Undetermined] is ignored; callers must not
    pass a bounded-[`Safe] under-approximation. *)

val find_verdict : t -> Sched.Appspec.t array -> Mapping.verdict option
(** Direct store probe (bypasses the in-memory layer). *)

val store : t -> Store.t
val stats : t -> Store.stats

val read_only : t -> bool
(** Another process holds the store's writer lock: verdicts and tables
    computed through this handle stay in memory and are not persisted
    (see {!Store.read_only}). *)

type hit_stats = { mem : int; disk : int; engine : int }

val hit_stats : t -> hit_stats
(** Where answers have come from so far, aggregated over both backed
    caches: in-memory hits, store hits, and fresh computations.  The
    running total a resident service reports across requests. *)

val close : t -> unit
