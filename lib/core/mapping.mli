(** First-fit mapping of applications to TT slots (paper Sec. 5,
    "Resource mapping").

    Applications are sorted by ascending [T*_w], ties broken by the
    smaller maximum of [T⁻_dw] (written T⁻*_dw in the paper), and
    packed first-fit: each application is added to the first existing
    slot whose extended group still passes control-performance
    verification; otherwise it opens a new slot. *)

type verdict = [ `Safe | `Unsafe | `Undetermined of string ]
(** [`Undetermined] carries a human-readable reason (budget overruns,
    under-approximate evidence only, ...). *)

type verifier = Sched.Appspec.t array -> verdict
(** Pluggable group verifier (the discrete engine by default; the
    timed-automata engine can be swapped in for cross-checking).  Both
    mappers treat [`Undetermined] exactly like [`Unsafe] — a group is
    only ever packed on a positive safety proof. *)

type slot = { index : int; apps : App.t list }

type outcome = {
  slots : slot list;
  verifications : int;
      (** number of group-safety questions asked (a question answered
          from the verdict cache counts too, so the figure is identical
          whatever the cache warmth or jobs count) *)
  undetermined : int;
      (** verifier calls that could not decide (each conservatively
          treated as unsafe) *)
}

type cache = verdict Par.Vcache.t
(** Content-addressed verdict cache: canonical group fingerprint →
    verdict, mutex-protected (safe to share across domains and across
    both mappers).  Sound because a verdict is a pure function of the
    group's timing parameters — ids and probe order do not matter for
    exhaustive verification. *)

val create_cache : ?backing:verdict Par.Vcache.backing -> unit -> cache
(** [backing] (e.g. {!Pcache.mapping_backing}) extends the in-memory
    table with a persistent second level consulted on memory misses and
    written on engine runs. *)

val cache_stats : cache -> int * int
(** [(hits, misses)] so far; hits include backing-store hits. *)

val fingerprint : Sched.Appspec.t array -> string
(** The cache key: the entry count followed by name-sorted
    [len:name|T*_w|T⁻_dw|T⁺_dw|r] entries — invariant under group order
    and id assignment, and injective: names are length-prefixed so
    delimiter characters in an application name cannot alias another
    group's key. *)

val sort_order : App.t list -> App.t list
(** The paper's sorting: ascending [T*_w], then ascending [T⁻*_dw],
    then name for determinism. *)

val default_verifier : verifier
(** {!Dverify.verify} with subsumption, unbudgeted. *)

val escalating :
  ?stage_deadline:float ->
  ?max_states:int ->
  ?instances:int ->
  ?accept_bounded:bool ->
  unit ->
  verifier
(** Budgeted verifier with graceful fallback.  Stage 1 runs the exact
    subsumption engine under [stage_deadline] (wall-clock seconds per
    stage) and [max_states]; if it gives up, stage 2 retries with the
    bounded-instance acceleration ([instances], default 2) under the
    same per-stage budgets.  A bounded counterexample is a real one, so
    bounded-[Unsafe] is definitive; bounded-[Safe] is an
    under-approximation and is reported [`Undetermined] unless
    [accept_bounded] (default false) opts into trusting it.  When both
    stages give up the reason strings of both are reported. *)

val first_fit :
  ?pool:Par.Pool.t ->
  ?cache:cache ->
  ?order:[ `Bfs | `Dfs ] ->
  ?verifier:verifier ->
  ?prefilter:bool ->
  ?symmetry:bool ->
  ?presorted:bool ->
  App.t list ->
  outcome
(** Run the mapping.  When [presorted] is false (default) the input is
    sorted with {!sort_order} first.

    With [pool] (default {!Par.Pool.default}) sized above 1, every
    candidate group of a placement round is probed concurrently and the
    verdicts are consumed in slot order with the sequential first-fit
    tie-break, so the packing, [verifications] and [undetermined] are
    byte-identical to a sequential run.  [cache] memoises verdicts by
    {!fingerprint}; pass the same cache to both mappers (or across
    calls) to skip repeated probes of the same subset.  [order]
    (default [`Bfs]) sets the frontier order of the default verifier
    (ignored when [verifier] is supplied); packings are
    order-independent because Safe/Unsafe is.

    [prefilter] (default true) screens every candidate group through
    {!Sched.Prefilter.decide} ahead of the cache and the engine; a
    screened group still counts as one verification, so packings and
    all reported counts are byte-identical with the screen on or off —
    only the exact-engine runs are saved ([mapping.screened] counts
    them).  [symmetry] (default true) lets the default verifier
    quotient the search space by permutations of identical-parameter
    applications — verdict-preserving, hence packing-preserving.  Both
    switches apply to the built-in verifier only: a caller-supplied
    [verifier] may implement different semantics, for which the
    screen's soundness argument does not hold, so it runs unscreened. *)

val specs_of_group : App.t list -> Sched.Appspec.t array
(** Dense scheduler specs for a candidate group (ids assigned in list
    order). *)

val probe :
  ?cache:cache ->
  ?prefilter:bool ->
  ?symmetry:bool ->
  Sched.Appspec.t array ->
  verdict * [ `Screen | `Mem | `Disk | `Miss ]
(** One cache-aware group-safety question with the provenance of its
    answer: [`Screen] (analytic pre-filter, only with
    [prefilter:true]), [`Mem]/[`Disk] (cache level that answered), or
    [`Miss] (the engine ran).  Uses the default subsumption engine
    ([`Bfs]; [symmetry] defaults to [true] — verdict-preserving), so
    the verdict matches {!default_verifier} byte-for-byte.
    [prefilter] defaults to [false], matching the one-shot [verify]
    command. *)

val pp : Format.formatter -> outcome -> unit

val optimal :
  ?cache:cache ->
  ?order:[ `Bfs | `Dfs ] ->
  ?verifier:verifier ->
  ?prefilter:bool ->
  ?symmetry:bool ->
  App.t list ->
  outcome
(** Exact minimum-slot partition (in contrast to the paper's first-fit
    heuristic).  Group safety is monotone — disturbing one application
    less can only shrink the adversary's options, so every superset of
    an unsafe group is unsafe and every subset of a safe group is safe
    — which prunes most of the subset lattice; the minimum partition
    over the safe subsets is then found by dynamic programming over
    bitmasks.  Exponential in the number of applications (fine for the
    slot-sized instances this problem deals in; guarded at 16 apps).
    [verifications] counts the verifier calls actually performed after
    pruning.  [prefilter] and [symmetry] (both default true) behave as
    in {!first_fit}: screened subsets keep their place in the monotone
    lattice and in [verifications], so the partition and every count
    are unchanged — only engine runs are saved.
    @raise Invalid_argument beyond 16 applications. *)
