type rle = (int * int) list

let encode a =
  let n = Array.length a in
  let rec go i acc =
    if i >= n then List.rev acc
    else begin
      let v = a.(i) in
      let j = ref i in
      while !j < n && a.(!j) = v do
        incr j
      done;
      go !j ((v, !j - i) :: acc)
    end
  in
  go 0 []

let decode rle =
  List.iter
    (fun (_, k) -> if k < 1 then invalid_arg "Table_codec.decode: bad repeat")
    rle;
  Array.concat (List.map (fun (v, k) -> Array.make k v) rle)

let encoded_words rle = 2 * List.length rle

let distinct_values a =
  List.length (List.sort_uniq compare (Array.to_list a))

let dictionary_words a =
  let k = distinct_values a in
  let bits_per_entry =
    let rec log2_ceil n acc = if n <= 1 then acc else log2_ceil ((n + 1) / 2) (acc + 1) in
    Int.max 1 (log2_ceil k 0)
  in
  k + (((Array.length a * bits_per_entry) + 63) / 64)

(* serialisation, format 2:
     "v2 j_star jt je t_w_max stride | rle(t_dw_min) | rle(t_dw_max)
      | rle(j_at_min) | rle(j_at_max)"
   with runs as "v*k".  Format 1 lacked the version tag and the stride
   field ("j_star jt je t_w_max | ..."); tables written by it predate
   stride-aware consumers, so decoding maps them to stride = 1 —
   exactly the semantics they were computed under. *)
let version = 2
let rle_to_string rle =
  String.concat "," (List.map (fun (v, k) -> Printf.sprintf "%d*%d" v k) rle)

let rle_of_string s =
  if String.equal s "" then Error "empty run list"
  else
    try
      Ok
        (List.map
           (fun run ->
             match String.split_on_char '*' run with
             | [ v; k ] -> (int_of_string v, int_of_string k)
             | _ -> failwith "run")
           (String.split_on_char ',' s))
    with _ -> Error ("bad run-length field: " ^ s)

let table_to_string (t : Dwell.t) =
  Printf.sprintf "v2 %d %d %d %d %d | %s | %s | %s | %s" t.Dwell.j_star
    t.Dwell.jt t.Dwell.je t.Dwell.t_w_max t.Dwell.stride
    (rle_to_string (encode t.Dwell.t_dw_min))
    (rle_to_string (encode t.Dwell.t_dw_max))
    (rle_to_string (encode t.Dwell.j_at_min))
    (rle_to_string (encode t.Dwell.j_at_max))

let table_of_string s =
  let ( let* ) = Result.bind in
  match String.split_on_char '|' s |> List.map String.trim with
  | [ header; f1; f2; f3; f4 ] ->
    let* j_star, jt, je, t_w_max, stride =
      let ints l =
        try Ok (List.map int_of_string l) with _ -> Error "bad header integers"
      in
      match String.split_on_char ' ' header |> List.filter (fun x -> x <> "") with
      | "v2" :: fields -> (
        match ints fields with
        | Ok [ a; b; c; d; e ] -> Ok (a, b, c, d, e)
        | Ok _ -> Error "bad v2 header shape"
        | Error e -> Error e)
      | fields -> (
        (* format 1: no version tag, no stride field *)
        match ints fields with
        | Ok [ a; b; c; d ] -> Ok (a, b, c, d, 1)
        | Ok _ -> Error "bad header shape"
        | Error e -> Error e)
    in
    let* r1 = rle_of_string f1 in
    let* r2 = rle_of_string f2 in
    let* r3 = rle_of_string f3 in
    let* r4 = rle_of_string f4 in
    let t =
      {
        Dwell.j_star;
        jt;
        je;
        t_w_max;
        stride;
        t_dw_min = decode r1;
        t_dw_max = decode r2;
        j_at_min = decode r3;
        j_at_max = decode r4;
      }
    in
    let* () = Dwell.validate t in
    Ok t
  | _ -> Error "expected 5 |-separated fields"

let compression_ratio (t : Dwell.t) =
  (* only the dwell arrays live on the ECU; the j_at_* arrays are
     offline diagnostics *)
  let plain = 2 * Array.length t.Dwell.t_dw_min in
  let packed =
    encoded_words (encode t.Dwell.t_dw_min)
    + encoded_words (encode t.Dwell.t_dw_max)
  in
  float_of_int plain /. float_of_int packed
