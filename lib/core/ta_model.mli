(** The paper's timed-automata system model (Sec. 4, Figs. 5-7),
    constructed over the generic {!Ta} substrate.

    The network consists of one application automaton per application
    (locations Steady, Dist_init (committed), ET_Wait, TT, ET_SAFE,
    Error; clock [time\[id\]]) and a scheduler automaton (clock [x]
    with a one-sample tick, clock [cT] for the occupant's dwell).  The
    nested Policy/Sort automata of Fig. 6 execute in committed
    locations with no time passing, so they are folded into a single
    atomic transfer-and-sort update on the scheduler's tick — a
    semantics-preserving simplification of the same model.

    The verification query is reachability of any application's Error
    location: the group is safe iff it is unreachable. *)

val build : Sched.Appspec.t array -> Ta.Network.t
(** The network for one slot group.
    @raise Invalid_argument on an empty group. *)

val error_target : Sched.Appspec.t array -> Ta.Reach.target
(** Holds when some application automaton is in Error. *)

type result = {
  outcome : [ `Safe | `Unsafe | `Undetermined of Ta.Reach.budget_reason ];
      (** [`Undetermined] when a state or wall-clock budget ran out
          before the Error location could be proved (un)reachable *)
  stats : Ta.Reach.stats;
}

val verify :
  ?order:[ `Bfs | `Dfs ] ->
  ?max_states:int ->
  ?deadline:float ->
  ?inclusion:bool ->
  ?prefilter:bool ->
  Sched.Appspec.t array ->
  result
(** Zone-based model checking of the group (default cap 2,000,000
    symbolic states; [deadline] is a wall-clock budget in seconds).
    [order] picks the {!Ta.Reach} frontier order — the Safe/Unsafe
    answer is order-independent.
    [inclusion] (default [false]) switches {!Ta.Reach.run} to
    zone-inclusion pruning; the tick-driven zones of this model are
    point-like, so exact matching is usually faster.
    [prefilter] (default [false]) consults the verdict-preserving
    analytic screen ({!Sched.Prefilter.decide}) first: a group it
    decides never builds the zone graph and reports all-zero
    {!Ta.Reach.stats}. *)

(** Store layout (exposed for white-box tests). *)
module Layout : sig
  val wt : n:int -> int -> int
  val dt_min : n:int -> int -> int
  val dt_max : n:int -> int -> int
  val run : n:int -> int
  val owner : n:int -> int
  val dist : n:int -> int
  val len0 : n:int -> int
  val buf0 : n:int -> int -> int
  val len : n:int -> int
  val buf : n:int -> int -> int
  val store_size : n:int -> int

  val clock_time : int -> int
  (** clock index of [time\[id\]] *)

  val clock_ct : n:int -> int
  val clock_x : n:int -> int

  val loc_steady : int
  val loc_dist_init : int
  val loc_et_wait : int
  val loc_tt : int
  val loc_et_safe : int
  val loc_error : int
end
