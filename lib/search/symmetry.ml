type t = { orbit_of : int array; members : int list array }

let partition ~n ~same =
  let orbit_of = Array.make n (-1) in
  let reps = ref [] (* (orbit index, smallest member) newest first *) in
  let norbits = ref 0 in
  for i = 0 to n - 1 do
    let rec find = function
      | [] ->
        let o = !norbits in
        incr norbits;
        reps := (o, i) :: !reps;
        o
      | (o, r) :: rest -> if same r i then o else find rest
    in
    orbit_of.(i) <- find !reps
  done;
  let members = Array.make !norbits [] in
  (* collect descending, reverse once: members end up ascending *)
  for i = n - 1 downto 0 do
    members.(orbit_of.(i)) <- i :: members.(orbit_of.(i))
  done;
  { orbit_of; members }

let nontrivial t =
  Array.exists (function _ :: _ :: _ -> true | _ -> false) t.members

let orbits t = Array.copy t.members

let canonical_perm t ~descr =
  let perm = Array.make (Array.length t.orbit_of) 0 in
  Array.iter
    (fun members ->
      match members with
      | [] | [ _ ] ->
        List.iter (fun i -> perm.(i) <- i) members
      | _ ->
        let sorted =
          List.stable_sort
            (fun a b -> compare (descr a) (descr b))
            members
        in
        List.iter2 (fun slot m -> perm.(m) <- slot) members sorted)
    t.members;
  perm

let is_identity perm =
  let n = Array.length perm in
  let rec go i = i >= n || (perm.(i) = i && go (i + 1)) in
  go 0

let note_collapsed () =
  if Obs.Trace_ctx.enabled () then Obs.Metric.count "search.orbit_collapsed" 1
