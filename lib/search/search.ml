type budget_reason = Max_states of int | Deadline of float

type stats = {
  states : int;
  transitions : int;
  elapsed : float;
  waiting_peak : int;
  dedup_hits : int;
  cover_hits : int;
}

type 'state order = Bfs | Dfs | Priority of ('state -> int)

module type STATE_SPACE = sig
  type state
  type label

  module Key : Hashtbl.HashedType

  val key : state -> Key.t
  val successors : state -> (label * state) list
  val is_target : label option -> state -> bool
end

(* A chained hash table whose equality and hash are runtime values, so
   the coverage antichain can be keyed by an existentially-typed group
   key without a functor application per client. *)
module Ht = struct
  type ('k, 'v) t = {
    equal : 'k -> 'k -> bool;
    hash : 'k -> int;
    mutable buckets : ('k * 'v) list array;
    mutable size : int;
  }

  let create ~equal ~hash n =
    { equal; hash; buckets = Array.make (Int.max 16 n) []; size = 0 }

  let index t k = t.hash k land max_int mod Array.length t.buckets

  let find_opt t k =
    let rec go = function
      | [] -> None
      | (k', v) :: rest -> if t.equal k k' then Some v else go rest
    in
    go t.buckets.(index t k)

  let grow t =
    let old = t.buckets in
    t.buckets <- Array.make (2 * Array.length old) [];
    Array.iter
      (List.iter (fun ((k, _) as cell) ->
           let i = index t k in
           t.buckets.(i) <- cell :: t.buckets.(i)))
      old

  let replace t k v =
    let i = index t k in
    let bucket = t.buckets.(i) in
    if List.exists (fun (k', _) -> t.equal k k') bucket then
      t.buckets.(i) <-
        (k, v) :: List.filter (fun (k', _) -> not (t.equal k k')) bucket
    else begin
      t.buckets.(i) <- (k, v) :: bucket;
      t.size <- t.size + 1;
      if t.size > 2 * Array.length t.buckets then grow t
    end
end

(* Minimal binary min-heap over (score, seq): FIFO among equal scores,
   so Priority degenerates to Bfs under a constant score. *)
module Heap = struct
  type t = {
    mutable a : (int * int * int) array;  (* score, seq, payload *)
    mutable n : int;
  }

  let create () = { a = Array.make 64 (0, 0, 0); n = 0 }
  let lt (s1, q1, _) (s2, q2, _) = s1 < s2 || (s1 = s2 && q1 < q2)

  let push t cell =
    if t.n = Array.length t.a then begin
      let bigger = Array.make (2 * t.n) cell in
      Array.blit t.a 0 bigger 0 t.n;
      t.a <- bigger
    end;
    t.a.(t.n) <- cell;
    t.n <- t.n + 1;
    let i = ref (t.n - 1) in
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      lt t.a.(!i) t.a.(p)
      && begin
           let tmp = t.a.(p) in
           t.a.(p) <- t.a.(!i);
           t.a.(!i) <- tmp;
           i := p;
           true
         end
    do
      ()
    done

  let pop t =
    let top = t.a.(0) in
    t.n <- t.n - 1;
    t.a.(0) <- t.a.(t.n);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < t.n && lt t.a.(l) t.a.(!m) then m := l;
      if r < t.n && lt t.a.(r) t.a.(!m) then m := r;
      if !m = !i then continue := false
      else begin
        let tmp = t.a.(!m) in
        t.a.(!m) <- t.a.(!i);
        t.a.(!i) <- tmp;
        i := !m
      end
    done;
    let _, _, payload = top in
    payload
end

module Make (S : STATE_SPACE) = struct
  type coverage =
    | Coverage : {
        split : S.state -> 'ck * 'abs;
        ck_equal : 'ck -> 'ck -> bool;
        ck_hash : 'ck -> int;
        covers : 'abs -> 'abs -> bool;
      }
        -> coverage

  type outcome =
    | Found of S.state
    | Completed
    | Exhausted of budget_reason

  type result = {
    outcome : outcome;
    stats : stats;
    trace : (S.label * S.state) list;
  }

  module Xt = Hashtbl.Make (S.Key)

  type frontier =
    | Q of int Queue.t
    | Stack of int list ref
    | H of Heap.t * (S.state -> int)

  let run ?(order = Bfs) ?pool ?(exact = true) ?coverage ?max_states
      ?(max_states_check = `Insert) ?deadline ?(deadline_mask = 255)
      ?(target_check = `Insert) ?on_edge ?on_insert ?(initial_peak = 0)
      ?metrics_prefix ?(heartbeat = 1024) initial =
    let t0 = Obs.Clock.now () in
    (* dense state store: insertion order assigns ids, the parent table
       and the frontier hold ids, never whole structural states *)
    let store = ref (Array.make 1024 initial) in
    let parent = ref (Array.make 1024 None) in
    let nstored = ref 0 in
    let add_state st =
      if !nstored = Array.length !store then begin
        let bigger = Array.make (2 * !nstored) initial in
        Array.blit !store 0 bigger 0 !nstored;
        store := bigger;
        let bigger = Array.make (2 * !nstored) None in
        Array.blit !parent 0 bigger 0 !nstored;
        parent := bigger
      end;
      !store.(!nstored) <- st;
      incr nstored;
      !nstored - 1
    in
    let state_of id = !store.(id) in
    (* dedup: exact table over the client key, then the coverage
       antichain; a query that misses both inserts into both *)
    let xt : unit Xt.t = Xt.create 4096 in
    let dedup_hits = ref 0 and cover_hits = ref 0 in
    let cover_seen =
      Option.map
        (fun (Coverage c) ->
          let tbl = Ht.create ~equal:c.ck_equal ~hash:c.ck_hash 4096 in
          fun st ->
            let k, abs = c.split st in
            let chain = Option.value ~default:[] (Ht.find_opt tbl k) in
            if List.exists (fun e -> c.covers e abs) chain then true
            else begin
              Ht.replace tbl k
                (abs :: List.filter (fun e -> not (c.covers abs e)) chain);
              false
            end)
        coverage
    in
    let seen st =
      if exact then begin
        let k = S.key st in
        if Xt.mem xt k then begin
          incr dedup_hits;
          true
        end
        else
          match cover_seen with
          | Some f when f st ->
            incr cover_hits;
            true
          | Some _ | None ->
            Xt.replace xt k ();
            false
      end
      else
        match cover_seen with
        | Some f when f st ->
          incr cover_hits;
          true
        | Some _ | None -> false
    in
    let frontier =
      match order with
      | Bfs -> Q (Queue.create ())
      | Dfs -> Stack (ref [])
      | Priority score -> H (Heap.create (), score)
    in
    let seq = ref 0 in
    let fpush id st =
      match frontier with
      | Q q -> Queue.add id q
      | Stack s -> s := id :: !s
      | H (h, score) ->
        incr seq;
        Heap.push h (score st, !seq, id)
    in
    let fpop () =
      match frontier with
      | Q q -> Queue.pop q
      | Stack s -> (
        match !s with
        | id :: rest ->
          s := rest;
          id
        | [] -> assert false)
      | H (h, _) -> Heap.pop h
    in
    let fempty () =
      match frontier with
      | Q q -> Queue.is_empty q
      | Stack s -> !s = []
      | H (h, _) -> h.Heap.n = 0
    in
    (* [qlen] tracks the frontier depth a sequential run would see —
       in the batched loop the batch's still-unmerged pops count as
       popped, so waiting_peak agrees with jobs = 1 byte for byte *)
    let qlen = ref 0 and waiting_peak = ref initial_peak in
    let states = ref 1 and transitions = ref 0 in
    let found = ref (-1) in
    let exhausted = ref None in
    let pops = ref 0 in
    let engine = match metrics_prefix with Some p -> p | None -> "search" in
    (* A heartbeat fires every [heartbeat] pops.  Its counter fields
       replay the sequential pop sequence (see the determinism note in
       the mli), so the event multiset is identical at any pool size
       once the timing fields are masked. *)
    let heartbeat_tick () =
      if !pops mod heartbeat = 0 && Obs.Event.enabled () then begin
        let dt = Obs.Clock.now () -. t0 in
        Obs.Event.emit "search.heartbeat"
          [
            ("engine", Obs.Event.Str engine);
            ("states", Obs.Event.Int !states);
            ("transitions", Obs.Event.Int !transitions);
            ("frontier", Obs.Event.Int !qlen);
            ("dedup_hits", Obs.Event.Int !dedup_hits);
            ("cover_hits", Obs.Event.Int !cover_hits);
            ( "states_per_sec",
              Obs.Event.Float
                (if dt > 0. then float_of_int !states /. dt else 0.) );
          ]
      end
    in
    let deadline_hit () =
      match deadline with
      | Some d
        when !pops land deadline_mask = 0 && Obs.Clock.now () -. t0 > d ->
        exhausted := Some (Deadline d);
        true
      | _ -> false
    in
    let pop_budget () =
      (match (max_states, max_states_check) with
       | Some cap, `Pop when !states >= cap ->
         exhausted := Some (Max_states cap);
         true
       | _ -> false)
      || deadline_hit ()
    in
    let process parent_id (label, succ) =
      incr transitions;
      (match on_edge with Some f -> f label succ | None -> ());
      if target_check = `Generate && S.is_target (Some label) succ then begin
        let id = add_state succ in
        !parent.(id) <- Some (parent_id, label);
        found := id;
        raise_notrace Exit
      end;
      if not (seen succ) then begin
        let id = add_state succ in
        incr states;
        !parent.(id) <- Some (parent_id, label);
        (match on_insert with Some f -> f succ | None -> ());
        if target_check = `Insert && S.is_target (Some label) succ then begin
          found := id;
          raise_notrace Exit
        end;
        (match (max_states, max_states_check) with
         | Some cap, `Insert when !states >= cap ->
           exhausted := Some (Max_states cap);
           raise_notrace Exit
         | _ -> ());
        fpush id succ;
        incr qlen;
        if !qlen > !waiting_peak then waiting_peak := !qlen
      end
    in
    (* seed with the initial state (id 0) *)
    let id0 = add_state initial in
    ignore (seen initial);
    (match on_insert with Some f -> f initial | None -> ());
    fpush id0 initial;
    qlen := 1;
    if target_check = `Insert && S.is_target None initial then found := id0;
    let jobs = match pool with Some p -> Par.Pool.jobs p | None -> 1 in
    let batched = match order with Bfs -> jobs > 1 | Dfs | Priority _ -> false in
    (try
       if not batched then
         while (not (fempty ())) && !found < 0 do
           incr pops;
           heartbeat_tick ();
           if pop_budget () then raise_notrace Exit;
           let id = fpop () in
           decr qlen;
           List.iter (process id) (S.successors (state_of id))
         done
       else begin
         let pool = Option.get pool in
         let q = match frontier with Q q -> q | Stack _ | H _ -> assert false in
         while not (Queue.is_empty q) do
           let k = Int.min (Queue.length q) (jobs * 4) in
           let batch = Array.make k id0 in
           for i = 0 to k - 1 do
             batch.(i) <- Queue.pop q
           done;
           let expanded =
             Par.Pool.map_array pool (fun id -> S.successors (state_of id)) batch
           in
           Array.iteri
             (fun i succs ->
               incr pops;
               heartbeat_tick ();
               if pop_budget () then raise_notrace Exit;
               decr qlen;
               List.iter (process batch.(i)) succs)
             expanded
         done
       end
     with Exit -> ());
    let elapsed = Obs.Clock.now () -. t0 in
    (match metrics_prefix with
     | Some p when Obs.Trace_ctx.enabled () ->
       Obs.Metric.count (p ^ ".states") !states;
       Obs.Metric.count (p ^ ".transitions") !transitions;
       Obs.Metric.max_gauge (p ^ ".waiting_peak") (float_of_int !waiting_peak);
       if elapsed > 0. then
         Obs.Metric.max_gauge (p ^ ".states_per_sec")
           (float_of_int !states /. elapsed)
     | Some _ | None -> ());
    let trace =
      if !found < 0 then []
      else begin
        let rec walk id acc =
          match !parent.(id) with
          | None -> acc
          | Some (pid, label) -> walk pid ((label, state_of id) :: acc)
        in
        walk !found []
      end
    in
    let outcome =
      if !found >= 0 then Found (state_of !found)
      else match !exhausted with Some r -> Exhausted r | None -> Completed
    in
    (* Always emitted (not pop-gated) so even a tiny run leaves at
       least one event in the stream. *)
    Obs.Event.emit "search.done"
      [
        ("engine", Obs.Event.Str engine);
        ( "outcome",
          Obs.Event.Str
            (match outcome with
             | Found _ -> "found"
             | Completed -> "completed"
             | Exhausted (Max_states _) -> "max_states"
             | Exhausted (Deadline _) -> "deadline") );
        ("states", Obs.Event.Int !states);
        ("transitions", Obs.Event.Int !transitions);
        ("dedup_hits", Obs.Event.Int !dedup_hits);
        ("cover_hits", Obs.Event.Int !cover_hits);
        ("elapsed_s", Obs.Event.Float elapsed);
      ];
    {
      outcome;
      stats =
        {
          states = !states;
          transitions = !transitions;
          elapsed;
          waiting_peak = !waiting_peak;
          dedup_hits = !dedup_hits;
          cover_hits = !cover_hits;
        };
      trace;
    }
end

(* sibling module re-exported through the library's root: the engine
   itself is symmetry-agnostic (clients canonicalise in [key]), but the
   orbit machinery belongs with the search layer *)
module Symmetry = Symmetry
