(** Orbit partitions and canonical-sort keys for symmetry quotienting.

    A client whose states are indexed by a fixed set of components
    (e.g. one sub-state per application) can quotient its search space
    by any group of component permutations that commutes with the
    transition relation.  The usual source of such a group is
    interchangeable components: applications with identical timing
    parameters can be swapped without changing reachability of an
    error, so states that differ only by such a swap are equivalent.

    This module provides the two pure ingredients — the orbit
    partition (which components are interchangeable) and the
    canonical permutation (a representative relabelling chosen by
    sorting each orbit's members by a client descriptor) — plus the
    shared [search.orbit_collapsed] metric.  The client applies the
    permutation to its own state representation and uses the result as
    its dedup key; the engine itself is untouched, so a client that
    opts out keeps byte-identical behaviour. *)

type t
(** An orbit partition of components [0 .. n-1]. *)

val partition : n:int -> same:(int -> int -> bool) -> t
(** Group components into orbits of pairwise-[same] members.  [same]
    must be an equivalence on [0 .. n-1]; it is sampled against the
    smallest member of each existing orbit, so [partition] is O(n ×
    orbits). *)

val nontrivial : t -> bool
(** At least one orbit has two or more members — quotienting can
    collapse something.  When false, clients should skip
    canonicalisation entirely: the identity is the only
    orbit-preserving permutation. *)

val orbits : t -> int list array
(** The orbits as sorted member lists (ascending), largest-first not
    guaranteed; singleton orbits included.  Useful for post-run
    fix-ups such as replacing per-member statistics by their orbit
    maximum. *)

val canonical_perm : t -> descr:(int -> 'd) -> int array
(** The canonical relabelling for one state: within each orbit, the
    members sorted by the polymorphic order on their descriptors
    [descr i] are assigned the orbit's index slots in ascending order.
    Returns [perm] with [perm.(i)] the canonical slot of component
    [i]; components in singleton orbits are fixed.

    The resulting key is permutation-invariant provided the client's
    descriptor satisfies: two members of one orbit with equal
    descriptors are genuinely interchangeable in the state (swapping
    them yields the identical relabelled state).  Descriptors that
    embed each component's full local state plus its position in any
    shared ordered structure (queue index, ownership flag) have this
    property. *)

val is_identity : int array -> bool

val note_collapsed : unit -> unit
(** Count one state folded onto a different orbit representative on
    the shared [search.orbit_collapsed] metric (no-op while
    observability is disabled). *)
