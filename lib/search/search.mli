(** A generic explicit-state search engine.

    The repo's three explorers — zone-graph reachability
    ({!Ta.Reach}), the discrete adversary search ({!Core.Dverify}) and
    the concrete enumeration oracle ({!Ta.Concrete.enumerate}) — are
    instantiations of this one engine.  It owns frontier management
    (BFS queue / DFS stack / priority by a client score), exact and
    antichain (coverage/subsumption) deduplication over a typed key
    with explicit [equal]/[hash], unified budgets (state cap and
    wall-clock deadline, reported as one {!Exhausted} outcome), unified
    {!stats}, parent-table trace reconstruction keyed by dense state
    ids, and the {!Par.Pool} batched parallel expansion with the
    sequential-merge-order guarantee.

    {2 Determinism}

    With a FIFO frontier and [pool] sized above 1, the engine pops the
    first [K] frontier entries (exactly the next [K] sequential pops —
    BFS children always land behind them), expands them in parallel
    with the client's pure [successors], then merges the expansions in
    pop order, replaying the sequential loop's side effects
    ([on_edge], dedup insertion, counters, budget checks) verbatim.
    Outcomes, traces and every counter are therefore byte-identical to
    the sequential run at any pool size; the only speculation is
    expansion past a target or budget cut within one batch, and those
    results are discarded.  Non-FIFO frontiers run sequentially: a
    batch popped ahead of time would not match the LIFO or priority
    pop order. *)

type budget_reason =
  | Max_states of int  (** the state cap that was hit *)
  | Deadline of float  (** the wall-clock budget, seconds *)

type stats = {
  states : int;  (** distinct states inserted, including the initial *)
  transitions : int;  (** successors generated (pre-dedup) *)
  elapsed : float;  (** wall-clock seconds *)
  waiting_peak : int;  (** deepest the frontier ever got *)
  dedup_hits : int;  (** successors equal (by key) to a stored state *)
  cover_hits : int;  (** successors subsumed by the coverage antichain *)
}

type 'state order =
  | Bfs  (** FIFO — the only order eligible for batched expansion *)
  | Dfs  (** LIFO; successors of a state are popped most-recent-first *)
  | Priority of ('state -> int)
      (** smallest score first; FIFO among equal scores *)

(** What a client must provide: states, labelled successor generation,
    a typed dedup key with explicit equality and hashing (no
    polymorphic magic), and the target predicate.  [is_target] receives
    the label that produced the state, or [None] for the initial
    state. *)
module type STATE_SPACE = sig
  type state
  type label

  module Key : Hashtbl.HashedType

  val key : state -> Key.t
  val successors : state -> (label * state) list
  val is_target : label option -> state -> bool
end

module Make (S : STATE_SPACE) : sig
  (** Antichain subsumption: states are grouped by a coverage key and,
      within a group, a candidate covered by a stored abstract element
      is pruned ([covers stored candidate]); on insertion, stored
      elements covered by the newcomer are dropped.  [split] computes
      the group key and the abstract element in one pass. *)
  type coverage =
    | Coverage : {
        split : S.state -> 'ck * 'abs;
        ck_equal : 'ck -> 'ck -> bool;
        ck_hash : 'ck -> int;
        covers : 'abs -> 'abs -> bool;
      }
        -> coverage

  type outcome =
    | Found of S.state  (** the target was reached; witness attached *)
    | Completed  (** the space was exhausted without hitting it *)
    | Exhausted of budget_reason
        (** a budget ran out first: genuinely undetermined *)

  type result = {
    outcome : outcome;
    stats : stats;
    trace : (S.label * S.state) list;
        (** chronological path to the found state (empty otherwise):
            each entry is the labelled step into that state *)
  }

  val run :
    ?order:S.state order ->
    ?pool:Par.Pool.t ->
    ?exact:bool ->
    ?coverage:coverage ->
    ?max_states:int ->
    ?max_states_check:[ `Insert | `Pop ] ->
    ?deadline:float ->
    ?deadline_mask:int ->
    ?target_check:[ `Insert | `Generate ] ->
    ?on_edge:(S.label -> S.state -> unit) ->
    ?on_insert:(S.state -> unit) ->
    ?initial_peak:int ->
    ?metrics_prefix:string ->
    ?heartbeat:int ->
    S.state ->
    result
  (** Explore from the initial state until a target is found, the
      space is exhausted, or a budget runs out.

      Deduplication: [exact] (default [true]) keeps a hash table over
      [S.key]; [coverage] adds antichain subsumption checked after an
      exact miss.  With both off every successor is treated as fresh —
      only meaningful for finite acyclic spaces.

      Budgets: [max_states] caps inserted states, checked either right
      after each insertion ([`Insert], the default — the expansion
      stops mid-state) or once per pop ([`Pop]).  [deadline] is
      wall-clock seconds, amortised: checked only on pops whose count
      masks to zero against [deadline_mask] (default [255]) so the
      syscall cannot dominate cheap expansions.

      Targets: with [`Insert] (default) only deduplicated, stored
      states are tested, including the initial state; with
      [`Generate] every generated successor is tested before dedup and
      the hit state is recorded but not counted — the regime of a
      client whose error states must never enter the visited set.

      [on_edge] runs for every generated successor, [on_insert] for
      every stored state (including the initial), both in sequential
      merge order at any pool size.  [initial_peak] (default [0]) seeds
      the frontier-depth statistic for clients that count the initial
      state.  [metrics_prefix] emits [<p>.states], [<p>.transitions],
      [<p>.waiting_peak] and [<p>.states_per_sec] through {!Obs} when
      tracing is enabled — the shared metric names live here, clients
      add only their engine-specific counters.

      With the {!Obs.Event} stream enabled, the run emits a
      ["search.heartbeat"] event every [heartbeat] pops (default 1024)
      carrying live progress — states, transitions, frontier depth,
      dedup/coverage hit counts and the running states-per-second —
      and one ["search.done"] event with the outcome.  The counter
      fields replay the sequential pop sequence, so at any pool size
      the event multiset is identical once timing fields are
      masked. *)
end

module Symmetry : module type of Symmetry
(** Orbit partitions and canonical-sort keys for clients that quotient
    their state space by component permutations — see
    {!Symmetry.canonical_perm}.  The engine is untouched: a client
    applies the canonical relabelling inside its own [key] function. *)
