(** Counters, gauges and histograms with a process-wide, domain-safe
    registry.

    Handles are obtained by name; asking twice for the same name
    returns the same metric, so independent modules can contribute to
    one series.  All mutating operations are guarded by
    {!Trace_ctx.enabled} — with observability off they cost one atomic
    load and allocate nothing.

    Every operation is safe under concurrent multi-domain use: the
    registry is mutex-protected, counters are [Atomic.t], gauges are
    [float option Atomic.t] ([set_max] is a CAS loop, so racing peak
    publications keep the true maximum), and each histogram carries
    its own mutex around append/grow and summarisation. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Find-or-create.  Creating a handle registers the metric even while
    disabled (the value just stays at zero). *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val gauge : string -> gauge

val set : gauge -> float -> unit

val set_max : gauge -> float -> unit
(** Keep the maximum of all observations (peak tracking). *)

val gauge_value : gauge -> float option
(** [None] until first set. *)

val histogram : string -> histogram

val observe : histogram -> float -> unit

val percentile : histogram -> float -> float
(** Nearest-rank percentile, [q] in [0, 1].  [nan] on an empty
    histogram. *)

(** One-shot, name-based convenience for publication points (a single
    registry lookup; still disabled-guarded): *)

val count : string -> int -> unit
val set_gauge : string -> float -> unit
val max_gauge : string -> float -> unit
val observe_value : string -> float -> unit

type summary = {
  n : int;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type entry =
  | Counter of string * int
  | Gauge of string * float
  | Histogram of string * summary

val snapshot : unit -> entry list
(** Everything in the registry with at least one recorded value,
    sorted by name.  Counters still at zero and unset gauges are
    omitted so a report only shows what the run actually touched. *)

val reset : unit -> unit
(** Empty the registry (tests, multi-report harnesses). *)
