external monotonic_s : unit -> float = "cpsdim_obs_monotonic_s"

let now = monotonic_s
let wall = Unix.gettimeofday
