(** Hierarchical timing spans.

    A span measures one phase of a pipeline (a dwell-table
    computation, a model-check call, a whole CLI subcommand); nesting
    is tracked through {!Trace_ctx}, so a span started while another
    is open becomes its child.  Each span also records the GC work its
    extent covered (minor/major words allocated, compactions), taken
    as [Gc.quick_stat] deltas — on a multi-domain run the deltas are
    those of whichever domain starts/finishes the span.

    Finished spans accumulate in a {e fixed-capacity ring} that
    {!Report.collect} drains: once full, the oldest record is
    overwritten and {!dropped} counts the loss, so spans in a hot loop
    cannot grow memory without bound.  Both the ring and the open-span
    table are mutex-protected for cross-domain use.

    Durations come from the monotonic clock ({!Clock.now}), never the
    wall clock, so an NTP step cannot produce a negative [dur_s].

    When observability is disabled every function here degenerates to
    (at most) one atomic load: {!start} returns {!none} without
    allocating and {!with_} tail-calls its argument. *)

type t
(** A handle to an open span.  {!none} is the inert handle returned on
    the disabled path. *)

val none : t

val start : string -> t
(** Open a span named [name] under the currently innermost open span
    of the calling domain.  Returns {!none} when observability is
    disabled. *)

val finish : t -> unit
(** Close the span and record it.  A no-op on {!none}; finishing the
    same handle twice records it once. *)

val with_ : string -> (unit -> 'a) -> 'a
(** [with_ name f] wraps [f ()] in a span.  The span is finished even
    when [f] raises. *)

type record = {
  id : int;
  name : string;
  parent : int option;  (** id of the enclosing span, if any *)
  start_s : float;  (** monotonic-clock seconds ({!Clock.now}) *)
  dur_s : float;
  gc_minor_w : float;  (** minor words allocated during the span *)
  gc_major_w : float;  (** major words allocated during the span *)
  gc_compact : int;  (** heap compactions during the span *)
}

val drain : unit -> record list
(** All buffered finished spans in completion order (oldest first),
    clearing the ring.  Records that were overwritten before the drain
    are gone; see {!dropped}. *)

val dropped : unit -> int
(** Finished spans overwritten because the ring was full, since the
    last {!reset}/{!set_capacity}. *)

val set_capacity : int -> unit
(** Replace the ring with an empty one of the given capacity (min 1,
    default 8192).  Discards buffered spans and zeroes {!dropped}. *)

val reset : unit -> unit
(** Drop finished and open spans and zero {!dropped} (tests,
    multi-report harnesses). *)
