(** Hierarchical timing spans.

    A span measures one phase of a pipeline (a dwell-table
    computation, a model-check call, a whole CLI subcommand); nesting
    is tracked through {!Trace_ctx}, so a span started while another
    is open becomes its child.  Finished spans accumulate in a
    process-wide buffer that {!Report.collect} drains.

    When observability is disabled every function here degenerates to
    (at most) one bool check: {!start} returns {!none} without
    allocating and {!with_} tail-calls its argument. *)

type t
(** A handle to an open span.  {!none} is the inert handle returned on
    the disabled path. *)

val none : t

val start : string -> t
(** Open a span named [name] under the currently innermost open span.
    Returns {!none} when observability is disabled. *)

val finish : t -> unit
(** Close the span and record it.  A no-op on {!none}; finishing the
    same handle twice records it once. *)

val with_ : string -> (unit -> 'a) -> 'a
(** [with_ name f] wraps [f ()] in a span.  The span is finished even
    when [f] raises. *)

type record = {
  id : int;
  name : string;
  parent : int option;  (** id of the enclosing span, if any *)
  start_s : float;  (** absolute, [Unix.gettimeofday] *)
  dur_s : float;
}

val drain : unit -> record list
(** All finished spans in completion order, clearing the buffer. *)

val reset : unit -> unit
(** Drop finished and open spans (tests, multi-report harnesses). *)
