type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

(* ------------------------------------------------------------------ *)
(* serialisation *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_literal f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_string j =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (string_of_bool v)
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_literal f)
    | String s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | List l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          go x)
        l;
      Buffer.add_char b ']'
    | Assoc kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          go (String k);
          Buffer.add_char b ':';
          go v)
        kvs;
      Buffer.add_char b '}'
  in
  go j;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* parsing *)

exception Parse of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        if !pos >= n then fail "unterminated escape";
        let c = s.[!pos] in
        advance ();
        (match c with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'n' -> Buffer.add_char b '\n'
         | 'r' -> Buffer.add_char b '\r'
         | 't' -> Buffer.add_char b '\t'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'u' ->
           if !pos + 4 > n then fail "short \\u escape";
           let code = int_of_string ("0x" ^ String.sub s !pos 4) in
           pos := !pos + 4;
           if code < 0x80 then Buffer.add_char b (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
         | _ -> fail "bad escape");
        go ()
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Assoc []
      end
      else begin
        let member () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let items = ref [ member () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := member () :: !items;
          skip_ws ()
        done;
        expect '}';
        Assoc (List.rev !items)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse msg -> Error msg
