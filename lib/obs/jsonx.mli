(** Minimal JSON tree shared by reports, events and diffs (the repo
    deliberately has no json dependency).  {!Report} re-exports the
    constructors under its historical [Report.json] name. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

val to_string : t -> string
(** Compact, single-line; strings escaped per RFC 8259.  [nan] floats
    serialise as [null]. *)

val of_string : string -> (t, string) result
(** Strict recursive-descent parser for the subset emitted above
    (numbers, strings, bools, null, arrays, objects). *)

val escape : string -> string
(** The string escaper used by {!to_string}, exposed for emitters that
    build lines by hand. *)
