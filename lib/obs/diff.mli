(** Report comparison for the perf-regression harness
    ([cpsdim report diff OLD.json NEW.json]).

    Reports flatten to [key -> float] series: counters and gauges by
    name, histograms expanded to [name.n]/[.min]/[.max]/[.mean]/
    [.p50]/[.p90]/[.p99], plus the top-level [elapsed_s].  Each key is
    classified on two axes:

    - {e class} — [Timing] (wall-clock measurements: base name ends in
      [_s] or mentions [per_sec]/[speedup]/[elapsed]) vs
      [Deterministic] (state counts, cache hit mixes, sample counts —
      anything that must reproduce across machines).  A timing
      histogram's [.n] is Deterministic: the sample {e count} is exact
      bookkeeping even when the samples are measurements.
    - {e direction} — whether growth is good ([per_sec], [speedup],
      [hit]), bad (durations, [dropped], [miss]) or neither.

    The two classes take separate tolerances, so CI can gate
    deterministic metrics tightly against committed baselines from a
    different machine while leaving timing ungated (or loosely gated)
    to avoid flakes. *)

type metric_class = Timing | Deterministic
type direction = Higher_better | Lower_better | Neutral

type change = {
  key : string;
  cls : metric_class;
  dir : direction;
  old_v : float option;  (** [None]: key only in the new report *)
  new_v : float option;  (** [None]: key vanished from the new report *)
  delta_pct : float;
      (** [100 * (new - old) / |old|]; [infinity] when [old = 0] and
          [new <> 0]; [nan] when either side is absent *)
}

val flatten : Report.t -> (string * float) list
(** The comparable series of a report, in metric order. *)

val classify : string -> metric_class * direction

val compare_reports :
  old_report:Report.t -> new_report:Report.t -> change list
(** All keys of both reports, sorted by key.  Keys present on one side
    only appear with the other side [None]. *)

type status = Pass | Regression | Missing | Added

val status_of : ?gate:float -> ?timing_gate:float -> change -> status
(** [gate] is the tolerance (in percent) for [Deterministic] keys,
    [timing_gate] for [Timing] keys; omitting a gate leaves that whole
    class ungated ([Pass]).  A gated key fails when it moved against
    its direction by more than the tolerance (both directions for
    [Neutral]), or when it vanished ([Missing]).  Keys new in the
    right-hand report are [Added] — informational, never failing. *)

val regressions :
  ?gate:float -> ?timing_gate:float -> change list -> change list
(** The changes whose {!status_of} is [Regression] or [Missing]. *)

val pp_change : Format.formatter -> change -> unit
(** One aligned line: key, old -> new, delta, class and direction. *)
