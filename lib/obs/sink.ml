type t = { emit : Report.t -> unit }

let stderr_summary =
  { emit = (fun r -> Format.eprintf "%a@." Report.pp r) }

let jsonl ~path =
  {
    emit =
      (fun r ->
        match
          let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () ->
              output_string oc (Report.json_to_string (Report.to_json r));
              output_char oc '\n')
        with
        | () -> ()
        | exception Sys_error msg ->
          Printf.eprintf "obs: cannot write %s: %s\n%!" path msg);
  }

let custom f = { emit = f }
let emit t r = t.emit r
