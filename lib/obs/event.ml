type field =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type t = {
  ts_s : float;  (* monotonic seconds since [enable] *)
  domain : int;
  name : string;
  fields : (string * field) list;
}

(* The stream has its own switch, independent of Trace_ctx: metrics
   are cheap enough to leave on whenever --metrics is given, while the
   event stream allocates a record per emission and is only worth
   paying for when a sink (--events) will consume it. *)
let on = Atomic.make false
let t0 = Atomic.make 0.

let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  match f () with
  | v ->
    Mutex.unlock lock;
    v
  | exception e ->
    Mutex.unlock lock;
    raise e

let default_capacity = 65536
let capacity = ref default_capacity
let queue : t Queue.t = Queue.create ()
let dropped_count = ref 0

let enabled () = Atomic.get on

let enable () =
  Atomic.set t0 (Clock.now ());
  Atomic.set on true

let disable () = Atomic.set on false

let set_capacity n =
  with_lock (fun () ->
      capacity := Int.max 1 n;
      Queue.clear queue;
      dropped_count := 0)

let dropped () = with_lock (fun () -> !dropped_count)

(* Drop-newest under pressure: the bounded queue keeps the run's
   prefix intact (heartbeat rates stay interpretable) and the drop
   counter reports the truncation. *)
let emit name fields =
  if Atomic.get on then begin
    let ev =
      {
        ts_s = Clock.now () -. Atomic.get t0;
        domain = (Domain.self () :> int);
        name;
        fields;
      }
    in
    with_lock (fun () ->
        if Queue.length queue >= !capacity then incr dropped_count
        else Queue.add ev queue)
  end

let drain () =
  with_lock (fun () ->
      let out = List.of_seq (Queue.to_seq queue) in
      Queue.clear queue;
      out)

let reset () =
  with_lock (fun () ->
      Queue.clear queue;
      dropped_count := 0);
  Atomic.set on false

let to_json ev =
  let field_json = function
    | Int i -> Jsonx.Int i
    | Float f -> Jsonx.Float f
    | Str s -> Jsonx.String s
    | Bool b -> Jsonx.Bool b
  in
  Jsonx.Assoc
    (("ev", Jsonx.String ev.name)
     :: ("ts_s", Jsonx.Float ev.ts_s)
     :: ("domain", Jsonx.Int ev.domain)
     :: List.map (fun (k, v) -> (k, field_json v)) ev.fields)
