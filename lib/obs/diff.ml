type metric_class = Timing | Deterministic
type direction = Higher_better | Lower_better | Neutral

type change = {
  key : string;
  cls : metric_class;
  dir : direction;
  old_v : float option;
  new_v : float option;
  delta_pct : float;
}

(* ------------------------------------------------------------------ *)
(* flattening *)

let flatten (r : Report.t) =
  let entries =
    List.concat_map
      (function
        | Metric.Counter (name, v) -> [ (name, float_of_int v) ]
        | Metric.Gauge (name, v) -> [ (name, v) ]
        | Metric.Histogram (name, s) ->
          [
            (name ^ ".n", float_of_int s.Metric.n);
            (name ^ ".min", s.Metric.min);
            (name ^ ".max", s.Metric.max);
            (name ^ ".mean", s.Metric.mean);
            (name ^ ".p50", s.Metric.p50);
            (name ^ ".p90", s.Metric.p90);
            (name ^ ".p99", s.Metric.p99);
          ])
      r.Report.metrics
  in
  ("elapsed_s", r.Report.elapsed_s) :: entries

(* ------------------------------------------------------------------ *)
(* classification *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Histogram expansion suffixes; [base_key] strips them so
   "pool.run_s.p90" classifies like "pool.run_s". *)
let strip_suffix key =
  let suffixes = [ ".n"; ".min"; ".max"; ".mean"; ".p50"; ".p90"; ".p99" ] in
  match
    List.find_opt
      (fun suf ->
        String.length key > String.length suf
        && String.sub key (String.length key - String.length suf) (String.length suf)
           = suf)
      suffixes
  with
  | Some suf -> (String.sub key 0 (String.length key - String.length suf), suf)
  | None -> (key, "")

let classify key =
  let base, suffix = strip_suffix key in
  let ends_with_s =
    String.length base >= 2
    && String.sub base (String.length base - 2) 2 = "_s"
  in
  let timing_name =
    ends_with_s
    || contains ~sub:"per_sec" base
    || contains ~sub:"speedup" base
    || contains ~sub:"elapsed" base
  in
  (* A timing histogram's sample count is exact bookkeeping, not a
     measurement: "dwell.per_tw_s.n" must match across runs even
     though "dwell.per_tw_s.p90" may not. *)
  let cls = if timing_name && suffix <> ".n" then Timing else Deterministic in
  let dir =
    if suffix = ".n" then Neutral
    else if contains ~sub:"per_sec" base || contains ~sub:"speedup" base then
      Higher_better
    else if contains ~sub:"hit" base then Higher_better
    else if
      ends_with_s || contains ~sub:"elapsed" base
      || contains ~sub:"dropped" base
      || contains ~sub:"miss" base
    then Lower_better
    else Neutral
  in
  (cls, dir)

(* ------------------------------------------------------------------ *)
(* comparison *)

let delta_pct ~old_v ~new_v =
  if old_v = 0. && new_v = 0. then 0.
  else if old_v = 0. then (if new_v > 0. then infinity else neg_infinity)
  else 100. *. (new_v -. old_v) /. Float.abs old_v

let compare_reports ~old_report ~new_report =
  let olds = flatten old_report and news = flatten new_report in
  let new_tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace new_tbl k v) news;
  let old_tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace old_tbl k v) olds;
  let of_pair key old_v new_v =
    let cls, dir = classify key in
    let delta_pct =
      match (old_v, new_v) with
      | Some o, Some n -> delta_pct ~old_v:o ~new_v:n
      | _ -> nan
    in
    { key; cls; dir; old_v; new_v; delta_pct }
  in
  let matched_or_missing =
    List.map
      (fun (k, o) -> of_pair k (Some o) (Hashtbl.find_opt new_tbl k))
      olds
  in
  let added =
    List.filter_map
      (fun (k, n) ->
        if Hashtbl.mem old_tbl k then None else Some (of_pair k None (Some n)))
      news
  in
  List.sort (fun a b -> String.compare a.key b.key) (matched_or_missing @ added)

type status = Pass | Regression | Missing | Added

let status_of ?gate ?timing_gate c =
  let tol = match c.cls with Timing -> timing_gate | Deterministic -> gate in
  match (c.old_v, c.new_v, tol) with
  | Some _, None, Some _ -> Missing (* gated class: a vanished key fails *)
  | Some _, None, None -> Pass
  | None, Some _, _ -> Added
  | None, None, _ -> Pass
  | Some _, Some _, None -> Pass
  | Some _, Some _, Some tol -> (
    let fail =
      match c.dir with
      | Higher_better -> c.delta_pct < -.tol
      | Lower_better -> c.delta_pct > tol
      | Neutral -> Float.abs c.delta_pct > tol
    in
    if fail then Regression else Pass)

let regressions ?gate ?timing_gate changes =
  List.filter
    (fun c ->
      match status_of ?gate ?timing_gate c with
      | Regression | Missing -> true
      | Pass | Added -> false)
    changes

(* ------------------------------------------------------------------ *)
(* rendering *)

let value_string = function
  | None -> "-"
  | Some v ->
    if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
    else Printf.sprintf "%.6g" v

let pp_change ppf c =
  let cls = match c.cls with Timing -> "timing" | Deterministic -> "det" in
  let dir =
    match c.dir with
    | Higher_better -> "higher-better"
    | Lower_better -> "lower-better"
    | Neutral -> "neutral"
  in
  let delta =
    if Float.is_nan c.delta_pct then "-"
    else if Float.is_integer c.delta_pct && Float.abs c.delta_pct < 1e6 then
      Printf.sprintf "%+.0f%%" c.delta_pct
    else Printf.sprintf "%+.2f%%" c.delta_pct
  in
  Format.fprintf ppf "%-44s %12s -> %-12s %10s  [%s, %s]" c.key
    (value_string c.old_v) (value_string c.new_v) delta cls dir
