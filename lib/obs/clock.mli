(** Time sources for the observability layer.

    All durations and event timestamps in lib/obs are measured on the
    monotonic clock, so a span can never report a negative duration
    when NTP steps the wall clock mid-run.  The wall clock survives
    only as the single human-facing timestamp {!Report.collect} stamps
    on each report. *)

val now : unit -> float
(** Seconds on [CLOCK_MONOTONIC].  The origin is unspecified (boot
    time on Linux): only differences are meaningful. *)

val wall : unit -> float
(** [Unix.gettimeofday] — seconds since the epoch, subject to NTP
    steps.  For report timestamps only; never use it to compute a
    duration. *)
