(** End-of-run aggregation: one report = the metric registry snapshot
    plus the finished span tree, serialisable to a single JSON line
    (the JSONL record format the [--metrics] flag and [cpsdim report]
    speak) and pretty-printable as a human summary.

    JSONL schema (one object per line, schema id ["cpsdim.obs/2"];
    ["cpsdim.obs/1"] records — which lack the per-span GC fields — are
    still accepted on read with the GC deltas defaulted to zero):
    {v
    { "schema": "cpsdim.obs/2", "command": "verify",
      "timestamp": 1722870000.0, "elapsed_s": 12.3,
      "counters":   { "ta.reach.states": 10201, ... },
      "gauges":     { "ta.reach.waiting_peak": 95.0, ... },
      "histograms": { "dwell.per_tw_s":
                        { "n": 26, "min": ..., "max": ..., "mean": ...,
                          "p50": ..., "p90": ..., "p99": ... }, ... },
      "spans": [ { "id": 1, "name": "verify", "parent": null,
                   "start_s": 0.0, "dur_s": 12.3,
                   "gc_minor_w": 1.2e8, "gc_major_w": 3.4e6,
                   "gc_compact": 0 }, ... ] }
    v}
    Span [start_s] is relative to the earliest span in the report.
    When the span ring or the event queue overflowed during the run,
    the counters [obs.spans_dropped] / [obs.events_dropped] appear in
    the report so truncation is visible. *)

(** Minimal JSON tree, re-exported from {!Jsonx} so existing users of
    [Report.json] keep compiling. *)
type json = Jsonx.t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Assoc of (string * json) list

val json_to_string : json -> string
(** Compact, single-line; strings escaped per RFC 8259. *)

val json_of_string : string -> (json, string) result
(** Strict recursive-descent parser for the subset emitted above
    (numbers, strings, bools, null, arrays, objects). *)

type t = {
  command : string;
  timestamp : float;  (** wall-clock at collection ({!Clock.wall}) *)
  elapsed_s : float;  (** widest span extent, 0 with no spans *)
  metrics : Metric.entry list;
  spans : Span.record list;  (** [start_s] relative to report start *)
}

val collect : command:string -> unit -> t
(** Snapshot the registry and drain finished spans.  Draining means a
    second [collect] only sees spans finished since the first. *)

val to_json : t -> json
val of_json : json -> (t, string) result

val pp : Format.formatter -> t -> unit
(** Human-readable summary: indented span tree with durations and GC
    deltas, then counters, gauges and histogram quantiles. *)
