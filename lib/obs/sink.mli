(** Pluggable report emitters.

    A sink is just "somewhere a finished {!Report.t} goes": the
    built-in ones are a human-readable summary on stderr (the
    [--trace] flag) and an append-only JSONL file (the [--metrics]
    flag); {!custom} lets tests and embedders capture reports
    in-process. *)

type t

val stderr_summary : t
(** {!Report.pp} to stderr. *)

val jsonl : path:string -> t
(** Append one compact JSON line per report to [path] (created if
    missing).  Emission failures are reported on stderr but do not
    raise: observability must never take the pipeline down. *)

val custom : (Report.t -> unit) -> t

val emit : t -> Report.t -> unit
