(** Structured event stream: timestamped, domain-tagged records pushed
    from instrumentation points (search heartbeats, pool task
    lifecycles, cache provenance) into a bounded in-memory queue that
    the CLI drains to a JSONL sink ([--events PATH]).

    The stream has its own master switch, independent of
    {!Trace_ctx}: metrics stay cheap enough to enable whenever
    [--metrics] is given, while events allocate a record per emission
    and are only worth paying for when a sink will consume them.
    With the switch off, {!emit} is an atomic load and nothing else.

    The queue is mutex-protected (emissions come from pool workers)
    and bounded (default 65536): under pressure the {e newest} event
    is dropped and counted, keeping the run's prefix intact so rates
    computed from heartbeats stay interpretable. *)

type field =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type t = {
  ts_s : float;  (** monotonic seconds since {!enable} *)
  domain : int;  (** emitting domain's id *)
  name : string;
  fields : (string * field) list;
}

val enabled : unit -> bool
val enable : unit -> unit
(** Turns the stream on and re-bases event timestamps at now. *)

val disable : unit -> unit

val emit : string -> (string * field) list -> unit
(** [emit name fields] enqueues one event; a no-op (one atomic load)
    while disabled.  Builds the field list eagerly — at high-frequency
    sites, guard the call with {!enabled} if constructing the fields
    is itself costly. *)

val drain : unit -> t list
(** All queued events in emission order, clearing the queue. *)

val dropped : unit -> int
(** Events discarded because the queue was full, since the last
    {!reset}/{!set_capacity}. *)

val set_capacity : int -> unit
(** Replace the queue bound (min 1, default 65536).  Clears the queue
    and zeroes {!dropped}. *)

val reset : unit -> unit
(** Disable, clear the queue, zero {!dropped}. *)

val to_json : t -> Jsonx.t
(** [{"ev": name, "ts_s": ..., "domain": ..., <fields>}] — one JSONL
    record per event. *)
