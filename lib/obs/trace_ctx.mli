(** Observability context: the master switch and the current span
    nesting.

    The switch and the span-id counter are {e process-global} atomics:
    [enable] on the main domain turns instrumentation on for pool
    workers too, so metrics and events cover every domain's share of
    the work (the registry and sinks are domain-safe).  The span
    {e stack} remains domain-local — nesting is a per-domain notion,
    and a worker's spans must not reparent concurrent spans on the
    main domain.

    Every instrumented call site guards itself with a single
    {!enabled} check; when the switch is off the instrumentation is an
    atomic load and nothing else — no allocation, no hashing, no
    syscalls. *)

val enabled : unit -> bool
(** The single check every instrumented path performs first. *)

val enable : unit -> unit
val disable : unit -> unit

val fresh_id : unit -> int
(** Next span id (unique per process run across all domains, starting
    at 1). *)

val current_parent : unit -> int option
(** Innermost open span on the calling domain, if any. *)

val push : int -> unit
(** Open a span: it becomes the parent of subsequent spans on this
    domain. *)

val pop : int -> unit
(** Close a span.  Tolerates out-of-order finishes (the span is
    removed wherever it sits in the stack) so an exception unwinding
    through several [Span.start]/[finish] pairs cannot corrupt the
    nesting of unrelated spans. *)

val reset : unit -> unit
(** Clear the calling domain's stack and restart ids at 1.  For tests
    and for harnesses (e.g. the bench snapshot) that take several
    reports per process. *)
