(** Observability context: the master switch and the current span
    nesting.  Both are {e domain-local}: [enable] flips the switch for
    the calling domain only, so pool workers (which never call it) skip
    all instrumentation at the {!enabled} check and cannot race on the
    metric registry.  Under [--jobs > 1], reports consequently cover
    the main domain's share of the work.

    Every instrumented call site guards itself with a single
    {!enabled} check; when the switch is off the instrumentation is a
    bool dereference and nothing else — no allocation, no hashing, no
    syscalls.  The span stack records which span is currently open so
    that {!Span.start} can attach new spans to the right parent
    without the caller threading a context value through every
    function signature. *)

val enabled : unit -> bool
(** The single check every instrumented path performs first. *)

val enable : unit -> unit
val disable : unit -> unit

val fresh_id : unit -> int
(** Next span id (ids are unique per process run, starting at 1). *)

val current_parent : unit -> int option
(** Innermost open span, if any. *)

val push : int -> unit
(** Open a span: it becomes the parent of subsequent spans. *)

val pop : int -> unit
(** Close a span.  Tolerates out-of-order finishes (the span is
    removed wherever it sits in the stack) so an exception unwinding
    through several [Span.start]/[finish] pairs cannot corrupt the
    nesting of unrelated spans. *)

val reset : unit -> unit
(** Clear the stack and restart ids at 1.  For tests and for harnesses
    (e.g. the bench snapshot) that take several reports per process. *)
