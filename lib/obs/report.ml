type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Assoc of (string * json) list

(* ------------------------------------------------------------------ *)
(* serialisation *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_literal f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let json_to_string j =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (string_of_bool v)
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_literal f)
    | String s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | List l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          go x)
        l;
      Buffer.add_char b ']'
    | Assoc kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          go (String k);
          Buffer.add_char b ':';
          go v)
        kvs;
      Buffer.add_char b '}'
  in
  go j;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* parsing *)

exception Parse of string

let json_of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        if !pos >= n then fail "unterminated escape";
        let c = s.[!pos] in
        advance ();
        (match c with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'n' -> Buffer.add_char b '\n'
         | 'r' -> Buffer.add_char b '\r'
         | 't' -> Buffer.add_char b '\t'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'u' ->
           if !pos + 4 > n then fail "short \\u escape";
           let code = int_of_string ("0x" ^ String.sub s !pos 4) in
           pos := !pos + 4;
           if code < 0x80 then Buffer.add_char b (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
         | _ -> fail "bad escape");
        go ()
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Assoc []
      end
      else begin
        let member () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let items = ref [ member () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := member () :: !items;
          skip_ws ()
        done;
        expect '}';
        Assoc (List.rev !items)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse msg -> Error msg

(* ------------------------------------------------------------------ *)
(* reports *)

type t = {
  command : string;
  timestamp : float;
  elapsed_s : float;
  metrics : Metric.entry list;
  spans : Span.record list;
}

let collect ~command () =
  let spans = Span.drain () in
  let t0 =
    List.fold_left
      (fun acc (s : Span.record) -> Float.min acc s.Span.start_s)
      infinity spans
  in
  let t1 =
    List.fold_left
      (fun acc (s : Span.record) -> Float.max acc (s.Span.start_s +. s.Span.dur_s))
      neg_infinity spans
  in
  let spans =
    List.map (fun (s : Span.record) -> { s with Span.start_s = s.Span.start_s -. t0 }) spans
  in
  {
    command;
    timestamp = Unix.gettimeofday ();
    elapsed_s = (if spans = [] then 0. else t1 -. t0);
    metrics = Metric.snapshot ();
    spans;
  }

let schema_id = "cpsdim.obs/1"

let to_json t =
  let counters, gauges, histograms =
    List.fold_left
      (fun (cs, gs, hs) entry ->
        match entry with
        | Metric.Counter (name, v) -> ((name, Int v) :: cs, gs, hs)
        | Metric.Gauge (name, v) -> (cs, (name, Float v) :: gs, hs)
        | Metric.Histogram (name, s) ->
          ( cs,
            gs,
            ( name,
              Assoc
                [
                  ("n", Int s.Metric.n);
                  ("min", Float s.Metric.min);
                  ("max", Float s.Metric.max);
                  ("mean", Float s.Metric.mean);
                  ("p50", Float s.Metric.p50);
                  ("p90", Float s.Metric.p90);
                  ("p99", Float s.Metric.p99);
                ] )
            :: hs ))
      ([], [], []) t.metrics
  in
  Assoc
    [
      ("schema", String schema_id);
      ("command", String t.command);
      ("timestamp", Float t.timestamp);
      ("elapsed_s", Float t.elapsed_s);
      ("counters", Assoc (List.rev counters));
      ("gauges", Assoc (List.rev gauges));
      ("histograms", Assoc (List.rev histograms));
      ( "spans",
        List
          (List.map
             (fun (s : Span.record) ->
               Assoc
                 [
                   ("id", Int s.Span.id);
                   ("name", String s.Span.name);
                   ( "parent",
                     match s.Span.parent with None -> Null | Some p -> Int p );
                   ("start_s", Float s.Span.start_s);
                   ("dur_s", Float s.Span.dur_s);
                 ])
             t.spans) );
    ]

let ( let* ) = Result.bind

let field name = function
  | Assoc kvs -> (
    match List.assoc_opt name kvs with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" name))
  | _ -> Error "expected an object"

let as_string = function String s -> Ok s | _ -> Error "expected a string"

let as_float = function
  | Float f -> Ok f
  | Int i -> Ok (float_of_int i)
  | _ -> Error "expected a number"

let as_int = function Int i -> Ok i | _ -> Error "expected an integer"
let as_assoc = function Assoc kvs -> Ok kvs | _ -> Error "expected an object"
let as_list = function List l -> Ok l | _ -> Error "expected an array"

let map_result f l =
  List.fold_left
    (fun acc x ->
      let* acc = acc in
      let* y = f x in
      Ok (y :: acc))
    (Ok []) l
  |> Result.map List.rev

let of_json j =
  let* schema = field "schema" j in
  let* schema = as_string schema in
  if schema <> schema_id then Error ("unknown schema " ^ schema)
  else
    let* command = Result.bind (field "command" j) as_string in
    let* timestamp = Result.bind (field "timestamp" j) as_float in
    let* elapsed_s = Result.bind (field "elapsed_s" j) as_float in
    let* counters = Result.bind (field "counters" j) as_assoc in
    let* counters =
      map_result
        (fun (name, v) ->
          let* v = as_int v in
          Ok (Metric.Counter (name, v)))
        counters
    in
    let* gauges = Result.bind (field "gauges" j) as_assoc in
    let* gauges =
      map_result
        (fun (name, v) ->
          let* v = as_float v in
          Ok (Metric.Gauge (name, v)))
        gauges
    in
    let* histograms = Result.bind (field "histograms" j) as_assoc in
    let* histograms =
      map_result
        (fun (name, v) ->
          let* n = Result.bind (field "n" v) as_int in
          let* min = Result.bind (field "min" v) as_float in
          let* max = Result.bind (field "max" v) as_float in
          let* mean = Result.bind (field "mean" v) as_float in
          let* p50 = Result.bind (field "p50" v) as_float in
          let* p90 = Result.bind (field "p90" v) as_float in
          let* p99 = Result.bind (field "p99" v) as_float in
          Ok (Metric.Histogram (name, { Metric.n; min; max; mean; p50; p90; p99 })))
        histograms
    in
    let* spans = Result.bind (field "spans" j) as_list in
    let* spans =
      map_result
        (fun s ->
          let* id = Result.bind (field "id" s) as_int in
          let* name = Result.bind (field "name" s) as_string in
          let* parent =
            match field "parent" s with
            | Ok Null -> Ok None
            | Ok v -> Result.map Option.some (as_int v)
            | Error _ as e -> e
          in
          let* start_s = Result.bind (field "start_s" s) as_float in
          let* dur_s = Result.bind (field "dur_s" s) as_float in
          Ok { Span.id; name; parent; start_s; dur_s })
        spans
    in
    let metrics =
      (* restore the name order [Metric.snapshot] produces *)
      List.sort
        (fun a b ->
          let name = function
            | Metric.Counter (n, _) | Metric.Gauge (n, _) | Metric.Histogram (n, _)
              -> n
          in
          String.compare (name a) (name b))
        (counters @ gauges @ histograms)
    in
    Ok { command; timestamp; elapsed_s; metrics; spans }

(* ------------------------------------------------------------------ *)
(* human summary *)

let pp ppf t =
  Format.fprintf ppf "@[<v>== %s == (%.2f s)@," t.command t.elapsed_s;
  if t.spans <> [] then begin
    Format.fprintf ppf "spans:@,";
    (* pre-order walk of the parent forest, in start order *)
    let children id =
      List.filter (fun (s : Span.record) -> s.Span.parent = Some id) t.spans
    in
    let roots =
      List.filter (fun (s : Span.record) -> s.Span.parent = None) t.spans
    in
    let by_start =
      List.sort (fun (a : Span.record) b -> compare a.Span.start_s b.Span.start_s)
    in
    let rec walk depth (s : Span.record) =
      Format.fprintf ppf "  %s%-*s %8.3f s@," (String.make (2 * depth) ' ')
        (Int.max 1 (30 - (2 * depth)))
        s.Span.name s.Span.dur_s;
      List.iter (walk (depth + 1)) (by_start (children s.Span.id))
    in
    List.iter (walk 0) (by_start roots)
  end;
  let counters =
    List.filter_map (function Metric.Counter (n, v) -> Some (n, v) | _ -> None) t.metrics
  in
  let gauges =
    List.filter_map (function Metric.Gauge (n, v) -> Some (n, v) | _ -> None) t.metrics
  in
  let histograms =
    List.filter_map (function Metric.Histogram (n, s) -> Some (n, s) | _ -> None) t.metrics
  in
  if counters <> [] then begin
    Format.fprintf ppf "counters:@,";
    List.iter (fun (n, v) -> Format.fprintf ppf "  %-34s %d@," n v) counters
  end;
  if gauges <> [] then begin
    Format.fprintf ppf "gauges:@,";
    List.iter (fun (n, v) -> Format.fprintf ppf "  %-34s %.3f@," n v) gauges
  end;
  if histograms <> [] then begin
    Format.fprintf ppf "histograms:@,";
    List.iter
      (fun (n, (s : Metric.summary)) ->
        Format.fprintf ppf
          "  %-34s n=%d min=%.4f mean=%.4f p50=%.4f p90=%.4f p99=%.4f max=%.4f@," n
          s.Metric.n s.Metric.min s.Metric.mean s.Metric.p50 s.Metric.p90
          s.Metric.p99 s.Metric.max)
      histograms
  end;
  Format.fprintf ppf "@]"
