type json = Jsonx.t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Assoc of (string * json) list

let json_to_string = Jsonx.to_string
let json_of_string = Jsonx.of_string

(* ------------------------------------------------------------------ *)
(* reports *)

type t = {
  command : string;
  timestamp : float;
  elapsed_s : float;
  metrics : Metric.entry list;
  spans : Span.record list;
}

let sort_metrics =
  List.sort (fun a b ->
      let name = function
        | Metric.Counter (n, _) | Metric.Gauge (n, _) | Metric.Histogram (n, _)
          -> n
      in
      String.compare (name a) (name b))

let collect ~command () =
  let spans = Span.drain () in
  let t0 =
    List.fold_left
      (fun acc (s : Span.record) -> Float.min acc s.Span.start_s)
      infinity spans
  in
  let t1 =
    List.fold_left
      (fun acc (s : Span.record) -> Float.max acc (s.Span.start_s +. s.Span.dur_s))
      neg_infinity spans
  in
  let spans =
    List.map (fun (s : Span.record) -> { s with Span.start_s = s.Span.start_s -. t0 }) spans
  in
  (* Surface buffer losses as first-class counters so a truncated
     report is distinguishable from a quiet run. *)
  let losses =
    List.concat
      [
        (let d = Span.dropped () in
         if d > 0 then [ Metric.Counter ("obs.spans_dropped", d) ] else []);
        (let d = Event.dropped () in
         if d > 0 then [ Metric.Counter ("obs.events_dropped", d) ] else []);
      ]
  in
  {
    command;
    timestamp = Clock.wall ();
    elapsed_s = (if spans = [] then 0. else t1 -. t0);
    metrics = sort_metrics (losses @ Metric.snapshot ());
    spans;
  }

let schema_id = "cpsdim.obs/2"
let schema_id_v1 = "cpsdim.obs/1"

let to_json t =
  let counters, gauges, histograms =
    List.fold_left
      (fun (cs, gs, hs) entry ->
        match entry with
        | Metric.Counter (name, v) -> ((name, Int v) :: cs, gs, hs)
        | Metric.Gauge (name, v) -> (cs, (name, Float v) :: gs, hs)
        | Metric.Histogram (name, s) ->
          ( cs,
            gs,
            ( name,
              Assoc
                [
                  ("n", Int s.Metric.n);
                  ("min", Float s.Metric.min);
                  ("max", Float s.Metric.max);
                  ("mean", Float s.Metric.mean);
                  ("p50", Float s.Metric.p50);
                  ("p90", Float s.Metric.p90);
                  ("p99", Float s.Metric.p99);
                ] )
            :: hs ))
      ([], [], []) t.metrics
  in
  Assoc
    [
      ("schema", String schema_id);
      ("command", String t.command);
      ("timestamp", Float t.timestamp);
      ("elapsed_s", Float t.elapsed_s);
      ("counters", Assoc (List.rev counters));
      ("gauges", Assoc (List.rev gauges));
      ("histograms", Assoc (List.rev histograms));
      ( "spans",
        List
          (List.map
             (fun (s : Span.record) ->
               Assoc
                 [
                   ("id", Int s.Span.id);
                   ("name", String s.Span.name);
                   ( "parent",
                     match s.Span.parent with None -> Null | Some p -> Int p );
                   ("start_s", Float s.Span.start_s);
                   ("dur_s", Float s.Span.dur_s);
                   ("gc_minor_w", Float s.Span.gc_minor_w);
                   ("gc_major_w", Float s.Span.gc_major_w);
                   ("gc_compact", Int s.Span.gc_compact);
                 ])
             t.spans) );
    ]

let ( let* ) = Result.bind

let field name = function
  | Assoc kvs -> (
    match List.assoc_opt name kvs with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" name))
  | _ -> Error "expected an object"

let as_string = function String s -> Ok s | _ -> Error "expected a string"

let as_float = function
  | Float f -> Ok f
  | Int i -> Ok (float_of_int i)
  | _ -> Error "expected a number"

let as_int = function Int i -> Ok i | _ -> Error "expected an integer"
let as_assoc = function Assoc kvs -> Ok kvs | _ -> Error "expected an object"
let as_list = function List l -> Ok l | _ -> Error "expected an array"

(* v1 spans carry no GC fields; default them to zero on read. *)
let float_field_default name ~default s =
  match field name s with
  | Ok v -> as_float v
  | Error _ -> Ok default

let int_field_default name ~default s =
  match field name s with
  | Ok v -> as_int v
  | Error _ -> Ok default

let map_result f l =
  List.fold_left
    (fun acc x ->
      let* acc = acc in
      let* y = f x in
      Ok (y :: acc))
    (Ok []) l
  |> Result.map List.rev

let of_json j =
  let* schema = field "schema" j in
  let* schema = as_string schema in
  if schema <> schema_id && schema <> schema_id_v1 then
    Error ("unknown schema " ^ schema)
  else
    let* command = Result.bind (field "command" j) as_string in
    let* timestamp = Result.bind (field "timestamp" j) as_float in
    let* elapsed_s = Result.bind (field "elapsed_s" j) as_float in
    let* counters = Result.bind (field "counters" j) as_assoc in
    let* counters =
      map_result
        (fun (name, v) ->
          let* v = as_int v in
          Ok (Metric.Counter (name, v)))
        counters
    in
    let* gauges = Result.bind (field "gauges" j) as_assoc in
    let* gauges =
      map_result
        (fun (name, v) ->
          let* v = as_float v in
          Ok (Metric.Gauge (name, v)))
        gauges
    in
    let* histograms = Result.bind (field "histograms" j) as_assoc in
    let* histograms =
      map_result
        (fun (name, v) ->
          let* n = Result.bind (field "n" v) as_int in
          let* min = Result.bind (field "min" v) as_float in
          let* max = Result.bind (field "max" v) as_float in
          let* mean = Result.bind (field "mean" v) as_float in
          let* p50 = Result.bind (field "p50" v) as_float in
          let* p90 = Result.bind (field "p90" v) as_float in
          let* p99 = Result.bind (field "p99" v) as_float in
          Ok (Metric.Histogram (name, { Metric.n; min; max; mean; p50; p90; p99 })))
        histograms
    in
    let* spans = Result.bind (field "spans" j) as_list in
    let* spans =
      map_result
        (fun s ->
          let* id = Result.bind (field "id" s) as_int in
          let* name = Result.bind (field "name" s) as_string in
          let* parent =
            match field "parent" s with
            | Ok Null -> Ok None
            | Ok v -> Result.map Option.some (as_int v)
            | Error _ as e -> e
          in
          let* start_s = Result.bind (field "start_s" s) as_float in
          let* dur_s = Result.bind (field "dur_s" s) as_float in
          let* gc_minor_w = float_field_default "gc_minor_w" ~default:0. s in
          let* gc_major_w = float_field_default "gc_major_w" ~default:0. s in
          let* gc_compact = int_field_default "gc_compact" ~default:0 s in
          Ok
            {
              Span.id;
              name;
              parent;
              start_s;
              dur_s;
              gc_minor_w;
              gc_major_w;
              gc_compact;
            })
        spans
    in
    (* restore the name order [Metric.snapshot] produces *)
    let metrics = sort_metrics (counters @ gauges @ histograms) in
    Ok { command; timestamp; elapsed_s; metrics; spans }

(* ------------------------------------------------------------------ *)
(* human summary *)

let pp ppf t =
  Format.fprintf ppf "@[<v>== %s == (%.2f s)@," t.command t.elapsed_s;
  if t.spans <> [] then begin
    Format.fprintf ppf "spans:@,";
    (* pre-order walk of the parent forest, in start order *)
    let children id =
      List.filter (fun (s : Span.record) -> s.Span.parent = Some id) t.spans
    in
    let roots =
      List.filter (fun (s : Span.record) -> s.Span.parent = None) t.spans
    in
    let by_start =
      List.sort (fun (a : Span.record) b -> compare a.Span.start_s b.Span.start_s)
    in
    let rec walk depth (s : Span.record) =
      Format.fprintf ppf "  %s%-*s %8.3f s  (minor %.2e w, major %.2e w%s)@,"
        (String.make (2 * depth) ' ')
        (Int.max 1 (30 - (2 * depth)))
        s.Span.name s.Span.dur_s s.Span.gc_minor_w s.Span.gc_major_w
        (if s.Span.gc_compact > 0 then
           Printf.sprintf ", %d compactions" s.Span.gc_compact
         else "");
      List.iter (walk (depth + 1)) (by_start (children s.Span.id))
    in
    List.iter (walk 0) (by_start roots)
  end;
  let counters =
    List.filter_map (function Metric.Counter (n, v) -> Some (n, v) | _ -> None) t.metrics
  in
  let gauges =
    List.filter_map (function Metric.Gauge (n, v) -> Some (n, v) | _ -> None) t.metrics
  in
  let histograms =
    List.filter_map (function Metric.Histogram (n, s) -> Some (n, s) | _ -> None) t.metrics
  in
  if counters <> [] then begin
    Format.fprintf ppf "counters:@,";
    List.iter (fun (n, v) -> Format.fprintf ppf "  %-34s %d@," n v) counters
  end;
  if gauges <> [] then begin
    Format.fprintf ppf "gauges:@,";
    List.iter (fun (n, v) -> Format.fprintf ppf "  %-34s %.3f@," n v) gauges
  end;
  if histograms <> [] then begin
    Format.fprintf ppf "histograms:@,";
    List.iter
      (fun (n, (s : Metric.summary)) ->
        Format.fprintf ppf
          "  %-34s n=%d min=%.4f mean=%.4f p50=%.4f p90=%.4f p99=%.4f max=%.4f@," n
          s.Metric.n s.Metric.min s.Metric.mean s.Metric.p50 s.Metric.p90
          s.Metric.p99 s.Metric.max)
      histograms
  end;
  Format.fprintf ppf "@]"
