type t = int

let none = 0

type open_span = {
  o_name : string;
  o_parent : int option;
  o_start : float;
  o_minor_w : float;
  o_major_w : float;
  o_compact : int;
}

type record = {
  id : int;
  name : string;
  parent : int option;
  start_s : float;
  dur_s : float;
  gc_minor_w : float;
  gc_major_w : float;
  gc_compact : int;
}

(* Open spans and the finished ring share one mutex: both are touched
   on every start/finish, contention is bounded by span frequency
   (phases, not inner loops), and a single lock rules out ordering
   bugs between the two structures. *)
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  match f () with
  | v ->
    Mutex.unlock lock;
    v
  | exception e ->
    Mutex.unlock lock;
    raise e

let open_spans : (int, open_span) Hashtbl.t = Hashtbl.create 16

(* Fixed-capacity ring of finished spans, oldest overwritten first: a
   long-running command with spans in a hot loop keeps the newest
   [capacity] records and counts the rest instead of growing without
   bound. *)
let default_capacity = 8192
let ring : record option array ref = ref (Array.make default_capacity None)
let ring_head = ref 0 (* next write position *)
let ring_len = ref 0
let dropped_count = ref 0

let set_capacity n =
  let n = Int.max 1 n in
  with_lock (fun () ->
      ring := Array.make n None;
      ring_head := 0;
      ring_len := 0;
      dropped_count := 0)

let dropped () = with_lock (fun () -> !dropped_count)

let push_finished r =
  let cap = Array.length !ring in
  if !ring_len = cap then incr dropped_count else incr ring_len;
  !ring.(!ring_head) <- Some r;
  ring_head := (!ring_head + 1) mod cap

let start name =
  if not (Trace_ctx.enabled ()) then none
  else begin
    let id = Trace_ctx.fresh_id () in
    let parent = Trace_ctx.current_parent () in
    let gc = Gc.quick_stat () in
    with_lock (fun () ->
        Hashtbl.replace open_spans id
          {
            o_name = name;
            o_parent = parent;
            o_start = Clock.now ();
            o_minor_w = gc.Gc.minor_words;
            o_major_w = gc.Gc.major_words;
            o_compact = gc.Gc.compactions;
          });
    Trace_ctx.push id;
    id
  end

let finish t =
  if t <> none then begin
    let now = Clock.now () in
    let gc = Gc.quick_stat () in
    with_lock (fun () ->
        match Hashtbl.find_opt open_spans t with
        | None -> ()
        | Some o ->
          Hashtbl.remove open_spans t;
          push_finished
            {
              id = t;
              name = o.o_name;
              parent = o.o_parent;
              start_s = o.o_start;
              dur_s = now -. o.o_start;
              gc_minor_w = gc.Gc.minor_words -. o.o_minor_w;
              gc_major_w = gc.Gc.major_words -. o.o_major_w;
              gc_compact = gc.Gc.compactions - o.o_compact;
            });
    Trace_ctx.pop t
  end

let with_ name f =
  if not (Trace_ctx.enabled ()) then f ()
  else begin
    let s = start name in
    Fun.protect ~finally:(fun () -> finish s) f
  end

let drain () =
  with_lock (fun () ->
      let cap = Array.length !ring in
      let n = !ring_len in
      let first = (!ring_head - n + cap) mod cap in
      let out = ref [] in
      for i = n - 1 downto 0 do
        match !ring.((first + i) mod cap) with
        | Some r -> out := r :: !out
        | None -> ()
      done;
      Array.fill !ring 0 cap None;
      ring_head := 0;
      ring_len := 0;
      !out)

let reset () =
  with_lock (fun () ->
      Hashtbl.reset open_spans;
      Array.fill !ring 0 (Array.length !ring) None;
      ring_head := 0;
      ring_len := 0;
      dropped_count := 0)
