type t = int

let none = 0

type open_span = { o_name : string; o_parent : int option; o_start : float }

type record = {
  id : int;
  name : string;
  parent : int option;
  start_s : float;
  dur_s : float;
}

let open_spans : (int, open_span) Hashtbl.t = Hashtbl.create 16
let finished : record list ref = ref [] (* newest first *)

let start name =
  if not (Trace_ctx.enabled ()) then none
  else begin
    let id = Trace_ctx.fresh_id () in
    Hashtbl.replace open_spans id
      {
        o_name = name;
        o_parent = Trace_ctx.current_parent ();
        o_start = Unix.gettimeofday ();
      };
    Trace_ctx.push id;
    id
  end

let finish t =
  if t <> none then
    match Hashtbl.find_opt open_spans t with
    | None -> ()
    | Some o ->
      Hashtbl.remove open_spans t;
      Trace_ctx.pop t;
      finished :=
        {
          id = t;
          name = o.o_name;
          parent = o.o_parent;
          start_s = o.o_start;
          dur_s = Unix.gettimeofday () -. o.o_start;
        }
        :: !finished

let with_ name f =
  if not (Trace_ctx.enabled ()) then f ()
  else begin
    let s = start name in
    Fun.protect ~finally:(fun () -> finish s) f
  end

let drain () =
  let r = List.rev !finished in
  finished := [];
  r

let reset () =
  finished := [];
  Hashtbl.reset open_spans
