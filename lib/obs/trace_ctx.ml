(* The master switch and span-id counter are process-global atomics:
   pool workers spawned by Par see the same switch as the main domain,
   so instrumentation now covers every domain's share of the work (the
   metric registry and span sink are domain-safe — see Metric/Span).
   Only the span *stack* stays domain-local: nesting is a per-domain
   notion, and a worker opening a span must not reparent spans opened
   concurrently on the main domain. *)
let on = Atomic.make false
let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

let next_id = Atomic.make 0
let fresh_id () = Atomic.fetch_and_add next_id 1 + 1

let stack : int list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let current_parent () =
  match !(Domain.DLS.get stack) with [] -> None | id :: _ -> Some id

let push id =
  let stack = Domain.DLS.get stack in
  stack := id :: !stack

let pop id =
  let stack = Domain.DLS.get stack in
  match !stack with
  | top :: rest when top = id -> stack := rest
  | _ -> stack := List.filter (fun x -> x <> id) !stack

let reset () =
  Domain.DLS.get stack := [];
  Atomic.set next_id 0
