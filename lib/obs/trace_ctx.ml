let on = ref false
let enabled () = !on
let enable () = on := true
let disable () = on := false

let stack : int list ref = ref []
let next_id = ref 0

let fresh_id () =
  incr next_id;
  !next_id

let current_parent () = match !stack with [] -> None | id :: _ -> Some id
let push id = stack := id :: !stack

let pop id =
  match !stack with
  | top :: rest when top = id -> stack := rest
  | _ -> stack := List.filter (fun x -> x <> id) !stack

let reset () =
  stack := [];
  next_id := 0
