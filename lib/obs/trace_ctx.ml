(* All three pieces of context are domain-local: pool workers spawned by
   Par see the switch off by default, so instrumentation on worker
   domains short-circuits at the [enabled] check and never touches the
   (unsynchronised) metric registry or span sink.  Under --jobs > 1 the
   reports therefore cover the main domain's share of the work only. *)
let on = Domain.DLS.new_key (fun () -> ref false)
let enabled () = !(Domain.DLS.get on)
let enable () = Domain.DLS.get on := true
let disable () = Domain.DLS.get on := false

let stack : int list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])
let next_id = Domain.DLS.new_key (fun () -> ref 0)

let fresh_id () =
  let next_id = Domain.DLS.get next_id in
  incr next_id;
  !next_id

let current_parent () =
  match !(Domain.DLS.get stack) with [] -> None | id :: _ -> Some id

let push id =
  let stack = Domain.DLS.get stack in
  stack := id :: !stack

let pop id =
  let stack = Domain.DLS.get stack in
  match !stack with
  | top :: rest when top = id -> stack := rest
  | _ -> stack := List.filter (fun x -> x <> id) !stack

let reset () =
  Domain.DLS.get stack := [];
  Domain.DLS.get next_id := 0
