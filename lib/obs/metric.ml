type counter = { c_name : string; v : int Atomic.t }
type gauge = { g_name : string; mutable g : float; mutable g_set : bool }

type histogram = {
  h_name : string;
  mutable values : float array;
  mutable len : int;
}

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let find_or_create name make =
  match Hashtbl.find_opt registry name with
  | Some m -> m
  | None ->
    let m = make () in
    Hashtbl.replace registry name m;
    m

let counter name =
  match
    find_or_create name (fun () -> C { c_name = name; v = Atomic.make 0 })
  with
  | C c -> c
  | G _ | H _ -> invalid_arg ("Metric.counter: " ^ name ^ " is not a counter")

let add c n = if Trace_ctx.enabled () then ignore (Atomic.fetch_and_add c.v n)
let incr c = add c 1
let value c = Atomic.get c.v

let gauge name =
  match
    find_or_create name (fun () -> G { g_name = name; g = 0.; g_set = false })
  with
  | G g -> g
  | C _ | H _ -> invalid_arg ("Metric.gauge: " ^ name ^ " is not a gauge")

let set g v =
  if Trace_ctx.enabled () then begin
    g.g <- v;
    g.g_set <- true
  end

let set_max g v =
  if Trace_ctx.enabled () then
    if (not g.g_set) || v > g.g then begin
      g.g <- v;
      g.g_set <- true
    end

let gauge_value g = if g.g_set then Some g.g else None

let histogram name =
  match
    find_or_create name (fun () ->
        H { h_name = name; values = [||]; len = 0 })
  with
  | H h -> h
  | C _ | G _ -> invalid_arg ("Metric.histogram: " ^ name ^ " is not a histogram")

let observe h v =
  if Trace_ctx.enabled () then begin
    if h.len = Array.length h.values then begin
      let cap = Int.max 16 (2 * h.len) in
      let grown = Array.make cap 0. in
      Array.blit h.values 0 grown 0 h.len;
      h.values <- grown
    end;
    h.values.(h.len) <- v;
    h.len <- h.len + 1
  end

let sorted_values h = Array.sub h.values 0 h.len |> fun a -> Array.sort compare a; a

let percentile h q =
  if h.len = 0 then nan
  else begin
    let a = sorted_values h in
    let rank = int_of_float (ceil (q *. float_of_int h.len)) - 1 in
    a.(Int.max 0 (Int.min (h.len - 1) rank))
  end

let count name n = if Trace_ctx.enabled () then add (counter name) n
let set_gauge name v = if Trace_ctx.enabled () then set (gauge name) v
let max_gauge name v = if Trace_ctx.enabled () then set_max (gauge name) v
let observe_value name v = if Trace_ctx.enabled () then observe (histogram name) v

type summary = {
  n : int;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type entry =
  | Counter of string * int
  | Gauge of string * float
  | Histogram of string * summary

let summarise h =
  let a = sorted_values h in
  let n = h.len in
  let total = Array.fold_left ( +. ) 0. a in
  {
    n;
    min = a.(0);
    max = a.(n - 1);
    mean = total /. float_of_int n;
    p50 = percentile h 0.5;
    p90 = percentile h 0.9;
    p99 = percentile h 0.99;
  }

let snapshot () =
  Hashtbl.fold
    (fun name m acc ->
      match m with
      | C c -> if Atomic.get c.v <> 0 then Counter (name, Atomic.get c.v) :: acc else acc
      | G g -> if g.g_set then Gauge (name, g.g) :: acc else acc
      | H h -> if h.len > 0 then Histogram (name, summarise h) :: acc else acc)
    registry []
  |> List.sort (fun a b ->
         let name = function
           | Counter (n, _) | Gauge (n, _) | Histogram (n, _) -> n
         in
         String.compare (name a) (name b))

let reset () = Hashtbl.reset registry
