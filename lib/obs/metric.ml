type counter = { c_name : string; v : int Atomic.t }

(* [None] = unset; a CAS loop makes [set_max] exact when several
   domains race to publish peaks. *)
type gauge = { g_name : string; g : float option Atomic.t }

type histogram = {
  h_name : string;
  h_lock : Mutex.t;
  mutable values : float array;
  mutable len : int;
}

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let with_lock m f =
  Mutex.lock m;
  match f () with
  | v ->
    Mutex.unlock m;
    v
  | exception e ->
    Mutex.unlock m;
    raise e

let find_or_create name make =
  with_lock registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> m
      | None ->
        let m = make () in
        Hashtbl.replace registry name m;
        m)

let counter name =
  match
    find_or_create name (fun () -> C { c_name = name; v = Atomic.make 0 })
  with
  | C c -> c
  | G _ | H _ -> invalid_arg ("Metric.counter: " ^ name ^ " is not a counter")

let add c n = if Trace_ctx.enabled () then ignore (Atomic.fetch_and_add c.v n)
let incr c = add c 1
let value c = Atomic.get c.v

let gauge name =
  match
    find_or_create name (fun () -> G { g_name = name; g = Atomic.make None })
  with
  | G g -> g
  | C _ | H _ -> invalid_arg ("Metric.gauge: " ^ name ^ " is not a gauge")

let set g v = if Trace_ctx.enabled () then Atomic.set g.g (Some v)

let set_max g v =
  if Trace_ctx.enabled () then begin
    let rec loop () =
      let cur = Atomic.get g.g in
      match cur with
      | Some m when v <= m -> ()
      | _ -> if not (Atomic.compare_and_set g.g cur (Some v)) then loop ()
    in
    loop ()
  end

let gauge_value g = Atomic.get g.g

let histogram name =
  match
    find_or_create name (fun () ->
        H { h_name = name; h_lock = Mutex.create (); values = [||]; len = 0 })
  with
  | H h -> h
  | C _ | G _ -> invalid_arg ("Metric.histogram: " ^ name ^ " is not a histogram")

let observe h v =
  if Trace_ctx.enabled () then
    with_lock h.h_lock (fun () ->
        if h.len = Array.length h.values then begin
          let cap = Int.max 16 (2 * h.len) in
          let grown = Array.make cap 0. in
          Array.blit h.values 0 grown 0 h.len;
          h.values <- grown
        end;
        h.values.(h.len) <- v;
        h.len <- h.len + 1)

(* Copy under the histogram lock, sort outside it. *)
let sorted_values h =
  let a = with_lock h.h_lock (fun () -> Array.sub h.values 0 h.len) in
  Array.sort compare a;
  a

let percentile_of_sorted a q =
  let n = Array.length a in
  if n = 0 then nan
  else begin
    let rank = int_of_float (ceil (q *. float_of_int n)) - 1 in
    a.(Int.max 0 (Int.min (n - 1) rank))
  end

let percentile h q = percentile_of_sorted (sorted_values h) q

let count name n = if Trace_ctx.enabled () then add (counter name) n
let set_gauge name v = if Trace_ctx.enabled () then set (gauge name) v
let max_gauge name v = if Trace_ctx.enabled () then set_max (gauge name) v
let observe_value name v = if Trace_ctx.enabled () then observe (histogram name) v

type summary = {
  n : int;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type entry =
  | Counter of string * int
  | Gauge of string * float
  | Histogram of string * summary

let summarise_sorted a =
  let n = Array.length a in
  let total = Array.fold_left ( +. ) 0. a in
  {
    n;
    min = a.(0);
    max = a.(n - 1);
    mean = total /. float_of_int n;
    p50 = percentile_of_sorted a 0.5;
    p90 = percentile_of_sorted a 0.9;
    p99 = percentile_of_sorted a 0.99;
  }

let snapshot () =
  (* Collect handles under the registry lock; summarising takes each
     histogram's own lock, so do it after release to keep lock
     ordering trivial. *)
  let metrics =
    with_lock registry_lock (fun () ->
        Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [])
  in
  List.fold_left
    (fun acc (name, m) ->
      match m with
      | C c -> if Atomic.get c.v <> 0 then Counter (name, Atomic.get c.v) :: acc else acc
      | G g -> (
        match Atomic.get g.g with
        | Some v -> Gauge (name, v) :: acc
        | None -> acc)
      | H h ->
        let a = sorted_values h in
        if Array.length a > 0 then Histogram (name, summarise_sorted a) :: acc
        else acc)
    [] metrics
  |> List.sort (fun a b ->
         let name = function
           | Counter (n, _) | Gauge (n, _) | Histogram (n, _) -> n
         in
         String.compare (name a) (name b))

let reset () = with_lock registry_lock (fun () -> Hashtbl.reset registry)
