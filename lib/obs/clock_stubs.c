/* Monotonic clock for lib/obs.
 *
 * Span durations and event timestamps must never go backwards across
 * an NTP step, so they are read from CLOCK_MONOTONIC; the wall clock
 * is kept only for the one human-facing timestamp per report.  The
 * OCaml Unix library does not expose clock_gettime, hence this stub.
 */
#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>
#include <sys/time.h>

CAMLprim value cpsdim_obs_monotonic_s(value unit)
{
  struct timespec ts;
  (void)unit;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
  {
    /* unreachable on any POSIX system this repo targets; degrade to
       the wall clock rather than failing the instrumented run */
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return caml_copy_double((double)tv.tv_sec + (double)tv.tv_usec * 1e-6);
  }
}
