(* Differential battery for the analytic pre-filter (Sched.Prefilter).

   The screen is only allowed to answer when it provably agrees with
   the exact engine, so the property under test is one-sided soundness
   in both directions:

     Analytic_safe   ==>  Dverify says Safe
     Analytic_unsafe ==>  Dverify says Unsafe

   on randomly generated slot groups, with the [Inconclusive] gap free
   to fall either way.  Hand-built cases pin the two boundaries the
   closed forms are most likely to get wrong by one: total utilisation
   exactly 1.0 (the strict reject trigger must not fire) and a busy
   window landing exactly on the deadline (<= is still an accept).
   The witness attached to a reject must itself replay to the reported
   miss under the concrete scheduler semantics. *)

let spec ~id ~name ~t_w_max ~dw_min ~dw_max ~r =
  Sched.Appspec.make ~id ~name ~t_w_max
    ~t_dw_min:(Array.make (t_w_max + 1) dw_min)
    ~t_dw_max:(Array.make (t_w_max + 1) dw_max)
    ~r

(* ------------------------------------------------------------------ *)
(* Random slot groups, engine-sized: parameters stay small enough that
   the exact verifier terminates in milliseconds, yet straddle the
   accept/reject boundary (per-app utilisation quantum/period around
   1/n each). *)

let gen_spec_params =
  QCheck2.Gen.(
    let* t_w_max = int_range 1 4 in
    let* dw_min = int_range 1 3 in
    let* dw_gap = int_range 0 2 in
    let dw_max = dw_min + dw_gap in
    (* r must exceed every t_w + t_dw_max(t_w) = t_w_max + dw_max *)
    let* slack = int_range 1 8 in
    return (t_w_max, dw_min, dw_max, t_w_max + dw_max + slack))

let gen_group =
  QCheck2.Gen.(
    let* n = int_range 2 3 in
    let* params = list_repeat n gen_spec_params in
    (* bias towards identical-parameter apps now and then: duplicating
       the head parameters exercises the symmetric region the screen
       sees most in homogeneous fleets *)
    let* clone = bool in
    let params =
      match (clone, params) with
      | true, p :: _ -> List.init n (fun _ -> p)
      | _ -> params
    in
    return
      (Array.of_list
         (List.mapi
            (fun id (t_w_max, dw_min, dw_max, r) ->
              spec ~id
                ~name:(String.make 1 (Char.chr (Char.code 'A' + id)))
                ~t_w_max ~dw_min ~dw_max ~r)
            params)))

let pp_group specs =
  String.concat "; "
    (Array.to_list
       (Array.map
          (fun (s : Sched.Appspec.t) ->
            Printf.sprintf "%s{t_w_max=%d dw=[%d,%d] r=%d}"
              s.Sched.Appspec.name s.Sched.Appspec.t_w_max
              s.Sched.Appspec.t_dw_min.(0) s.Sched.Appspec.t_dw_max.(0)
              s.Sched.Appspec.r)
          specs))

let engine_verdict specs =
  match (Core.Dverify.verify specs).Core.Dverify.verdict with
  | Core.Dverify.Safe -> `Safe
  | Core.Dverify.Unsafe _ -> `Unsafe
  | Core.Dverify.Undetermined _ -> `Undetermined

(* a rejection witness must replay step for step: same disturbance
   schedule, same states, ending in exactly the reported miss *)
let witness_replays specs (w : Sched.Prefilter.witness) =
  let rec go st = function
    | [] -> false
    | (disturbed, expected) :: rest ->
      let st', outcome = Sched.Slot_state.tick specs st ~disturbed in
      Sched.Slot_state.equal st' expected
      &&
      (match outcome.Sched.Slot_state.new_errors with
       | [] -> go st' rest
       | errs -> rest = [] && errs = w.Sched.Prefilter.failing)
  in
  go (Sched.Slot_state.initial specs) w.Sched.Prefilter.steps

let prop_soundness =
  QCheck2.Test.make ~name:"prefilter decisions agree with the exact engine"
    ~count:400 ~print:pp_group gen_group (fun specs ->
      match Sched.Prefilter.decide specs with
      | Sched.Prefilter.Inconclusive -> true
      | Sched.Prefilter.Analytic_safe -> (
        match engine_verdict specs with
        | `Safe -> true
        | _ ->
          QCheck2.Test.fail_report
            "screen accepted a group the engine does not prove safe")
      | Sched.Prefilter.Analytic_unsafe w -> (
        if not (witness_replays specs w) then
          QCheck2.Test.fail_report "rejection witness does not replay";
        match engine_verdict specs with
        | `Unsafe -> true
        | _ ->
          QCheck2.Test.fail_report
            "screen rejected a group the engine does not refute"))

(* accepted groups must also agree under the lazy-preemption policy
   when screened for it (the quantum switches to the max dwell) *)
let prop_soundness_lazy =
  QCheck2.Test.make ~name:"lazy-policy accepts imply lazy-engine Safe"
    ~count:150 ~print:pp_group gen_group (fun specs ->
      match
        Sched.Prefilter.decide ~policy:Sched.Slot_state.Lazy_preempt specs
      with
      | Sched.Prefilter.Analytic_safe -> (
        match
          (Core.Dverify.verify ~policy:Sched.Slot_state.Lazy_preempt specs)
            .Core.Dverify.verdict
        with
        | Core.Dverify.Safe -> true
        | _ ->
          QCheck2.Test.fail_report
            "lazy-policy accept contradicts the lazy engine")
      | Sched.Prefilter.Analytic_unsafe w ->
        (* the witness simulates under the same policy, so it must hold
           for the lazy engine too *)
        (match
           (Core.Dverify.verify ~policy:Sched.Slot_state.Lazy_preempt specs)
             .Core.Dverify.verdict
         with
         | Core.Dverify.Unsafe _ -> ignore w; true
         | _ ->
           QCheck2.Test.fail_report
             "lazy-policy reject contradicts the lazy engine")
      | Sched.Prefilter.Inconclusive -> true)

(* ------------------------------------------------------------------ *)
(* Boundary pins *)

(* two identical apps, dwell exactly 3, period r - t_w_max = 6: each
   contributes utilisation 3/6, total exactly 1.0 — and the busy window
   of each app is exactly its deadline (one competitor grant of 3
   samples, then service at wait 3 = T*_w).  Accept must fire; the
   strict utilisation trigger must not. *)
let boundary_tight =
  lazy
    [|
      spec ~id:0 ~name:"A" ~t_w_max:3 ~dw_min:3 ~dw_max:3 ~r:9;
      spec ~id:1 ~name:"B" ~t_w_max:3 ~dw_min:3 ~dw_max:3 ~r:9;
    |]

let test_busy_window_equals_deadline () =
  let g = Lazy.force boundary_tight in
  Alcotest.(check (option int))
    "busy window lands exactly on T*_w" (Some 3)
    (Sched.Prefilter.busy_window g 0);
  (match Sched.Prefilter.decide g with
   | Sched.Prefilter.Analytic_safe -> ()
   | _ -> Alcotest.fail "boundary group must be accepted");
  (match engine_verdict g with
   | `Safe -> ()
   | _ -> Alcotest.fail "engine must confirm the boundary accept")

let test_utilisation_exactly_one_not_rejected () =
  let g = Lazy.force boundary_tight in
  Alcotest.(check bool)
    "no rejection witness at utilisation 1.0" true
    (Sched.Prefilter.rejects g = None)

(* push one sample over the edge: same dwell demand against a deadline
   of 2 — the burst trigger fires, saturation exhibits the miss, and
   the engine agrees *)
let test_over_the_boundary_rejected () =
  let g =
    [|
      spec ~id:0 ~name:"A" ~t_w_max:2 ~dw_min:3 ~dw_max:3 ~r:9;
      spec ~id:1 ~name:"B" ~t_w_max:2 ~dw_min:3 ~dw_max:3 ~r:9;
    |]
  in
  Alcotest.(check (option int))
    "busy window overruns the deadline" None
    (Sched.Prefilter.busy_window g 0);
  (match Sched.Prefilter.decide g with
   | Sched.Prefilter.Analytic_unsafe w ->
     Alcotest.(check bool) "witness replays" true (witness_replays g w)
   | _ -> Alcotest.fail "overloaded boundary group must be rejected");
  match engine_verdict g with
  | `Unsafe -> ()
  | _ -> Alcotest.fail "engine must confirm the boundary reject"

(* utilisation exactly 1.0 spread over three apps, with a busy window
   beyond the deadline: the sufficient test cannot accept, the strict
   utilisation trigger is silent, but the burst trigger fires and the
   saturation schedule finds the real miss *)
let test_three_way_saturation () =
  let g =
    [|
      spec ~id:0 ~name:"A" ~t_w_max:3 ~dw_min:2 ~dw_max:2 ~r:9;
      spec ~id:1 ~name:"B" ~t_w_max:3 ~dw_min:2 ~dw_max:2 ~r:9;
      spec ~id:2 ~name:"C" ~t_w_max:3 ~dw_min:2 ~dw_max:2 ~r:9;
    |]
  in
  (match Sched.Prefilter.decide g with
   | Sched.Prefilter.Analytic_unsafe w ->
     Alcotest.(check bool) "witness replays" true (witness_replays g w)
   | Sched.Prefilter.Analytic_safe ->
     Alcotest.fail "three saturating apps cannot be accepted"
   | Sched.Prefilter.Inconclusive ->
     Alcotest.fail "three saturating apps must be rejected analytically");
  match engine_verdict g with
  | `Unsafe -> ()
  | _ -> Alcotest.fail "engine must confirm the three-way reject"

(* a single app is trivially safe whatever its parameters: the
   interference sum is empty, so the busy window is 0 *)
let test_singleton_accepted () =
  let g = [| spec ~id:0 ~name:"A" ~t_w_max:2 ~dw_min:4 ~dw_max:5 ~r:20 |] in
  Alcotest.(check (option int))
    "empty interference" (Some 0)
    (Sched.Prefilter.busy_window g 0);
  match Sched.Prefilter.decide g with
  | Sched.Prefilter.Analytic_safe -> ()
  | _ -> Alcotest.fail "singleton must be accepted"

(* the screen must never flip a packing: first-fit over the case study
   with and without it is identical, verification counts included *)
let test_mapping_invariant_under_screen () =
  let apps =
    List.map
      (fun name ->
        let a = Casestudy.find name in
        Core.App.make ~name:a.Casestudy.name ~plant:a.Casestudy.plant
          ~gains:a.Casestudy.gains ~r:a.Casestudy.r ~j_star:a.Casestudy.j_star
          ())
      [ "C1"; "C2"; "C3"; "C4"; "C5"; "C6" ]
  in
  let render (o : Core.Mapping.outcome) =
    Format.asprintf "%a" Core.Mapping.pp o
  in
  let on = Core.Mapping.first_fit apps in
  let off = Core.Mapping.first_fit ~prefilter:false ~symmetry:false apps in
  Alcotest.(check string)
    "identical packing and counts with the screen on and off" (render off)
    (render on);
  let opt_on = Core.Mapping.optimal apps in
  let opt_off = Core.Mapping.optimal ~prefilter:false ~symmetry:false apps in
  Alcotest.(check string)
    "identical optimal partition with the screen on and off" (render opt_off)
    (render opt_on)

(* the zone engine's screened path must be verdict-preserving too:
   [Ta_model.verify ~prefilter:true] answers exactly what the bare
   engine answers, and a screened group reports all-zero stats *)
let prop_ta_verify_screened =
  QCheck2.Test.make
    ~name:"Ta_model.verify with the screen matches the bare engine"
    ~count:60 ~print:pp_group gen_group (fun specs ->
      let bare = Core.Ta_model.verify specs in
      let screened = Core.Ta_model.verify ~prefilter:true specs in
      if screened.Core.Ta_model.outcome <> bare.Core.Ta_model.outcome then
        QCheck2.Test.fail_report "screen changed the zone-engine verdict";
      (match Sched.Prefilter.decide specs with
       | Sched.Prefilter.Inconclusive ->
         if screened.Core.Ta_model.stats.Ta.Reach.states
            <> bare.Core.Ta_model.stats.Ta.Reach.states
         then
           QCheck2.Test.fail_report
             "inconclusive screen still altered the exploration"
       | Sched.Prefilter.Analytic_safe | Sched.Prefilter.Analytic_unsafe _ ->
         if screened.Core.Ta_model.stats.Ta.Reach.states <> 0
            || screened.Core.Ta_model.stats.Ta.Reach.transitions <> 0
         then
           QCheck2.Test.fail_report
             "screened verify must not build the zone graph");
      true)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "prefilter"
    [
      ( "soundness",
        List.map QCheck_alcotest.to_alcotest
          [ prop_soundness; prop_soundness_lazy; prop_ta_verify_screened ] );
      ( "boundaries",
        [
          Alcotest.test_case "busy window == deadline accepts" `Quick
            test_busy_window_equals_deadline;
          Alcotest.test_case "utilisation 1.0 not rejected" `Quick
            test_utilisation_exactly_one_not_rejected;
          Alcotest.test_case "one past the boundary rejects" `Quick
            test_over_the_boundary_rejected;
          Alcotest.test_case "three-way saturation rejects" `Quick
            test_three_way_saturation;
          Alcotest.test_case "singleton accepts" `Quick test_singleton_accepted;
        ] );
      ( "mapping",
        [
          Alcotest.test_case "screen cannot change a packing" `Quick
            test_mapping_invariant_under_screen;
        ] );
    ]
