(* Tests for the core library: strategy sequences, dwell tables, the
   scheduler-facing application abstraction, both verification engines,
   and the first-fit mapper.  Uses a cheap synthetic plant so the suite
   stays fast; the real case study is exercised in test_casestudy.ml
   and test_integration.ml. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* a small second-order plant with pole-placed gains that exhibit the
   paper's J_T < J* < J_E regime *)
let plant =
  Control.Plant.make
    ~phi:(Linalg.Mat.of_rows [ [ 0.95; 0.08 ]; [ 0.; 0.9 ] ])
    ~gamma:[| 0.004; 0.08 |] ~c:[| 1.; 0. |] ~h:0.02

let gains =
  let kt = Control.Pole_place.place_tt plant [ (0.25, 0.); (0.3, 0.) ] in
  let ke =
    Control.Pole_place.place_et plant [ (0.82, 0.); (0.85, 0.); (0.3, 0.) ]
  in
  Control.Switched.make_gains plant ~kt ~ke

let table = lazy (Core.Dwell.compute plant gains ~j_star:25)

(* ------------------------------------------------------------------ *)
(* Strategy *)

let test_mode_sequence () =
  let m = Core.Strategy.mode_at ~t_w:2 ~t_dw:3 in
  check_bool "waits in ME" true (Control.Switched.mode_equal (m 0) Control.Switched.Me);
  check_bool "waits in ME (1)" true (Control.Switched.mode_equal (m 1) Control.Switched.Me);
  check_bool "dwells in MT" true (Control.Switched.mode_equal (m 2) Control.Switched.Mt);
  check_bool "dwells in MT (4)" true (Control.Switched.mode_equal (m 4) Control.Switched.Mt);
  check_bool "back to ME" true (Control.Switched.mode_equal (m 5) Control.Switched.Me)

let test_strategy_response_shape () =
  let y = Core.Strategy.response plant gains ~t_w:0 ~t_dw:5 in
  check_bool "starts at 1" true (Float.abs (y.(0) -. 1.) < 1e-12);
  check_bool "long enough" true (Array.length y > 100)

(* ------------------------------------------------------------------ *)
(* Dwell *)

let test_dwell_validates () =
  let t = Lazy.force table in
  (match Core.Dwell.validate t with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  check_bool "JT <= J* < JE" true (t.Core.Dwell.jt <= 25 && 25 < t.Core.Dwell.je)

let test_dwell_min_meets_requirement () =
  let t = Lazy.force table in
  Array.iteri
    (fun t_w dmin ->
      match Core.Strategy.settling plant gains ~t_w ~t_dw:dmin with
      | Some j -> check_bool (Printf.sprintf "tw=%d meets" t_w) true (j <= 25)
      | None -> Alcotest.fail "must settle")
    t.Core.Dwell.t_dw_min

let test_dwell_below_min_fails () =
  let t = Lazy.force table in
  Array.iteri
    (fun t_w dmin ->
      if dmin > 1 then
        match Core.Strategy.settling plant gains ~t_w ~t_dw:(dmin - 1) with
        | Some j -> check_bool (Printf.sprintf "tw=%d dwell-1 misses" t_w) true (j > 25)
        | None -> ())
    t.Core.Dwell.t_dw_min

let test_dwell_beyond_t_w_max_infeasible () =
  let t = Lazy.force table in
  let t_w = t.Core.Dwell.t_w_max + 1 in
  (* no dwell up to a generous cap can meet the budget *)
  let feasible = ref false in
  for t_dw = 1 to 60 do
    match Core.Strategy.settling plant gains ~t_w ~t_dw with
    | Some j when j <= 25 -> feasible := true
    | Some _ | None -> ()
  done;
  check_bool "infeasible past T*_w" false !feasible

let test_dwell_max_is_saturation () =
  let t = Lazy.force table in
  (* at T+_dw the settling equals the best achievable for that wait *)
  Array.iteri
    (fun t_w dmax ->
      let j_at d = Core.Strategy.settling plant gains ~t_w ~t_dw:d in
      match j_at dmax with
      | None -> Alcotest.fail "must settle"
      | Some j ->
        check_int (Printf.sprintf "tw=%d saturated" t_w) t.Core.Dwell.j_at_max.(t_w) j;
        (* dwelling longer never improves *)
        (match j_at (dmax + 3) with
         | Some j' -> check_bool "no improvement" true (j' >= j)
         | None -> ()))
    t.Core.Dwell.t_dw_max

let test_dwell_infeasible_cases () =
  (* requirement below J_T *)
  check_bool "too strict" true
    (try
       ignore (Core.Dwell.compute plant gains ~j_star:1);
       false
     with Core.Dwell.Infeasible _ -> true);
  (* requirement above J_E: trivially met on ET *)
  check_bool "too loose" true
    (try
       ignore (Core.Dwell.compute plant gains ~j_star:400);
       false
     with Core.Dwell.Infeasible _ -> true)

let test_dwell_stride () =
  let t1 = Lazy.force table in
  let t2 = Core.Dwell.compute ~stride:2 plant gains ~j_star:25 in
  (* coarser table covers every second wait; entries at even waits match *)
  check_bool "coarser" true
    (Array.length t2.Core.Dwell.t_dw_min <= Array.length t1.Core.Dwell.t_dw_min);
  Array.iteri
    (fun i d -> check_int "stride entry" t1.Core.Dwell.t_dw_min.(2 * i) d)
    t2.Core.Dwell.t_dw_min

let test_dwell_surface_consistency () =
  let t = Lazy.force table in
  let surface = Core.Dwell.surface plant gains ~t_w_max:2 ~t_dw_max:8 in
  check_int "size" (3 * 8) (List.length surface);
  List.iter
    (fun (t_w, t_dw, j) ->
      if t_w = 0 && t_dw = t.Core.Dwell.t_dw_min.(0) then
        match j with
        | Some j -> check_bool "surface matches table" true (j <= 25)
        | None -> Alcotest.fail "expected settling")
    surface

let test_deadline () =
  let t = Lazy.force table in
  check_int "slack at 0" t.Core.Dwell.t_w_max (Core.Dwell.deadline t ~t_w:0);
  check_int "slack at max" 0 (Core.Dwell.deadline t ~t_w:t.Core.Dwell.t_w_max)

(* ------------------------------------------------------------------ *)
(* App *)

let app name r =
  Core.App.make ~name ~plant ~gains ~r ~j_star:25 ()

let test_app_spec () =
  let a = app "X" 120 in
  let s = Core.App.spec a ~id:3 in
  check_int "id" 3 s.Sched.Appspec.id;
  check_int "t_w_max" (Core.App.t_w_max a) s.Sched.Appspec.t_w_max;
  check_int "r" 120 s.Sched.Appspec.r

let test_app_rejects_bad_r () =
  check_bool "J* >= r rejected" true
    (try
       ignore (Core.App.make ~name:"X" ~plant ~gains ~r:20 ~j_star:25 ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Dverify *)

let spec ?(name = "S") ?(id = 0) ~t_w_max ~dmin ~dmax ~r () =
  Sched.Appspec.make ~id ~name ~t_w_max
    ~t_dw_min:(Array.make (t_w_max + 1) dmin)
    ~t_dw_max:(Array.make (t_w_max + 1) dmax)
    ~r

(* unbudgeted runs must always decide *)
let is_safe_verdict = function
  | Core.Dverify.Safe -> true
  | Core.Dverify.Unsafe _ -> false
  | Core.Dverify.Undetermined _ ->
    Alcotest.fail "unbudgeted verification must not be undetermined"

let test_dverify_single_safe () =
  let g = [| spec ~t_w_max:0 ~dmin:2 ~dmax:3 ~r:10 () |] in
  List.iter
    (fun mode ->
      match (Core.Dverify.verify ~mode g).Core.Dverify.verdict with
      | Core.Dverify.Safe -> ()
      | Core.Dverify.Unsafe _ | Core.Dverify.Undetermined _ ->
        Alcotest.fail "single app is trivially safe")
    [ `Bfs; `Subsumption ]

let test_dverify_unsafe_pair_with_counterexample () =
  let g =
    [|
      spec ~name:"A" ~id:0 ~t_w_max:1 ~dmin:3 ~dmax:4 ~r:20 ();
      spec ~name:"B" ~id:1 ~t_w_max:1 ~dmin:3 ~dmax:4 ~r:20 ();
    |]
  in
  match (Core.Dverify.verify g).Core.Dverify.verdict with
  | Core.Dverify.Safe -> Alcotest.fail "pair cannot share"
  | Core.Dverify.Undetermined _ -> Alcotest.fail "must decide"
  | Core.Dverify.Unsafe ce ->
    check_bool "has failing app" true (ce.Core.Dverify.failing <> []);
    check_bool "has steps" true (List.length ce.Core.Dverify.steps > 0);
    (* replay the counterexample through the canonical transition
       function and confirm the error really occurs *)
    let st = ref (Sched.Slot_state.initial g) in
    let seen_error = ref false in
    List.iter
      (fun (disturbed, expected) ->
        let st', out = Sched.Slot_state.tick g !st ~disturbed in
        if out.Sched.Slot_state.new_errors <> [] then seen_error := true;
        check_bool "replay matches" true (Sched.Slot_state.equal st' expected);
        st := st')
      ce.Core.Dverify.steps;
    check_bool "error reproduced" true !seen_error

let test_dverify_modes_agree () =
  let groups =
    [
      [| spec ~name:"A" ~t_w_max:2 ~dmin:1 ~dmax:2 ~r:12 () |];
      [|
        spec ~name:"A" ~id:0 ~t_w_max:3 ~dmin:1 ~dmax:2 ~r:12 ();
        spec ~name:"B" ~id:1 ~t_w_max:3 ~dmin:1 ~dmax:2 ~r:12 ();
      |];
      [|
        spec ~name:"A" ~id:0 ~t_w_max:1 ~dmin:2 ~dmax:3 ~r:14 ();
        spec ~name:"B" ~id:1 ~t_w_max:4 ~dmin:1 ~dmax:2 ~r:14 ();
      |];
    ]
  in
  List.iter
    (fun g ->
      let v mode =
        is_safe_verdict (Core.Dverify.verify ~mode g).Core.Dverify.verdict
      in
      check_bool "bfs = subsumption" true (v `Bfs = v `Subsumption))
    groups

let test_dverify_bounded_consistent () =
  let g =
    [|
      spec ~name:"A" ~id:0 ~t_w_max:3 ~dmin:1 ~dmax:2 ~r:12 ();
      spec ~name:"B" ~id:1 ~t_w_max:3 ~dmin:1 ~dmax:2 ~r:12 ();
    |]
  in
  let full =
    is_safe_verdict (Core.Dverify.verify g).Core.Dverify.verdict
  in
  List.iter
    (fun k ->
      let b =
        is_safe_verdict
          (Core.Dverify.verify_bounded ~instances:k g).Core.Dverify.verdict
      in
      (* bounded is an under-approximation: it may only miss errors *)
      check_bool "no spurious error" true (full || not full = not b || b))
    [ 1; 2 ];
  (* and for this safe group all engines say safe *)
  check_bool "safe group stays safe" true full

(* ------------------------------------------------------------------ *)
(* Ta_model cross-validation *)

let test_ta_model_agrees_with_discrete () =
  let groups =
    [
      [| spec ~name:"A" ~t_w_max:1 ~dmin:1 ~dmax:2 ~r:8 () |];
      [|
        spec ~name:"A" ~id:0 ~t_w_max:2 ~dmin:1 ~dmax:2 ~r:10 ();
        spec ~name:"B" ~id:1 ~t_w_max:2 ~dmin:1 ~dmax:2 ~r:10 ();
      |];
      [|
        (* an unsafe pair *)
        spec ~name:"A" ~id:0 ~t_w_max:1 ~dmin:3 ~dmax:4 ~r:20 ();
        spec ~name:"B" ~id:1 ~t_w_max:1 ~dmin:3 ~dmax:4 ~r:20 ();
      |];
      [|
        spec ~name:"A" ~id:0 ~t_w_max:1 ~dmin:2 ~dmax:3 ~r:9 ();
        spec ~name:"B" ~id:1 ~t_w_max:5 ~dmin:1 ~dmax:3 ~r:11 ();
      |];
    ]
  in
  List.iter
    (fun g ->
      let d =
        is_safe_verdict (Core.Dverify.verify g).Core.Dverify.verdict
      in
      let t = Core.Ta_model.verify ~max_states:500_000 g in
      let ta_safe =
        match t.Core.Ta_model.outcome with
        | `Safe -> true
        | `Unsafe -> false
        | `Undetermined _ -> Alcotest.fail "ta must decide within the cap"
      in
      check_bool "ta = discrete" true (ta_safe = d))
    groups

let test_ta_model_layout () =
  let n = 3 in
  check_int "store size" 20 (Core.Ta_model.Layout.store_size ~n);
  check_int "cT clock" 4 (Core.Ta_model.Layout.clock_ct ~n);
  check_int "x clock" 5 (Core.Ta_model.Layout.clock_x ~n)

(* ------------------------------------------------------------------ *)
(* Mapping *)

let test_mapping_singletons () =
  (* a verifier that rejects every pair forces one slot each *)
  let apps = [ app "A" 100; app "B" 100; app "C" 100 ] in
  let verifier specs = if Array.length specs > 1 then `Unsafe else `Safe in
  let o = Core.Mapping.first_fit ~verifier apps in
  check_int "three slots" 3 (List.length o.Core.Mapping.slots)

let test_mapping_all_in_one () =
  let apps = [ app "A" 100; app "B" 100; app "C" 100 ] in
  let o = Core.Mapping.first_fit ~verifier:(fun _ -> `Safe) apps in
  check_int "one slot" 1 (List.length o.Core.Mapping.slots);
  check_int "verifications" 2 o.Core.Mapping.verifications

let test_mapping_sort_order () =
  (* smaller T*_w first; our synthetic apps share a table so sorting is
     by name *)
  let apps = [ app "B" 100; app "A" 100 ] in
  match Core.Mapping.sort_order apps with
  | [ first; second ] ->
    check_bool "A first" true (String.equal first.Core.App.name "A");
    check_bool "B second" true (String.equal second.Core.App.name "B")
  | _ -> Alcotest.fail "expected two apps"

let test_mapping_uses_real_verifier () =
  (* two identical apps with enough slack share a slot *)
  let apps = [ app "A" 150; app "B" 150 ] in
  let o = Core.Mapping.first_fit apps in
  check_bool "at most two slots" true (List.length o.Core.Mapping.slots <= 2);
  (* and each slot group passes the verifier by construction *)
  List.iter
    (fun slot ->
      let specs = Core.Mapping.specs_of_group slot.Core.Mapping.apps in
      match (Core.Dverify.verify specs).Core.Dverify.verdict with
      | Core.Dverify.Safe -> ()
      | Core.Dverify.Unsafe _ | Core.Dverify.Undetermined _ ->
        Alcotest.fail "mapped group must verify")
    o.Core.Mapping.slots

let test_mapping_optimal_beats_or_ties_first_fit () =
  (* a verifier that allows pairs only when the first app's name is "A"
     makes first-fit suboptimal for the order B,C,A... use a synthetic
     criterion: groups of size <= 2 whose names differ are safe *)
  let apps = [ app "A" 100; app "B" 100; app "C" 100; app "D" 100 ] in
  let pairs_only specs = if Array.length specs <= 2 then `Safe else `Unsafe in
  let ff = Core.Mapping.first_fit ~verifier:pairs_only apps in
  let opt = Core.Mapping.optimal ~verifier:pairs_only apps in
  check_int "optimal two slots" 2 (List.length opt.Core.Mapping.slots);
  check_bool "optimal <= first-fit" true
    (List.length opt.Core.Mapping.slots <= List.length ff.Core.Mapping.slots);
  (* every optimal group passes the verifier *)
  List.iter
    (fun slot ->
      check_bool "group safe" true
        (pairs_only (Core.Mapping.specs_of_group slot.Core.Mapping.apps) = `Safe))
    opt.Core.Mapping.slots

let test_mapping_optimal_monotone_pruning () =
  (* with singletons-only safety the optimum is n slots and the pruning
     must avoid verifying any superset of an unsafe pair: at most
     C(n,2) verifier calls happen *)
  let apps = [ app "A" 100; app "B" 100; app "C" 100; app "D" 100 ] in
  let calls = ref 0 in
  let singles_only specs =
    incr calls;
    if Array.length specs <= 1 then `Safe else `Unsafe
  in
  let opt = Core.Mapping.optimal ~verifier:singles_only apps in
  check_int "four slots" 4 (List.length opt.Core.Mapping.slots);
  check_bool "pruning bound" true (!calls <= 6);
  check_int "reported count" !calls opt.Core.Mapping.verifications

let test_mapping_optimal_covers_everything () =
  let apps = [ app "A" 100; app "B" 100; app "C" 100 ] in
  let opt = Core.Mapping.optimal apps in
  let names =
    List.concat_map
      (fun s -> List.map (fun a -> a.Core.App.name) s.Core.Mapping.apps)
      opt.Core.Mapping.slots
    |> List.sort compare
  in
  check_bool "partition covers all" true (names = [ "A"; "B"; "C" ])

(* ------------------------------------------------------------------ *)
(* Baseline parameters *)

let test_baseline_params () =
  let bp = Core.Baseline_params.compute plant gains ~j_star:25 in
  let t = Lazy.force table in
  check_bool "w* >= 0" true (bp.Core.Baseline_params.w_star >= 0);
  (* holding to full rejection occupies at least the dedicated-slot
     settling time J_T (the wait-0 hold settles exactly at J_T) *)
  check_bool "occupancy covers J_T" true
    (bp.Core.Baseline_params.c_occ >= t.Core.Dwell.jt);
  let s = Core.Baseline_params.to_spec ~id:0 ~name:"X" ~r:100 bp in
  check_int "spec deadline" bp.Core.Baseline_params.w_star s.Sched.Baseline.w_star

(* ------------------------------------------------------------------ *)
(* Table_codec *)

let test_codec_rle_roundtrip () =
  let a = [| 3; 3; 3; 4; 4; 5; 3 |] in
  let rle = Core.Table_codec.encode a in
  check_bool "rle" true (rle = [ (3, 3); (4, 2); (5, 1); (3, 1) ]);
  check_bool "roundtrip" true (Core.Table_codec.decode rle = a);
  check_int "words" 8 (Core.Table_codec.encoded_words rle)

let test_codec_table_roundtrip () =
  let t = Lazy.force table in
  match Core.Table_codec.table_of_string (Core.Table_codec.table_to_string t) with
  | Ok t' -> check_bool "table roundtrip" true (t' = t)
  | Error e -> Alcotest.fail e

let test_codec_rejects_garbage () =
  check_bool "garbage" true
    (Result.is_error (Core.Table_codec.table_of_string "nonsense"));
  check_bool "bad runs" true
    (Result.is_error (Core.Table_codec.table_of_string "1 2 3 4 | x | y | z | w"))

let test_codec_dictionary () =
  let alternating = Array.init 20 (fun i -> 7 + (i mod 2)) in
  check_int "distinct" 2 (Core.Table_codec.distinct_values alternating);
  (* 2 dict words + 20 bits -> 1 word *)
  check_int "dict words" 3 (Core.Table_codec.dictionary_words alternating);
  (* RLE is terrible on alternation: 20 runs = 40 words *)
  check_int "rle words" 40
    (Core.Table_codec.encoded_words (Core.Table_codec.encode alternating))

(* ------------------------------------------------------------------ *)
(* Lazy preemption policy *)

let test_lazy_policy_on_pairs () =
  (* a pair that is safe under both policies *)
  let g =
    [|
      spec ~name:"A" ~id:0 ~t_w_max:3 ~dmin:1 ~dmax:2 ~r:12 ();
      spec ~name:"B" ~id:1 ~t_w_max:3 ~dmin:1 ~dmax:2 ~r:12 ();
    |]
  in
  List.iter
    (fun policy ->
      match (Core.Dverify.verify ~policy g).Core.Dverify.verdict with
      | Core.Dverify.Safe -> ()
      | Core.Dverify.Unsafe _ | Core.Dverify.Undetermined _ ->
        Alcotest.fail "pair must be safe")
    [ Sched.Slot_state.Eager_preempt; Sched.Slot_state.Lazy_preempt ]

let test_lazy_policy_can_break_groups () =
  (* three apps whose slack cannot absorb the postponed preemption *)
  let g =
    [|
      spec ~name:"A" ~id:0 ~t_w_max:4 ~dmin:2 ~dmax:6 ~r:20 ();
      spec ~name:"B" ~id:1 ~t_w_max:4 ~dmin:2 ~dmax:6 ~r:20 ();
      spec ~name:"C" ~id:2 ~t_w_max:4 ~dmin:2 ~dmax:6 ~r:20 ();
    |]
  in
  let safe policy =
    is_safe_verdict (Core.Dverify.verify ~policy g).Core.Dverify.verdict
  in
  check_bool "eager safe" true (safe Sched.Slot_state.Eager_preempt);
  check_bool "lazy unsafe" false (safe Sched.Slot_state.Lazy_preempt)

(* ------------------------------------------------------------------ *)
(* Margins *)

let test_margin_single_app () =
  let a = app "A" 120 in
  let r = Core.Margin.analyse ~apps:[ a ] () in
  check_bool "safe" true r.Core.Margin.safe;
  match r.Core.Margin.rows with
  | [ row ] ->
    check_bool "granted at wait 0" true (row.Core.Margin.worst_wait = Some 0);
    (match row.Core.Margin.worst_settling with
     | Some ws ->
       check_bool "within budget" true (ws <= a.Core.App.j_star);
       check_bool "margin consistent" true
         (row.Core.Margin.margin = Some (a.Core.App.j_star - ws))
     | None -> Alcotest.fail "expected settling")
  | _ -> Alcotest.fail "one row expected"

let test_margin_pair_within_budget () =
  let a = app "A" 150 and b = app "B" 150 in
  let r = Core.Margin.analyse ~apps:[ a; b ] () in
  check_bool "safe" true r.Core.Margin.safe;
  List.iter
    (fun row ->
      match row.Core.Margin.margin with
      | Some m -> check_bool (row.Core.Margin.name ^ " margin >= 0") true (m >= 0)
      | None -> Alcotest.fail "expected margin")
    r.Core.Margin.rows

let test_margin_unsafe_group () =
  let tight k =
    Sched.Appspec.make ~id:k ~name:(Printf.sprintf "T%d" k) ~t_w_max:1
      ~t_dw_min:[| 3; 3 |] ~t_dw_max:[| 4; 4 |] ~r:20
  in
  ignore tight;
  (* unsafe via apps: reuse the plant but with a custom verifier is not
     possible here; instead check via the Dverify stats directly *)
  let g =
    [|
      spec ~name:"A" ~id:0 ~t_w_max:1 ~dmin:3 ~dmax:4 ~r:20 ();
      spec ~name:"B" ~id:1 ~t_w_max:1 ~dmin:3 ~dmax:4 ~r:20 ();
    |]
  in
  let r = Core.Dverify.verify g in
  check_bool "unsafe" true
    (match r.Core.Dverify.verdict with Core.Dverify.Unsafe _ -> true | _ -> false)

let test_dverify_max_wait_recorded () =
  let g =
    [|
      spec ~name:"A" ~id:0 ~t_w_max:3 ~dmin:2 ~dmax:3 ~r:14 ();
      spec ~name:"B" ~id:1 ~t_w_max:3 ~dmin:2 ~dmax:3 ~r:14 ();
    |]
  in
  let r = Core.Dverify.verify g in
  (match r.Core.Dverify.verdict with
   | Core.Dverify.Safe -> ()
   | Core.Dverify.Unsafe _ | Core.Dverify.Undetermined _ ->
     Alcotest.fail "expected safe");
  Array.iteri
    (fun i w ->
      check_bool (Printf.sprintf "app %d granted" i) true (w >= 0);
      check_bool "within T*w" true (w <= 3);
      (* contention forces someone to wait at least the blocker's min
         dwell *)
      ignore i)
    r.Core.Dverify.stats.Core.Dverify.max_wait;
  check_bool "someone waits" true
    (Array.exists (fun w -> w >= 2) r.Core.Dverify.stats.Core.Dverify.max_wait)

(* ------------------------------------------------------------------ *)
(* UPPAAL export *)

(* a minimal XML well-formedness scanner: tags balance, attributes are
   quoted, entities are known *)
let xml_balanced doc =
  let len = String.length doc in
  let stack = ref [] in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < len do
    if doc.[!i] = '<' then begin
      match String.index_from_opt doc !i '>' with
      | None -> ok := false
      | Some close ->
        let inner = String.sub doc (!i + 1) (close - !i - 1) in
        if String.length inner = 0 then ok := false
        else if inner.[0] = '?' || inner.[0] = '!' then () (* prolog/doctype *)
        else if inner.[0] = '/' then begin
          let name = String.sub inner 1 (String.length inner - 1) in
          match !stack with
          | top :: rest when String.equal top name -> stack := rest
          | _ -> ok := false
        end
        else begin
          let name =
            match String.index_opt inner ' ' with
            | Some sp -> String.sub inner 0 sp
            | None -> inner
          in
          if inner.[String.length inner - 1] <> '/' then stack := name :: !stack
        end;
        i := close
    end;
    incr i
  done;
  !ok && !stack = []

let uppaal_specs () =
  [|
    spec ~name:"A" ~id:0 ~t_w_max:2 ~dmin:1 ~dmax:2 ~r:10 ();
    spec ~name:"B" ~id:1 ~t_w_max:4 ~dmin:2 ~dmax:3 ~r:12 ();
  |]

let test_uppaal_model_well_formed () =
  let doc = Core.Uppaal_export.model (uppaal_specs ()) in
  check_bool "balanced tags" true (xml_balanced doc);
  let contains needle =
    let nl = String.length needle and dl = String.length doc in
    let rec go i = i + nl <= dl && (String.equal (String.sub doc i nl) needle || go (i + 1)) in
    go 0
  in
  check_bool "doctype" true (contains "DTD Flat System");
  check_bool "N declared" true (contains "const int N = 2;");
  check_bool "TWMAX" true (contains "TWMAX[N] = {2, 4}");
  check_bool "padded table" true (contains "DTMIN[N][MAXW+1]");
  check_bool "query embedded" true (contains "A[] forall (i : id_t) not App(i).Error");
  check_bool "scheduler template" true (contains "<name>Scheduler</name>");
  check_bool "escaped ampersands" true (contains "&amp;&amp;");
  (* no raw '&&' may survive outside escaped form *)
  let raw_and =
    let rec go i = i + 2 <= String.length doc && (String.equal (String.sub doc i 2) "&&" || go (i + 1)) in
    go 0
  in
  check_bool "no raw &&" false raw_and

let test_uppaal_write () =
  let dir = Filename.temp_file "cpsdim" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  (match Core.Uppaal_export.write ~dir ~basename:"g" (uppaal_specs ()) with
   | Ok path ->
     check_bool "xml exists" true (Sys.file_exists path);
     check_bool "query exists" true (Sys.file_exists (Filename.concat dir "g.q"));
     Sys.remove path;
     Sys.remove (Filename.concat dir "g.q");
     Unix.rmdir dir
   | Error m -> Alcotest.fail m)

(* ------------------------------------------------------------------ *)
(* Fleet *)

let test_fleet_deterministic () =
  let params = { Core.Fleet.default_params with count = 3 } in
  let f1 = Core.Fleet.generate ~params () in
  let f2 = Core.Fleet.generate ~params () in
  check_int "count" 3 (List.length f1);
  List.iter2
    (fun (a : Core.App.t) (b : Core.App.t) ->
      check_bool "same table" true (a.Core.App.table = b.Core.App.table))
    f1 f2

let test_fleet_apps_are_wellformed () =
  let fleet =
    Core.Fleet.generate ~params:{ Core.Fleet.default_params with count = 3 } ()
  in
  List.iteri
    (fun i (a : Core.App.t) ->
      (* spec construction revalidates all scheduling invariants *)
      let s = Core.App.spec a ~id:i in
      check_bool "J* < r" true (a.Core.App.j_star < a.Core.App.r);
      check_bool "table valid" true
        (Core.Dwell.validate a.Core.App.table = Ok ());
      check_int "id" i s.Sched.Appspec.id)
    fleet

(* ------------------------------------------------------------------ *)
(* Properties *)

let gen_pair_specs =
  QCheck2.Gen.(
    let one id name =
      let* t_w_max = int_range 0 3 in
      let* dmin = int_range 1 3 in
      let* extra = int_range 0 2 in
      let* slack = int_range 1 8 in
      let dmax = dmin + extra in
      return
        (Sched.Appspec.make ~id ~name ~t_w_max
           ~t_dw_min:(Array.make (t_w_max + 1) dmin)
           ~t_dw_max:(Array.make (t_w_max + 1) dmax)
           ~r:(t_w_max + dmax + slack))
    in
    let* a = one 0 "A" in
    let* b = one 1 "B" in
    return [| a; b |])

let prop_engines_agree =
  QCheck2.Test.make ~name:"discrete BFS = subsumption = TA zones" ~count:25
    gen_pair_specs (fun g ->
      let d mode =
        is_safe_verdict (Core.Dverify.verify ~mode g).Core.Dverify.verdict
      in
      let bfs = d `Bfs and sub = d `Subsumption in
      let ta = Core.Ta_model.verify ~max_states:400_000 g in
      bfs = sub && ta.Core.Ta_model.outcome = (if bfs then `Safe else `Unsafe))

let prop_counterexample_replays =
  QCheck2.Test.make ~name:"every counterexample replays to an error" ~count:40
    gen_pair_specs (fun g ->
      match (Core.Dverify.verify g).Core.Dverify.verdict with
      | Core.Dverify.Safe -> true
      | Core.Dverify.Undetermined _ -> false
      | Core.Dverify.Unsafe ce ->
        let st = ref (Sched.Slot_state.initial g) in
        let seen = ref false in
        List.iter
          (fun (disturbed, _) ->
            let st', out = Sched.Slot_state.tick g !st ~disturbed in
            if out.Sched.Slot_state.new_errors <> [] then seen := true;
            st := st')
          ce.Core.Dverify.steps;
        !seen)

let prop_dwell_window_always_feasible =
  (* the suffix-safe invariant: EVERY dwell in [T-, T+] meets J* (so a
     preemption landing anywhere in the admissible window is safe) *)
  QCheck2.Test.make ~name:"every admissible dwell meets the budget" ~count:15
    QCheck2.Gen.(
      triple (float_range 0.15 0.45) (float_range 0.75 0.92) (int_range 18 35))
    (fun (rho_t, rho_e, j_star) ->
      let kt =
        Control.Pole_place.place_tt plant [ (rho_t, 0.); (rho_t *. 0.9, 0.) ]
      in
      let ke =
        Control.Pole_place.place_et plant
          [ (rho_e, 0.); (rho_e *. 0.95, 0.); (0.3, 0.) ]
      in
      let g = Control.Switched.make_gains plant ~kt ~ke in
      match Core.Dwell.compute plant g ~j_star with
      | exception Core.Dwell.Infeasible _ -> true
      | t ->
        let ok = ref true in
        Array.iteri
          (fun t_w dmin ->
            for t_dw = dmin to t.Core.Dwell.t_dw_max.(t_w) do
              match Core.Strategy.settling plant g ~t_w ~t_dw with
              | Some j -> if j > j_star then ok := false
              | None -> ok := false
            done)
          t.Core.Dwell.t_dw_min;
        !ok)

let prop_codec_roundtrip =
  QCheck2.Test.make ~name:"RLE decode . encode = id" ~count:100
    QCheck2.Gen.(array_size (int_range 1 30) (int_range 0 9))
    (fun a -> Core.Table_codec.decode (Core.Table_codec.encode a) = a)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_engines_agree;
      prop_counterexample_replays;
      prop_dwell_window_always_feasible;
      prop_codec_roundtrip;
    ]

let () =
  Alcotest.run "core"
    [
      ( "strategy",
        [
          Alcotest.test_case "mode sequence" `Quick test_mode_sequence;
          Alcotest.test_case "response shape" `Quick test_strategy_response_shape;
        ] );
      ( "dwell",
        [
          Alcotest.test_case "validates" `Quick test_dwell_validates;
          Alcotest.test_case "min dwell meets J*" `Quick test_dwell_min_meets_requirement;
          Alcotest.test_case "below min misses" `Quick test_dwell_below_min_fails;
          Alcotest.test_case "past T*_w infeasible" `Quick test_dwell_beyond_t_w_max_infeasible;
          Alcotest.test_case "max dwell saturates" `Quick test_dwell_max_is_saturation;
          Alcotest.test_case "infeasible requirements" `Quick test_dwell_infeasible_cases;
          Alcotest.test_case "stride" `Quick test_dwell_stride;
          Alcotest.test_case "surface" `Quick test_dwell_surface_consistency;
          Alcotest.test_case "deadline" `Quick test_deadline;
        ] );
      ( "app",
        [
          Alcotest.test_case "spec" `Quick test_app_spec;
          Alcotest.test_case "bad r" `Quick test_app_rejects_bad_r;
        ] );
      ( "dverify",
        [
          Alcotest.test_case "single safe" `Quick test_dverify_single_safe;
          Alcotest.test_case "unsafe with counterexample" `Quick test_dverify_unsafe_pair_with_counterexample;
          Alcotest.test_case "modes agree" `Quick test_dverify_modes_agree;
          Alcotest.test_case "bounded consistent" `Quick test_dverify_bounded_consistent;
        ] );
      ( "ta_model",
        [
          Alcotest.test_case "agrees with discrete" `Quick test_ta_model_agrees_with_discrete;
          Alcotest.test_case "layout" `Quick test_ta_model_layout;
        ] );
      ( "mapping",
        [
          Alcotest.test_case "singletons" `Quick test_mapping_singletons;
          Alcotest.test_case "all in one" `Quick test_mapping_all_in_one;
          Alcotest.test_case "sort order" `Quick test_mapping_sort_order;
          Alcotest.test_case "real verifier" `Quick test_mapping_uses_real_verifier;
          Alcotest.test_case "optimal ties or beats first-fit" `Quick
            test_mapping_optimal_beats_or_ties_first_fit;
          Alcotest.test_case "optimal pruning" `Quick test_mapping_optimal_monotone_pruning;
          Alcotest.test_case "optimal covers all" `Quick test_mapping_optimal_covers_everything;
        ] );
      ( "baseline params",
        [ Alcotest.test_case "compute" `Quick test_baseline_params ] );
      ( "table codec",
        [
          Alcotest.test_case "rle roundtrip" `Quick test_codec_rle_roundtrip;
          Alcotest.test_case "table roundtrip" `Quick test_codec_table_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage;
          Alcotest.test_case "dictionary encoding" `Quick test_codec_dictionary;
        ] );
      ( "margins",
        [
          Alcotest.test_case "single app" `Quick test_margin_single_app;
          Alcotest.test_case "pair within budget" `Quick test_margin_pair_within_budget;
          Alcotest.test_case "unsafe group" `Quick test_margin_unsafe_group;
          Alcotest.test_case "max wait recorded" `Quick test_dverify_max_wait_recorded;
        ] );
      ( "uppaal export",
        [
          Alcotest.test_case "well-formed model" `Quick test_uppaal_model_well_formed;
          Alcotest.test_case "write files" `Quick test_uppaal_write;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "deterministic" `Quick test_fleet_deterministic;
          Alcotest.test_case "well-formed" `Quick test_fleet_apps_are_wellformed;
        ] );
      ( "lazy preemption",
        [
          Alcotest.test_case "pairs stay safe" `Quick test_lazy_policy_on_pairs;
          Alcotest.test_case "groups can break" `Quick test_lazy_policy_can_break_groups;
        ] );
      ("properties", props);
    ]
