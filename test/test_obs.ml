(* lib/obs: spans, metrics, reports, sinks, and the disabled path *)

let fresh () =
  Obs.Trace_ctx.disable ();
  Obs.Trace_ctx.reset ();
  Obs.Span.reset ();
  Obs.Metric.reset ()

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* spans *)

let test_span_nesting () =
  fresh ();
  Obs.Trace_ctx.enable ();
  Obs.Span.with_ "root" (fun () ->
      Obs.Span.with_ "child-a" (fun () ->
          Obs.Span.with_ "grandchild" (fun () -> ()));
      Obs.Span.with_ "child-b" (fun () -> ()));
  let spans = Obs.Span.drain () in
  check_int "four spans" 4 (List.length spans);
  let find name =
    List.find (fun (s : Obs.Span.record) -> s.Obs.Span.name = name) spans
  in
  let root = find "root" in
  check_bool "root has no parent" true (root.Obs.Span.parent = None);
  check_bool "child-a under root" true
    ((find "child-a").Obs.Span.parent = Some root.Obs.Span.id);
  check_bool "child-b under root" true
    ((find "child-b").Obs.Span.parent = Some root.Obs.Span.id);
  check_bool "grandchild under child-a" true
    ((find "grandchild").Obs.Span.parent = Some (find "child-a").Obs.Span.id);
  check_bool "drain clears" true (Obs.Span.drain () = [])

let test_span_exception_safety () =
  fresh ();
  Obs.Trace_ctx.enable ();
  (try
     Obs.Span.with_ "outer" (fun () ->
         Obs.Span.with_ "thrower" (fun () -> failwith "boom"))
   with Failure _ -> ());
  let spans = Obs.Span.drain () in
  check_int "both spans finished" 2 (List.length spans);
  (* a span started after the unwind nests at top level again *)
  Obs.Span.with_ "after" (fun () -> ());
  match Obs.Span.drain () with
  | [ s ] -> check_bool "no stale parent" true (s.Obs.Span.parent = None)
  | _ -> Alcotest.fail "expected one span"

(* ------------------------------------------------------------------ *)
(* metrics *)

let test_histogram_percentiles () =
  fresh ();
  Obs.Trace_ctx.enable ();
  let h = Obs.Metric.histogram "t.hist" in
  (* 1..100 shuffled deterministically *)
  List.iter
    (fun i -> Obs.Metric.observe h (float_of_int ((i * 37 mod 100) + 1)))
    (List.init 100 (fun i -> i));
  Alcotest.(check (float 0.0)) "p50" 50. (Obs.Metric.percentile h 0.5);
  Alcotest.(check (float 0.0)) "p90" 90. (Obs.Metric.percentile h 0.9);
  Alcotest.(check (float 0.0)) "p99" 99. (Obs.Metric.percentile h 0.99);
  Alcotest.(check (float 0.0)) "p100" 100. (Obs.Metric.percentile h 1.0);
  check_bool "empty histogram is nan" true
    (Float.is_nan (Obs.Metric.percentile (Obs.Metric.histogram "t.empty") 0.5))

let test_counter_reentrancy () =
  fresh ();
  Obs.Trace_ctx.enable ();
  let c = Obs.Metric.counter "t.counter" in
  (* increments interleaved across re-entrant frames must all land *)
  let rec recurse depth =
    if depth > 0 then begin
      Obs.Metric.incr c;
      Obs.Span.with_ "frame" (fun () ->
          Obs.Metric.incr c;
          recurse (depth - 1));
      Obs.Metric.incr c
    end
  in
  recurse 100;
  check_int "300 increments" 300 (Obs.Metric.value c);
  check_bool "same name, same counter" true
    (Obs.Metric.value (Obs.Metric.counter "t.counter") = 300);
  Obs.Metric.add c (-300);
  check_int "negative add" 0 (Obs.Metric.value c)

let test_gauge_max () =
  fresh ();
  Obs.Trace_ctx.enable ();
  let g = Obs.Metric.gauge "t.peak" in
  check_bool "unset" true (Obs.Metric.gauge_value g = None);
  Obs.Metric.set_max g 3.;
  Obs.Metric.set_max g 7.;
  Obs.Metric.set_max g 5.;
  check_bool "peak kept" true (Obs.Metric.gauge_value g = Some 7.)

(* ------------------------------------------------------------------ *)
(* disabled mode *)

let test_disabled_noop () =
  fresh ();
  (* everything below runs with the switch off *)
  let c = Obs.Metric.counter "t.off.counter" in
  Obs.Metric.incr c;
  Obs.Metric.add c 42;
  Obs.Metric.count "t.off.oneshot" 9;
  Obs.Metric.set_gauge "t.off.gauge" 1.;
  Obs.Metric.observe_value "t.off.hist" 1.;
  let s = Obs.Span.start "t.off.span" in
  Obs.Span.finish s;
  Obs.Span.with_ "t.off.wrapped" (fun () -> ());
  check_bool "span handle is none" true (s = Obs.Span.none);
  check_int "counter untouched" 0 (Obs.Metric.value c);
  check_bool "no spans recorded" true (Obs.Span.drain () = []);
  check_bool "registry snapshot empty" true (Obs.Metric.snapshot () = []);
  (* instrumented engines still compute correct results while disabled *)
  let apps =
    List.map
      (fun (a : Casestudy.app) ->
        Core.App.make ~name:a.Casestudy.name ~plant:a.Casestudy.plant
          ~gains:a.Casestudy.gains ~r:a.Casestudy.r ~j_star:a.Casestudy.j_star ())
      [ Casestudy.find "C6"; Casestudy.find "C2" ]
  in
  let r = Core.Dverify.verify (Core.Mapping.specs_of_group apps) in
  check_bool "verdict unaffected" true (r.Core.Dverify.verdict = Core.Dverify.Safe);
  check_bool "still nothing recorded" true (Obs.Metric.snapshot () = [])

(* ------------------------------------------------------------------ *)
(* reports: JSONL round-trip through a sink *)

let test_jsonl_roundtrip () =
  fresh ();
  Obs.Trace_ctx.enable ();
  Obs.Span.with_ "root" (fun () -> Obs.Span.with_ "inner" (fun () -> ()));
  Obs.Metric.count "t.states" 123;
  Obs.Metric.set_gauge "t.rate" 456.5;
  List.iter (fun v -> Obs.Metric.observe_value "t.lat" (float_of_int v)) [ 1; 2; 3; 4 ];
  let report = Obs.Report.collect ~command:"test \"quoted\"" () in
  let path = Filename.temp_file "obs_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let sink = Obs.Sink.jsonl ~path in
      Obs.Sink.emit sink report;
      Obs.Sink.emit sink report;
      let lines =
        In_channel.with_open_text path In_channel.input_all
        |> String.split_on_char '\n'
        |> List.filter (fun l -> String.trim l <> "")
      in
      check_int "one line per emit" 2 (List.length lines);
      match
        Result.bind
          (Obs.Report.json_of_string (List.nth lines 1))
          Obs.Report.of_json
      with
      | Error m -> Alcotest.fail ("round-trip failed: " ^ m)
      | Ok r ->
        Alcotest.(check string) "command" report.Obs.Report.command r.Obs.Report.command;
        check_int "span count" 2 (List.length r.Obs.Report.spans);
        check_bool "metrics preserved" true
          (r.Obs.Report.metrics = report.Obs.Report.metrics);
        let inner =
          List.find
            (fun (s : Obs.Span.record) -> s.Obs.Span.name = "inner")
            r.Obs.Report.spans
        in
        let root =
          List.find
            (fun (s : Obs.Span.record) -> s.Obs.Span.name = "root")
            r.Obs.Report.spans
        in
        check_bool "nesting preserved" true
          (inner.Obs.Span.parent = Some root.Obs.Span.id))

let test_json_parser () =
  let ok s = Result.is_ok (Obs.Report.json_of_string s) in
  check_bool "object" true (ok {|{"a": [1, 2.5, null, true, "x\n"]}|});
  check_bool "nested" true (ok {|[[{"k":{"v":[-1e-3]}}]]|});
  check_bool "trailing garbage rejected" false (ok "{}{}");
  check_bool "unterminated rejected" false (ok {|{"a": 1|});
  check_bool "bare word rejected" false (ok "states");
  (* escapes survive a print/parse cycle *)
  let j = Obs.Report.String "a\"b\\c\nd\te" in
  check_bool "string round-trip" true
    (Obs.Report.json_of_string (Obs.Report.json_to_string j) = Ok j)

(* ------------------------------------------------------------------ *)
(* instrumentation of the engines *)

let find_counter name metrics =
  List.find_map
    (function
      | Obs.Metric.Counter (n, v) when n = name -> Some v
      | _ -> None)
    metrics

let test_engine_metrics () =
  fresh ();
  Obs.Trace_ctx.enable ();
  let apps =
    List.map
      (fun (a : Casestudy.app) ->
        Core.App.make ~name:a.Casestudy.name ~plant:a.Casestudy.plant
          ~gains:a.Casestudy.gains ~r:a.Casestudy.r ~j_star:a.Casestudy.j_star ())
      [ Casestudy.find "C6"; Casestudy.find "C2" ]
  in
  let specs = Core.Mapping.specs_of_group apps in
  let dr = Core.Dverify.verify specs in
  let tr = Core.Ta_model.verify ~inclusion:false specs in
  let report = Obs.Report.collect ~command:"engines" () in
  let m = report.Obs.Report.metrics in
  check_bool "dverify.states matches stats" true
    (find_counter "dverify.states" m
    = Some dr.Core.Dverify.stats.Core.Dverify.states);
  check_bool "ta.reach.states matches stats" true
    (find_counter "ta.reach.states" m
    = Some tr.Core.Ta_model.stats.Ta.Reach.states);
  check_bool "ta stats track dedup hits" true
    (tr.Core.Ta_model.stats.Ta.Reach.dedup_hits > 0);
  check_bool "ta stats track waiting peak" true
    (tr.Core.Ta_model.stats.Ta.Reach.waiting_peak > 0);
  check_bool "dwell simulations counted" true
    (match find_counter "dwell.simulations" m with
     | Some n -> n > 0
     | None -> false);
  check_bool "spans include both engines" true
    (List.exists (fun (s : Obs.Span.record) -> s.Obs.Span.name = "dverify")
       report.Obs.Report.spans
    && List.exists (fun (s : Obs.Span.record) -> s.Obs.Span.name = "ta.reach")
         report.Obs.Report.spans)

(* ------------------------------------------------------------------ *)
(* multi-domain safety: every op from every domain must land exactly *)

let test_metric_hammer () =
  fresh ();
  Obs.Trace_ctx.enable ();
  let per_domain = 10_000 and domains = 4 in
  let worker d () =
    let c = Obs.Metric.counter "t.hammer.count" in
    let g = Obs.Metric.gauge "t.hammer.peak" in
    let h = Obs.Metric.histogram "t.hammer.lat" in
    for i = 1 to per_domain do
      Obs.Metric.incr c;
      Obs.Metric.observe h (float_of_int i);
      Obs.Metric.set_max g (float_of_int ((d * per_domain) + i))
    done
  in
  let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;
  check_int "every increment landed" (domains * per_domain)
    (Obs.Metric.value (Obs.Metric.counter "t.hammer.count"));
  check_bool "racing set_max keeps the exact peak" true
    (Obs.Metric.gauge_value (Obs.Metric.gauge "t.hammer.peak")
    = Some (float_of_int (domains * per_domain)));
  match
    List.find_map
      (function
        | Obs.Metric.Histogram ("t.hammer.lat", s) -> Some s
        | _ -> None)
      (Obs.Metric.snapshot ())
  with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some s ->
    check_int "every observation landed" (domains * per_domain) s.Obs.Metric.n;
    check_bool "max sample intact" true
      (s.Obs.Metric.max = float_of_int per_domain)

(* ------------------------------------------------------------------ *)
(* bounded buffers: span ring overwrites oldest, event queue drops
   newest — both count what they lost *)

let test_span_ring_bound () =
  fresh ();
  Obs.Trace_ctx.enable ();
  Obs.Span.set_capacity 100;
  Fun.protect
    ~finally:(fun () -> Obs.Span.set_capacity 8192)
    (fun () ->
      for i = 0 to 149 do
        Obs.Span.with_ (Printf.sprintf "s%03d" i) (fun () -> ())
      done;
      check_int "overwrites counted" 50 (Obs.Span.dropped ());
      let spans = Obs.Span.drain () in
      check_int "ring holds exactly its capacity" 100 (List.length spans);
      match spans with
      | first :: _ ->
        Alcotest.(check string) "oldest survivor is s050" "s050"
          first.Obs.Span.name
      | [] -> Alcotest.fail "empty drain")

let test_event_queue_bound () =
  fresh ();
  Obs.Event.reset ();
  Obs.Event.emit "t.off" [ ("i", Obs.Event.Int 0) ];
  check_bool "disabled stream stays empty" true (Obs.Event.drain () = []);
  Obs.Event.set_capacity 4;
  Fun.protect
    ~finally:(fun () ->
      Obs.Event.reset ();
      Obs.Event.set_capacity 65536)
    (fun () ->
      Obs.Event.enable ();
      for i = 0 to 5 do
        Obs.Event.emit "t.ev" [ ("i", Obs.Event.Int i) ]
      done;
      check_int "newest two dropped" 2 (Obs.Event.dropped ());
      let evs = Obs.Event.drain () in
      check_int "queue bounded" 4 (List.length evs);
      List.iteri
        (fun i (e : Obs.Event.t) ->
          check_bool "run prefix kept in order" true
            (e.Obs.Event.fields = [ ("i", Obs.Event.Int i) ]);
          check_bool "timestamp is non-negative" true (e.Obs.Event.ts_s >= 0.))
        evs;
      (* the JSONL record parses back and leads with the event name *)
      match
        Obs.Report.json_of_string
          (Obs.Report.json_to_string (Obs.Event.to_json (List.hd evs)))
      with
      | Ok (Obs.Report.Assoc (("ev", Obs.Report.String "t.ev") :: _)) -> ()
      | Ok _ -> Alcotest.fail "event record shape changed"
      | Error m -> Alcotest.fail m)

(* ------------------------------------------------------------------ *)
(* percentile edge cases: nearest-rank at tiny n *)

let test_percentile_edges () =
  fresh ();
  Obs.Trace_ctx.enable ();
  let h1 = Obs.Metric.histogram "t.one" in
  Obs.Metric.observe h1 7.;
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "n=1 q=%.2f" q)
        7. (Obs.Metric.percentile h1 q))
    [ 0.0; 0.5; 0.99; 1.0 ];
  let h2 = Obs.Metric.histogram "t.two" in
  Obs.Metric.observe h2 4.;
  Obs.Metric.observe h2 1.;
  Alcotest.(check (float 0.0)) "n=2 p0" 1. (Obs.Metric.percentile h2 0.0);
  Alcotest.(check (float 0.0)) "n=2 p50 takes the lower rank" 1.
    (Obs.Metric.percentile h2 0.5);
  Alcotest.(check (float 0.0)) "n=2 p90" 4. (Obs.Metric.percentile h2 0.9)

(* ------------------------------------------------------------------ *)
(* hostile metric and command names survive the JSON cycle *)

let test_metric_name_escaping () =
  fresh ();
  Obs.Trace_ctx.enable ();
  let name = "t.weird \"quoted\"\\back\nnew\tline\x01ctl" in
  Obs.Metric.count name 3;
  Obs.Metric.set_gauge (name ^ ".g") 1.5;
  let report = Obs.Report.collect ~command:"esc \"cmd\"\n" () in
  match
    Result.bind
      (Obs.Report.json_of_string
         (Obs.Report.json_to_string (Obs.Report.to_json report)))
      Obs.Report.of_json
  with
  | Error m -> Alcotest.fail ("escaping round-trip failed: " ^ m)
  | Ok r ->
    check_bool "metrics survive hostile names" true
      (r.Obs.Report.metrics = report.Obs.Report.metrics);
    Alcotest.(check string) "command survives" report.Obs.Report.command
      r.Obs.Report.command

(* ------------------------------------------------------------------ *)
(* the monotonic clock and the GC deltas behind every span *)

let test_monotonic_durations () =
  let a = Obs.Clock.now () in
  let b = Obs.Clock.now () in
  check_bool "clock never steps backwards" true (b >= a);
  fresh ();
  Obs.Trace_ctx.enable ();
  Obs.Span.with_ "tick" (fun () ->
      ignore (Sys.opaque_identity (List.init 10_000 (fun i -> float_of_int i)));
      (* flush the allocation counters: quick_stat only advances them
         at collection boundaries *)
      Gc.minor ());
  match Obs.Span.drain () with
  | [ s ] ->
    check_bool "duration non-negative" true (s.Obs.Span.dur_s >= 0.);
    check_bool "allocation visible in the span" true (s.Obs.Span.gc_minor_w > 0.)
  | _ -> Alcotest.fail "expected exactly one span"

(* ------------------------------------------------------------------ *)
(* report diff goldens: classification, gating, boundary behaviour *)

let mk_report metrics =
  {
    Obs.Report.command = "golden";
    timestamp = 0.;
    elapsed_s = 1.0;
    metrics;
    spans = [];
  }

let diff_status ?gate ?timing_gate changes key =
  match List.find_opt (fun (c : Obs.Diff.change) -> c.Obs.Diff.key = key) changes with
  | None -> Alcotest.fail ("no change entry for " ^ key)
  | Some c -> Obs.Diff.status_of ?gate ?timing_gate c

let test_diff_goldens () =
  let old_r =
    mk_report
      [
        Obs.Metric.Counter ("cache.hits", 10);
        Obs.Metric.Counter ("engine.states", 1024);
        Obs.Metric.Gauge ("engine.states_per_sec", 100.);
        Obs.Metric.Counter ("gone.key", 5);
      ]
  in
  let new_r =
    mk_report
      [
        Obs.Metric.Counter ("cache.hits", 4);
        Obs.Metric.Counter ("engine.states", 1056);
        Obs.Metric.Gauge ("engine.states_per_sec", 240.);
        Obs.Metric.Counter ("fresh.key", 1);
      ]
  in
  let changes = Obs.Diff.compare_reports ~old_report:old_r ~new_report:new_r in
  let st = diff_status ~gate:3.125 ~timing_gate:10. changes in
  (* improvement on a higher-better timing key passes *)
  check_bool "per_sec gain passes" true
    (st "engine.states_per_sec" = Obs.Diff.Pass);
  (* a hit-rate collapse on a gated deterministic key fails *)
  check_bool "hit collapse regresses" true
    (st "cache.hits" = Obs.Diff.Regression);
  (* +3.125% against a 3.125% gate sits exactly on the boundary: in *)
  check_bool "boundary delta passes" true
    (st "engine.states" = Obs.Diff.Pass);
  check_bool "vanished gated key fails" true (st "gone.key" = Obs.Diff.Missing);
  check_bool "new key is informational" true (st "fresh.key" = Obs.Diff.Added);
  (* ungated classes never fail: timing regression needs timing_gate,
     a vanished deterministic key needs gate *)
  let shrunk =
    mk_report [ Obs.Metric.Gauge ("engine.states_per_sec", 50.) ]
  in
  let ch2 = Obs.Diff.compare_reports ~old_report:old_r ~new_report:shrunk in
  check_bool "timing drop fails only when timing-gated" true
    (diff_status ~timing_gate:10. ch2 "engine.states_per_sec"
     = Obs.Diff.Regression
    && diff_status ~gate:3. ch2 "engine.states_per_sec" = Obs.Diff.Pass);
  check_bool "missing det key passes ungated" true
    (diff_status ~timing_gate:10. ch2 "gone.key" = Obs.Diff.Pass);
  (* the regression list is exactly the failing subset *)
  let failing =
    List.map
      (fun (c : Obs.Diff.change) -> c.Obs.Diff.key)
      (Obs.Diff.regressions ~gate:3.125 ~timing_gate:10. changes)
  in
  check_bool "regressions = {cache.hits, gone.key}" true
    (List.sort compare failing = [ "cache.hits"; "gone.key" ])

let test_diff_classification () =
  let c k = Obs.Diff.classify k in
  check_bool "histogram percentile of a duration is timing" true
    (c "pool.run_s.p90" = (Obs.Diff.Timing, Obs.Diff.Lower_better));
  check_bool "sample count of a timing histogram is deterministic" true
    (c "pool.run_s.n" = (Obs.Diff.Deterministic, Obs.Diff.Neutral));
  check_bool "throughput is timing, higher-better" true
    (c "bench.search.dverify_s2.states_per_sec"
    = (Obs.Diff.Timing, Obs.Diff.Higher_better));
  check_bool "state count is deterministic" true
    (c "bench.search.dverify_s2.states"
    = (Obs.Diff.Deterministic, Obs.Diff.Neutral));
  check_bool "provenance counter is deterministic" true
    (c "cache.verdict.engine" = (Obs.Diff.Deterministic, Obs.Diff.Neutral));
  check_bool "drop counters are lower-better" true
    (c "obs.events_dropped" = (Obs.Diff.Deterministic, Obs.Diff.Lower_better));
  check_bool "elapsed is timing" true
    (c "elapsed_s" = (Obs.Diff.Timing, Obs.Diff.Lower_better))

let () =
  Alcotest.run "obs"
    [
      ( "span",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safety;
        ] );
      ( "metric",
        [
          Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "percentile edge cases" `Quick test_percentile_edges;
          Alcotest.test_case "counter re-entrancy" `Quick test_counter_reentrancy;
          Alcotest.test_case "gauge max" `Quick test_gauge_max;
          Alcotest.test_case "multi-domain hammer" `Quick test_metric_hammer;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "span ring overwrites oldest" `Quick
            test_span_ring_bound;
          Alcotest.test_case "event queue drops newest" `Quick
            test_event_queue_bound;
        ] );
      ( "clock",
        [ Alcotest.test_case "monotonic durations" `Quick test_monotonic_durations ] );
      ( "diff",
        [
          Alcotest.test_case "goldens" `Quick test_diff_goldens;
          Alcotest.test_case "classification" `Quick test_diff_classification;
        ] );
      ( "disabled",
        [ Alcotest.test_case "no-op everywhere" `Quick test_disabled_noop ] );
      ( "report",
        [
          Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "json parser" `Quick test_json_parser;
          Alcotest.test_case "hostile name escaping" `Quick
            test_metric_name_escaping;
        ] );
      ( "integration",
        [ Alcotest.test_case "engine metrics" `Quick test_engine_metrics ] );
    ]
