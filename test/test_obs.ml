(* lib/obs: spans, metrics, reports, sinks, and the disabled path *)

let fresh () =
  Obs.Trace_ctx.disable ();
  Obs.Trace_ctx.reset ();
  Obs.Span.reset ();
  Obs.Metric.reset ()

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* spans *)

let test_span_nesting () =
  fresh ();
  Obs.Trace_ctx.enable ();
  Obs.Span.with_ "root" (fun () ->
      Obs.Span.with_ "child-a" (fun () ->
          Obs.Span.with_ "grandchild" (fun () -> ()));
      Obs.Span.with_ "child-b" (fun () -> ()));
  let spans = Obs.Span.drain () in
  check_int "four spans" 4 (List.length spans);
  let find name =
    List.find (fun (s : Obs.Span.record) -> s.Obs.Span.name = name) spans
  in
  let root = find "root" in
  check_bool "root has no parent" true (root.Obs.Span.parent = None);
  check_bool "child-a under root" true
    ((find "child-a").Obs.Span.parent = Some root.Obs.Span.id);
  check_bool "child-b under root" true
    ((find "child-b").Obs.Span.parent = Some root.Obs.Span.id);
  check_bool "grandchild under child-a" true
    ((find "grandchild").Obs.Span.parent = Some (find "child-a").Obs.Span.id);
  check_bool "drain clears" true (Obs.Span.drain () = [])

let test_span_exception_safety () =
  fresh ();
  Obs.Trace_ctx.enable ();
  (try
     Obs.Span.with_ "outer" (fun () ->
         Obs.Span.with_ "thrower" (fun () -> failwith "boom"))
   with Failure _ -> ());
  let spans = Obs.Span.drain () in
  check_int "both spans finished" 2 (List.length spans);
  (* a span started after the unwind nests at top level again *)
  Obs.Span.with_ "after" (fun () -> ());
  match Obs.Span.drain () with
  | [ s ] -> check_bool "no stale parent" true (s.Obs.Span.parent = None)
  | _ -> Alcotest.fail "expected one span"

(* ------------------------------------------------------------------ *)
(* metrics *)

let test_histogram_percentiles () =
  fresh ();
  Obs.Trace_ctx.enable ();
  let h = Obs.Metric.histogram "t.hist" in
  (* 1..100 shuffled deterministically *)
  List.iter
    (fun i -> Obs.Metric.observe h (float_of_int ((i * 37 mod 100) + 1)))
    (List.init 100 (fun i -> i));
  Alcotest.(check (float 0.0)) "p50" 50. (Obs.Metric.percentile h 0.5);
  Alcotest.(check (float 0.0)) "p90" 90. (Obs.Metric.percentile h 0.9);
  Alcotest.(check (float 0.0)) "p99" 99. (Obs.Metric.percentile h 0.99);
  Alcotest.(check (float 0.0)) "p100" 100. (Obs.Metric.percentile h 1.0);
  check_bool "empty histogram is nan" true
    (Float.is_nan (Obs.Metric.percentile (Obs.Metric.histogram "t.empty") 0.5))

let test_counter_reentrancy () =
  fresh ();
  Obs.Trace_ctx.enable ();
  let c = Obs.Metric.counter "t.counter" in
  (* increments interleaved across re-entrant frames must all land *)
  let rec recurse depth =
    if depth > 0 then begin
      Obs.Metric.incr c;
      Obs.Span.with_ "frame" (fun () ->
          Obs.Metric.incr c;
          recurse (depth - 1));
      Obs.Metric.incr c
    end
  in
  recurse 100;
  check_int "300 increments" 300 (Obs.Metric.value c);
  check_bool "same name, same counter" true
    (Obs.Metric.value (Obs.Metric.counter "t.counter") = 300);
  Obs.Metric.add c (-300);
  check_int "negative add" 0 (Obs.Metric.value c)

let test_gauge_max () =
  fresh ();
  Obs.Trace_ctx.enable ();
  let g = Obs.Metric.gauge "t.peak" in
  check_bool "unset" true (Obs.Metric.gauge_value g = None);
  Obs.Metric.set_max g 3.;
  Obs.Metric.set_max g 7.;
  Obs.Metric.set_max g 5.;
  check_bool "peak kept" true (Obs.Metric.gauge_value g = Some 7.)

(* ------------------------------------------------------------------ *)
(* disabled mode *)

let test_disabled_noop () =
  fresh ();
  (* everything below runs with the switch off *)
  let c = Obs.Metric.counter "t.off.counter" in
  Obs.Metric.incr c;
  Obs.Metric.add c 42;
  Obs.Metric.count "t.off.oneshot" 9;
  Obs.Metric.set_gauge "t.off.gauge" 1.;
  Obs.Metric.observe_value "t.off.hist" 1.;
  let s = Obs.Span.start "t.off.span" in
  Obs.Span.finish s;
  Obs.Span.with_ "t.off.wrapped" (fun () -> ());
  check_bool "span handle is none" true (s = Obs.Span.none);
  check_int "counter untouched" 0 (Obs.Metric.value c);
  check_bool "no spans recorded" true (Obs.Span.drain () = []);
  check_bool "registry snapshot empty" true (Obs.Metric.snapshot () = []);
  (* instrumented engines still compute correct results while disabled *)
  let apps =
    List.map
      (fun (a : Casestudy.app) ->
        Core.App.make ~name:a.Casestudy.name ~plant:a.Casestudy.plant
          ~gains:a.Casestudy.gains ~r:a.Casestudy.r ~j_star:a.Casestudy.j_star ())
      [ Casestudy.find "C6"; Casestudy.find "C2" ]
  in
  let r = Core.Dverify.verify (Core.Mapping.specs_of_group apps) in
  check_bool "verdict unaffected" true (r.Core.Dverify.verdict = Core.Dverify.Safe);
  check_bool "still nothing recorded" true (Obs.Metric.snapshot () = [])

(* ------------------------------------------------------------------ *)
(* reports: JSONL round-trip through a sink *)

let test_jsonl_roundtrip () =
  fresh ();
  Obs.Trace_ctx.enable ();
  Obs.Span.with_ "root" (fun () -> Obs.Span.with_ "inner" (fun () -> ()));
  Obs.Metric.count "t.states" 123;
  Obs.Metric.set_gauge "t.rate" 456.5;
  List.iter (fun v -> Obs.Metric.observe_value "t.lat" (float_of_int v)) [ 1; 2; 3; 4 ];
  let report = Obs.Report.collect ~command:"test \"quoted\"" () in
  let path = Filename.temp_file "obs_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let sink = Obs.Sink.jsonl ~path in
      Obs.Sink.emit sink report;
      Obs.Sink.emit sink report;
      let lines =
        In_channel.with_open_text path In_channel.input_all
        |> String.split_on_char '\n'
        |> List.filter (fun l -> String.trim l <> "")
      in
      check_int "one line per emit" 2 (List.length lines);
      match
        Result.bind
          (Obs.Report.json_of_string (List.nth lines 1))
          Obs.Report.of_json
      with
      | Error m -> Alcotest.fail ("round-trip failed: " ^ m)
      | Ok r ->
        Alcotest.(check string) "command" report.Obs.Report.command r.Obs.Report.command;
        check_int "span count" 2 (List.length r.Obs.Report.spans);
        check_bool "metrics preserved" true
          (r.Obs.Report.metrics = report.Obs.Report.metrics);
        let inner =
          List.find
            (fun (s : Obs.Span.record) -> s.Obs.Span.name = "inner")
            r.Obs.Report.spans
        in
        let root =
          List.find
            (fun (s : Obs.Span.record) -> s.Obs.Span.name = "root")
            r.Obs.Report.spans
        in
        check_bool "nesting preserved" true
          (inner.Obs.Span.parent = Some root.Obs.Span.id))

let test_json_parser () =
  let ok s = Result.is_ok (Obs.Report.json_of_string s) in
  check_bool "object" true (ok {|{"a": [1, 2.5, null, true, "x\n"]}|});
  check_bool "nested" true (ok {|[[{"k":{"v":[-1e-3]}}]]|});
  check_bool "trailing garbage rejected" false (ok "{}{}");
  check_bool "unterminated rejected" false (ok {|{"a": 1|});
  check_bool "bare word rejected" false (ok "states");
  (* escapes survive a print/parse cycle *)
  let j = Obs.Report.String "a\"b\\c\nd\te" in
  check_bool "string round-trip" true
    (Obs.Report.json_of_string (Obs.Report.json_to_string j) = Ok j)

(* ------------------------------------------------------------------ *)
(* instrumentation of the engines *)

let find_counter name metrics =
  List.find_map
    (function
      | Obs.Metric.Counter (n, v) when n = name -> Some v
      | _ -> None)
    metrics

let test_engine_metrics () =
  fresh ();
  Obs.Trace_ctx.enable ();
  let apps =
    List.map
      (fun (a : Casestudy.app) ->
        Core.App.make ~name:a.Casestudy.name ~plant:a.Casestudy.plant
          ~gains:a.Casestudy.gains ~r:a.Casestudy.r ~j_star:a.Casestudy.j_star ())
      [ Casestudy.find "C6"; Casestudy.find "C2" ]
  in
  let specs = Core.Mapping.specs_of_group apps in
  let dr = Core.Dverify.verify specs in
  let tr = Core.Ta_model.verify ~inclusion:false specs in
  let report = Obs.Report.collect ~command:"engines" () in
  let m = report.Obs.Report.metrics in
  check_bool "dverify.states matches stats" true
    (find_counter "dverify.states" m
    = Some dr.Core.Dverify.stats.Core.Dverify.states);
  check_bool "ta.reach.states matches stats" true
    (find_counter "ta.reach.states" m
    = Some tr.Core.Ta_model.stats.Ta.Reach.states);
  check_bool "ta stats track dedup hits" true
    (tr.Core.Ta_model.stats.Ta.Reach.dedup_hits > 0);
  check_bool "ta stats track waiting peak" true
    (tr.Core.Ta_model.stats.Ta.Reach.waiting_peak > 0);
  check_bool "dwell simulations counted" true
    (match find_counter "dwell.simulations" m with
     | Some n -> n > 0
     | None -> false);
  check_bool "spans include both engines" true
    (List.exists (fun (s : Obs.Span.record) -> s.Obs.Span.name = "dverify")
       report.Obs.Report.spans
    && List.exists (fun (s : Obs.Span.record) -> s.Obs.Span.name = "ta.reach")
         report.Obs.Report.spans)

let () =
  Alcotest.run "obs"
    [
      ( "span",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safety;
        ] );
      ( "metric",
        [
          Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "counter re-entrancy" `Quick test_counter_reentrancy;
          Alcotest.test_case "gauge max" `Quick test_gauge_max;
        ] );
      ( "disabled",
        [ Alcotest.test_case "no-op everywhere" `Quick test_disabled_noop ] );
      ( "report",
        [
          Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "json parser" `Quick test_json_parser;
        ] );
      ( "integration",
        [ Alcotest.test_case "engine metrics" `Quick test_engine_metrics ] );
    ]
