(* The unified search engine (lib/search), tested at two levels.

   Engine unit tests drive Search.Make over small synthetic graphs and
   check the things the production clients rely on: the three frontier
   orders, both state-budget check points, the deadline budget, the
   `Generate/`Insert target regimes, antichain coverage pruning, and
   parent-table trace reconstruction.

   Differential pins re-run the engine's three production
   instantiations — the discrete adversary (Core.Dverify), zone-graph
   reachability (Core.Ta_model / Ta.Reach) and the slot mapper built on
   them — and compare verdicts, state/transition counts, dwell
   (max-wait) tables, counterexample text and witness traces against
   numbers captured from the pre-refactor explorers on the paper's
   case study.  Any drift here means the refactor changed observable
   semantics, which is exactly what it must never do; the same pins are
   asserted under explicit 1/2/4-domain pools. *)

let pr_arr a =
  "[|" ^ String.concat ";" (Array.to_list (Array.map string_of_int a)) ^ "|]"

(* ------------------------------------------------------------------ *)
(* Engine unit tests over synthetic graphs *)

(* integer states, string labels, successors given by a closure set per
   test via this ref (the module is instantiated once) *)
let graph : (int -> (string * int) list) ref = ref (fun _ -> [])

module Ints = Search.Make (struct
  type state = int
  type label = string

  module Key = struct
    type t = int

    let equal = Int.equal
    let hash = Hashtbl.hash
  end

  let key s = s
  let successors s = !graph s
  let is_target _ s = s >= 1_000_000
end)

let insert_order ?order graph_fn initial =
  graph := graph_fn;
  let seen = ref [] in
  let r = Ints.run ?order ~on_insert:(fun s -> seen := s :: !seen) initial in
  (r, List.rev !seen)

(* a three-level tree whose insertion order separates all three
   frontier disciplines: 0 -> 12,21,33 (priority scores 2,1,3 under
   [n mod 10]), each with one child recording when its parent was
   popped *)
let tree = function
  | 0 -> [ ("a", 12); ("b", 21); ("c", 33) ]
  | 12 -> [ ("d", 112) ]
  | 21 -> [ ("e", 121) ]
  | 33 -> [ ("f", 133) ]
  | _ -> []

let test_order_bfs () =
  let r, order = insert_order tree 0 in
  Alcotest.(check (list int)) "FIFO insert order" [ 0; 12; 21; 33; 112; 121; 133 ] order;
  Alcotest.(check int) "states" 7 r.Ints.stats.Search.states;
  Alcotest.(check int) "transitions" 6 r.Ints.stats.Search.transitions;
  Alcotest.(check bool) "completed" true (r.Ints.outcome = Ints.Completed)

let test_order_dfs () =
  let _, order = insert_order ~order:Search.Dfs tree 0 in
  (* the stack pops the most recently pushed sibling first *)
  Alcotest.(check (list int)) "LIFO insert order" [ 0; 12; 21; 33; 133; 121; 112 ] order

let test_order_priority () =
  let _, order =
    insert_order ~order:(Search.Priority (fun n -> n mod 10)) tree 0
  in
  (* scores: 21 -> 1, 12 -> 2, 33 -> 3 *)
  Alcotest.(check (list int)) "smallest score first" [ 0; 12; 21; 33; 121; 112; 133 ] order

let chain n = if n < 1_000 then [ ("s", n + 1) ] else []

let test_budget_insert () =
  graph := chain;
  let r = Ints.run ~max_states:3 ~max_states_check:`Insert 0 in
  (match r.Ints.outcome with
   | Ints.Exhausted (Search.Max_states 3) -> ()
   | _ -> Alcotest.fail "expected Exhausted (Max_states 3)");
  Alcotest.(check int) "stops right at the cap" 3 r.Ints.stats.Search.states

let test_budget_pop () =
  graph := chain;
  let r = Ints.run ~max_states:2 ~max_states_check:`Pop 0 in
  (match r.Ints.outcome with
   | Ints.Exhausted (Search.Max_states 2) -> ()
   | _ -> Alcotest.fail "expected Exhausted (Max_states 2)");
  (* the cap is noticed before the pop that would exceed it, so the
     last inserted state is never expanded *)
  Alcotest.(check int) "states" 2 r.Ints.stats.Search.states;
  Alcotest.(check int) "transitions" 1 r.Ints.stats.Search.transitions

let test_budget_deadline () =
  graph := chain;
  (* mask 0 checks the clock on every pop, so even a fast machine
     cannot finish the chain before noticing the spent deadline *)
  let r = Ints.run ~deadline:1e-9 ~deadline_mask:0 0 in
  match r.Ints.outcome with
  | Ints.Exhausted (Search.Deadline d) ->
    Alcotest.(check (float 0.)) "reason carries the budget" 1e-9 d
  | _ -> Alcotest.fail "expected Exhausted (Deadline _)"

let test_target_regimes () =
  let g = function
    | 0 -> [ ("s", 1) ]
    | 1 -> [ ("t", 1_000_001) ]
    | _ -> []
  in
  graph := g;
  let ri = Ints.run ~target_check:`Insert 0 in
  let rg = Ints.run ~target_check:`Generate 0 in
  (match (ri.Ints.outcome, rg.Ints.outcome) with
   | Ints.Found a, Ints.Found b ->
     Alcotest.(check int) "same witness" a b
   | _ -> Alcotest.fail "both regimes must find the target");
  (* `Insert counts the stored target, `Generate keeps it out of the
     visited set (the Dverify error-state regime) *)
  Alcotest.(check int) "insert counts it" 3 ri.Ints.stats.Search.states;
  Alcotest.(check int) "generate does not" 2 rg.Ints.stats.Search.states

let test_trace () =
  let g = function
    | 0 -> [ ("z", 5); ("a", 1) ]
    | 1 -> [ ("b", 2) ]
    | 2 -> [ ("c", 1_000_002) ]
    | _ -> []
  in
  graph := g;
  let r = Ints.run 0 in
  (match r.Ints.outcome with
   | Ints.Found s -> Alcotest.(check int) "witness" 1_000_002 s
   | _ -> Alcotest.fail "target not found");
  Alcotest.(check (list (pair string int)))
    "chronological labelled path from the initial state"
    [ ("a", 1); ("b", 2); ("c", 1_000_002) ]
    r.Ints.trace;
  (* well-formedness: every step is a real successor of its
     predecessor *)
  let rec ok prev = function
    | [] -> true
    | (l, s) :: rest ->
      List.exists (fun (l', s') -> l = l' && s = s') (!graph prev) && ok s rest
  in
  Alcotest.(check bool) "each step is a successor edge" true (ok 0 r.Ints.trace)

(* pair states so coverage can split them into a group key and an
   ordered abstract element *)
let pair_graph : (int * int -> (string * (int * int)) list) ref =
  ref (fun _ -> [])

module Pairs = Search.Make (struct
  type state = int * int
  type label = string

  module Key = struct
    type t = int * int

    let equal = ( = )
    let hash = Hashtbl.hash
  end

  let key s = s
  let successors s = !pair_graph s
  let is_target _ _ = false
end)

let test_coverage () =
  (pair_graph :=
     function
     | 0, 5 -> [ ("low", (0, 3)); ("high", (0, 7)) ]
     | 0, 3 -> [ ("boom", (9, 9)) ]
     | _ -> []);
  let coverage =
    Pairs.Coverage
      {
        split = (fun (g, v) -> (g, v));
        ck_equal = Int.equal;
        ck_hash = Hashtbl.hash;
        covers = (fun stored cand -> stored >= cand);
      }
  in
  let r = Pairs.run ~exact:false ~coverage (0, 5) in
  (* (0,3) is covered by the stored (0,5) and pruned, so its successor
     (9,9) is never generated; (0,7) covers (0,5) and replaces it *)
  Alcotest.(check bool) "completed" true (r.Pairs.outcome = Pairs.Completed);
  Alcotest.(check int) "states" 2 r.Pairs.stats.Search.states;
  Alcotest.(check int) "transitions" 2 r.Pairs.stats.Search.transitions;
  Alcotest.(check int) "cover hits" 1 r.Pairs.stats.Search.cover_hits

(* ------------------------------------------------------------------ *)
(* Differential pins against the pre-refactor explorers *)

let app_of name =
  let a = Casestudy.find name in
  Core.App.make ~name:a.Casestudy.name ~plant:a.Casestudy.plant
    ~gains:a.Casestudy.gains ~r:a.Casestudy.r ~j_star:a.Casestudy.j_star ()

let by_name n = Core.Mapping.specs_of_group (List.map app_of n)
let s2 = lazy (by_name [ "C6"; "C2" ])
let c1c5 = lazy (by_name [ "C1"; "C5" ])
let s1 = lazy (by_name [ "C1"; "C5"; "C4"; "C3" ])

let unsafe_pair =
  lazy
    (let spec ~name ~id =
       Sched.Appspec.make ~id ~name ~t_w_max:1 ~t_dw_min:(Array.make 2 3)
         ~t_dw_max:(Array.make 2 4) ~r:20
     in
     [| spec ~name:"A" ~id:0; spec ~name:"B" ~id:1 |])

let check_dv label ?pool ?order ?mode ?prefilter ?symmetry specs ~verdict
    ~states ~transitions ~max_wait =
  let r = Core.Dverify.verify ?pool ?order ?mode ?prefilter ?symmetry specs in
  let v =
    match r.Core.Dverify.verdict with
    | Core.Dverify.Safe -> "Safe"
    | Core.Dverify.Unsafe _ -> "Unsafe"
    | Core.Dverify.Undetermined _ -> "Undet"
  in
  Alcotest.(check string) (label ^ " verdict") verdict v;
  Alcotest.(check int) (label ^ " states") states
    r.Core.Dverify.stats.Core.Dverify.states;
  Alcotest.(check int) (label ^ " transitions") transitions
    r.Core.Dverify.stats.Core.Dverify.transitions;
  Alcotest.(check string) (label ^ " max_wait") max_wait
    (pr_arr r.Core.Dverify.stats.Core.Dverify.max_wait);
  r

let test_pin_dverify () =
  ignore
    (check_dv "S2 subsumption" (Lazy.force s2) ~verdict:"Safe" ~states:10201
       ~transitions:10609 ~max_wait:"[|6;7|]");
  ignore
    (check_dv "S2 plain BFS" ~mode:`Bfs (Lazy.force s2) ~verdict:"Safe"
       ~states:10201 ~transitions:10609 ~max_wait:"[|6;7|]");
  ignore
    (check_dv "C1C5 subsumption" (Lazy.force c1c5) ~verdict:"Safe" ~states:676
       ~transitions:784 ~max_wait:"[|3;3|]");
  ignore
    (check_dv "C1C5 plain BFS" ~mode:`Bfs (Lazy.force c1c5) ~verdict:"Safe"
       ~states:676 ~transitions:784 ~max_wait:"[|3;3|]")

let test_pin_dverify_s1 () =
  ignore
    (check_dv "S1 subsumption" (Lazy.force s1) ~verdict:"Safe" ~states:1431195
       ~transitions:1812343 ~max_wait:"[|11;11;9;13|]")

let expected_ce_text =
  "t=0   A:wait(0) B:run(ct=0,w=0)  <- disturb B,A\n\
   t=1   A:wait(1) B:run(ct=1,w=0)\n\
   t=2   A:ERROR B:run(ct=2,w=0)\n\
   miss: A"

let test_pin_counterexample () =
  let g = Lazy.force unsafe_pair in
  let r =
    check_dv "AB" g ~verdict:"Unsafe" ~states:17 ~transitions:18
      ~max_wait:"[|0;0|]"
  in
  match r.Core.Dverify.verdict with
  | Core.Dverify.Unsafe ce ->
    Alcotest.(check (list int)) "failing ids" [ 0 ] ce.Core.Dverify.failing;
    Alcotest.(check (list (list int)))
      "disturbance schedule"
      [ [ 1; 0 ]; []; [] ]
      (List.map fst ce.Core.Dverify.steps);
    Alcotest.(check string) "rendered counterexample" expected_ce_text
      (String.trim
         (Format.asprintf "%a" (Core.Dverify.pp_counterexample g) ce))
  | _ -> Alcotest.fail "AB must be unsafe"

let check_ta label ?order ?inclusion specs ~verdict ~states ~transitions ~peak
    ~dedup ~incl ~extrap =
  let r = Core.Ta_model.verify ?order ?inclusion specs in
  let v =
    match r.Core.Ta_model.outcome with
    | `Safe -> "Safe"
    | `Unsafe -> "Unsafe"
    | `Undetermined _ -> "Undet"
  in
  let s = r.Core.Ta_model.stats in
  Alcotest.(check string) (label ^ " verdict") verdict v;
  Alcotest.(check int) (label ^ " states") states s.Ta.Reach.states;
  Alcotest.(check int) (label ^ " transitions") transitions
    s.Ta.Reach.transitions;
  Alcotest.(check int) (label ^ " waiting_peak") peak s.Ta.Reach.waiting_peak;
  Alcotest.(check int) (label ^ " dedup_hits") dedup s.Ta.Reach.dedup_hits;
  Alcotest.(check int) (label ^ " inclusion_pruned") incl
    s.Ta.Reach.inclusion_pruned;
  Alcotest.(check int) (label ^ " extrapolations") extrap
    s.Ta.Reach.extrapolations

let test_pin_reach_s2 () =
  check_ta "TA S2" (Lazy.force s2) ~verdict:"Safe" ~states:66006
    ~transitions:89261 ~peak:626 ~dedup:23256 ~incl:0 ~extrap:89261;
  check_ta "TA S2 inclusion" ~inclusion:true (Lazy.force s2) ~verdict:"Safe"
    ~states:65396 ~transitions:88433 ~peak:436 ~dedup:22392 ~incl:646
    ~extrap:88433

let test_pin_reach_c1c5 () =
  check_ta "TA C1C5" (Lazy.force c1c5) ~verdict:"Safe" ~states:5389
    ~transitions:7517 ~peak:172 ~dedup:2129 ~incl:0 ~extrap:7517;
  check_ta "TA C1C5 inclusion" ~inclusion:true (Lazy.force c1c5)
    ~verdict:"Safe" ~states:5230 ~transitions:7300 ~peak:125 ~dedup:1901
    ~incl:170 ~extrap:7300

let expected_ab_trace =
  [
    "A: Steady -> Dist_init";
    "A!reqTT Scheduler?reqTT";
    "B: Steady -> Dist_init";
    "B!reqTT Scheduler?reqTT";
    "Scheduler: Idle -> TickSlot";
    "Scheduler!getTT[A] A?getTT[A]";
    "Scheduler: Idle -> TickSlot";
    "Scheduler: TickSlot -> Idle";
    "B: ET_Wait -> Error";
  ]

let test_pin_reach_trace () =
  let g = Lazy.force unsafe_pair in
  check_ta "TA AB" g ~verdict:"Unsafe" ~states:84 ~transitions:87 ~peak:19
    ~dedup:4 ~incl:0 ~extrap:88;
  let net = Core.Ta_model.build g in
  let res = Ta.Reach.run net (Core.Ta_model.error_target g) in
  (match res.Ta.Reach.outcome with
   | Ta.Reach.Hit _ -> ()
   | _ -> Alcotest.fail "AB zone model must hit Error");
  Alcotest.(check (list string))
    "witness trace labels" expected_ab_trace
    (List.map (fun s -> s.Ta.Reach.automaton) res.Ta.Reach.trace)

(* verdicts never depend on the frontier order; counts may *)
let test_order_independence () =
  List.iter
    (fun (label, specs) ->
      let dv order =
        match (Core.Dverify.verify ~order specs).Core.Dverify.verdict with
        | Core.Dverify.Safe -> "Safe"
        | Core.Dverify.Unsafe _ -> "Unsafe"
        | Core.Dverify.Undetermined _ -> "Undet"
      in
      let ta order =
        match (Core.Ta_model.verify ~order specs).Core.Ta_model.outcome with
        | `Safe -> "Safe"
        | `Unsafe -> "Unsafe"
        | `Undetermined _ -> "Undet"
      in
      Alcotest.(check string) (label ^ " discrete") (dv `Bfs) (dv `Dfs);
      Alcotest.(check string) (label ^ " zones") (ta `Bfs) (ta `Dfs))
    [
      ("S2", Lazy.force s2);
      ("C1C5", Lazy.force c1c5);
      ("AB", Lazy.force unsafe_pair);
    ]

(* the batched expansion must replay the sequential run exactly: same
   verdict, same counts, same dwell table at every pool size *)
let test_jobs_determinism () =
  List.iter
    (fun jobs ->
      let pool = Par.Pool.create ~jobs in
      ignore
        (check_dv
           (Printf.sprintf "S2 jobs=%d" jobs)
           ~pool (Lazy.force s2) ~verdict:"Safe" ~states:10201
           ~transitions:10609 ~max_wait:"[|6;7|]");
      ignore
        (check_dv
           (Printf.sprintf "AB jobs=%d" jobs)
           ~pool (Lazy.force unsafe_pair) ~verdict:"Unsafe" ~states:17
           ~transitions:18 ~max_wait:"[|0;0|]"))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Symmetry quotient pins.  The quotient must be invisible in every
   observable: verdicts always, max-wait tables on Safe (orbit fix-up),
   and the full counterexample text on Unsafe (transparent exact
   re-run) — only the Safe-side state counts may shrink. *)

(* three interchangeable applications, analytically safe but far from
   trivial for the engine: min dwell 3, so two competitors hold the
   slot for at most 6 < T*_w = 8 samples *)
let trio =
  lazy
    (let spec ~name ~id =
       Sched.Appspec.make ~id ~name ~t_w_max:8 ~t_dw_min:(Array.make 9 3)
         ~t_dw_max:(Array.make 9 4) ~r:13
     in
     [| spec ~name:"A" ~id:0; spec ~name:"B" ~id:1; spec ~name:"C" ~id:2 |])

let dv_fingerprint (r : Core.Dverify.result) =
  let v =
    match r.Core.Dverify.verdict with
    | Core.Dverify.Safe -> "Safe"
    | Core.Dverify.Unsafe _ -> "Unsafe"
    | Core.Dverify.Undetermined _ -> "Undet"
  in
  Printf.sprintf "%s states=%d transitions=%d max_wait=%s" v
    r.Core.Dverify.stats.Core.Dverify.states
    r.Core.Dverify.stats.Core.Dverify.transitions
    (pr_arr r.Core.Dverify.stats.Core.Dverify.max_wait)

let test_symmetry_safe_agrees () =
  let g = Lazy.force trio in
  let exact = Core.Dverify.verify g in
  let quotient = Core.Dverify.verify ~symmetry:true g in
  (match (exact.Core.Dverify.verdict, quotient.Core.Dverify.verdict) with
   | Core.Dverify.Safe, Core.Dverify.Safe -> ()
   | _ -> Alcotest.fail "trio must be Safe with and without the quotient");
  Alcotest.(check string)
    "orbit-max fix-up reproduces the exact max-wait table"
    (pr_arr exact.Core.Dverify.stats.Core.Dverify.max_wait)
    (pr_arr quotient.Core.Dverify.stats.Core.Dverify.max_wait);
  Alcotest.(check bool)
    "quotient explores strictly fewer states" true
    (quotient.Core.Dverify.stats.Core.Dverify.states
     < exact.Core.Dverify.stats.Core.Dverify.states);
  (* plain BFS agrees too: the quotient composes with either mode *)
  let qb = Core.Dverify.verify ~mode:`Bfs ~symmetry:true g in
  Alcotest.(check string)
    "same table under plain BFS"
    (pr_arr exact.Core.Dverify.stats.Core.Dverify.max_wait)
    (pr_arr qb.Core.Dverify.stats.Core.Dverify.max_wait)

let test_symmetry_unsafe_byte_identical () =
  (* the two AB applications are identical, so the quotient kicks in —
     and on Unsafe the transparent exact re-run must make it invisible
     bit-for-bit, counterexample text included *)
  let g = Lazy.force unsafe_pair in
  List.iter
    (fun jobs ->
      let pool = Par.Pool.create ~jobs in
      let r =
        check_dv
          (Printf.sprintf "AB quotient jobs=%d" jobs)
          ~pool ~symmetry:true g ~verdict:"Unsafe" ~states:17 ~transitions:18
          ~max_wait:"[|0;0|]"
      in
      match r.Core.Dverify.verdict with
      | Core.Dverify.Unsafe ce ->
        Alcotest.(check (list int)) "failing ids" [ 0 ] ce.Core.Dverify.failing;
        Alcotest.(check string) "rendered counterexample" expected_ce_text
          (String.trim
             (Format.asprintf "%a" (Core.Dverify.pp_counterexample g) ce))
      | _ -> Alcotest.fail "AB must stay unsafe under the quotient")
    [ 1; 2; 4 ]

let test_symmetry_heterogeneous_untouched () =
  (* no two S2 applications share parameters: every orbit is a
     singleton and the quotient path must be bit-for-bit inert *)
  ignore
    (check_dv "S2 with symmetry" ~symmetry:true (Lazy.force s2) ~verdict:"Safe"
       ~states:10201 ~transitions:10609 ~max_wait:"[|6;7|]")

let test_symmetry_jobs_determinism () =
  let g = Lazy.force trio in
  let runs =
    List.map
      (fun jobs ->
        let pool = Par.Pool.create ~jobs in
        dv_fingerprint (Core.Dverify.verify ~pool ~symmetry:true g))
      [ 1; 2; 4 ]
  in
  match runs with
  | a :: rest ->
    List.iteri
      (fun i b ->
        Alcotest.(check string)
          (Printf.sprintf "quotient run identical at jobs %d"
             (List.nth [ 2; 4 ] i))
          a b)
      rest
  | [] -> assert false

let test_symmetry_orbit_metric () =
  Obs.Trace_ctx.enable ();
  Obs.Metric.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Metric.reset ();
      Obs.Trace_ctx.disable ())
    (fun () ->
      ignore (Core.Dverify.verify ~symmetry:true (Lazy.force trio));
      let collapsed =
        Obs.Metric.value (Obs.Metric.counter "search.orbit_collapsed")
      in
      Alcotest.(check bool)
        "orbit_collapsed > 0 on a 3-identical-app fleet" true (collapsed > 0))

let test_pin_mapping () =
  let apps = List.map app_of [ "C1"; "C2"; "C3"; "C4"; "C5"; "C6" ] in
  let o = Core.Mapping.first_fit ~cache:(Core.Mapping.create_cache ()) apps in
  Alcotest.(check int) "verifications" 6 o.Core.Mapping.verifications;
  Alcotest.(check (list (list string)))
    "packing"
    [ [ "C1"; "C5"; "C4"; "C3" ]; [ "C6"; "C2" ] ]
    (List.map
       (fun s -> List.map (fun a -> a.Core.App.name) s.Core.Mapping.apps)
       o.Core.Mapping.slots)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "search"
    [
      ( "engine",
        [
          Alcotest.test_case "BFS order" `Quick test_order_bfs;
          Alcotest.test_case "DFS order" `Quick test_order_dfs;
          Alcotest.test_case "priority order" `Quick test_order_priority;
          Alcotest.test_case "max_states at insert" `Quick test_budget_insert;
          Alcotest.test_case "max_states at pop" `Quick test_budget_pop;
          Alcotest.test_case "deadline" `Quick test_budget_deadline;
          Alcotest.test_case "target regimes" `Quick test_target_regimes;
          Alcotest.test_case "trace reconstruction" `Quick test_trace;
          Alcotest.test_case "coverage pruning" `Quick test_coverage;
        ] );
      ( "differential",
        [
          Alcotest.test_case "dverify pins (S2, C1C5)" `Quick test_pin_dverify;
          Alcotest.test_case "dverify pin (S1, 1.4M states)" `Slow
            test_pin_dverify_s1;
          Alcotest.test_case "counterexample pin" `Quick test_pin_counterexample;
          Alcotest.test_case "reach pins (S2)" `Quick test_pin_reach_s2;
          Alcotest.test_case "reach pins (C1C5)" `Quick test_pin_reach_c1c5;
          Alcotest.test_case "reach trace pin (AB)" `Quick test_pin_reach_trace;
          Alcotest.test_case "order independence" `Quick test_order_independence;
          Alcotest.test_case "jobs 1/2/4 determinism" `Quick
            test_jobs_determinism;
          Alcotest.test_case "mapping packing pin" `Quick test_pin_mapping;
        ] );
      ( "symmetry",
        [
          Alcotest.test_case "safe quotient agrees" `Quick
            test_symmetry_safe_agrees;
          Alcotest.test_case "unsafe byte-identical at jobs 1/2/4" `Quick
            test_symmetry_unsafe_byte_identical;
          Alcotest.test_case "heterogeneous untouched" `Quick
            test_symmetry_heterogeneous_untouched;
          Alcotest.test_case "safe quotient jobs 1/2/4" `Quick
            test_symmetry_jobs_determinism;
          Alcotest.test_case "orbit_collapsed metric" `Quick
            test_symmetry_orbit_metric;
        ] );
    ]
