(* Conformance battery for transport backends: every registered
   Bus.BACKEND must deliver the same contract — deterministic TT
   delays, ET delays monotone in contention, loss accounting that
   balances to the attempt counts, and Invalid_argument on malformed
   submissions.  The flexray adapter is additionally pinned against the
   raw simulator and against the seed's cosim replay numbers. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let raises f =
  try
    ignore (f ());
    false
  with Invalid_argument _ -> true

(* the case study's sampling period; both default configurations divide
   it (flexray 2 ms, ttw 2.5 ms), which the TT determinism fact needs *)
let h_us = 20_000

let each f = List.iter (fun backend -> f (Bus.default backend)) Backends.all

(* destroyed transmissions must balance against the attempt counts:
   a delivery with a attempts burned a-1, an undelivered job burned all
   of its tries *)
let loss_invariant name (o : Bus.outcome) =
  let burned_delivered =
    List.fold_left
      (fun acc (d : Bus.delivery) -> acc + d.Bus.attempts - 1)
      0 o.Bus.deliveries
  in
  let burned_undelivered =
    List.fold_left (fun acc (_, tries) -> acc + tries) 0 o.Bus.undelivered
  in
  check_int (name ^ ": loss accounting") o.Bus.lost_tx
    (burned_delivered + burned_undelivered)

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_registry () =
  Alcotest.(check (list string)) "names" [ "flexray"; "ttw" ] (Backends.names ());
  check_bool "find ttw" true (Option.is_some (Backends.find "ttw"));
  check_bool "unknown is None" true (Option.is_none (Backends.find "canbus"));
  check_bool "get unknown raises" true (raises (fun () -> Backends.get "canbus"));
  each (fun bus ->
      let name = Bus.configured_name bus in
      check_bool (name ^ ": cycle divides h") true (h_us mod Bus.cycle_us bus = 0);
      check_bool (name ^ ": has TT channels") true (Bus.tt_channels bus > 0);
      check_bool (name ^ ": control frame fits") true
        (Bus.control_frame_size bus <= Bus.et_capacity bus))

(* ------------------------------------------------------------------ *)
(* TT determinism: reserved channels deliver with one fixed latency *)

let test_tt_determinism () =
  each (fun bus ->
      let name = Bus.configured_name bus in
      let msgs =
        List.init 10 (fun k -> Bus.tt ~channel:0 ~release_us:(k * h_us))
      in
      let o = Bus.simulate bus ~until_us:(12 * h_us) msgs in
      check_int (name ^ ": all delivered") 10 (List.length o.Bus.deliveries);
      check_int (name ^ ": nothing destroyed") 0 o.Bus.lost_tx;
      match o.Bus.deliveries with
      | [] -> Alcotest.fail "no deliveries"
      | d0 :: rest ->
        let delay = Bus.delay_us d0 in
        check_bool (name ^ ": positive delay") true (delay > 0);
        List.iter
          (fun d -> check_int (name ^ ": same TT delay") delay (Bus.delay_us d))
          rest)

(* ------------------------------------------------------------------ *)
(* ET contention: the worst delay never improves when a flow is added *)

let test_et_monotone_contention () =
  each (fun bus ->
      let name = Bus.configured_name bus in
      let size = Bus.control_frame_size bus in
      let worst m =
        let msgs =
          List.init m (fun i -> Bus.et ~size ~flow:(i + 1) ~release_us:0 ())
        in
        let o = Bus.simulate bus ~until_us:(4 * h_us) msgs in
        check_int
          (Printf.sprintf "%s: %d contenders all delivered" name m)
          m
          (List.length o.Bus.deliveries);
        List.fold_left
          (fun acc d -> Int.max acc (Bus.delay_us d))
          0 o.Bus.deliveries
      in
      let prev = ref 0 in
      for m = 1 to 6 do
        let d = worst m in
        check_bool
          (Printf.sprintf "%s: worst delay monotone at %d" name m)
          true (d >= !prev);
        prev := d
      done)

(* ------------------------------------------------------------------ *)
(* Loss driven by a fault plan: sample-indexed, first attempt only,
   TT traffic untouched *)

let test_loss_of_plan () =
  each (fun bus ->
      let name = Bus.configured_name bus in
      let plan = Faults.Plan.none ~n:1 ~horizon:10 in
      plan.Faults.Plan.et_loss.(0).(2) <- true;
      let loss = Bus.loss_of_plan ~h_us plan in
      let size = Bus.control_frame_size bus in
      let msgs =
        List.concat
          (List.init 10 (fun k ->
               [
                 Bus.tt ~channel:0 ~release_us:(k * h_us);
                 Bus.et ~size ~flow:1 ~release_us:(k * h_us) ();
               ]))
      in
      let o = Bus.simulate bus ~loss ~until_us:(12 * h_us) msgs in
      check_int (name ^ ": one transmission destroyed") 1 o.Bus.lost_tx;
      check_int (name ^ ": everything recovered") 20
        (List.length o.Bus.deliveries);
      loss_invariant name o;
      List.iter
        (fun (d : Bus.delivery) ->
          match d.Bus.message.Bus.cls with
          | Bus.Tt _ -> check_int (name ^ ": TT untouched") 1 d.Bus.attempts
          | Bus.Et _ ->
            check_int
              (name ^ ": attempts at sample "
              ^ string_of_int (d.Bus.message.Bus.release_us / h_us))
              (if d.Bus.message.Bus.release_us = 2 * h_us then 2 else 1)
              d.Bus.attempts)
        o.Bus.deliveries)

(* ------------------------------------------------------------------ *)
(* Seeded Bernoulli loss: pure in (message, attempt), so two runs of
   the same traffic are byte-identical *)

let test_loss_bernoulli_deterministic () =
  each (fun bus ->
      let name = Bus.configured_name bus in
      let loss = Bus.loss_bernoulli ~seed:7L ~p:0.5 in
      let size = Bus.control_frame_size bus in
      let msgs =
        List.init 40 (fun k ->
            Bus.et ~size ~flow:((k mod 4) + 1) ~release_us:(k / 4 * h_us) ())
      in
      let run () = Bus.simulate bus ~loss ~until_us:(14 * h_us) msgs in
      let o1 = run () and o2 = run () in
      check_bool (name ^ ": identical outcome") true (o1 = o2);
      check_bool (name ^ ": losses occurred") true (o1.Bus.lost_tx > 0);
      loss_invariant name o1)

let test_loss_burst () =
  each (fun bus ->
      let name = Bus.configured_name bus in
      (* a fade that always fires destroys exactly the first [len]
         attempts of every message *)
      let loss = Bus.loss_burst ~seed:3L ~p:1.0 ~len:2 in
      let o =
        Bus.simulate bus ~loss ~until_us:(2 * h_us)
          [ Bus.et ~flow:1 ~release_us:0 () ]
      in
      check_int (name ^ ": two burned") 2 o.Bus.lost_tx;
      (match o.Bus.deliveries with
       | [ d ] -> check_int (name ^ ": third attempt lands") 3 d.Bus.attempts
       | ds -> Alcotest.failf "%s: %d deliveries" name (List.length ds));
      loss_invariant name o)

(* ------------------------------------------------------------------ *)
(* Malformed submissions *)

let test_malformed () =
  each (fun bus ->
      let name = Bus.configured_name bus in
      let sim msgs () = Bus.simulate bus ~until_us:h_us msgs in
      check_bool (name ^ ": negative release") true
        (raises (sim [ { Bus.cls = Bus.Tt { channel = 0 }; release_us = -1 } ]));
      check_bool (name ^ ": channel out of range") true
        (raises
           (sim
              [
                {
                  Bus.cls = Bus.Tt { channel = Bus.tt_channels bus };
                  release_us = 0;
                };
              ]));
      check_bool (name ^ ": oversized ET frame") true
        (raises
           (sim
              [
                {
                  Bus.cls = Bus.Et { flow = 1; size = Bus.et_capacity bus + 1 };
                  release_us = 0;
                };
              ]));
      check_bool (name ^ ": ET flow ids are 1-based") true
        (raises (sim [ { Bus.cls = Bus.Et { flow = 0; size = 1 }; release_us = 0 } ])));
  check_bool "constructor: negative channel" true
    (raises (fun () -> Bus.tt ~channel:(-1) ~release_us:0));
  check_bool "constructor: empty frame" true
    (raises (fun () -> Bus.et ~size:0 ~flow:1 ~release_us:0 ()))

(* ------------------------------------------------------------------ *)
(* The flexray adapter against the raw simulator: the mapping is a
   bijection, so deliveries must agree field for field *)

let test_flexray_adapter_differential () =
  let cfg =
    Flexray.Config.make ~static_slot_count:4 ~static_slot_us:50
      ~minislot_count:40 ~minislot_us:2
  in
  let bus = Backends.Flexray_backend.configured cfg in
  let generic =
    [
      Bus.tt ~channel:1 ~release_us:0;
      Bus.tt ~channel:1 ~release_us:700;
      Bus.et ~size:6 ~flow:1 ~release_us:0 ();
      Bus.et ~size:9 ~flow:2 ~release_us:10 ();
      Bus.et ~size:6 ~flow:1 ~release_us:500 ();
    ]
  in
  let direct =
    List.map
      (fun (m : Bus.message) ->
        {
          Flexray.Bus.frame =
            (match m.Bus.cls with
             | Bus.Tt { channel } -> Flexray.Frame.static ~slot:channel
             | Bus.Et { flow; size } ->
               Flexray.Frame.dynamic ~frame_id:flow ~length_minislots:size);
          release_us = m.Bus.release_us;
        })
      generic
  in
  let o = Bus.simulate bus ~until_us:3000 generic in
  let d = Flexray.Bus.simulate_outcome cfg ~until_us:3000 direct in
  check_int "same delivery count"
    (List.length d.Flexray.Bus.deliveries)
    (List.length o.Bus.deliveries);
  check_int "same losses" d.Flexray.Bus.lost_tx o.Bus.lost_tx;
  List.iter2
    (fun (g : Bus.delivery) (f : Flexray.Bus.delivery) ->
      check_int "delivered_us" f.Flexray.Bus.delivered_us g.Bus.delivered_us;
      check_int "attempts" f.Flexray.Bus.attempts g.Bus.attempts;
      check_int "release_us" f.Flexray.Bus.message.Flexray.Bus.release_us
        g.Bus.message.Bus.release_us)
    o.Bus.deliveries d.Flexray.Bus.deliveries

(* ------------------------------------------------------------------ *)
(* Pin: the nominal case-study replay on flexray is byte-identical to
   the pre-seam bus check (same messages, same delays, same facts) *)

let test_cosim_flexray_pin () =
  let apps =
    List.map
      (fun (a : Casestudy.app) ->
        Core.App.make ~name:a.Casestudy.name ~plant:a.Casestudy.plant
          ~gains:a.Casestudy.gains ~r:a.Casestudy.r ~j_star:a.Casestudy.j_star
          ())
      Casestudy.all
  in
  let mapping = Core.Mapping.first_fit apps in
  let report =
    Cosim.System.of_mapping mapping
      ~disturbances:[ (0, "C1"); (0, "C6"); (40, "C2") ]
      ~horizon:120
  in
  let r =
    Cosim.System.bus_validate ~bus:Backends.Flexray_backend.default report
  in
  Alcotest.(check string) "backend" "flexray" r.Cosim.Bus_check.backend;
  check_int "messages" 720 r.Cosim.Bus_check.messages;
  check_int "delivered" 720 r.Cosim.Bus_check.delivered;
  check_int "tt" 26 r.Cosim.Bus_check.tt_count;
  check_int "et" 694 r.Cosim.Bus_check.et_count;
  check_int "tt min delay" 100 (fst r.Cosim.Bus_check.tt_delay_us);
  check_int "tt max delay" 200 (snd r.Cosim.Bus_check.tt_delay_us);
  check_int "et min delay" 1032 (fst r.Cosim.Bus_check.et_delay_us);
  check_int "et max delay" 1192 (snd r.Cosim.Bus_check.et_delay_us);
  check_int "h" 20_000 r.Cosim.Bus_check.h_us;
  check_bool "TT deterministic" true r.Cosim.Bus_check.tt_deterministic;
  check_bool "one-sample" true r.Cosim.Bus_check.one_sample_ok;
  check_bool "all delivered" true r.Cosim.Bus_check.all_delivered;
  check_int "no losses" 0 r.Cosim.Bus_check.lost_tx;
  check_int "no overruns" 0 r.Cosim.Bus_check.et_overruns;
  check_bool "facts hold" true (Cosim.Bus_check.facts_hold r);
  (* and the same traffic on TTW holds the same facts *)
  let t = Cosim.System.bus_validate ~bus:Ttw.Backend.default report in
  check_bool "ttw facts hold" true (Cosim.Bus_check.facts_hold t);
  check_int "ttw same message count" 720 t.Cosim.Bus_check.messages;
  check_int "ttw all delivered" 720 t.Cosim.Bus_check.delivered

(* ------------------------------------------------------------------ *)
(* The link:burst clause end-to-end: a campaign on the lossy wireless
   backend stays a pure function of (spec, seed), a p=0 fade is
   invisible next to plain zero link loss, and a certain fade shows up
   in the bus accounting *)

let campaign_apps =
  lazy
    (let plant =
       Control.Plant.make
         ~phi:(Linalg.Mat.of_rows [ [ 0.95; 0.08 ]; [ 0.; 0.9 ] ])
         ~gamma:[| 0.004; 0.08 |] ~c:[| 1.; 0. |] ~h:0.02
     in
     let gains =
       let kt = Control.Pole_place.place_tt plant [ (0.25, 0.); (0.3, 0.) ] in
       let ke =
         Control.Pole_place.place_et plant
           [ (0.82, 0.); (0.85, 0.); (0.3, 0.) ]
       in
       Control.Switched.make_gains plant ~kt ~ke
     in
     [
       [
         Core.App.make ~name:"A" ~plant ~gains ~r:120 ~j_star:25 ();
         Core.App.make ~name:"B" ~plant ~gains ~r:130 ~j_star:25 ();
       ];
     ])

let burst_campaign spec_str =
  let spec =
    match Faults.Spec.parse spec_str with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  match
    Cosim.Campaign.run ~spec ~seed:42L ~runs:3 ~horizon:120
      ~bus:Ttw.Backend.default (Lazy.force campaign_apps)
  with
  | Ok s -> s
  | Error e -> Alcotest.fail e

(* the spec is part of the summary, so comparisons across different
   spec strings must mask it out *)
let despecced s = { s with Cosim.Campaign.spec = [] }

let test_burst_campaign_deterministic () =
  let a = burst_campaign "link:burst=0.4,len=2" in
  let b = burst_campaign "link:burst=0.4,len=2" in
  check_bool "same (spec, seed): byte-identical summary" true (a = b);
  let silent = burst_campaign "link:burst=0,len=2" in
  let baseline = burst_campaign "link:p=0" in
  check_bool "p=0 fade invisible next to zero link loss" true
    (despecced silent = despecced baseline);
  let certain = burst_campaign "link:burst=1,len=2" in
  check_bool "certain fade reaches the bus accounting" true
    (List.exists
       (fun (s : Cosim.Campaign.slot_summary) -> s.Cosim.Campaign.bus_lost_tx > 0)
       certain.Cosim.Campaign.slots);
  check_bool "fades stay medium-level: control layer untouched" true
    (List.for_all2
       (fun (c : Cosim.Campaign.slot_summary)
            (b : Cosim.Campaign.slot_summary) ->
         c.Cosim.Campaign.et_losses = b.Cosim.Campaign.et_losses
         && c.Cosim.Campaign.injected = b.Cosim.Campaign.injected)
       certain.Cosim.Campaign.slots baseline.Cosim.Campaign.slots)

(* ------------------------------------------------------------------ *)
(* TTW specifics: retransmission across rounds, flow dimensioning *)

let test_ttw_retransmission () =
  let bus = Ttw.Backend.default in
  let loss (m : Bus.message) ~attempt =
    (match m.Bus.cls with Bus.Et _ -> true | Bus.Tt _ -> false) && attempt <= 2
  in
  let o = Bus.simulate bus ~loss ~until_us:h_us [ Bus.et ~flow:1 ~release_us:0 () ] in
  check_int "two fades" 2 o.Bus.lost_tx;
  match o.Bus.deliveries with
  | [ d ] ->
    check_int "third round lands" 3 d.Bus.attempts;
    check_bool "at least two rounds late" true
      (Bus.delay_us d >= 2 * Bus.cycle_us bus)
  | ds -> Alcotest.failf "expected one delivery, got %d" (List.length ds)

let test_ttw_flow_check () =
  let cfg = Ttw.Config.default in
  let flows =
    List.init 4 (fun i ->
        Ttw.Flow.make ~flow:(i + 1) ~size:2 ~period_us:20_000
          ~deadline_us:20_000)
  in
  check_bool "all meet" true (Ttw.Flow.all_meet cfg flows);
  check_bool "duplicate ids rejected" true
    (raises (fun () -> Ttw.Flow.check cfg (flows @ flows)))

let () =
  Alcotest.run "bus"
    [
      ( "registry",
        [
          Alcotest.test_case "names and lookups" `Quick test_registry;
        ] );
      ( "conformance",
        [
          Alcotest.test_case "TT delay determinism" `Quick test_tt_determinism;
          Alcotest.test_case "ET delay monotone in contention" `Quick
            test_et_monotone_contention;
          Alcotest.test_case "loss follows the fault plan" `Quick
            test_loss_of_plan;
          Alcotest.test_case "bernoulli loss is deterministic" `Quick
            test_loss_bernoulli_deterministic;
          Alcotest.test_case "burst loss burns early attempts" `Quick
            test_loss_burst;
          Alcotest.test_case "malformed submissions" `Quick test_malformed;
        ] );
      ( "flexray",
        [
          Alcotest.test_case "adapter = raw simulator" `Quick
            test_flexray_adapter_differential;
          Alcotest.test_case "case-study replay pinned to seed" `Slow
            test_cosim_flexray_pin;
        ] );
      ( "ttw",
        [
          Alcotest.test_case "retransmission across rounds" `Quick
            test_ttw_retransmission;
          Alcotest.test_case "burst campaign deterministic" `Quick
            test_burst_campaign_deterministic;
          Alcotest.test_case "flow dimensioning" `Quick test_ttw_flow_check;
        ] );
    ]
