(* Differential property tests for the timed-automata layer.

   Two independent semantics are pitted against each other:

   - random DBM operation sequences are mirrored on an explicit set of
     integer clock valuations, and membership must agree point for
     point;
   - zone-graph reachability ({!Ta.Reach}) is compared against an
     exhaustive concrete-state enumeration built on {!Ta.Concrete} for
     random small closed-guard automata.

   Soundness of the integer-point mirror: all generated operations use
   weak (<=) bounds and integer constants, so every zone is an integral
   polyhedron and integer witnesses suffice for [up] (the witness lies
   on the downward diagonal of the queried point) and [reset] (the
   feasible interval of the freed clock has an integer endpoint).  The
   mirror stores points in a finite box, so witnesses must stay inside
   it: each derived DBM entry is bounded by the total magnitude of the
   generated constants (OPS * CONST <= 8), hence a reset needs a
   witness at most that far above an already-correct point.  Membership
   is therefore only asserted on points up to [b_check], with the model
   box [b_model] leaving OPS * (OPS * CONST) headroom for the chain of
   reset witnesses. *)

let ops_max = 4 (* operations per sequence *)
let const_max = 2 (* largest constant in resets and constraints *)
let b_check = 16 (* membership compared on [0..b_check]^2 *)
let b_model = 48 (* >= b_check + ops_max * (ops_max * const_max) *)
let n_clocks = 2

(* ------------------------------------------------------------------ *)
(* The mirror: a zone as the boolean grid of its integer points *)

type model = bool array array (* m.(x).(y) over [0..b_model]^2 *)

let model_zero () =
  let m = Array.make_matrix (b_model + 1) (b_model + 1) false in
  m.(0).(0) <- true;
  m

(* delay closure: a point is reachable if some point on its downward
   diagonal was; row-major order makes this a linear-time recurrence *)
let model_up (m : model) : model =
  let out = Array.make_matrix (b_model + 1) (b_model + 1) false in
  for x = 0 to b_model do
    for y = 0 to b_model do
      out.(x).(y) <-
        m.(x).(y) || (x > 0 && y > 0 && out.(x - 1).(y - 1))
    done
  done;
  out

let model_reset (m : model) c v : model =
  let out = Array.make_matrix (b_model + 1) (b_model + 1) false in
  (match c with
  | 1 ->
    for y = 0 to b_model do
      let feasible = ref false in
      for w = 0 to b_model do
        if m.(w).(y) then feasible := true
      done;
      if !feasible then out.(v).(y) <- true
    done
  | 2 ->
    for x = 0 to b_model do
      let feasible = ref false in
      for w = 0 to b_model do
        if m.(x).(w) then feasible := true
      done;
      if !feasible then out.(x).(v) <- true
    done
  | _ -> invalid_arg "model_reset");
  out

(* x_i - x_j <= k with x_0 = 0 *)
let model_constrain (m : model) i j k : model =
  Array.mapi
    (fun x row ->
      Array.mapi
        (fun y v ->
          let value = function 0 -> 0 | 1 -> x | _ -> y in
          v && value i - value j <= k)
        row)
    m

let model_is_empty (m : model) =
  not (Array.exists (Array.exists Fun.id) m)

(* ------------------------------------------------------------------ *)
(* Random operation sequences, applied to both representations *)

type op = Up | Reset of int * int | Constrain of int * int * int

let apply_dbm z = function
  | Up -> Ta.Dbm.up z
  | Reset (c, v) -> Ta.Dbm.reset z c v
  | Constrain (i, j, k) -> Ta.Dbm.constrain z i j (Ta.Dbm.le k)

let apply_model m = function
  | Up -> model_up m
  | Reset (c, v) -> model_reset m c v
  | Constrain (i, j, k) -> model_constrain m i j k

let gen_op =
  QCheck2.Gen.(
    oneof
      [
        return Up;
        (let* c = int_range 1 n_clocks in
         let* v = int_range 0 const_max in
         return (Reset (c, v)));
        (let* i = int_range 0 n_clocks in
         let* dj = int_range 1 n_clocks in
         let* k = int_range (-const_max) const_max in
         return (Constrain (i, (i + dj) mod (n_clocks + 1), k)));
      ])

let gen_ops = QCheck2.Gen.(list_size (int_range 0 ops_max) gen_op)

let build ops =
  List.fold_left
    (fun (z, m) op -> (apply_dbm z op, apply_model m op))
    (Ta.Dbm.zero n_clocks, model_zero ())
    ops

let pp_ops ops =
  String.concat ";"
    (List.map
       (function
         | Up -> "up"
         | Reset (c, v) -> Printf.sprintf "r%d:=%d" c v
         | Constrain (i, j, k) -> Printf.sprintf "x%d-x%d<=%d" i j k)
       ops)

let prop_dbm_matches_points =
  QCheck2.Test.make ~name:"DBM ops = integer point set" ~count:300
    ~print:pp_ops gen_ops (fun ops ->
      let z, m = build ops in
      let ok = ref (Ta.Dbm.is_empty z = model_is_empty m) in
      for x = 0 to b_check do
        for y = 0 to b_check do
          if Ta.Dbm.contains_point z [| 0; x; y |] <> m.(x).(y) then
            ok := false
        done
      done;
      !ok)

let prop_includes_implies_subset =
  QCheck2.Test.make ~name:"includes implies point subset" ~count:300
    ~print:(fun (a, b) -> pp_ops a ^ " | " ^ pp_ops b)
    QCheck2.Gen.(pair gen_ops gen_ops)
    (fun (ops1, ops2) ->
      let z1, m1 = build ops1 and z2, m2 = build ops2 in
      (not (Ta.Dbm.includes z1 z2))
      ||
      let ok = ref true in
      for x = 0 to b_check do
        for y = 0 to b_check do
          if m2.(x).(y) && not (m1.(x).(y)) then ok := false
        done
      done;
      !ok)

let prop_up_and_extrapolate_widen =
  QCheck2.Test.make ~name:"up and extrapolation only widen" ~count:300
    ~print:pp_ops gen_ops (fun ops ->
      let z, _ = build ops in
      Ta.Dbm.includes z z
      && Ta.Dbm.includes (Ta.Dbm.up z) z
      && Ta.Dbm.includes
           (Ta.Dbm.extrapolate z [| 0; const_max; const_max |])
           z)

(* ------------------------------------------------------------------ *)
(* Zone reachability vs concrete enumeration *)

(* Random networks of 1-2 automata over 2 shared clocks, closed guards
   (Le/Ge/Eq) against constants <= guard_max, resets to zero, Normal
   locations, no invariants, no synchronisation.  For this fragment
   integer-time execution is exact, and per-clock saturating counters
   capped just above the largest constant are a finite exact
   abstraction (guards never compare clocks to each other). *)

let guard_max = 3
let clock_cap = guard_max + 1

let gen_automaton name =
  QCheck2.Gen.(
    let* n_locs = int_range 2 3 in
    let gen_guard =
      let* clock = int_range 1 n_clocks in
      let* cmp = oneofl [ Ta.Automaton.Le; Ta.Automaton.Ge; Ta.Automaton.Eq ] in
      let* c = int_range 0 guard_max in
      return (Ta.Automaton.guard_const clock cmp c)
    in
    let gen_edge =
      let* src = int_range 0 (n_locs - 1) in
      let* dst = int_range 0 (n_locs - 1) in
      let* guards = list_size (int_range 0 2) gen_guard in
      let* reset_x = bool in
      let* reset_y = bool in
      let resets =
        (if reset_x then [ (1, 0) ] else [])
        @ if reset_y then [ (2, 0) ] else []
      in
      return (Ta.Automaton.edge ~guards ~resets ~src ~dst ())
    in
    let* n_edges = int_range 1 4 in
    let* edges = list_repeat n_edges gen_edge in
    return
      (Ta.Automaton.make ~name
         ~locations:
           (Array.init n_locs (fun i ->
                Ta.Automaton.location (Printf.sprintf "%s%d" name i)))
         ~initial:0 ~edges))

let net_of automata =
  Ta.Network.make
    ~automata:(Array.of_list automata)
    ~clock_names:[| "x"; "y" |] ~channel_names:[||] ~initial_store:[||]
    ~clock_maxima:[| guard_max; guard_max |]

let gen_net =
  QCheck2.Gen.(
    let* n_auto = int_range 1 2 in
    let* automata =
      flatten_l
        (List.init n_auto (fun i ->
             gen_automaton (String.make 1 (Char.chr (Char.code 'A' + i)))))
    in
    return (net_of automata))

(* identical-app bias: one random structure stamped out 2–3 times under
   different names.  The product of interchangeable components is
   exactly the shape the discrete engine's symmetry quotient collapses,
   and the heterogeneous draws of [gen_net] almost never produce it —
   so the concrete-enumeration oracle would otherwise leave the
   symmetric region of the space untested. *)
let gen_symmetric_net =
  QCheck2.Gen.(
    let* n_locs = int_range 2 3 in
    let gen_guard =
      let* clock = int_range 1 n_clocks in
      let* cmp = oneofl [ Ta.Automaton.Le; Ta.Automaton.Ge; Ta.Automaton.Eq ] in
      let* c = int_range 0 guard_max in
      return (Ta.Automaton.guard_const clock cmp c)
    in
    let gen_edge =
      let* src = int_range 0 (n_locs - 1) in
      let* dst = int_range 0 (n_locs - 1) in
      let* guards = list_size (int_range 0 2) gen_guard in
      let* reset_x = bool in
      let* reset_y = bool in
      let resets =
        (if reset_x then [ (1, 0) ] else [])
        @ if reset_y then [ (2, 0) ] else []
      in
      return (Ta.Automaton.edge ~guards ~resets ~src ~dst ())
    in
    let* n_edges = int_range 1 3 in
    let* edges = list_repeat n_edges gen_edge in
    let* n_copies = int_range 2 3 in
    let clone name =
      Ta.Automaton.make ~name
        ~locations:
          (Array.init n_locs (fun i ->
               Ta.Automaton.location (Printf.sprintf "%s%d" name i)))
        ~initial:0 ~edges
    in
    return
      (net_of
         (List.init n_copies (fun i ->
              clone (String.make 1 (Char.chr (Char.code 'A' + i)))))))

(* all reachable location vectors by exhaustive concrete execution —
   the enumeration itself is {!Ta.Concrete.enumerate}, i.e. a third
   instantiation of the same unified search engine the zone explorer
   runs on, so this test also exercises the engine's exact-dedup path
   on a structurally-keyed state type *)
let oracle_reachable net =
  let norm (s : Ta.Concrete.state) =
    let clocks =
      Array.mapi
        (fun i v -> if i = 0 then 0 else Int.min v clock_cap)
        s.Ta.Concrete.clocks
    in
    { s with Ta.Concrete.clocks; time = 0 }
  in
  let locsets = Hashtbl.create 16 in
  List.iter
    (fun (s : Ta.Concrete.state) ->
      Hashtbl.replace locsets (Array.to_list s.Ta.Concrete.locs) ())
    (Ta.Concrete.enumerate ~max_states:100_000 ~norm net);
  locsets

(* every location vector of the product *)
let all_combos (net : Ta.Network.t) =
  Array.fold_right
    (fun (a : Ta.Automaton.t) acc ->
      List.concat_map
        (fun rest ->
          List.init (Array.length a.Ta.Automaton.locations) (fun l ->
              l :: rest))
        acc)
    net.Ta.Network.automata [ [] ]

let reach_matches_concrete net =
  let oracle = oracle_reachable net in
  List.for_all
    (fun combo ->
      let target = Array.of_list combo in
      let zone =
        match
          (Ta.Reach.run ~max_states:50_000 net
             (fun ~locs ~store:_ -> locs = target))
            .Ta.Reach.outcome
        with
        | Ta.Reach.Hit _ -> true
        | Ta.Reach.Unreachable -> false
        | Ta.Reach.Exhausted _ ->
          QCheck2.Test.fail_report "budget exhausted on a tiny net"
      in
      zone = Hashtbl.mem oracle combo)
    (all_combos net)

let prop_reach_matches_concrete =
  QCheck2.Test.make ~name:"zone reachability = concrete enumeration"
    ~count:200 gen_net reach_matches_concrete

let prop_reach_matches_concrete_symmetric =
  QCheck2.Test.make
    ~name:"zone reachability = concrete enumeration (identical components)"
    ~count:100 gen_symmetric_net reach_matches_concrete

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "prop_ta"
    [
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_dbm_matches_points;
            prop_includes_implies_subset;
            prop_up_and_extrapolate_widen;
            prop_reach_matches_concrete;
            prop_reach_matches_concrete_symmetric;
          ] );
    ]
