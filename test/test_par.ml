(* Tests for the domain pool (lib/par) and for the determinism
   guarantee of every parallel entry point: mapping packings, campaign
   summaries, dwell tables and verification results must be
   byte-identical at --jobs 1, 2 and 4 — including under fault plans
   and budget (Undetermined) outcomes.  Also the regression test for
   the Ta.Reach stats counters, which used to live in process-global
   mutable state. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* run [f] once per pool size, shutting the pools down afterwards, and
   return the results in jobs order *)
let at_pool_sizes sizes f =
  List.map
    (fun jobs ->
      let pool = Par.Pool.create ~jobs in
      Fun.protect ~finally:(fun () -> Par.Pool.shutdown pool) (fun () -> f pool))
    sizes

let all_equal = function
  | [] | [ _ ] -> true
  | x :: rest -> List.for_all (( = ) x) rest

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_map_order () =
  List.iter
    (fun jobs ->
      let pool = Par.Pool.create ~jobs in
      let input = Array.init 97 Fun.id in
      let out = Par.Pool.map_array pool (fun x -> (x * x) + 1) input in
      Par.Pool.shutdown pool;
      check_bool
        (Printf.sprintf "map_array = Array.map at jobs=%d" jobs)
        true
        (out = Array.map (fun x -> (x * x) + 1) input))
    [ 1; 2; 4 ]

let test_pool_map_list_order () =
  let pool = Par.Pool.create ~jobs:3 in
  let out = Par.Pool.map_list pool string_of_int (List.init 41 Fun.id) in
  Par.Pool.shutdown pool;
  check_bool "map_list preserves order" true
    (out = List.init 41 string_of_int)

let test_pool_empty_and_singleton () =
  let pool = Par.Pool.create ~jobs:4 in
  check_bool "empty array" true (Par.Pool.map_array pool Fun.id [||] = [||]);
  check_bool "singleton" true (Par.Pool.map_array pool succ [| 7 |] = [| 8 |]);
  Par.Pool.shutdown pool

let test_pool_exception_smallest_index () =
  List.iter
    (fun jobs ->
      let pool = Par.Pool.create ~jobs in
      let raised =
        try
          ignore
            (Par.Pool.map_array pool
               (fun i -> if i >= 53 then failwith (string_of_int i) else i)
               (Array.init 100 Fun.id));
          "no exception"
        with Failure m -> m
      in
      Par.Pool.shutdown pool;
      check_string
        (Printf.sprintf "smallest failing index at jobs=%d" jobs)
        "53" raised)
    [ 1; 2; 4 ]

let test_pool_nested_map () =
  (* a task running on the pool may map on the same pool: helping makes
     this deadlock-free *)
  let pool = Par.Pool.create ~jobs:2 in
  let out =
    Par.Pool.map_list pool
      (fun row ->
        Par.Pool.map_list pool (fun col -> (row * 10) + col) [ 0; 1; 2 ])
      [ 0; 1; 2; 3 ]
  in
  Par.Pool.shutdown pool;
  check_bool "nested map on the same pool" true
    (out
    = List.init 4 (fun row -> List.init 3 (fun col -> (row * 10) + col)))

let test_pool_submit_await () =
  let pool = Par.Pool.create ~jobs:2 in
  let fut = Par.Pool.submit pool (fun () -> 6 * 7) in
  check_int "submit/await" 42 (Par.Pool.await pool fut);
  Par.Pool.shutdown pool

let test_pool_jobs_one_is_caller_only () =
  let pool = Par.Pool.create ~jobs:1 in
  let here = Domain.self () in
  let domains =
    Par.Pool.map_list pool (fun _ -> Domain.self ()) [ 0; 1; 2; 3 ]
  in
  Par.Pool.shutdown pool;
  check_bool "jobs=1 runs everything on the caller" true
    (List.for_all (( = ) here) domains)

let test_pool_rejects_bad_jobs () =
  check_bool "jobs=0 rejected" true
    (try
       ignore (Par.Pool.create ~jobs:0);
       false
     with Invalid_argument _ -> true)

let test_pool_shutdown_idempotent () =
  let pool = Par.Pool.create ~jobs:3 in
  ignore (Par.Pool.map_list pool succ [ 1; 2; 3 ]);
  Par.Pool.shutdown pool;
  Par.Pool.shutdown pool

let test_pool_submit_list () =
  List.iter
    (fun jobs ->
      let pool = Par.Pool.create ~jobs in
      let futs =
        Par.Pool.submit_list pool (List.init 9 (fun i () -> i * i))
      in
      check_bool
        (Printf.sprintf "submit_list/await_list order at jobs=%d" jobs)
        true
        (Par.Pool.await_list pool futs = List.init 9 (fun i -> i * i));
      (* a sharded thunk may itself fan out on the same pool (the serve
         layer's shape: across groups outside, within a group inside) *)
      let nested =
        Par.Pool.submit_list pool
          (List.init 4 (fun row () ->
               Par.Pool.map_list pool (fun col -> (row * 10) + col) [ 0; 1; 2 ]))
      in
      check_bool
        (Printf.sprintf "nested map inside submit_list at jobs=%d" jobs)
        true
        (Par.Pool.await_list pool nested
        = List.init 4 (fun row -> List.init 3 (fun col -> (row * 10) + col)));
      Par.Pool.shutdown pool)
    [ 1; 2; 4 ]

(* run [f] with fd 2 teed into a temp file, returning (result, stderr) *)
let capture_stderr f =
  let file = Filename.temp_file "cpsdim-test" ".stderr" in
  flush stderr;
  let saved = Unix.dup Unix.stderr in
  let fd = Unix.openfile file [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  Unix.dup2 fd Unix.stderr;
  Unix.close fd;
  let r =
    Fun.protect
      ~finally:(fun () ->
        flush stderr;
        Unix.dup2 saved Unix.stderr;
        Unix.close saved)
      f
  in
  let captured = In_channel.with_open_bin file In_channel.input_all in
  Sys.remove file;
  (r, captured)

let test_env_jobs_warns_once () =
  (* the regression: "four" or "0" silently coerced to 1, so a
     misconfigured fleet quietly ran sequential — now the coercion
     stands but announces itself once, naming the rejected value *)
  let saved = Sys.getenv_opt "CPSDIM_JOBS" in
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "CPSDIM_JOBS" (Option.value saved ~default:"1"))
    (fun () ->
      Unix.putenv "CPSDIM_JOBS" "6";
      let j, err = capture_stderr Par.Pool.env_jobs in
      check_int "valid value honoured" 6 j;
      check_string "no warning for a valid value" "" err;
      Unix.putenv "CPSDIM_JOBS" "four";
      let j, err = capture_stderr Par.Pool.env_jobs in
      check_int "invalid value coerced to 1" 1 j;
      check_bool "warning names the rejected value" true
        (let sub = "CPSDIM_JOBS=\"four\"" in
         let rec find i =
           i + String.length sub <= String.length err
           && (String.equal (String.sub err i (String.length sub)) sub
              || find (i + 1))
         in
         find 0);
      Unix.putenv "CPSDIM_JOBS" "0";
      let j, err = capture_stderr Par.Pool.env_jobs in
      check_int "zero coerced to 1" 1 j;
      check_string "warning emitted only once per process" "" err)

(* ------------------------------------------------------------------ *)
(* Vcache *)

let test_vcache_memoises () =
  let c = Par.Vcache.create () in
  let computed = ref 0 in
  let get () =
    Par.Vcache.find_or_add c "k"
      (fun () ->
        incr computed;
        !computed)
  in
  check_int "first call computes" 1 (get ());
  check_int "second call is a hit" 1 (get ());
  check_int "compute ran once" 1 !computed;
  check_int "hits" 1 (Par.Vcache.hits c);
  check_int "misses" 1 (Par.Vcache.misses c);
  check_int "length" 1 (Par.Vcache.length c)

let test_vcache_distinct_keys () =
  let c = Par.Vcache.create () in
  List.iter
    (fun k ->
      check_string "value per key" k
        (Par.Vcache.find_or_add c k (fun () -> k)))
    [ "a"; "b"; "c"; "a" ];
  check_int "three distinct keys" 3 (Par.Vcache.length c);
  check_int "one hit (the repeated a)" 1 (Par.Vcache.hits c)

let test_vcache_shared_across_domains () =
  let c = Par.Vcache.create () in
  let pool = Par.Pool.create ~jobs:4 in
  let out =
    Par.Pool.map_list pool
      (fun i ->
        Par.Vcache.find_or_add c
          (string_of_int (i mod 3))
          (fun () -> i mod 3))
      (List.init 60 Fun.id)
  in
  Par.Pool.shutdown pool;
  check_bool "every lookup consistent" true
    (List.mapi (fun i v -> v = i mod 3) out |> List.for_all Fun.id);
  check_int "exactly three keys despite races" 3 (Par.Vcache.length c)

(* ------------------------------------------------------------------ *)
(* Shared fixtures for the determinism tests *)

let plant =
  Control.Plant.make
    ~phi:(Linalg.Mat.of_rows [ [ 0.95; 0.08 ]; [ 0.; 0.9 ] ])
    ~gamma:[| 0.004; 0.08 |] ~c:[| 1.; 0. |] ~h:0.02

let gains =
  let kt = Control.Pole_place.place_tt plant [ (0.25, 0.); (0.3, 0.) ] in
  let ke =
    Control.Pole_place.place_et plant [ (0.82, 0.); (0.85, 0.); (0.3, 0.) ]
  in
  Control.Switched.make_gains plant ~kt ~ke

let app ?(r = 120) name = Core.App.make ~name ~plant ~gains ~r ~j_star:25 ()

let apps = lazy [ app "A"; app ~r:130 "B"; app ~r:140 "C" ]

let spec ?(name = "S") ?(id = 0) ~t_w_max ~dmin ~dmax ~r () =
  Sched.Appspec.make ~id ~name ~t_w_max
    ~t_dw_min:(Array.make (t_w_max + 1) dmin)
    ~t_dw_max:(Array.make (t_w_max + 1) dmax)
    ~r

let pair ~r =
  [|
    spec ~name:"A" ~id:0 ~t_w_max:1 ~dmin:3 ~dmax:4 ~r ();
    spec ~name:"B" ~id:1 ~t_w_max:2 ~dmin:2 ~dmax:5 ~r ();
  |]

(* everything in a Dverify result except wall-clock time *)
let dv_key (r : Core.Dverify.result) =
  ( r.verdict,
    r.stats.Core.Dverify.states,
    r.stats.Core.Dverify.transitions,
    r.stats.Core.Dverify.max_wait )

(* ------------------------------------------------------------------ *)
(* Dverify determinism *)

let test_dverify_deterministic_safe () =
  let g = pair ~r:30 in
  let results =
    at_pool_sizes [ 1; 2; 4 ] (fun pool ->
        dv_key (Core.Dverify.verify ~pool ~mode:`Bfs g))
  in
  check_bool "safe group: identical verdict and stats" true
    (all_equal results)

let test_dverify_deterministic_unsafe () =
  (* tight r makes the pair unsafe; counterexamples must coincide *)
  let g = pair ~r:9 in
  let results =
    at_pool_sizes [ 1; 2; 4 ] (fun pool ->
        dv_key (Core.Dverify.verify ~pool ~mode:`Bfs g))
  in
  check_bool "unsafe group: identical counterexample and stats" true
    (all_equal results);
  match results with
  | (Core.Dverify.Unsafe _, _, _, _) :: _ -> ()
  | _ -> Alcotest.fail "expected an unsafe verdict"

let test_dverify_deterministic_budget () =
  (* a state budget (never a wall-clock deadline: those are inherently
     timing-dependent) must cut off at the same state at any jobs *)
  let g = pair ~r:30 in
  let results =
    at_pool_sizes [ 1; 2; 4 ] (fun pool ->
        dv_key (Core.Dverify.verify ~pool ~mode:`Bfs ~max_states:20 g))
  in
  check_bool "budget cut-off byte-identical" true (all_equal results);
  match results with
  | (Core.Dverify.Undetermined (Core.Dverify.State_budget 20), _, _, _) :: _
    -> ()
  | _ -> Alcotest.fail "expected Undetermined (State_budget 20)"

let test_dverify_bounded_deterministic () =
  let g = pair ~r:30 in
  let results =
    at_pool_sizes [ 1; 2; 4 ] (fun pool ->
        dv_key (Core.Dverify.verify_bounded ~pool ~instances:2 g))
  in
  check_bool "bounded engine deterministic" true (all_equal results)

(* ------------------------------------------------------------------ *)
(* Mapping determinism *)

let outcome_string o = Format.asprintf "%a" Core.Mapping.pp o

let test_mapping_deterministic () =
  let packings =
    at_pool_sizes [ 1; 2; 4 ] (fun pool ->
        let cache = Core.Mapping.create_cache () in
        outcome_string (Core.Mapping.first_fit ~pool ~cache (Lazy.force apps)))
  in
  check_bool "first-fit packing byte-identical at jobs 1/2/4" true
    (all_equal packings)

let test_mapping_deterministic_under_budget () =
  (* an escalating verifier whose stages exhaust their state budgets:
     Undetermined outcomes must still merge deterministically *)
  let verifier = Core.Mapping.escalating ~max_states:40 () in
  let outcomes =
    at_pool_sizes [ 1; 2; 4 ] (fun pool ->
        let o =
          Core.Mapping.first_fit ~pool
            ~cache:(Core.Mapping.create_cache ())
            ~verifier (Lazy.force apps)
        in
        (outcome_string o, o.Core.Mapping.undetermined))
  in
  check_bool "budgeted mapping byte-identical" true (all_equal outcomes);
  match outcomes with
  | (_, undetermined) :: _ ->
    check_bool "budget actually bit" true (undetermined > 0)
  | [] -> assert false

let test_mapping_cache_shared_with_optimal () =
  (* analytic screen off: screened probes are answered ahead of the
     cache, so only unscreened runs make the sharing observable *)
  let cache = Core.Mapping.create_cache () in
  let pool = Par.Pool.create ~jobs:2 in
  let ff =
    Core.Mapping.first_fit ~pool ~cache ~prefilter:false (Lazy.force apps)
  in
  let opt = Core.Mapping.optimal ~cache ~prefilter:false (Lazy.force apps) in
  Par.Pool.shutdown pool;
  let hits, misses = Core.Mapping.cache_stats cache in
  check_bool "optimal reused first-fit verdicts" true (hits > 0);
  check_bool "some probes were fresh" true (misses > 0);
  check_int "same slot count" (List.length ff.Core.Mapping.slots)
    (List.length opt.Core.Mapping.slots)

let test_mapping_cache_does_not_change_counts () =
  (* verifications counts logical questions, so a warm cache must not
     alter the reported outcome *)
  let cache = Core.Mapping.create_cache () in
  let cold = Core.Mapping.first_fit ~cache (Lazy.force apps) in
  let warm = Core.Mapping.first_fit ~cache (Lazy.force apps) in
  check_string "cold = warm outcome" (outcome_string cold)
    (outcome_string warm)

(* ------------------------------------------------------------------ *)
(* Dwell determinism *)

let test_dwell_deterministic () =
  let tables =
    at_pool_sizes [ 1; 2; 4 ] (fun pool ->
        Core.Dwell.compute ~pool plant gains ~j_star:25)
  in
  check_bool "dwell table byte-identical at jobs 1/2/4" true
    (all_equal tables)

(* ------------------------------------------------------------------ *)
(* Campaign determinism *)

let slots = lazy [ [ app "A"; app ~r:130 "B" ]; [ app ~r:140 "C" ] ]

let campaign ?groups ~spec_str pool =
  let spec =
    match Faults.Spec.parse spec_str with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let groups = Option.value groups ~default:(Lazy.force slots) in
  Cosim.Campaign.run ~pool ~spec ~seed:42L ~runs:4 ~horizon:120 groups

let check_campaign_deterministic summaries =
  check_bool "campaign summary byte-identical at jobs 1/2/4" true
    (all_equal summaries);
  match summaries with
  | Ok s :: _ -> check_bool "runs recorded" true (s.Cosim.Campaign.slots <> [])
  | Error e :: _ -> Alcotest.fail e
  | [] -> assert false

let test_campaign_deterministic () =
  (* a spec's app clauses must name apps of every slot group (each slot
     materialises it separately), so the multi-slot case sticks to
     blackouts *)
  check_campaign_deterministic
    (at_pool_sizes [ 1; 2; 4 ] (campaign ~spec_str:"blackout:p=0.05,len=3"))

let test_campaign_deterministic_app_faults () =
  check_campaign_deterministic
    (at_pool_sizes [ 1; 2; 4 ]
       (campaign
          ~groups:[ [ app "A"; app ~r:130 "B" ] ]
          ~spec_str:"loss:A@p=0.1;drop:B@p=0.05;burst:A@7"))

let test_campaign_error_deterministic () =
  (* a spec naming an unknown app fails materialisation; the error and
     its precedence must not depend on the pool size *)
  let errors =
    at_pool_sizes [ 1; 2; 4 ] (campaign ~spec_str:"burst:NOSUCH@5")
  in
  check_bool "error byte-identical at jobs 1/2/4" true (all_equal errors);
  match errors with
  | Error _ :: _ -> ()
  | Ok _ :: _ -> Alcotest.fail "expected a materialisation error"
  | [] -> assert false

(* ------------------------------------------------------------------ *)
(* Ta.Reach stats isolation (regression: the extrapolation counter was
   a module-global ref, so concurrent runs corrupted each other) *)

let test_reach_stats_domain_isolated () =
  let g = pair ~r:30 in
  let reference = Core.Ta_model.verify g in
  let spawn () = Domain.spawn (fun () -> Core.Ta_model.verify g) in
  let a = spawn () and b = spawn () in
  let ra = Domain.join a and rb = Domain.join b in
  check_bool "reference run extrapolates" true
    (reference.Core.Ta_model.stats.Ta.Reach.extrapolations > 0);
  List.iter
    (fun (r : Core.Ta_model.result) ->
      check_int "concurrent run sees its own count"
        reference.Core.Ta_model.stats.Ta.Reach.extrapolations
        r.Core.Ta_model.stats.Ta.Reach.extrapolations;
      check_bool "same outcome" true
        (r.Core.Ta_model.outcome = reference.Core.Ta_model.outcome))
    [ ra; rb ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "map_array order" `Quick test_pool_map_order;
          Alcotest.test_case "map_list order" `Quick test_pool_map_list_order;
          Alcotest.test_case "empty/singleton" `Quick
            test_pool_empty_and_singleton;
          Alcotest.test_case "smallest-index exception" `Quick
            test_pool_exception_smallest_index;
          Alcotest.test_case "nested map" `Quick test_pool_nested_map;
          Alcotest.test_case "submit/await" `Quick test_pool_submit_await;
          Alcotest.test_case "jobs=1 caller-only" `Quick
            test_pool_jobs_one_is_caller_only;
          Alcotest.test_case "jobs=0 rejected" `Quick
            test_pool_rejects_bad_jobs;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_pool_shutdown_idempotent;
          Alcotest.test_case "submit_list shards and nests" `Quick
            test_pool_submit_list;
          Alcotest.test_case "invalid CPSDIM_JOBS warns once" `Quick
            test_env_jobs_warns_once;
        ] );
      ( "vcache",
        [
          Alcotest.test_case "memoises" `Quick test_vcache_memoises;
          Alcotest.test_case "distinct keys" `Quick test_vcache_distinct_keys;
          Alcotest.test_case "shared across domains" `Quick
            test_vcache_shared_across_domains;
        ] );
      ( "dverify determinism",
        [
          Alcotest.test_case "safe" `Quick test_dverify_deterministic_safe;
          Alcotest.test_case "unsafe" `Quick test_dverify_deterministic_unsafe;
          Alcotest.test_case "state budget" `Quick
            test_dverify_deterministic_budget;
          Alcotest.test_case "bounded engine" `Quick
            test_dverify_bounded_deterministic;
        ] );
      ( "mapping determinism",
        [
          Alcotest.test_case "packing" `Slow test_mapping_deterministic;
          Alcotest.test_case "budgeted packing" `Quick
            test_mapping_deterministic_under_budget;
          Alcotest.test_case "cache shared with optimal" `Slow
            test_mapping_cache_shared_with_optimal;
          Alcotest.test_case "cache warmth invisible" `Slow
            test_mapping_cache_does_not_change_counts;
        ] );
      ( "dwell determinism",
        [ Alcotest.test_case "table" `Slow test_dwell_deterministic ] );
      ( "campaign determinism",
        [
          Alcotest.test_case "summary" `Quick test_campaign_deterministic;
          Alcotest.test_case "app faults" `Quick
            test_campaign_deterministic_app_faults;
          Alcotest.test_case "error path" `Quick
            test_campaign_error_deterministic;
        ] );
      ( "reach stats",
        [
          Alcotest.test_case "domain isolated" `Quick
            test_reach_stats_domain_isolated;
        ] );
    ]
