(* Round-trip property tests for the two textual codecs: dwell-table
   serialisation (Table_codec) and fault-spec parsing (Faults.Spec).
   Both promise [decode (encode x) = x] on every valid value; random
   generation explores corners the unit tests miss (single-row tables,
   constant arrays, probability formatting, clause orderings). *)

(* ------------------------------------------------------------------ *)
(* Random valid dwell tables (per Dwell.validate) *)

let gen_table =
  QCheck2.Gen.(
    let* rows = int_range 1 8 in
    let* stride = int_range 1 3 in
    let len = rows in
    let t_w_max = stride * (rows - 1) in
    let* j_star = int_range 5 30 in
    let* jt = int_range 1 j_star in
    let* je = int_range (j_star + 1) (j_star + 20) in
    let* t_dw_min = array_repeat len (int_range 1 10) in
    let* slack = array_repeat len (int_range 0 5) in
    let t_dw_max = Array.map2 ( + ) t_dw_min slack in
    let* j_at_min = array_repeat len (int_range 1 j_star) in
    let* j_at_max =
      (* dwelling longer must not worsen settling: max <= min *)
      flatten_a (Array.map (fun j -> int_range 1 j) j_at_min)
    in
    return
      {
        Core.Dwell.j_star;
        jt;
        je;
        t_w_max;
        stride;
        t_dw_min;
        t_dw_max;
        j_at_min;
        j_at_max;
      })

let pp_table t = Format.asprintf "%a" Core.Dwell.pp t

let prop_table_roundtrip =
  QCheck2.Test.make ~name:"table_of_string . table_to_string = id"
    ~count:500 ~print:pp_table gen_table (fun t ->
      (* only valid tables are serialisable; the generator must satisfy
         Dwell.validate by construction *)
      (match Core.Dwell.validate t with
      | Ok () -> ()
      | Error e -> QCheck2.Test.fail_report ("generator broke validate: " ^ e));
      match Core.Table_codec.table_of_string (Core.Table_codec.table_to_string t) with
      | Ok t' -> t' = t
      | Error e -> QCheck2.Test.fail_report ("decode failed: " ^ e))

let prop_rle_roundtrip =
  QCheck2.Test.make ~name:"RLE decode . encode = id (runs)" ~count:500
    QCheck2.Gen.(
      (* runs of repeated values, the shape dwell arrays actually take *)
      let* runs =
        list_size (int_range 1 8)
          (pair (int_range 0 12) (int_range 1 10))
      in
      return
        (Array.concat (List.map (fun (v, n) -> Array.make n v) runs)))
    (fun a -> Core.Table_codec.decode (Core.Table_codec.encode a) = a)

(* format-1 strings (no version tag, no stride) must still decode, as
   stride 1 — tables persisted before the codec bump *)
let v1_decode_compat () =
  let v1 = "10 3 15 2 | 4*3 | 6*2,5*1 | 8*3 | 7*3" in
  match Core.Table_codec.table_of_string v1 with
  | Error e -> Alcotest.failf "v1 decode failed: %s" e
  | Ok t ->
    Alcotest.(check int) "stride defaults to 1" 1 t.Core.Dwell.stride;
    Alcotest.(check int) "t_w_max" 2 t.Core.Dwell.t_w_max;
    Alcotest.(check (array int))
      "t_dw_min" [| 4; 4; 4 |] t.Core.Dwell.t_dw_min;
    (* and a v1 table re-encodes in the current format losslessly *)
    (match
       Core.Table_codec.table_of_string (Core.Table_codec.table_to_string t)
     with
    | Ok t' -> Alcotest.(check bool) "v2 round-trip of v1 table" true (t = t')
    | Error e -> Alcotest.failf "re-encode failed: %s" e)

(* ------------------------------------------------------------------ *)
(* Random fault specs *)

let gen_app = QCheck2.Gen.oneofl [ "A"; "B"; "C1"; "Motor" ]

(* probabilities as hundredths: %g prints them exactly, so the parse
   must return the identical float *)
let gen_p = QCheck2.Gen.(map (fun k -> float_of_int k /. 100.) (int_range 0 100))

let gen_clause =
  QCheck2.Gen.(
    oneof
      [
        (let* first = int_range 0 50 in
         let* width = int_range 1 20 in
         return
           (Faults.Spec.Blackout_window { first; until = first + width }));
        (let* p = gen_p in
         let* len = int_range 1 10 in
         return (Faults.Spec.Blackout_random { p; len }));
        (let* app = gen_app in
         let* sample = int_range 0 100 in
         return (Faults.Spec.Et_loss_at { app; sample }));
        (let* app = gen_app in
         let* p = gen_p in
         return (Faults.Spec.Et_loss_random { app; p }));
        (let* app = gen_app in
         let* sample = int_range 0 100 in
         return (Faults.Spec.Sensor_drop_at { app; sample }));
        (let* app = gen_app in
         let* p = gen_p in
         return (Faults.Spec.Sensor_drop_random { app; p }));
        (let* app = gen_app in
         let* start = int_range 0 50 in
         let* count = int_range 1 5 in
         return (Faults.Spec.Burst { app; start; count }));
      ])

let gen_spec = QCheck2.Gen.(list_size (int_range 1 4) gen_clause)

let prop_spec_roundtrip =
  QCheck2.Test.make ~name:"Spec.parse . Spec.to_string = id" ~count:500
    ~print:Faults.Spec.to_string gen_spec (fun s ->
      match Faults.Spec.parse (Faults.Spec.to_string s) with
      | Ok s' -> s' = s
      | Error e -> QCheck2.Test.fail_report ("parse failed: " ^ e))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "prop_codec"
    [
      ( "roundtrip",
        List.map QCheck_alcotest.to_alcotest
          [ prop_table_roundtrip; prop_rle_roundtrip; prop_spec_roundtrip ] );
      ( "compat",
        [ Alcotest.test_case "v1 header decodes as stride 1" `Quick
            v1_decode_compat ] );
    ]
