(* The serve protocol and service: parsing, routing, robustness
   (malformed input must produce structured errors, never a crash),
   incremental re-verification, and byte-identical responses at any
   jobs count. *)

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* response helpers *)

let parse_response line =
  match Obs.Jsonx.of_string line with
  | Ok (Obs.Jsonx.Assoc kvs) -> kvs
  | Ok _ -> Alcotest.failf "response is not an object: %s" line
  | Error m -> Alcotest.failf "response is not JSON (%s): %s" m line

let field kvs key =
  match List.assoc_opt key kvs with
  | Some j -> j
  | None -> Alcotest.failf "response lacks %S" key

let str_field kvs key =
  match field kvs key with
  | Obs.Jsonx.String s -> s
  | _ -> Alcotest.failf "%S is not a string" key

let ok_of kvs =
  match field kvs "ok" with
  | Obs.Jsonx.Bool b -> b
  | _ -> Alcotest.fail "\"ok\" is not a boolean"

let group_field kvs i key =
  match field kvs "groups" with
  | Obs.Jsonx.List gs -> (
    match List.nth_opt gs i with
    | Some (Obs.Jsonx.Assoc g) -> (
      match List.assoc_opt key g with
      | Some (Obs.Jsonx.String s) -> s
      | _ -> Alcotest.failf "group %d lacks string %S" i key)
    | _ -> Alcotest.failf "no group %d" i)
  | _ -> Alcotest.fail "\"groups\" is not an array"

let expect_error svc line =
  let response, control = Serve.Service.handle_line svc line in
  let kvs = parse_response response in
  checkb "request continues" true (control = `Continue);
  checkb "request failed" false (ok_of kvs);
  str_field kvs "error"

(* inline applications keep these tests independent of the (slow)
   case-study dwell computations *)
let inline_app ?(t_dw_max = 2) name r =
  Printf.sprintf
    "{\"name\":%S,\"t_w_max\":1,\"t_dw_min\":[1,1],\"t_dw_max\":[1,%d],\"r\":%d}"
    name t_dw_max r

(* ------------------------------------------------------------------ *)
(* protocol parsing *)

let test_protocol_parse () =
  let parse line =
    match Serve.Protocol.request_of_line line with
    | Ok r -> r
    | Error (_, m) -> Alcotest.failf "parse %s: %s" line m
  in
  (match parse "{\"id\":7,\"kind\":\"verify\",\"groups\":[[\"C1\"],[\"C2\",{\"name\":\"C3\",\"j_star\":30}]]}" with
   | Serve.Protocol.Verify { id; groups } ->
     checkb "id echoed" true (id = Obs.Jsonx.Int 7);
     (match groups with
      | [ [ Named "C1" ]; [ Named "C2"; Override { name = "C3"; j_star = 30 } ] ]
        -> ()
      | _ -> Alcotest.fail "groups misparsed")
   | _ -> Alcotest.fail "not a verify request");
  (match parse ("{\"kind\":\"verify\",\"groups\":[[" ^ inline_app "A" 9 ^ "]]}") with
   | Serve.Protocol.Verify
       { groups = [ [ Inline { name = "A"; t_w_max = 1; r = 9; _ } ] ]; id }
     ->
     checkb "missing id reads null" true (id = Obs.Jsonx.Null)
   | _ -> Alcotest.fail "inline app misparsed");
  (match parse "{\"kind\":\"map\",\"optimal\":true}" with
   | Serve.Protocol.Map { optimal = true; _ } -> ()
   | _ -> Alcotest.fail "map misparsed");
  (match parse "{\"kind\":\"dwell\",\"app\":\"C1\",\"j_star\":25}" with
   | Serve.Protocol.Dwell { app = "C1"; j_star = Some 25; _ } -> ()
   | _ -> Alcotest.fail "dwell misparsed");
  (match parse "{\"kind\":\"shutdown\"}" with
   | Serve.Protocol.Shutdown _ -> ()
   | _ -> Alcotest.fail "shutdown misparsed");
  let fails line =
    match Serve.Protocol.request_of_line line with
    | Ok _ -> Alcotest.failf "parsed: %s" line
    | Error (_, m) -> m
  in
  checkb "json error named" true
    (String.length (fails "{oops") > 0);
  checkb "kind checked" true
    (String.length (fails "{\"id\":1,\"groups\":[]}") > 0);
  checkb "empty groups rejected" true
    (String.length (fails "{\"kind\":\"verify\",\"groups\":[]}") > 0);
  checkb "empty group rejected" true
    (String.length (fails "{\"kind\":\"verify\",\"groups\":[[]]}") > 0);
  checkb "non-object rejected" true
    (String.length (fails "[1,2]") > 0)

(* ------------------------------------------------------------------ *)
(* verify semantics: verdicts, provenance, incremental accounting *)

let test_verify_incremental () =
  let svc = Serve.Service.create () in
  let req =
    Printf.sprintf "{\"id\":1,\"kind\":\"verify\",\"groups\":[[%s],[%s,%s],[%s]]}"
      (inline_app "A" 9) (inline_app "A" 9) (inline_app "B" 9) (inline_app "A" 9)
  in
  let response, control = Serve.Service.handle_line svc req in
  checkb "continues" true (control = `Continue);
  let kvs = parse_response response in
  checkb "ok" true (ok_of kvs);
  checks "cold provenance" "engine" (group_field kvs 0 "provenance");
  checks "cold verdict" "safe" (group_field kvs 0 "verdict");
  (* the third group repeats the first: deduplicated within the
     request, it reports the shared probe's provenance *)
  checks "duplicate group shares the probe" (group_field kvs 0 "fingerprint")
    (group_field kvs 2 "fingerprint");
  checki "two engine runs for two distinct groups" 2
    (Serve.Service.engine_runs svc);
  checki "no skips yet" 0 (Serve.Service.incremental_skips svc);
  (* the same question again: answered from memory, engine untouched *)
  let response2, _ = Serve.Service.handle_line svc req in
  let kvs2 = parse_response response2 in
  checks "warm provenance" "mem" (group_field kvs2 0 "provenance");
  checki "engine not re-run" 2 (Serve.Service.engine_runs svc);
  checki "both distinct groups skipped" 2 (Serve.Service.incremental_skips svc);
  checks "same verdict bytes" (str_field kvs "output") (str_field kvs2 "output");
  (* one changed application invalidates exactly its own group *)
  let req3 =
    Printf.sprintf "{\"id\":3,\"kind\":\"verify\",\"groups\":[[%s],[%s,%s]]}"
      (inline_app "A" 9) (inline_app "A" 9) (inline_app ~t_dw_max:3 "B" 9)
  in
  let response3, _ = Serve.Service.handle_line svc req3 in
  let kvs3 = parse_response response3 in
  checks "unchanged group skipped" "mem" (group_field kvs3 0 "provenance");
  checks "changed group re-verified" "engine" (group_field kvs3 1 "provenance");
  checki "exactly one more engine run" 3 (Serve.Service.engine_runs svc);
  checki "requests counted" 3 (Serve.Service.requests svc)

(* ------------------------------------------------------------------ *)
(* robustness: every bad line gets a structured error, service stays up *)

let test_robustness () =
  let svc = Serve.Service.create () in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    ln = 0 || go 0
  in
  checkb "malformed JSON named" true
    (contains (expect_error svc "{\"id\":1,\"kind\":") "bad JSON");
  checkb "unknown kind named" true
    (contains (expect_error svc "{\"kind\":\"frob\"}") "\"frob\"");
  checkb "unknown app named" true
    (contains
       (expect_error svc "{\"kind\":\"verify\",\"groups\":[[\"C9\"]]}")
       "\"C9\"");
  checkb "unknown dwell app named" true
    (contains (expect_error svc "{\"kind\":\"dwell\",\"app\":\"C9\"}") "\"C9\"");
  checkb "missing dwell app named" true
    (contains (expect_error svc "{\"kind\":\"dwell\"}") "app");
  checkb "bad group shape named" true
    (contains
       (expect_error svc "{\"kind\":\"verify\",\"groups\":[[42]]}")
       "application");
  (* an inline spec violating the sporadic model (r too small) is an
     Invalid_argument deep in Appspec.make: must come back as an error
     response naming the application, not an exception *)
  checkb "invalid inline spec named" true
    (contains
       (expect_error svc
          (Printf.sprintf "{\"kind\":\"verify\",\"groups\":[[%s]]}"
             (inline_app "A" 2)))
       "\"A\"");
  checkb "id still echoed on error" true
    (let response, _ =
       Serve.Service.handle_line svc "{\"id\":41,\"kind\":\"frob\"}"
     in
     field (parse_response response) "id" = Obs.Jsonx.Int 41);
  checki "every bad line counted" 8 (Serve.Service.requests svc);
  checki "no engine runs spent on bad lines" 0 (Serve.Service.engine_runs svc);
  (* the service survived all of the above *)
  let response, control = Serve.Service.handle_line svc "{\"kind\":\"ping\"}" in
  checkb "still serving" true (ok_of (parse_response response));
  checkb "still continuing" true (control = `Continue)

(* ------------------------------------------------------------------ *)
(* determinism: byte-identical response streams at jobs 1, 2 and 4 *)

let test_jobs_identical () =
  let batch =
    [
      Printf.sprintf "{\"id\":1,\"kind\":\"verify\",\"groups\":[[%s],[%s],[%s,%s]]}"
        (inline_app "A" 9) (inline_app "B" 11) (inline_app "A" 9)
        (inline_app "B" 11);
      "{\"id\":2,\"kind\":\"verify\",\"groups\":[[" ^ inline_app "B" 11 ^ "]]}";
      "{\"id\":3,\"kind\":\"nope\"}";
      "{\"id\":4,\"kind\":\"ping\"}";
    ]
  in
  let run jobs =
    Par.Pool.set_default_jobs jobs;
    let svc = Serve.Service.create () in
    String.concat "\n"
      (List.map (fun l -> fst (Serve.Service.handle_line svc l)) batch)
  in
  Fun.protect
    ~finally:(fun () -> Par.Pool.set_default_jobs 1)
    (fun () ->
      let seq = run 1 in
      checks "jobs=2 byte-identical" seq (run 2);
      checks "jobs=4 byte-identical" seq (run 4))

(* ------------------------------------------------------------------ *)
(* daemon loop over real channels *)

let run_batch svc payload =
  let r_fd, w_fd = Unix.pipe () in
  let w_oc = Unix.out_channel_of_descr w_fd in
  Out_channel.output_string w_oc payload;
  (* closing simulates the client going away mid-line when the payload
     lacks its final newline *)
  Out_channel.close w_oc;
  let ic = Unix.in_channel_of_descr r_fd in
  let out_path = Filename.temp_file "cpsdim-serve" ".out" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out_path with Sys_error _ -> ())
    (fun () ->
      let oc = Out_channel.open_text out_path in
      let outcome =
        Fun.protect
          ~finally:(fun () ->
            Out_channel.close oc;
            In_channel.close ic)
          (fun () -> Serve.Daemon.run_channels svc ic oc)
      in
      (outcome, In_channel.with_open_text out_path In_channel.input_all))

let test_daemon_channels () =
  let svc = Serve.Service.create () in
  (* blank lines skipped; truncated final line (no newline) still
     answered — with a parse error, since it was cut short *)
  let payload =
    "{\"id\":1,\"kind\":\"ping\"}\n\n  \n{\"id\":2,\"kind\":\"verify\",\"groups\":[["
    ^ inline_app "A" 9 ^ "]]}\n{\"id\":3,\"kind\":\"pi"
  in
  let outcome, out = run_batch svc payload in
  checkb "client EOF ends the connection" true (outcome = `Eof);
  let lines = String.split_on_char '\n' (String.trim out) in
  checki "three answers for three requests" 3 (List.length lines);
  let kvs = List.map parse_response lines in
  checkb "ping ok" true (ok_of (List.nth kvs 0));
  checkb "verify ok" true (ok_of (List.nth kvs 1));
  checkb "truncated line got a structured error" false (ok_of (List.nth kvs 2));
  (* a second client on the same service: caches stay warm across
     connections, and shutdown stops the loop *)
  let payload2 =
    "{\"id\":4,\"kind\":\"verify\",\"groups\":[[" ^ inline_app "A" 9
    ^ "]]}\n{\"id\":5,\"kind\":\"shutdown\"}\n{\"id\":6,\"kind\":\"ping\"}\n"
  in
  let outcome2, out2 = run_batch svc payload2 in
  checkb "shutdown stops the loop" true (outcome2 = `Stopped);
  let lines2 = String.split_on_char '\n' (String.trim out2) in
  checki "nothing answered after shutdown" 2 (List.length lines2);
  checks "second client served from the warm cache" "mem"
    (group_field (parse_response (List.hd lines2)) 0 "provenance")

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "request parsing" `Quick test_protocol_parse;
        ] );
      ( "service",
        [
          Alcotest.test_case "incremental verify" `Quick test_verify_incremental;
          Alcotest.test_case "robust against bad input" `Quick test_robustness;
          Alcotest.test_case "byte-identical at jobs 1/2/4" `Quick
            test_jobs_identical;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "channel loop" `Quick test_daemon_channels;
        ] );
    ]
