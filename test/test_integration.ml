(* End-to-end integration: the full pipeline of the paper on the real
   case study — dwell tables -> first-fit mapping driven by model
   checking -> co-simulation of the mapped slots -> baseline
   comparison.  These are the headline claims of Sec. 5. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let apps =
  lazy
    (List.map
       (fun (a : Casestudy.app) ->
         Core.App.make ~name:a.Casestudy.name ~plant:a.Casestudy.plant
           ~gains:a.Casestudy.gains ~r:a.Casestudy.r ~j_star:a.Casestudy.j_star
           ())
       Casestudy.all)

let names_of slot = List.map (fun a -> a.Core.App.name) slot.Core.Mapping.apps

let mapping = lazy (Core.Mapping.first_fit (Lazy.force apps))

let find_app name =
  List.find (fun a -> String.equal a.Core.App.name name) (Lazy.force apps)

let test_sort_order_matches_paper () =
  let order = List.map (fun a -> a.Core.App.name) (Core.Mapping.sort_order (Lazy.force apps)) in
  check_bool "paper order" true
    (order = [ "C1"; "C5"; "C4"; "C6"; "C2"; "C3" ])

let test_mapping_two_slots_paper_partition () =
  let o = Lazy.force mapping in
  check_int "two slots" 2 (List.length o.Core.Mapping.slots);
  match o.Core.Mapping.slots with
  | [ s1; s2 ] ->
    check_bool "S1" true (names_of s1 = [ "C1"; "C5"; "C4"; "C3" ]);
    check_bool "S2" true (names_of s2 = [ "C6"; "C2" ])
  | _ -> Alcotest.fail "expected two slots"

let test_paper_groups_verify_safe () =
  List.iter
    (fun group_names ->
      let group = List.map find_app group_names in
      let specs = Core.Mapping.specs_of_group group in
      match (Core.Dverify.verify specs).Core.Dverify.verdict with
      | Core.Dverify.Safe -> ()
      | Core.Dverify.Unsafe _ | Core.Dverify.Undetermined _ ->
        Alcotest.fail (String.concat "," group_names ^ " must be safe"))
    Casestudy.paper_slot_partition

let test_s1_all_engines_agree_safe () =
  let group = List.map find_app [ "C1"; "C5"; "C4"; "C3" ] in
  let specs = Core.Mapping.specs_of_group group in
  let sub =
    match (Core.Dverify.verify specs).Core.Dverify.verdict with
    | Core.Dverify.Safe -> true
    | Core.Dverify.Unsafe _ | Core.Dverify.Undetermined _ -> false
  in
  let bounded =
    match
      (Core.Dverify.verify_bounded ~instances:1 specs).Core.Dverify.verdict
    with
    | Core.Dverify.Safe -> true
    | Core.Dverify.Unsafe _ | Core.Dverify.Undetermined _ -> false
  in
  check_bool "subsumption safe" true sub;
  check_bool "bounded safe" true bounded

let test_five_apps_on_one_slot_unsafe () =
  (* the first-fit run rejected C6 on S1: check that directly *)
  let group = List.map find_app [ "C1"; "C5"; "C4"; "C6" ] in
  let specs = Core.Mapping.specs_of_group group in
  match (Core.Dverify.verify specs).Core.Dverify.verdict with
  | Core.Dverify.Unsafe ce ->
    check_bool "counterexample nonempty" true (ce.Core.Dverify.steps <> [])
  | Core.Dverify.Safe -> Alcotest.fail "C6 must not fit on S1"
  | Core.Dverify.Undetermined _ -> Alcotest.fail "must decide"

let test_baseline_needs_four_slots () =
  let specs =
    List.mapi
      (fun i (a : Casestudy.app) ->
        let bp =
          Core.Baseline_params.compute a.Casestudy.plant a.Casestudy.gains
            ~j_star:a.Casestudy.j_star
        in
        Core.Baseline_params.to_spec ~id:i ~name:a.Casestudy.name
          ~r:a.Casestudy.r bp)
      Casestudy.all
  in
  let order = [ "C1"; "C5"; "C4"; "C6"; "C2"; "C3" ] in
  let sorted =
    List.map
      (fun n -> List.find (fun s -> String.equal s.Sched.Baseline.name n) specs)
      order
  in
  List.iter
    (fun strat ->
      let slots = Sched.Baseline.first_fit strat sorted in
      check_int "four slots" 4 (List.length slots))
    [ Sched.Baseline.Dm; Sched.Baseline.Delayed ]

(* ------------------------------------------------------------------ *)
(* Fig. 8: simultaneous disturbance on S1 *)

let fig8 =
  lazy
    (let s1 = List.map find_app [ "C1"; "C5"; "C4"; "C3" ] in
     let sc =
       Cosim.Scenario.make ~apps:s1
         ~disturbances:[ (0, "C1"); (0, "C3"); (0, "C4"); (0, "C5") ]
         ~horizon:60
     in
     (s1, Cosim.Engine.run sc))

let test_fig8_all_meet_requirements () =
  let s1, tr = Lazy.force fig8 in
  check_bool "all meet J*" true (Cosim.Trace.meets_requirements tr s1)

let test_fig8_service_order_and_preemption () =
  let _, tr = Lazy.force fig8 in
  (* grant order by EDF slack: C1 (11) then C5/C4 (12) then C3 (15) *)
  let intervals = Cosim.Trace.owner_intervals tr in
  let order = List.map (fun (id, _, _) -> tr.Cosim.Trace.names.(id)) intervals in
  check_bool "C1 first" true (List.nth order 0 = "C1");
  check_bool "C3 last" true (List.nth order 3 = "C3");
  (* slot is handed over back-to-back with no idle gap *)
  let rec contiguous = function
    | (_, _, b) :: ((_, a', _) :: _ as rest) -> a' = b + 1 && contiguous rest
    | [ _ ] | [] -> true
  in
  check_bool "no idle gaps" true (contiguous intervals)

let test_fig8_c3_unpreempted_dwell () =
  (* C3 is served last: nobody left to preempt it, so it keeps the slot
     for its full T+_dw *)
  let s1, tr = Lazy.force fig8 in
  let c3 = List.find (fun a -> a.Core.App.name = "C3") s1 in
  let id = 3 in
  let wait =
    match Cosim.Trace.owner_intervals tr with
    | _ :: _ ->
      (match List.find_opt (fun (i, _, _) -> i = id) (Cosim.Trace.owner_intervals tr) with
       | Some (_, first, _) -> first
       | None -> Alcotest.fail "C3 never served")
    | [] -> Alcotest.fail "no intervals"
  in
  let expected = c3.Core.App.table.Core.Dwell.t_dw_max.(wait) in
  check_int "C3 dwell = T+dw" expected (Cosim.Trace.tt_samples tr ~id)

let test_fig8_others_preempted_at_min () =
  let s1, tr = Lazy.force fig8 in
  List.iteri
    (fun id (a : Core.App.t) ->
      if not (String.equal a.Core.App.name "C3") then begin
        let first =
          match List.find_opt (fun (i, _, _) -> i = id) (Cosim.Trace.owner_intervals tr) with
          | Some (_, first, _) -> first
          | None -> Alcotest.fail (a.Core.App.name ^ " never served")
        in
        let expected = a.Core.App.table.Core.Dwell.t_dw_min.(first) in
        check_int (a.Core.App.name ^ " dwell = T-dw") expected
          (Cosim.Trace.tt_samples tr ~id)
      end)
    s1

(* ------------------------------------------------------------------ *)
(* Fig. 9: C2 disturbed at 0, C6 ten samples later *)

let fig9 =
  lazy
    (let s2 = List.map find_app [ "C6"; "C2" ] in
     let sc =
       Cosim.Scenario.make ~apps:s2
         ~disturbances:[ (0, "C2"); (10, "C6") ]
         ~horizon:60
     in
     (s2, Cosim.Engine.run sc))

let test_fig9_requirements_and_no_preemption () =
  let s2, tr = Lazy.force fig9 in
  check_bool "both meet J*" true (Cosim.Trace.meets_requirements tr s2);
  (* neither is preempted: each achieves its dedicated-slot settling *)
  let c2 = Cosim.Trace.settling_after tr ~id:1 ~sample:0 in
  let c6 = Cosim.Trace.settling_after tr ~id:0 ~sample:10 in
  let jt name =
    (find_app name).Core.App.table.Core.Dwell.jt
  in
  check_bool "C2 reaches JT" true (c2 = Some (jt "C2"));
  check_bool "C6 reaches JT" true (c6 = Some (jt "C6"))

let test_fig9_c2_tt_usage_below_baseline () =
  (* the paper: C2 reaches J_T with ~10 TT samples where the baseline
     holds the slot for 15 *)
  let _, tr = Lazy.force fig9 in
  let used = Cosim.Trace.tt_samples tr ~id:1 in
  check_bool "close to the paper's 10" true (abs (used - 10) <= 1);
  let c2 = Casestudy.find "C2" in
  let bp =
    Core.Baseline_params.compute c2.Casestudy.plant c2.Casestudy.gains
      ~j_star:c2.Casestudy.j_star
  in
  check_bool "baseline occupies more" true (bp.Core.Baseline_params.c_occ > used)

(* ------------------------------------------------------------------ *)
(* The paper's UPPAAL-simulate-then-MATLAB flow: the schedule obtained
   by simulating the TA network must equal the executable arbiter's *)

let test_ta_simulation_matches_arbiter () =
  let s1 = List.map find_app [ "C1"; "C5"; "C4"; "C3" ] in
  let specs = Core.Mapping.specs_of_group s1 in
  let scenarios =
    [
      [ (0, 0); (0, 1); (0, 2); (0, 3) ];
      [ (0, 1); (3, 0); (5, 2) ];
      [ (2, 3); (2, 2); (10, 0); (55, 3) ];
      [];
    ]
  in
  List.iter
    (fun disturbances ->
      let horizon = 70 in
      let ta = Core.Ta_schedule.owner_trace specs ~disturbances ~horizon in
      let arb = Sched.Arbiter.create specs in
      Sched.Arbiter.run arb ~horizon ~disturbances;
      check_bool "schedules equal" true (ta = Sched.Arbiter.owner_trace arb))
    scenarios

let test_ta_simulation_detects_miss () =
  (* drive an unsafe pair into a deadline miss: the TA simulation must
     report Error_reached *)
  let tight k =
    Sched.Appspec.make ~id:k ~name:(Printf.sprintf "T%d" k) ~t_w_max:1
      ~t_dw_min:[| 3; 3 |] ~t_dw_max:[| 4; 4 |] ~r:20
  in
  let specs = [| tight 0; tight 1 |] in
  check_bool "miss detected" true
    (try
       ignore
         (Core.Ta_schedule.owner_trace specs
            ~disturbances:[ (0, 0); (0, 1) ]
            ~horizon:20);
       false
     with Core.Ta_schedule.Error_reached _ -> true)

let () =
  Alcotest.run "integration"
    [
      ( "mapping",
        [
          Alcotest.test_case "sort order" `Quick test_sort_order_matches_paper;
          Alcotest.test_case "two slots, paper partition" `Quick
            test_mapping_two_slots_paper_partition;
          Alcotest.test_case "paper groups safe" `Quick test_paper_groups_verify_safe;
          Alcotest.test_case "engines agree on S1" `Quick test_s1_all_engines_agree_safe;
          Alcotest.test_case "C6 rejected from S1" `Quick test_five_apps_on_one_slot_unsafe;
          Alcotest.test_case "baseline needs 4 slots" `Quick test_baseline_needs_four_slots;
        ] );
      ( "fig8",
        [
          Alcotest.test_case "requirements met" `Quick test_fig8_all_meet_requirements;
          Alcotest.test_case "service order" `Quick test_fig8_service_order_and_preemption;
          Alcotest.test_case "C3 full dwell" `Quick test_fig8_c3_unpreempted_dwell;
          Alcotest.test_case "others preempted at min" `Quick test_fig8_others_preempted_at_min;
        ] );
      ( "fig9",
        [
          Alcotest.test_case "requirements, no preemption" `Quick
            test_fig9_requirements_and_no_preemption;
          Alcotest.test_case "C2 TT usage below baseline" `Quick
            test_fig9_c2_tt_usage_below_baseline;
        ] );
      ( "ta simulation",
        [
          Alcotest.test_case "matches arbiter" `Quick test_ta_simulation_matches_arbiter;
          Alcotest.test_case "detects deadline miss" `Quick test_ta_simulation_detects_miss;
        ] );
    ]
