(* Tests for the persistent verification cache stack: the append-only
   Store file format (robustness against torn tails, corruption, stale
   salts, hostile bytes), the Vcache backing protocol, the Pcache
   verdict/table codecs and soundness rules (Undetermined is never
   persisted), the collision-proof Mapping.fingerprint, and the
   end-to-end guarantee that first_fit/optimal report byte-identical
   outcomes whatever the cache (none, cold, warm, or persistent across
   a process-like reopen) — with zero engine runs when warm. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let temp_path () =
  let path = Filename.temp_file "cpsdim-test" ".store" in
  Sys.remove path;
  path

let with_store f =
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".lock" ])
    (fun () -> f path)

let open_exn ~path ~salt =
  match Store.open_ ~path ~salt with
  | Ok s -> s
  | Error m -> Alcotest.failf "Store.open_ failed: %s" m

(* ------------------------------------------------------------------ *)
(* Store *)

(* keys and values carrying every byte class the framing must survive:
   newlines, NUL, the record tag, spaces, and the fingerprint
   delimiters *)
let hostile =
  [
    ("plain", "value");
    ("key with spaces", "R 3 4 deadbeef");
    ("newline\nin\nkey", "newline\nin\nvalue\n");
    ("nul\000byte", "\000\000");
    ("delims|;,:", "v2 1 2 3 | 4*5");
    ("", "empty key");
    ("empty value", "");
  ]

let test_store_roundtrip () =
  with_store @@ fun path ->
  let s = open_exn ~path ~salt:"s1" in
  List.iter (fun (k, v) -> Store.add s k v) hostile;
  List.iter
    (fun (k, v) ->
      Alcotest.(check (option string)) ("find " ^ String.escaped k) (Some v)
        (Store.find s k))
    hostile;
  check_int "length" (List.length hostile) (Store.length s);
  Store.close s;
  (* reopen: everything must come back from disk *)
  let s = open_exn ~path ~salt:"s1" in
  List.iter
    (fun (k, v) ->
      Alcotest.(check (option string))
        ("reloaded " ^ String.escaped k)
        (Some v) (Store.find s k))
    hostile;
  let st = Store.stats s in
  check_int "loaded" (List.length hostile) st.Store.loaded;
  check_int "no stale drops" 0 st.Store.stale_dropped;
  check_int "no torn drops" 0 st.Store.torn_dropped;
  Store.close s

let test_store_first_write_wins () =
  with_store @@ fun path ->
  let s = open_exn ~path ~salt:"s1" in
  Store.add s "k" "first";
  Store.add s "k" "second";
  Alcotest.(check (option string)) "duplicate ignored" (Some "first")
    (Store.find s "k");
  check_int "one entry" 1 (Store.length s);
  Store.close s;
  let s = open_exn ~path ~salt:"s1" in
  Alcotest.(check (option string)) "after reopen" (Some "first")
    (Store.find s "k");
  check_int "one record on disk" 1 (Store.length s);
  Store.close s

let test_store_stale_salt_invalidates () =
  with_store @@ fun path ->
  let s = open_exn ~path ~salt:"engine-A" in
  Store.add s "k1" "v1";
  Store.add s "k2" "v2";
  Store.close s;
  let s = open_exn ~path ~salt:"engine-B" in
  check_int "stale store starts empty" 0 (Store.length s);
  check_int "both records counted as dropped" 2
    (Store.stats s).Store.stale_dropped;
  Store.add s "k1" "new";
  Store.close s;
  (* the rewrite is durable: reopening under the new salt keeps the new
     record and drops nothing *)
  let s = open_exn ~path ~salt:"engine-B" in
  Alcotest.(check (option string)) "new-salt record" (Some "new")
    (Store.find s "k1");
  check_int "nothing dropped" 0 (Store.stats s).Store.stale_dropped;
  Store.close s

let test_store_torn_tail_healed () =
  with_store @@ fun path ->
  let s = open_exn ~path ~salt:"s1" in
  Store.add s "good" "kept";
  Store.close s;
  (* simulate a crash mid-append: a record header without its body *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "R 5 5 0123456789abcdef\nhal";
  close_out oc;
  let s = open_exn ~path ~salt:"s1" in
  Alcotest.(check (option string)) "intact prefix kept" (Some "kept")
    (Store.find s "good");
  check_int "torn tail counted" 1 (Store.stats s).Store.torn_dropped;
  (* the heal compacted the file: appends after it must survive *)
  Store.add s "after" "heal";
  Store.close s;
  let s = open_exn ~path ~salt:"s1" in
  check_int "both records" 2 (Store.length s);
  check_int "clean after heal" 0 (Store.stats s).Store.torn_dropped;
  Store.close s

let test_store_checksum_poisons_suffix () =
  with_store @@ fun path ->
  let s = open_exn ~path ~salt:"s1" in
  Store.add s "a" "1";
  Store.add s "b" "2";
  Store.add s "c" "3";
  Store.close s;
  (* flip a payload byte of record "b": its checksum fails, and "c"
     behind it must be dropped too — framing after damage is untrusted *)
  let content = In_channel.with_open_bin path In_channel.input_all in
  (* locate record b's payload "b2\n" by scanning (no Str dependency) *)
  let i =
    let needle = "b2\n" in
    let rec scan i =
      if i + String.length needle > String.length content then
        Alcotest.fail "payload not found"
      else if String.equal (String.sub content i (String.length needle)) needle
      then i
      else scan (i + 1)
    in
    scan 0
  in
  let bytes = Bytes.of_string content in
  Bytes.set bytes (i + 1) '9';
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc bytes);
  let s = open_exn ~path ~salt:"s1" in
  Alcotest.(check (option string)) "record before damage" (Some "1")
    (Store.find s "a");
  Alcotest.(check (option string)) "damaged record gone" None
    (Store.find s "b");
  Alcotest.(check (option string)) "suffix after damage gone" None
    (Store.find s "c");
  check_int "one torn marker" 1 (Store.stats s).Store.torn_dropped;
  Store.close s

let test_store_refuses_non_store () =
  with_store @@ fun path ->
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "just some file\n");
  (match Store.open_ ~path ~salt:"s1" with
   | Ok _ -> Alcotest.fail "opened a non-store file"
   | Error _ -> ());
  (* and the file was not clobbered *)
  check_string "file untouched" "just some file\n"
    (In_channel.with_open_bin path In_channel.input_all)

let test_store_clear_and_peek () =
  with_store @@ fun path ->
  let s = open_exn ~path ~salt:"s1" in
  Store.add s "k" "v";
  Store.flush s;
  (match Store.peek ~path with
   | Ok (salt, n) ->
     check_string "peek salt" "s1" salt;
     check_int "peek records" 1 n
   | Error m -> Alcotest.failf "peek failed: %s" m);
  Store.clear s;
  check_int "cleared in memory" 0 (Store.length s);
  Store.close s;
  (match Store.peek ~path with
   | Ok (_, n) -> check_int "cleared on disk" 0 n
   | Error m -> Alcotest.failf "peek after clear failed: %s" m);
  (* peek never invalidates: a stale file keeps its salt *)
  let s = open_exn ~path ~salt:"other" in
  Store.add s "x" "y";
  Store.close s;
  match Store.peek ~path with
  | Ok (salt, n) ->
    check_string "peek reports the file's salt" "other" salt;
    check_int "peek reports its records" 1 n
  | Error m -> Alcotest.failf "peek on other salt failed: %s" m

(* the single-writer guard is a cross-process property (lockf conflicts
   only between processes), so the regression test really forks: the
   child races the parent's open handle, must land read-only, must
   still serve both the disk image and its own in-memory adds, and
   must leave the parent's file byte-exactly writer-only *)
let test_store_single_writer_lock () =
  with_store @@ fun path ->
  let s = open_exn ~path ~salt:"s1" in
  check_bool "first opener owns the file" false (Store.read_only s);
  Store.add s "k" "parent";
  Store.flush s;
  (match Unix.fork () with
   | 0 ->
     let rc =
       match Store.open_ ~path ~salt:"s1" with
       | Error _ -> 1
       | Ok s2 ->
         if not (Store.read_only s2) then 2
         else if Store.find s2 "k" <> Some "parent" then 3
         else begin
           Store.add s2 "k2" "child";
           if Store.find s2 "k2" <> Some "child" then 4
           else begin
             Store.close s2;
             0
           end
         end
     in
     (* _exit, not exit: the child must not run the parent's at_exit
        handlers (domain-pool shutdown, channel flushing) *)
     Unix._exit rc
   | pid ->
     let _, status = Unix.waitpid [] pid in
     check_bool "child degraded to read-only (exit 0)" true
       (status = Unix.WEXITED 0));
  (* the lock outlives the child: the parent still appends normally and
     the child's in-memory record never reached the file *)
  Store.add s "k3" "parent2";
  Store.close s;
  let s = open_exn ~path ~salt:"s1" in
  check_bool "lock released at close: reopen writes" false (Store.read_only s);
  check_int "only the writer's records on disk" 2 (Store.length s);
  Alcotest.(check (option string)) "child record absent" None
    (Store.find s "k2");
  Alcotest.(check (option string)) "writer records intact" (Some "parent2")
    (Store.find s "k3");
  Store.close s

let test_store_rejects_newline_salt () =
  with_store @@ fun path ->
  match Store.open_ ~path ~salt:"a\nb" with
  | Ok _ -> Alcotest.fail "accepted a salt with a newline"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Vcache backing protocol *)

let test_vcache_backing_hit_and_save () =
  let disk = Hashtbl.create 8 in
  Hashtbl.add disk "warm" 41;
  let saves = ref [] in
  let backing =
    {
      Par.Vcache.load = (fun k -> Hashtbl.find_opt disk k);
      save = (fun k v -> saves := (k, v) :: !saves);
    }
  in
  let c = Par.Vcache.create ~backing () in
  let computed = ref 0 in
  let get k v =
    Par.Vcache.find_or_add' c k (fun () ->
        incr computed;
        v)
  in
  (* backing hit: no compute, no save, promoted to memory *)
  check_bool "disk hit" true (get "warm" 0 = (41, `Disk));
  check_int "compute skipped" 0 !computed;
  check_bool "no save on a disk hit" true (!saves = []);
  check_bool "promoted: second lookup is a memory hit" true
    (get "warm" 0 = (41, `Mem));
  check_int "disk_hits" 1 (Par.Vcache.disk_hits c);
  (* miss: computed once and offered to the backing *)
  check_bool "miss computes" true (get "cold" 7 = (7, `Miss));
  check_int "computed once" 1 !computed;
  check_bool "saved to backing" true (!saves = [ ("cold", 7) ]);
  check_bool "then cached in memory" true (get "cold" 0 = (7, `Mem))

(* ------------------------------------------------------------------ *)
(* Fingerprint: the delimiter-injection regression *)

(* the pre-fix keying: fields joined on '|' and entries on ';' with the
   name unescaped — kept here as the collision witness *)
let old_fingerprint specs =
  let ints a = String.concat "," (List.map string_of_int (Array.to_list a)) in
  let entry (s : Sched.Appspec.t) =
    Printf.sprintf "%s|%d|%s|%s|%d" s.Sched.Appspec.name
      s.Sched.Appspec.t_w_max
      (ints s.Sched.Appspec.t_dw_min)
      (ints s.Sched.Appspec.t_dw_max)
      s.Sched.Appspec.r
  in
  String.concat ";" (List.sort compare (List.map entry (Array.to_list specs)))

let adversarial_spec ~id ~name =
  Sched.Appspec.make ~id ~name ~t_w_max:1 ~t_dw_min:[| 3; 3 |]
    ~t_dw_max:[| 4; 4 |] ~r:9

let test_fingerprint_injection_regression () =
  (* two honest apps A and B ... *)
  let two =
    [| adversarial_spec ~id:0 ~name:"A"; adversarial_spec ~id:1 ~name:"B" |]
  in
  (* ... vs ONE app whose name smuggles the delimiters *)
  let one = [| adversarial_spec ~id:0 ~name:"A|1|3,3|4,4|9;B" |] in
  check_string "old keying collides (the bug)" (old_fingerprint two)
    (old_fingerprint one);
  check_bool "new keying separates them" true
    (not
       (String.equal (Core.Mapping.fingerprint two)
          (Core.Mapping.fingerprint one)))

let test_fingerprint_canonical () =
  let a = adversarial_spec ~id:0 ~name:"A"
  and b = adversarial_spec ~id:1 ~name:"B" in
  (* invariant under group order and id assignment *)
  check_string "permutation invariant"
    (Core.Mapping.fingerprint [| a; b |])
    (Core.Mapping.fingerprint
       [| Sched.Appspec.with_id b 0; Sched.Appspec.with_id a 1 |]);
  (* but sensitive to every timing field *)
  let a' =
    Sched.Appspec.make ~id:0 ~name:"A" ~t_w_max:1 ~t_dw_min:[| 3; 3 |]
      ~t_dw_max:[| 4; 4 |] ~r:10
  in
  check_bool "r matters" true
    (not
       (String.equal
          (Core.Mapping.fingerprint [| a |])
          (Core.Mapping.fingerprint [| a' |])))

(* ------------------------------------------------------------------ *)
(* Pcache: codecs and soundness *)

let with_pcache f =
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let pcache_exn path =
  match Core.Pcache.open_ ~path with
  | Ok pc -> pc
  | Error m -> Alcotest.failf "Pcache.open_ failed: %s" m

let test_pcache_verdict_roundtrip () =
  with_pcache @@ fun path ->
  let safe = [| adversarial_spec ~id:0 ~name:"A" |]
  and unsafe = [| adversarial_spec ~id:0 ~name:"B" |]
  and undet = [| adversarial_spec ~id:0 ~name:"C" |] in
  let pc = pcache_exn path in
  Core.Pcache.record_verdict pc safe `Safe;
  Core.Pcache.record_verdict pc unsafe `Unsafe;
  Core.Pcache.record_verdict pc undet (`Undetermined "budget");
  Core.Pcache.close pc;
  let pc = pcache_exn path in
  check_bool "safe round-trips" true
    (Core.Pcache.find_verdict pc safe = Some `Safe);
  check_bool "unsafe round-trips" true
    (Core.Pcache.find_verdict pc unsafe = Some `Unsafe);
  check_bool "undetermined was never persisted" true
    (Core.Pcache.find_verdict pc undet = None);
  Core.Pcache.close pc

let test_pcache_mapping_cache_skips_engine () =
  with_pcache @@ fun path ->
  let specs =
    [| adversarial_spec ~id:0 ~name:"A"; adversarial_spec ~id:1 ~name:"B" |]
  in
  let pc = pcache_exn path in
  Core.Pcache.record_verdict pc specs `Unsafe;
  Core.Pcache.close pc;
  (* a FRESH handle (fresh in-memory cache) must answer from disk *)
  let pc = pcache_exn path in
  let cache = Core.Pcache.mapping_cache pc in
  let ran = ref false in
  let v =
    Par.Vcache.find_or_add cache
      (Core.Mapping.fingerprint specs)
      (fun () ->
        ran := true;
        `Safe)
  in
  check_bool "verdict came from the store" true (v = `Unsafe);
  check_bool "engine not consulted" false !ran;
  (* an undetermined fresh computation is memoised but not persisted *)
  let undet = [| adversarial_spec ~id:0 ~name:"U" |] in
  let v2 =
    Par.Vcache.find_or_add cache
      (Core.Mapping.fingerprint undet)
      (fun () -> `Undetermined "budget")
  in
  check_bool "undetermined returned" true (v2 = `Undetermined "budget");
  Core.Pcache.close pc;
  let pc = pcache_exn path in
  check_bool "undetermined absent after reopen" true
    (Core.Pcache.find_verdict pc undet = None);
  Core.Pcache.close pc

(* the prefilter/symmetry rework bumped the engine tag: verdicts from a
   pre-screen store must never be trusted by the new engine, so a store
   written under the previous salt is retired wholesale on open *)
let test_pcache_salt_bumped_for_prefilter () =
  check_bool "salt names the prefilter engine generation" true
    (String.length Core.Pcache.engine_salt >= 21
     && String.sub Core.Pcache.engine_salt 0 21 = "dverify-2 prefilter-1");
  with_pcache @@ fun path ->
  let specs = [| adversarial_spec ~id:0 ~name:"A" |] in
  (* forge a store as the previous engine generation would have written
     it: same record shape, pre-bump salt *)
  let old_salt =
    Printf.sprintf "dverify-1 codec-%d" Core.Table_codec.version
  in
  (match Store.open_ ~path ~salt:old_salt with
   | Ok s ->
     Store.add s ("v:" ^ Core.Mapping.fingerprint specs) "unsafe";
     Store.close s
   | Error m -> Alcotest.failf "seeding old-salt store failed: %s" m);
  let pc = pcache_exn path in
  check_bool "stale verdict dropped, not believed" true
    (Core.Pcache.find_verdict pc specs = None);
  check_bool "whole pre-bump store retired" true
    ((Core.Pcache.stats pc).Store.stale_dropped > 0);
  Core.Pcache.close pc

(* ------------------------------------------------------------------ *)
(* End-to-end determinism: the mappers under every cache mode *)

let plant =
  Control.Plant.make
    ~phi:(Linalg.Mat.of_rows [ [ 0.95; 0.08 ]; [ 0.; 0.9 ] ])
    ~gamma:[| 0.004; 0.08 |] ~c:[| 1.; 0. |] ~h:0.02

let gains =
  let kt = Control.Pole_place.place_tt plant [ (0.25, 0.); (0.3, 0.) ] in
  let ke =
    Control.Pole_place.place_et plant [ (0.82, 0.); (0.85, 0.); (0.3, 0.) ]
  in
  Control.Switched.make_gains plant ~kt ~ke

let app ?(r = 120) name = Core.App.make ~name ~plant ~gains ~r ~j_star:25 ()

let abc = lazy [ app "A"; app ~r:130 "B"; app ~r:140 "C" ]

let outcome_key (o : Core.Mapping.outcome) =
  ( List.map
      (fun s ->
        (s.Core.Mapping.index, List.map (fun a -> a.Core.App.name) s.Core.Mapping.apps))
      o.Core.Mapping.slots,
    o.Core.Mapping.verifications,
    o.Core.Mapping.undetermined,
    Format.asprintf "%a" Core.Mapping.pp o )

let test_dwell_table_persists () =
  with_pcache @@ fun path ->
  let pc = pcache_exn path in
  let t1 =
    Core.Dwell.compute ~cache:(Core.Pcache.dwell_cache pc) plant gains
      ~j_star:25
  in
  Core.Pcache.close pc;
  let pc = pcache_exn path in
  let cache = Core.Pcache.dwell_cache pc in
  let t2 = Core.Dwell.compute ~cache plant gains ~j_star:25 in
  check_bool "table identical across reopen" true (t1 = t2);
  check_int "answered by the backing, not recomputed" 1
    (Par.Vcache.disk_hits cache);
  check_int "no fresh computation" 0 (Par.Vcache.misses cache);
  Core.Pcache.close pc

(* subsets/permutations of {A,B,C}; r=9 in `pair` style is not needed —
   these apps give a mix of groupings through real verification *)
let gen_apps =
  QCheck2.Gen.(
    let* perm = oneofl [ [ 0; 1; 2 ]; [ 2; 0; 1 ]; [ 1; 2; 0 ]; [ 2; 1; 0 ] ] in
    let* take = int_range 1 3 in
    let all = Array.of_list (Lazy.force abc) in
    return (List.filteri (fun i _ -> i < take) (List.map (Array.get all) perm)))

let prop_cache_invisible =
  QCheck2.Test.make ~name:"mapping outcome invariant under cache mode"
    ~count:6
    ~print:(fun apps ->
      String.concat "," (List.map (fun a -> a.Core.App.name) apps))
    gen_apps
    (fun apps ->
      let engine_runs = ref 0 in
      let counting specs =
        incr engine_runs;
        Core.Mapping.default_verifier specs
      in
      let run_ff ?cache () =
        Core.Mapping.first_fit ?cache ~verifier:counting apps
      and run_opt ?cache () =
        Core.Mapping.optimal ?cache ~verifier:counting apps
      in
      let path = temp_path () in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          (* reference: no cache at all *)
          let ff_ref = outcome_key (run_ff ())
          and opt_ref = outcome_key (run_opt ()) in
          (* cold + warm in-memory cache *)
          let mem = Core.Mapping.create_cache () in
          let ff_cold = outcome_key (run_ff ~cache:mem ())
          and ff_warm = outcome_key (run_ff ~cache:mem ()) in
          (* cold persistent, then a fresh handle over the warm store *)
          let pc = pcache_exn path in
          let ff_pcold =
            outcome_key (run_ff ~cache:(Core.Pcache.mapping_cache pc) ())
          in
          let opt_pcold =
            outcome_key (run_opt ~cache:(Core.Pcache.mapping_cache pc) ())
          in
          Core.Pcache.close pc;
          let pc = pcache_exn path in
          engine_runs := 0;
          let ff_pwarm =
            outcome_key (run_ff ~cache:(Core.Pcache.mapping_cache pc) ())
          in
          let ff_warm_runs = !engine_runs in
          let opt_pwarm =
            outcome_key (run_opt ~cache:(Core.Pcache.mapping_cache pc) ())
          in
          Core.Pcache.close pc;
          if ff_warm_runs <> 0 then
            QCheck2.Test.fail_reportf
              "warm persistent first_fit ran the engine %d time(s)"
              ff_warm_runs;
          List.for_all (( = ) ff_ref) [ ff_cold; ff_warm; ff_pcold; ff_pwarm ]
          && List.for_all (( = ) opt_ref) [ opt_pcold; opt_pwarm ]))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "store"
    [
      ( "store",
        [
          Alcotest.test_case "round-trip hostile bytes + reopen" `Quick
            test_store_roundtrip;
          Alcotest.test_case "first write wins" `Quick
            test_store_first_write_wins;
          Alcotest.test_case "stale salt invalidates" `Quick
            test_store_stale_salt_invalidates;
          Alcotest.test_case "torn tail healed" `Quick
            test_store_torn_tail_healed;
          Alcotest.test_case "checksum damage poisons suffix" `Quick
            test_store_checksum_poisons_suffix;
          Alcotest.test_case "refuses non-store files" `Quick
            test_store_refuses_non_store;
          Alcotest.test_case "clear and peek" `Quick test_store_clear_and_peek;
          Alcotest.test_case "single writer across processes" `Quick
            test_store_single_writer_lock;
          Alcotest.test_case "rejects newline salt" `Quick
            test_store_rejects_newline_salt;
        ] );
      ( "vcache",
        [
          Alcotest.test_case "backing hit/save protocol" `Quick
            test_vcache_backing_hit_and_save;
        ] );
      ( "fingerprint",
        [
          Alcotest.test_case "delimiter-injection regression" `Quick
            test_fingerprint_injection_regression;
          Alcotest.test_case "canonical and field-sensitive" `Quick
            test_fingerprint_canonical;
        ] );
      ( "pcache",
        [
          Alcotest.test_case "verdict codec + undetermined skipped" `Quick
            test_pcache_verdict_roundtrip;
          Alcotest.test_case "fresh handle answers from disk" `Quick
            test_pcache_mapping_cache_skips_engine;
          Alcotest.test_case "dwell table persists" `Quick
            test_dwell_table_persists;
          Alcotest.test_case "pre-prefilter salt retired" `Quick
            test_pcache_salt_bumped_for_prefilter;
        ] );
      ( "determinism", [ QCheck_alcotest.to_alcotest prop_cache_invisible ] );
    ]
