(* Tests for the fault-injection layer: the seeded PRNG, fault spec
   parsing, plan materialisation, the fault-aware engine path, the
   online guarantee monitor, budgeted verification fallback, and
   campaign determinism. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let plant =
  Control.Plant.make
    ~phi:(Linalg.Mat.of_rows [ [ 0.95; 0.08 ]; [ 0.; 0.9 ] ])
    ~gamma:[| 0.004; 0.08 |] ~c:[| 1.; 0. |] ~h:0.02

let gains =
  let kt = Control.Pole_place.place_tt plant [ (0.25, 0.); (0.3, 0.) ] in
  let ke =
    Control.Pole_place.place_et plant [ (0.82, 0.); (0.85, 0.); (0.3, 0.) ]
  in
  Control.Switched.make_gains plant ~kt ~ke

let app name = Core.App.make ~name ~plant ~gains ~r:120 ~j_star:25 ()

let two_apps = [ app "A"; app "B" ]
let two_names = [| ("A", 120); ("B", 120) |]

(* ------------------------------------------------------------------ *)
(* PRNG *)

let draw n rng = List.init n (fun _ -> Faults.Prng.next_int64 rng)

let test_prng_deterministic () =
  let a = draw 16 (Faults.Prng.create 42L) in
  let b = draw 16 (Faults.Prng.create 42L) in
  check_bool "same seed, same stream" true (a = b);
  let c = draw 16 (Faults.Prng.create 43L) in
  check_bool "different seed, different stream" true (a <> c)

let test_prng_split () =
  let parent = Faults.Prng.create 7L in
  let child0 = Faults.Prng.split parent 0 in
  let child1 = Faults.Prng.split parent 1 in
  check_bool "sibling streams differ" true (draw 8 child0 <> draw 8 child1);
  (* splitting and draining a child must not advance the parent *)
  let fresh = Faults.Prng.create 7L in
  check_bool "parent unperturbed by children" true
    (draw 8 parent = draw 8 fresh);
  (* the same child index always yields the same stream *)
  let again = Faults.Prng.split (Faults.Prng.create 7L) 0 in
  check_bool "child streams reproducible" true
    (draw 8 (Faults.Prng.split (Faults.Prng.create 7L) 0) = draw 8 again)

let test_prng_ranges () =
  let rng = Faults.Prng.create 1L in
  for _ = 1 to 1000 do
    let f = Faults.Prng.float rng in
    check_bool "float in [0,1)" true (f >= 0. && f < 1.);
    let i = Faults.Prng.int rng ~bound:7 in
    check_bool "int in [0,bound)" true (i >= 0 && i < 7)
  done;
  check_bool "bound <= 0 rejected" true
    (try
       ignore (Faults.Prng.int rng ~bound:0);
       false
     with Invalid_argument _ -> true);
  let rng = Faults.Prng.create 2L in
  check_bool "p=0 never fires" true
    (List.init 100 (fun _ -> Faults.Prng.bernoulli rng ~p:0.)
    |> List.for_all not);
  check_bool "p=1 always fires" true
    (List.init 100 (fun _ -> Faults.Prng.bernoulli rng ~p:1.)
    |> List.for_all Fun.id)

(* ------------------------------------------------------------------ *)
(* Spec *)

let test_spec_parse () =
  (match Faults.Spec.parse "blackout:3-7" with
  | Ok [ Faults.Spec.Blackout_window { first = 3; until = 7 } ] -> ()
  | Ok _ -> Alcotest.fail "wrong clause"
  | Error e -> Alcotest.fail e);
  (match Faults.Spec.parse "burst:A@10x3" with
  | Ok [ Faults.Spec.Burst { app = "A"; start = 10; count = 3 } ] -> ()
  | Ok _ -> Alcotest.fail "wrong clause"
  | Error e -> Alcotest.fail e);
  (match Faults.Spec.parse "link:p=0.05" with
  | Ok [ Faults.Spec.Link_loss_random { p = 0.05 } ] -> ()
  | Ok _ -> Alcotest.fail "wrong clause"
  | Error e -> Alcotest.fail e);
  (match Faults.Spec.parse "link:burst=0.2,len=4" with
  | Ok [ Faults.Spec.Link_burst { p = 0.2; len = 4 } ] -> ()
  | Ok _ -> Alcotest.fail "wrong clause"
  | Error e -> Alcotest.fail e);
  (match Faults.Spec.parse "link:burst=0.2" with
  | Ok [ Faults.Spec.Link_burst { p = 0.2; len = 3 } ] -> ()
  | Ok _ -> Alcotest.fail "default burst length is 3"
  | Error e -> Alcotest.fail e);
  match Faults.Spec.parse " blackout:p=0.1,len=4 ; loss:A@5 ; drop:B@p=0.2 " with
  | Ok
      [
        Faults.Spec.Blackout_random { p = 0.1; len = 4 };
        Faults.Spec.Et_loss_at { app = "A"; sample = 5 };
        Faults.Spec.Sensor_drop_random { app = "B"; p = 0.2 };
      ] -> ()
  | Ok _ -> Alcotest.fail "wrong clauses"
  | Error e -> Alcotest.fail e

let test_spec_roundtrip () =
  let specs =
    [
      "blackout:3-7";
      "blackout:p=0.02,len=4";
      "loss:A@5";
      "loss:A@p=0.1";
      "drop:B@9";
      "drop:B@p=0.25";
      "burst:A@10x3";
      "link:p=0.05";
      "link:burst=0.2";
      "link:burst=0.15,len=5";
      "blackout:0-2; loss:A@1; burst:B@4x2";
      "link:p=0.1; link:burst=0.2,len=2";
    ]
  in
  List.iter
    (fun s ->
      match Faults.Spec.parse s with
      | Error e -> Alcotest.fail (s ^ ": " ^ e)
      | Ok spec -> (
        match Faults.Spec.parse (Faults.Spec.to_string spec) with
        | Ok spec' -> check_bool ("round-trip " ^ s) true (spec = spec')
        | Error e -> Alcotest.fail ("re-parse " ^ s ^ ": " ^ e)))
    specs

let test_spec_errors () =
  let rejected s =
    match Faults.Spec.parse s with Error _ -> true | Ok _ -> false
  in
  check_bool "garbage" true (rejected "bogus");
  check_bool "probability > 1" true (rejected "blackout:p=1.5");
  check_bool "empty window" true (rejected "blackout:7-3");
  check_bool "negative sample" true (rejected "loss:A@-1");
  check_bool "link wants p=" true (rejected "link:0.1");
  check_bool "burst probability > 1" true (rejected "link:burst=1.5");
  check_bool "zero burst length" true (rejected "link:burst=0.2,len=0");
  check_bool "malformed burst length" true (rejected "link:burst=0.2,4")

let test_spec_is_random () =
  let parse s =
    match Faults.Spec.parse s with Ok v -> v | Error e -> Alcotest.fail e
  in
  check_bool "window is deterministic" false
    (Faults.Spec.is_random (parse "blackout:3-7; burst:A@10"));
  check_bool "probabilistic clause is random" true
    (Faults.Spec.is_random (parse "blackout:3-7; loss:A@p=0.1"));
  check_bool "link loss is random" true
    (Faults.Spec.is_random (parse "link:p=0.1"));
  check_bool "link burst is random" true
    (Faults.Spec.is_random (parse "link:burst=0.2"))

(* ------------------------------------------------------------------ *)
(* Plan materialisation *)

let materialize s ~horizon =
  match Faults.Spec.parse s with
  | Error e -> Alcotest.fail e
  | Ok spec ->
    (match
       Faults.Plan.materialize ~spec ~seed:42L ~apps:two_names ~horizon
     with
    | Ok plan -> plan
    | Error e -> Alcotest.fail e)

let test_plan_blackout_window () =
  let plan = materialize "blackout:3-7" ~horizon:20 in
  Array.iteri
    (fun k b ->
      check_bool (Printf.sprintf "sample %d" k) (k >= 3 && k < 7) b)
    plan.Faults.Plan.blackout;
  check_int "event count" 4 (Faults.Plan.event_count plan);
  check_bool "not empty" false (Faults.Plan.is_empty plan)

let test_plan_burst_spacing () =
  (* adversary at full rate: arrivals spaced exactly r = 120 apart *)
  let plan = materialize "burst:A@10x3" ~horizon:400 in
  check_bool "arrivals at 10, 130, 250 for app 0" true
    (plan.Faults.Plan.bursts = [ (10, 0); (130, 0); (250, 0) ])

let test_plan_point_faults () =
  let plan = materialize "loss:A@4; drop:B@9" ~horizon:20 in
  Array.iteri
    (fun id row ->
      Array.iteri
        (fun k b ->
          check_bool
            (Printf.sprintf "loss %d@%d" id k)
            (id = 0 && k = 4) b)
        row)
    plan.Faults.Plan.et_loss;
  Array.iteri
    (fun id row ->
      Array.iteri
        (fun k b ->
          check_bool
            (Printf.sprintf "drop %d@%d" id k)
            (id = 1 && k = 9) b)
        row)
    plan.Faults.Plan.sensor_drop

let test_plan_link_loss () =
  (* p=1 destroys every first attempt of every app; p=0 none *)
  let all = materialize "link:p=1" ~horizon:12 in
  Array.iter
    (fun row -> Array.iter (fun b -> check_bool "p=1 fires" true b) row)
    all.Faults.Plan.et_loss;
  let none = materialize "link:p=0" ~horizon:12 in
  Array.iter
    (fun row -> Array.iter (fun b -> check_bool "p=0 silent" false b) row)
    none.Faults.Plan.et_loss;
  check_bool "sensors untouched" true
    (Array.for_all (Array.for_all not) all.Faults.Plan.sensor_drop);
  (* the mask draws one sub-stream per app id, so app 0's losses do not
     move when the app list is extended *)
  let mask apps =
    match Faults.Spec.parse "link:p=0.3" with
    | Error e -> Alcotest.fail e
    | Ok spec ->
      (match Faults.Plan.materialize ~spec ~seed:7L ~apps ~horizon:64 with
       | Ok plan -> plan.Faults.Plan.et_loss
       | Error e -> Alcotest.fail e)
  in
  let two = mask [| ("A", 120); ("B", 120) |]
  and three = mask [| ("A", 120); ("B", 120); ("C", 120) |] in
  check_bool "app 0 stream stable" true (two.(0) = three.(0));
  check_bool "app 1 stream stable" true (two.(1) = three.(1));
  check_bool "some losses at p=0.3" true
    (Array.exists (Array.exists Fun.id) two)

let test_plan_link_burst () =
  (* the clause leaves the sample masks alone and lands as (seed, p,
     len) for the replay bus, with a seed drawn from its own clause
     stream — clause-local determinism like every other clause *)
  let plan = materialize "link:burst=0.2,len=4" ~horizon:12 in
  check_bool "masks untouched" true
    (Array.for_all (Array.for_all not) plan.Faults.Plan.et_loss
    && Array.for_all (Array.for_all not) plan.Faults.Plan.sensor_drop);
  check_bool "burst-only plan is not empty" false
    (Faults.Plan.is_empty plan);
  check_int "mask events unchanged" 0 (Faults.Plan.event_count plan);
  (match plan.Faults.Plan.link_burst with
   | [ (_, 0.2, 4) ] -> ()
   | _ -> Alcotest.fail "expected one (seed, 0.2, 4) burst entry");
  check_bool "same (spec, seed) => same burst seed" true
    (plan.Faults.Plan.link_burst
    = (materialize "link:burst=0.2,len=4" ~horizon:12).Faults.Plan.link_burst);
  (* a preceding clause must not reshuffle the burst clause's stream *)
  let shifted = materialize "loss:A@3; link:burst=0.2,len=4" ~horizon:12 in
  check_bool "clause index keys the stream" true
    (List.length shifted.Faults.Plan.link_burst = 1)

let test_plan_deterministic () =
  let spec =
    match Faults.Spec.parse "blackout:p=0.05,len=3; loss:A@p=0.1" with
    | Ok v -> v
    | Error e -> Alcotest.fail e
  in
  let once () =
    match
      Faults.Plan.materialize ~spec ~seed:99L ~apps:two_names ~horizon:300
    with
    | Ok plan -> plan
    | Error e -> Alcotest.fail e
  in
  check_bool "same (spec, seed) => same plan" true (once () = once ())

let test_plan_errors () =
  let fails s ~horizon ~culprit =
    match Faults.Spec.parse s with
    | Error e -> Alcotest.fail e
    | Ok spec -> (
      match
        Faults.Plan.materialize ~spec ~seed:0L ~apps:two_names ~horizon
      with
      | Ok _ -> false
      | Error m -> contains m culprit)
  in
  check_bool "unknown app named" true (fails "loss:Z@4" ~horizon:20 ~culprit:"Z");
  check_bool "out-of-horizon sample" true
    (fails "loss:A@25" ~horizon:20 ~culprit:"25")

(* ------------------------------------------------------------------ *)
(* Fault-aware engine path + monitor *)

let test_zero_fault_run_matches_baseline () =
  let sc =
    Cosim.Scenario.make ~apps:two_apps
      ~disturbances:[ (0, "A"); (40, "B") ]
      ~horizon:200
  in
  let baseline = Cosim.Engine.run sc in
  let traced, summary = Cosim.Engine.run_with_faults sc in
  check_bool "trace identical to Engine.run" true (baseline = traced);
  (* the scheduled disturbances are delivered; no fault event occurred *)
  check_bool "scheduled arrivals delivered" true
    (summary.Cosim.Engine.injected = [ (0, 0); (40, 1) ]);
  check_bool "nothing suppressed or denied" true
    (summary.Cosim.Engine.suppressed = [] && summary.Cosim.Engine.denied = []);
  check_int "no blackout" 0 summary.Cosim.Engine.blackout_samples;
  check_int "no ET losses" 0 summary.Cosim.Engine.et_losses;
  check_int "no sensor drops" 0 summary.Cosim.Engine.sensor_drops;
  let report = Cosim.Monitor.check ~summary ~apps:two_apps traced in
  check_bool "verified group holds all guarantees" true report.Cosim.Monitor.ok;
  check_int "no violations" 0 (Cosim.Monitor.total_violations report)

let test_blackout_flags_affected_app () =
  (* deny the slot from A's disturbance until past its wait budget:
     precisely A must be flagged with a T*_w overrun, and B (never
     disturbed) must stay clean *)
  let twm = Core.App.t_w_max (app "A") in
  let horizon = 200 in
  let spec = [ Faults.Spec.Blackout_window { first = 10; until = 10 + twm + 4 } ] in
  let plan =
    match
      Faults.Plan.materialize ~spec ~seed:0L ~apps:two_names ~horizon
    with
    | Ok plan -> plan
    | Error e -> Alcotest.fail e
  in
  let sc =
    Cosim.Scenario.make ~apps:two_apps ~disturbances:[ (10, "A") ] ~horizon
  in
  let trace, summary = Cosim.Engine.run_with_faults ~plan sc in
  let report = Cosim.Monitor.check ~summary ~apps:two_apps trace in
  check_bool "violations detected" false report.Cosim.Monitor.ok;
  check_bool "at least one wait overrun" true
    (Cosim.Monitor.count report `Wait >= 1);
  match report.Cosim.Monitor.verdicts with
  | [ a; b ] ->
    check_bool "A flagged with the overrun" true
      (List.exists
         (function Cosim.Monitor.Wait_overrun _ -> true | _ -> false)
         a.Cosim.Monitor.violations);
    check_int "B stays clean" 0 (List.length b.Cosim.Monitor.violations)
  | _ -> Alcotest.fail "one verdict per application expected"

(* ------------------------------------------------------------------ *)
(* Budgeted verification + escalation *)

let test_dverify_state_budget () =
  let specs = Core.Mapping.specs_of_group two_apps in
  (match (Core.Dverify.verify specs).Core.Dverify.verdict with
  | Core.Dverify.Safe -> ()
  | _ -> Alcotest.fail "unbudgeted verification of a safe group");
  match (Core.Dverify.verify ~max_states:1 specs).Core.Dverify.verdict with
  | Core.Dverify.Undetermined (Core.Dverify.State_budget 1) -> ()
  | Core.Dverify.Undetermined _ -> Alcotest.fail "wrong budget reason"
  | Core.Dverify.Safe | Core.Dverify.Unsafe _ ->
    Alcotest.fail "a spent budget must yield Undetermined, never a verdict"

let test_escalating_verifier () =
  let specs = Core.Mapping.specs_of_group two_apps in
  (match Core.Mapping.escalating () specs with
  | `Safe -> ()
  | `Unsafe | `Undetermined _ -> Alcotest.fail "unbudgeted escalation decides");
  match Core.Mapping.escalating ~max_states:1 () specs with
  | `Undetermined reason ->
    check_bool "reports both stages" true
      (contains reason "exact" && contains reason "bounded")
  | `Safe | `Unsafe -> Alcotest.fail "budget of 1 state cannot decide"

let test_first_fit_counts_undetermined () =
  let verifier _ = `Undetermined "always gives up" in
  let apps = [ app "A"; app "B"; app "C" ] in
  let outcome = Core.Mapping.first_fit ~verifier apps in
  (* never packed without a safety proof: every app in its own slot *)
  check_int "singleton slots" 3 (List.length outcome.Core.Mapping.slots);
  check_bool "undetermined calls counted" true
    (outcome.Core.Mapping.undetermined > 0
    && outcome.Core.Mapping.undetermined <= outcome.Core.Mapping.verifications)

(* ------------------------------------------------------------------ *)
(* Campaign *)

let test_campaign_deterministic () =
  let spec =
    match Faults.Spec.parse "blackout:p=0.05,len=3" with
    | Ok v -> v
    | Error e -> Alcotest.fail e
  in
  let once () =
    match
      Cosim.Campaign.run ~spec ~seed:42L ~runs:3 ~horizon:150 [ two_apps ]
    with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let s1 = once () and s2 = once () in
  check_bool "same arguments, same summary" true (s1 = s2);
  (match s1.Cosim.Campaign.slots with
  | [ g ] ->
    check_int "runs recorded" 3 g.Cosim.Campaign.runs;
    check_bool "accounting consistent" true
      (s1.Cosim.Campaign.total_violations
      = g.Cosim.Campaign.j_star + g.Cosim.Campaign.wait + g.Cosim.Campaign.dwell
        + g.Cosim.Campaign.suppressed)
  | _ -> Alcotest.fail "one slot summary expected");
  let other =
    match
      Cosim.Campaign.run ~spec ~seed:7L ~runs:3 ~horizon:150 [ two_apps ]
    with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  check_bool "seed reaches the fault draws" true
    (s1.Cosim.Campaign.slots <> other.Cosim.Campaign.slots)

let test_campaign_rejects_unknown_app () =
  let spec =
    match Faults.Spec.parse "loss:Z@4" with
    | Ok v -> v
    | Error e -> Alcotest.fail e
  in
  match Cosim.Campaign.run ~spec ~seed:1L ~runs:1 ~horizon:50 [ two_apps ] with
  | Ok _ -> Alcotest.fail "unknown app must not materialise"
  | Error m -> check_bool "names the culprit" true (contains m "Z")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "faults"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "split streams" `Quick test_prng_split;
          Alcotest.test_case "ranges" `Quick test_prng_ranges;
        ] );
      ( "spec",
        [
          Alcotest.test_case "parse" `Quick test_spec_parse;
          Alcotest.test_case "round-trip" `Quick test_spec_roundtrip;
          Alcotest.test_case "errors" `Quick test_spec_errors;
          Alcotest.test_case "is_random" `Quick test_spec_is_random;
        ] );
      ( "plan",
        [
          Alcotest.test_case "blackout window" `Quick test_plan_blackout_window;
          Alcotest.test_case "burst spacing" `Quick test_plan_burst_spacing;
          Alcotest.test_case "point faults" `Quick test_plan_point_faults;
          Alcotest.test_case "link loss masks" `Quick test_plan_link_loss;
          Alcotest.test_case "link burst entries" `Quick test_plan_link_burst;
          Alcotest.test_case "deterministic" `Quick test_plan_deterministic;
          Alcotest.test_case "errors" `Quick test_plan_errors;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "zero-fault run matches baseline" `Quick
            test_zero_fault_run_matches_baseline;
          Alcotest.test_case "blackout flags the affected app" `Quick
            test_blackout_flags_affected_app;
        ] );
      ( "budgets",
        [
          Alcotest.test_case "state budget undetermined" `Quick
            test_dverify_state_budget;
          Alcotest.test_case "escalating verifier" `Quick
            test_escalating_verifier;
          Alcotest.test_case "first-fit counts undetermined" `Quick
            test_first_fit_counts_undetermined;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "deterministic" `Quick test_campaign_deterministic;
          Alcotest.test_case "rejects unknown app" `Quick
            test_campaign_rejects_unknown_app;
        ] );
    ]
