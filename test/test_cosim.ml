(* Tests for the co-simulation layer: scenarios, the engine, and trace
   analysis. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let plant =
  Control.Plant.make
    ~phi:(Linalg.Mat.of_rows [ [ 0.95; 0.08 ]; [ 0.; 0.9 ] ])
    ~gamma:[| 0.004; 0.08 |] ~c:[| 1.; 0. |] ~h:0.02

let gains =
  let kt = Control.Pole_place.place_tt plant [ (0.25, 0.); (0.3, 0.) ] in
  let ke =
    Control.Pole_place.place_et plant [ (0.82, 0.); (0.85, 0.); (0.3, 0.) ]
  in
  Control.Switched.make_gains plant ~kt ~ke

let app name = Core.App.make ~name ~plant ~gains ~r:120 ~j_star:25 ()

let two_apps = [ app "A"; app "B" ]

let astr_contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Scenario *)

let test_scenario_validation () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  check_bool "unknown app" true
    (raises (fun () ->
         ignore
           (Cosim.Scenario.make ~apps:two_apps ~disturbances:[ (0, "Z") ]
              ~horizon:10)));
  check_bool "out of horizon" true
    (raises (fun () ->
         ignore
           (Cosim.Scenario.make ~apps:two_apps ~disturbances:[ (10, "A") ]
              ~horizon:10)));
  check_bool "violates r" true
    (raises (fun () ->
         ignore
           (Cosim.Scenario.make ~apps:two_apps
              ~disturbances:[ (0, "A"); (5, "A") ]
              ~horizon:200)));
  check_bool "respects r" true
    (try
       ignore
         (Cosim.Scenario.make ~apps:two_apps
            ~disturbances:[ (0, "A"); (120, "A") ]
            ~horizon:200);
       true
     with Invalid_argument _ -> false)

let test_scenario_index () =
  let sc = Cosim.Scenario.make ~apps:two_apps ~disturbances:[] ~horizon:5 in
  check_int "A" 0 (Cosim.Scenario.app_index sc "A");
  check_int "B" 1 (Cosim.Scenario.app_index sc "B");
  (* an unknown name must be reported with the names the scenario does
     have, not a bare Not_found *)
  check_bool "missing" true
    (try
       ignore (Cosim.Scenario.app_index sc "Z");
       false
     with Invalid_argument m ->
       check_bool "names the culprit" true
         (astr_contains m "Z" && astr_contains m "A" && astr_contains m "B");
       true)

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_quiet_run () =
  let sc = Cosim.Scenario.make ~apps:two_apps ~disturbances:[] ~horizon:20 in
  let tr = Cosim.Engine.run sc in
  check_bool "all outputs zero" true
    (Array.for_all (fun row -> Array.for_all (fun y -> y = 0.) row) tr.Cosim.Trace.outputs);
  check_bool "slot never owned" true
    (Array.for_all (fun o -> o = None) tr.Cosim.Trace.owner)

let test_engine_single_disturbance () =
  let sc =
    Cosim.Scenario.make ~apps:two_apps ~disturbances:[ (3, "A") ] ~horizon:80
  in
  let tr = Cosim.Engine.run sc in
  check_bool "y jumps at 3" true (Float.abs (tr.Cosim.Trace.outputs.(0).(3) -. 1.) < 1e-12);
  check_bool "A owns at 3" true (tr.Cosim.Trace.owner.(3) = Some 0);
  (match Cosim.Trace.settling_after tr ~id:0 ~sample:3 with
   | Some j -> check_bool "meets budget" true (j <= 25)
   | None -> Alcotest.fail "must settle");
  check_bool "B untouched" true
    (Array.for_all (fun y -> y = 0.) tr.Cosim.Trace.outputs.(1));
  check_bool "meets requirements" true (Cosim.Trace.meets_requirements tr two_apps)

let test_engine_matches_strategy_sim () =
  (* an uncontended co-simulation must equal the open-loop strategy
     simulation with t_w = 0 and t_dw = T+_dw(0) *)
  let a = app "A" in
  let sc = Cosim.Scenario.make ~apps:[ a ] ~disturbances:[ (0, "A") ] ~horizon:60 in
  let tr = Cosim.Engine.run sc in
  let t_dw = a.Core.App.table.Core.Dwell.t_dw_max.(0) in
  let reference = Core.Strategy.response plant gains ~t_w:0 ~t_dw in
  Array.iteri
    (fun k y ->
      check_bool (Printf.sprintf "sample %d" k) true
        (Float.abs (y -. reference.(k)) < 1e-9))
    tr.Cosim.Trace.outputs.(0)

let test_engine_contention_preempts () =
  (* B arrives while A dwells: A must be preempted at its min dwell *)
  let a = app "A" and b = app "B" in
  let sc =
    Cosim.Scenario.make ~apps:[ a; b ]
      ~disturbances:[ (0, "A"); (1, "B") ]
      ~horizon:100
  in
  let tr = Cosim.Engine.run sc in
  let dmin = a.Core.App.table.Core.Dwell.t_dw_min.(0) in
  check_int "A holds exactly its min dwell" dmin (Cosim.Trace.tt_samples tr ~id:0);
  check_bool "both meet budgets" true (Cosim.Trace.meets_requirements tr [ a; b ])

let test_trace_intervals_and_rows () =
  let sc =
    Cosim.Scenario.make ~apps:two_apps
      ~disturbances:[ (0, "A"); (1, "B") ]
      ~horizon:50
  in
  let tr = Cosim.Engine.run sc in
  let intervals = Cosim.Trace.owner_intervals tr in
  check_bool "at least two intervals" true (List.length intervals >= 2);
  (* intervals tile the ownership trace *)
  List.iter
    (fun (id, a, b) ->
      check_bool "interval consistent" true (a <= b);
      for k = a to b do
        check_bool "owner matches" true (tr.Cosim.Trace.owner.(k) = Some id)
      done)
    intervals;
  let rows = Cosim.Trace.to_rows tr ~stride:10 in
  check_int "header + 5 rows" 6 (List.length rows)

let test_trace_gantt () =
  let sc =
    Cosim.Scenario.make ~apps:two_apps ~disturbances:[ (0, "A") ] ~horizon:10
  in
  let tr = Cosim.Engine.run sc in
  match Cosim.Trace.to_gantt tr with
  | [ a_line; b_line ] ->
    (* A: disturbed at 0 (the '*' wins over '#'), then owns the slot *)
    check_bool "A row marks disturbance" true
      (String.length a_line > 3 && String.contains a_line '*');
    check_bool "A owns" true (String.contains a_line '#');
    check_bool "B idle" false (String.contains b_line '#')
  | _ -> Alcotest.fail "two rows expected"

(* ------------------------------------------------------------------ *)
(* System *)

let test_system_routes_disturbances () =
  let a = app "A" and b = app "B" and c = app "C" in
  let report =
    Cosim.System.run
      ~slots:[ [ a; b ]; [ c ] ]
      ~disturbances:[ (0, "A"); (0, "C"); (5, "B") ]
      ~horizon:80 ()
  in
  check_int "two slots" 2 (List.length report.Cosim.System.slots);
  check_int "three settlings" 3 (List.length report.Cosim.System.settlings);
  check_bool "all met" true report.Cosim.System.all_requirements_met;
  (* C shares no slot, so it is never preempted: full dwell *)
  let c_tt = List.assoc "C" report.Cosim.System.tt_samples in
  check_int "C uses T+dw(0)" c.Core.App.table.Core.Dwell.t_dw_max.(0) c_tt

let test_system_validation () =
  let a = app "A" and b = app "B" in
  let raises f = try f (); false with Invalid_argument _ -> true in
  check_bool "duplicate app" true
    (raises (fun () ->
         ignore
           (Cosim.System.run ~slots:[ [ a ]; [ a ] ] ~disturbances:[]
              ~horizon:10 ())));
  check_bool "unmapped app" true
    (raises (fun () ->
         ignore
           (Cosim.System.run ~slots:[ [ a; b ] ]
              ~disturbances:[ (0, "Z") ] ~horizon:10 ())))

let test_system_of_mapping () =
  let apps = [ app "A"; app "B" ] in
  let outcome = Core.Mapping.first_fit apps in
  let report =
    Cosim.System.of_mapping outcome ~disturbances:[ (0, "A"); (1, "B") ]
      ~horizon:80
  in
  check_bool "all met" true report.Cosim.System.all_requirements_met

(* ------------------------------------------------------------------ *)
(* Bus-level validation *)

let test_bus_check_facts_hold () =
  let a = app "A" and b = app "B" and c = app "C" in
  let report =
    Cosim.System.run
      ~slots:[ [ a; b ]; [ c ] ]
      ~disturbances:[ (0, "A"); (0, "C"); (5, "B") ]
      ~horizon:60 ()
  in
  let r =
    Cosim.System.bus_validate ~bus:Backends.Flexray_backend.default report
  in
  check_bool "all delivered" true r.Cosim.Bus_check.all_delivered;
  check_bool "TT deterministic" true r.Cosim.Bus_check.tt_deterministic;
  check_bool "ET one-sample" true r.Cosim.Bus_check.one_sample_ok;
  check_bool "both classes used" true
    (r.Cosim.Bus_check.tt_count > 0 && r.Cosim.Bus_check.et_count > 0);
  check_int "conservation" r.Cosim.Bus_check.messages
    (r.Cosim.Bus_check.tt_count + r.Cosim.Bus_check.et_count)

let test_bus_check_validation () =
  let a = app "A" in
  let report =
    Cosim.System.run ~slots:[ [ a ] ] ~disturbances:[] ~horizon:5 ()
  in
  let tiny =
    Backends.Flexray_backend.configured
      (Flexray.Config.make ~static_slot_count:1 ~static_slot_us:10
         ~minislot_count:4 ~minislot_us:2)
  in
  check_bool "segment too small" true
    (try
       ignore (Cosim.System.bus_validate ~bus:tiny report);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Export *)

let test_export_trace_csv () =
  let sc =
    Cosim.Scenario.make ~apps:two_apps ~disturbances:[ (0, "A") ] ~horizon:5
  in
  let tr = Cosim.Engine.run sc in
  let csv = Cosim.Export.trace_csv tr in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check_int "header + 5 rows" 6 (List.length lines);
  check_bool "header" true
    (String.equal (List.hd lines) "t_s,sample,y_A,y_B,owner");
  (* the disturbed sample shows y_A = 1 and owner A *)
  check_bool "first data row" true
    (String.equal (List.nth lines 1) "0.0000,0,1,0,A")

let test_export_surface_and_dwell_csv () =
  let surface = [ (0, 1, Some 10); (0, 2, None) ] in
  let csv = Cosim.Export.surface_csv surface ~h:0.02 in
  check_bool "unsettled row empty" true
    (String.equal (List.nth (String.split_on_char '\n' csv) 2) "0,2,,");
  let a = app "A" in
  let csv = Cosim.Export.dwell_csv a.Core.App.table ~h:0.02 in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check_int "rows"
    (Array.length a.Core.App.table.Core.Dwell.t_dw_min + 1)
    (List.length lines)

let test_export_write_file () =
  let path = Filename.temp_file "cpsdim" ".csv" in
  (match Cosim.Export.write_file ~path "a,b\n1,2\n" with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  check_bool "contents" true (String.equal line "a,b");
  check_bool "bad path errors" true
    (Result.is_error
       (Cosim.Export.write_file ~path:"/nonexistent-dir/x.csv" "x"))

let () =
  Alcotest.run "cosim"
    [
      ( "scenario",
        [
          Alcotest.test_case "validation" `Quick test_scenario_validation;
          Alcotest.test_case "index" `Quick test_scenario_index;
        ] );
      ( "engine",
        [
          Alcotest.test_case "quiet run" `Quick test_engine_quiet_run;
          Alcotest.test_case "single disturbance" `Quick test_engine_single_disturbance;
          Alcotest.test_case "matches strategy sim" `Quick test_engine_matches_strategy_sim;
          Alcotest.test_case "contention preempts" `Quick test_engine_contention_preempts;
        ] );
      ( "trace",
        [
          Alcotest.test_case "intervals and rows" `Quick test_trace_intervals_and_rows;
          Alcotest.test_case "gantt" `Quick test_trace_gantt;
        ] );
      ( "system",
        [
          Alcotest.test_case "routes disturbances" `Quick test_system_routes_disturbances;
          Alcotest.test_case "validation" `Quick test_system_validation;
          Alcotest.test_case "of_mapping" `Quick test_system_of_mapping;
        ] );
      ( "bus check",
        [
          Alcotest.test_case "network facts hold" `Quick test_bus_check_facts_hold;
          Alcotest.test_case "validation" `Quick test_bus_check_validation;
        ] );
      ( "export",
        [
          Alcotest.test_case "trace csv" `Quick test_export_trace_csv;
          Alcotest.test_case "surface and dwell csv" `Quick test_export_surface_and_dwell_csv;
          Alcotest.test_case "write file" `Quick test_export_write_file;
        ] );
    ]
