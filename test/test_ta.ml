(* Tests for the timed-automata substrate: DBM operations and zone
   semantics, automata construction, and zone-graph reachability on
   small hand-built models. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Dbm *)

let test_bounds () =
  check_bool "lt < le" true (Ta.Dbm.bound_compare (Ta.Dbm.lt 3) (Ta.Dbm.le 3) < 0);
  check_bool "le 3 < lt 4" true
    (Ta.Dbm.bound_compare (Ta.Dbm.le 3) (Ta.Dbm.lt 4) < 0);
  check_bool "inf greatest" true
    (Ta.Dbm.bound_compare (Ta.Dbm.le 1_000_000) Ta.Dbm.inf < 0);
  check_bool "add strictness" true
    (Ta.Dbm.bound_add (Ta.Dbm.lt 2) (Ta.Dbm.le 3) = Ta.Dbm.lt 5);
  check_bool "add weak" true
    (Ta.Dbm.bound_add (Ta.Dbm.le 2) (Ta.Dbm.le 3) = Ta.Dbm.le 5);
  check_bool "add inf" true (Ta.Dbm.bound_add Ta.Dbm.inf (Ta.Dbm.le 1) = Ta.Dbm.inf)

let test_zero_zone () =
  let z = Ta.Dbm.zero 2 in
  check_bool "not empty" false (Ta.Dbm.is_empty z);
  check_bool "contains origin" true (Ta.Dbm.contains_point z [| 0; 0; 0 |]);
  check_bool "excludes others" false (Ta.Dbm.contains_point z [| 0; 1; 0 |])

let test_up_and_constrain () =
  let z = Ta.Dbm.up (Ta.Dbm.zero 2) in
  (* after delay both clocks advance together *)
  check_bool "diagonal point" true (Ta.Dbm.contains_point z [| 0; 5; 5 |]);
  check_bool "not off-diagonal" false (Ta.Dbm.contains_point z [| 0; 5; 3 |]);
  let z = Ta.Dbm.constrain z 1 0 (Ta.Dbm.le 3) in
  check_bool "bounded" true (Ta.Dbm.contains_point z [| 0; 3; 3 |]);
  check_bool "beyond bound" false (Ta.Dbm.contains_point z [| 0; 4; 4 |])

let test_reset () =
  let z = Ta.Dbm.up (Ta.Dbm.zero 2) in
  let z = Ta.Dbm.constrain z 1 0 (Ta.Dbm.le 5) in
  let z = Ta.Dbm.reset z 2 0 in
  (* clock 2 is 0, clock 1 keeps its value *)
  check_bool "reset point" true (Ta.Dbm.contains_point z [| 0; 4; 0 |]);
  check_bool "old diagonal gone" false (Ta.Dbm.contains_point z [| 0; 4; 4 |])

let test_empty_intersection () =
  let z = Ta.Dbm.zero 1 in
  let z = Ta.Dbm.constrain z 1 0 (Ta.Dbm.le 2) in
  let z = Ta.Dbm.constrain z 0 1 (Ta.Dbm.le (-3)) in
  (* x <= 2 and x >= 3 *)
  check_bool "empty" true (Ta.Dbm.is_empty z)

let test_includes () =
  let small = Ta.Dbm.constrain (Ta.Dbm.up (Ta.Dbm.zero 1)) 1 0 (Ta.Dbm.le 2) in
  let big = Ta.Dbm.constrain (Ta.Dbm.up (Ta.Dbm.zero 1)) 1 0 (Ta.Dbm.le 5) in
  check_bool "big contains small" true (Ta.Dbm.includes big small);
  check_bool "small lacks big" false (Ta.Dbm.includes small big);
  check_bool "self" true (Ta.Dbm.includes big big)

let test_intersect () =
  let a = Ta.Dbm.constrain (Ta.Dbm.up (Ta.Dbm.zero 1)) 1 0 (Ta.Dbm.le 5) in
  let b =
    Ta.Dbm.constrain (Ta.Dbm.up (Ta.Dbm.zero 1)) 0 1 (Ta.Dbm.le (-3))
  in
  let c = Ta.Dbm.intersect a b in
  check_bool "3..5 contains 4" true (Ta.Dbm.contains_point c [| 0; 4 |]);
  check_bool "excludes 2" false (Ta.Dbm.contains_point c [| 0; 2 |]);
  check_bool "excludes 6" false (Ta.Dbm.contains_point c [| 0; 6 |])

let test_extrapolation_idempotent () =
  let z = Ta.Dbm.constrain (Ta.Dbm.up (Ta.Dbm.zero 2)) 1 0 (Ta.Dbm.le 100) in
  let m = [| 0; 10; 10 |] in
  let e1 = Ta.Dbm.extrapolate z m in
  let e2 = Ta.Dbm.extrapolate e1 m in
  check_bool "idempotent" true (Ta.Dbm.equal e1 e2);
  check_bool "widens" true (Ta.Dbm.includes e1 z)

let test_universe () =
  let u = Ta.Dbm.universe 2 in
  check_bool "contains anything" true (Ta.Dbm.contains_point u [| 0; 7; 3 |]);
  check_bool "no negatives" true (Ta.Dbm.includes u (Ta.Dbm.zero 2))

(* ------------------------------------------------------------------ *)
(* Reachability on hand-built automata *)

let simple_net () =
  (* one automaton, one clock: A --(x>=2, reset x)--> B --(x>=3)--> C *)
  let open Ta.Automaton in
  let a =
    make ~name:"M"
      ~locations:[| location "A"; location "B"; location "C" |]
      ~initial:0
      ~edges:
        [
          edge ~src:0 ~dst:1 ~guards:[ guard_const 1 Ge 2 ] ~resets:[ (1, 0) ] ();
          edge ~src:1 ~dst:2 ~guards:[ guard_const 1 Ge 3 ] ();
        ]
  in
  Ta.Network.make ~automata:[| a |] ~clock_names:[| "x" |] ~channel_names:[||]
    ~initial_store:[||] ~clock_maxima:[| 3 |]

let test_reach_simple () =
  let net = simple_net () in
  let r = Ta.Reach.run net (fun ~locs ~store:_ -> locs.(0) = 2) in
  check_bool "C reachable" true
    (match r.Ta.Reach.outcome with Ta.Reach.Hit _ -> true | _ -> false);
  check_int "trace length" 2 (List.length r.Ta.Reach.trace)

let test_reach_invariant_blocks () =
  (* invariant x <= 1 makes the x>=2 guard unreachable *)
  let open Ta.Automaton in
  let a =
    make ~name:"M"
      ~locations:
        [| location ~invariant:[ guard_const 1 Le 1 ] "A"; location "B" |]
      ~initial:0
      ~edges:[ edge ~src:0 ~dst:1 ~guards:[ guard_const 1 Ge 2 ] () ]
  in
  let net =
    Ta.Network.make ~automata:[| a |] ~clock_names:[| "x" |]
      ~channel_names:[||] ~initial_store:[||] ~clock_maxima:[| 2 |]
  in
  check_bool "unreachable" false
    (Ta.Reach.reachable net (fun ~locs ~store:_ -> locs.(0) = 1))

let test_sync_handshake () =
  (* sender fires c! when x == 2; receiver moves only on c? *)
  let open Ta.Automaton in
  let sender =
    make ~name:"S"
      ~locations:[| location ~invariant:[ guard_const 1 Le 2 ] "s0"; location "s1" |]
      ~initial:0
      ~edges:[ edge ~src:0 ~dst:1 ~guards:[ guard_const 1 Eq 2 ] ~sync:(Send 0) () ]
  in
  let receiver =
    make ~name:"R"
      ~locations:[| location "r0"; location "r1" |]
      ~initial:0
      ~edges:[ edge ~src:0 ~dst:1 ~sync:(Recv 0) () ]
  in
  let net =
    Ta.Network.make ~automata:[| sender; receiver |] ~clock_names:[| "x" |]
      ~channel_names:[| "c" |] ~initial_store:[||] ~clock_maxima:[| 2 |]
  in
  let r =
    Ta.Reach.run net (fun ~locs ~store:_ -> locs.(0) = 1 && locs.(1) = 1)
  in
  check_bool "handshake fires" true
    (match r.Ta.Reach.outcome with Ta.Reach.Hit _ -> true | _ -> false);
  (* receiver can never move alone *)
  check_bool "no lone receive" false
    (Ta.Reach.reachable net (fun ~locs ~store:_ -> locs.(0) = 0 && locs.(1) = 1))

let test_committed_priority () =
  (* while automaton P sits in its committed location, Q must not move:
     P marks the phase in store.(0) (1 = inside pc, 2 = done), and Q
     snapshots that phase when it fires.  A snapshot of 1 would mean Q
     moved under a committed P. *)
  let open Ta.Automaton in
  let p =
    make ~name:"P"
      ~locations:[| location "p0"; location ~kind:Committed "pc"; location "p2" |]
      ~initial:0
      ~edges:
        [
          edge ~src:0 ~dst:1
            ~update:(fun s ->
              let s = Array.copy s in
              s.(0) <- 1;
              s)
            ();
          edge ~src:1 ~dst:2
            ~update:(fun s ->
              let s = Array.copy s in
              s.(0) <- 2;
              s)
            ();
        ]
  in
  let q =
    make ~name:"Q"
      ~locations:[| location "q0"; location "q1" |]
      ~initial:0
      ~edges:
        [
          edge ~src:0 ~dst:1
            ~update:(fun s ->
              let s = Array.copy s in
              s.(1) <- s.(0);
              s)
            ();
        ]
  in
  let net =
    Ta.Network.make ~automata:[| p; q |] ~clock_names:[||] ~channel_names:[||]
      ~initial_store:[| 0; 0 |] ~clock_maxima:[||]
  in
  check_bool "no Q move under committed P" false
    (Ta.Reach.reachable net (fun ~locs ~store -> locs.(1) = 1 && store.(1) = 1));
  check_bool "Q can move before or after" true
    (Ta.Reach.reachable net (fun ~locs ~store -> locs.(1) = 1 && store.(1) = 0)
     && Ta.Reach.reachable net (fun ~locs ~store -> locs.(1) = 1 && store.(1) = 2))

let test_urgent_blocks_delay () =
  (* urgent location: the edge guard x >= 1 can never be satisfied if
     we enter the location at x = 0, because no time may pass *)
  let open Ta.Automaton in
  let a =
    make ~name:"U"
      ~locations:
        [| location "a0"; location ~kind:Urgent "a1"; location "a2" |]
      ~initial:0
      ~edges:
        [
          edge ~src:0 ~dst:1 ~guards:[ guard_const 1 Eq 0 ] ~resets:[ (1, 0) ] ();
          edge ~src:1 ~dst:2 ~guards:[ guard_const 1 Ge 1 ] ();
        ]
  in
  let net =
    Ta.Network.make ~automata:[| a |] ~clock_names:[| "x" |] ~channel_names:[||]
      ~initial_store:[||] ~clock_maxima:[| 1 |]
  in
  check_bool "a2 unreachable" false
    (Ta.Reach.reachable net (fun ~locs ~store:_ -> locs.(0) = 2))

let test_data_guard_and_update () =
  let open Ta.Automaton in
  let a =
    make ~name:"D"
      ~locations:[| location "d0"; location "d1" |]
      ~initial:0
      ~edges:
        [
          edge ~src:0 ~dst:0
            ~data_guard:(fun s -> s.(0) < 3)
            ~update:(fun s ->
              let s = Array.copy s in
              s.(0) <- s.(0) + 1;
              s)
            ();
          edge ~src:0 ~dst:1 ~data_guard:(fun s -> s.(0) = 3) ();
        ]
  in
  let net =
    Ta.Network.make ~automata:[| a |] ~clock_names:[||] ~channel_names:[||]
      ~initial_store:[| 0 |] ~clock_maxima:[||]
  in
  let r = Ta.Reach.run net (fun ~locs ~store -> locs.(0) = 1 && store.(0) = 3) in
  check_bool "counts to three" true
    (match r.Ta.Reach.outcome with Ta.Reach.Hit _ -> true | _ -> false);
  check_bool "never beyond three" false
    (Ta.Reach.reachable net (fun ~locs:_ ~store -> store.(0) > 3))

let test_max_states_cap () =
  (* unbounded counter: hits the cap and reports undecided-by-count *)
  let open Ta.Automaton in
  let a =
    make ~name:"Inf"
      ~locations:[| location "l" |]
      ~initial:0
      ~edges:
        [
          edge ~src:0 ~dst:0
            ~update:(fun s ->
              let s = Array.copy s in
              s.(0) <- s.(0) + 1;
              s)
            ();
        ]
  in
  let net =
    Ta.Network.make ~automata:[| a |] ~clock_names:[||] ~channel_names:[||]
      ~initial_store:[| 0 |] ~clock_maxima:[||]
  in
  let r = Ta.Reach.run ~max_states:100 net (fun ~locs:_ ~store:_ -> false) in
  check_bool "capped" true (r.Ta.Reach.stats.Ta.Reach.states >= 100);
  (* the cap must be reported as exhaustion, not as unreachability *)
  check_bool "explicitly exhausted" true
    (r.Ta.Reach.outcome = Ta.Reach.Exhausted (Ta.Reach.Max_states 100));
  check_bool "boolean helper refuses to answer" true
    (try
       ignore (Ta.Reach.reachable ~max_states:100 net (fun ~locs:_ ~store:_ -> false));
       false
     with Failure _ -> true)

(* ------------------------------------------------------------------ *)
(* Concrete execution *)

let test_concrete_simple_run () =
  let net = simple_net () in
  let reached = ref (-1) in
  let st =
    Ta.Concrete.run net Ta.Concrete.first_enabled ~until:8 (fun st _ ->
        if st.Ta.Concrete.locs.(0) = 2 && !reached < 0 then
          reached := st.Ta.Concrete.time)
  in
  check_int "final loc" 2 st.Ta.Concrete.locs.(0);
  (* x >= 2 fires at time 2, reset, then x >= 3 fires at time 5 *)
  check_int "C reached at 5" 5 !reached

let test_concrete_invariant_forces_action () =
  (* invariant x <= 1 with an edge at x == 1: a refusing policy must
     get Stuck, first_enabled must proceed *)
  let open Ta.Automaton in
  let a =
    make ~name:"T"
      ~locations:[| location ~invariant:[ guard_const 1 Le 1 ] "a"; location "b" |]
      ~initial:0
      ~edges:[ edge ~src:0 ~dst:1 ~guards:[ guard_const 1 Eq 1 ] () ]
  in
  let net =
    Ta.Network.make ~automata:[| a |] ~clock_names:[| "x" |] ~channel_names:[||]
      ~initial_store:[||] ~clock_maxima:[| 1 |]
  in
  let st = Ta.Concrete.run net Ta.Concrete.first_enabled ~until:2 (fun _ _ -> ()) in
  check_int "moved" 1 st.Ta.Concrete.locs.(0);
  check_bool "refusal sticks" true
    (try
       ignore (Ta.Concrete.run net (fun _ _ -> None) ~until:2 (fun _ _ -> ()));
       false
     with Ta.Concrete.Stuck _ -> true)

let test_concrete_sync_and_store () =
  let open Ta.Automaton in
  let sender =
    make ~name:"S"
      ~locations:[| location ~invariant:[ guard_const 1 Le 2 ] "s0"; location "s1" |]
      ~initial:0
      ~edges:
        [
          edge ~src:0 ~dst:1 ~guards:[ guard_const 1 Eq 2 ] ~sync:(Send 0)
            ~update:(fun s ->
              let s = Array.copy s in
              s.(0) <- 7;
              s)
            ();
        ]
  in
  let receiver =
    make ~name:"R"
      ~locations:[| location "r0"; location "r1" |]
      ~initial:0
      ~edges:
        [
          edge ~src:0 ~dst:1 ~sync:(Recv 0)
            ~update:(fun s ->
              let s = Array.copy s in
              (* receiver sees the sender's update (UPPAAL order) *)
              s.(1) <- s.(0) + 1;
              s)
            ();
        ]
  in
  let net =
    Ta.Network.make ~automata:[| sender; receiver |] ~clock_names:[| "x" |]
      ~channel_names:[| "c" |] ~initial_store:[| 0; 0 |] ~clock_maxima:[| 2 |]
  in
  let st = Ta.Concrete.run net Ta.Concrete.first_enabled ~until:3 (fun _ _ -> ()) in
  check_int "sender wrote" 7 st.Ta.Concrete.store.(0);
  check_int "receiver saw it" 8 st.Ta.Concrete.store.(1)

let test_concrete_prefer_policy () =
  let open Ta.Automaton in
  let a =
    make ~name:"P"
      ~locations:[| location "a"; location "b"; location "c" |]
      ~initial:0
      ~edges:[ edge ~src:0 ~dst:1 (); edge ~src:0 ~dst:2 () ]
  in
  let net =
    Ta.Network.make ~automata:[| a |] ~clock_names:[||] ~channel_names:[||]
      ~initial_store:[||] ~clock_maxima:[||]
  in
  let state = Ta.Concrete.initial net in
  let actions = Ta.Concrete.enabled net state in
  check_int "two actions" 2 (List.length actions);
  match Ta.Concrete.prefer (fun l -> String.length l > 0 && l.[String.length l - 1] = 'c') state actions with
  | Some a -> check_bool "chose a -> c" true (String.length a.Ta.Concrete.label > 0)
  | None -> Alcotest.fail "expected a choice"

(* ------------------------------------------------------------------ *)
(* DBM properties *)

let gen_ops =
  (* a random sequence of constrain/reset/up operations over 3 clocks *)
  QCheck2.Gen.(
    list_size (int_range 0 12)
      (oneof
         [
           map2 (fun c v -> `Upper (c, v)) (int_range 1 3) (int_range 0 8);
           map2 (fun c v -> `Lower (c, v)) (int_range 1 3) (int_range 0 8);
           map2 (fun c v -> `Reset (c, v)) (int_range 1 3) (int_range 0 4);
           return `Up;
         ]))

let apply_op z = function
  | `Upper (c, v) -> Ta.Dbm.constrain z c 0 (Ta.Dbm.le v)
  | `Lower (c, v) -> Ta.Dbm.constrain z 0 c (Ta.Dbm.le (-v))
  | `Reset (c, v) -> if Ta.Dbm.is_empty z then z else Ta.Dbm.reset z c v
  | `Up -> Ta.Dbm.up z

let build_zone ops = List.fold_left apply_op (Ta.Dbm.zero 3) ops

let sample_points =
  (* a small grid of integer valuations *)
  List.concat_map
    (fun a ->
      List.concat_map
        (fun b -> List.map (fun c -> [| 0; a; b; c |]) [ 0; 1; 3; 7 ])
        [ 0; 1; 3; 7 ])
    [ 0; 1; 3; 7 ]

let prop_intersect_is_conjunction =
  QCheck2.Test.make ~name:"intersection = pointwise conjunction" ~count:80
    QCheck2.Gen.(pair gen_ops gen_ops)
    (fun (ops1, ops2) ->
      let z1 = build_zone ops1 and z2 = build_zone ops2 in
      let zi = Ta.Dbm.intersect z1 z2 in
      List.for_all
        (fun p ->
          Ta.Dbm.contains_point zi p
          = (Ta.Dbm.contains_point z1 p && Ta.Dbm.contains_point z2 p))
        sample_points)

let prop_includes_agrees_with_points =
  QCheck2.Test.make ~name:"inclusion implies pointwise subset" ~count:80
    QCheck2.Gen.(pair gen_ops gen_ops)
    (fun (ops1, ops2) ->
      let z1 = build_zone ops1 and z2 = build_zone ops2 in
      if Ta.Dbm.includes z1 z2 then
        List.for_all
          (fun p ->
            (not (Ta.Dbm.contains_point z2 p)) || Ta.Dbm.contains_point z1 p)
          sample_points
      else true)

let prop_up_preserves_and_extends =
  QCheck2.Test.make ~name:"up keeps all points and their futures" ~count:80
    gen_ops (fun ops ->
      let z = build_zone ops in
      let zu = Ta.Dbm.up z in
      List.for_all
        (fun p ->
          (not (Ta.Dbm.contains_point z p))
          || Ta.Dbm.contains_point zu p
             && Ta.Dbm.contains_point zu (Array.map (fun v -> v + 2) (Array.mapi (fun i v -> if i = 0 then v - 2 else v) p)))
        sample_points)

let prop_reset_sets_clock =
  QCheck2.Test.make ~name:"reset pins the clock to its value" ~count:80
    QCheck2.Gen.(triple gen_ops (int_range 1 3) (int_range 0 4))
    (fun (ops, c, v) ->
      let z = build_zone ops in
      if Ta.Dbm.is_empty z then true
      else begin
        let zr = Ta.Dbm.reset z c v in
        Ta.Dbm.is_empty zr
        || List.for_all
             (fun p ->
               (not (Ta.Dbm.contains_point zr p)) || p.(c) = v)
             sample_points
      end)

let prop_extrapolation_widens =
  QCheck2.Test.make ~name:"extrapolation only widens" ~count:80 gen_ops
    (fun ops ->
      let z = build_zone ops in
      let e = Ta.Dbm.extrapolate z [| 0; 4; 4; 4 |] in
      Ta.Dbm.includes e z)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_intersect_is_conjunction;
      prop_includes_agrees_with_points;
      prop_up_preserves_and_extends;
      prop_reset_sets_clock;
      prop_extrapolation_widens;
    ]

let () =
  Alcotest.run "ta"
    [
      ( "dbm",
        [
          Alcotest.test_case "bound encoding" `Quick test_bounds;
          Alcotest.test_case "zero zone" `Quick test_zero_zone;
          Alcotest.test_case "up and constrain" `Quick test_up_and_constrain;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "emptiness" `Quick test_empty_intersection;
          Alcotest.test_case "inclusion" `Quick test_includes;
          Alcotest.test_case "intersection" `Quick test_intersect;
          Alcotest.test_case "extrapolation" `Quick test_extrapolation_idempotent;
          Alcotest.test_case "universe" `Quick test_universe;
        ] );
      ( "reach",
        [
          Alcotest.test_case "simple chain" `Quick test_reach_simple;
          Alcotest.test_case "invariant blocks" `Quick test_reach_invariant_blocks;
          Alcotest.test_case "binary sync" `Quick test_sync_handshake;
          Alcotest.test_case "committed priority" `Quick test_committed_priority;
          Alcotest.test_case "urgent no delay" `Quick test_urgent_blocks_delay;
          Alcotest.test_case "data guard/update" `Quick test_data_guard_and_update;
          Alcotest.test_case "state cap" `Quick test_max_states_cap;
        ] );
      ( "concrete",
        [
          Alcotest.test_case "simple run" `Quick test_concrete_simple_run;
          Alcotest.test_case "invariant forces" `Quick test_concrete_invariant_forces_action;
          Alcotest.test_case "sync and store" `Quick test_concrete_sync_and_store;
          Alcotest.test_case "prefer policy" `Quick test_concrete_prefer_policy;
        ] );
      ("properties", props);
    ]
