(* cpsdim — control-aware dimensioning of TT slots for multi-resource
   CPS, after Roy et al., DAC 2019.

   Subcommands: tables, verify, map, simulate, sweep, bus. *)

let app_of_name ?cache name =
  let a = Casestudy.find name in
  Core.App.make ?cache ~name:a.Casestudy.name ~plant:a.Casestudy.plant
    ~gains:a.Casestudy.gains ~r:a.Casestudy.r ~j_star:a.Casestudy.j_star ()

(* dwell tables are computed inside App.make, so this is the CLI's
   "dwell-table" phase; resolve names one at a time so an unknown one
   can be reported by name instead of a bare Not_found *)
let parse_apps ?pcache names =
  Obs.Span.with_ "dwell-tables" @@ fun () ->
  let cache = Option.map Core.Pcache.dwell_cache pcache in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | name :: rest -> (
      match app_of_name ?cache name with
      | app -> go (app :: acc) rest
      | exception Not_found ->
        Error
          (`Msg
             (Printf.sprintf "unknown application %S (case study provides C1..C6)"
                name)))
  in
  go [] names

(* --cache PATH (or CPSDIM_CACHE): open the persistent verification
   store around the run; a refused file (not a store, IO error) aborts
   rather than silently running uncached *)
let with_pcache cache f =
  match cache with
  | None -> f None
  | Some path ->
    (match Core.Pcache.open_ ~path with
     | Error m -> Printf.eprintf "cpsdim: --cache %s: %s\n" path m; 1
     | Ok pc ->
       Fun.protect
         ~finally:(fun () -> Core.Pcache.close pc)
         (fun () -> f (Some pc)))

let mapping_cache_of = function
  | Some pc -> Core.Pcache.mapping_cache pc
  | None -> Core.Mapping.create_cache ()

(* --bus NAME resolves against the transport registry; None means "no
   replay at all", which is also what the nominal paths did before the
   transport seam existed *)
let bus_of_name = function
  | None -> Ok None
  | Some name ->
    (match Backends.find name with
     | Some _ -> Ok (Some (Backends.default_of name))
     | None ->
       Error
         (Printf.sprintf "unknown bus backend %S (have: %s)" name
            (String.concat ", " (Backends.names ()))))

(* the reference transport is silent when every fact holds, so --bus
   flexray output stays byte-identical to the pre-seam CLI *)
let bus_report_noteworthy bus (r : Cosim.Bus_check.result) =
  (not (String.equal (Bus.configured_name bus) "flexray"))
  || (not (Cosim.Bus_check.facts_hold r))
  || r.Cosim.Bus_check.lost_tx > 0

let pp_int_array ppf a =
  Format.fprintf ppf "[%s]"
    (String.concat "," (Array.to_list (Array.map string_of_int a)))

(* ------------------------------------------------------------------ *)
(* tables *)

let tables_cmd_run cache names =
  let names = if names = [] then [ "C1"; "C2"; "C3"; "C4"; "C5"; "C6" ] else names in
  with_pcache cache @@ fun pcache ->
  match parse_apps ?pcache names with
  | Error (`Msg m) -> prerr_endline m; 1
  | Ok apps ->
    List.iter
      (fun (a : Core.App.t) ->
        let t = a.Core.App.table in
        Format.printf
          "%s: r=%d J*=%d | J_T=%d J_E=%d T*_w=%d@.  T-_dw=%a@.  T+_dw=%a@."
          a.Core.App.name a.Core.App.r a.Core.App.j_star t.Core.Dwell.jt
          t.Core.Dwell.je t.Core.Dwell.t_w_max pp_int_array t.Core.Dwell.t_dw_min
          pp_int_array t.Core.Dwell.t_dw_max)
      apps;
    0

(* ------------------------------------------------------------------ *)
(* verify *)

(* --jobs: 0 (the cmdliner default) keeps whatever CPSDIM_JOBS or a
   previous call established; a positive value resizes the shared pool
   all parallel entry points draw from *)
let apply_jobs jobs =
  if jobs > 0 then Par.Pool.set_default_jobs jobs

(* exit codes: 0 = safe, 2 = unsafe, 3 = undetermined (budget ran out) *)
let verify_cmd_run engine order bound deadline jobs cache prefilter symmetry
    names =
  apply_jobs jobs;
  with_pcache cache @@ fun pcache ->
  match parse_apps ?pcache names with
  | Error (`Msg m) -> prerr_endline m; 1
  | Ok [] -> prerr_endline "verify: give at least one application"; 1
  | Ok apps ->
    let specs = Core.Mapping.specs_of_group apps in
    (* persist definitive verdicts so later map/stress/verify runs skip
       the engine.  Exact engines record both polarities; the bounded
       acceleration only its counterexamples (bounded-Safe is an
       under-approximation); Undetermined is a budget artifact and is
       never recorded. *)
    let record v = Option.iter (fun pc -> Core.Pcache.record_verdict pc specs v) pcache in
    Obs.Span.with_ "model-check" @@ fun () ->
    let discrete_exit (r : Core.Dverify.result) =
      match r.Core.Dverify.verdict with
      | Core.Dverify.Safe -> 0
      | Core.Dverify.Unsafe ce ->
        Format.printf "%a@." (Core.Dverify.pp_counterexample specs) ce;
        2
      | Core.Dverify.Undetermined _ -> 3
    in
    (match engine with
     | `Discrete | `Bfs ->
       let mode = if engine = `Bfs then `Bfs else `Subsumption in
       let r =
         Core.Dverify.verify ~order ~mode ~prefilter ~symmetry ?deadline specs
       in
       (match r.Core.Dverify.verdict with
        | Core.Dverify.Safe -> record `Safe
        | Core.Dverify.Unsafe _ -> record `Unsafe
        | Core.Dverify.Undetermined _ -> ());
       Format.printf "%a@.states=%d transitions=%d elapsed=%.2fs@."
         (Core.Dverify.pp_verdict specs) r.Core.Dverify.verdict
         r.Core.Dverify.stats.Core.Dverify.states
         r.Core.Dverify.stats.Core.Dverify.transitions
         r.Core.Dverify.stats.Core.Dverify.elapsed;
       discrete_exit r
     | `Bounded ->
       let r =
         Core.Dverify.verify_bounded ~order ~symmetry ?deadline
           ~instances:bound specs
       in
       (match r.Core.Dverify.verdict with
        | Core.Dverify.Unsafe _ -> record `Unsafe
        | Core.Dverify.Safe | Core.Dverify.Undetermined _ -> ());
       Format.printf "%a (bounded, %d instances/app)@.states=%d elapsed=%.2fs@."
         (Core.Dverify.pp_verdict specs) r.Core.Dverify.verdict bound
         r.Core.Dverify.stats.Core.Dverify.states
         r.Core.Dverify.stats.Core.Dverify.elapsed;
       (match r.Core.Dverify.verdict with
        | Core.Dverify.Safe -> 0
        | Core.Dverify.Unsafe _ -> 2
        | Core.Dverify.Undetermined _ -> 3)
     | `Ta ->
       let r = Core.Ta_model.verify ~order ~prefilter ?deadline specs in
       (match r.Core.Ta_model.outcome with
        | `Undetermined reason ->
          Format.printf "undetermined: %a (%d symbolic states)@."
            Ta.Reach.pp_budget_reason reason
            r.Core.Ta_model.stats.Ta.Reach.states;
          3
        | (`Safe | `Unsafe) as o ->
          record (o :> Core.Mapping.verdict);
          Format.printf "%s@.symbolic states=%d elapsed=%.2fs@."
            (if o = `Safe then "safe: Error location unreachable"
             else "unsafe: Error location reachable")
            r.Core.Ta_model.stats.Ta.Reach.states
            r.Core.Ta_model.stats.Ta.Reach.elapsed;
          if o = `Safe then 0 else 2))

(* ------------------------------------------------------------------ *)
(* map *)

let map_cmd_run with_baseline optimal order jobs cache no_prefilter
    no_symmetry =
  let prefilter = not no_prefilter and symmetry = not no_symmetry in
  apply_jobs jobs;
  with_pcache cache @@ fun pcache ->
  let dcache = Option.map Core.Pcache.dwell_cache pcache in
  let apps =
    Obs.Span.with_ "dwell-tables" @@ fun () ->
    List.map
      (fun (a : Casestudy.app) -> app_of_name ?cache:dcache a.Casestudy.name)
      Casestudy.all
  in
  let cache = mapping_cache_of pcache in
  let outcome =
    if optimal then Core.Mapping.optimal ~cache ~order ~prefilter ~symmetry apps
    else Core.Mapping.first_fit ~cache ~order ~prefilter ~symmetry apps
  in
  Format.printf "%a@." Core.Mapping.pp outcome;
  if with_baseline then begin
    let specs =
      List.mapi
        (fun i (a : Casestudy.app) ->
          let bp =
            Core.Baseline_params.compute a.Casestudy.plant a.Casestudy.gains
              ~j_star:a.Casestudy.j_star
          in
          Core.Baseline_params.to_spec ~id:i ~name:a.Casestudy.name
            ~r:a.Casestudy.r bp)
        Casestudy.all
    in
    let sorted =
      List.map
        (fun (a : Core.App.t) ->
          List.find (fun s -> String.equal s.Sched.Baseline.name a.Core.App.name) specs)
        (Core.Mapping.sort_order apps)
    in
    List.iter
      (fun (strategy, label) ->
        let slots = Sched.Baseline.first_fit strategy sorted in
        Format.printf "baseline (%s): %d slots: %s@." label (List.length slots)
          (String.concat " | "
             (List.map
                (fun slot ->
                  String.concat ","
                    (List.map (fun s -> s.Sched.Baseline.name) slot))
                slots)))
      [ (Sched.Baseline.Dm, "non-preemptive DM"); (Sched.Baseline.Delayed, "delayed requests") ]
  end;
  0

(* ------------------------------------------------------------------ *)
(* simulate *)

let write_csv_opt csv contents =
  match csv with
  | None -> 0
  | Some path ->
    (match Cosim.Export.write_file ~path contents with
     | Ok () -> Format.printf "wrote %s@." path; 0
     | Error m -> prerr_endline m; 1)

let simulate_cmd_run names disturbances horizon stride csv faults seed monitor
    bus =
  match bus_of_name bus with
  | Error m -> Printf.eprintf "simulate: --bus: %s\n" m; 1
  | Ok bus ->
  match parse_apps names with
  | Error (`Msg m) -> prerr_endline m; 1
  | Ok [] -> prerr_endline "simulate: give at least one application"; 1
  | Ok apps ->
    (match
       List.map
         (fun spec ->
           match String.split_on_char ':' spec with
           | [ k; name ] -> (int_of_string k, name)
           | _ -> failwith "disturbance must be SAMPLE:APP")
         disturbances
     with
     | exception _ -> prerr_endline "simulate: bad -d (use SAMPLE:APP)"; 1
     | ds ->
       let plan =
         match faults with
         | None -> Ok None
         | Some s ->
           Result.bind (Faults.Spec.parse s) (fun spec ->
               let app_rs =
                 Array.of_list
                   (List.map
                      (fun (a : Core.App.t) -> (a.Core.App.name, a.Core.App.r))
                      apps)
               in
               Result.map Option.some
                 (Faults.Plan.materialize ~spec ~seed:(Int64.of_int seed)
                    ~apps:app_rs ~horizon))
       in
       (match plan with
        | Error m -> Printf.eprintf "simulate: --faults: %s\n" m; 1
        | Ok plan ->
          let scenario = Cosim.Scenario.make ~apps ~disturbances:ds ~horizon in
          let trace, summary =
            Cosim.Engine.run_with_faults ?plan scenario
          in
          let bus_result =
            match bus with
            | None -> Ok None
            | Some b ->
              (match Cosim.Engine.replay_on_bus ~bus:b ?plan trace with
               | r -> Ok (Some r)
               | exception Invalid_argument m -> Error m)
          in
          match bus_result with
          | Error m -> Printf.eprintf "simulate: --bus: %s\n" m; 1
          | Ok bus_result ->
          let csv_rc = write_csv_opt csv (Cosim.Export.trace_csv trace) in
          if csv_rc <> 0 then csv_rc
          else begin
            List.iter print_endline (Cosim.Trace.to_rows trace ~stride);
            print_newline ();
            List.iter print_endline (Cosim.Trace.to_gantt trace);
            if plan <> None then
              Format.printf
                "faults: %d blackout sample(s), %d ET loss(es), %d sensor \
                 drop(s), %d eviction(s), %d suppressed arrival(s)@."
                summary.Cosim.Engine.blackout_samples
                summary.Cosim.Engine.et_losses
                summary.Cosim.Engine.sensor_drops
                (List.length summary.Cosim.Engine.denied)
                (List.length summary.Cosim.Engine.suppressed);
            Format.printf "requirements met: %b@."
              (Cosim.Trace.meets_requirements trace apps);
            List.iter
              (fun (sample, id) ->
                match Cosim.Trace.settling_after trace ~id ~sample with
                | Some j ->
                  Format.printf "%s disturbed at %d: J = %d samples (%.2fs)@."
                    trace.Cosim.Trace.names.(id) sample j
                    (float_of_int j *. trace.Cosim.Trace.h)
                | None ->
                  Format.printf "%s disturbed at %d: no settling in horizon@."
                    trace.Cosim.Trace.names.(id) sample)
              trace.Cosim.Trace.disturbances;
            (match (bus, bus_result) with
             | Some b, Some r when bus_report_noteworthy b r ->
               Format.printf "%a@." Cosim.Bus_check.pp r
             | _ -> ());
            if not monitor then 0
            else begin
              let report =
                Cosim.Monitor.check ~summary ?bus:bus_result ~apps trace
              in
              Format.printf "@.%a@." Cosim.Monitor.pp report;
              if report.Cosim.Monitor.ok then 0 else 2
            end
          end))

(* ------------------------------------------------------------------ *)
(* stress *)

(* Fault-injection campaign over the verified slot mapping.  Exit code
   reports infrastructure failures only: finding guarantee violations
   under injected faults is the purpose, not an error.  The output is a
   pure function of (spec, seed, runs, horizon) — no wall-clock
   quantities are printed — so two runs with the same arguments must be
   byte-identical. *)
let stress_cmd_run names spec seed runs horizon jobs cache bus =
  apply_jobs jobs;
  let names =
    if names = [] then [ "C1"; "C2"; "C3"; "C4"; "C5"; "C6" ] else names
  in
  match bus_of_name bus with
  | Error m -> Printf.eprintf "stress: --bus: %s\n" m; 1
  | Ok bus ->
  with_pcache cache @@ fun pcache ->
  match parse_apps ?pcache names with
  | Error (`Msg m) -> prerr_endline m; 1
  | Ok apps ->
    (match Faults.Spec.parse spec with
     | Error m -> Printf.eprintf "stress: --spec: %s\n" m; 1
     | Ok spec ->
       let mapping = Core.Mapping.first_fit ~cache:(mapping_cache_of pcache) apps in
       Format.printf "%a@.@." Core.Mapping.pp mapping;
       let slots =
         List.map
           (fun s -> s.Core.Mapping.apps)
           mapping.Core.Mapping.slots
       in
       (match
          Cosim.Campaign.run ?bus ~spec ~seed:(Int64.of_int seed) ~runs
            ~horizon slots
        with
        | Error m -> Printf.eprintf "stress: %s\n" m; 1
        | Ok summary ->
          Format.printf "%a@." Cosim.Campaign.pp summary;
          0))

(* ------------------------------------------------------------------ *)
(* sweep *)

let sweep_cmd_run name t_w_max t_dw_max csv bus =
  match bus_of_name bus with
  | Error m -> Printf.eprintf "sweep: --bus: %s\n" m; 1
  | Ok bus ->
  match parse_apps [ name ] with
  | Error (`Msg m) -> prerr_endline m; 1
  | Ok [ app ] ->
    let surface =
      Core.Dwell.surface app.Core.App.plant app.Core.App.gains ~t_w_max ~t_dw_max
    in
    let csv_rc =
      write_csv_opt csv
        (Cosim.Export.surface_csv surface ~h:app.Core.App.plant.Control.Plant.h)
    in
    if csv_rc <> 0 then csv_rc
    else begin
      Format.printf "Tw Tdw J(samples)@.";
      List.iter
        (fun (t_w, t_dw, j) ->
          Format.printf "%2d %3d %s@." t_w t_dw
            (match j with Some j -> string_of_int j | None -> "-"))
        surface;
      (* an explicit --bus annotates the surface with the transport the
         dwell points would ride on: its cycle must out-pace h for the
         one-sample story to make sense at every (Tw, Tdw) *)
      Option.iter
        (fun b ->
          let h_us =
            int_of_float ((app.Core.App.plant.Control.Plant.h *. 1e6) +. 0.5)
          in
          Format.printf "bus (%s): %s; %d cycle(s) per %d us sample@."
            (Bus.configured_name b) (Bus.info b)
            (h_us / Int.max 1 (Bus.cycle_us b))
            h_us)
        bus;
      0
    end
  | Ok _ -> 1

(* ------------------------------------------------------------------ *)
(* bus *)

(* timing sanity checks for one transport: its default configuration,
   the WCRT of a control-frame-sized contended message under five
   interferers of twice that size, and whether the one-sample-delay
   assumption survives at the case study's h = 20 ms *)
let bus_info_run name =
  match bus_of_name (Some name) with
  | Error m -> Printf.eprintf "bus info: %s\n" m; 1
  | Ok None -> 1
  | Ok (Some b) ->
    Format.printf "%s@." (Bus.info b);
    let size = Bus.control_frame_size b in
    let flow = 6 in
    let hp = List.init 5 (fun _ -> (2 * size, 5 * Bus.cycle_us b)) in
    (match Bus.wcrt_us b ~flow ~size ~hp with
     | Some w ->
       Format.printf
         "control frame (flow %d, size %d) under 5 interferers: WCRT = %d us@."
         flow size w;
       Format.printf "one-sample-delay assumption at h = 20 ms: %b@."
         (w <= 20_000)
     | None -> Format.printf "frame can be starved@.");
    0

let bus_list_run () =
  List.iter
    (fun backend ->
      Format.printf "%-10s %s@." (Bus.name backend)
        (Bus.info (Bus.default backend)))
    Backends.all;
  0

(* ------------------------------------------------------------------ *)
(* design *)

let design_cmd_run name j_star require_cqlf =
  match parse_apps [ name ] with
  | Error (`Msg m) -> prerr_endline m; 1
  | Ok [ app ] ->
    let plant = app.Core.App.plant in
    let j_star = Option.value ~default:app.Core.App.j_star j_star in
    let outcome = Control.Design.search ~require_cqlf plant ~j_star in
    List.iter
      (fun (c : Control.Design.candidate) ->
        Format.printf "kt rho=%.2f  ke %-14s  JT=%-4s JE=%-4s cqlf=%-5b %s@."
          c.Control.Design.kt_radius c.Control.Design.ke_source
          (match c.Control.Design.jt with Some j -> string_of_int j | None -> "-")
          (match c.Control.Design.je with Some j -> string_of_int j | None -> "-")
          c.Control.Design.switching_stable
          (match c.Control.Design.verdict with
           | `Accepted -> "ACCEPTED"
           | `Rejected r -> r))
      outcome.Control.Design.trace;
    (match outcome.Control.Design.gains with
     | Some g ->
       Format.printf "@.K_T = %a@.K_E = %a@." Linalg.Vec.pp g.Control.Switched.kt
         Linalg.Vec.pp g.Control.Switched.ke;
       (match Core.Dwell.compute plant g ~j_star with
        | t -> Format.printf "%a@." Core.Dwell.pp t; 0
        | exception Core.Dwell.Infeasible m ->
          Format.printf "dimensioning infeasible: %s@." m; 1)
     | None ->
       Format.printf "no admissible gain pair found@.";
       1)
  | Ok _ -> 1

(* ------------------------------------------------------------------ *)
(* fleet *)

let fleet_cmd_run count seed no_prefilter no_symmetry =
  let params = { Core.Fleet.default_params with count; seed } in
  let apps = Core.Fleet.generate ~params () in
  List.iter (fun a -> print_endline (Core.Fleet.describe a)) apps;
  let outcome =
    Core.Mapping.first_fit ~prefilter:(not no_prefilter)
      ~symmetry:(not no_symmetry) apps
  in
  Format.printf "%a@." Core.Mapping.pp outcome;
  0

(* ------------------------------------------------------------------ *)
(* margins *)

let margins_cmd_run names =
  match parse_apps names with
  | Error (`Msg m) -> prerr_endline m; 1
  | Ok [] -> prerr_endline "margins: give at least one application"; 1
  | Ok apps ->
    let report = Core.Margin.analyse ~apps () in
    Format.printf "%a@." Core.Margin.pp report;
    if report.Core.Margin.safe then 0 else 2

(* ------------------------------------------------------------------ *)
(* uppaal *)

let uppaal_cmd_run out names =
  match parse_apps names with
  | Error (`Msg m) -> prerr_endline m; 1
  | Ok [] -> prerr_endline "uppaal: give at least one application"; 1
  | Ok apps ->
    let specs = Core.Mapping.specs_of_group apps in
    (match out with
     | None -> print_string (Core.Uppaal_export.model specs); 0
     | Some basename ->
       (match Core.Uppaal_export.write ~dir:(Filename.dirname basename)
                ~basename:(Filename.basename basename) specs
        with
        | Ok path -> Format.printf "wrote %s (+ .q)@." path; 0
        | Error m -> prerr_endline m; 1))

(* ------------------------------------------------------------------ *)
(* cache *)

let cache_stats_run path =
  match Store.peek ~path with
  | Error m -> Printf.eprintf "cpsdim: cache stats: %s\n" m; 1
  | Ok (salt, records) ->
    let bytes = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0 in
    Printf.printf "store:   %s\nsalt:    %s (%s)\nrecords: %d\nbytes:   %d\n"
      path salt
      (if String.equal salt Core.Pcache.engine_salt then "current"
       else "STALE; current is " ^ Core.Pcache.engine_salt)
      records bytes;
    0

let cache_clear_run path =
  match Core.Pcache.open_ ~path with
  | Error m -> Printf.eprintf "cpsdim: cache clear: %s\n" m; 1
  | Ok pc ->
    Store.clear (Core.Pcache.store pc);
    Core.Pcache.close pc;
    Printf.printf "cleared %s\n" path;
    0

(* ------------------------------------------------------------------ *)
(* serve *)

(* Resident/batch mode: requests in, responses out, one warm cache pair
   across all of them.  Exit code reports transport failures only — a
   failing request gets a structured error response, not an exit. *)
let serve_cmd_run socket jobs cache =
  apply_jobs jobs;
  with_pcache cache @@ fun pcache ->
  Option.iter
    (fun pc ->
      if Core.Pcache.read_only pc then
        Printf.eprintf
          "cpsdim serve: another process holds the cache's writer lock; \
           running read-only (verdicts computed here are not persisted)\n%!")
    pcache;
  let svc = Serve.Service.create ?pcache () in
  match socket with
  | None -> Serve.Daemon.run_stdio svc; 0
  | Some path ->
    (match Serve.Daemon.run_socket svc ~path with
     | Ok () -> 0
     | Error m -> Printf.eprintf "cpsdim serve: %s\n" m; 1)

(* ------------------------------------------------------------------ *)
(* report *)

let report_show_run path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error m -> prerr_endline m; 1
  | contents ->
    let runs =
      List.filter
        (fun l -> String.trim l <> "")
        (String.split_on_char '\n' contents)
    in
    (match List.rev runs with
     | [] -> Printf.eprintf "report: %s holds no runs\n" path; 1
     | last :: _ ->
       (match
          Result.bind (Obs.Report.json_of_string last) Obs.Report.of_json
        with
        | Error m -> Printf.eprintf "report: %s: %s\n" path m; 1
        | Ok r ->
          Format.printf "%a@." Obs.Report.pp r;
          Printf.printf "(%d run(s) in %s; showing the most recent)\n"
            (List.length runs) path;
          0))

(* the most recent report in a file that is either a single-line
   snapshot (BENCH_*.json) or a multi-run JSONL log *)
let read_last_report path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error m -> Error m
  | contents ->
    (match
       List.rev
         (List.filter
            (fun l -> String.trim l <> "")
            (String.split_on_char '\n' contents))
     with
     | [] -> Error (path ^ " holds no runs")
     | last :: _ ->
       Result.map_error
         (fun m -> path ^ ": " ^ m)
         (Result.bind (Obs.Report.json_of_string last) Obs.Report.of_json))

(* exit codes: 0 = within tolerances, 1 = bad input, 2 = regression *)
let report_diff_run gate timing_gate old_path new_path =
  match (read_last_report old_path, read_last_report new_path) with
  | Error m, _ | _, Error m -> Printf.eprintf "report diff: %s\n" m; 1
  | Ok old_report, Ok new_report ->
    let changes = Obs.Diff.compare_reports ~old_report ~new_report in
    let failing = Obs.Diff.regressions ?gate ?timing_gate changes in
    let added =
      List.length (List.filter (fun c -> c.Obs.Diff.old_v = None) changes)
    in
    List.iter
      (fun c ->
        let tag =
          match Obs.Diff.status_of ?gate ?timing_gate c with
          | Obs.Diff.Missing -> "MISSING    "
          | Obs.Diff.Regression | Obs.Diff.Pass | Obs.Diff.Added ->
            "REGRESSION "
        in
        Format.printf "%s%a@." tag Obs.Diff.pp_change c)
      failing;
    let gate_desc which = function
      | Some g -> Printf.sprintf "%s ±%g%%" which g
      | None -> Printf.sprintf "%s ungated" which
    in
    Format.printf "report diff: %d key(s) compared (%d new), %d failing (%s, %s)@."
      (List.length changes) added (List.length failing)
      (gate_desc "deterministic" gate)
      (gate_desc "timing" timing_gate);
    if failing = [] then 0 else 2

let report_cmd_run gate timing_gate args =
  match args with
  | [] -> report_show_run "cpsdim-metrics.jsonl"
  | [ path ] -> report_show_run path
  | [ "diff"; old_path; new_path ] ->
    report_diff_run gate timing_gate old_path new_path
  | "diff" :: _ ->
    prerr_endline
      "report diff: usage: cpsdim report diff OLD NEW [--gate PCT] \
       [--timing-gate PCT]";
    1
  | _ ->
    prerr_endline
      "report: usage: cpsdim report [PATH] | cpsdim report diff OLD NEW";
    1

(* ------------------------------------------------------------------ *)
(* cmdliner plumbing *)

open Cmdliner

(* Every subcommand takes --metrics[=PATH] / --trace; when either is
   given the run executes under a root span, and the finished report
   goes to the JSONL sink and/or the stderr summary. *)

let metrics_arg =
  Arg.(
    value
    & opt ~vopt:(Some "cpsdim-metrics.jsonl") (some string) None
    & info [ "metrics" ] ~docv:"PATH"
        ~doc:
          "Collect metrics and timing spans, appending one JSON line per run \
           to $(docv) (default cpsdim-metrics.jsonl; see 'cpsdim report').")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:"Collect metrics and timing spans and print a summary to stderr.")

let events_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "events" ] ~docv:"PATH"
        ~doc:
          "Stream structured observability events (search heartbeats, pool \
           task lifecycles, cache provenance), appending one JSON line per \
           event to $(docv) when the run finishes.")

let write_events path =
  let evs = Obs.Event.drain () in
  let dropped = Obs.Event.dropped () in
  try
    Out_channel.with_open_gen
      [ Open_append; Open_creat; Open_text ]
      0o644 path
      (fun oc ->
        List.iter
          (fun ev ->
            Out_channel.output_string oc
              (Obs.Report.json_to_string (Obs.Event.to_json ev) ^ "\n"))
          evs;
        (* make truncation visible in the stream itself *)
        if dropped > 0 then
          Out_channel.output_string oc
            (Printf.sprintf "{\"ev\":\"obs.events_dropped\",\"n\":%d}\n" dropped))
  with Sys_error _ -> ()

let obs_wrap command metrics trace events f =
  if metrics = None && not trace && events = None then f ()
  else begin
    (* --events alone leaves the metric/span machinery off: the event
       stream has its own switch, and enabling both only for their
       respective sinks keeps each flag's overhead to what it pays
       for. *)
    if metrics <> None || trace then Obs.Trace_ctx.enable ();
    if events <> None then Obs.Event.enable ();
    let root = Obs.Span.start command in
    Fun.protect
      ~finally:(fun () ->
        Obs.Span.finish root;
        Option.iter write_events events;
        if metrics <> None || trace then begin
          let report = Obs.Report.collect ~command () in
          Option.iter
            (fun path -> Obs.Sink.emit (Obs.Sink.jsonl ~path) report)
            metrics;
          if trace then Obs.Sink.emit Obs.Sink.stderr_summary report
        end)
      f
  end

let with_obs command thunk =
  Term.(
    const (fun metrics trace events f -> obs_wrap command metrics trace events f)
    $ metrics_arg $ trace_arg $ events_arg $ thunk)

let names_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"APP" ~doc:"Case-study application names (C1..C6).")

let cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"PATH"
        ~env:(Cmd.Env.info "CPSDIM_CACHE")
        ~doc:
          "Persistent verification cache: verdicts and dwell tables are \
           reloaded from (and appended to) the store at $(docv), so repeated \
           runs skip the engine for unchanged groups.  The file is salted \
           with the engine version and invalidated automatically when it \
           goes stale; see 'cpsdim cache'.  Results are byte-identical with \
           or without a (warm or cold) cache.")

let tables_cmd =
  Cmd.v (Cmd.info "tables" ~doc:"Print the dwell-time tables (Table 1)")
    (with_obs "tables"
       Term.(
         const (fun cache names () -> tables_cmd_run cache names)
         $ cache_arg $ names_arg))

let engine_arg =
  Arg.(
    value
    & opt (enum [ ("discrete", `Discrete); ("bfs", `Bfs); ("bounded", `Bounded); ("ta", `Ta) ]) `Discrete
    & info [ "e"; "engine" ] ~doc:"Verification engine: discrete (subsumption), bfs, bounded, or ta (zone-based).")

let order_arg =
  Arg.(
    value
    & opt (enum [ ("bfs", `Bfs); ("dfs", `Dfs) ]) `Bfs
    & info [ "order" ] ~docv:"ORDER"
        ~doc:
          "Frontier order for the state-space search: bfs (default) or dfs.  \
           The Safe/Unsafe verdict is order-independent; state counts and \
           counterexample witnesses may differ.")

let bound_arg =
  Arg.(value & opt int 2 & info [ "k"; "instances" ] ~doc:"Disturbance instances per app for -e bounded.")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock budget for the search; when it runs out the verdict is \
           explicitly undetermined (exit code 3) instead of safe/unsafe.")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Domains for parallel verification/simulation (default: \
           $(b,CPSDIM_JOBS) or 1).  Results are byte-identical at any \
           $(docv).")

(* opt-in on verify (screened stats would differ from the engine's, and
   the engine run is exactly what the command is for); opt-out on the
   mappers, where only the verdict matters and both shortcuts are
   verdict-preserving *)
let prefilter_arg =
  Arg.(
    value & flag
    & info [ "prefilter" ]
        ~doc:
          "Consult the two-sided analytic screen first; groups it decides \
           skip the engine (states/transitions read 0 for them).  Verdicts \
           are unchanged.")

let symmetry_arg =
  Arg.(
    value & flag
    & info [ "symmetry" ]
        ~doc:
          "Quotient the search space by permutations of identical-parameter \
           applications.  Verdicts, max-wait tables and counterexamples are \
           unchanged; Safe-side state counts shrink.")

let no_prefilter_arg =
  Arg.(
    value & flag
    & info [ "no-prefilter" ]
        ~doc:
          "Disable the analytic pre-screen and send every candidate group to \
           the exact engine.  The packing and all reported counts are \
           identical either way; this is an escape hatch for differential \
           testing.")

let no_symmetry_arg =
  Arg.(
    value & flag
    & info [ "no-symmetry" ]
        ~doc:
          "Disable symmetry quotienting in the group verifier.  \
           Verdict-preserving either way; escape hatch for differential \
           testing.")

let verify_cmd =
  Cmd.v (Cmd.info "verify" ~doc:"Model-check a slot group")
    (with_obs "verify"
       Term.(
         const
           (fun engine order bound deadline jobs cache prefilter symmetry names
                () ->
             verify_cmd_run engine order bound deadline jobs cache prefilter
               symmetry names)
         $ engine_arg $ order_arg $ bound_arg $ deadline_arg $ jobs_arg
         $ cache_arg $ prefilter_arg $ symmetry_arg $ names_arg))

let baseline_arg =
  Arg.(value & flag & info [ "b"; "baseline" ] ~doc:"Also run the DATE'12 baseline packing.")

let optimal_arg =
  Arg.(value & flag & info [ "optimal" ] ~doc:"Exact minimum-slot partition instead of first-fit.")

let map_cmd =
  Cmd.v (Cmd.info "map" ~doc:"Slot mapping of the case study (first-fit or exact)")
    (with_obs "map"
       Term.(
         const (fun baseline optimal order jobs cache no_prefilter no_symmetry
                    () ->
             map_cmd_run baseline optimal order jobs cache no_prefilter
               no_symmetry)
         $ baseline_arg $ optimal_arg $ order_arg $ jobs_arg $ cache_arg
         $ no_prefilter_arg $ no_symmetry_arg))

let disturbances_arg =
  Arg.(value & opt_all string [] & info [ "d"; "disturb" ] ~docv:"SAMPLE:APP" ~doc:"Disturbance arrival, e.g. -d 0:C1.")

let horizon_arg =
  Arg.(value & opt int 60 & info [ "horizon" ] ~doc:"Samples to simulate.")

let stride_arg =
  Arg.(value & opt int 1 & info [ "stride" ] ~doc:"Print every Nth sample.")

let csv_arg =
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the data as CSV.")

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Fault-injection spec: ';'-separated clauses among \
           blackout:A-B, blackout:p=P[,len=L], loss:APP\\@K, \
           loss:APP\\@p=P, drop:APP\\@K, drop:APP\\@p=P, \
           burst:APP\\@S[xN].  Random clauses draw from --seed.")

let sim_seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Seed for random fault clauses.")

let monitor_arg =
  Arg.(
    value & flag
    & info [ "monitor" ]
        ~doc:
          "Check the trace against the verified guarantees (J*, T*_w, dwell \
           tables); any violation exits 2.")

let bus_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "bus" ] ~docv:"BACKEND"
        ~doc:
          "Replay the run's traffic on a transport backend (see 'cpsdim bus \
           list') and check the TT-deterministic / ET-one-sample facts the \
           dimensioning rests on.  The reference backend (flexray) stays \
           silent when every fact holds; without $(docv) no replay happens \
           at all.")

let simulate_cmd =
  Cmd.v (Cmd.info "simulate" ~doc:"Co-simulate a slot group")
    (with_obs "simulate"
       Term.(
         const (fun names ds horizon stride csv faults seed monitor bus () ->
             simulate_cmd_run names ds horizon stride csv faults seed monitor
               bus)
         $ names_arg $ disturbances_arg $ horizon_arg $ stride_arg $ csv_arg
         $ faults_arg $ sim_seed_arg $ monitor_arg $ bus_arg))

let stress_spec_arg =
  Arg.(
    value
    & opt string "blackout:p=0.02,len=4"
    & info [ "spec" ] ~docv:"SPEC"
        ~doc:"Fault spec applied to every run (same grammar as simulate --faults).")

let runs_arg =
  Arg.(value & opt int 20 & info [ "runs" ] ~doc:"Monitored runs per slot group.")

let stress_horizon_arg =
  Arg.(value & opt int 600 & info [ "horizon" ] ~doc:"Samples per run.")

let stress_cmd =
  Cmd.v
    (Cmd.info "stress"
       ~doc:
         "Seeded fault-injection campaign over the first-fit mapping: \
          randomized admissible disturbances plus injected faults, every run \
          checked by the guarantee monitor")
    (with_obs "stress"
       Term.(
         const (fun names spec seed runs horizon jobs cache bus () ->
             stress_cmd_run names spec seed runs horizon jobs cache bus)
         $ names_arg $ stress_spec_arg $ sim_seed_arg $ runs_arg
         $ stress_horizon_arg $ jobs_arg $ cache_arg $ bus_arg))

let name_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP" ~doc:"Application name.")

let tw_arg = Arg.(value & opt int 10 & info [ "tw" ] ~doc:"Maximum wait to sweep.")
let tdw_arg = Arg.(value & opt int 10 & info [ "tdw" ] ~doc:"Maximum dwell to sweep.")

let sweep_cmd =
  Cmd.v (Cmd.info "sweep" ~doc:"Settling-time surface J(Tw, Tdw) (Fig. 3)")
    (with_obs "sweep"
       Term.(
         const (fun name tw tdw csv bus () -> sweep_cmd_run name tw tdw csv bus)
         $ name_arg $ tw_arg $ tdw_arg $ csv_arg $ bus_arg))

let bus_name_arg =
  Arg.(
    value
    & pos 0 string "flexray"
    & info [] ~docv:"BACKEND"
        ~doc:"Transport backend name (default flexray; see 'cpsdim bus list').")

let bus_cmd =
  let info_cmd =
    Cmd.v
      (Cmd.info "info"
         ~doc:
           "Timing sanity checks for one transport backend (the former \
            'cpsdim flexray', generalised)")
      (with_obs "bus-info"
         Term.(const (fun name () -> bus_info_run name) $ bus_name_arg))
  in
  let list_cmd =
    Cmd.v
      (Cmd.info "list" ~doc:"List the registered transport backends")
      (with_obs "bus-list" Term.(const (fun () -> bus_list_run ())))
  in
  Cmd.group
    (Cmd.info "bus" ~doc:"Inspect the transport backends behind --bus")
    [ info_cmd; list_cmd ]

let jstar_arg =
  Arg.(value & opt (some int) None & info [ "j" ] ~doc:"Settling budget in samples (defaults to the app's J*).")

let cqlf_arg =
  Arg.(value & flag & info [ "require-cqlf" ] ~doc:"Reject gain pairs without a common Lyapunov certificate.")

let design_cmd =
  Cmd.v (Cmd.info "design" ~doc:"Synthesise a switching gain pair for an app's plant")
    (with_obs "design"
       Term.(
         const (fun name jstar cqlf () -> design_cmd_run name jstar cqlf)
         $ name_arg $ jstar_arg $ cqlf_arg))

let count_arg =
  Arg.(value & opt int 6 & info [ "n" ] ~doc:"Fleet size.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Generation seed.")

let fleet_cmd =
  Cmd.v (Cmd.info "fleet" ~doc:"Generate a synthetic fleet and map it to slots")
    (with_obs "fleet"
       Term.(
         const (fun count seed no_prefilter no_symmetry () ->
             fleet_cmd_run count seed no_prefilter no_symmetry)
         $ count_arg $ seed_arg $ no_prefilter_arg $ no_symmetry_arg))

let out_arg =
  Arg.(value & opt (some string) None & info [ "o" ] ~docv:"PATH" ~doc:"Write PATH.xml and PATH.q instead of stdout.")

let uppaal_cmd =
  Cmd.v (Cmd.info "uppaal" ~doc:"Export a slot group as an UPPAAL model")
    (with_obs "uppaal"
       Term.(
         const (fun out names () -> uppaal_cmd_run out names)
         $ out_arg $ names_arg))

let margins_cmd =
  Cmd.v (Cmd.info "margins" ~doc:"Worst-case waits and settling margins of a verified group")
    (with_obs "margins"
       Term.(const (fun names () -> margins_cmd_run names) $ names_arg))

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Listen on a Unix domain socket at $(docv) (clients served one at \
           a time, caches staying warm across connections) instead of \
           answering stdin on stdout.")

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Resident dimensioning service: read verify/map/dwell requests (one \
          JSON object per line) from stdin or a Unix socket and answer each \
          on the same channel, re-verifying only groups whose fingerprint \
          has not been answered before")
    (with_obs "serve"
       Term.(
         const (fun socket jobs cache () -> serve_cmd_run socket jobs cache)
         $ socket_arg $ jobs_arg $ cache_arg))

let report_args =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"ARG"
        ~doc:
          "Either a JSONL file written by --metrics (default \
           cpsdim-metrics.jsonl), or $(b,diff) $(i,OLD) $(i,NEW) to compare \
           two report files.")

let gate_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "gate" ] ~docv:"PCT"
        ~doc:
          "With $(b,diff): fail (exit 2) when a deterministic metric (state \
           counts, cache hit mixes, sample counts) moved against its \
           direction by more than $(docv) percent, or vanished.")

let timing_gate_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timing-gate" ] ~docv:"PCT"
        ~doc:
          "With $(b,diff): same gate for timing metrics (durations, \
           states/sec, speedups).  Left off by default so wall-clock noise \
           between machines cannot fail a comparison.")

let report_cmd =
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Pretty-print the most recent JSONL metrics run, or diff two \
          report files with regression gates")
    Term.(const report_cmd_run $ gate_arg $ timing_gate_arg $ report_args)

let cache_path_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"PATH" ~doc:"Persistent cache file (see --cache).")

let cache_cmd =
  let stats =
    Cmd.v
      (Cmd.info "stats"
         ~doc:
           "Report a store's salt (flagging staleness against the current \
            engine), record count and size, without modifying the file.")
      Term.(const cache_stats_run $ cache_path_arg)
  in
  let clear =
    Cmd.v
      (Cmd.info "clear" ~doc:"Drop every record and rewrite the store empty.")
      Term.(const cache_clear_run $ cache_path_arg)
  in
  Cmd.group
    (Cmd.info "cache" ~doc:"Inspect or clear a persistent verification cache")
    [ stats; clear ]

let default = Term.(ret (const (`Help (`Pager, None))))

let () =
  let info =
    Cmd.info "cpsdim" ~version:"1.0.0"
      ~doc:"Tighter dimensioning of TT slots with control performance guarantees"
  in
  exit (Cmd.eval' (Cmd.group ~default info [ tables_cmd; verify_cmd; map_cmd; simulate_cmd; stress_cmd; sweep_cmd; bus_cmd; design_cmd; fleet_cmd; uppaal_cmd; margins_cmd; serve_cmd; report_cmd; cache_cmd ]))
