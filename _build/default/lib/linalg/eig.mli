(** Eigenvalues of small dense real matrices.

    Eigenvalues are computed as the roots of the characteristic
    polynomial (Faddeev–LeVerrier), found with the Durand–Kerner
    simultaneous iteration in complex arithmetic.  This is accurate and
    robust for the small (n <= 8), well-scaled matrices that arise in
    closed-loop control analysis; it is not meant for large or highly
    non-normal matrices. *)

val charpoly : Mat.t -> Poly.t
(** Monic characteristic polynomial [det(x I - A)], coefficients in
    ascending degree order.  @raise Invalid_argument on non-square. *)

val eigenvalues : ?iterations:int -> Mat.t -> Complex.t list
(** All eigenvalues (with multiplicity), sorted by decreasing modulus.
    Imaginary parts below an absolute tolerance are snapped to zero. *)

val poly_roots : ?iterations:int -> Poly.t -> Complex.t list
(** Roots of an arbitrary real polynomial (degree >= 1), sorted by
    decreasing modulus. *)

val spectral_radius : Mat.t -> float
(** Largest eigenvalue modulus. *)

val is_schur_stable : ?margin:float -> Mat.t -> bool
(** [true] iff every eigenvalue satisfies [|z| < 1 - margin]
    (default margin [0.]).  This is discrete-time asymptotic
    stability. *)

val sym_eigenvalues : Mat.t -> float array
(** Eigenvalues of a symmetric matrix via the cyclic Jacobi method,
    in ascending order.  The input is symmetrised as [(A + Aᵀ)/2]. *)

val sym_eig : Mat.t -> float array * Mat.t
(** [(d, v)] with eigenvalues [d] in ascending order and orthonormal
    eigenvectors as the columns of [v] (so [A ≈ V diag(d) Vᵀ]).  The
    input is symmetrised first. *)
