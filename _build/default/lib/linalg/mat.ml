type t = { rows : int; cols : int; data : float array }

let check_shape rows cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Mat: non-positive dimension"

let create ~rows ~cols x =
  check_shape rows cols;
  { rows; cols; data = Array.make (rows * cols) x }

let zeros rows cols = create ~rows ~cols 0.

let init rows cols f =
  check_shape rows cols;
  { rows; cols; data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

let identity n = init n n (fun i j -> if i = j then 1. else 0.)

let of_rows rows_list =
  match rows_list with
  | [] -> invalid_arg "Mat.of_rows: empty"
  | first :: _ ->
    let cols = List.length first in
    if cols = 0 then invalid_arg "Mat.of_rows: empty row";
    if not (List.for_all (fun r -> List.length r = cols) rows_list) then
      invalid_arg "Mat.of_rows: ragged rows";
    let rows = List.length rows_list in
    let data = Array.make (rows * cols) 0. in
    List.iteri
      (fun i r -> List.iteri (fun j x -> data.((i * cols) + j) <- x) r)
      rows_list;
    { rows; cols; data }

let of_array ~rows ~cols a =
  check_shape rows cols;
  if Array.length a <> rows * cols then invalid_arg "Mat.of_array: bad length";
  { rows; cols; data = Array.copy a }

let rows m = m.rows
let cols m = m.cols

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Mat.get: index out of range";
  m.data.((i * m.cols) + j)

let set m i j x =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Mat.set: index out of range";
  let data = Array.copy m.data in
  data.((i * m.cols) + j) <- x;
  { m with data }

let row m i =
  if i < 0 || i >= m.rows then invalid_arg "Mat.row: index out of range";
  Array.sub m.data (i * m.cols) m.cols

let col m j =
  if j < 0 || j >= m.cols then invalid_arg "Mat.col: index out of range";
  Array.init m.rows (fun i -> m.data.((i * m.cols) + j))

let of_row_vec v = { rows = 1; cols = Array.length v; data = Array.copy v }
let of_col_vec v = { rows = Array.length v; cols = 1; data = Array.copy v }

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let same_shape name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "Mat.%s: shape mismatch (%dx%d vs %dx%d)" name a.rows
         a.cols b.rows b.cols)

let add a b =
  same_shape "add" a b;
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) +. b.data.(k)) }

let sub a b =
  same_shape "sub" a b;
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) -. b.data.(k)) }

let scale s a = { a with data = Array.map (fun x -> s *. x) a.data }

let mul a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Mat.mul: inner dimension mismatch (%dx%d * %dx%d)"
         a.rows a.cols b.rows b.cols);
  let c = Array.make (a.rows * b.cols) 0. in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0. then
        for j = 0 to b.cols - 1 do
          c.((i * b.cols) + j) <-
            c.((i * b.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  { rows = a.rows; cols = b.cols; data = c }

let mul_vec m v =
  if m.cols <> Array.length v then
    invalid_arg "Mat.mul_vec: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0. in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (m.data.((i * m.cols) + j) *. v.(j))
      done;
      !acc)

let outer x y = init (Array.length x) (Array.length y) (fun i j -> x.(i) *. y.(j))

let is_square m = m.rows = m.cols

let pow m k =
  if not (is_square m) then invalid_arg "Mat.pow: non-square";
  if k < 0 then invalid_arg "Mat.pow: negative exponent";
  let rec go acc base k =
    if k = 0 then acc
    else if k land 1 = 1 then go (mul acc base) (mul base base) (k asr 1)
    else go acc (mul base base) (k asr 1)
  in
  go (identity m.rows) m k

let trace m =
  if not (is_square m) then invalid_arg "Mat.trace: non-square";
  let acc = ref 0. in
  for i = 0 to m.rows - 1 do
    acc := !acc +. get m i i
  done;
  !acc

let hstack a b =
  if a.rows <> b.rows then invalid_arg "Mat.hstack: row mismatch";
  init a.rows (a.cols + b.cols) (fun i j ->
      if j < a.cols then get a i j else get b i (j - a.cols))

let vstack a b =
  if a.cols <> b.cols then invalid_arg "Mat.vstack: column mismatch";
  init (a.rows + b.rows) a.cols (fun i j ->
      if i < a.rows then get a i j else get b (i - a.rows) j)

let block grid =
  match grid with
  | [] | [] :: _ -> invalid_arg "Mat.block: empty grid"
  | _ ->
    let glue_row blocks =
      match blocks with
      | [] -> invalid_arg "Mat.block: empty block row"
      | b :: rest -> List.fold_left hstack b rest
    in
    let rows = List.map glue_row grid in
    (match rows with
     | [] -> assert false
     | r :: rest -> List.fold_left vstack r rest)

let kron a b =
  init (a.rows * b.rows) (a.cols * b.cols) (fun i j ->
      get a (i / b.rows) (j / b.cols) *. get b (i mod b.rows) (j mod b.cols))

let map f m = { m with data = Array.map f m.data }

let norm_inf m =
  let best = ref 0. in
  for i = 0 to m.rows - 1 do
    let s = ref 0. in
    for j = 0 to m.cols - 1 do
      s := !s +. Float.abs (get m i j)
    done;
    if !s > !best then best := !s
  done;
  !best

let norm_fro m =
  sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. m.data)

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= tol) a.data b.data

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "%10.6g" (get m i j)
    done;
    Format.fprintf ppf "]";
    if i < m.rows - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
