(** LU decomposition with partial pivoting, and the solvers built on it. *)

type factors
(** An LU factorisation [P A = L U] of a square matrix. *)

exception Singular
(** Raised when a (numerically) singular matrix is factored or solved. *)

val factor : Mat.t -> factors
(** @raise Invalid_argument on a non-square matrix.
    @raise Singular when a pivot is smaller than the tolerance. *)

val solve_factored : factors -> Vec.t -> Vec.t
(** Solve [A x = b] given a factorisation of [A]. *)

val solve : Mat.t -> Vec.t -> Vec.t
(** [solve a b] solves [a x = b].  @raise Singular. *)

val solve_mat : Mat.t -> Mat.t -> Mat.t
(** [solve_mat a b] solves [a X = b] column by column. *)

val det : Mat.t -> float
(** Determinant; 0 for singular matrices. *)

val inverse : Mat.t -> Mat.t
(** @raise Singular. *)

val rank : ?tol:float -> Mat.t -> int
(** Numerical rank via Gaussian elimination with full row pivoting.
    Works on rectangular matrices.  The tolerance is relative to the
    largest entry (default [1e-10]). *)
