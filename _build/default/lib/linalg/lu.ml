exception Singular

type factors = {
  n : int;
  lu : float array;
  (* row-major; unit-lower-triangular L below the diagonal, U on and
     above it *)
  perm : int array; (* row permutation applied to the right-hand side *)
  sign : float; (* determinant of the permutation *)
}

let pivot_tol = 1e-12

let factor m =
  if not (Mat.is_square m) then invalid_arg "Lu.factor: non-square";
  let n = Mat.rows m in
  let lu = Array.init (n * n) (fun k -> Mat.get m (k / n) (k mod n)) in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1. in
  for k = 0 to n - 1 do
    (* partial pivoting: bring the largest |entry| of column k to row k *)
    let pivot_row = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs lu.((i * n) + k) > Float.abs lu.((!pivot_row * n) + k) then
        pivot_row := i
    done;
    if !pivot_row <> k then begin
      for j = 0 to n - 1 do
        let tmp = lu.((k * n) + j) in
        lu.((k * n) + j) <- lu.((!pivot_row * n) + j);
        lu.((!pivot_row * n) + j) <- tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!pivot_row);
      perm.(!pivot_row) <- tmp;
      sign := -. !sign
    end;
    let pivot = lu.((k * n) + k) in
    if Float.abs pivot < pivot_tol then raise Singular;
    for i = k + 1 to n - 1 do
      let factor = lu.((i * n) + k) /. pivot in
      lu.((i * n) + k) <- factor;
      for j = k + 1 to n - 1 do
        lu.((i * n) + j) <- lu.((i * n) + j) -. (factor *. lu.((k * n) + j))
      done
    done
  done;
  { n; lu; perm; sign = !sign }

let solve_factored { n; lu; perm; _ } b =
  if Array.length b <> n then invalid_arg "Lu.solve_factored: dimension";
  let x = Array.init n (fun i -> b.(perm.(i))) in
  (* forward substitution with unit-lower L *)
  for i = 1 to n - 1 do
    for j = 0 to i - 1 do
      x.(i) <- x.(i) -. (lu.((i * n) + j) *. x.(j))
    done
  done;
  (* back substitution with U *)
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      x.(i) <- x.(i) -. (lu.((i * n) + j) *. x.(j))
    done;
    x.(i) <- x.(i) /. lu.((i * n) + i)
  done;
  x

let solve a b = solve_factored (factor a) b

let solve_mat a b =
  if Mat.rows a <> Mat.rows b then invalid_arg "Lu.solve_mat: dimension";
  let f = factor a in
  let cols =
    List.init (Mat.cols b) (fun j -> solve_factored f (Mat.col b j))
  in
  Mat.init (Mat.rows b) (Mat.cols b) (fun i j -> (List.nth cols j).(i))

let det m =
  match factor m with
  | exception Singular -> 0.
  | { n; lu; sign; _ } ->
    let d = ref sign in
    for i = 0 to n - 1 do
      d := !d *. lu.((i * n) + i)
    done;
    !d

let inverse m =
  let n = Mat.rows m in
  solve_mat m (Mat.identity n)

let rank ?(tol = 1e-10) m =
  let rows = Mat.rows m and cols = Mat.cols m in
  let a = Array.init (rows * cols) (fun k -> Mat.get m (k / cols) (k mod cols)) in
  let max_entry =
    Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. a
  in
  let threshold = tol *. Float.max 1. max_entry in
  let rank = ref 0 in
  let r = ref 0 in
  let c = ref 0 in
  while !r < rows && !c < cols do
    (* find largest pivot in column !c at or below row !r *)
    let pivot_row = ref !r in
    for i = !r + 1 to rows - 1 do
      if Float.abs a.((i * cols) + !c) > Float.abs a.((!pivot_row * cols) + !c)
      then pivot_row := i
    done;
    if Float.abs a.((!pivot_row * cols) + !c) <= threshold then incr c
    else begin
      if !pivot_row <> !r then
        for j = 0 to cols - 1 do
          let tmp = a.((!r * cols) + j) in
          a.((!r * cols) + j) <- a.((!pivot_row * cols) + j);
          a.((!pivot_row * cols) + j) <- tmp
        done;
      let pivot = a.((!r * cols) + !c) in
      for i = !r + 1 to rows - 1 do
        let f = a.((i * cols) + !c) /. pivot in
        for j = !c to cols - 1 do
          a.((i * cols) + j) <- a.((i * cols) + j) -. (f *. a.((!r * cols) + j))
        done
      done;
      incr rank;
      incr r;
      incr c
    end
  done;
  !rank
