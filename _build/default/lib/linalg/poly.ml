type t = float array

let zero = [| 0. |]
let one = [| 1. |]
let of_coeffs = Array.of_list

let trim p =
  let n = Array.length p in
  let rec last i = if i > 0 && p.(i) = 0. then last (i - 1) else i in
  if n = 0 then zero else Array.sub p 0 (last (n - 1) + 1)

let degree p = Array.length (trim p) - 1

let eval p x =
  let acc = ref 0. in
  for k = Array.length p - 1 downto 0 do
    acc := (!acc *. x) +. p.(k)
  done;
  !acc

let eval_mat p m =
  if not (Mat.is_square m) then invalid_arg "Poly.eval_mat: non-square";
  let n = Mat.rows m in
  let acc = ref (Mat.zeros n n) in
  for k = Array.length p - 1 downto 0 do
    acc := Mat.add (Mat.mul !acc m) (Mat.scale p.(k) (Mat.identity n))
  done;
  !acc

let add a b =
  let n = Int.max (Array.length a) (Array.length b) in
  let at i arr = if i < Array.length arr then arr.(i) else 0. in
  trim (Array.init n (fun i -> at i a +. at i b))

let scale s p = trim (Array.map (fun c -> s *. c) p)
let sub a b = add a (scale (-1.) b)

let mul a b =
  let a = trim a and b = trim b in
  let n = Array.length a + Array.length b - 1 in
  let c = Array.make n 0. in
  Array.iteri
    (fun i ai -> Array.iteri (fun j bj -> c.(i + j) <- c.(i + j) +. (ai *. bj)) b)
    a;
  trim c

let from_roots roots =
  List.fold_left (fun acc r -> mul acc [| -.r; 1. |]) one roots

let from_conjugate_pairs pairs =
  let factor (re, im) =
    if im = 0. then [| -.re; 1. |]
    else [| (re *. re) +. (im *. im); -2. *. re; 1. |]
  in
  List.fold_left (fun acc pr -> mul acc (factor pr)) one pairs

let derivative p =
  let p = trim p in
  if Array.length p <= 1 then zero
  else Array.init (Array.length p - 1) (fun k -> float_of_int (k + 1) *. p.(k + 1))

let approx_equal ?(tol = 1e-9) a b =
  let a = trim a and b = trim b in
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= tol) a b

let pp ppf p =
  let p = trim p in
  let first = ref true in
  for k = Array.length p - 1 downto 0 do
    if p.(k) <> 0. || (Array.length p = 1 && k = 0) then begin
      if not !first then Format.fprintf ppf " + ";
      (match k with
       | 0 -> Format.fprintf ppf "%g" p.(k)
       | 1 -> Format.fprintf ppf "%g x" p.(k)
       | _ -> Format.fprintf ppf "%g x^%d" p.(k) k);
      first := false
    end
  done;
  if !first then Format.fprintf ppf "0"
