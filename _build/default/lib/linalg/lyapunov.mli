(** Discrete-time Lyapunov equations and positive-definiteness tests.

    These are the numerical primitives behind the switching-stability
    check of the paper (Sec. 3, "comments on switching stability"): the
    two closed-loop modes must admit a common quadratic Lyapunov
    function. *)

val cholesky : Mat.t -> Mat.t option
(** [cholesky a] is [Some l] with [a = l lᵀ] (lower-triangular [l]) when
    the symmetrised input is positive definite, [None] otherwise. *)

val is_positive_definite : ?tol:float -> Mat.t -> bool
(** Positive definiteness of the symmetric part, by Cholesky with a
    relative pivot tolerance (default [1e-10]). *)

val is_negative_definite : ?tol:float -> Mat.t -> bool

val solve_discrete : Mat.t -> Mat.t -> Mat.t
(** [solve_discrete a q] solves the discrete Lyapunov (Stein) equation
    [aᵀ p a - p + q = 0] for symmetric [p], by vectorisation:
    [(I - aᵀ⊗aᵀ) vec p = vec q].

    @raise Invalid_argument on shape mismatch.
    @raise Lu.Singular when [a] has reciprocal eigenvalue pairs (the
    equation is then singular). *)

val residual : Mat.t -> Mat.t -> Mat.t -> float
(** [residual a q p] is [‖aᵀ p a - p + q‖_F], for testing solutions. *)

val common_lyapunov : Mat.t -> Mat.t -> Mat.t option
(** [common_lyapunov a1 a2] searches for a single positive-definite [p]
    with [aᵢᵀ p aᵢ - p] negative definite for both closed-loop matrices.
    The search solves the Stein equation for convex combinations of the
    per-mode solutions and checks definiteness; it is sound (a returned
    [p] is certified by the definiteness tests) but not complete. *)
