(** Dense real matrices in row-major layout.

    Matrices are records carrying their shape; all operations allocate
    fresh results.  Dimensions are validated and mismatches raise
    [Invalid_argument]. *)

type t = private { rows : int; cols : int; data : float array }
(** [data.(i * cols + j)] holds entry [(i, j)]. *)

val create : rows:int -> cols:int -> float -> t
(** [create ~rows ~cols x] is the [rows]x[cols] matrix filled with [x]. *)

val zeros : int -> int -> t
val identity : int -> t

val init : int -> int -> (int -> int -> float) -> t
(** [init rows cols f] has entry [(i, j)] equal to [f i j]. *)

val of_rows : float list list -> t
(** Build from a non-ragged list of rows.  @raise Invalid_argument if
    rows have unequal lengths or the list is empty. *)

val of_array : rows:int -> cols:int -> float array -> t
(** Wrap a row-major array (copied).  @raise Invalid_argument if the
    array length is not [rows * cols]. *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> t
(** [set m i j x] is a copy of [m] with entry [(i, j)] set to [x]. *)

val row : t -> int -> Vec.t
val col : t -> int -> Vec.t

val of_row_vec : Vec.t -> t
(** A 1xn matrix. *)

val of_col_vec : Vec.t -> t
(** An nx1 matrix. *)

val transpose : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val mul : t -> t -> t
val mul_vec : t -> Vec.t -> Vec.t
val outer : Vec.t -> Vec.t -> t
(** [outer x y] is the matrix [x yᵀ]. *)

val pow : t -> int -> t
(** [pow m k] for square [m] and [k >= 0]. *)

val trace : t -> float
val is_square : t -> bool

val hstack : t -> t -> t
(** Horizontal concatenation (same row count). *)

val vstack : t -> t -> t
(** Vertical concatenation (same column count). *)

val block : t list list -> t
(** Assemble a block matrix from a non-ragged grid of blocks with
    consistent shapes. *)

val kron : t -> t -> t
(** Kronecker product. *)

val map : (float -> float) -> t -> t
val norm_inf : t -> float
(** Max absolute row sum. *)

val norm_fro : t -> float
(** Frobenius norm. *)

val approx_equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
