(* Padé [13, 13] with scaling and squaring (Higham 2005, "The scaling
   and squaring method for the matrix exponential revisited").  For the
   small, well-scaled matrices of this library the fixed top-order
   approximant with conservative scaling is simple and accurate. *)

let pade13 =
  [|
    64764752532480000.;
    32382376266240000.;
    7771770303897600.;
    1187353796428800.;
    129060195264000.;
    10559470521600.;
    670442572800.;
    33522128640.;
    1323241920.;
    40840800.;
    960960.;
    16380.;
    182.;
    1.;
  |]

let expm a =
  if not (Mat.is_square a) then invalid_arg "Expm.expm: non-square";
  let n = Mat.rows a in
  (* scale so that ||A/2^s|| is small *)
  let norm = Mat.norm_inf a in
  let s = if norm <= 2. then 0 else int_of_float (ceil (log (norm /. 2.) /. log 2.)) in
  let a = Mat.scale (1. /. (2. ** float_of_int s)) a in
  (* Padé numerator/denominator: split into even and odd powers *)
  let a2 = Mat.mul a a in
  let a4 = Mat.mul a2 a2 in
  let a6 = Mat.mul a2 a4 in
  let id = Mat.identity n in
  let term c m = Mat.scale c m in
  (* u = A (b13 A6 A6 + b11 A6 A4 ... ) following the standard grouping *)
  let w1 =
    Mat.add (term pade13.(13) a6) (Mat.add (term pade13.(11) a4) (term pade13.(9) a2))
  in
  let w2 =
    Mat.add (term pade13.(7) a6) (Mat.add (term pade13.(5) a4) (Mat.add (term pade13.(3) a2) (term pade13.(1) id)))
  in
  let u = Mat.mul a (Mat.add (Mat.mul a6 w1) w2) in
  let z1 =
    Mat.add (term pade13.(12) a6) (Mat.add (term pade13.(10) a4) (term pade13.(8) a2))
  in
  let z2 =
    Mat.add (term pade13.(6) a6) (Mat.add (term pade13.(4) a4) (Mat.add (term pade13.(2) a2) (term pade13.(0) id)))
  in
  let v = Mat.add (Mat.mul a6 z1) z2 in
  (* r = (v - u)^{-1} (v + u) *)
  let r = Lu.solve_mat (Mat.sub v u) (Mat.add v u) in
  (* square back *)
  let result = ref r in
  for _ = 1 to s do
    result := Mat.mul !result !result
  done;
  !result

let expm_with_integral a h =
  if not (Mat.is_square a) then invalid_arg "Expm.expm_with_integral";
  if h <= 0. then invalid_arg "Expm.expm_with_integral: non-positive h";
  let n = Mat.rows a in
  (* exp of [[a h, h I]; [0, 0]] is [[e^{a h}, \int_0^h e^{a s} ds]; [0, I]] *)
  let augmented =
    Mat.init (2 * n) (2 * n) (fun i j ->
        if i < n && j < n then h *. Mat.get a i j
        else if i < n && j = i + n then h
        else 0.)
  in
  let e = expm augmented in
  let phi = Mat.init n n (fun i j -> Mat.get e i j) in
  let integral = Mat.init n n (fun i j -> Mat.get e i (j + n)) in
  (phi, integral)
