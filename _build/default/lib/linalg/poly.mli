(** Univariate real polynomials.

    A polynomial is stored as a coefficient array in ascending order of
    degree: [p.(k)] is the coefficient of [x^k].  The zero polynomial is
    [[|0.|]] (or any all-zero array); representations are normalised by
    {!trim}. *)

type t = float array

val zero : t
val one : t
val of_coeffs : float list -> t
(** Coefficients in ascending degree order. *)

val degree : t -> int
(** Degree after trimming; the zero polynomial has degree 0 by
    convention. *)

val trim : t -> t
(** Drop trailing (highest-degree) zero coefficients. *)

val eval : t -> float -> float
(** Horner evaluation. *)

val eval_mat : t -> Mat.t -> Mat.t
(** Evaluate the polynomial at a square matrix (Horner on matrices). *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val mul : t -> t -> t

val from_roots : float list -> t
(** Monic polynomial with the given real roots. *)

val from_conjugate_pairs : (float * float) list -> t
(** Monic polynomial whose roots are the given complex numbers together
    with their conjugates; each pair [(re, im)] contributes the real
    quadratic [x^2 - 2*re*x + (re^2 + im^2)].  Pairs with [im = 0]
    contribute the factor [(x - re)] once. *)

val derivative : t -> t

val approx_equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
