let symmetrize a = Mat.scale 0.5 (Mat.add a (Mat.transpose a))

let cholesky a =
  if not (Mat.is_square a) then invalid_arg "Lyapunov.cholesky: non-square";
  let a = symmetrize a in
  let n = Mat.rows a in
  let l = Array.make_matrix n n 0. in
  let ok = ref true in
  (let i = ref 0 in
   while !ok && !i < n do
     let i' = !i in
     for j = 0 to i' do
       let s = ref (Mat.get a i' j) in
       for k = 0 to j - 1 do
         s := !s -. (l.(i').(k) *. l.(j).(k))
       done;
       if i' = j then
         if !s <= 0. then ok := false else l.(i').(j) <- sqrt !s
       else l.(i').(j) <- !s /. l.(j).(j)
     done;
     incr i
   done);
  if !ok then Some (Mat.init n n (fun i j -> l.(i).(j))) else None

let is_positive_definite ?(tol = 1e-10) a =
  let a = symmetrize a in
  (* shift by a small multiple of the scale so that near-singular
     matrices are rejected *)
  let scale = Float.max 1e-30 (Mat.norm_inf a) in
  let shifted =
    Mat.sub a (Mat.scale (tol *. scale) (Mat.identity (Mat.rows a)))
  in
  match cholesky shifted with Some _ -> true | None -> false

let is_negative_definite ?tol a = is_positive_definite ?tol (Mat.scale (-1.) a)

let solve_discrete a q =
  if not (Mat.is_square a) || not (Mat.is_square q) then
    invalid_arg "Lyapunov.solve_discrete: non-square";
  if Mat.rows a <> Mat.rows q then
    invalid_arg "Lyapunov.solve_discrete: shape mismatch";
  let n = Mat.rows a in
  let at = Mat.transpose a in
  (* vec(aᵀ p a) = (aᵀ ⊗ aᵀ) vec p with column-major vec; using
     row-major vec the same identity holds with (a ⊗ a)ᵀ = aᵀ ⊗ aᵀ, so
     the system matrix is identical either way. *)
  let system = Mat.sub (Mat.identity (n * n)) (Mat.kron at at) in
  let vec_q = Array.init (n * n) (fun k -> Mat.get q (k / n) (k mod n)) in
  let vec_p = Lu.solve system vec_q in
  symmetrize (Mat.init n n (fun i j -> vec_p.((i * n) + j)))

let residual a q p =
  let at = Mat.transpose a in
  Mat.norm_fro (Mat.add (Mat.sub (Mat.mul at (Mat.mul p a)) p) q)

let decreases p a =
  is_negative_definite (Mat.sub (Mat.mul (Mat.transpose a) (Mat.mul p a)) p)

(* Projected subgradient search for a common quadratic Lyapunov
   function (after Liberzon & Tempo, IEEE TAC 2004).  Minimise
   f(P) = max_i lambda_max(A_i^T P A_i - P) over the set
   {P symmetric, lambda_min(P) >= eps, tr P = n}.  A subgradient of
   lambda_max at P is (A_i v)(A_i v)^T - v v^T for a top unit
   eigenvector v of the worst mode.  Feasible iff f can be pushed
   strictly negative. *)
let subgradient_search modes n ~iterations =
  let eps = 1e-4 in
  let project p =
    (* clamp eigenvalues at eps, renormalise the trace to n *)
    let d, v = Eig.sym_eig p in
    let d = Array.map (fun x -> Float.max x eps) d in
    let clamped =
      Mat.mul v (Mat.mul (Mat.init n n (fun i j -> if i = j then d.(i) else 0.))
                   (Mat.transpose v))
    in
    let t = Mat.trace clamped in
    symmetrize (Mat.scale (float_of_int n /. t) clamped)
  in
  let worst p =
    (* (value, subgradient) of f at p *)
    List.fold_left
      (fun acc a ->
        let m = Mat.sub (Mat.mul (Mat.transpose a) (Mat.mul p a)) p in
        let d, vecs = Eig.sym_eig m in
        let top = Array.length d - 1 in
        let value = d.(top) in
        match acc with
        | Some (best, _) when best >= value -> acc
        | _ ->
          let v = Mat.col vecs top in
          let av = Mat.mul_vec a v in
          Some (value, Mat.sub (Mat.outer av av) (Mat.outer v v)))
      None modes
  in
  let p = ref (project (Mat.identity n)) in
  let found = ref None in
  let i = ref 0 in
  (* plateau detection: feasible instances drop below 0 within a few
     hundred balanced iterations; a stagnating positive objective is a
     strong infeasibility signal and not worth the full budget *)
  let best = ref infinity in
  let last_improvement = ref 0 in
  let stalled = ref false in
  while (!found = None) && (not !stalled) && !i < iterations do
    (match worst !p with
     | None -> found := Some !p
     | Some (value, g) ->
       if value < -.eps then found := Some !p
       else begin
         if value < !best -. (0.01 *. Float.abs !best) then begin
           best := value;
           last_improvement := !i
         end
         else if !i - !last_improvement > 500 then stalled := true;
         (* Polyak-style step towards f(P) = -2 eps *)
         let gnorm2 = Mat.norm_fro g ** 2. in
         let step = (value +. (2. *. eps)) /. Float.max 1e-12 gnorm2 in
         p := project (Mat.sub !p (Mat.scale step g))
       end);
    incr i
  done;
  !found

(* Diagonal balancing similarity: D A D⁻¹ equalises per-coordinate row
   and column magnitudes across the whole mode set, which dramatically
   speeds up the subgradient search on badly scaled closed loops (e.g.
   when the feedback gain spans orders of magnitude).  CQLF existence
   is invariant: Q works for the balanced set iff DᵀQD works for the
   original one. *)
let balancing_scales modes n =
  Array.init n (fun j ->
      let col_max =
        List.fold_left
          (fun acc m ->
            Array.fold_left Float.max acc (Array.map Float.abs (Mat.col m j)))
          1e-9 modes
      and row_max =
        List.fold_left
          (fun acc m ->
            Array.fold_left Float.max acc (Array.map Float.abs (Mat.row m j)))
          1e-9 modes
      in
      sqrt (col_max /. row_max))

let common_lyapunov a1 a2 =
  if Mat.rows a1 <> Mat.rows a2 || Mat.cols a1 <> Mat.cols a2 then
    invalid_arg "Lyapunov.common_lyapunov: shape mismatch";
  let n = Mat.rows a1 in
  let q = Mat.identity n in
  let candidate_of m = try Some (solve_discrete m q) with Lu.Singular -> None in
  let good p = is_positive_definite p && decreases p a1 && decreases p a2 in
  let cheap =
    (* fast path: convex combinations of the per-mode certificates *)
    match (candidate_of a1, candidate_of a2) with
    | Some p1, Some p2 ->
      List.init 11 (fun k ->
          let t = float_of_int k /. 10. in
          Mat.add (Mat.scale (1. -. t) p1) (Mat.scale t p2))
    | Some p, None | None, Some p -> [ p ]
    | None, None -> []
  in
  match List.find_opt good cheap with
  | Some p -> Some p
  | None ->
    let d = balancing_scales [ a1; a2 ] n in
    let dm = Mat.init n n (fun i j -> if i = j then d.(i) else 0.) in
    let dinv = Mat.init n n (fun i j -> if i = j then 1. /. d.(i) else 0.) in
    let balance m = Mat.mul dm (Mat.mul m dinv) in
    (match
       subgradient_search [ balance a1; balance a2 ] n ~iterations:20_000
     with
     | Some qcert ->
       let p = symmetrize (Mat.mul (Mat.transpose dm) (Mat.mul qcert dm)) in
       if good p then Some p else None
     | None -> None)
