(** Dense real vectors.

    A vector is an immutable-by-convention [float array]; functions in
    this module never mutate their arguments unless the name says so
    (suffix [_inplace]). *)

type t = float array

val make : int -> float -> t
(** [make n x] is the vector of dimension [n] filled with [x]. *)

val zeros : int -> t
(** [zeros n] is the zero vector of dimension [n]. *)

val of_list : float list -> t

val dim : t -> int

val init : int -> (int -> float) -> t

val basis : int -> int -> t
(** [basis n i] is the [i]-th canonical basis vector of dimension [n]. *)

val copy : t -> t

val add : t -> t -> t
(** Pointwise sum.  @raise Invalid_argument on dimension mismatch. *)

val sub : t -> t -> t

val scale : float -> t -> t

val neg : t -> t

val dot : t -> t -> float
(** Inner product.  @raise Invalid_argument on dimension mismatch. *)

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float
(** Max-absolute-value norm; 0 on the empty vector. *)

val axpy : float -> t -> t -> t
(** [axpy a x y] is [a*x + y]. *)

val map : (float -> float) -> t -> t

val concat : t -> t -> t
(** [concat x y] stacks [x] above [y]. *)

val sub_vec : t -> pos:int -> len:int -> t
(** [sub_vec v ~pos ~len] extracts the slice [v.(pos) .. v.(pos+len-1)]. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Componentwise comparison with absolute tolerance (default [1e-9]).
    Vectors of different dimensions are never equal. *)

val pp : Format.formatter -> t -> unit
