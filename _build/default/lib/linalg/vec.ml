type t = float array

let make n x = Array.make n x
let zeros n = Array.make n 0.
let of_list = Array.of_list
let dim = Array.length
let init = Array.init
let copy = Array.copy

let basis n i =
  if i < 0 || i >= n then invalid_arg "Vec.basis: index out of range";
  let v = zeros n in
  v.(i) <- 1.;
  v

let check_dim name a b =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name
                   (Array.length a) (Array.length b))

let add a b =
  check_dim "add" a b;
  Array.init (Array.length a) (fun i -> a.(i) +. b.(i))

let sub a b =
  check_dim "sub" a b;
  Array.init (Array.length a) (fun i -> a.(i) -. b.(i))

let scale s a = Array.map (fun x -> s *. x) a
let neg a = scale (-1.) a

let dot a b =
  check_dim "dot" a b;
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm2 a = sqrt (dot a a)

let norm_inf a = Array.fold_left (fun m x -> Float.max m (Float.abs x)) 0. a

let axpy a x y =
  check_dim "axpy" x y;
  Array.init (Array.length x) (fun i -> (a *. x.(i)) +. y.(i))

let map = Array.map
let concat = Array.append

let sub_vec v ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Array.length v then
    invalid_arg "Vec.sub_vec: slice out of range";
  Array.sub v pos len

let approx_equal ?(tol = 1e-9) a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= tol) a b

let pp ppf v =
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf x -> Format.fprintf ppf "%g" x))
    (Array.to_list v)
