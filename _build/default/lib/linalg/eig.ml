let charpoly a =
  if not (Mat.is_square a) then invalid_arg "Eig.charpoly: non-square";
  let n = Mat.rows a in
  (* Faddeev–LeVerrier: m_1 = a, c_1 = -tr m_1,
     m_k = a (m_{k-1} + c_{k-1} I), c_k = -tr(m_k)/k *)
  let coeffs = Array.make (n + 1) 0. in
  coeffs.(n) <- 1.;
  let m = ref a in
  let c = ref (-.Mat.trace a) in
  coeffs.(n - 1) <- !c;
  for k = 2 to n do
    m := Mat.mul a (Mat.add !m (Mat.scale !c (Mat.identity n)));
    c := -.Mat.trace !m /. float_of_int k;
    coeffs.(n - k) <- !c
  done;
  coeffs

let poly_roots ?(iterations = 500) p =
  let p = Poly.trim p in
  let deg = Array.length p - 1 in
  if deg < 1 then invalid_arg "Eig.poly_roots: constant polynomial";
  let lead = p.(deg) in
  let monic = Array.map (fun c -> c /. lead) p in
  let eval_c z =
    let acc = ref Complex.zero in
    for k = deg downto 0 do
      acc := Complex.add (Complex.mul !acc z) { re = monic.(k); im = 0. }
    done;
    !acc
  in
  (* Durand–Kerner with the customary seed (0.4 + 0.9i)^k scaled by a
     root bound *)
  let bound =
    1.
    +. Array.fold_left
         (fun acc c -> Float.max acc (Float.abs c))
         0. (Array.sub monic 0 deg)
  in
  let seed = { Complex.re = 0.4; im = 0.9 } in
  let roots =
    Array.init deg (fun k ->
        Complex.mul { re = bound; im = 0. } (Complex.pow seed { re = float_of_int (k + 1); im = 0. }))
  in
  let tol = 1e-13 in
  let converged = ref false in
  let it = ref 0 in
  while (not !converged) && !it < iterations do
    converged := true;
    for i = 0 to deg - 1 do
      let denom = ref Complex.one in
      for j = 0 to deg - 1 do
        if j <> i then denom := Complex.mul !denom (Complex.sub roots.(i) roots.(j))
      done;
      let delta = Complex.div (eval_c roots.(i)) !denom in
      if Complex.norm delta > tol *. Float.max 1. (Complex.norm roots.(i)) then
        converged := false;
      roots.(i) <- Complex.sub roots.(i) delta
    done;
    incr it
  done;
  let snap z =
    let cutoff = 1e-8 *. Float.max 1. (Complex.norm z) in
    let re = if Float.abs z.Complex.re < 1e-12 then 0. else z.Complex.re in
    let im = if Float.abs z.Complex.im < cutoff then 0. else z.Complex.im in
    { Complex.re; im }
  in
  Array.to_list roots |> List.map snap
  |> List.sort (fun a b -> compare (Complex.norm b) (Complex.norm a))

let eigenvalues ?iterations a = poly_roots ?iterations (charpoly a)

let spectral_radius a =
  match eigenvalues a with
  | [] -> 0.
  | z :: _ -> Complex.norm z

let is_schur_stable ?(margin = 0.) a = spectral_radius a < 1. -. margin

let sym_eig a =
  if not (Mat.is_square a) then invalid_arg "Eig.sym_eig: non-square";
  let n = Mat.rows a in
  let m = Array.init n (fun i -> Array.init n (fun j -> (Mat.get a i j +. Mat.get a j i) /. 2.)) in
  let v = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1. else 0.)) in
  let off_diag () =
    let s = ref 0. in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        s := !s +. (m.(i).(j) *. m.(i).(j))
      done
    done;
    !s
  in
  let sweep () =
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        if Float.abs m.(p).(q) > 1e-14 then begin
          let theta = (m.(q).(q) -. m.(p).(p)) /. (2. *. m.(p).(q)) in
          let t =
            let s = if theta >= 0. then 1. else -1. in
            s /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.))
          in
          let c = 1. /. sqrt ((t *. t) +. 1.) in
          let s = t *. c in
          for k = 0 to n - 1 do
            let mkp = m.(k).(p) and mkq = m.(k).(q) in
            m.(k).(p) <- (c *. mkp) -. (s *. mkq);
            m.(k).(q) <- (s *. mkp) +. (c *. mkq)
          done;
          for k = 0 to n - 1 do
            let mpk = m.(p).(k) and mqk = m.(q).(k) in
            m.(p).(k) <- (c *. mpk) -. (s *. mqk);
            m.(q).(k) <- (s *. mpk) +. (c *. mqk)
          done;
          for k = 0 to n - 1 do
            let vkp = v.(k).(p) and vkq = v.(k).(q) in
            v.(k).(p) <- (c *. vkp) -. (s *. vkq);
            v.(k).(q) <- (s *. vkp) +. (c *. vkq)
          done
        end
      done
    done
  in
  let guard = ref 0 in
  while off_diag () > 1e-24 && !guard < 100 do
    sweep ();
    incr guard
  done;
  (* sort eigenvalues ascending, permuting eigenvector columns along *)
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare m.(i).(i) m.(j).(j)) order;
  let d = Array.map (fun i -> m.(i).(i)) order in
  let vm = Mat.init n n (fun i j -> v.(i).(order.(j))) in
  (d, vm)

let sym_eigenvalues a = fst (sym_eig a)
