(** Matrix exponential by Padé approximation with scaling and squaring
    (the classic Higham scheme, fixed [13, 13] approximant), plus the
    augmented-matrix trick for the zero-order-hold integral. *)

val expm : Mat.t -> Mat.t
(** [expm a] is [e^a].  @raise Invalid_argument on non-square input. *)

val expm_with_integral : Mat.t -> float -> Mat.t * Mat.t
(** [expm_with_integral a h] returns
    [(e^{a h}, \int_0^h e^{a s} ds)] computed together via the
    exponential of the augmented block matrix [[a I; 0 0]] — exactly
    the pair needed for zero-order-hold discretisation. *)
