lib/linalg/eig.ml: Array Complex Float List Mat Poly
