lib/linalg/lu.ml: Array Float List Mat
