lib/linalg/lyapunov.ml: Array Eig Float List Lu Mat
