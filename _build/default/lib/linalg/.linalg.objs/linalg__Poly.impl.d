lib/linalg/poly.ml: Array Float Format Int List Mat
