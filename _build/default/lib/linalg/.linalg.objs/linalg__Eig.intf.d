lib/linalg/eig.mli: Complex Mat Poly
