lib/linalg/poly.mli: Format Mat
