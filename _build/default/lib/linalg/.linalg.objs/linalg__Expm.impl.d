lib/linalg/expm.ml: Array Lu Mat
