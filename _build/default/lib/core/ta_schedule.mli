(** The paper's simulation flow (Sec. 5): "Using UPPAAL, we simulate
    the timed automata models ... Using the obtained switching
    sequences, we simulate the control loops in MATLAB."

    This module drives the Fig. 5-7 network with the concrete-state
    executor ({!Ta.Concrete}), resolving the nondeterminism with a
    deterministic policy that fires each scripted disturbance at its
    sample and otherwise never disturbs (and never takes an Error
    edge voluntarily), then reads the slot-ownership sequence out of
    the scheduler's shared state.

    Its output is directly comparable with
    {!Sched.Arbiter.owner_trace}: the test suite checks that the model
    simulated as timed automata and the executable scheduler produce
    identical schedules. *)

exception Error_reached of int
(** An application automaton reached Error during simulation (payload:
    its id). *)

val owner_trace :
  Sched.Appspec.t array ->
  disturbances:(int * int) list ->
  horizon:int ->
  int option array
(** [owner_trace specs ~disturbances ~horizon] simulates the network
    for [horizon] samples with the given [(sample, id)] disturbance
    script (same convention as {!Sched.Arbiter.run}: the disturbance is
    seen by the scheduler at that sample) and returns the slot owner
    during each sample.
    @raise Error_reached when the script drives an application into
    Error.
    @raise Invalid_argument on out-of-range ids or samples.
    @raise Ta.Concrete.Stuck on a model bug (the tick-driven network
    cannot time-lock under the shipped policy). *)
