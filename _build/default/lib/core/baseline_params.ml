type t = { w_star : int; c_occ : int }

let compute ?threshold p g ~j_star =
  (* settling when waiting t_w and then holding the slot to rejection *)
  let hold t_w =
    let mode k = if k < t_w then Control.Switched.Me else Control.Switched.Mt in
    Control.Settle.settling_index ?threshold
      (Control.Switched.run p g mode (Control.Switched.disturbed p) (t_w + 600))
  in
  (match hold 0 with
   | Some j when j <= j_star -> ()
   | Some j ->
     raise
       (Dwell.Infeasible
          (Printf.sprintf "baseline: immediate grant settles at %d > J* = %d" j
             j_star))
   | None -> raise (Dwell.Infeasible "baseline: TT mode never settles"));
  let rec scan t_w last =
    match hold t_w with
    | Some j when j <= j_star -> scan (t_w + 1) (Some t_w)
    | Some _ | None -> last
  in
  let w_star = Option.get (scan 0 None) in
  let c_occ = ref 1 in
  for t_w = 0 to w_star do
    match hold t_w with
    | Some j -> c_occ := Int.max !c_occ (j - t_w)
    | None -> ()
  done;
  { w_star; c_occ = !c_occ }

let to_spec ~id ~name ~r t =
  Sched.Baseline.make_spec ~id ~name ~w_star:t.w_star ~c_occ:t.c_occ ~r
