let mode_at ~t_w ~t_dw k =
  if t_w < 0 || t_dw < 0 then invalid_arg "Strategy.mode_at: negative time";
  if k >= t_w && k < t_w + t_dw then Control.Switched.Mt else Control.Switched.Me

let pure mode _k = mode

let default_horizon p g ~t_w ~t_dw =
  (* long enough that the post-switch ET tail decides settling: the ET
     closed loop is required to be Schur stable, so a few multiples of
     the slowest-mode memory suffice; 400 samples dwarf every settling
     time in the paper's operating range *)
  ignore p;
  ignore g;
  t_w + t_dw + 400

let response ?threshold ?horizon p g ~t_w ~t_dw =
  ignore threshold;
  let horizon =
    match horizon with Some n -> n | None -> default_horizon p g ~t_w ~t_dw
  in
  Control.Switched.run p g (mode_at ~t_w ~t_dw) (Control.Switched.disturbed p)
    horizon

let settling ?threshold ?horizon p g ~t_w ~t_dw =
  Control.Settle.settling_index ?threshold (response ?threshold ?horizon p g ~t_w ~t_dw)
