(** First-fit mapping of applications to TT slots (paper Sec. 5,
    "Resource mapping").

    Applications are sorted by ascending [T*_w], ties broken by the
    smaller maximum of [T⁻_dw] (written T⁻*_dw in the paper), and
    packed first-fit: each application is added to the first existing
    slot whose extended group still passes control-performance
    verification; otherwise it opens a new slot. *)

type verifier =
  Sched.Appspec.t array -> [ `Safe | `Unsafe ]
(** Pluggable group verifier (the discrete engine by default; the
    timed-automata engine can be swapped in for cross-checking). *)

type slot = { index : int; apps : App.t list }

type outcome = {
  slots : slot list;
  verifications : int;  (** number of verifier calls performed *)
}

val sort_order : App.t list -> App.t list
(** The paper's sorting: ascending [T*_w], then ascending [T⁻*_dw],
    then name for determinism. *)

val default_verifier : verifier
(** {!Dverify.verify} with subsumption. *)

val first_fit : ?verifier:verifier -> ?presorted:bool -> App.t list -> outcome
(** Run the mapping.  When [presorted] is false (default) the input is
    sorted with {!sort_order} first. *)

val specs_of_group : App.t list -> Sched.Appspec.t array
(** Dense scheduler specs for a candidate group (ids assigned in list
    order). *)

val pp : Format.formatter -> outcome -> unit

val optimal : ?verifier:verifier -> App.t list -> outcome
(** Exact minimum-slot partition (in contrast to the paper's first-fit
    heuristic).  Group safety is monotone — disturbing one application
    less can only shrink the adversary's options, so every superset of
    an unsafe group is unsafe and every subset of a safe group is safe
    — which prunes most of the subset lattice; the minimum partition
    over the safe subsets is then found by dynamic programming over
    bitmasks.  Exponential in the number of applications (fine for the
    slot-sized instances this problem deals in; guarded at 16 apps).
    [verifications] counts the verifier calls actually performed after
    pruning.  @raise Invalid_argument beyond 16 applications. *)
