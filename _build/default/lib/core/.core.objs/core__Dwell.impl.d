lib/core/dwell.ml: Array Control Format Int Linalg List Result Strategy
