lib/core/strategy.ml: Control
