lib/core/strategy.mli: Control
