lib/core/dverify.ml: Array Format Hashtbl List Obj Option Printf Queue Sched String Unix
