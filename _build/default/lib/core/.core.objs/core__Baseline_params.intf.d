lib/core/baseline_params.mli: Control Sched
