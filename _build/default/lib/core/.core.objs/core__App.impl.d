lib/core/app.ml: Control Dwell Format Sched
