lib/core/dverify.mli: Format Sched
