lib/core/ta_schedule.ml: Array Hashtbl List Printf Sched String Ta Ta_model
