lib/core/ta_model.ml: Array Int List Printf Sched Ta
