lib/core/fleet.mli: App
