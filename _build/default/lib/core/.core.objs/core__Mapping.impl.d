lib/core/mapping.ml: App Array Dverify Dwell Format Int List Option Sched String
