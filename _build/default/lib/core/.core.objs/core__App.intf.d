lib/core/app.mli: Control Dwell Format Sched
