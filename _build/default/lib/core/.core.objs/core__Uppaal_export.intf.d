lib/core/uppaal_export.mli: Sched
