lib/core/ta_model.mli: Sched Ta
