lib/core/dwell.mli: Control Format
