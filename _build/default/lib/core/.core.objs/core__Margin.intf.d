lib/core/margin.mli: App Format Sched
