lib/core/margin.ml: App Array Dverify Dwell Format Int List Mapping Strategy
