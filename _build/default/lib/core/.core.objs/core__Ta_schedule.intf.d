lib/core/ta_schedule.mli: Sched
