lib/core/baseline_params.ml: Control Dwell Int Option Printf Sched
