lib/core/uppaal_export.ml: Array Buffer Filename Fun Int List Printf Sched String
