lib/core/mapping.mli: App Format Sched
