lib/core/table_codec.ml: Array Dwell Int List Printf Result String
