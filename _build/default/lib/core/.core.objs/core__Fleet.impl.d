lib/core/fleet.ml: App Array Control Dwell Int Linalg List Printf Random
