lib/core/table_codec.mli: Dwell
