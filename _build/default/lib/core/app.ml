type t = {
  name : string;
  plant : Control.Plant.t;
  gains : Control.Switched.gains;
  r : int;
  j_star : int;
  table : Dwell.t;
}

let make ?threshold ?stride ~name ~plant ~gains ~r ~j_star () =
  if j_star >= r then
    invalid_arg "App.make: the sporadic model requires J* < r";
  let table = Dwell.compute ?threshold ?stride plant gains ~j_star in
  (* fail early if the spec would be rejected by the scheduler layer *)
  let _ : Sched.Appspec.t =
    Sched.Appspec.make ~id:0 ~name ~t_w_max:table.Dwell.t_w_max
      ~t_dw_min:table.Dwell.t_dw_min ~t_dw_max:table.Dwell.t_dw_max ~r
  in
  { name; plant; gains; r; j_star; table }

let spec t ~id =
  Sched.Appspec.make ~id ~name:t.name ~t_w_max:t.table.Dwell.t_w_max
    ~t_dw_min:t.table.Dwell.t_dw_min ~t_dw_max:t.table.Dwell.t_dw_max ~r:t.r

let t_w_max t = t.table.Dwell.t_w_max

let pp ppf t =
  Format.fprintf ppf "@[<v>%s (J* = %d, r = %d)@,%a@]" t.name t.j_star t.r
    Dwell.pp t.table
