(** Synthetic application fleets for scalability experiments beyond the
    paper's six-application case study.

    Each fleet member is built end to end: a randomly drawn
    second-order plant (stable or marginally unstable), switching gains
    synthesised by {!Control.Design}, a settling budget chosen inside
    the achievable [J_T < J* < J_E] bracket, and an inter-arrival time
    just large enough for the sporadic model.  Generation is
    deterministic in the seed. *)

type params = {
  seed : int;
  count : int;
  j_star_choices : int list;  (** budgets tried per plant, in order *)
  r_slack : int;  (** quiet margin added beyond the minimum legal [r] *)
}

val default_params : params
(** seed 42, budgets [[18; 22; 26; 30]], slack 6. *)

val generate : ?params:params -> unit -> App.t list
(** Generate [params.count] applications named "F1", "F2", ...
    Plants that defeat gain synthesis or whose budgets cannot be
    bracketed are skipped (more are drawn until [count] succeed).
    @raise Failure if 20x [count] draws do not yield enough
    applications (pathological parameters). *)

val describe : App.t -> string
(** One-line summary: name, T*_w, r, dwell range. *)
