(** Control-performance margins of a verified slot group.

    Verification answers a yes/no question; this analysis extracts the
    quantitative story behind a "yes".  The exhaustive exploration
    records, per application, the worst wait at which the slot was ever
    granted ({!Dverify.stats}); combined with the dwell tables, that
    yields the exact worst-case settling time the group can exhibit —
    and hence how much of the budget [J*] is actually consumed, i.e.
    how much headroom the dimensioning leaves.  A group whose margins
    are all large is a candidate for taking on more applications; a
    zero margin means the slot is dimensioned exactly tight, which is
    the paper's goal. *)

type row = {
  name : string;
  j_star : int;
  worst_wait : int option;  (** largest grant wait reachable; [None] if
                                the app is never granted *)
  worst_settling : int option;
      (** worst-case J in samples: the maximum settling over every wait
          up to the observed worst and every admissible dwell at that
          wait.  An upper bound on the exact worst case (some
          intermediate waits may be unreachable), tight in practice,
          and guaranteed [<= j_star] whenever the group verifies
          safe. *)
  margin : int option;  (** [j_star - worst_settling] *)
}

type report = { rows : row list; safe : bool }

val analyse :
  ?policy:Sched.Slot_state.policy ->
  apps:App.t list ->
  unit ->
  report
(** Exhaustively verify the group and derive the margins.  When the
    group is unsafe, [safe] is false and the rows are meaningless
    (exploration stops at the first counterexample). *)

val pp : Format.formatter -> report -> unit
