type params = {
  seed : int;
  count : int;
  j_star_choices : int list;
  r_slack : int;
}

let default_params =
  { seed = 42; count = 8; j_star_choices = [ 18; 22; 26; 30 ]; r_slack = 6 }

let draw_plant rs =
  let range lo hi = lo +. Random.State.float rs (hi -. lo) in
  let phi =
    Linalg.Mat.of_rows
      [
        [ range 0.85 1.01; range 0.01 0.1 ];
        [ range (-0.05) 0.05; range 0.85 1.01 ];
      ]
  in
  let gamma = [| range 0.001 0.02; range 0.05 0.2 |] in
  Control.Plant.make ~phi ~gamma ~c:[| 1.; 0. |] ~h:0.02

let try_build name plant j_star ~r_slack =
  match Control.Design.synthesize plant ~j_star with
  | Error _ -> None
  | Ok gains ->
    (match Dwell.compute plant gains ~j_star with
     | exception Dwell.Infeasible _ -> None
     | table ->
       let max_service =
         let best = ref 0 in
         Array.iteri
           (fun t_w d -> best := Int.max !best (t_w + d))
           table.Dwell.t_dw_max;
         !best
       in
       let r = Int.max j_star max_service + 1 + r_slack in
       (match App.make ~name ~plant ~gains ~r ~j_star () with
        | app -> Some app
        | exception (Invalid_argument _ | Dwell.Infeasible _) -> None))

let generate ?(params = default_params) () =
  if params.count < 1 then invalid_arg "Fleet.generate: count";
  let rs = Random.State.make [| params.seed |] in
  let apps = ref [] in
  let produced = ref 0 in
  let draws = ref 0 in
  while !produced < params.count do
    incr draws;
    if !draws > 20 * params.count then
      failwith "Fleet.generate: too many failed draws";
    let plant = draw_plant rs in
    if Control.Ctrb.is_controllable plant.Control.Plant.phi plant.Control.Plant.gamma
    then begin
      let name = Printf.sprintf "F%d" (!produced + 1) in
      let rec try_budgets = function
        | [] -> ()
        | j_star :: rest ->
          (match try_build name plant j_star ~r_slack:params.r_slack with
           | Some app ->
             apps := app :: !apps;
             incr produced
           | None -> try_budgets rest)
      in
      try_budgets params.j_star_choices
    end
  done;
  List.rev !apps

let describe (a : App.t) =
  let t = a.App.table in
  Printf.sprintf "%s: J*=%d r=%d T*_w=%d dwell %d..%d" a.App.name a.App.j_star
    a.App.r t.Dwell.t_w_max
    (Array.fold_left Int.min max_int t.Dwell.t_dw_min)
    (Array.fold_left Int.max 0 t.Dwell.t_dw_max)
