exception Error_reached of int

let owner_trace (specs : Sched.Appspec.t array) ~disturbances ~horizon =
  let n = Array.length specs in
  List.iter
    (fun (sample, id) ->
      if id < 0 || id >= n then invalid_arg "Ta_schedule: bad id";
      if sample < 0 || sample >= horizon then
        invalid_arg "Ta_schedule: disturbance outside the horizon")
    disturbances;
  let net = Ta_model.build specs in
  let name_of id = specs.(id).Sched.Appspec.name in
  let disturb_label id =
    Printf.sprintf "%s: Steady -> Dist_init" (name_of id)
  in
  let safe_label id = Printf.sprintf "%s: ET_SAFE -> Steady" (name_of id) in
  let error_prefix id = Printf.sprintf "%s: ET_Wait -> Error" (name_of id) in
  let fired = Hashtbl.create 8 in
  (* A deterministic resolution of the model's nondeterminism:
     quiet-period expiries first (they may unlock a scripted
     disturbance at the same instant), then scripted disturbances for
     the current tick, then whatever the committed chains and
     invariants force.  Error edges are never taken voluntarily; their
     enabledness is reported as a deadline miss instead. *)
  let policy (st : Ta.Concrete.state) actions =
    List.iter
      (fun (a : Ta.Concrete.action) ->
        for id = 0 to n - 1 do
          if String.equal a.Ta.Concrete.label (error_prefix id) then
            raise (Error_reached id)
        done)
      actions;
    let not_error (a : Ta.Concrete.action) =
      not
        (List.exists
           (fun id -> String.equal a.Ta.Concrete.label (error_prefix id))
           (List.init n (fun i -> i)))
    in
    let is_safe_expiry (a : Ta.Concrete.action) =
      List.exists
        (fun id -> String.equal a.Ta.Concrete.label (safe_label id))
        (List.init n (fun i -> i))
    in
    let scheduled_now (a : Ta.Concrete.action) =
      (* arbiter sample k <-> registration at TA time k + 1 *)
      List.exists
        (fun (sample, id) ->
          st.Ta.Concrete.time = sample + 1
          && String.equal a.Ta.Concrete.label (disturb_label id)
          && not (Hashtbl.mem fired (sample, id)))
        disturbances
    in
    let is_disturbance (a : Ta.Concrete.action) =
      List.exists
        (fun id -> String.equal a.Ta.Concrete.label (disturb_label id))
        (List.init n (fun i -> i))
    in
    match List.find_opt is_safe_expiry actions with
    | Some a -> Some a
    | None ->
      (match List.find_opt scheduled_now actions with
       | Some a ->
         List.iter
           (fun (sample, id) ->
             if
               st.Ta.Concrete.time = sample + 1
               && String.equal a.Ta.Concrete.label (disturb_label id)
             then Hashtbl.replace fired (sample, id) ())
           disturbances;
         Some a
       | None ->
         let admissible =
           List.filter
             (fun a -> not_error a && not (is_disturbance a))
             actions
         in
         if Ta.Network.delay_forbidden net st.Ta.Concrete.locs
            || not (Ta.Concrete.can_delay net st)
         then (match admissible with [] -> None | a :: _ -> Some a)
         else None)
  in
  let result = Array.make horizon None in
  let observer (st : Ta.Concrete.state) = function
    | Some _ -> ()
    | None ->
      (* a unit delay just covered the interval [time-1, time); it
         corresponds to the arbiter's sample time-2 *)
      let sample = st.Ta.Concrete.time - 2 in
      if sample >= 0 && sample < horizon then begin
        let owner_var = Ta_model.Layout.owner ~n in
        let run_var = Ta_model.Layout.run ~n in
        result.(sample) <-
          (if st.Ta.Concrete.store.(run_var) = 1 then
             Some st.Ta.Concrete.store.(owner_var)
           else None)
      end
  in
  let (_ : Ta.Concrete.state) =
    Ta.Concrete.run net policy ~until:(horizon + 1) observer
  in
  List.iter
    (fun (sample, id) ->
      if not (Hashtbl.mem fired (sample, id)) then
        invalid_arg
          (Printf.sprintf
             "Ta_schedule: disturbance (%d, %s) could not be delivered \
              (application not steady)"
             sample (name_of id)))
    disturbances;
  result
