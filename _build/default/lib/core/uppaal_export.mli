(** Export a slot group as a real UPPAAL 4.x model.

    The generated system mirrors the paper's Figs. 5–7 — one
    application template (auto-instantiated over the id range), and a
    scheduler whose Policy/Sort bookkeeping runs through committed
    locations with per-request buffer-transfer loops, exactly as in
    Fig. 6 (clock resets of [t\[id\]] happen inline on those loop
    transitions, which is what UPPAAL's expression language allows).
    The safety query [A\[\] forall (i : id_t) not App(i).Error] is
    embedded in the file's query section.

    The export enables an external cross-check of this library's
    verifiers against the tool the paper actually used; the test suite
    checks the XML structurally (balanced tags, declarations,
    constants), since UPPAAL itself is not available offline. *)

val model : Sched.Appspec.t array -> string
(** The complete [.xml] document.  @raise Invalid_argument on an empty
    group. *)

val query : Sched.Appspec.t array -> string
(** The safety formula alone (also embedded in {!model}), suitable for
    a [.q] file. *)

val write :
  dir:string -> basename:string -> Sched.Appspec.t array -> (string, string) result
(** Write [<dir>/<basename>.xml] and [<dir>/<basename>.q]; returns the
    model path. *)
