(** Timing parameters of the {e baseline} strategy (Masrur et al.,
    DATE'12) derived from the closed-loop dynamics.

    In the baseline an application that obtains the TT slot keeps it
    until the disturbance is fully rejected.  Its scheduling interface
    therefore reduces to a deadline [w_star] (the longest wait after
    which full-TT rejection still meets [J*]) and a worst-case
    occupancy [c_occ] (the longest it may then hold the slot). *)

type t = { w_star : int; c_occ : int }

val compute :
  ?threshold:float ->
  Control.Plant.t ->
  Control.Switched.gains ->
  j_star:int ->
  t
(** @raise Dwell.Infeasible when even an immediate grant cannot meet
    the budget. *)

val to_spec :
  id:int -> name:string -> r:int -> t -> Sched.Baseline.spec
