(** Results of a closed-loop co-simulation. *)

type t = {
  names : string array;
  h : float;  (** sampling period of the group *)
  outputs : float array array;  (** [outputs.(id).(k)] = y_id at sample k *)
  owner : int option array;  (** slot owner during [k, k+1) *)
  log : Sched.Arbiter.log_entry list;
  disturbances : (int * int) list;  (** (sample, id) *)
}

val settling_after :
  ?threshold:float -> t -> id:int -> sample:int -> int option
(** Settling index of application [id] measured from the disturbance at
    [sample] (in samples since the disturbance); [None] when the tail
    has not settled within the trace. *)

val tt_samples : t -> id:int -> int
(** Total samples during which [id] owned the slot. *)

val owner_intervals : t -> (int * int * int) list
(** Maximal ownership intervals [(id, first, last)] (inclusive). *)

val meets_requirements : ?threshold:float -> t -> Core.App.t list -> bool
(** Every disturbance of every app settles within its [J*]. *)

val to_rows : t -> stride:int -> string list
(** Human-readable table rows ["t  y1 y2 ... owner"] every [stride]
    samples, for the bench harness printouts. *)

val to_gantt : t -> string list
(** One line per application: '#' while it owns the TT slot, '*' at the
    sample its disturbance is sensed, '.' otherwise — the textual
    version of the shaded occupancy ribbons in Figs. 8/9. *)
