type t = {
  names : string array;
  h : float;
  outputs : float array array;
  owner : int option array;
  log : Sched.Arbiter.log_entry list;
  disturbances : (int * int) list;
}

let settling_after ?threshold t ~id ~sample =
  let y = t.outputs.(id) in
  let len = Array.length y in
  if sample < 0 || sample >= len then invalid_arg "Trace.settling_after";
  (* measure on the suffix up to the next disturbance of the same app
     (or the end of the trace) *)
  let stop =
    List.fold_left
      (fun acc (s, i) -> if i = id && s > sample && s < acc then s else acc)
      len t.disturbances
  in
  let suffix = Array.sub y sample (stop - sample) in
  Control.Settle.settling_index ?threshold suffix

let tt_samples t ~id =
  Array.fold_left
    (fun acc o -> if o = Some id then acc + 1 else acc)
    0 t.owner

let owner_intervals t =
  let acc = ref [] in
  let current = ref None in
  Array.iteri
    (fun k o ->
      match (!current, o) with
      | None, None -> ()
      | None, Some id -> current := Some (id, k)
      | Some (id, first), Some id' when id = id' ->
        ignore first;
        ignore id'
      | Some (id, first), Some id' ->
        acc := (id, first, k - 1) :: !acc;
        current := Some (id', k)
      | Some (id, first), None ->
        acc := (id, first, k - 1) :: !acc;
        current := None)
    t.owner;
  (match !current with
   | Some (id, first) -> acc := (id, first, Array.length t.owner - 1) :: !acc
   | None -> ());
  List.rev !acc

let meets_requirements ?threshold t apps =
  let apps = Array.of_list apps in
  List.for_all
    (fun (sample, id) ->
      match settling_after ?threshold t ~id ~sample with
      | Some j -> j <= apps.(id).Core.App.j_star
      | None -> false)
    t.disturbances

let to_gantt t =
  let horizon = Array.length t.owner in
  let width = Array.fold_left (fun m n -> Int.max m (String.length n)) 0 t.names in
  List.init (Array.length t.names) (fun id ->
      let cells =
        String.init horizon (fun k ->
            if List.mem (k, id) t.disturbances then '*'
            else if t.owner.(k) = Some id then '#'
            else '.')
      in
      Printf.sprintf "%-*s |%s|" width t.names.(id) cells)

let to_rows t ~stride =
  if stride < 1 then invalid_arg "Trace.to_rows: stride";
  let n = Array.length t.names in
  let horizon = Array.length t.owner in
  let header =
    "t(s)    "
    ^ String.concat " " (Array.to_list (Array.map (Printf.sprintf "%8s") t.names))
    ^ "   slot"
  in
  let rows = ref [ header ] in
  let k = ref 0 in
  while !k < horizon do
    let owner =
      match t.owner.(!k) with Some id -> t.names.(id) | None -> "-"
    in
    let cells =
      String.concat " "
        (List.init n (fun i -> Printf.sprintf "%8.4f" t.outputs.(i).(!k)))
    in
    rows :=
      Printf.sprintf "%-7.3f %s   %s" (float_of_int !k *. t.h) cells owner
      :: !rows;
    k := !k + stride
  done;
  List.rev !rows
