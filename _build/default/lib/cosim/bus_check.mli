(** Bus-level validation of a mapped system.

    The control layer relies on exactly two facts about the network:
    TT messages (static slots) arrive with a fixed, negligible delay,
    and ET messages (dynamic segment) arrive within one sampling period
    even in the worst case.  This module re-plays a co-simulated system
    as actual FlexRay traffic — every application transmits one control
    message per sample, in its group's static slot while it owns it and
    on the dynamic segment otherwise — runs the cycle-accurate bus
    simulator, and checks both facts on the measured delays. *)

type result = {
  messages : int;  (** messages offered to the bus *)
  delivered : int;
  tt_count : int;
  et_count : int;
  tt_delay_us : int * int;  (** (min, max) measured static delays *)
  et_delay_us : int * int;  (** (min, max) measured dynamic delays *)
  h_us : int;
  tt_deterministic : bool;
      (** within each static slot, every delivery has the same latency *)
  one_sample_ok : bool;  (** every dynamic delay fits one period *)
  all_delivered : bool;
}

val default_config : Flexray.Config.t
(** A configuration whose cycle divides the 20 ms sampling period
    (10 x 100 µs static + 250 x 4 µs dynamic = 2 ms), so sampling
    instants stay phase-aligned with the TDMA schedule, as the paper's
    negligible-TT-delay assumption requires. *)

val validate :
  ?config:Flexray.Config.t ->
  ?h_us:int ->
  System.report ->
  result
(** Replay a system report on the bus.  The static slot of group [i]
    is slot [i]; dynamic frame ids follow the system-wide application
    order (1-based).
    @raise Invalid_argument when the configuration has fewer static
    slots than the report has groups, or the dynamic segment cannot
    carry one frame per application. *)

val pp : Format.formatter -> result -> unit
