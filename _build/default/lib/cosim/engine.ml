let run ?policy (scenario : Scenario.t) =
  let apps = Array.of_list scenario.Scenario.apps in
  let n = Array.length apps in
  if n = 0 then invalid_arg "Engine.run: empty scenario";
  let h = apps.(0).Core.App.plant.Control.Plant.h in
  Array.iter
    (fun (a : Core.App.t) ->
      if a.Core.App.plant.Control.Plant.h <> h then
        invalid_arg "Engine.run: inconsistent sampling periods")
    apps;
  let specs = Array.mapi (fun i a -> Core.App.spec a ~id:i) apps in
  let arbiter = Sched.Arbiter.create ?policy specs in
  let disturbances = Scenario.disturbance_schedule scenario in
  let horizon = scenario.Scenario.horizon in
  let outputs = Array.init n (fun _ -> Array.make horizon 0.) in
  let states =
    Array.map
      (fun (a : Core.App.t) ->
        ref (Control.Switched.initial
               (Linalg.Vec.zeros (Control.Plant.order a.Core.App.plant))))
      apps
  in
  for k = 0 to horizon - 1 do
    let disturbed =
      List.filter_map (fun (s, id) -> if s = k then Some id else None)
        disturbances
    in
    ignore (Sched.Arbiter.step arbiter ~disturbed ());
    let owner =
      (Sched.Arbiter.state arbiter).Sched.Slot_state.owner
    in
    List.iter
      (fun id -> states.(id) := Control.Switched.disturbed apps.(id).Core.App.plant)
      disturbed;
    for i = 0 to n - 1 do
      let a = apps.(i) in
      outputs.(i).(k) <- Control.Switched.output a.Core.App.plant !(states.(i));
      let mode =
        if owner = Some i then Control.Switched.Mt else Control.Switched.Me
      in
      states.(i) := Control.Switched.step a.Core.App.plant a.Core.App.gains mode !(states.(i))
    done
  done;
  {
    Trace.names = Array.map (fun (a : Core.App.t) -> a.Core.App.name) apps;
    h;
    outputs;
    owner = Sched.Arbiter.owner_trace arbiter;
    log = Sched.Arbiter.log arbiter;
    disturbances;
  }
