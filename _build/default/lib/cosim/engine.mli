(** The closed-loop co-simulation engine: plants, switching
    controllers, and the slot arbiter advancing in lockstep.

    At every sample the arbiter processes the disturbance arrivals and
    updates slot ownership; each application then executes one control
    period in mode [MT] (if it owns the slot) or [ME] (otherwise), with
    its hybrid state reset to the canonical disturbed state at the
    sample where its disturbance is sensed.  This is the executable
    counterpart of the verified model: the sequence of modes each
    application sees is exactly the one {!Sched.Slot_state} allows. *)

val run : ?policy:Sched.Slot_state.policy -> Scenario.t -> Trace.t
(** Default policy {!Sched.Slot_state.Eager_preempt}.
    @raise Invalid_argument when the apps have inconsistent sampling
    periods. *)
