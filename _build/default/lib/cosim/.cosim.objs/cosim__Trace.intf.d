lib/cosim/trace.mli: Core Sched
