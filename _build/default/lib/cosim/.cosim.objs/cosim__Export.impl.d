lib/cosim/export.ml: Array Buffer Core Fun List Printf String Trace
