lib/cosim/system.mli: Core Format Sched Trace
