lib/cosim/trace.ml: Array Control Core Int List Printf Sched String
