lib/cosim/engine.mli: Scenario Sched Trace
