lib/cosim/scenario.ml: Core List Printf String
