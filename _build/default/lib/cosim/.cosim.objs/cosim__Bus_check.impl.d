lib/cosim/bus_check.ml: Array Flexray Format Hashtbl Int List Option String System Trace
