lib/cosim/export.mli: Core Trace
