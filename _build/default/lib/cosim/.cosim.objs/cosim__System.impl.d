lib/cosim/system.ml: Array Core Engine Format List Printf Scenario String Trace
