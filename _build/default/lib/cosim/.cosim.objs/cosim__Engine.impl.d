lib/cosim/engine.ml: Array Control Core Linalg List Scenario Sched Trace
