lib/cosim/bus_check.mli: Flexray Format System
