lib/cosim/scenario.mli: Core
