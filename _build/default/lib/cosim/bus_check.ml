type result = {
  messages : int;
  delivered : int;
  tt_count : int;
  et_count : int;
  tt_delay_us : int * int;
  et_delay_us : int * int;
  h_us : int;
  tt_deterministic : bool;
  one_sample_ok : bool;
  all_delivered : bool;
}

let default_config =
  Flexray.Config.make ~static_slot_count:10 ~static_slot_us:100
    ~minislot_count:250 ~minislot_us:4

let frame_length_minislots = 8

let validate ?(config = default_config) ?(h_us = 20_000) (report : System.report) =
  let groups = report.System.slots in
  if List.length groups > config.Flexray.Config.static_slot_count then
    invalid_arg "Bus_check.validate: more groups than static slots";
  let all_names = List.concat_map fst groups in
  if
    config.Flexray.Config.minislot_count
    < frame_length_minislots + List.length all_names
  then invalid_arg "Bus_check.validate: dynamic segment too small";
  let frame_id name =
    let rec go i = function
      | [] -> invalid_arg "Bus_check: unknown app"
      | n :: rest -> if String.equal n name then i else go (i + 1) rest
    in
    go 1 all_names
  in
  let horizon =
    List.fold_left
      (fun acc (_, trace) -> Int.min acc (Array.length trace.Trace.owner))
      max_int groups
  in
  let messages = ref [] in
  List.iteri
    (fun slot_index (names, trace) ->
      let names = Array.of_list names in
      for k = 0 to horizon - 1 do
        Array.iteri
          (fun local name ->
            let release_us = k * h_us in
            let frame =
              if trace.Trace.owner.(k) = Some local then
                Flexray.Frame.static ~slot:slot_index
              else
                Flexray.Frame.dynamic ~frame_id:(frame_id name)
                  ~length_minislots:frame_length_minislots
            in
            messages := { Flexray.Bus.frame; release_us } :: !messages)
          names
      done)
    groups;
  let messages = List.rev !messages in
  let deliveries =
    Flexray.Bus.simulate config
      ~until_us:((horizon + 2) * h_us)
      messages
  in
  let classify d =
    match d.Flexray.Bus.message.Flexray.Bus.frame with
    | Flexray.Frame.Static { slot } -> `Tt (slot, Flexray.Bus.delay_us d)
    | Flexray.Frame.Dynamic _ -> `Et (Flexray.Bus.delay_us d)
  in
  let tt_per_slot = Hashtbl.create 8 in
  let tt = ref [] and et = ref [] in
  List.iter
    (fun d ->
      match classify d with
      | `Tt (slot, x) ->
        tt := x :: !tt;
        Hashtbl.replace tt_per_slot slot
          (x :: Option.value ~default:[] (Hashtbl.find_opt tt_per_slot slot))
      | `Et x -> et := x :: !et)
    deliveries;
  let bounds = function
    | [] -> (0, 0)
    | x :: rest ->
      List.fold_left (fun (lo, hi) v -> (Int.min lo v, Int.max hi v)) (x, x) rest
  in
  let tt_delay_us = bounds !tt and et_delay_us = bounds !et in
  {
    messages = List.length messages;
    delivered = List.length deliveries;
    tt_count = List.length !tt;
    et_count = List.length !et;
    tt_delay_us;
    et_delay_us;
    h_us;
    (* a TT slot is deterministic when every delivery through it has
       the same latency; different slots naturally differ by their
       position in the cycle *)
    tt_deterministic =
      Hashtbl.fold
        (fun _ delays acc ->
          acc
          && (match delays with
              | [] -> true
              | x :: rest -> List.for_all (Int.equal x) rest))
        tt_per_slot true;
    one_sample_ok = snd et_delay_us <= h_us;
    all_delivered = List.length deliveries = List.length messages;
  }

let pp ppf r =
  Format.fprintf ppf
    "@[<v>%d messages, %d delivered (%d TT, %d ET)@,\
     TT delay: %d..%d us (deterministic: %b)@,\
     ET delay: %d..%d us (one-sample bound %d us: %b)@]"
    r.messages r.delivered r.tt_count r.et_count (fst r.tt_delay_us)
    (snd r.tt_delay_us) r.tt_deterministic (fst r.et_delay_us)
    (snd r.et_delay_us) r.h_us r.one_sample_ok
