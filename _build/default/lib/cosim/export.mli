(** CSV export of simulation and dimensioning data, for external
    plotting (gnuplot, matplotlib, ...) of the paper's figures. *)

val trace_csv : Trace.t -> string
(** Columns: [t_s, sample, y_<app>..., owner] — the data behind
    Figs. 8/9.  The owner column holds the owning application's name or
    an empty field. *)

val surface_csv : (int * int * int option) list -> h:float -> string
(** Columns: [t_w, t_dw, j_samples, j_s] — the data behind Fig. 3;
    unsettled combinations export empty fields. *)

val dwell_csv : Core.Dwell.t -> h:float -> string
(** Columns: [t_w, t_dw_min, t_dw_max, j_at_min_s, j_at_max_s] — the
    data behind Fig. 4. *)

val write_file : path:string -> string -> (unit, string) result
(** Write a CSV to disk; the error carries the system message. *)
