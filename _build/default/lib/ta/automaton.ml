type store = int array

type cmp = Lt | Le | Gt | Ge | Eq

type clock_guard = { clock : int; cmp : cmp; value : store -> int }

type sync = Send of int | Recv of int

type kind = Normal | Urgent | Committed

type location = { loc_name : string; kind : kind; invariant : clock_guard list }

type edge = {
  src : int;
  dst : int;
  guards : clock_guard list;
  data_guard : store -> bool;
  sync : sync option;
  resets : store -> (int * int) list;
  update : store -> store;
}

type t = {
  name : string;
  locations : location array;
  initial : int;
  edges : edge list;
}

let make ~name ~locations ~initial ~edges =
  let n = Array.length locations in
  if n = 0 then invalid_arg "Automaton.make: no locations";
  if initial < 0 || initial >= n then invalid_arg "Automaton.make: bad initial";
  List.iter
    (fun e ->
      if e.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n then
        invalid_arg
          (Printf.sprintf "Automaton.make: dangling edge %d -> %d in %s" e.src
             e.dst name))
    edges;
  { name; locations; initial; edges }

let location ?(kind = Normal) ?(invariant = []) loc_name =
  { loc_name; kind; invariant }

let edge ?(guards = []) ?(data_guard = fun _ -> true) ?sync ?(resets = [])
    ?(dyn_resets = fun _ -> []) ?(update = fun s -> s) ~src ~dst () =
  {
    src;
    dst;
    guards;
    data_guard;
    sync;
    resets = (fun store -> resets @ dyn_resets store);
    update;
  }

let guard_const clock cmp v = { clock; cmp; value = (fun _ -> v) }
let guard_var clock cmp value = { clock; cmp; value }

(* x cmp v translated onto the DBM:
   x <  v : x - 0 <  v
   x <= v : x - 0 <= v
   x >  v : 0 - x < -v
   x >= v : 0 - x <= -v
   x == v : both weak inequalities *)
let apply_guard zone store g =
  let v = g.value store in
  match g.cmp with
  | Lt -> Dbm.constrain zone g.clock 0 (Dbm.lt v)
  | Le -> Dbm.constrain zone g.clock 0 (Dbm.le v)
  | Gt -> Dbm.constrain zone 0 g.clock (Dbm.lt (-v))
  | Ge -> Dbm.constrain zone 0 g.clock (Dbm.le (-v))
  | Eq ->
    Dbm.constrain
      (Dbm.constrain zone g.clock 0 (Dbm.le v))
      0 g.clock (Dbm.le (-v))

let apply_guards zone store guards =
  List.fold_left (fun z g -> apply_guard z store g) zone guards
