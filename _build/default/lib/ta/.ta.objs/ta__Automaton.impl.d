lib/ta/automaton.ml: Array Dbm List Printf
