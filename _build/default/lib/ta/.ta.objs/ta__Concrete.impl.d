lib/ta/concrete.ml: Array Automaton List Network Printf
