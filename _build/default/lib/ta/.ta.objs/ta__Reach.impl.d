lib/ta/reach.ml: Array Automaton Dbm Hashtbl List Network Obj Option Printf Queue Unix
