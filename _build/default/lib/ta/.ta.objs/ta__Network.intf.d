lib/ta/network.mli: Automaton Dbm
