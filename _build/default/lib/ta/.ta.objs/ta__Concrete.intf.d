lib/ta/concrete.mli: Automaton Network
