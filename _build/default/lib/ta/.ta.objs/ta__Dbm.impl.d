lib/ta/dbm.ml: Array Format Hashtbl Int
