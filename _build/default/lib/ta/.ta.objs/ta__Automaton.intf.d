lib/ta/automaton.mli: Dbm
