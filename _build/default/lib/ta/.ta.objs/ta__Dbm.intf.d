lib/ta/dbm.mli: Format
