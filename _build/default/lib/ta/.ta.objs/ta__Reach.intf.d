lib/ta/reach.mli: Automaton Network
