lib/ta/network.ml: Array Automaton Dbm
