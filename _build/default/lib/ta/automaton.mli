(** Syntax of timed automata with shared discrete state.

    An automaton has named locations (normal, urgent, or committed),
    location invariants, and edges carrying clock guards, a data guard,
    an optional channel synchronisation, clock resets, and a data
    update.  Discrete state is a shared integer store manipulated by
    opaque OCaml functions, which is expressive enough to encode the
    paper's buffers and dwell-table lookups directly (the analogue of
    UPPAAL's C-like declarations).

    Clock guards may have {e data-dependent} bounds (e.g.
    [cT >= DT-\[app\]]): the bound is a function of the current store,
    evaluated when the guard is applied to a zone. *)

type store = int array

type cmp = Lt | Le | Gt | Ge | Eq

type clock_guard = {
  clock : int;  (** global clock index, 1-based *)
  cmp : cmp;
  value : store -> int;
}

type sync = Send of int | Recv of int  (** channel id *)

type kind = Normal | Urgent | Committed

type location = {
  loc_name : string;
  kind : kind;
  invariant : clock_guard list;
      (** only upper-bound forms ([Lt]/[Le]) are meaningful here *)
}

type edge = {
  src : int;
  dst : int;
  guards : clock_guard list;
  data_guard : store -> bool;
  sync : sync option;
  resets : store -> (int * int) list;
      (** (clock, value) pairs, applied left to right; computed from the
          {e pre-transition} store so that data-dependent resets (e.g.
          "reset [time\[id\]] for every id in buffer0") can be
          expressed, as the paper's transfer step requires *)
  update : store -> store;
}

type t = {
  name : string;
  locations : location array;
  initial : int;
  edges : edge list;
}

val make :
  name:string -> locations:location array -> initial:int -> edges:edge list -> t
(** @raise Invalid_argument on dangling location indices. *)

val location : ?kind:kind -> ?invariant:clock_guard list -> string -> location

val edge :
  ?guards:clock_guard list ->
  ?data_guard:(store -> bool) ->
  ?sync:sync ->
  ?resets:(int * int) list ->
  ?dyn_resets:(store -> (int * int) list) ->
  ?update:(store -> store) ->
  src:int ->
  dst:int ->
  unit ->
  edge
(** [resets] (static) and [dyn_resets] (store-dependent) are
    concatenated, static first. *)

val guard_const : int -> cmp -> int -> clock_guard
(** Clock compared to a constant. *)

val guard_var : int -> cmp -> (store -> int) -> clock_guard
(** Clock compared to a store-dependent value. *)

val apply_guard : Dbm.t -> store -> clock_guard -> Dbm.t
(** Intersect a zone with one guard atom ([Eq] expands to both
    inequalities). *)

val apply_guards : Dbm.t -> store -> clock_guard list -> Dbm.t
