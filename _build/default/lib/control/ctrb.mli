(** Controllability analysis for single-input systems. *)

val matrix : Linalg.Mat.t -> Linalg.Vec.t -> Linalg.Mat.t
(** [matrix a b] is the controllability matrix
    [[b, a b, a^2 b, ..., a^(n-1) b]]. *)

val is_controllable : ?tol:float -> Linalg.Mat.t -> Linalg.Vec.t -> bool
(** Full numerical rank of the controllability matrix. *)

val of_plant : Plant.t -> Linalg.Mat.t
(** Controllability matrix of a plant's [(phi, gamma)] pair. *)
