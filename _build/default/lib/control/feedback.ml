let closed_loop_tt p kt =
  let n = Plant.order p in
  if Linalg.Vec.dim kt <> n then invalid_arg "Feedback.closed_loop_tt: gain dimension";
  Linalg.Mat.sub p.Plant.phi (Linalg.Mat.outer p.Plant.gamma kt)

let augmented_open_loop p =
  let n = Plant.order p in
  let phi_a =
    Linalg.Mat.init (n + 1) (n + 1) (fun i j ->
        if i < n && j < n then Linalg.Mat.get p.Plant.phi i j
        else if i < n && j = n then p.Plant.gamma.(i)
        else 0.)
  in
  let gamma_a = Linalg.Vec.init (n + 1) (fun i -> if i = n then 1. else 0.) in
  (phi_a, gamma_a)

let closed_loop_et p ke =
  let n = Plant.order p in
  if Linalg.Vec.dim ke <> n + 1 then
    invalid_arg "Feedback.closed_loop_et: gain dimension";
  let phi_a, gamma_a = augmented_open_loop p in
  Linalg.Mat.sub phi_a (Linalg.Mat.outer gamma_a ke)

let closed_loop_tt_augmented p kt =
  let n = Plant.order p in
  if Linalg.Vec.dim kt <> n then
    invalid_arg "Feedback.closed_loop_tt_augmented: gain dimension";
  let cl = closed_loop_tt p kt in
  Linalg.Mat.init (n + 1) (n + 1) (fun i j ->
      if i < n && j < n then Linalg.Mat.get cl i j
      else if i = n && j < n then -.kt.(j)
      else 0.)
