let matrix a b =
  if not (Linalg.Mat.is_square a) then invalid_arg "Ctrb.matrix: non-square";
  let n = Linalg.Mat.rows a in
  if Linalg.Vec.dim b <> n then invalid_arg "Ctrb.matrix: dimension mismatch";
  let cols = Array.make n b in
  for k = 1 to n - 1 do
    cols.(k) <- Linalg.Mat.mul_vec a cols.(k - 1)
  done;
  Linalg.Mat.init n n (fun i j -> cols.(j).(i))

let is_controllable ?tol a b = Linalg.Lu.rank ?tol (matrix a b) = Linalg.Mat.rows a

let of_plant p = matrix p.Plant.phi p.Plant.gamma
