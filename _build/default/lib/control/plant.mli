(** Discrete-time single-input single-output LTI plants,

    {[ x[k+1] = phi x[k] + gamma u[k],    y[k] = c x[k] ]}

    sampled with a fixed period [h] (paper eq. (1)). *)

type t = private {
  phi : Linalg.Mat.t;  (** state matrix, n x n *)
  gamma : Linalg.Vec.t;  (** input column, dimension n *)
  c : Linalg.Vec.t;  (** output row, dimension n *)
  h : float;  (** sampling period in seconds *)
}

val make : phi:Linalg.Mat.t -> gamma:Linalg.Vec.t -> c:Linalg.Vec.t -> h:float -> t
(** @raise Invalid_argument if [phi] is not square, the vector
    dimensions disagree with it, or [h <= 0]. *)

val order : t -> int
(** State dimension [n]. *)

val step : t -> Linalg.Vec.t -> float -> Linalg.Vec.t
(** [step p x u] is [phi x + gamma u]. *)

val output : t -> Linalg.Vec.t -> float
(** [output p x] is [c x]. *)

val scalar : phi:float -> gamma:float -> c:float -> h:float -> t
(** Convenience constructor for first-order plants. *)

val is_open_loop_stable : t -> bool
(** Schur stability of [phi]. *)

val pp : Format.formatter -> t -> unit
