type candidate = {
  kt_radius : float;
  ke_source : string;
  jt : int option;
  je : int option;
  switching_stable : bool;
  verdict : [ `Accepted | `Rejected of string ];
}

type outcome = { gains : Switched.gains option; trace : candidate list }

(* distinct real poles on a ring: radius, radius*0.9, radius*0.8, ...
   (distinct so Ackermann's conditioning stays reasonable) *)
let ring_poles n radius =
  List.init n (fun i -> (radius *. (1. -. (0.1 *. float_of_int i)), 0.))

let settling_of plant gains mode ~threshold =
  let y =
    Switched.run plant gains (fun _ -> mode) (Switched.disturbed plant) 600
  in
  Settle.settling_index ~threshold y

let search ?(threshold = Settle.default_threshold) ?(require_cqlf = false)
    ?(kt_radii = [ 0.15; 0.2; 0.25; 0.3; 0.4; 0.5; 0.6 ])
    ?(lqr_weights = [ 0.1; 0.5; 1.; 3.; 10.; 30. ])
    ?(ke_radii = [ 0.8; 0.85; 0.9; 0.95 ]) plant ~j_star =
  if j_star < 1 then invalid_arg "Design.search: j_star must be >= 1";
  if not (Ctrb.is_controllable plant.Plant.phi plant.Plant.gamma) then
    invalid_arg "Design.search: plant is not controllable";
  let n = Plant.order plant in
  let ke_candidates =
    List.map (fun r -> (Printf.sprintf "lqr r=%g" r, `Lqr r)) lqr_weights
    @ List.map
        (fun rho -> (Printf.sprintf "poles rho=%g" rho, `Poles rho))
        ke_radii
  in
  let make_ke = function
    | `Lqr r -> (try Some (Lqr.gain_et ~r plant) with Lqr.No_convergence -> None)
    | `Poles rho ->
      (try Some (Pole_place.place_et plant (ring_poles (n + 1) rho))
       with Pole_place.Uncontrollable | Linalg.Lu.Singular -> None)
  in
  let trace = ref [] in
  let found = ref None in
  let fallback = ref None in
  let consider kt_radius kt (ke_source, ke_spec) =
    if !found = None then begin
      match make_ke ke_spec with
      | None ->
        trace :=
          {
            kt_radius;
            ke_source;
            jt = None;
            je = None;
            switching_stable = false;
            verdict = `Rejected "K_E synthesis failed";
          }
          :: !trace
      | Some ke ->
        let gains = Switched.make_gains plant ~kt ~ke in
        let jt = settling_of plant gains Switched.Mt ~threshold in
        let je = settling_of plant gains Switched.Me ~threshold in
        let record switching_stable verdict =
          trace :=
            { kt_radius; ke_source; jt; je; switching_stable; verdict }
            :: !trace
        in
        (match (jt, je) with
         | None, _ -> record false (`Rejected "TT mode does not settle")
         | _, None -> record false (`Rejected "ET mode does not settle")
         | Some jt', _ when jt' > j_star ->
           record false (`Rejected "K_T too slow (J_T > J*)")
         | _, Some je' when je' <= j_star ->
           record false (`Rejected "K_E already meets J* (no TT needed)")
         | Some _, Some _ ->
           if Switch_stab.is_switching_stable plant gains then begin
             record true `Accepted;
             found := Some gains
           end
           else begin
             (* keep the first bracketing-but-uncertified pair around *)
             if !fallback = None then fallback := Some gains;
             record false (`Rejected "no common Lyapunov certificate")
           end)
    end
  in
  List.iter
    (fun kt_radius ->
      if !found = None then
        match Pole_place.place_tt plant (ring_poles n kt_radius) with
        | kt -> List.iter (consider kt_radius kt) ke_candidates
        | exception (Pole_place.Uncontrollable | Linalg.Lu.Singular) ->
          trace :=
            {
              kt_radius;
              ke_source = "-";
              jt = None;
              je = None;
              switching_stable = false;
              verdict = `Rejected "K_T synthesis failed";
            }
            :: !trace)
    kt_radii;
  let gains =
    match !found with
    | Some _ as g -> g
    | None -> if require_cqlf then None else !fallback
  in
  { gains; trace = List.rev !trace }

let synthesize ?threshold ?require_cqlf plant ~j_star =
  let o = search ?threshold ?require_cqlf plant ~j_star in
  match o.gains with
  | Some g -> Ok g
  | None ->
    let tried = List.length o.trace in
    let reasons =
      o.trace
      |> List.filter_map (fun c ->
             match c.verdict with `Rejected r -> Some r | `Accepted -> None)
      |> List.sort_uniq compare
    in
    Error
      (Printf.sprintf "no admissible gain pair among %d candidates (%s)" tried
         (String.concat "; " reasons))
