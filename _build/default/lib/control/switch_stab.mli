(** Switching-stability test for a [K_T]/[K_E] gain pair.

    The paper requires the two closed-loop modes to admit a common
    quadratic Lyapunov function so that switching cannot pump energy
    into the plant (Sec. 3, citing Lin & Antsaklis).  Both modes are
    expressed on the augmented state [z = [x; u_prev]] (see
    {!Feedback.closed_loop_tt_augmented}), which is the state actually
    shared across a switch.

    Note the TT closed loop on the augmented space is singular (the
    [u_prev] column is zero), so strict common-Lyapunov decrease is
    tested with the ET-mode certificate and convex combinations; the
    verdict [CommonLyapunov] is a sufficient certificate, [StableModes]
    means both modes are individually Schur but no common certificate
    was found, and [UnstableMode] means at least one mode is itself
    unstable. *)

type verdict =
  | Common_lyapunov of Linalg.Mat.t
      (** certificate [P]: positive definite with [AᵢᵀPAᵢ - P < 0] for
          both modes *)
  | Stable_modes
  | Unstable_mode of Switched.mode

val closed_loops : Plant.t -> Switched.gains -> Linalg.Mat.t * Linalg.Mat.t
(** [(a_tt, a_et)] on the common augmented state space. *)

val analyze : Plant.t -> Switched.gains -> verdict

val is_switching_stable : Plant.t -> Switched.gains -> bool
(** [true] only for {!Common_lyapunov}. *)

val pp_verdict : Format.formatter -> verdict -> unit
