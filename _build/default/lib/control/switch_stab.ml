type verdict =
  | Common_lyapunov of Linalg.Mat.t
  | Stable_modes
  | Unstable_mode of Switched.mode

let closed_loops p (g : Switched.gains) =
  ( Feedback.closed_loop_tt_augmented p g.kt,
    Feedback.closed_loop_et p g.ke )

let analyze p g =
  let a_tt, a_et = closed_loops p g in
  if not (Linalg.Eig.is_schur_stable a_tt) then Unstable_mode Switched.Mt
  else if not (Linalg.Eig.is_schur_stable a_et) then Unstable_mode Switched.Me
  else
    match Linalg.Lyapunov.common_lyapunov a_tt a_et with
    | Some cert -> Common_lyapunov cert
    | None -> Stable_modes

let is_switching_stable p g =
  match analyze p g with
  | Common_lyapunov _ -> true
  | Stable_modes | Unstable_mode _ -> false

let pp_verdict ppf = function
  | Common_lyapunov _ -> Format.pp_print_string ppf "common Lyapunov certificate"
  | Stable_modes ->
    Format.pp_print_string ppf "modes individually stable, no common certificate found"
  | Unstable_mode m ->
    Format.fprintf ppf "mode %a unstable" Switched.pp_mode m
