(** Infinite-horizon discrete LQR for single-input systems, solved by
    value iteration on the Riccati recursion.  Used as an alternative to
    pole placement when designing [K_T]/[K_E] gains for new plants. *)

exception No_convergence

val solve :
  ?max_iter:int ->
  ?tol:float ->
  a:Linalg.Mat.t ->
  b:Linalg.Vec.t ->
  q:Linalg.Mat.t ->
  r:float ->
  unit ->
  Linalg.Vec.t * Linalg.Mat.t
(** [solve ~a ~b ~q ~r ()] returns [(k, p)] where [u = -k x] minimises
    [sum (xᵀ q x + r u²)] and [p] is the Riccati fixed point.
    @raise No_convergence after [max_iter] (default 10_000) iterations.
    @raise Invalid_argument on shape errors or [r <= 0]. *)

val gain_tt : ?q:Linalg.Mat.t -> ?r:float -> Plant.t -> Linalg.Vec.t
(** LQR gain for the undelayed mode ([q] defaults to the identity,
    [r] to 1). *)

val gain_et : ?q:Linalg.Mat.t -> ?r:float -> Plant.t -> Linalg.Vec.t
(** LQR gain for the delay-augmented mode; [q] defaults to the identity
    on the augmented state. *)
