exception Uncontrollable

let ackermann a b p =
  let n = Linalg.Mat.rows a in
  let p = Linalg.Poly.trim p in
  if Linalg.Poly.degree p <> n || p.(n) <> 1. then
    invalid_arg "Pole_place.ackermann: polynomial must be monic of degree n";
  let ctrb = Ctrb.matrix a b in
  let pa = Linalg.Poly.eval_mat p a in
  (* k = e_nᵀ C⁻¹ p(A); solve Cᵀ w = e_n then k = wᵀ p(A) *)
  let en = Linalg.Vec.basis n (n - 1) in
  let w =
    try Linalg.Lu.solve (Linalg.Mat.transpose ctrb) en
    with Linalg.Lu.Singular -> raise Uncontrollable
  in
  Linalg.Mat.mul_vec (Linalg.Mat.transpose pa) w

let expand_poles poles =
  List.concat_map
    (fun (re, im) -> if im = 0. then [ (re, 0.) ] else [ (re, im); (re, -.im) ])
    poles

let desired_poly n poles =
  let expanded = expand_poles poles in
  if List.length expanded <> n then
    invalid_arg
      (Printf.sprintf "Pole_place.place: %d poles given (conjugates counted), %d needed"
         (List.length expanded) n);
  (* rebuild from the upper-half-plane representatives so the product is
     real *)
  let reps =
    List.filter (fun (_, im) -> im >= 0.) expanded
    |> List.map (fun (re, im) -> (re, im))
  in
  Linalg.Poly.from_conjugate_pairs reps

let place a b poles =
  let n = Linalg.Mat.rows a in
  ackermann a b (desired_poly n poles)

let place_tt p poles = place p.Plant.phi p.Plant.gamma poles

let place_et p poles =
  let phi_a, gamma_a = Feedback.augmented_open_loop p in
  place phi_a gamma_a poles
