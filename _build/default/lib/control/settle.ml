let default_threshold = 0.02

let settling_index ?(threshold = default_threshold) y =
  let n = Array.length y in
  if n = 0 then Some 0
  else
    (* scan backwards for the last violation *)
    let rec last_violation k =
      if k < 0 then None
      else if Float.abs y.(k) > threshold then Some k
      else last_violation (k - 1)
    in
    match last_violation (n - 1) with
    | None -> Some 0
    | Some k when k = n - 1 -> None (* still violating at the horizon *)
    | Some k -> Some (k + 1)

let settling_time ?threshold ~h y =
  Option.map (fun j -> float_of_int j *. h) (settling_index ?threshold y)

let is_settled_within ?threshold j y =
  match settling_index ?threshold y with
  | None -> false
  | Some i -> i <= j

let peak y = Array.fold_left (fun m v -> Float.max m (Float.abs v)) 0. y
