lib/control/feedback.mli: Linalg Plant
