lib/control/lqr.ml: Feedback Float Linalg Plant
