lib/control/design.ml: Ctrb Linalg List Lqr Plant Pole_place Printf Settle String Switch_stab Switched
