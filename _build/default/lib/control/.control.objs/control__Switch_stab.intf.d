lib/control/switch_stab.mli: Format Linalg Plant Switched
