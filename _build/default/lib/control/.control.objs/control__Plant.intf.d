lib/control/plant.mli: Format Linalg
