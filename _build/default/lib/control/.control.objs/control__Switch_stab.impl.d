lib/control/switch_stab.ml: Feedback Format Linalg Switched
