lib/control/continuous.mli: Linalg Plant
