lib/control/settle.mli:
