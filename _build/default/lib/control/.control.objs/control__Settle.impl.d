lib/control/settle.ml: Array Float Option
