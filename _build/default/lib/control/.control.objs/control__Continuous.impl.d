lib/control/continuous.ml: Linalg Plant
