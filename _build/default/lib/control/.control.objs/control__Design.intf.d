lib/control/design.mli: Plant Switched
