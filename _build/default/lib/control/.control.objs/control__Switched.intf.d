lib/control/switched.mli: Format Linalg Plant
