lib/control/lqr.mli: Linalg Plant
