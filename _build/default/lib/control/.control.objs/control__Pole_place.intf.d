lib/control/pole_place.mli: Linalg Plant
