lib/control/ctrb.ml: Array Linalg Plant
