lib/control/plant.ml: Format Linalg
