lib/control/switched.ml: Array Format Linalg Plant
