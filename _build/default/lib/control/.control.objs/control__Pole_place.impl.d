lib/control/pole_place.ml: Array Ctrb Feedback Linalg List Plant Printf
