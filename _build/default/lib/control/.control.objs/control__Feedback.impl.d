lib/control/feedback.ml: Array Linalg Plant
