lib/control/ctrb.mli: Linalg Plant
