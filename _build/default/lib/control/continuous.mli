(** Continuous-time LTI models and zero-order-hold discretisation.

    The paper's plants are continuous physical models (DC motors, a
    vehicle's longitudinal dynamics) sampled at [h = 0.02 s]:

    {[ xdot = a x + b u,   y = c x ]}

    Under a zero-order hold the exact discretisation is
    [phi = e^{a h}] and [gamma = (\int_0^h e^{a s} ds) b]. *)

type t = { a : Linalg.Mat.t; b : Linalg.Vec.t; c : Linalg.Vec.t }

val make : a:Linalg.Mat.t -> b:Linalg.Vec.t -> c:Linalg.Vec.t -> t
(** @raise Invalid_argument on dimension mismatches. *)

val discretize : t -> h:float -> Plant.t
(** Exact zero-order-hold sampling.  @raise Invalid_argument on
    [h <= 0]. *)

val dc_motor_position :
  ?j:float -> ?b:float -> ?k:float -> ?r:float -> ?l:float -> unit -> t
(** The classic armature-controlled DC-motor position model (states:
    shaft angle, angular velocity, armature current; CTMS/[13]-style
    parameters by default: J = 0.01, b = 0.1, K = 0.01, R = 1,
    L = 0.5). *)

val dc_motor_speed :
  ?j:float -> ?b:float -> ?k:float -> ?r:float -> ?l:float -> unit -> t
(** The speed variant (states: angular velocity, armature current). *)

val cruise_control : ?m:float -> ?b:float -> unit -> t
(** First-order vehicle longitudinal model [v' = (u - b v)/m]
    (CTMS defaults m = 1000 kg, b = 50 N s/m) — the paper's C6, whose
    exact discretisation at 0.02 s has [phi = e^{-0.001} = +0.999]
    (the printed Table 1 sign is a typo; see DESIGN.md). *)
