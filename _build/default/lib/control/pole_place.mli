(** Pole placement for single-input discrete-time systems via
    Ackermann's formula,

    {[ K = [0 ... 0 1] C(a,b)^{-1} p(a) ]}

    where [C] is the controllability matrix and [p] the desired monic
    characteristic polynomial.  This is the "optimisation-driven
    pole-placement" primitive the paper delegates to [2]. *)

exception Uncontrollable

val ackermann : Linalg.Mat.t -> Linalg.Vec.t -> Linalg.Poly.t -> Linalg.Vec.t
(** [ackermann a b p] is the gain [k] such that the closed loop
    [a - b k] has characteristic polynomial [p] (monic, degree n).
    @raise Uncontrollable when [(a, b)] is not controllable.
    @raise Invalid_argument when [p] is not monic of degree n. *)

val place : Linalg.Mat.t -> Linalg.Vec.t -> (float * float) list -> Linalg.Vec.t
(** [place a b poles] places the closed-loop eigenvalues at the given
    complex numbers (given as [(re, im)]; entries with [im <> 0] denote
    a conjugate *pair* and count twice).  The total count of placed
    poles must equal [n]. *)

val place_tt : Plant.t -> (float * float) list -> Linalg.Vec.t
(** Design a [K_T] for the undelayed TT mode of a plant. *)

val place_et : Plant.t -> (float * float) list -> Linalg.Vec.t
(** Design a [K_E] for the one-sample-delay ET mode (augmented system);
    the pole list must cover [n + 1] eigenvalues. *)
