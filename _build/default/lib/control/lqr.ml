exception No_convergence

let solve ?(max_iter = 10_000) ?(tol = 1e-12) ~a ~b ~q ~r () =
  if not (Linalg.Mat.is_square a) then invalid_arg "Lqr.solve: a not square";
  let n = Linalg.Mat.rows a in
  if Linalg.Vec.dim b <> n then invalid_arg "Lqr.solve: b dimension";
  if Linalg.Mat.rows q <> n || Linalg.Mat.cols q <> n then
    invalid_arg "Lqr.solve: q shape";
  if r <= 0. then invalid_arg "Lqr.solve: r must be positive";
  let at = Linalg.Mat.transpose a in
  let gain_of p =
    (* k = (r + bᵀ p b)⁻¹ bᵀ p a  — scalar denominator for single input *)
    let pb = Linalg.Mat.mul_vec p b in
    let denom = r +. Linalg.Vec.dot b pb in
    let bpa = Linalg.Mat.mul_vec (Linalg.Mat.transpose a) pb in
    Linalg.Vec.scale (1. /. denom) bpa
  in
  let iterate p =
    let k = gain_of p in
    (* p' = q + aᵀ p a - aᵀ p b k  (with k as above) *)
    let pa = Linalg.Mat.mul p a in
    let apa = Linalg.Mat.mul at pa in
    let pb = Linalg.Mat.mul_vec p b in
    let apb = Linalg.Mat.mul_vec at pb in
    let correction = Linalg.Mat.outer apb k in
    Linalg.Mat.add q (Linalg.Mat.sub apa correction)
  in
  let rec loop p i =
    if i >= max_iter then raise No_convergence;
    let p' = iterate p in
    if Linalg.Mat.norm_fro (Linalg.Mat.sub p' p)
       <= tol *. Float.max 1. (Linalg.Mat.norm_fro p')
    then p'
    else loop p' (i + 1)
  in
  let p = loop q 0 in
  (gain_of p, p)

let gain_tt ?q ?(r = 1.) p =
  let n = Plant.order p in
  let q = match q with Some q -> q | None -> Linalg.Mat.identity n in
  fst (solve ~a:p.Plant.phi ~b:p.Plant.gamma ~q ~r ())

let gain_et ?q ?(r = 1.) p =
  let phi_a, gamma_a = Feedback.augmented_open_loop p in
  let q =
    match q with Some q -> q | None -> Linalg.Mat.identity (Plant.order p + 1)
  in
  fst (solve ~a:phi_a ~b:gamma_a ~q ~r ())
