(** Settling-time measurement on sampled output traces.

    The paper's metric: [J] is the smallest index such that
    [|y[k]| <= threshold] for every [k >= J] within the simulated
    horizon (Sec. 3.1 uses [threshold = 0.02]). *)

val default_threshold : float
(** [0.02], the band used throughout the paper. *)

val settling_index : ?threshold:float -> float array -> int option
(** Smallest [j] with [|y[k]| <= threshold] for all [k >= j].
    [None] when the final sample still violates the band (the trace is
    too short to conclude, or the system diverges). *)

val settling_time : ?threshold:float -> h:float -> float array -> float option
(** {!settling_index} scaled by the sampling period, in seconds. *)

val is_settled_within : ?threshold:float -> int -> float array -> bool
(** [is_settled_within j y] holds when the trace settles at or before
    sample [j]. *)

val peak : float array -> float
(** Maximum [|y[k]|] over the trace; 0 on the empty trace. *)
