type t = {
  phi : Linalg.Mat.t;
  gamma : Linalg.Vec.t;
  c : Linalg.Vec.t;
  h : float;
}

let make ~phi ~gamma ~c ~h =
  if not (Linalg.Mat.is_square phi) then invalid_arg "Plant.make: phi not square";
  let n = Linalg.Mat.rows phi in
  if Linalg.Vec.dim gamma <> n then invalid_arg "Plant.make: gamma dimension";
  if Linalg.Vec.dim c <> n then invalid_arg "Plant.make: c dimension";
  if h <= 0. then invalid_arg "Plant.make: non-positive sampling period";
  { phi; gamma; c; h }

let order p = Linalg.Mat.rows p.phi

let step p x u =
  Linalg.Vec.axpy u p.gamma (Linalg.Mat.mul_vec p.phi x)

let output p x = Linalg.Vec.dot p.c x

let scalar ~phi ~gamma ~c ~h =
  make
    ~phi:(Linalg.Mat.of_rows [ [ phi ] ])
    ~gamma:[| gamma |] ~c:[| c |] ~h

let is_open_loop_stable p = Linalg.Eig.is_schur_stable p.phi

let pp ppf p =
  Format.fprintf ppf "@[<v>plant (n=%d, h=%gs)@,phi =@,%a@,gamma = %a@,c = %a@]"
    (order p) p.h Linalg.Mat.pp p.phi Linalg.Vec.pp p.gamma Linalg.Vec.pp p.c
