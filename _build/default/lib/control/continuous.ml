type t = { a : Linalg.Mat.t; b : Linalg.Vec.t; c : Linalg.Vec.t }

let make ~a ~b ~c =
  if not (Linalg.Mat.is_square a) then invalid_arg "Continuous.make: a not square";
  let n = Linalg.Mat.rows a in
  if Linalg.Vec.dim b <> n || Linalg.Vec.dim c <> n then
    invalid_arg "Continuous.make: dimension mismatch";
  { a; b; c }

let discretize t ~h =
  if h <= 0. then invalid_arg "Continuous.discretize: non-positive h";
  let phi, integral = Linalg.Expm.expm_with_integral t.a h in
  let gamma = Linalg.Mat.mul_vec integral t.b in
  Plant.make ~phi ~gamma ~c:(Linalg.Vec.copy t.c) ~h

(* Armature-controlled DC motor (CTMS parameters):
     J theta'' + b theta' = K i
     L i' + R i = V - K theta'
   position states [theta; omega; i], speed states [omega; i]. *)
let dc_motor_position ?(j = 0.01) ?(b = 0.1) ?(k = 0.01) ?(r = 1.) ?(l = 0.5) () =
  let a =
    Linalg.Mat.of_rows
      [
        [ 0.; 1.; 0. ];
        [ 0.; -.b /. j; k /. j ];
        [ 0.; -.k /. l; -.r /. l ];
      ]
  in
  make ~a ~b:[| 0.; 0.; 1. /. l |] ~c:[| 1.; 0.; 0. |]

let dc_motor_speed ?(j = 0.01) ?(b = 0.1) ?(k = 0.01) ?(r = 1.) ?(l = 0.5) () =
  let a =
    Linalg.Mat.of_rows [ [ -.b /. j; k /. j ]; [ -.k /. l; -.r /. l ] ]
  in
  make ~a ~b:[| 0.; 1. /. l |] ~c:[| 1.; 0. |]

let cruise_control ?(m = 1000.) ?(b = 50.) () =
  make
    ~a:(Linalg.Mat.of_rows [ [ -.b /. m ] ])
    ~b:[| 1. /. m |] ~c:[| 1. |]
