type mode = Mt | Me

type gains = { kt : Linalg.Vec.t; ke : Linalg.Vec.t }

type state = { x : Linalg.Vec.t; u_prev : float }

let make_gains p ~kt ~ke =
  let n = Plant.order p in
  if Linalg.Vec.dim kt <> n then invalid_arg "Switched.make_gains: kt dimension";
  if Linalg.Vec.dim ke <> n + 1 then invalid_arg "Switched.make_gains: ke dimension";
  { kt; ke }

let initial ?(u_prev = 0.) x = { x; u_prev }

let disturbed p = initial (Linalg.Vec.basis (Plant.order p) 0)

let step p g mode s =
  match mode with
  | Mt ->
    let u = -.Linalg.Vec.dot g.kt s.x in
    { x = Plant.step p s.x u; u_prev = u }
  | Me ->
    let z = Linalg.Vec.concat s.x [| s.u_prev |] in
    let u_cmd = -.Linalg.Vec.dot g.ke z in
    { x = Plant.step p s.x s.u_prev; u_prev = u_cmd }

let output p s = Plant.output p s.x

let run_states p g mode_at s0 horizon =
  if horizon < 0 then invalid_arg "Switched.run: negative horizon";
  let states = Array.make (horizon + 1) s0 in
  for k = 0 to horizon - 1 do
    states.(k + 1) <- step p g (mode_at k) states.(k)
  done;
  states

let run p g mode_at s0 horizon =
  Array.map (output p) (run_states p g mode_at s0 horizon)

let mode_equal a b =
  match (a, b) with Mt, Mt | Me, Me -> true | Mt, Me | Me, Mt -> false

let pp_mode ppf = function
  | Mt -> Format.pp_print_string ppf "MT"
  | Me -> Format.pp_print_string ppf "ME"
