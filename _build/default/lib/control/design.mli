(** Automatic synthesis of a switching gain pair for a plant.

    The paper assumes the two controllers are designed offline: a fast
    [K_T] for the TT mode and a slow [K_E] for the delayed ET mode,
    such that [J_T <= J* < J_E] and the pair is switching stable
    (common quadratic Lyapunov function, Sec. 3).  This module
    automates that search: [K_T] candidates are pole placements with
    all poles on a real ring of decreasing radius, [K_E] candidates mix
    LQR designs (sweeping the input weight) and slow pole placements,
    and every pair is screened against the settling-time bracket and
    the CQLF test.

    The search is a practical design aid, not an optimiser: it returns
    the first admissible pair in a deterministic candidate order,
    together with the screening record. *)

type candidate = {
  kt_radius : float;
  ke_source : string;  (** "lqr r=..." or "poles rho=..." *)
  jt : int option;  (** settling with K_T alone, samples *)
  je : int option;  (** settling with K_E alone *)
  switching_stable : bool;
  verdict : [ `Accepted | `Rejected of string ];
}

(** Switching stability (Sec. 3) is a {e recommendation} for resource
    efficiency: the dwell tables are computed from the exact switched
    trajectories, so the [J <= J*] guarantee never depends on the CQLF.
    By default the search prefers a certified pair but falls back to
    the first bracketing pair when the whole grid lacks a certificate;
    [~require_cqlf:true] makes the certificate mandatory. *)

type outcome = {
  gains : Switched.gains option;
  trace : candidate list;  (** screening record, in search order *)
}

val search :
  ?threshold:float ->
  ?require_cqlf:bool ->
  ?kt_radii:float list ->
  ?lqr_weights:float list ->
  ?ke_radii:float list ->
  Plant.t ->
  j_star:int ->
  outcome
(** [search plant ~j_star] screens the candidate grid (defaults:
    [kt_radii] 0.15..0.6, [lqr_weights] 0.1..30, [ke_radii] 0.8..0.95)
    and stops at the first certified admissible pair; without
    [~require_cqlf:true] it falls back to the first uncertified
    bracketing pair when no candidate is certified.
    @raise Invalid_argument if the plant is not controllable or
    [j_star < 1]. *)

val synthesize :
  ?threshold:float ->
  ?require_cqlf:bool ->
  Plant.t ->
  j_star:int ->
  (Switched.gains, string) result
(** {!search} reduced to its answer; the error carries a summary of why
    the grid failed (useful in error messages). *)
