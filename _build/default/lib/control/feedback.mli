(** State-feedback closed loops for the two communication modes.

    Mode [MT] (time-triggered slot, negligible delay, paper eqs. (2)-(3)):
    {[ u[k] = -K_T x[k]        =>  x[k+1] = (phi - gamma K_T) x[k] ]}

    Mode [ME] (event-triggered, one-sample delay, paper eqs. (4)-(5)):
    the state is augmented with the previous input,
    [z[k] = [x[k]; u[k-1]]], and [u[k] = -K_E z[k]]. *)

val closed_loop_tt : Plant.t -> Linalg.Vec.t -> Linalg.Mat.t
(** [closed_loop_tt p kt] is [phi - gamma kt].
    @raise Invalid_argument if [dim kt <> order p]. *)

val augmented_open_loop : Plant.t -> Linalg.Mat.t * Linalg.Vec.t
(** The delay-augmented open loop [(Phi_a, Gamma_a)] with state
    [z = [x; u_prev]]:
    {[ Phi_a = [phi gamma; 0 0],   Gamma_a = [0; ...; 0; 1] ]}
    so that [z[k+1] = Phi_a z[k] + Gamma_a u[k]]. *)

val closed_loop_et : Plant.t -> Linalg.Vec.t -> Linalg.Mat.t
(** [closed_loop_et p ke] is the (n+1)x(n+1) closed loop
    [Phi_a - Gamma_a ke] of the delayed mode.
    @raise Invalid_argument if [dim ke <> order p + 1]. *)

val closed_loop_tt_augmented : Plant.t -> Linalg.Vec.t -> Linalg.Mat.t
(** The TT closed loop expressed on the augmented state [z = [x; u_prev]]
    (so that both modes share one state space, as needed for the common
    Lyapunov switching-stability test):
    {[ z[k+1] = [ (phi - gamma K_T) x[k] ; -K_T x[k] ] ]} *)
