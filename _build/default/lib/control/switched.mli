(** The bi-modal switched closed loop at the heart of the paper.

    In mode {!Mt} the application owns a TT slot: the fresh measurement
    reaches the actuator within the sample, so [u[k] = -K_T x[k]]
    applies immediately.  In mode {!Me} the message rides the dynamic
    segment and the worst case costs one full sample: the input applied
    at sample [k] is the command computed at [k-1], and the new command
    is computed from the augmented state [z[k] = [x[k]; u[k-1]]].

    The hybrid state [(x, u_prev)] is shared between the modes, so
    switching at any sample is well defined: the last actuated value is
    held across the switch. *)

type mode = Mt  (** time-triggered slot, fast gain [K_T] *)
          | Me  (** event-triggered channel, slow gain [K_E] *)

type gains = {
  kt : Linalg.Vec.t;  (** dimension [n] *)
  ke : Linalg.Vec.t;  (** dimension [n + 1] *)
}

type state = { x : Linalg.Vec.t; u_prev : float }

val make_gains : Plant.t -> kt:Linalg.Vec.t -> ke:Linalg.Vec.t -> gains
(** @raise Invalid_argument on gain dimension mismatch. *)

val initial : ?u_prev:float -> Linalg.Vec.t -> state
(** Initial hybrid state; [u_prev] defaults to [0.] (actuator at rest). *)

val disturbed : Plant.t -> state
(** The canonical post-disturbance state of the paper's experiments:
    [x = [1 0 ... 0]ᵀ], [u_prev = 0]. *)

val step : Plant.t -> gains -> mode -> state -> state
(** One sampling period in the given mode. *)

val output : Plant.t -> state -> float

val run : Plant.t -> gains -> (int -> mode) -> state -> int -> float array
(** [run p g mode_at s0 horizon] simulates [horizon] samples starting
    from [s0], where sample [k] evolves in mode [mode_at k]; returns the
    output trace [y[0..horizon]] (length [horizon + 1], including the
    initial output). *)

val run_states : Plant.t -> gains -> (int -> mode) -> state -> int -> state array
(** Like {!run} but returning the full hybrid states. *)

val mode_equal : mode -> mode -> bool
val pp_mode : Format.formatter -> mode -> unit
