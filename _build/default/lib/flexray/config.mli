(** FlexRay bus configuration (FlexRay 2.1 abstraction).

    A communication cycle consists of a static segment — [static_slot_count]
    TDMA slots of equal duration [static_slot_us] (the paper's Ψ) — followed
    by a dynamic segment of [minislot_count] minislots of duration
    [minislot_us] (the paper's ψ, with ψ ≪ Ψ).  Durations are integer
    microseconds so all bus timing is exact. *)

type t = private {
  static_slot_count : int;
  static_slot_us : int;  (** Ψ *)
  minislot_count : int;
  minislot_us : int;  (** ψ *)
}

val make :
  static_slot_count:int ->
  static_slot_us:int ->
  minislot_count:int ->
  minislot_us:int ->
  t
(** @raise Invalid_argument on non-positive parameters. *)

val cycle_us : t -> int
(** Total cycle duration. *)

val static_us : t -> int
val dynamic_us : t -> int

val static_slot_start : t -> cycle:int -> slot:int -> int
(** Absolute start time (µs) of a static slot in a given cycle.
    @raise Invalid_argument when [slot] is out of range. *)

val default_automotive : t
(** A representative automotive configuration: 10 static slots of
    50 µs, 200 minislots of 2 µs — a 900 µs cycle, so a 20 ms sampling
    period spans ~22 cycles. *)

val pp : Format.formatter -> t -> unit
