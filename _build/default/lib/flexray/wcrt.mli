(** Worst-case response-time analysis for dynamic-segment frames, in
    the spirit of Pop et al., "Timing Analysis of the FlexRay
    Communication Protocol" (the paper's reference [11]), simplified to
    the single-channel, one-message-per-id case used here.

    A dynamic frame [m] can be delayed by (i) the wait until the next
    dynamic segment, (ii) higher-priority (lower-id) frames consuming
    minislots, and (iii) cycles in which the remaining minislots cannot
    fit [m], pushing it to the next cycle.  The analysis below is
    conservative: it assumes every higher-priority frame contends as
    often as its period allows and that blocked cycles pack
    adversarially. *)

type hp_frame = {
  length_minislots : int;
  period_cycles : int;  (** minimum inter-release, in cycles (>= 1) *)
}

val blocked_cycles_bound :
  minislot_count:int -> own_id:int -> own_length:int -> hp_frame list -> int option
(** Upper bound on the number of {e full cycles} a frame can fail to be
    transmitted; [None] when the frame can be starved forever (the
    higher-priority demand per cycle can always exceed the segment).
    @raise Invalid_argument on nonsensical parameters. *)

val wcrt_us :
  Config.t -> own_id:int -> own_length:int -> hp_frame list -> int option
(** End-to-end worst-case latency from release to delivery, in µs:
    release just after this cycle's dynamic-segment start, plus the
    bounded number of blocked cycles, plus the worst in-segment finish
    time. *)

val one_sample_delay_ok :
  Config.t -> h_us:int -> own_id:int -> own_length:int -> hp_frame list -> bool
(** Does the worst case fit within one sampling period — the design
    assumption behind the paper's ET controller [K_E]? *)
