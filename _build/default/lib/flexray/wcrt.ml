type hp_frame = { length_minislots : int; period_cycles : int }

let validate ~minislot_count ~own_id ~own_length hp =
  if minislot_count <= 0 then invalid_arg "Wcrt: minislot_count";
  if own_id <= 0 then invalid_arg "Wcrt: own_id";
  if own_length <= 0 || own_length > minislot_count then
    invalid_arg "Wcrt: own_length";
  List.iter
    (fun f ->
      if f.length_minislots <= 0 then invalid_arg "Wcrt: hp length";
      if f.period_cycles < 1 then invalid_arg "Wcrt: hp period")
    hp

(* Demand of the higher-priority set within a window of [q] cycles:
   each frame contends at most ceil(q / period) times. *)
let hp_demand hp q =
  List.fold_left
    (fun acc f ->
      acc + (((q + f.period_cycles - 1) / f.period_cycles) * f.length_minislots))
    0 hp

let blocked_cycles_bound ~minislot_count ~own_id ~own_length hp =
  validate ~minislot_count ~own_id ~own_length hp;
  (* empty minislots skipped for absent lower ids before ours *)
  let overhead = own_id - 1 in
  let fits_alone = overhead + own_length <= minislot_count in
  if not fits_alone then None
  else begin
    (* The frame misses a cycle only when hp transmissions eat past the
       point where own_length still fits.  In a window of q cycles the
       hp set can block at most floor(demand / spare) cycles where
       spare is the room that must be consumed to block us.  Iterate
       q = blocked + 1 until a fixed point or divergence. *)
    let spare = minislot_count - overhead - own_length + 1 in
    let rec iterate q guard =
      if guard > 10_000 then None
      else
        let blocked = hp_demand hp q / spare in
        let q' = blocked + 1 in
        if q' = q then Some blocked
        else if q' > 10_000 then None
        else iterate (Int.max q' (q + 1)) (guard + 1)
    in
    iterate 1 0
  end

let wcrt_us config ~own_id ~own_length hp =
  let minislot_count = config.Config.minislot_count in
  match blocked_cycles_bound ~minislot_count ~own_id ~own_length hp with
  | None -> None
  | Some blocked ->
    let cycle = Config.cycle_us config in
    (* worst release: just after the dynamic segment start -> wait a
       full cycle for the next opportunity *)
    let wait_first = cycle in
    (* in the successful cycle the frame finishes no later than the end
       of the dynamic segment *)
    let in_segment = Config.static_us config + Config.dynamic_us config in
    Some (wait_first + (blocked * cycle) + in_segment)

let one_sample_delay_ok config ~h_us ~own_id ~own_length hp =
  match wcrt_us config ~own_id ~own_length hp with
  | None -> false
  | Some w -> w <= h_us
