lib/flexray/config.ml: Format
