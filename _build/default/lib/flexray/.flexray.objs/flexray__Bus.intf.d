lib/flexray/bus.mli: Config Frame
