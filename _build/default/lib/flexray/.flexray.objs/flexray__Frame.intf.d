lib/flexray/frame.mli: Format
