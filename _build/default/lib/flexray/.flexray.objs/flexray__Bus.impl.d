lib/flexray/bus.ml: Config Dynamic_segment Frame Hashtbl List Option
