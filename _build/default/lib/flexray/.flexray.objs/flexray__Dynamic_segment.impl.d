lib/flexray/dynamic_segment.ml: Int List
