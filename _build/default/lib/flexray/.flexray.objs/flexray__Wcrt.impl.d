lib/flexray/wcrt.ml: Config Int List
