lib/flexray/dynamic_segment.mli:
