lib/flexray/frame.ml: Format
