lib/flexray/wcrt.mli: Config
