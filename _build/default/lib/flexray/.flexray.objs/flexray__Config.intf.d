lib/flexray/config.mli: Format
