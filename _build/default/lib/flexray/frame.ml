type t =
  | Static of { slot : int }
  | Dynamic of { frame_id : int; length_minislots : int }

let static ~slot =
  if slot < 0 then invalid_arg "Frame.static: negative slot";
  Static { slot }

let dynamic ~frame_id ~length_minislots =
  if frame_id <= 0 then invalid_arg "Frame.dynamic: frame_id must be positive";
  if length_minislots <= 0 then invalid_arg "Frame.dynamic: non-positive length";
  Dynamic { frame_id; length_minislots }

let priority = function Static _ -> min_int | Dynamic { frame_id; _ } -> frame_id

let pp ppf = function
  | Static { slot } -> Format.fprintf ppf "static(slot=%d)" slot
  | Dynamic { frame_id; length_minislots } ->
    Format.fprintf ppf "dynamic(id=%d, len=%d)" frame_id length_minislots
