(** Cycle-accurate FlexRay bus simulation.

    Messages are submitted with a release time; static frames go out in
    their slot of the next cycle whose slot start is at or after the
    release, dynamic frames contend in the minislot arbitration.  The
    simulator reports per-message delivery times, from which the
    deterministic TT delay and the jittery ET delay of the paper can be
    measured directly. *)

type message = { frame : Frame.t; release_us : int }

type delivery = {
  message : message;
  delivered_us : int;  (** end of the transmission window *)
}

val simulate : Config.t -> until_us:int -> message list -> delivery list
(** Run the bus until [until_us]; messages not delivered by then are
    dropped from the result.  Several pending static messages for the
    same slot are served oldest-first, one per cycle.
    @raise Invalid_argument on negative release times, static slots out
    of range, or dynamic frames longer than the whole segment. *)

val delay_us : delivery -> int
(** Delivery latency [delivered_us - release_us]. *)
