(** Minislot arbitration of the FlexRay dynamic segment.

    Within each cycle a minislot counter sweeps over frame identifiers
    in increasing order.  When the frame with the current id is pending
    and still fits in the remaining segment, it transmits and the
    counter advances by its length; otherwise the counter advances by
    one (empty) minislot.  A frame that does not fit this cycle must
    wait for a later one — this is the source of the time-varying ET
    delay the paper designs against. *)

type transmission = {
  frame_id : int;
  start_minislot : int;  (** counter value when transmission starts *)
  length_minislots : int;
}

val arbitrate :
  minislot_count:int ->
  pending:(int * int) list ->
  transmission list * (int * int) list
(** [arbitrate ~minislot_count ~pending] plays one cycle of the dynamic
    segment over the pending [(frame_id, length)] list and returns the
    transmissions performed and the frames left over for the next
    cycle.  @raise Invalid_argument on duplicate or non-positive ids or
    non-positive lengths. *)
