type t = {
  static_slot_count : int;
  static_slot_us : int;
  minislot_count : int;
  minislot_us : int;
}

let make ~static_slot_count ~static_slot_us ~minislot_count ~minislot_us =
  if static_slot_count <= 0 then invalid_arg "Config.make: static_slot_count";
  if static_slot_us <= 0 then invalid_arg "Config.make: static_slot_us";
  if minislot_count <= 0 then invalid_arg "Config.make: minislot_count";
  if minislot_us <= 0 then invalid_arg "Config.make: minislot_us";
  { static_slot_count; static_slot_us; minislot_count; minislot_us }

let static_us t = t.static_slot_count * t.static_slot_us
let dynamic_us t = t.minislot_count * t.minislot_us
let cycle_us t = static_us t + dynamic_us t

let static_slot_start t ~cycle ~slot =
  if slot < 0 || slot >= t.static_slot_count then
    invalid_arg "Config.static_slot_start: slot out of range";
  if cycle < 0 then invalid_arg "Config.static_slot_start: negative cycle";
  (cycle * cycle_us t) + (slot * t.static_slot_us)

let default_automotive =
  make ~static_slot_count:10 ~static_slot_us:50 ~minislot_count:200
    ~minislot_us:2

let pp ppf t =
  Format.fprintf ppf
    "FlexRay cycle: %d static slots x %d us + %d minislots x %d us = %d us"
    t.static_slot_count t.static_slot_us t.minislot_count t.minislot_us
    (cycle_us t)
