type transmission = {
  frame_id : int;
  start_minislot : int;
  length_minislots : int;
}

let arbitrate ~minislot_count ~pending =
  if minislot_count <= 0 then invalid_arg "Dynamic_segment.arbitrate: count";
  List.iter
    (fun (id, len) ->
      if id <= 0 then invalid_arg "Dynamic_segment.arbitrate: frame id";
      if len <= 0 then invalid_arg "Dynamic_segment.arbitrate: length")
    pending;
  let ids = List.map fst pending in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    invalid_arg "Dynamic_segment.arbitrate: duplicate frame ids";
  let pending = List.sort (fun (a, _) (b, _) -> compare a b) pending in
  let max_id = List.fold_left (fun acc (id, _) -> Int.max acc id) 0 pending in
  let sent = ref [] and leftover = ref [] in
  let counter = ref 0 in
  for id = 1 to max_id do
    if !counter < minislot_count then begin
      match List.assoc_opt id pending with
      | Some len when !counter + len <= minislot_count ->
        sent :=
          { frame_id = id; start_minislot = !counter; length_minislots = len }
          :: !sent;
        counter := !counter + len
      | Some len ->
        leftover := (id, len) :: !leftover;
        incr counter
      | None -> incr counter
    end
    else begin
      (* segment exhausted: everything else waits *)
      match List.assoc_opt id pending with
      | Some len -> leftover := (id, len) :: !leftover
      | None -> ()
    end
  done;
  (List.rev !sent, List.rev !leftover)
