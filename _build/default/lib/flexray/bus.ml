type message = { frame : Frame.t; release_us : int }

type delivery = { message : message; delivered_us : int }

let delay_us d = d.delivered_us - d.message.release_us

let simulate config ~until_us messages =
  List.iter
    (fun m ->
      if m.release_us < 0 then invalid_arg "Bus.simulate: negative release";
      match m.frame with
      | Frame.Static { slot } ->
        if slot >= config.Config.static_slot_count then
          invalid_arg "Bus.simulate: static slot out of range"
      | Frame.Dynamic { length_minislots; _ } ->
        if length_minislots > config.Config.minislot_count then
          invalid_arg "Bus.simulate: dynamic frame exceeds the segment")
    messages;
  let cycle_us = Config.cycle_us config in
  let cycles = (until_us / cycle_us) + 1 in
  let deliveries = ref [] in
  (* static messages, per slot, oldest first *)
  let static_queue = Hashtbl.create 8 in
  List.iter
    (fun m ->
      match m.frame with
      | Frame.Static { slot } ->
        Hashtbl.replace static_queue slot
          (m :: Option.value ~default:[] (Hashtbl.find_opt static_queue slot))
      | Frame.Dynamic _ -> ())
    messages;
  Hashtbl.iter
    (fun slot q ->
      Hashtbl.replace static_queue slot
        (List.sort (fun a b -> compare a.release_us b.release_us) q))
    static_queue;
  (* dynamic messages sorted by release *)
  let dynamic_msgs =
    List.filter
      (fun m -> match m.frame with Frame.Dynamic _ -> true | Frame.Static _ -> false)
      messages
    |> List.sort (fun a b -> compare a.release_us b.release_us)
  in
  let dyn_waiting = ref [] (* (frame_id, length, message) pending *)
  and dyn_future = ref dynamic_msgs in
  for cycle = 0 to cycles - 1 do
    let cycle_start = cycle * cycle_us in
    (* static segment *)
    for slot = 0 to config.Config.static_slot_count - 1 do
      let slot_start = Config.static_slot_start config ~cycle ~slot in
      match Hashtbl.find_opt static_queue slot with
      | Some (m :: rest) when m.release_us <= slot_start ->
        deliveries :=
          { message = m; delivered_us = slot_start + config.Config.static_slot_us }
          :: !deliveries;
        Hashtbl.replace static_queue slot rest
      | Some _ | None -> ()
    done;
    (* dynamic segment: admit messages released before it starts *)
    let dyn_start = cycle_start + Config.static_us config in
    let admitted, still_future =
      List.partition (fun m -> m.release_us <= dyn_start) !dyn_future
    in
    dyn_future := still_future;
    List.iter
      (fun m ->
        match m.frame with
        | Frame.Dynamic { frame_id; length_minislots } ->
          dyn_waiting := (frame_id, length_minislots, m) :: !dyn_waiting
        | Frame.Static _ -> assert false)
      admitted;
    (* one frame id transmits at most one message per cycle: offer the
       oldest pending message of each id to the arbitration *)
    let oldest_per_id =
      List.sort (fun (_, _, a) (_, _, b) -> compare a.release_us b.release_us)
        !dyn_waiting
      |> List.fold_left
           (fun acc ((id, _, _) as entry) ->
             if List.exists (fun (id', _, _) -> id' = id) acc then acc
             else entry :: acc)
           []
    in
    let pending = List.map (fun (id, len, _) -> (id, len)) oldest_per_id in
    let sent, _leftover =
      if pending = [] then ([], [])
      else
        Dynamic_segment.arbitrate ~minislot_count:config.Config.minislot_count
          ~pending
    in
    List.iter
      (fun (tx : Dynamic_segment.transmission) ->
        match
          List.find_opt (fun (id, _, _) -> id = tx.Dynamic_segment.frame_id)
            oldest_per_id
        with
        | Some (_, _, m) ->
          let finish =
            dyn_start
            + ((tx.Dynamic_segment.start_minislot
                + tx.Dynamic_segment.length_minislots)
               * config.Config.minislot_us)
          in
          deliveries := { message = m; delivered_us = finish } :: !deliveries;
          dyn_waiting :=
            List.filter (fun (_, _, m') -> m' != m) !dyn_waiting
        | None -> assert false)
      sent
  done;
  List.filter (fun d -> d.delivered_us <= until_us) (List.rev !deliveries)
