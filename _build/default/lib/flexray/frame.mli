(** FlexRay frames.

    A static frame is bound to a static slot; it always fits its slot.
    A dynamic frame has a frame identifier that doubles as its
    arbitration priority (lower id = higher priority, transmitted
    earlier in the dynamic segment) and a length in minislots. *)

type t =
  | Static of { slot : int }
  | Dynamic of { frame_id : int; length_minislots : int }

val static : slot:int -> t
(** @raise Invalid_argument on negative slot. *)

val dynamic : frame_id:int -> length_minislots:int -> t
(** @raise Invalid_argument on non-positive id or length. *)

val priority : t -> int
(** Dynamic frame id; static frames sort before all dynamic ones. *)

val pp : Format.formatter -> t -> unit
