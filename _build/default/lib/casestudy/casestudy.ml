type app = {
  name : string;
  plant : Control.Plant.t;
  gains : Control.Switched.gains;
  r : int;
  j_star : int;
}

type paper_row = {
  p_jt : int;
  p_je : int;
  p_t_w_max : int;
  p_t_dw_min : int array;
  p_t_dw_max : int array;
}

let h = 0.02

let make name phi gamma c kt ke r j_star =
  let plant =
    Control.Plant.make ~phi:(Linalg.Mat.of_rows phi)
      ~gamma:(Linalg.Vec.of_list gamma) ~c:(Linalg.Vec.of_list c) ~h
  in
  let gains =
    Control.Switched.make_gains plant ~kt:(Linalg.Vec.of_list kt)
      ~ke:(Linalg.Vec.of_list ke)
  in
  { name; plant; gains; r; j_star }

(* C1: DC motor position control [13]; paper eqs. (6)-(8) *)
let c1 =
  make "C1"
    [ [ 1.; 0.0182; 0.0068 ]; [ 0.; 0.7664; 0.5186 ]; [ 0.; -0.3260; 0.1011 ] ]
    [ 0.0015; 0.1944; 0.2717 ]
    [ 1.; 0.; 0. ]
    [ 30.; 1.2626; 1.1071 ]
    [ 13.8921; 0.5773; 0.8672; 1.0866 ]
    25 18

let c1_unstable_pair =
  Control.Switched.make_gains c1.plant
    ~kt:(Linalg.Vec.of_list [ 30.; 1.2626; 1.1071 ])
    ~ke:(Linalg.Vec.of_list [ 2.9120; -0.6141; -1.0399; 0.1741 ])

(* C2: DC motor position control [10] *)
let c2 =
  make "C2"
    [
      [ 1.; 0.0117; 0.0001 ];
      [ 0.; 0.3059; 0.0018 ];
      [ 0.; -0.0021; -1.2228e-5 ];
    ]
    [ 0.2966; 24.8672; 0.0797 ]
    [ 1.; 0.; 0. ]
    [ 0.1198; -0.0130; -2.9588 ]
    [ 0.0864; -0.0128; -1.6833; 0.4059 ]
    100 25

(* C3: DC motor speed control [3] *)
let c3 =
  make "C3"
    [ [ 0.9900; 0.0065 ]; [ -0.0974; 0.0177 ] ]
    [ 2.8097; 319.7919 ]
    [ 1.; 0. ]
    [ 0.0500; -0.0002 ]
    [ 0.0336; 0.0004; 0.4453 ]
    50 20

(* C4: DC motor speed control [10] *)
let c4 =
  make "C4"
    [ [ 0.8187; 0.0178 ]; [ -0.0004; 0.9608 ] ]
    [ 0.0004; 0.0392 ]
    [ 1.; 0. ]
    [ 100.0000; 15.6226 ]
    [ -77.8275; 24.3161; 1.0265 ]
    40 19

(* C5: DC motor speed control [12] *)
let c5 =
  make "C5"
    [ [ 0.8187; 0.0156 ]; [ -0.0031; 0.7408 ] ]
    [ 0.0034; 0.3456 ]
    [ 1.; 0. ]
    [ 10.0000; 1.0524 ]
    [ -2.4223; 0.7014; 0.2950 ]
    25 18

(* C6: cruise control [10]; phi sign-corrected, see interface note *)
let c6 =
  make "C6" [ [ 0.999 ] ] [ 1.999e-5 ] [ 1. ] [ 15000. ] [ 8125.6; 0.8659 ] 100 20

let all = [ c1; c2; c3; c4; c5; c6 ]

let find name =
  match List.find_opt (fun a -> String.equal a.name name) all with
  | Some a -> a
  | None -> raise Not_found

let paper app =
  match app.name with
  | "C1" ->
    {
      p_jt = 9;
      p_je = 35;
      p_t_w_max = 11;
      p_t_dw_min = [| 3; 4; 3; 3; 3; 3; 3; 3; 3; 4; 4; 5 |];
      p_t_dw_max = [| 6; 6; 5; 5; 5; 6; 5; 5; 4; 4; 5; 5 |];
    }
  | "C2" ->
    {
      p_jt = 15;
      p_je = 50;
      p_t_w_max = 13;
      p_t_dw_min = [| 7; 7; 6; 7; 6; 7; 6; 7; 6; 7; 6; 7; 7; 8 |];
      p_t_dw_max = [| 10; 10; 9; 10; 8; 9; 9; 10; 8; 8; 9; 8; 8; 8 |];
    }
  | "C3" ->
    {
      p_jt = 10;
      p_je = 31;
      p_t_w_max = 15;
      p_t_dw_min = [| 4; 4; 4; 4; 4; 4; 4; 4; 4; 4; 4; 4; 4; 4; 4; 4 |];
      p_t_dw_max = [| 8; 8; 7; 7; 7; 6; 6; 6; 6; 5; 5; 5; 5; 4; 4; 4 |];
    }
  | "C4" ->
    {
      p_jt = 10;
      p_je = 31;
      p_t_w_max = 12;
      p_t_dw_min = [| 5; 5; 5; 5; 5; 5; 5; 5; 5; 5; 5; 5; 5 |];
      p_t_dw_max = [| 9; 8; 8; 8; 8; 7; 7; 7; 7; 6; 6; 6; 5 |];
    }
  | "C5" ->
    {
      p_jt = 10;
      p_je = 25;
      p_t_w_max = 12;
      p_t_dw_min = [| 4; 3; 3; 3; 3; 3; 3; 4; 4; 4; 4; 4; 4 |];
      p_t_dw_max = [| 9; 8; 7; 8; 7; 6; 7; 6; 5; 5; 4; 4; 4 |];
    }
  | "C6" ->
    {
      p_jt = 11;
      p_je = 41;
      p_t_w_max = 12;
      p_t_dw_min = [| 7; 8; 7; 8; 7; 8; 7; 8; 7; 8; 7; 8; 8 |];
      p_t_dw_max = [| 11; 11; 10; 10; 10; 10; 9; 9; 9; 8; 8; 8; 8 |];
    }
  | other -> invalid_arg ("Casestudy.paper: unknown application " ^ other)

let paper_slot_partition = [ [ "C1"; "C5"; "C4"; "C3" ]; [ "C6"; "C2" ] ]

let paper_baseline_partition =
  [ [ "C1"; "C5" ]; [ "C4"; "C3" ]; [ "C6" ]; [ "C2" ] ]
