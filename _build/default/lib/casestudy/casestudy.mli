(** The six distributed control applications of the paper's case study
    (Table 1): plant models, switching gains, disturbance inter-arrival
    times and settling-time budgets, plus the values the paper reports
    for them (for paper-vs-measured comparison).

    All times are in numbers of samples at [h = 0.02 s].

    Data notes:
    - C6's state matrix is printed as [-0.999] in the paper, which makes
      the TT closed loop unstable; the plant is the CTMS cruise-control
      example whose exact discretisation is [+0.999], so that is what we
      use (see DESIGN.md).
    - C1 with the [K^u_E] gain (paper eq. (9)) is exposed as
      {!c1_unstable_pair} for the switching-stability experiments of
      Sec. 3.1. *)

type app = {
  name : string;
  plant : Control.Plant.t;
  gains : Control.Switched.gains;
  r : int;  (** minimum disturbance inter-arrival time, samples *)
  j_star : int;  (** settling-time requirement, samples *)
}

type paper_row = {
  p_jt : int;  (** J_T as reported *)
  p_je : int;  (** J_E as reported *)
  p_t_w_max : int;  (** T*_w as reported *)
  p_t_dw_min : int array;  (** T⁻_dw array, index = T_w *)
  p_t_dw_max : int array;  (** T⁺_dw array, index = T_w *)
}

val h : float
(** The common sampling period, 0.02 s. *)

val c1 : app
val c2 : app
val c3 : app
val c4 : app
val c5 : app
val c6 : app

val all : app list
(** [[c1; c2; c3; c4; c5; c6]]. *)

val find : string -> app
(** Look up by name ("C1".."C6").  @raise Not_found. *)

val paper : app -> paper_row
(** The values Table 1 reports for this application. *)

val c1_unstable_pair : Control.Switched.gains
(** [K_T] with the non-switching-stable [K^u_E] of eq. (9). *)

val paper_slot_partition : string list list
(** The partition the paper obtains with its method:
    [[["C1";"C5";"C4";"C3"]; ["C6";"C2"]]]. *)

val paper_baseline_partition : string list list
(** The 4-slot partition required by the baseline strategy of [9]. *)
