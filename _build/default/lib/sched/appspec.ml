type t = {
  id : int;
  name : string;
  t_w_max : int;
  t_dw_min : int array;
  t_dw_max : int array;
  r : int;
}

let max_service_of ~t_w_max ~t_dw_max =
  let best = ref 0 in
  Array.iteri (fun t_w d -> best := Int.max !best (t_w + d)) t_dw_max;
  ignore t_w_max;
  !best

let make ~id ~name ~t_w_max ~t_dw_min ~t_dw_max ~r =
  if t_w_max < 0 then invalid_arg "Appspec.make: negative t_w_max";
  let len = t_w_max + 1 in
  if Array.length t_dw_min <> len || Array.length t_dw_max <> len then
    invalid_arg "Appspec.make: dwell arrays must have length t_w_max + 1";
  if not (Array.for_all (fun d -> d > 0) t_dw_min) then
    invalid_arg "Appspec.make: non-positive minimum dwell";
  if not (Array.for_all2 (fun a b -> a <= b) t_dw_min t_dw_max) then
    invalid_arg "Appspec.make: t_dw_min exceeds t_dw_max";
  if r <= max_service_of ~t_w_max ~t_dw_max then
    invalid_arg "Appspec.make: r must exceed every t_w + t_dw_max(t_w)";
  { id; name; t_w_max; t_dw_min; t_dw_max; r }

let with_id t id = { t with id }

let max_service t = max_service_of ~t_w_max:t.t_w_max ~t_dw_max:t.t_dw_max

let pp ppf t =
  Format.fprintf ppf "%s(id=%d, T*w=%d, r=%d)" t.name t.id t.t_w_max t.r
