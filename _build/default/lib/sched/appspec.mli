(** The timing abstraction of a control application, as seen by the
    scheduler and the verifier.

    All control dynamics are compressed into four pieces of integer
    timing data (paper Sec. 4): the maximum tolerable wait [t_w_max]
    (T*_w), the dwell-time tables [t_dw_min]/[t_dw_max] indexed by the
    actual wait, and the minimum disturbance inter-arrival time [r].
    Everything is measured in samples. *)

type t = private {
  id : int;  (** dense index within a slot group *)
  name : string;
  t_w_max : int;
  t_dw_min : int array;  (** length [t_w_max + 1] *)
  t_dw_max : int array;  (** length [t_w_max + 1] *)
  r : int;
}

val make :
  id:int ->
  name:string ->
  t_w_max:int ->
  t_dw_min:int array ->
  t_dw_max:int array ->
  r:int ->
  t
(** @raise Invalid_argument when array lengths are not [t_w_max + 1],
    any dwell bound is non-positive, [t_dw_min] exceeds [t_dw_max]
    pointwise, or [r] is not larger than every
    [t_w + t_dw_max(t_w)] (a new disturbance must not arrive while the
    previous one is still being served). *)

val with_id : t -> int -> t
(** Same spec under a different dense index. *)

val max_service : t -> int
(** The largest possible [t_w + t_dw_max(t_w)]: an upper bound on the
    number of samples between seeing a disturbance and releasing the
    slot. *)

val pp : Format.formatter -> t -> unit
