type spec = { id : int; name : string; w_star : int; c_occ : int; r : int }

type strategy = Dm | Delayed

let make_spec ~id ~name ~w_star ~c_occ ~r =
  if w_star < 0 then invalid_arg "Baseline.make_spec: negative deadline";
  if c_occ <= 0 then invalid_arg "Baseline.make_spec: non-positive occupancy";
  if r <= 0 then invalid_arg "Baseline.make_spec: non-positive inter-arrival";
  { id; name; w_star; c_occ; r }

(* deadline-monotonic priority order: smaller w_star = higher priority;
   ties broken by id for determinism *)
let higher_priority a b =
  a.w_star < b.w_star || (a.w_star = b.w_star && a.id < b.id)

let hp_and_lp group self =
  let others = List.filter (fun s -> s.id <> self.id) group in
  List.partition (fun s -> higher_priority s self) others

(* Non-preemptive start-time analysis: the request of [self] is
   schedulable iff the fixed point of
     S = B + sum_{j in hp} (floor(S / r_j) + 1) * c_j
   satisfies S <= deadline.  B is the blocking by at most one
   lower-priority occupant that grabbed the slot just before the
   request arrived. *)
let start_time_bound ~blocking ~deadline hp =
  let interference s =
    List.fold_left
      (fun acc j -> acc + (((s / j.r) + 1) * j.c_occ))
      0 hp
  in
  let rec iterate s guard =
    if s > deadline || guard > 1000 then None
    else
      let s' = blocking + interference s in
      if s' = s then Some s else iterate s' (guard + 1)
  in
  iterate blocking 0

let response_bound strategy group self =
  let hp, lp = hp_and_lp group self in
  match strategy with
  | Dm ->
    let blocking = List.fold_left (fun acc j -> Int.max acc j.c_occ) 0 lp in
    start_time_bound ~blocking ~deadline:self.w_star hp
  | Delayed ->
    (* Lower-priority requests are postponed whenever they could block a
       higher-priority application past its deadline, so the blocking
       term vanishes.  The price is paid by the delayed application
       itself: before occupying the slot it must leave a safety window
       for each higher-priority application whose tolerance cannot
       absorb a full occupancy, which shortens its own effective
       deadline by that shortfall. *)
    let blocking = 0 in
    let self_delay =
      List.fold_left
        (fun acc i -> Int.max acc (Int.max 0 (self.c_occ - i.w_star)))
        0 hp
    in
    let deadline = self.w_star - self_delay in
    if deadline < 0 then None
    else
      Option.map (fun s -> s + self_delay)
        (start_time_bound ~blocking ~deadline hp)

let schedulable strategy group =
  List.for_all (fun s -> response_bound strategy group s <> None) group

let first_fit strategy specs =
  let try_place placed spec =
    let rec go = function
      | [] -> None
      | slot :: rest ->
        if schedulable strategy (spec :: slot) then Some ((spec :: slot) :: rest)
        else Option.map (fun r -> slot :: r) (go rest)
    in
    go placed
  in
  let slots =
    List.fold_left
      (fun placed spec ->
        match try_place placed spec with
        | Some placed -> placed
        | None -> placed @ [ [ spec ] ])
      [] specs
  in
  List.map List.rev slots
