lib/sched/slot_state.ml: Appspec Array Format Hashtbl List Printf
