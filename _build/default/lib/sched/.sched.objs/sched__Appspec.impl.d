lib/sched/appspec.ml: Array Format Int
