lib/sched/appspec.mli: Format
