lib/sched/arbiter.mli: Appspec Slot_state
