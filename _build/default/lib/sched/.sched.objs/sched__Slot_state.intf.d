lib/sched/slot_state.mli: Appspec Format
