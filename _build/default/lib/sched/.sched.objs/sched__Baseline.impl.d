lib/sched/baseline.ml: Int List Option
