lib/sched/baseline.mli:
