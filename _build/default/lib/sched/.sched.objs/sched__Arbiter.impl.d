lib/sched/arbiter.ml: Appspec Array List Slot_state
