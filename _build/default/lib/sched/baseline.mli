(** Reconstruction of the baseline scheduling strategies of Masrur et
    al. (DATE 2012), reference [9] of the paper.

    In the baseline, an application that gets the TT slot holds it
    {e non-preemptively until the disturbance is fully rejected}; only
    then does it return to ET.  Each application is therefore
    characterised by two integers:

    - [w_star] — the largest wait after which full-TT rejection still
      meets the settling budget (its "deadline" for getting the slot);
    - [c_occ] — the worst-case slot occupancy once granted (the full
      rejection time).

    Strategy {!Dm} is standard non-preemptive deadline-monotonic
    arbitration of the slot: the schedulability test is the classic
    start-time analysis with blocking from at most one lower-priority
    occupant.  Strategy {!Delayed} additionally delays the slot
    requests of lower-priority applications so they can never block a
    higher-priority one that will arrive within the blocking window
    (reducing the blocking term to the largest occupancy among apps
    that could not be delayed), at the price of consuming part of the
    delayed application's own deadline.  Both tests are conservative —
    which is exactly the point of the paper's comparison. *)

type spec = { id : int; name : string; w_star : int; c_occ : int; r : int }

type strategy = Dm | Delayed

val make_spec : id:int -> name:string -> w_star:int -> c_occ:int -> r:int -> spec
(** @raise Invalid_argument on non-positive [c_occ]/[r] or negative
    [w_star]. *)

val schedulable : strategy -> spec list -> bool
(** Can this group share one TT slot under the given strategy? *)

val response_bound : strategy -> spec list -> spec -> int option
(** Worst-case wait bound for [spec] within the group; [None] when the
    fixed-point iteration diverges past the deadline. *)

val first_fit : strategy -> spec list -> spec list list
(** Pack applications into slots first-fit, in the given order,
    re-running {!schedulable} on each candidate group. *)
