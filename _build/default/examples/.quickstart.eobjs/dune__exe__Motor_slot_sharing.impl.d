examples/motor_slot_sharing.ml: Array Casestudy Core Cosim Format List
