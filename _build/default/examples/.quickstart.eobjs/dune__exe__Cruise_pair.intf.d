examples/cruise_pair.mli:
