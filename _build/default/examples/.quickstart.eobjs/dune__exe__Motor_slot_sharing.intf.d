examples/motor_slot_sharing.mli:
