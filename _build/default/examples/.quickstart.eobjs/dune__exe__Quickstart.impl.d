examples/quickstart.ml: Array Casestudy Core Cosim Format List
